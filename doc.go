// Package repro is a from-scratch Go reproduction of SHILL: A Secure
// Shell Scripting Language (Moore, Dimoulas, King, Chong; OSDI 2014).
//
// The supported entry surface is the public embedding package
// repro/shill: shill.NewMachine assembles a simulated machine,
// Machine.NewSession hands out first-class sessions (own process, own
// console, own audit window), and Session.Run executes SHILL scripts
// under a context.Context — cancellation stops the eval loop and wakes
// blocking kernel waits, and every Result carries the run's console
// output, windowed denial provenance, and profile samples. The
// command-line tools, examples, and benchmarks all build on it.
//
// The mechanism lives under internal/: a simulated FreeBSD-like kernel
// (vfs, mac, kernel, netstack), SHILL's capability and contract layers
// (priv, cap, contract, wallet), the capability-based sandbox and the
// simulated native executables it confines (sandbox, binaries), the
// SHILL language itself (lang, stdlib), the capability provenance and
// audit subsystem (audit), and machine assembly plus workload staging
// (core). See README.md for the architecture map, DESIGN.md for the
// full inventory, and EXPERIMENTS.md for the paper-versus-measured
// results.
//
// # Audit trail and explainable denials
//
// internal/audit records every security-relevant decision in an
// always-on, sharded, lock-free event log: syscall allow/deny with the
// deciding layer (DAC, MAC policy, SHILL policy), capability grants and
// propagation, capability minting/derivation lineage, contract check
// outcomes, and sandbox spawn/exit. Deny paths return structured
// *audit.DenyReason errors that unwrap to the usual errno sentinels, so
// errors.Is keeps working while the message names the missing
// privilege and the contract that withheld it. Inspect a run with
//
//	shill -audit script.ambient
//	shill-sandbox -audit -- command ...
//	shill-audit report|trace PATH|why-denied script.ambient
//
// Overhead is measured by BenchmarkParallelGrading's audit=true/false
// dimension (acceptance: <5% scripts/sec; measured ≈0-2%) and
// attributed in the Figure-10 breakdown via prof.AuditEmit.
//
// The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation:
//
//	go test -bench BenchmarkFigure9  .   # case-study wall times
//	go test -bench BenchmarkFigure10 .   # performance breakdown
//	go test -bench BenchmarkFigure11 .   # syscall microbenchmarks
//
// or run cmd/benchfig for paper-style tables.
//
// # Testing
//
// The tier-1 gate is
//
//	go build ./... && go test ./...
//
// The kernel serves concurrent sandbox sessions (see shill/parallel.go
// and shill/session.go), so the concurrency-sensitive packages should
// also be run under the race detector — CI does both, plus the
// embedding-boundary guard (scripts/check-api-boundary.sh: cmd/* and
// examples/* must not import internal/core) and the godoc examples
// (go test ./shill -run Example):
//
//	go vet ./...
//	go test -race -timeout=5m ./...
//
// The multi-session workload itself is exercised by the parallel tests
// in shill/parallel_test.go, the cancellation contract by
// shill/cancel_test.go (a runaway script cancelled via context deadline
// returns promptly, leaks nothing, and leaves its session reusable),
// and throughput is measured by
//
//	go test -bench BenchmarkParallelGrading .
//
// which grades N private courses concurrently (sessions=1, 4, 16; with
// the audit trail on and off), each session in its own runtime process
// with its own console device, and reports aggregate scripts/sec.
// Config.SpawnLatency simulates the real testbed's fork/exec cost so
// the scaling reflects overlap of genuine per-sandbox blocking.
//
// Fuzzing (internal/lang/fuzz_test.go): the parser must never panic and
// sandboxed evaluation must never escape its granted capabilities.
// Plain `go test` replays the seed corpus; run the engines with
//
//	go test ./internal/lang -fuzz=FuzzParse -fuzztime=30s
//	go test ./internal/lang -fuzz=FuzzEval  -fuzztime=30s
//
// Both corpora are seeded with grammar-generated structured programs
// (committed under internal/lang/testdata/fuzz/), so byte mutation
// starts from inputs that already exercise contracts, sandboxes, and
// sockets.
//
// # Generative conformance and the differential security oracle
//
// The paper's §2.3 security claim is a property over all programs, so
// beyond the hand-written conformance tests the tree carries a
// generative harness:
//
//   - internal/gen emits seed-deterministic, well-typed SHILL programs
//     (built as lang ASTs via the exported builders, rendered through
//     lang.Render) together with a Manifest of every path, port, and
//     privilege the program may exercise. Each program renders as a
//     paired capability-sandboxed variant (provide contract = exactly
//     the manifest's grants) and an ambient variant (bare provide).
//   - internal/oracle executes both variants on shill.Machine sessions
//     and checks three properties per program: no-escape (filesystem +
//     netstack snapshot diff confined to the manifest, via
//     Machine.SnapshotFS and Machine.NetListeners), DAC-conjunction
//     (at the first divergent op, sandboxed success implies ambient
//     success), and deny-provenance (every sandbox-only failure is
//     explained by an audit.DenyReason naming a privilege absent from
//     the manifest, and no capability denial names a granted one).
//   - cmd/shill-soak runs generated pairs continuously across K
//     concurrent sessions of one shared machine and greedily minimizes
//     any failure to a small reproducer (-seed, -n, -duration,
//     -sessions, -json).
//
// Determinism is the debugging contract: a failure is reproducible from
// its printed seed alone,
//
//	go test ./internal/oracle -run TestGeneratedConformance -short           # >=200 pairs
//	go test ./internal/oracle -run TestGeneratedConformance -gen.seed=S -gen.n=1
//	go run ./cmd/shill-soak -duration 30s -json SOAK.json
//
// # The execution service (shilld)
//
// internal/server + cmd/shilld turn the embedding API into a
// multi-tenant HTTP/JSON daemon — the trust model of the paper
// (running untrusted scripts safely) as a network service. Clients
// POST {tenant, script|scriptName|argv, args, deadlineMs, stream} to
// /v1/run and receive {exitStatus, console, denials, elapsedNs, ...},
// where denials is the run's []*audit.DenyReason — layer, op, object,
// missing privileges, contract blame — JSON round-trippable (decoded
// reasons still satisfy errors.Is against the errno sentinels), so a
// rejected request is explainable over the wire. GET
// /v1/audit/why-denied?tenant=T serves audit.Explain, the same query
// path cmd/shill-audit prints, with full capability lineage.
//
// Isolation is per-tenant machines (own kernel, image, netstack, audit
// log) in an LRU registry bounded by MaxMachines; admission control is
// a bounded queue plus per-tenant concurrency quotas (429 +
// Retry-After on overload); request deadlines and client disconnects
// feed Session.Run's context, so an abandoned request kills its
// sandboxed process tree (proved by internal/server tests). Runs end
// with a socket sweep (lang.Interp.CloseLeftoverSockets): a cancelled
// script's listeners do not stay bound on the pooled session.
// Operability: /healthz, /metrics (req/s, queue depth, active runs,
// per-machine shill.MachineStats), and graceful SIGTERM drain that
// finishes in-flight runs and closes every machine.
//
// cmd/shill-load is the closed-loop load generator (concurrency, an
// allow/deny/cancel mix, latency percentiles, response-shape checks);
// `benchfig -fig serve` drives it against an in-process daemon and
// writes BENCH_serve.json; scripts/shilld-smoke.sh is the end-to-end
// CI smoke (32 mixed clients, why-denied JSON assertions, clean
// SIGTERM drain).
package repro
