// Package repro is a from-scratch Go reproduction of SHILL: A Secure
// Shell Scripting Language (Moore, Dimoulas, King, Chong; OSDI 2014).
//
// The library lives under internal/: a simulated FreeBSD-like kernel
// (vfs, mac, kernel, netstack), SHILL's capability and contract layers
// (priv, cap, contract, wallet), the capability-based sandbox and the
// simulated native executables it confines (sandbox, binaries), the
// SHILL language itself (lang, stdlib), and the assembled system with
// the paper's case studies (core). See DESIGN.md for the full inventory
// and EXPERIMENTS.md for the paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation:
//
//	go test -bench BenchmarkFigure9  .   # case-study wall times
//	go test -bench BenchmarkFigure10 .   # performance breakdown
//	go test -bench BenchmarkFigure11 .   # syscall microbenchmarks
//
// or run cmd/benchfig for paper-style tables.
package repro
