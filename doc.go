// Package repro is a from-scratch Go reproduction of SHILL: A Secure
// Shell Scripting Language (Moore, Dimoulas, King, Chong; OSDI 2014).
//
// The library lives under internal/: a simulated FreeBSD-like kernel
// (vfs, mac, kernel, netstack), SHILL's capability and contract layers
// (priv, cap, contract, wallet), the capability-based sandbox and the
// simulated native executables it confines (sandbox, binaries), the
// SHILL language itself (lang, stdlib), and the assembled system with
// the paper's case studies (core). See DESIGN.md for the full inventory
// and EXPERIMENTS.md for the paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation:
//
//	go test -bench BenchmarkFigure9  .   # case-study wall times
//	go test -bench BenchmarkFigure10 .   # performance breakdown
//	go test -bench BenchmarkFigure11 .   # syscall microbenchmarks
//
// or run cmd/benchfig for paper-style tables.
//
// # Testing
//
// The tier-1 gate is
//
//	go build ./... && go test ./...
//
// The kernel serves concurrent sandbox sessions (see
// internal/core/parallel.go), so the concurrency-sensitive packages
// should also be run under the race detector — CI does both:
//
//	go vet ./...
//	go test -race -timeout=5m ./...
//
// The multi-session workload itself is exercised by the parallel tests
// in internal/core/scripts_parallel_test.go and measured by
//
//	go test -bench BenchmarkParallelGrading .
//
// which grades N private courses concurrently (sessions=1, 4, 16), each
// session in its own runtime process with its own console device, and
// reports aggregate scripts/sec. Config.SpawnLatency simulates the real
// testbed's fork/exec cost so the scaling reflects overlap of genuine
// per-sandbox blocking.
//
// Fuzzing (internal/lang/fuzz_test.go): the parser must never panic and
// sandboxed evaluation must never escape its granted capabilities.
// Plain `go test` replays the seed corpus; run the engines with
//
//	go test ./internal/lang -fuzz=FuzzParse -fuzztime=30s
//	go test ./internal/lang -fuzz=FuzzEval  -fuzztime=30s
package repro
