package shill

import (
	"time"

	"repro/internal/netstack"
)

// WaitListener blocks until an IP listener is bound on the given port,
// or the timeout elapses. It is how test harnesses synchronize a client
// step with a server they started on another session.
func (m *Machine) WaitListener(port string, timeout time.Duration) error {
	return m.sys.K.Net.WaitListener(netstack.DomainIP, port, timeout, nil)
}

// ShutdownHTTP sends the simulated web servers' polite shutdown request
// ("GET /__shutdown") to a listener on the given port. It is a no-op
// when nothing is listening.
func (m *Machine) ShutdownHTTP(port string) { m.shutdownListener(port) }
