package shill

import "repro/internal/audit"

// Aliases re-exporting the audit vocabulary embedders need to inspect a
// Result or query the machine's log, without importing internal
// packages.

// DenyReason is a structured denial: the provenance of an EPERM/EACCES
// (deciding layer, operation, object, missing privileges, contract
// blame chain). It implements error and unwraps to the errno sentinel.
type DenyReason = audit.DenyReason

// AuditEvent is one immutable audit record.
type AuditEvent = audit.Event

// AuditFilter selects audit events; the zero value matches everything.
type AuditFilter = audit.Filter

// Audit verdicts and layers, for filters.
const (
	AuditAllow = audit.Allow
	AuditDeny  = audit.Deny
)

// DenyReasonFor extracts the structured denial from an error chain, or
// nil — how an embedder asks "why exactly was this run refused?".
func DenyReasonFor(err error) *DenyReason { return audit.ReasonFor(err) }

// FormatAuditEvent renders one event the way cmd/shill-audit prints it.
func FormatAuditEvent(e AuditEvent) string { return audit.FormatEvent(e) }

// AuditEvents queries the machine's retained audit events.
func (m *Machine) AuditEvents(f AuditFilter) []AuditEvent {
	return m.sys.Audit().Query(f)
}
