package shill

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/lang"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Image is an immutable, content-addressed machine snapshot: a stack of
// copy-on-write filesystem layers plus the metadata needed to boot a
// session-ready machine from it (see internal/image). Snapshot produces
// one; RestoreMachine and WithBaseImage consume one.
type Image = image.Image

// DeserializeImage decodes an image previously written with
// Image.Serialize — the wire format shilld uses to keep evicted tenant
// snapshots and the grading tools use for prebuilt golden images.
func DeserializeImage(data []byte) (*Image, error) { return image.Deserialize(data) }

// WithBaseImage boots the machine from a snapshot instead of building
// the base filesystem from scratch. The image's recorded configuration
// (module, workload, console limit, spawn latency, audit switch) seeds
// the machine's configuration; explicit options still override it.
// Restoring from the same image repeatedly shares one flattened base
// layer across all machines, so boot cost is O(metadata), not O(tree).
func WithBaseImage(img *Image) Option {
	return func(c *config) { c.baseImage = img }
}

// RestoreMachine boots a session-ready machine from a snapshot. It is
// shorthand for NewMachine(append(opts, WithBaseImage(img))...): the
// filesystem mounts the image's layers copy-on-write, the script store,
// staging state, and audit sequence continue from the captured values,
// and the origin server is restarted if it was running at capture.
//
// Live kernel state is deliberately not restored: processes, open file
// descriptors, and sockets other than the origin's listener died with
// the captured machine. Listener addresses recorded in the image are
// metadata for conformance checking, not revivable servers.
func RestoreMachine(img *Image, opts ...Option) (*Machine, error) {
	if img == nil {
		return nil, errors.New("shill: RestoreMachine: nil image")
	}
	return NewMachine(append(append([]Option{}, opts...), WithBaseImage(img))...)
}

// restoreConfig seeds a config from the image's recorded settings; the
// caller re-applies explicit options on top so they win.
func restoreConfig(img *Image) config {
	mc := img.Meta().Config
	return config{
		module:        mc.InstallModule,
		consoleLimit:  mc.ConsoleLimit,
		spawnLatency:  time.Duration(mc.SpawnLatencyNs),
		auditDisabled: mc.AuditDisabled,
		workload:      Workload(mc.Workload),
	}
}

// restoreMachine is the WithBaseImage boot path of NewMachine: build
// the system over the image's flattened layer view and replay the
// captured metadata.
func restoreMachine(cfg config) (*Machine, error) {
	img := cfg.baseImage
	flat, hit := img.Flatten()
	meta := img.Meta()
	sys := core.NewSystemFromBase(core.Config{
		InstallModule: cfg.module,
		ConsoleLimit:  cfg.consoleLimit,
		SpawnLatency:  cfg.spawnLatency,
		AuditDisabled: cfg.auditDisabled,
	}, flat)
	m := &Machine{
		sys: sys, engine: cfg.engine, cfg: cfg, baseImage: img,
		compileCache: lang.NewCompileCache(),
		tracer:       trace.NewRecorder(trace.DefaultRingSize),
	}
	if hit {
		m.imageHits.Add(1)
	} else {
		m.imageMisses.Add(1)
	}
	m.tracer.SetEnabled(!cfg.traceDisabled)

	// The audit trail continues where the captured machine left off, so
	// seq-windowed queries never replay pre-snapshot history.
	sys.Audit().StartAt(meta.AuditSeq)
	if err := sys.RestoreStagingState(meta.Staging); err != nil {
		sys.Close()
		return nil, fmt.Errorf("shill: restore staging state: %w", err)
	}

	// Case scripts first, then the captured store on top: a snapshot
	// taken before a script was added stays faithful, and scripts the
	// tenant installed (AddScript) survive eviction.
	sys.LoadCaseScripts()
	for name, src := range meta.Scripts {
		sys.Scripts[name] = src
	}

	base := ScriptResolver(builtinResolver{sys})
	if cfg.resolver != nil {
		m.resolver = ChainResolver{cfg.resolver, base}
	} else {
		m.resolver = base
	}

	// The origin server's listener cannot be serialized; restart it
	// from the on-image binaries if it was up at capture.
	if meta.Config.Origin {
		if _, err := sys.StartOrigin(); err != nil {
			sys.Close()
			return nil, fmt.Errorf("shill: restore origin: %w", err)
		}
		m.originUp.Store(true)
	}

	// The image already holds its workload's staging; only stage when
	// the caller asked for a different one.
	if cfg.workload != Workload(meta.Config.Workload) {
		if err := m.Stage(cfg.workload); err != nil {
			sys.Close()
			return nil, err
		}
	}
	return m, nil
}

// Snapshot quiesces the machine and captures it as an immutable,
// content-addressed image: the filesystem's divergence from its base
// image as one new copy-on-write layer (the full tree if the machine
// was built from scratch), plus the script store, staging state, bound
// listener addresses, audit sequence, and configuration.
//
// Quiescing waits for every in-flight Run to finish and blocks new runs
// for the duration of the capture; capture cost is O(dirty state), not
// O(tree), for image-based machines. The machine keeps running
// afterwards — snapshotting does not close it.
//
// A snapshot of an unmodified restored machine is byte-identical to the
// image it was restored from (same ID), which is what lets a serving
// frontend deduplicate idle tenants against golden images.
func (m *Machine) Snapshot() (*Image, error) {
	if m.closed.Load() {
		return nil, ErrMachineClosed
	}
	release := m.quiesce()
	defer release()

	top := m.sys.K.FS.CaptureLayer()
	var layers []*vfs.Layer
	if m.baseImage != nil {
		layers = append(layers, m.baseImage.Layers()...)
		// An empty top layer would change the image ID without
		// changing its content; omit it so snapshot→restore→snapshot
		// is a fixed point.
		if top.Len() > 0 {
			layers = append(layers, top)
		}
	} else {
		layers = []*vfs.Layer{top}
	}

	scripts := make(map[string]string, len(m.sys.Scripts))
	for name, src := range m.sys.Scripts {
		scripts[name] = src
	}
	meta := image.Meta{
		Config: image.Config{
			InstallModule:  m.cfg.module,
			ConsoleLimit:   m.cfg.consoleLimit,
			SpawnLatencyNs: int64(m.cfg.spawnLatency),
			AuditDisabled:  m.cfg.auditDisabled,
			Workload:       string(m.cfg.workload),
			Origin:         m.originUp.Load(),
		},
		Scripts:   scripts,
		Listeners: m.NetListeners(),
		AuditSeq:  m.sys.Audit().Seq(),
		Staging:   m.sys.StagingState(),
	}
	return image.New(layers, meta), nil
}

// quiesce blocks new runs and waits for in-flight ones: it takes the
// pool lock, then every session's run lock (Run holds runMu for the
// whole run and never takes the pool lock, so the ordering is safe).
// The returned release function undoes it.
func (m *Machine) quiesce() (release func()) {
	m.mu.Lock()
	locked := make([]*sync.Mutex, 0, len(m.sessions)+1)
	for _, s := range m.sessions {
		if s != nil {
			s.runMu.Lock()
			locked = append(locked, &s.runMu)
		}
	}
	if m.def != nil {
		m.def.runMu.Lock()
		locked = append(locked, &m.def.runMu)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].Unlock()
		}
		m.mu.Unlock()
	}
}

// BaseImage returns the image the machine was booted from (nil for
// machines built from scratch).
func (m *Machine) BaseImage() *Image { return m.baseImage }

// ImageCacheStats reports whether this machine's boot reused a cached
// flattened base layer (hit) or had to compute it (miss); both are zero
// for machines built from scratch.
func (m *Machine) ImageCacheStats() (hits, misses uint64) {
	return m.imageHits.Load(), m.imageMisses.Load()
}

// FSWindow observes which filesystem paths are mutated while it is
// open — the O(dirty) fast path conformance oracles use instead of
// walking the whole tree before and after a run.
type FSWindow struct {
	w *vfs.ChangeWindow
}

// OpenFSWindow starts recording mutated paths. Close the window when
// done; open windows pin the mutation journal.
func (m *Machine) OpenFSWindow() *FSWindow {
	return &FSWindow{w: m.sys.K.FS.OpenChangeWindow()}
}

// Touched returns the distinct absolute paths mutated since the window
// opened, in first-touch order. Touched is conservative: it reports
// where writes landed, not whether content ended up different.
func (w *FSWindow) Touched() []string { return w.w.Touched() }

// Close stops recording and releases the window's hold on the journal.
func (w *FSWindow) Close() { w.w.Close() }
