package shill_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/shill"
)

// ExampleNewMachine boots a simulated machine and runs one native
// command in a fresh session — the smallest possible embedding.
func ExampleNewMachine() {
	m, err := shill.NewMachine()
	if err != nil {
		panic(err)
	}
	defer m.Close()

	s := m.NewSession()
	defer s.Close()
	res, err := s.RunCommand(context.Background(), []string{"/bin/echo", "hello from shill"}, "")
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Console)
	// Output: hello from shill
}

// ExampleSession_Run executes an ambient SHILL script; the Result
// carries everything the run wrote to the session's console.
func ExampleSession_Run() {
	m, err := shill.NewMachine()
	if err != nil {
		panic(err)
	}
	defer m.Close()

	s := m.NewSession()
	defer s.Close()
	res, err := s.Run(context.Background(), shill.Script{
		Name: "hello.ambient",
		Source: `#lang shill/ambient

append(stdout, "capabilities, not ambient authority\n");
`,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("exit %d: %s", res.ExitStatus, res.Console)
	// Output: exit 0: capabilities, not ambient authority
}

// ExampleSession_Run_denyReasons shows denial provenance: the script
// hands a capability to a function whose contract attenuates it to
// read-only, and the refused write comes back as a structured
// DenyReason naming the deciding layer.
func ExampleSession_Run_denyReasons() {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadDemo))
	if err != nil {
		panic(err)
	}
	defer m.Close()

	s := m.NewSession()
	defer s.Close()
	// why_denied.cap / why_denied.ambient ship with the machine: peek's
	// contract strips the write privilege its body then needs.
	res, err := s.Run(context.Background(), shill.Script{Name: "why_denied.ambient"})
	if err == nil {
		panic("the demo denial did not surface")
	}
	// The run's Result carries the structured denials recorded during
	// exactly this run (seq-windowed, not the whole log). Errors that
	// carry provenance directly can also be unpacked with
	// shill.DenyReasonFor(err).
	for _, d := range res.Denials {
		fmt.Printf("op %q denied by the %v layer\n", d.Op, d.Layer)
	}
	// Output:
	// op "write" denied by the capability layer
}

// ExampleSession_Run_cancellation bounds a runaway script with a
// context deadline: the eval loop and any blocking kernel waits stop
// promptly, and the session stays reusable.
func ExampleSession_Run_cancellation() {
	m, err := shill.NewMachine()
	if err != nil {
		panic(err)
	}
	defer m.Close()
	m.AddScript("forever.cap", `#lang shill/cap

provide forever : {} -> void;

forever = fun() {
  for a in range(100000) {
    for b in range(100000) { b; }
  }
};
`)

	s := m.NewSession()
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = s.Run(ctx, shill.Script{
		Name:   "forever.ambient",
		Source: "#lang shill/ambient\nrequire \"forever.cap\";\nforever();\n",
	})
	fmt.Println("deadline stopped the script:", errors.Is(err, context.DeadlineExceeded))

	// The session survives the cancellation.
	res, err := s.Run(context.Background(), shill.Script{
		Name:   "after.ambient",
		Source: "#lang shill/ambient\n\nappend(stdout, \"still alive\\n\");\n",
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Console)
	// Output:
	// deadline stopped the script: true
	// still alive
}
