package shill

import (
	"context"
	"strings"
	"testing"

	"repro/internal/prof"
)

// Ports of the paper-figure tests onto the public embedding API: the
// machine is built with NewMachine, scripts run through sessions, and
// results are read back through Result and the staging helpers.

var bg = context.Background()

// newTestMachine builds a machine with the SHILL module installed and
// the paper's figure scripts loaded.
func newTestMachine(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	m, err := NewMachine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// runAmbient runs an ambient script on the default session.
func runAmbient(m *Machine, name, src string) (*Result, error) {
	return m.DefaultSession().Run(bg, Script{Name: name, Source: src})
}

func mustReadFile(t *testing.T, m *Machine, path string) string {
	t.Helper()
	out, err := m.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return out
}

func TestFigure4And6Jpeginfo(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/Documents/dog.jpg", []byte("JFIFdogdata"), 0o644, UserUID)
	res, err := runAmbient(m, "jpeginfo.ambient", ScriptJpeginfoAmbient)
	if err != nil {
		t.Fatalf("ambient script: %v", err)
	}
	if !strings.Contains(res.Console, "640x480") {
		t.Fatalf("jpeginfo output missing info line: %q", res.Console)
	}
	if !strings.Contains(res.Console, "dog.jpg") {
		t.Fatalf("jpeginfo output missing file path: %q", res.Console)
	}
}

func TestFigure3FindJpg(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/pics/a.jpg", []byte("JFIFa"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/pics/sub/b.jpg", []byte("JFIFb"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/pics/notes.txt", []byte("x"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/out.txt", nil, 0o644, UserUID)

	ambient := `#lang shill/ambient
require "find_jpg.cap";

pics = open_dir("/home/user/pics");
out = open_file("/home/user/out.txt");
find_jpg(pics, out);
`
	if _, err := runAmbient(m, "main.ambient", ambient); err != nil {
		t.Fatalf("ambient: %v", err)
	}
	got := mustReadFile(t, m, "/home/user/out.txt")
	if !strings.Contains(got, "/home/user/pics/a.jpg") ||
		!strings.Contains(got, "/home/user/pics/sub/b.jpg") {
		t.Fatalf("find_jpg output = %q", got)
	}
	if strings.Contains(got, "notes.txt") {
		t.Fatalf("find_jpg matched a non-jpg: %q", got)
	}
}

// TestFigure5PolymorphicFind checks both halves of the §2.4.2 guarantee:
// the filter may use privileges beyond the bound (here +path via
// has_ext), while find's own body cannot.
func TestFigure5PolymorphicFind(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/tree/x.c", []byte("int main(){}"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/tree/sub/y.c", []byte("void f(){}"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/tree/z.txt", []byte("no"), 0o644, UserUID)
	m.sys.MustWrite("/home/user/found.txt", nil, 0o644, UserUID)

	ambient := `#lang shill/ambient
require "find.cap";
require "driver.cap";

tree = open_dir("/home/user/tree");
out = open_file("/home/user/found.txt");
run_find(tree, out);
`
	m.AddScript("driver.cap", `#lang shill/cap
require "find.cap";

provide run_find :
  {tree : dir(+contents, +lookup, +path, +stat, +read),
   out : file(+append)} -> void;

run_find = fun(tree, out) {
  find(tree,
       fun(f) { has_ext(f, "c"); },
       fun(f) { append(out, path(f) + "\n"); });
};
`)
	if _, err := runAmbient(m, "main.ambient", ambient); err != nil {
		t.Fatalf("ambient: %v", err)
	}
	got := mustReadFile(t, m, "/home/user/found.txt")
	if !strings.Contains(got, "x.c") || !strings.Contains(got, "y.c") {
		t.Fatalf("find output = %q", got)
	}
	if strings.Contains(got, "z.txt") {
		t.Fatalf("filter failed: %q", got)
	}
}

// TestPolymorphicBoundEnforced verifies that the body of a function with
// a forall contract cannot exceed the bound even though the supplied
// capability has more privileges.
func TestPolymorphicBoundEnforced(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/tree/x.c", []byte("x"), 0o644, UserUID)

	// sneaky_find tries to read file contents inside the body, which the
	// bound {+lookup, +contents} does not allow.
	m.AddScript("sneaky.cap", `#lang shill/cap

provide sneaky :
  forall X with {+lookup, +contents} .
  {cur : X} -> void;

sneaky = fun(cur) {
  for name in contents(cur) {
    child = lookup(cur, name);
    if is_file(child) then
      read(child);
  }
};
`)
	ambient := `#lang shill/ambient
require "sneaky.cap";

tree = open_dir("/home/user/tree");
sneaky(tree);
`
	_, err := runAmbient(m, "main.ambient", ambient)
	if err == nil {
		t.Fatal("sneaky body read beyond the polymorphic bound without a violation")
	}
	if !strings.Contains(err.Error(), "contract violation") {
		t.Fatalf("expected a contract violation, got: %v", err)
	}
}

// TestContractDeniesUndeclaredOperation is the core §2.2 guarantee: a
// script whose contract grants only +append on out cannot read it.
func TestContractDeniesUndeclaredOperation(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/secret.txt", []byte("secret"), 0o644, UserUID)

	m.AddScript("leaky.cap", `#lang shill/cap

provide leaky : {out : file(+append)} -> void;

leaky = fun(out) {
  read(out);
};
`)
	ambient := `#lang shill/ambient
require "leaky.cap";

out = open_file("/home/user/secret.txt");
leaky(out);
`
	_, err := runAmbient(m, "main.ambient", ambient)
	// read on an append-only capability yields a syserror value, which
	// the script ignores; reading must NOT have succeeded. To observe,
	// run a variant that appends the read result.
	if err != nil {
		t.Fatalf("leaky run failed unexpectedly: %v", err)
	}

	m.AddScript("leaky2.cap", `#lang shill/cap

provide leaky2 : {out : file(+append), sink : file(+append)} -> void;

leaky2 = fun(out, sink) {
  data = read(out);
  if !is_syserror(data) then
    append(sink, data);
};
`)
	m.sys.MustWrite("/home/user/sink.txt", nil, 0o644, UserUID)
	ambient2 := `#lang shill/ambient
require "leaky2.cap";

out = open_file("/home/user/secret.txt");
sink = open_file("/home/user/sink.txt");
leaky2(out, sink);
`
	if _, err := runAmbient(m, "main2.ambient", ambient2); err != nil {
		t.Fatalf("leaky2: %v", err)
	}
	if got := mustReadFile(t, m, "/home/user/sink.txt"); got != "" {
		t.Fatalf("append-only capability leaked data: %q", got)
	}
}

func TestAmbientRestrictions(t *testing.T) {
	m := newTestMachine(t)
	cases := []struct{ name, src string }{
		{"function definition", "#lang shill/ambient\nf = fun(x) { x; };\n"},
		{"if statement", "#lang shill/ambient\nif true then open_dir(\"/\");\n"},
		{"for statement", "#lang shill/ambient\nfor x in [1] { x; }\n"},
	}
	for _, c := range cases {
		if _, err := runAmbient(m, c.name, c.src); err == nil {
			t.Errorf("%s allowed in ambient script", c.name)
		}
	}
}

func TestCapScriptHasNoAmbientAuthority(t *testing.T) {
	m := newTestMachine(t)
	m.AddScript("grab.cap", `#lang shill/cap

provide grab : {} -> void;

grab = fun() {
	open_dir("/");
};
`)
	_, err := runAmbient(m, "main.ambient", `#lang shill/ambient
require "grab.cap";
grab();
`)
	if err == nil || !strings.Contains(err.Error(), "unbound identifier") {
		t.Fatalf("capability-safe script reached open_dir: %v", err)
	}
}

func TestCapScriptCannotRequireAmbient(t *testing.T) {
	m := newTestMachine(t)
	m.AddScript("evil.cap", `#lang shill/cap
require "helper.ambient";

provide f : {} -> void;
f = fun() { };
`)
	m.AddScript("helper.ambient", "#lang shill/ambient\n")
	_, err := runAmbient(m, "main.ambient", `#lang shill/ambient
require "evil.cap";
f();
`)
	if err == nil || !strings.Contains(err.Error(), "ambient") {
		t.Fatalf("cap script required an ambient script: %v", err)
	}
}

func TestSandboxCountsForJpeginfo(t *testing.T) {
	m := newTestMachine(t)
	m.sys.MustWrite("/home/user/Documents/dog.jpg", []byte("JFIFdogdata"), 0o644, UserUID)
	m.Prof().Reset()
	res, err := runAmbient(m, "jpeginfo.ambient", ScriptJpeginfoAmbient)
	if err != nil {
		t.Fatalf("ambient: %v", err)
	}
	// pkg_native runs ldd in one sandbox; the wrapper runs jpeginfo in a
	// second (§4.2 counts sandboxes exactly this way for Download).
	if got := m.Prof().Count(prof.SandboxExec); got != 2 {
		t.Fatalf("sandbox count = %d, want 2", got)
	}
	// The same counts ride on the per-run profile samples.
	var perRun int64
	for _, s := range res.Prof {
		if s.Category == prof.SandboxExec {
			perRun = s.Count
		}
	}
	if perRun != 2 {
		t.Fatalf("per-run sandbox count = %d, want 2", perRun)
	}
}
