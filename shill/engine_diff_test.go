package shill_test

// Differential conformance between the two execution engines at the
// machine level: every case-study script and a large corpus of
// generated programs run under both the tree-walking and the compiled
// engine on fresh machines, and the observable outcomes — run error,
// exit status, console bytes, filesystem snapshot, and the denial
// sequence — must be identical. A divergence is minimized with
// oracle.Minimize and reported as a replayable seed.
//
// This file lives in package shill_test (not shill) because it imports
// internal/oracle, which itself imports repro/shill.

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/shill"
)

var (
	diffN = flag.Int("enginediff.n", 500,
		"generated programs to run through the engine-diff oracle")
	diffSeed = flag.Int64("enginediff.seed", 1,
		"base seed for the generated engine-diff corpus")
	diffReplay = flag.Int64("enginediff.replay", 0,
		"replay exactly this program seed instead of the corpus")
)

var engineDiffPair = []shill.Engine{shill.EngineTreeWalk, shill.EngineCompiled}

// engineOutcome is everything one run exposes to an observer. Two
// engines are equivalent iff these match field for field.
type engineOutcome struct {
	err     string
	console string
	denials []string
	fs      map[string]string
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// denialKeys renders a denial sequence order-preservingly. Seq and
// CapID are identifiers, not semantics, and are excluded; everything a
// user sees in a why-denied report is included.
func denialKeys(ds []*shill.DenyReason) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		r := d.Resolve()
		out[i] = fmt.Sprintf("[%v] %s %s missing=%v blame=%v",
			r.Layer, r.Op, r.Object, r.Missing, r.Blame)
	}
	return out
}

// diffOutcomes returns "" when the outcomes match, else a description
// of the first difference found.
func diffOutcomes(a, b engineOutcome) string {
	if a.err != b.err {
		return fmt.Sprintf("run error diverged:\n tree-walk: %q\n compiled:  %q", a.err, b.err)
	}
	if a.console != b.console {
		return fmt.Sprintf("console diverged:\n tree-walk: %q\n compiled:  %q", a.console, b.console)
	}
	if len(a.denials) != len(b.denials) {
		return fmt.Sprintf("denial count diverged: tree-walk %d, compiled %d\n tree-walk: %v\n compiled:  %v",
			len(a.denials), len(b.denials), a.denials, b.denials)
	}
	for i := range a.denials {
		if a.denials[i] != b.denials[i] {
			return fmt.Sprintf("denial %d diverged:\n tree-walk: %s\n compiled:  %s",
				i, a.denials[i], b.denials[i])
		}
	}
	return diffFS(a.fs, b.fs)
}

func diffFS(a, b map[string]string) string {
	paths := make(map[string]bool, len(a)+len(b))
	for p := range a {
		paths[p] = true
	}
	for p := range b {
		paths[p] = true
	}
	ordered := make([]string, 0, len(paths))
	for p := range paths {
		ordered = append(ordered, p)
	}
	sort.Strings(ordered)
	for _, p := range ordered {
		av, aok := a[p]
		bv, bok := b[p]
		switch {
		case !aok:
			return fmt.Sprintf("fs diverged: %s exists only under the compiled engine", p)
		case !bok:
			return fmt.Sprintf("fs diverged: %s exists only under tree-walk", p)
		case av != bv:
			return fmt.Sprintf("fs diverged at %s:\n tree-walk: %q\n compiled:  %q", p, av, bv)
		}
	}
	return ""
}

// ===========================================================================
// Case studies
// ===========================================================================

// engineCase runs one case-study configuration on a fresh machine. The
// run callback returns the console text it vouches for; the harness
// additionally appends the machine console, the full FS snapshot, and
// the machine-wide denial sequence.
type engineCase struct {
	name     string
	workload shill.Workload
	opts     []shill.Option
	setup    func(t *testing.T, m *shill.Machine)
	run      func(ctx context.Context, m *shill.Machine) (console string, err error)
}

func runEngineCase(t *testing.T, c engineCase, e shill.Engine) engineOutcome {
	t.Helper()
	opts := append([]shill.Option{shill.WithEngine(e), shill.WithWorkload(c.workload)}, c.opts...)
	m, err := shill.NewMachine(opts...)
	if err != nil {
		t.Fatalf("[%v] machine: %v", e, err)
	}
	t.Cleanup(m.Close)
	if c.setup != nil {
		c.setup(t, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	console, runErr := c.run(ctx, m)
	return engineOutcome{
		err:     errString(runErr),
		console: console + "\n--machine console--\n" + m.ConsoleText(),
		denials: denialKeys(m.AuditDenialsSince(0)),
		fs:      m.SnapshotFS(nil),
	}
}

// runNamed runs one of the machine's embedded scripts by name on the
// default session.
func runNamed(ctx context.Context, m *shill.Machine, name string) (string, error) {
	res, err := m.DefaultSession().Run(ctx, shill.Script{Name: name})
	if res == nil {
		return "", err
	}
	return fmt.Sprintf("exit=%d\n%s", res.ExitStatus, res.Console), err
}

func engineCaseStudies() []engineCase {
	return []engineCase{
		{
			// why_denied.ambient + why_denied.cap: the canonical denied
			// run, so the deny path (and its lazy provenance) is compared
			// end to end.
			name:     "why_denied",
			workload: shill.WorkloadDemo,
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return runNamed(ctx, m, "why_denied.ambient")
			},
		},
		{
			// jpeginfo.ambient + jpeginfo.cap (Figures 4 and 6).
			name:     "jpeginfo",
			workload: shill.WorkloadDemo,
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return runNamed(ctx, m, "jpeginfo.ambient")
			},
		},
		{
			// find_jpg.cap (Figure 3) via an inline ambient driver.
			name:     "find_jpg",
			workload: shill.WorkloadNone,
			setup: func(t *testing.T, m *shill.Machine) {
				stageFiles(t, m, map[string]string{
					"/home/user/pics/a.jpg":     "JFIFa",
					"/home/user/pics/sub/b.jpg": "JFIFb",
					"/home/user/pics/notes.txt": "x",
					"/home/user/out.txt":        "",
				})
			},
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				res, err := m.DefaultSession().Run(ctx, shill.Script{Name: "main.ambient", Source: `#lang shill/ambient
require "find_jpg.cap";

pics = open_dir("/home/user/pics");
out = open_file("/home/user/out.txt");
find_jpg(pics, out);
`})
				if res == nil {
					return "", err
				}
				return res.Console, err
			},
		},
		{
			// find.cap (Figure 5): the polymorphic find with a client
			// module, exercising cross-module closures under contract.
			name:     "find_poly",
			workload: shill.WorkloadNone,
			setup: func(t *testing.T, m *shill.Machine) {
				stageFiles(t, m, map[string]string{
					"/home/user/tree/x.c":     "int main(){}",
					"/home/user/tree/sub/y.c": "void f(){}",
					"/home/user/tree/z.txt":   "no",
					"/home/user/found.txt":    "",
				})
				m.AddScript("driver.cap", `#lang shill/cap
require "find.cap";

provide run_find :
  {tree : dir(+contents, +lookup, +path, +stat, +read),
   out : file(+append)} -> void;

run_find = fun(tree, out) {
  find(tree,
       fun(f) { has_ext(f, "c"); },
       fun(f) { append(out, path(f) + "\n"); });
};
`)
			},
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				res, err := m.DefaultSession().Run(ctx, shill.Script{Name: "main.ambient", Source: `#lang shill/ambient
require "find.cap";
require "driver.cap";

tree = open_dir("/home/user/tree");
out = open_file("/home/user/found.txt");
run_find(tree, out);
`})
				if res == nil {
					return "", err
				}
				return res.Console, err
			},
		},
		{
			// grade.ambient + grade.cap: the fine-grained SHILL grader.
			name:     "grade_shill",
			workload: shill.WorkloadGrading,
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return "", m.RunGrading(ctx, shill.ModeShill)
			},
		},
		{
			// grade_sandbox.ambient + grade_sandbox.cap + run_cmd.cap +
			// grade.sh: the single-sandbox grader.
			name:     "grade_sandbox",
			workload: shill.WorkloadGrading,
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return "", m.RunGrading(ctx, shill.ModeSandboxed)
			},
		},
		{
			// pkg_emacs.ambient + pkg_emacs.cap: download through
			// uninstall, each step under its own contract.
			name:     "pkg_emacs",
			workload: shill.WorkloadEmacs,
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return "", m.RunEmacsShill(ctx)
			},
		},
		{
			// apache.ambient + apache.cap: sandboxed httpd driven by ab
			// (single-connection so the access log is deterministic).
			name:     "apache",
			workload: shill.WorkloadApache,
			opts:     []shill.Option{shill.WithConsoleLimit(1 << 20)},
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				w := shill.ApacheWorkload{FileMB: 1, Requests: 4, Concurrency: 1}
				res, err := m.RunApache(ctx, shill.ModeShill, w)
				if res == nil {
					return "", err
				}
				return res.Console, err
			},
		},
		{
			// findgrep.ambient + findgrep.cap + run_cmd.cap.
			name:     "findgrep",
			workload: shill.WorkloadFind,
			opts:     []shill.Option{shill.WithConsoleLimit(1 << 20)},
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return "", m.RunFind(ctx, shill.ModeSandboxed)
			},
		},
		{
			// findgrep_fine.ambient + findgrep_fine.cap: the
			// sandbox-per-file version.
			name:     "findgrep_fine",
			workload: shill.WorkloadFind,
			opts:     []shill.Option{shill.WithConsoleLimit(1 << 20)},
			run: func(ctx context.Context, m *shill.Machine) (string, error) {
				return "", m.RunFind(ctx, shill.ModeShill)
			},
		},
	}
}

func stageFiles(t *testing.T, m *shill.Machine, files map[string]string) {
	t.Helper()
	names := make([]string, 0, len(files))
	for p := range files {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		if err := m.WriteFile(p, []byte(files[p]), 0o644, shill.UserUID); err != nil {
			t.Fatalf("stage %s: %v", p, err)
		}
	}
}

// TestEngineDiffCaseStudies runs every embedded case-study script —
// the full contents of the machine script table — under both engines
// on fresh machines and requires identical outcomes.
func TestEngineDiffCaseStudies(t *testing.T) {
	for _, c := range engineCaseStudies() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tw := runEngineCase(t, c, shill.EngineTreeWalk)
			cp := runEngineCase(t, c, shill.EngineCompiled)
			if d := diffOutcomes(tw, cp); d != "" {
				t.Errorf("case study %s: engines diverge: %s", c.name, d)
			}
		})
	}
}

// ===========================================================================
// Generated corpus
// ===========================================================================

// genRunTimeout bounds one generated variant; a program blocking past
// it is a harness failure, not a divergence.
const genRunTimeout = 30 * time.Second

// runGenProgram runs both rendered variants of a generated program —
// capability-sandboxed and ambient — on one fresh machine under the
// given engine and returns the combined outcome. Harness failures
// (machine construction, staging) are returned as errors and are not
// engine verdicts.
func runGenProgram(p *gen.Program, e shill.Engine) (engineOutcome, error) {
	var out engineOutcome
	m, err := shill.NewMachine(shill.WithEngine(e))
	if err != nil {
		return out, err
	}
	defer m.Close()

	variants := []struct {
		root     string
		portBase int
		ambient  bool
	}{
		{"/gen/p0/sbx", 21000, false},
		{"/gen/p0/amb", 22000, true},
	}
	var consoles []string
	for _, v := range variants {
		if err := stageGenWorkspace(m, v.root, &p.Manifest); err != nil {
			return out, fmt.Errorf("staging %s: %w", v.root, err)
		}
		s := m.DefaultSession()
		driver, module := p.Render(gen.RenderConfig{
			Root: v.root, Console: s.ConsolePath(),
			PortBase: v.portBase, Ambient: v.ambient,
		})
		ctx, cancel := context.WithTimeout(context.Background(), genRunTimeout)
		res, rerr := s.Run(ctx, shill.Script{
			Name:     "gen_driver.ambient",
			Source:   driver,
			Resolver: shill.MapResolver{"gen.cap": module},
		})
		cancel()
		status, console := -1, ""
		if res != nil {
			status, console = res.ExitStatus, res.Console
			out.denials = append(out.denials, denialKeys(res.Denials)...)
		}
		consoles = append(consoles, fmt.Sprintf("variant=%s err=%q exit=%d\n%s",
			v.root, errString(rerr), status, console))
	}
	out.console = strings.Join(consoles, "\n")
	out.fs = m.SnapshotFS(nil)
	return out, nil
}

func stageGenWorkspace(m *shill.Machine, root string, man *gen.Manifest) error {
	if err := m.MkdirAll(root, 0o755, shill.UserUID); err != nil {
		return err
	}
	for _, e := range man.Stage {
		uid := shill.UserUID
		if e.Root {
			uid = 0
		}
		path := root + "/" + e.Rel
		if e.Dir {
			if err := m.MkdirAll(path, e.Mode, uid); err != nil {
				return err
			}
			continue
		}
		if err := m.WriteFile(path, []byte(e.Data), e.Mode, uid); err != nil {
			return err
		}
	}
	return nil
}

// checkGenSeed runs one generated program under both engines. On
// divergence it minimizes the program (re-checking both engines at
// every candidate) and reports a replayable seed.
func checkGenSeed(t *testing.T, seed int64) {
	t.Helper()
	p := gen.New(seed).Program()
	tw, errA := runGenProgram(p, shill.EngineTreeWalk)
	cp, errB := runGenProgram(p, shill.EngineCompiled)
	if errA != nil || errB != nil {
		t.Fatalf("seed %d: harness error (tree-walk: %v, compiled: %v)", seed, errA, errB)
	}
	d := diffOutcomes(tw, cp)
	if d == "" {
		return
	}
	min := oracle.Minimize(p, func(q *gen.Program) bool {
		qa, ea := runGenProgram(q, shill.EngineTreeWalk)
		qb, eb := runGenProgram(q, shill.EngineCompiled)
		// A harness failure is not a confirmed divergence; keep the
		// larger, known-diverging program instead.
		return ea == nil && eb == nil && diffOutcomes(qa, qb) != ""
	})
	driver, module := min.Render(gen.RenderConfig{
		Root: "/gen/p0/sbx", Console: "/dev/console", PortBase: 21000,
	})
	t.Errorf("seed %d: engines diverge: %s\n"+
		"minimized to %d ops; replay with: go test ./shill -run TestEngineDiffGenerated -enginediff.replay=%d\n"+
		"--- minimized driver ---\n%s\n--- minimized module ---\n%s",
		seed, d, min.NumOps(), seed, driver, module)
}

// TestEngineDiffGenerated drives the generated-program corpus through
// both engines: -enginediff.n programs (default 500) derived from
// -enginediff.seed, each staged and run on fresh machines per engine.
func TestEngineDiffGenerated(t *testing.T) {
	if *diffReplay != 0 {
		checkGenSeed(t, *diffReplay)
		return
	}
	n := *diffN
	if testing.Short() {
		n = 50
	}
	for i := 0; i < n; i++ {
		checkGenSeed(t, oracle.SubSeed(*diffSeed, int64(i)))
		if t.Failed() && i >= 10 {
			t.Fatalf("stopping after %d programs with divergences", i+1)
		}
	}
}
