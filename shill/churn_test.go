package shill

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"
)

// Session-pool churn: a serving frontend recycles sessions at high rate,
// including sessions whose runs were cancelled mid-flight. The pool
// accounting (IdleSessions / SessionCount / Stats) must stay exact and
// nothing — processes, sockets, console tees — may leak from one owner
// to the next.

func TestSessionPoolChurnUnderCancel(t *testing.T) {
	m := newTestMachine(t)
	m.AddScript("spin.cap", spinScript)
	base := m.Stats()

	const workers = 8
	const iters = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := m.NewSession()
				if (w+i)%2 == 0 {
					// A run cancelled mid-eval: the slot must come back clean.
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
					if _, err := s.Run(ctx, Script{Name: "spin.ambient", Source: spinAmbient}); err == nil {
						t.Error("cancelled churn run reported success")
					}
					cancel()
				} else {
					res, err := s.Run(context.Background(), Script{Name: "ok.ambient",
						Source: "#lang shill/ambient\n\nappend(stdout, \"ok\\n\");\n"})
					if err != nil {
						t.Errorf("churn run failed: %v", err)
					} else if res.Console != "ok\n" {
						t.Errorf("churn run console = %q (stale console from previous owner?)", res.Console)
					}
				}
				s.Close()
			}
		}(w)
	}
	wg.Wait()

	st := m.Stats()
	if st.IdleSessions != st.Sessions {
		t.Fatalf("pool accounting drifted: %d sessions, %d idle after all Closes", st.Sessions, st.IdleSessions)
	}
	if st.ActiveSessions != 0 {
		t.Fatalf("active sessions = %d after churn, want 0", st.ActiveSessions)
	}
	if st.Sessions > workers {
		t.Fatalf("pool grew to %d sessions under %d concurrent workers", st.Sessions, workers)
	}
	// Each pooled slot keeps its session process alive; nothing else may.
	if want := base.Procs + st.Sessions; st.Procs > want {
		t.Fatalf("process leak: %d procs, want <= %d (%d base + %d pooled sessions)",
			st.Procs, want, base.Procs, st.Sessions)
	}
	if st.LiveSockets > base.LiveSockets {
		t.Fatalf("socket leak: %d live sockets, was %d before churn", st.LiveSockets, base.LiveSockets)
	}

	// Every recycled slot still runs scripts cleanly.
	for i := 0; i < workers; i++ {
		s := m.NewSession()
		assertSessionReusable(t, s)
		s.Close()
	}
}

func TestSessionCloseDetachesTee(t *testing.T) {
	m := newTestMachine(t)
	s1 := m.NewSession()
	var leaked recordingWriter
	s1.StreamConsole(&leaked)
	s1.Close()

	s2 := m.NewSession() // recycles s1's slot
	defer s2.Close()
	if s2 != s1 {
		t.Fatalf("pool did not recycle the slot (got index %d, want %d)", s2.Index(), s1.Index())
	}
	if _, err := s2.Run(context.Background(), Script{Name: "tee.ambient",
		Source: "#lang shill/ambient\n\nappend(stdout, \"private\\n\");\n"}); err != nil {
		t.Fatal(err)
	}
	if got := leaked.String(); got != "" {
		t.Fatalf("previous owner's tee still attached: streamed %q", got)
	}
}

// recordingWriter records each Write call as one chunk.
type recordingWriter struct {
	mu     sync.Mutex
	chunks []string
}

func (r *recordingWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chunks = append(r.chunks, string(p))
	return len(p), nil
}

func (r *recordingWriter) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out string
	for _, c := range r.chunks {
		out += c
	}
	return out
}

func (r *recordingWriter) Chunks() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.chunks...)
}

// linesCap writes n numbered lines to out, one append call each; the
// ambient dialect is straight-line only, so the loop lives in a cap
// module invoked with the session's stdout.
func linesCap(n int) string {
	return fmt.Sprintf(`#lang shill/cap

provide writelines : {out : file(+write, +append)} -> void;

writelines = fun(out) {
  for i in range(%d) {
    append(out, "line-" + to_string(i) + "\n");
  }
};
`, n)
}

const linesAmbient = `#lang shill/ambient
require "lines.cap";
writelines(stdout);
`

// addLinesScript installs the pair and returns the ambient entry point.
func addLinesScript(m *Machine, n int) Script {
	m.AddScript("lines.cap", linesCap(n))
	return Script{Name: "lines.ambient", Source: linesAmbient}
}

func TestStreamConsoleTeeContinuous(t *testing.T) {
	// A tee attached for the whole run sees exactly the run's console
	// output: no lost chunks, no corruption.
	m := newTestMachine(t)
	s := m.NewSession()
	defer s.Close()
	var rec recordingWriter
	s.StreamConsole(&rec)
	defer s.StreamConsole(nil)

	res, err := s.Run(context.Background(), addLinesScript(m, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rec.String() != res.Console {
		t.Fatalf("tee stream diverged from capture:\n tee %q\n cap %q", rec.String(), res.Console)
	}
}

func TestStreamConsoleTeeAttachDetachWhileWriting(t *testing.T) {
	// Attaching and detaching the tee while a script is writing must be
	// race-clean, and whatever the tee observed must be whole,
	// in-order chunks — never torn or interleaved-corrupt writes.
	m := newTestMachine(t)
	s := m.NewSession()
	defer s.Close()

	const lines = 400
	done := make(chan *Result, 1)
	go func() {
		res, err := s.Run(context.Background(), addLinesScript(m, lines))
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()

	var rec recordingWriter
	for attached := false; ; attached = !attached {
		select {
		case res := <-done:
			s.StreamConsole(nil)
			verifyTeeChunks(t, rec.Chunks(), lines)
			if res != nil && len(res.Console) == 0 {
				t.Fatal("run produced no console output")
			}
			return
		default:
		}
		if attached {
			s.StreamConsole(nil)
		} else {
			s.StreamConsole(&rec)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

var teeLine = regexp.MustCompile(`^line-(\d+)\n$`)

// verifyTeeChunks asserts every observed chunk is one whole write (a
// complete numbered line) and the sequence is strictly increasing —
// chunks may be missing (tee was detached) but never corrupt or
// reordered.
func verifyTeeChunks(t *testing.T, chunks []string, max int) {
	t.Helper()
	last := -1
	for i, c := range chunks {
		sub := teeLine.FindStringSubmatch(c)
		if sub == nil {
			t.Fatalf("chunk %d is torn or corrupt: %q", i, c)
		}
		n, _ := strconv.Atoi(sub[1])
		if n <= last || n >= max {
			t.Fatalf("chunk %d out of order: line %d after line %d", i, n, last)
		}
		last = n
	}
}

func TestRunSweepsLeftoverSockets(t *testing.T) {
	// Language-level sockets live on the stack, not in a process fd
	// table; the run-end sweep must close whatever a script left bound —
	// whether the run completed (a listen with no close) or was
	// cancelled while parked in accept.
	m := newTestMachine(t)
	s := m.NewSession()
	defer s.Close()
	before := m.Stats()

	res, err := s.Run(context.Background(), Script{Name: "listen.ambient", Source: `#lang shill/ambient
require shill/sockets;

f = socket_factory("ip");
l = socket_listen(f, "9901");
`})
	if err != nil {
		t.Fatalf("listen script failed: %v (%+v)", err, res)
	}
	if st := m.Stats(); st.LiveSockets != before.LiveSockets || st.Listeners != before.Listeners {
		t.Fatalf("completed run leaked sockets: before %+v, after %+v", before, st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx, Script{Name: "accept.ambient", Source: acceptAmbient}); err == nil {
		t.Fatal("blocked accept was not cancelled")
	}
	if st := m.Stats(); st.LiveSockets != before.LiveSockets || st.Listeners != before.Listeners {
		t.Fatalf("cancelled run leaked sockets: before %+v, after %+v", before, st)
	}
	assertSessionReusable(t, s)
}
