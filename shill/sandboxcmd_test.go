package shill

import (
	"testing"

	"repro/internal/priv"
)

func TestParseGrant(t *testing.T) {
	g, err := parseGrant("+read, +lookup with (+stat, +path), +append")
	if err != nil {
		t.Fatal(err)
	}
	want := priv.NewSet(priv.RRead, priv.RLookup, priv.RAppend)
	if g.Rights != want {
		t.Fatalf("rights = %v", g.Rights)
	}
	sub := g.DerivedGrant(priv.RLookup)
	if sub.Rights != priv.NewSet(priv.RStat, priv.RPath) {
		t.Fatalf("modifier = %v", sub.Rights)
	}
}

func TestParseGrantUnderscores(t *testing.T) {
	g, err := parseGrant("+create_file, +unlink_file")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(priv.RCreateFile) || !g.Has(priv.RUnlinkFile) {
		t.Fatalf("underscore names not accepted: %v", g)
	}
}

func TestParseGrantErrors(t *testing.T) {
	for _, s := range []string{
		"read",                // missing +
		"+nosuch",             // unknown privilege
		"+lookup with +read",  // missing parens
		"+lookup with (+read", // unterminated
	} {
		if _, err := parseGrant(s); err == nil {
			t.Errorf("parseGrant(%q) succeeded", s)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	src := `# policy
/usr/src   +lookup, +contents, +read, +stat, +path
out.txt    +write, +append
socket ip  +sock-create, +sock-connect, +sock-send, +sock-recv
`
	policy, err := ParseSandboxPolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	grants := policy.grants
	if len(grants) != 3 {
		t.Fatalf("grants = %d", len(grants))
	}
	if grants[0].path != "/usr/src" || !grants[0].grant.Has(priv.RContents) {
		t.Fatalf("line 1: %+v", grants[0])
	}
	// Relative paths resolve against the home directory.
	if grants[1].path != "/home/user/out.txt" {
		t.Fatalf("line 2 path = %s", grants[1].path)
	}
	if grants[2].socket != "ip" || !grants[2].grant.Has(priv.RSockConnect) {
		t.Fatalf("line 3: %+v", grants[2])
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, src := range []string{
		"/path\n",                   // missing privileges
		"socket tcp +sock-create\n", // unknown domain
	} {
		if _, err := ParseSandboxPolicy(src); err == nil {
			t.Errorf("ParseSandboxPolicy(%q) succeeded", src)
		}
	}
}
