package shill

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/kernel"
	"repro/internal/priv"
)

// TestAuditNoCrossSessionBleed runs 16 concurrent workload sessions
// against one kernel, each spawning its own sandbox session that is
// denied a write on a session-private path, and asserts — under the
// race detector in CI — that every session's audit shard contains only
// its own events: the denial for its own path, never a sibling's.
func TestAuditNoCrossSessionBleed(t *testing.T) {
	const n = 16
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	fs := m.kernel().FS

	// One private file per workload session.
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/audit/s%02d/secret.txt", i)
		if _, err := fs.WriteFile(path, []byte("x"), 0o666, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	kernelSession := make([]uint64, n)
	_, err := m.RunSessions(bg, n, func(ctx context.Context, s *Session) (*Result, error) {
		dirPath := fmt.Sprintf("/audit/s%02d", s.Index())
		sb, err := s.proc.Fork()
		if err != nil {
			return nil, err
		}
		if _, err := sb.ShillInit(kernel.SessionOptions{}); err != nil {
			return nil, err
		}
		grant := func(path string, g *priv.Grant) error {
			return sb.ShillGrant(fs.MustResolve(path), g)
		}
		if err := grant("/", priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath)); err != nil {
			return nil, err
		}
		if err := grant("/audit", priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath)); err != nil {
			return nil, err
		}
		if err := grant(dirPath, priv.GrantOf(priv.ReadOnlyDir)); err != nil {
			return nil, err
		}
		if err := sb.ShillEnter(); err != nil {
			return nil, err
		}
		kernelSession[s.Index()] = sb.Session().ID()

		// Allowed read, then a denied write on the private file.
		fd, err := sb.OpenAt(kernel.AtCWD, dirPath+"/secret.txt", kernel.ORead, 0)
		if err != nil {
			return nil, fmt.Errorf("read should be allowed: %w", err)
		}
		sb.Close(fd)
		if _, err := sb.OpenAt(kernel.AtCWD, dirPath+"/secret.txt", kernel.OWrite, 0); err == nil {
			return nil, fmt.Errorf("write should be denied")
		}
		sb.Exit(0)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	log := m.AuditLog()
	for i := 0; i < n; i++ {
		id := kernelSession[i]
		events := log.Query(audit.Filter{Session: id})
		if len(events) == 0 {
			t.Fatalf("session %d (index %d): no events", id, i)
		}
		ownDir := fmt.Sprintf("/audit/s%02d", i)
		var denials int
		for _, e := range events {
			if e.Session != id {
				t.Fatalf("index %d: event from session %d on shard %d: %s",
					i, e.Session, id, audit.FormatEvent(e))
			}
			// Any event naming an /audit/ path must name OUR directory.
			if strings.Contains(e.Object, "/audit/") && !strings.Contains(e.Object, ownDir) {
				t.Fatalf("index %d: foreign path in event: %s", i, audit.FormatEvent(e))
			}
			if e.Verdict == audit.Deny {
				denials++
				if e.Object != ownDir+"/secret.txt" {
					t.Fatalf("index %d: denial names %q, want own secret", i, e.Object)
				}
				if e.Layer != audit.LayerPolicy || !e.Rights.Has(priv.RWrite) {
					t.Fatalf("index %d: denial lacks provenance: %s", i, audit.FormatEvent(e))
				}
			}
		}
		if denials != 1 {
			t.Fatalf("index %d: %d denials, want exactly 1", i, denials)
		}
	}
}

// TestAuditTrailAcrossGradingSessions runs the real multi-session
// grading workload and checks each kernel session's shard is
// self-consistent (stamped with its own id) while the global sequencer
// kept all events totally ordered.
func TestAuditTrailAcrossGradingSessions(t *testing.T) {
	const n = 4
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	if _, err := m.RunGradingSessions(bg, n, ModeShill, GradingWorkload{Students: 2, Tests: 1}); err != nil {
		t.Fatal(err)
	}
	log := m.AuditLog()
	if log.Emits() == 0 {
		t.Fatal("grading emitted no audit events")
	}
	for _, id := range log.Sessions() {
		events := log.Query(audit.Filter{Session: id})
		for _, e := range events {
			if e.Session != id {
				t.Fatalf("shard %d holds event stamped %d", id, e.Session)
			}
		}
		for i := 1; i < len(events); i++ {
			if events[i-1].Seq >= events[i].Seq {
				t.Fatalf("shard %d not in sequence order", id)
			}
		}
	}
}
