package shill

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the multi-session workload layer: a machine can execute
// N independent sandboxed scripts concurrently, each in its own session
// (own runtime process, own console device), the way a production SHILL
// host would serve many users at once. Results can be collected as a
// batch or streamed as each session finishes.

// SessionResult reports one session's outcome in a parallel run.
type SessionResult struct {
	Index   int
	Result  *Result // what the session's function returned, if anything
	Err     error
	Elapsed time.Duration
}

// SessionFunc is one session's work in a parallel run. Returning a
// *Result (e.g. from Session.Run) is optional but lets the caller see
// per-session console output and denials.
type SessionFunc func(ctx context.Context, s *Session) (*Result, error)

// StreamSessions executes fn once per session index, concurrently, one
// goroutine per session, and streams each SessionResult the moment that
// session finishes — the live view a serving frontend consumes. The
// channel closes after n results. Sessions are pooled by index and
// reused across calls, so repeated parallel runs do not grow the
// process table.
func (m *Machine) StreamSessions(ctx context.Context, n int, fn SessionFunc) <-chan SessionResult {
	out := make(chan SessionResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		s := m.session(i)
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			start := time.Now()
			res, err := fn(ctx, s)
			out <- SessionResult{Index: i, Result: res, Err: err, Elapsed: time.Since(start)}
		}(i, s)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// RunSessions executes fn once per session index, concurrently, and
// returns every result ordered by index; the returned error is the
// first session error, if any.
func (m *Machine) RunSessions(ctx context.Context, n int, fn SessionFunc) ([]SessionResult, error) {
	results := make([]SessionResult, 0, n)
	for r := range m.StreamSessions(ctx, n, fn) {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("session %d: %w", results[i].Index, results[i].Err)
		}
	}
	return results, nil
}

// GradingRoot returns the course root a parallel grading session uses.
func GradingRoot(i int) string { return fmt.Sprintf("/course/s%03d", i) }

// PrepareGradingSessions stages one private course tree per session (if
// not already staged for this workload) and resets its outputs, so
// RunPreparedGradingSessions can be called repeatedly from a benchmark
// loop with staging outside the timed region.
func (m *Machine) PrepareGradingSessions(n int, w GradingWorkload) {
	for i := 0; i < n; i++ {
		m.session(i) // ensure console + proc exist
		m.sys.EnsureGradingCourseAt(GradingRoot(i), w)
	}
}

// RunGradingSessions grades n private courses concurrently, one session
// each, in the given mode — the parallel variant of the Figure 9
// grading case study.
func (m *Machine) RunGradingSessions(ctx context.Context, n int, mode Mode, w GradingWorkload) ([]SessionResult, error) {
	m.PrepareGradingSessions(n, w)
	return m.RunPreparedGradingSessions(ctx, n, mode)
}

// RunPreparedGradingSessions grades the n courses most recently staged
// by PrepareGradingSessions without re-staging or resetting them, so a
// benchmark's timed region measures grading alone.
func (m *Machine) RunPreparedGradingSessions(ctx context.Context, n int, mode Mode) ([]SessionResult, error) {
	return m.RunSessions(ctx, n, func(ctx context.Context, s *Session) (*Result, error) {
		return m.runGradingSession(ctx, s, mode, GradingRoot(s.Index()))
	})
}

// runGradingSession grades one course root inside one session.
func (m *Machine) runGradingSession(ctx context.Context, s *Session, mode Mode, root string) (*Result, error) {
	switch mode {
	case ModeAmbient:
		res, err := s.RunCommand(ctx, []string{"/bin/sh",
			root + "/grade.sh", root + "/submissions", root + "/tests", root + "/work", root + "/grades"}, "")
		if err != nil {
			return res, err
		}
		if res.ExitStatus != 0 {
			return res, fmt.Errorf("grade.sh exited with status %d", res.ExitStatus)
		}
		return res, nil
	case ModeSandboxed:
		return s.Run(ctx, Script{Name: "grade_sandbox.ambient",
			Source: GradeAmbientSandboxAt(root, s.ConsolePath())})
	case ModeShill:
		return s.Run(ctx, Script{Name: "grade.ambient",
			Source: GradeAmbientShillAt(root, s.ConsolePath())})
	}
	return nil, fmt.Errorf("unknown mode %v", mode)
}
