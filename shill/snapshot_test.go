package shill_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/shill"
)

// snapTestScript writes one file into the tenant's home directory — the
// minimal stand-in for per-tenant state that must survive an
// evict/restore cycle.
const snapTestScript = `#lang shill/ambient

home = open_dir("/home/user");
f = create_file(home, "tenant-note.txt");
append(f, "remember me");
`

// TestSnapshotRestoreRoundTrip snapshots a machine with tenant state on
// top of a staged workload and proves a restored machine sees the same
// files, scripts, staging, and audit continuity — including across the
// serialize/deserialize wire format.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.NewSession()
	if _, err := s.Run(context.Background(), shill.Script{Name: "note.ambient", Source: snapTestScript}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	s.Close()
	m.AddScript("tenant_helper.cap", `#lang shill/cap

provide greet : {out : file(+append)} -> void;

greet = fun(out) { append(out, "helper alive\n"); };
`)

	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	seqAt := m.AuditSeq()

	// Wire round trip: shilld persists evicted tenants as bytes.
	img2, err := shill.DeserializeImage(img.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if img2.ID() != img.ID() {
		t.Fatalf("wire round trip changed ID: %s vs %s", img2.ID(), img.ID())
	}

	r, err := shill.RestoreMachine(img2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadFile("/home/user/tenant-note.txt")
	if err != nil || got != "remember me" {
		t.Fatalf("tenant file lost: %q, %v", got, err)
	}
	if sub, err := r.ReadFile("/course/submissions/student000/main.ml"); err != nil || sub == "" {
		t.Fatalf("staged workload lost: %v", err)
	}
	if r.AuditSeq() < seqAt {
		t.Fatalf("audit sequence rewound: %d < %d", r.AuditSeq(), seqAt)
	}

	// The restored machine must be immediately usable: run the helper
	// script the tenant installed before the snapshot.
	rs := r.NewSession()
	defer rs.Close()
	res, err := rs.Run(context.Background(), shill.Script{Name: "check.ambient", Source: `#lang shill/ambient
require "tenant_helper.cap";

greet(stdout);
append(stdout, read(open_file("/home/user/tenant-note.txt")));
`})
	if err != nil {
		t.Fatalf("run on restored machine: %v", err)
	}
	if !strings.Contains(res.Console, "remember me") {
		t.Fatalf("restored run console: %q", res.Console)
	}
}

// TestSnapshotDeterminism proves snapshot→restore→snapshot is a fixed
// point: the second image is byte-identical to the first (same ID),
// which is what lets a frontend deduplicate idle tenants against
// golden images.
func TestSnapshotDeterminism(t *testing.T) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.WriteFile("/home/user/state.txt", []byte("tenant state"), 0o644, shill.UserUID); err != nil {
		t.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	r, err := shill.RestoreMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	img2, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if img2.ID() != img.ID() {
		t.Fatalf("restored-unmodified snapshot diverged: %s vs %s", img2.ID(), img.ID())
	}
	if !bytes.Equal(img2.Serialize(), img.Serialize()) {
		t.Fatal("restored-unmodified snapshot not byte-identical")
	}

	// And once the restored machine mutates, the IDs must diverge.
	if err := r.WriteFile("/home/user/state.txt", []byte("changed"), 0o644, shill.UserUID); err != nil {
		t.Fatal(err)
	}
	img3, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if img3.ID() == img.ID() {
		t.Fatal("mutated machine produced the same image ID")
	}
}

// TestRestoreIsolation boots several machines from one image and proves
// copy-on-write isolation: each machine's writes are invisible to its
// siblings and to later restores of the same image.
func TestRestoreIsolation(t *testing.T) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadDemo))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	a, err := shill.RestoreMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := shill.RestoreMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Image-cache accounting: the first restore flattens, the second
	// reuses the cached view.
	if _, misses := a.ImageCacheStats(); misses != 1 {
		t.Fatalf("first restore should miss the flatten cache: %v", misses)
	}
	if hits, _ := b.ImageCacheStats(); hits != 1 {
		t.Fatalf("second restore should hit the flatten cache: %v", hits)
	}

	if err := a.WriteFile("/home/user/Documents/dog.jpg", []byte("A's dog"), 0o644, shill.UserUID); err != nil {
		t.Fatal(err)
	}
	b.RemovePath("/home/user/Documents/dog.jpg")
	if got, err := a.ReadFile("/home/user/Documents/dog.jpg"); err != nil || got != "A's dog" {
		t.Fatalf("a lost its write: %q, %v", got, err)
	}
	if _, err := b.ReadFile("/home/user/Documents/dog.jpg"); err == nil {
		t.Fatal("b still sees the file it deleted")
	}

	c, err := shill.RestoreMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.ReadFile("/home/user/Documents/dog.jpg"); err != nil || got != "JFIFdog" {
		t.Fatalf("base image polluted by sibling writes: %q, %v", got, err)
	}
}

// TestSnapshotQuiesceUnderLoad snapshots a machine repeatedly while
// sessions run scripts against it and proves every captured image is
// consistent (restorable, with each tenant file either absent or
// complete — never torn).
func TestSnapshotQuiesceUnderLoad(t *testing.T) {
	m, err := shill.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.NewSession()
			defer s.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := fmt.Sprintf(`#lang shill/ambient

home = open_dir("/home/user");
f = create_file(home, "w%d-%d.txt");
append(f, "payload-%d-%d");
`, w, i, w, i)
				if _, err := s.Run(context.Background(), shill.Script{Name: "w.ambient", Source: src}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 5; round++ {
		img, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		r, err := shill.RestoreMachine(img)
		if err != nil {
			t.Fatal(err)
		}
		// Every file present in the image must be complete.
		for _, p := range imagePaths(img) {
			if !strings.HasPrefix(p, "/home/user/w") {
				continue
			}
			body, err := r.ReadFile(p)
			if err != nil {
				t.Fatalf("round %d: %s vanished on restore: %v", round, p, err)
			}
			if !strings.HasPrefix(body, "payload-") {
				t.Fatalf("round %d: torn write captured in %s: %q", round, p, body)
			}
		}
		r.Close()
	}
	close(stop)
	wg.Wait()
}

// imagePaths lists every path in the image's flattened view.
func imagePaths(img *shill.Image) []string {
	flat, _ := img.Flatten()
	return flat.Paths()
}

// TestRestoreOriginRestart proves a machine whose origin server was
// running at capture comes back with the listener re-bound.
func TestRestoreOriginRestart(t *testing.T) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadEmacs))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.NetListeners()) == 0 {
		t.Fatal("emacs workload did not start the origin")
	}
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := shill.RestoreMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.NetListeners(), m.NetListeners(); len(got) != len(want) {
		t.Fatalf("restored listeners %v, want %v", got, want)
	}
}

// TestRestoreOptionOverride proves explicit options win over the
// image's recorded configuration: a snapshot of a grading machine can
// be restored with a different workload staged on top.
func TestRestoreOptionOverride(t *testing.T) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := shill.RestoreMachine(img, shill.WithWorkload(shill.WorkloadDemo))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// The demo files must be staged on top of the image's grading tree.
	if _, err := r.ReadFile("/home/user/Documents/dog.jpg"); err != nil {
		t.Fatalf("override workload not staged: %v", err)
	}
	if _, err := r.ReadFile("/course/submissions/student000/main.ml"); err != nil {
		t.Fatalf("image workload lost under override: %v", err)
	}
}
