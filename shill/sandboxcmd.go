package shill

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cap"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/sandbox"
	"repro/internal/stdlib"
)

// This file is the programmatic form of the paper's command-line
// debugging tool (§3.2.2): run one native command inside a
// capability-based sandbox whose authority comes from a parsed policy,
// optionally in debugging mode (missing privileges are auto-granted and
// logged — "a useful starting point for identifying necessary
// capabilities to provide to a SHILL script").

// SandboxPolicy is a parsed set of capability grants.
//
// Policy text syntax, one grant per line:
//
//	# path                privileges
//	/usr/src              +lookup, +contents, +stat, +path, +read
//	/home/user/out.txt    +write, +append
//	socket ip             +sock-create, +sock-connect, +sock-send, +sock-recv
//
// A privilege may carry a derivation modifier: +lookup with (+read,
// +stat). Relative paths resolve against /home/user.
type SandboxPolicy struct {
	grants []grantLine
}

// grantLine is one parsed policy grant.
type grantLine struct {
	path   string // filesystem grants
	socket string // "ip" or "unix" for socket-factory grants
	grant  *priv.Grant
}

// ParseSandboxPolicy parses the policy file format.
func ParseSandboxPolicy(src string) (*SandboxPolicy, error) {
	var out []grantLine
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want \"<path> <privileges>\"", lineNo+1)
		}
		target := fields[0]
		rest := strings.TrimSpace(fields[1])
		g := grantLine{}
		if target == "socket" {
			sub := strings.SplitN(rest, " ", 2)
			if len(sub) != 2 || (sub[0] != "ip" && sub[0] != "unix") {
				return nil, fmt.Errorf("line %d: want \"socket ip|unix <privileges>\"", lineNo+1)
			}
			g.socket = sub[0]
			rest = sub[1]
		} else {
			if !strings.HasPrefix(target, "/") {
				target = "/home/user/" + target
			}
			g.path = target
		}
		grant, err := parseGrant(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		g.grant = grant
		out = append(out, g)
	}
	return &SandboxPolicy{grants: out}, nil
}

// parseGrant parses "+a, +b with (+c, +d), +e".
func parseGrant(s string) (*priv.Grant, error) {
	g := &priv.Grant{}
	for len(s) > 0 {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, "+") {
			return nil, fmt.Errorf("expected +privilege at %q", s)
		}
		s = s[1:]
		end := strings.IndexAny(s, " ,\t")
		name := s
		if end >= 0 {
			name = s[:end]
			s = s[end:]
		} else {
			s = ""
		}
		r, err := priv.ParseRight(strings.ReplaceAll(name, "_", "-"))
		if err != nil {
			return nil, err
		}
		g.Rights = g.Rights.Add(r)
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "with") {
			s = strings.TrimLeft(s[4:], " \t")
			if !strings.HasPrefix(s, "(") {
				return nil, fmt.Errorf("expected ( after with")
			}
			close := strings.IndexByte(s, ')')
			if close < 0 {
				return nil, fmt.Errorf("unterminated with(...)")
			}
			sub, err := parseGrant(s[1:close])
			if err != nil {
				return nil, err
			}
			if g.Derived == nil {
				g.Derived = make(map[priv.Right]*priv.Grant)
			}
			g.Derived[r] = sub
			s = s[close+1:]
		}
	}
	return g, nil
}

// SandboxCommand describes one sandboxed native command.
type SandboxCommand struct {
	// Argv is the command line; Argv[0] is resolved against the image
	// PATH when it has no slash.
	Argv []string
	// Policy supplies the sandbox's capability grants (nil: only the
	// executable, the library directories, and the console).
	Policy *SandboxPolicy
	// Debug runs the sandbox in debugging mode: missing privileges are
	// granted automatically and recorded.
	Debug bool
}

// SandboxResult reports a finished sandboxed command.
type SandboxResult struct {
	ExitStatus int
	Console    string
	SessionID  uint64 // kernel session, 0 if the sandbox never formed
	// Denials and AutoGrants are the session log's formatted entries:
	// what was refused, and (in debug mode) what was granted on the fly
	// — the lines to add to the policy.
	Denials    []string
	AutoGrants []string
	// Trail is the session's retained audit trail, formatted.
	Trail []string
}

// ExecSandboxed runs one native command in a fresh capability-based
// sandbox on the machine, with the authority the policy grants plus the
// executable, the shared-library directories (read-only), and the
// machine console as stdio. Cancellation kills the sandboxed process
// tree. The SandboxResult is non-nil even on error whenever the sandbox
// got far enough to say anything useful.
func (m *Machine) ExecSandboxed(ctx context.Context, cmd SandboxCommand) (*SandboxResult, error) {
	if len(cmd.Argv) == 0 {
		return nil, fmt.Errorf("shill: ExecSandboxed needs an argv")
	}
	exePath, err := m.LookPath(cmd.Argv[0])
	if err != nil {
		return nil, err
	}
	exeVn, err := m.sys.K.FS.Resolve(exePath)
	if err != nil {
		return nil, err
	}
	runtime := m.sys.Runtime
	exe := cap.NewFile(runtime, exeVn, stdlib.ExecGrant)

	consoleCap := func() *cap.Capability {
		return cap.NewFile(runtime, m.sys.K.FS.MustResolve("/dev/console"), priv.FullGrant())
	}
	opts := sandbox.Options{
		Debug:   cmd.Debug,
		Logging: true,
		Prof:    m.sys.Prof,
		Stdout:  consoleCap(),
		Stderr:  consoleCap(),
		Stdin:   consoleCap(),
	}
	// Library directories ride along read-only, as pkg_native would
	// arrange.
	for _, libDir := range []string{"/lib", "/usr/local/lib"} {
		if vn, lerr := m.sys.K.FS.Resolve(libDir); lerr == nil {
			opts.Extras = append(opts.Extras, cap.NewDir(runtime, vn, stdlib.ReadOnlyDirGrant))
		}
	}
	args := make([]sandbox.Arg, 0, len(cmd.Argv)-1)
	for _, a := range cmd.Argv[1:] {
		args = append(args, sandbox.StrArg(a))
	}
	if cmd.Policy != nil {
		for _, g := range cmd.Policy.grants {
			if g.socket != "" {
				domain := netstack.DomainIP
				if g.socket == "unix" {
					domain = netstack.DomainUnix
				}
				opts.SocketFactories = append(opts.SocketFactories,
					cap.NewSocketFactory(runtime, domain, g.grant))
				continue
			}
			vn, rerr := m.sys.K.FS.Resolve(g.path)
			if rerr != nil {
				return nil, fmt.Errorf("policy: %s: %w", g.path, rerr)
			}
			opts.Extras = append(opts.Extras, cap.NewForVnode(runtime, vn, g.grant))
		}
	}

	// The sandbox launches from the default session's process and writes
	// the shared console, so it takes that session's run lock: concurrent
	// ExecSandboxed/Run calls must not share one interrupt gate, kill
	// each other's children, or steal each other's console output.
	ds := m.DefaultSession()
	ds.runMu.Lock()
	ds.console.ResetOutput()
	release := ds.armCancel(ctx)
	res, execErr := sandbox.Exec(runtime, exe, args, opts)
	release()
	consoleOut := string(ds.console.Output())
	ds.console.ResetOutput()
	ds.runMu.Unlock()

	out := &SandboxResult{ExitStatus: res.ExitCode, Console: consoleOut}
	if res.Session != nil {
		out.SessionID = res.Session.ID()
		for _, e := range m.AuditEvents(AuditFilter{Session: res.Session.ID()}) {
			out.Trail = append(out.Trail, FormatAuditEvent(e))
		}
		if log := res.Session.Log(); log != nil {
			for _, e := range log.Denials() {
				out.Denials = append(out.Denials, e.String())
			}
			for _, e := range log.AutoGrants() {
				out.AutoGrants = append(out.AutoGrants, e.String())
			}
		}
	}
	if execErr != nil {
		return out, fmt.Errorf("exec: %w", execErr)
	}
	return out, nil
}
