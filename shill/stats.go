package shill

import "repro/internal/prof"

// MachineStats is a point-in-time snapshot of a machine's resource
// accounting — what a serving frontend (shilld's /metrics) exports and
// what leak-checking tests compare before/after a workload. All
// counters are cheap to read; none stop the machine.
type MachineStats struct {
	// Sessions is the number of pooled session slots ever created
	// (the default session is not counted).
	Sessions int `json:"sessions"`
	// IdleSessions is how many of those slots are closed and waiting
	// for reuse — the accounting an admission scheduler needs to know
	// whether a new run will recycle a session or grow the pool.
	IdleSessions int `json:"idleSessions"`
	// ActiveSessions is Sessions - IdleSessions: slots currently owned
	// by a caller.
	ActiveSessions int `json:"activeSessions"`
	// Procs is the number of live processes in the kernel's table.
	Procs int `json:"procs"`
	// LiveSockets is the number of sockets open on the network stack.
	LiveSockets int `json:"liveSockets"`
	// Listeners is the number of bound listening addresses.
	Listeners int `json:"listeners"`
	// AuditSeq is the audit log's global sequence point (total events
	// recorded since boot).
	AuditSeq uint64 `json:"auditSeq"`
	// Sandboxes is how many sandboxes the machine has created.
	Sandboxes int64 `json:"sandboxes"`
	// CompileCacheHits/CompileCacheMisses count compiled-script cache
	// lookups (compiled engine only; both zero under tree-walk).
	CompileCacheHits   uint64 `json:"compileCacheHits"`
	CompileCacheMisses uint64 `json:"compileCacheMisses"`
	// ImageCacheHits/ImageCacheMisses report whether booting this
	// machine reused an already-flattened base image (hit) or had to
	// flatten it (miss); both zero for machines built from scratch.
	ImageCacheHits   uint64 `json:"imageCacheHits"`
	ImageCacheMisses uint64 `json:"imageCacheMisses"`
}

// Stats snapshots the machine's resource accounting.
func (m *Machine) Stats() MachineStats {
	m.mu.Lock()
	sessions := len(m.sessions)
	idle := len(m.free)
	m.mu.Unlock()
	compileHits, compileMisses := m.compileCache.Stats()
	return MachineStats{
		Sessions:       sessions,
		IdleSessions:   idle,
		ActiveSessions: sessions - idle,
		Procs:          len(m.sys.K.Procs()),
		LiveSockets:    m.sys.K.Net.LiveSockets(),
		Listeners:      len(m.sys.K.Net.Listeners()),
		AuditSeq:       m.sys.Audit().Seq(),
		Sandboxes:      m.sys.Prof.Count(prof.SandboxSetup),

		CompileCacheHits:   compileHits,
		CompileCacheMisses: compileMisses,
		ImageCacheHits:     m.imageHits.Load(),
		ImageCacheMisses:   m.imageMisses.Load(),
	}
}

// IdleSessions reports how many pooled session slots are free for
// reuse by the next NewSession.
func (m *Machine) IdleSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// SessionCount reports how many pooled session slots exist in total.
func (m *Machine) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}
