package shill

import (
	"sync"
	"testing"
)

// The compiled-script cache is machine-wide and content-hash-keyed:
// sessions share warm compilations, concurrent warm-up is race-clean,
// and updating a script under the same name can never execute a stale
// compilation (a new content hash is a new cache entry).

const cacheHello = "#lang shill/ambient\n\nappend(stdout, \"hi\\n\");\n"

func TestCompileCacheContentHash(t *testing.T) {
	m := newTestMachine(t, WithEngine(EngineCompiled))
	m.AddScript("hello.ambient", cacheHello)
	s := m.NewSession()
	defer s.Close()

	res, err := s.Run(bg, Script{Name: "hello.ambient"})
	if err != nil || res.Console != "hi\n" {
		t.Fatalf("first run = %q, %v", res.Console, err)
	}
	hits0, misses0 := m.CompileCacheStats()
	if misses0 == 0 {
		t.Fatal("first compiled run recorded no cache miss")
	}

	res, err = s.Run(bg, Script{Name: "hello.ambient"})
	if err != nil || res.Console != "hi\n" {
		t.Fatalf("second run = %q, %v", res.Console, err)
	}
	hits1, misses1 := m.CompileCacheStats()
	if misses1 != misses0 {
		t.Fatalf("second run of identical source recompiled: misses %d -> %d", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Fatalf("second run did not hit the cache: hits %d -> %d", hits0, hits1)
	}
}

func TestTreeWalkLeavesCompileCacheCold(t *testing.T) {
	m := newTestMachine(t) // default engine: tree-walk
	m.AddScript("hello.ambient", cacheHello)
	s := m.NewSession()
	defer s.Close()
	if _, err := s.Run(bg, Script{Name: "hello.ambient"}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := m.CompileCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("tree-walk run touched the compile cache: hits=%d misses=%d", hits, misses)
	}
}

func TestCompileCacheConcurrentWarmup(t *testing.T) {
	// 16 sessions race to warm the same script. Racing first compiles
	// may each miss (the cache trades duplicate work for lock-freedom),
	// but every run must succeed with the right output, and once warm
	// the miss count stays fixed.
	m := newTestMachine(t, WithEngine(EngineCompiled))
	m.AddScript("warm.ambient", "#lang shill/ambient\n\nappend(stdout, \"warm\\n\");\n")

	const sessions = 16
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	consoles := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		s := m.NewSession()
		defer s.Close()
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			res, err := s.Run(bg, Script{Name: "warm.ambient"})
			errs[i] = err
			if res != nil {
				consoles[i] = res.Console
			}
		}(i, s)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil || consoles[i] != "warm\n" {
			t.Fatalf("session %d: console %q, err %v", i, consoles[i], errs[i])
		}
	}
	hits, misses := m.CompileCacheStats()
	if hits+misses < sessions {
		t.Fatalf("cache saw %d lookups across %d sessions", hits+misses, sessions)
	}

	// The cache is now warm: one more session is a pure hit.
	s := m.NewSession()
	defer s.Close()
	if _, err := s.Run(bg, Script{Name: "warm.ambient"}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := m.CompileCacheStats()
	if misses2 != misses {
		t.Fatalf("warm cache recompiled: misses %d -> %d", misses, misses2)
	}
	if hits2 <= hits {
		t.Fatalf("warm run did not hit: hits %d -> %d", hits, hits2)
	}
}

func TestCompileCacheScriptUpdateNotStale(t *testing.T) {
	// Re-registering a script under the same name must execute the new
	// source, never a stale compilation; re-registering the original
	// source afterwards is a pure content-hash hit.
	v1 := "#lang shill/ambient\n\nappend(stdout, \"v1\\n\");\n"
	v2 := "#lang shill/ambient\n\nappend(stdout, \"v2\\n\");\n"

	m := newTestMachine(t, WithEngine(EngineCompiled))
	m.AddScript("u.ambient", v1)
	s := m.NewSession()
	defer s.Close()

	run := func(want string) {
		t.Helper()
		res, err := s.Run(bg, Script{Name: "u.ambient"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Console != want {
			t.Fatalf("console = %q, want %q (stale compilation executed?)", res.Console, want)
		}
	}
	run("v1\n")
	m.AddScript("u.ambient", v2)
	run("v2\n")
	_, missesAfterV2 := m.CompileCacheStats()

	// Reverting to v1 must not recompile: the v1 entry is still keyed
	// by its content hash.
	m.AddScript("u.ambient", v1)
	run("v1\n")
	if _, misses := m.CompileCacheStats(); misses != missesAfterV2 {
		t.Fatalf("reverting to cached source recompiled: misses %d -> %d", missesAfterV2, misses)
	}
}
