// Package shill is the public embedding API of the SHILL reproduction
// (OSDI '14): it assembles a simulated machine running the SHILL kernel
// module, hands out first-class sandbox-capable sessions, and runs SHILL
// scripts with context cancellation, per-run consoles, windowed denial
// provenance, and per-run profiles.
//
// The three-step shape every embedder uses:
//
//	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadDemo))
//	defer m.Close()
//	s := m.NewSession()
//	res, err := s.Run(ctx, shill.Script{Name: "main.ambient", Source: src})
//
// Result carries the script's exit status, everything it wrote to the
// session's console, the structured audit.DenyReason slice for exactly
// this run (seq-windowed, not the whole log), and the run's profile
// samples. Cancelling ctx interrupts the interpreter's eval loop and
// every blocking kernel wait (process wait, socket accept/recv/send),
// kills whatever the run spawned, and leaves the session reusable.
package shill

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Engine selects the interpreter's execution path for every session of
// a machine (see WithEngine).
type Engine = lang.Engine

// Engines. EngineTreeWalk is the original AST interpreter;
// EngineCompiled is the slot-resolved compiled path (compiled scripts
// are cached machine-wide, keyed by content hash).
const (
	EngineTreeWalk = lang.EngineTreeWalk
	EngineCompiled = lang.EngineCompiled
)

// ParseEngine parses an -engine flag value ("tree-walk" or "compiled").
func ParseEngine(s string) (Engine, error) { return lang.ParseEngine(s) }

// ErrMachineClosed is returned by Session.Run and Session.RunCommand
// after Machine.Close: a closed machine's kernel workers and network
// stack are torn down, so running scripts against it would yield
// undefined half-alive behavior rather than a meaningful result.
var ErrMachineClosed = errors.New("shill: machine is closed")

// UserUID is the uid of the unprivileged user sessions run as.
const UserUID = core.UserUID

// Workload names a stageable case-study image (§4.1).
type Workload string

// Stageable workloads, mirroring the -workload flag of the command-line
// tools.
const (
	WorkloadNone    Workload = "none"
	WorkloadDemo    Workload = "demo" // a home directory with a few JPEGs
	WorkloadGrading Workload = "grading"
	WorkloadEmacs   Workload = "emacs" // also starts the origin server
	WorkloadApache  Workload = "apache"
	WorkloadFind    Workload = "find"
)

// config collects the functional options of NewMachine.
type config struct {
	module        bool
	consoleLimit  int
	spawnLatency  time.Duration
	auditDisabled bool
	traceDisabled bool
	workload      Workload
	resolver      ScriptResolver
	engine        Engine
	baseImage     *image.Image
}

// Option configures NewMachine.
type Option func(*config)

// WithModule selects whether the SHILL kernel module is installed
// (true, the default — the "SHILL installed" configuration) or not
// (false — the paper's "Baseline").
func WithModule(installed bool) Option {
	return func(c *config) { c.module = installed }
}

// WithWorkload stages a case-study image during machine construction.
func WithWorkload(w Workload) Option {
	return func(c *config) { c.workload = w }
}

// WithSpawnLatency simulates the fork/exec cost of the paper's real
// testbed on every exec (the in-memory simulator otherwise collapses it
// to ~0); parallel-session benchmarks enable it so throughput scaling
// reflects overlap of genuine blocking.
func WithSpawnLatency(d time.Duration) Option {
	return func(c *config) { c.spawnLatency = d }
}

// WithAuditDisabled turns the always-on audit trail off — the control
// configuration for measuring audit overhead.
func WithAuditDisabled() Option {
	return func(c *config) { c.auditDisabled = true }
}

// WithTraceDisabled turns request tracing off — the escape hatch (and
// the control arm of the trace-overhead benchmark). Tracing is on by
// default; every Run records a span tree into the machine's ring.
func WithTraceDisabled() Option {
	return func(c *config) { c.traceDisabled = true }
}

// WithConsoleLimit caps every console capture buffer (machine console
// and per-session consoles alike); 0 means unbounded.
func WithConsoleLimit(n int) Option {
	return func(c *config) { c.consoleLimit = n }
}

// WithScriptResolver prepends a resolver to the machine's script-lookup
// chain; the built-in case-study scripts remain the fallback.
func WithScriptResolver(r ScriptResolver) Option {
	return func(c *config) { c.resolver = r }
}

// WithEngine selects the execution engine for every session of the
// machine. The default is EngineTreeWalk; EngineCompiled runs scripts
// through the compiled path and shares one content-hash-keyed compile
// cache across all sessions, so a script submitted repeatedly (shilld's
// per-request scripts) compiles once.
func WithEngine(e Engine) Option {
	return func(c *config) { c.engine = e }
}

// Machine is an assembled simulated machine: the kernel, the base
// image, a staged workload, and a pool of sessions. It replaces the
// internal core.System façade as the supported entry surface.
type Machine struct {
	sys      *core.System
	resolver ScriptResolver
	closed   atomic.Bool

	cfg                    config       // resolved options, recorded into snapshots
	baseImage              *image.Image // image the machine booted from, if any
	imageHits, imageMisses atomic.Uint64
	originUp               atomic.Bool // origin server running (recorded into snapshots)

	engine       Engine
	compileCache *lang.CompileCache
	tracer       *trace.Recorder

	mu       sync.Mutex
	sessions []*Session // pool, indexed; entries are reused across runs
	free     []int      // indexes returned by Session.Close
	def      *Session   // the shared-console default session
}

// NewMachine builds a machine with the base image (binaries, libraries,
// devices, home directory), installs the SHILL module unless disabled,
// loads the built-in case-study scripts, and stages the requested
// workload.
func NewMachine(opts ...Option) (*Machine, error) {
	cfg := config{module: true, workload: WorkloadNone}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.baseImage != nil {
		// Re-seed from the image's recorded configuration, then
		// re-apply the explicit options so they override it.
		seeded := restoreConfig(cfg.baseImage)
		for _, o := range opts {
			o(&seeded)
		}
		return restoreMachine(seeded)
	}
	sys := core.NewSystem(core.Config{
		InstallModule: cfg.module,
		ConsoleLimit:  cfg.consoleLimit,
		SpawnLatency:  cfg.spawnLatency,
		AuditDisabled: cfg.auditDisabled,
	})
	m := &Machine{
		sys: sys, engine: cfg.engine, cfg: cfg,
		compileCache: lang.NewCompileCache(),
		tracer:       trace.NewRecorder(trace.DefaultRingSize),
	}
	m.tracer.SetEnabled(!cfg.traceDisabled)
	sys.LoadCaseScripts()
	base := ScriptResolver(builtinResolver{sys})
	if cfg.resolver != nil {
		m.resolver = ChainResolver{cfg.resolver, base}
	} else {
		m.resolver = base
	}
	if err := m.Stage(cfg.workload); err != nil {
		sys.Close()
		return nil, err
	}
	return m, nil
}

// Stage builds a case-study workload image on the machine (idempotent
// for repeated staging of the same workload).
func (m *Machine) Stage(w Workload) error {
	s := m.sys
	switch w {
	case WorkloadNone, "":
		return nil
	case WorkloadDemo:
		if _, err := s.K.FS.WriteFile("/home/user/Documents/dog.jpg", []byte("JFIFdog"), 0o644, UserUID, UserUID); err != nil {
			return err
		}
		_, err := s.K.FS.WriteFile("/home/user/Documents/cat.jpg", []byte("JFIFcat"), 0o644, UserUID, UserUID)
		return err
	case WorkloadGrading:
		s.BuildGradingCourse(core.DefaultGrading)
		return nil
	case WorkloadEmacs:
		s.BuildEmacsOrigin(core.DefaultEmacs)
		stop, err := s.StartOrigin()
		_ = stop // runs for the machine lifetime
		if err == nil {
			m.originUp.Store(true)
		}
		return err
	case WorkloadApache:
		s.BuildWWW(core.DefaultApache)
		return nil
	case WorkloadFind:
		s.BuildSrcTree(core.DefaultFind)
		return nil
	}
	return fmt.Errorf("shill: unknown workload %q", w)
}

// Close shuts the machine down: background kernel workers stop and any
// goroutine still parked in a kernel wait is woken. Subsequent Run and
// RunCommand calls on any of the machine's sessions return
// ErrMachineClosed.
func (m *Machine) Close() {
	m.closed.Store(true)
	m.sys.Close()
}

// Closed reports whether Close has been called.
func (m *Machine) Closed() bool { return m.closed.Load() }

// Resolver returns the machine's script-lookup chain (user resolvers
// first, built-in case-study scripts last).
func (m *Machine) Resolver() ScriptResolver { return m.resolver }

// Engine reports the execution engine the machine's sessions use.
func (m *Machine) Engine() Engine { return m.engine }

// CompileCacheStats reports compile-cache hits and misses (compiled
// engine only; both are zero under the tree-walk engine).
func (m *Machine) CompileCacheStats() (hits, misses uint64) {
	return m.compileCache.Stats()
}

// Tracer returns the machine's span recorder: the lock-free ring every
// run's spans land in. Servers poll it (trace.Recorder.Since) for the
// machine-wide span stream; each Result additionally carries its own
// run's spans.
func (m *Machine) Tracer() *trace.Recorder { return m.tracer }

// Prof returns the machine-wide profile collector (the Figure 10
// accumulation across runs; each Result additionally carries the
// samples of its own run).
func (m *Machine) Prof() *prof.Collector { return m.sys.Prof }

// FlushAuditProf attributes the audit subsystem's accumulated emission
// time to the profile's AuditEmit category (call before Prof().Report).
func (m *Machine) FlushAuditProf() { m.sys.FlushAuditProf() }

// SandboxCount reports how many sandboxes the machine has created — the
// statistic the paper reports per benchmark (Grading 5,371, …).
func (m *Machine) SandboxCount() int64 { return m.sys.Prof.Count(prof.SandboxSetup) }

// AuditLog exposes the machine's audit log for provenance queries
// (lineage, trace, summaries). Per-run denials are already on Result.
func (m *Machine) AuditLog() *audit.Log { return m.sys.Audit() }

// AuditSeq returns the audit log's current sequence point; pass it to
// AuditDenialsSince to window a manual query the way Session.Run does.
func (m *Machine) AuditSeq() uint64 { return m.sys.Audit().Seq() }

// AuditDenialsSince returns the structured denials recorded after the
// given sequence point.
func (m *Machine) AuditDenialsSince(since uint64) []*DenyReason {
	return m.sys.Audit().DenyReasonsSince(since)
}

// ConsoleText returns and clears everything written to the machine's
// shared console (/dev/console) — the default session's device.
func (m *Machine) ConsoleText() string {
	out := string(m.sys.Console.Output())
	m.sys.Console.ResetOutput()
	return out
}

// WriteFile writes a file into the image (staging helper).
func (m *Machine) WriteFile(path string, data []byte, mode uint16, uid int) error {
	_, err := m.sys.K.FS.WriteFile(path, data, mode, uid, uid)
	return err
}

// ReadFile reads a file from the image.
func (m *Machine) ReadFile(path string) (string, error) {
	vn, err := m.sys.K.FS.Resolve(path)
	if err != nil {
		return "", err
	}
	return string(vn.Bytes()), nil
}

// MkdirAll creates a directory path in the image (staging helper).
func (m *Machine) MkdirAll(path string, mode uint16, uid int) error {
	_, err := m.sys.K.FS.MkdirAll(path, mode, uid, uid)
	return err
}

// RemovePath unlinks a single file, ignoring errors (bench resets).
func (m *Machine) RemovePath(path string) { m.sys.RemovePath(path) }

// RemoveTree removes a directory tree, ignoring errors (bench resets).
func (m *Machine) RemoveTree(path string) { m.sys.RemoveTree(path) }

// LookPath resolves a bare executable name against the image's standard
// binary directories; absolute or relative paths return unchanged when
// they resolve.
func (m *Machine) LookPath(name string) (string, error) {
	if strings.Contains(name, "/") {
		if _, err := m.sys.K.FS.Resolve(name); err != nil {
			return "", fmt.Errorf("shill: %s: %w", name, err)
		}
		return name, nil
	}
	for _, dir := range []string{"/bin/", "/usr/bin/", "/usr/local/bin/", "/usr/local/sbin/"} {
		if _, err := m.sys.K.FS.Resolve(dir + name); err == nil {
			return dir + name, nil
		}
	}
	return "", fmt.Errorf("shill: executable %q not found on image PATH", name)
}

// AddScript installs (or replaces) a named script in the machine's
// built-in script table, making it requirable by every session.
func (m *Machine) AddScript(name, src string) { m.sys.Scripts[name] = src }

// StartOrigin launches the origin web server (serving /srv/origin on
// port 80) and returns a stop function.
func (m *Machine) StartOrigin() (stop func(), err error) {
	stop, err = m.sys.StartOrigin()
	if err == nil {
		m.originUp.Store(true)
		inner := stop
		stop = func() {
			m.originUp.Store(false)
			inner()
		}
	}
	return stop, err
}

// Staging delegations: workload builders remain mechanism in
// internal/core; these are the supported handles.

// BuildGradingCourse stages the default grading course at /course.
func (m *Machine) BuildGradingCourse(w GradingWorkload) { m.sys.BuildGradingCourse(w) }

// ResetGradingOutputs clears /course work and grades between runs.
func (m *Machine) ResetGradingOutputs() { m.sys.ResetGradingOutputs() }

// BuildEmacsOrigin stages the emacs tarball on the origin server.
func (m *Machine) BuildEmacsOrigin(w EmacsWorkload) { m.sys.BuildEmacsOrigin(w) }

// ResetEmacsOutputs clears the build area, downloads, and prefix.
func (m *Machine) ResetEmacsOutputs() { m.sys.ResetEmacsOutputs() }

// BuildWWW stages the Apache document root and configuration.
func (m *Machine) BuildWWW(w ApacheWorkload) { m.sys.BuildWWW(w) }

// BuildSrcTree stages the find case study's source tree.
func (m *Machine) BuildSrcTree(w FindWorkload) (total, cFiles, matches int) {
	return m.sys.BuildSrcTree(w)
}

// Snapshot hooks: conformance oracles (internal/oracle, cmd/shill-soak)
// capture the machine's observable state before and after a run and
// diff it against the run's manifest — the no-escape property of §2.3.

// SnapshotFS walks the filesystem image and returns a map from
// absolute path to a stable content fingerprint ("dir", "dev",
// "link:<target>", or "file:<bytes>"). Paths for which skip returns
// true are omitted, and skipped directories are pruned — the walk does
// not descend into them, so skip must be subtree-closed (skipping a
// directory means skipping everything under it). A nil skip snapshots
// everything.
func (m *Machine) SnapshotFS(skip func(path string) bool) map[string]string {
	fs := m.sys.K.FS
	snap := make(map[string]string, 256)
	fs.WalkPrune(fs.Root(), func(path string, v *vfs.Vnode) bool {
		if skip != nil && skip(path) {
			return false
		}
		switch {
		case v.IsDir():
			snap[path] = "dir"
		case v.Type() == vfs.TypeSymlink:
			target, _ := v.Readlink()
			snap[path] = "link:" + target
		case v.Type() == vfs.TypeCharDev:
			snap[path] = "dev"
		default:
			snap[path] = "file:" + string(v.Bytes())
		}
		return true
	})
	return snap
}

// NetListeners returns the domain-prefixed addresses with a bound
// listener ("ip!8080"), sorted — the network half of a no-escape
// snapshot.
func (m *Machine) NetListeners() []string { return m.sys.K.Net.Listeners() }

// NetLiveSockets reports how many sockets are live on the stack — a
// leak signal for soak harnesses.
func (m *Machine) NetLiveSockets() int { return m.sys.K.Net.LiveSockets() }

// kernelOf gives session internals access to the kernel.
func (m *Machine) kernel() *kernel.Kernel { return m.sys.K }
