package shill

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// ScriptResolver resolves a required script name to its source text. It
// unifies the two loading mechanisms the reproduction grew separately —
// the in-memory script table and the command-line tools' host-directory
// loader — behind one interface: map, host-dir, and chained
// implementations are provided, and anything satisfying the interface
// plugs into WithScriptResolver or Script.Resolver.
type ScriptResolver interface {
	Load(name string) (string, error)
}

// MapResolver serves scripts from an in-memory table.
type MapResolver map[string]string

// Load implements ScriptResolver.
func (m MapResolver) Load(name string) (string, error) {
	src, ok := m[name]
	if !ok {
		return "", fmt.Errorf("shill: no script %q", name)
	}
	return src, nil
}

// HostDirResolver serves scripts from a directory on the host
// filesystem — what `require "x.cap"` resolves against when running a
// script file with cmd/shill.
type HostDirResolver struct {
	Dir string
}

// Load implements ScriptResolver.
func (h HostDirResolver) Load(name string) (string, error) {
	data, err := os.ReadFile(filepath.Join(h.Dir, name))
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// ChainResolver tries each resolver in order and returns the first hit;
// the last error wins when every link misses.
type ChainResolver []ScriptResolver

// Load implements ScriptResolver.
func (c ChainResolver) Load(name string) (string, error) {
	var err error
	for _, r := range c {
		if r == nil {
			continue
		}
		var src string
		if src, err = r.Load(name); err == nil {
			return src, nil
		}
	}
	if err == nil {
		err = fmt.Errorf("shill: no script %q", name)
	}
	return "", err
}

// builtinResolver serves the machine's live script table (the built-in
// case-study scripts plus anything added with AddScript).
type builtinResolver struct {
	sys *core.System
}

// Load implements ScriptResolver.
func (b builtinResolver) Load(name string) (string, error) {
	return b.sys.Scripts.Load(name)
}

// ScriptFiles maps file names to the embedded case-study script
// sources; it backs cmd/genscripts and the examples/scripts consistency
// test.
func ScriptFiles() map[string]string { return core.ScriptFiles() }
