package shill_test

import (
	"testing"

	"repro/shill"
)

// BenchmarkRestoreMachine vs BenchmarkColdMachine is the micro-scale
// version of `benchfig -fig snapshot`: booting from an image must be
// much cheaper than building the machine, because a restore shares the
// image's flattened base layer instead of re-staging every file.

func BenchmarkRestoreMachine(b *testing.B) {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading))
	if err != nil {
		b.Fatal(err)
	}
	img, err := m.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	m.Close()
	// Prime the flatten cache; steady state is what a frontend sees.
	if r, err := shill.RestoreMachine(img); err != nil {
		b.Fatal(err)
	} else {
		r.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := shill.RestoreMachine(img)
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkColdMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading))
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
