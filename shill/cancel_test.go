package shill

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Cancellation contract (the PR 1 postmortem: a hung eval loop cost a
// 600-second timeout): a deliberately non-terminating script cancelled
// via context deadline must return promptly, leak no goroutines, and
// leave the session reusable.

// spinScript loops effectively forever in the interpreter: ~10^10
// iterations of pure evaluation, no kernel waits.
const spinScript = `#lang shill/cap

provide spin : {} -> void;

spin = fun() {
  for a in range(100000) {
    for b in range(100000) {
      b;
    }
  }
};
`

const spinAmbient = `#lang shill/ambient
require "spin.cap";
spin();
`

// acceptScript parks the interpreter in a blocking kernel wait: the
// listener never receives a connection, so socket_accept blocks until
// cancellation interrupts the session's process.
const acceptAmbient = `#lang shill/ambient
require shill/sockets;

f = socket_factory("ip");
l = socket_listen(f, "9997");
c = socket_accept(l);
`

// assertCanceledPromptly runs src with a short deadline and asserts the
// run came back well within the 2-second promptness budget.
func assertCanceledPromptly(t *testing.T, m *Machine, s *Session, name, src string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Run(ctx, Script{Name: name, Source: src})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("%s: cancelled run reported success", name)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("%s: error does not carry the deadline: %v", name, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("%s: cancellation took %v, want < 2s", name, elapsed)
	}
}

// assertSessionReusable proves the session still runs scripts cleanly.
func assertSessionReusable(t *testing.T, s *Session) {
	t.Helper()
	res, err := s.Run(context.Background(), Script{Name: "alive.ambient",
		Source: "#lang shill/ambient\n\nappend(stdout, \"alive\\n\");\n"})
	if err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
	if res.Console != "alive\n" {
		t.Fatalf("session console after cancellation = %q", res.Console)
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (with a small allowance for runtime background goroutines).
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by cancelled runs: %d before, %d after", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelInfiniteEvalLoop(t *testing.T) {
	m := newTestMachine(t)
	m.AddScript("spin.cap", spinScript)
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	assertCanceledPromptly(t, m, s, "spin.ambient", spinAmbient)
	settleGoroutines(t, before)
	assertSessionReusable(t, s)
}

func TestCancelBlockedSocketAccept(t *testing.T) {
	m := newTestMachine(t)
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	assertCanceledPromptly(t, m, s, "accept.ambient", acceptAmbient)
	settleGoroutines(t, before)
	assertSessionReusable(t, s)
}

func TestCancelSandboxedCommand(t *testing.T) {
	// A script blocked waiting on a sandboxed executable (here: httpd,
	// which serves forever) must be cancellable too; the sandboxed
	// process tree is killed and reaped.
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	m.BuildWWW(ApacheWorkload{FileMB: 1, Requests: 1, Concurrency: 1})
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	procsBefore := len(m.kernel().Procs())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Run(ctx, Script{Name: "apache.ambient", Source: ScriptApacheAmbient})
	if err == nil {
		t.Fatal("cancelled server run reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	settleGoroutines(t, before)
	if got := len(m.kernel().Procs()); got > procsBefore {
		t.Fatalf("cancelled run leaked processes: %d before, %d after", procsBefore, got)
	}
	assertSessionReusable(t, s)
}

func TestCancelRunCommand(t *testing.T) {
	// RunCommand on a non-terminating binary: the wait wakes with EINTR,
	// the child is killed and reaped.
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	m.BuildWWW(ApacheWorkload{FileMB: 1, Requests: 1, Concurrency: 1})
	s := m.NewSession()
	defer s.Close()

	procsBefore := len(m.kernel().Procs())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.RunCommand(ctx, []string{"/usr/local/sbin/httpd", "-f", "/usr/local/etc/apache22/httpd.conf"}, "")
	if err == nil {
		t.Fatal("cancelled command reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if got := len(m.kernel().Procs()); got > procsBefore {
		t.Fatalf("cancelled command leaked processes: %d before, %d after", procsBefore, got)
	}
	assertSessionReusable(t, s)
}

func TestCancelDoesNotDisturbSiblingSessions(t *testing.T) {
	// Cancellation is per-session: while one session's run is cancelled,
	// a sibling session's concurrent run completes normally.
	m := newTestMachine(t)
	m.AddScript("spin.cap", spinScript)
	victim := m.NewSession()
	defer victim.Close()
	bystander := m.NewSession()
	defer bystander.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_, err := victim.Run(ctx, Script{Name: "spin.ambient", Source: spinAmbient})
		done <- err
	}()
	res, err := bystander.Run(context.Background(), Script{Name: "ok.ambient",
		Source: "#lang shill/ambient\n\nappend(stdout, \"untouched\\n\");\n"})
	if err != nil {
		t.Fatalf("bystander run failed: %v", err)
	}
	if res.Console != "untouched\n" {
		t.Fatalf("bystander console = %q", res.Console)
	}
	if verr := <-done; verr == nil {
		t.Fatal("victim run was not cancelled")
	}
	assertSessionReusable(t, victim)
}

func TestSessionPoolNoDoubleOwnership(t *testing.T) {
	// A closed session's slot may be reclaimed either by the internal
	// index-keyed pool (drivers) or by NewSession — never by both.
	m := newTestMachine(t)
	first := m.NewSession()
	idx := first.Index()
	first.Close()
	claimed := m.session(idx) // a parallel driver claims the slot back
	fresh := m.NewSession()
	defer fresh.Close()
	if fresh == claimed {
		t.Fatal("NewSession handed out a slot the driver pool had claimed")
	}
}

func TestStreamConsoleTee(t *testing.T) {
	// Streaming: a tee writer sees the run's console output live.
	m := newTestMachine(t)
	s := m.NewSession()
	defer s.Close()
	var sb strings.Builder
	s.StreamConsole(&sb)
	defer s.StreamConsole(nil)
	res, err := s.Run(context.Background(), Script{Name: "tee.ambient",
		Source: "#lang shill/ambient\n\nappend(stdout, \"streamed\\n\");\n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Console != "streamed\n" || sb.String() != "streamed\n" {
		t.Fatalf("capture = %q, stream = %q; want both %q", res.Console, sb.String(), "streamed\n")
	}
}
