package shill

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netstack"
)

// This file carries the paper's case-study drivers (§4.1–§4.2), ported
// onto the session-first API: every configuration of every case study
// is an ordinary Session.Run / Session.RunCommand with a context, so
// drivers are cancellable like any embedder's script.

// Mode selects one of the paper's four benchmark configurations (§4.2).
// Baseline vs Installed is a property of the machine (whether the
// module is loaded); drivers treat them identically — the point of the
// paired configurations is precisely that the code path is the same.
type Mode int

// Benchmark configurations.
const (
	ModeAmbient   Mode = iota // Baseline / "SHILL installed": run the command directly
	ModeSandboxed             // a SHILL script creates one sandbox for the command
	ModeShill                 // the task rewritten in SHILL with fine-grained contracts
)

func (m Mode) String() string {
	switch m {
	case ModeAmbient:
		return "ambient"
	case ModeSandboxed:
		return "sandboxed"
	case ModeShill:
		return "shill"
	}
	return "unknown"
}

// Workload parameter types and defaults, re-exported from the staging
// layer so embedders and the benchmark tools never import internal
// packages.
type (
	// GradingWorkload parameterises the grading course.
	GradingWorkload = core.GradingWorkload
	// EmacsWorkload sizes the emacs source tarball.
	EmacsWorkload = core.EmacsWorkload
	// ApacheWorkload sizes the served file and the ab run.
	ApacheWorkload = core.ApacheWorkload
	// FindWorkload sizes the find source tree.
	FindWorkload = core.FindWorkload
)

// Default and paper-scale workloads.
var (
	DefaultGrading   = core.DefaultGrading
	FullScaleGrading = core.FullScaleGrading
	DefaultEmacs     = core.DefaultEmacs
	DefaultApache    = core.DefaultApache
	DefaultFind      = core.DefaultFind
	FullScaleFind    = core.FullScaleFind
)

// Embedded case-study scripts (the paper's figures), re-exported for
// tooling that reports on them (LoC tables, genscripts).
const (
	GradeSh                      = core.GradeSh
	ScriptFindJpg                = core.ScriptFindJpg
	ScriptFindPoly               = core.ScriptFindPoly
	ScriptJpeginfoCap            = core.ScriptJpeginfoCap
	ScriptJpeginfoAmbient        = core.ScriptJpeginfoAmbient
	ScriptGradeCap               = core.ScriptGradeCap
	ScriptGradeSandboxCap        = core.ScriptGradeSandboxCap
	ScriptPkgEmacsCap            = core.ScriptPkgEmacsCap
	ScriptPkgEmacsAmbient        = core.ScriptPkgEmacsAmbient
	ScriptApacheCap              = core.ScriptApacheCap
	ScriptApacheAmbient          = core.ScriptApacheAmbient
	ScriptFindGrepSandboxCap     = core.ScriptFindGrepSandboxCap
	ScriptFindGrepAmbientSandbox = core.ScriptFindGrepAmbientSandbox
	ScriptFindGrepFineCap        = core.ScriptFindGrepFineCap
	ScriptFindGrepAmbientFine    = core.ScriptFindGrepAmbientFine
	ScriptRunCmd                 = core.ScriptRunCmd
	ScriptWhyDeniedCap           = core.ScriptWhyDeniedCap
	ScriptWhyDeniedAmbient       = core.ScriptWhyDeniedAmbient
)

// Ambient grading drivers against the default course at /course.
var (
	ScriptGradeAmbientShill   = core.ScriptGradeAmbientShill
	ScriptGradeAmbientSandbox = core.ScriptGradeAmbientSandbox
)

// GradeAmbientShillAt renders the pure-SHILL grading driver for a
// course root and console device.
func GradeAmbientShillAt(root, console string) string {
	return core.GradeAmbientShillAt(root, console)
}

// GradeAmbientSandboxAt renders the sandboxed-Bash grading driver for a
// course root and console device.
func GradeAmbientSandboxAt(root, console string) string {
	return core.GradeAmbientSandboxAt(root, console)
}

// ===========================================================================
// Grading (§4.1)
// ===========================================================================

// RunGrading grades the default course at /course in the given mode.
func (m *Machine) RunGrading(ctx context.Context, mode Mode) error {
	s := m.DefaultSession()
	switch mode {
	case ModeAmbient:
		res, err := s.RunCommand(ctx,
			[]string{"/bin/sh", "/course/grade.sh", "/course/submissions", "/course/tests", "/course/work", "/course/grades"}, "")
		if err != nil {
			return err
		}
		if res.ExitStatus != 0 {
			return fmt.Errorf("grade.sh exited with status %d", res.ExitStatus)
		}
		return nil
	case ModeSandboxed:
		_, err := s.Run(ctx, Script{Name: "grade_sandbox.ambient", Source: ScriptGradeAmbientSandbox})
		return err
	case ModeShill:
		_, err := s.Run(ctx, Script{Name: "grade.ambient", Source: ScriptGradeAmbientShill})
		return err
	}
	return fmt.Errorf("unknown mode %v", mode)
}

// GradeFor returns a student's grade-log contents from the default
// course.
func (m *Machine) GradeFor(student string) string {
	return m.GradeAt("/course", student)
}

// GradeAt returns a student's grade-log contents under a course root.
func (m *Machine) GradeAt(root, student string) string {
	out, err := m.ReadFile(root + "/grades/" + student)
	if err != nil {
		return ""
	}
	return out
}

// ===========================================================================
// Emacs package management (§4.1)
// ===========================================================================

// EmacsStep names one sub-benchmark of the package-management case
// study (Figure 9's Download/Untar/Configure/Make/Install/Uninstall).
type EmacsStep string

// Emacs sub-benchmarks.
const (
	StepDownload  EmacsStep = "download"
	StepUntar     EmacsStep = "untar"
	StepConfigure EmacsStep = "configure"
	StepMake      EmacsStep = "make"
	StepInstall   EmacsStep = "install"
	StepUninstall EmacsStep = "uninstall"
)

// AllEmacsSteps lists the sub-benchmarks in dependency order.
var AllEmacsSteps = []EmacsStep{StepDownload, StepUntar, StepConfigure, StepMake, StepInstall, StepUninstall}

// emacsCommand returns the command line for each step (the "command
// line invocation to achieve the same task outside of SHILL", §4.2).
func emacsCommand(step EmacsStep) (bin string, argv []string, wd string) {
	switch step {
	case StepDownload:
		return "/usr/bin/curl", []string{"-o", "/home/user/Downloads/emacs-24.3.tar", "http://origin/emacs-24.3.tar"}, "/home/user/Downloads"
	case StepUntar:
		return "/usr/bin/tar", []string{"-xf", "/home/user/Downloads/emacs-24.3.tar", "-C", "/home/user/build"}, "/home/user/build"
	case StepConfigure:
		return "/bin/sh", []string{"-c", "./configure --prefix=/home/user/.local"}, "/home/user/build/emacs-24.3"
	case StepMake:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3"}, "/home/user/build/emacs-24.3"
	case StepInstall:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3", "install"}, "/home/user/build/emacs-24.3"
	case StepUninstall:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3", "uninstall"}, "/home/user/build/emacs-24.3"
	}
	panic("shill: unknown emacs step " + string(step))
}

// RunEmacsStep runs one sub-benchmark ambiently or in a single sandbox.
// The origin server must be running for StepDownload.
func (m *Machine) RunEmacsStep(ctx context.Context, step EmacsStep, mode Mode) error {
	bin, argv, wd := emacsCommand(step)
	s := m.DefaultSession()
	switch mode {
	case ModeAmbient:
		res, err := s.RunCommand(ctx, append([]string{bin}, argv...), wd)
		if err != nil {
			return fmt.Errorf("%s: %w", step, err)
		}
		if res.ExitStatus != 0 {
			return fmt.Errorf("%s exited with status %d", step, res.ExitStatus)
		}
		return nil
	case ModeSandboxed:
		ambient := m.genRunCmdAmbient(bin, argv, wd, step == StepDownload)
		_, err := s.Run(ctx, Script{Name: string(step) + ".ambient", Source: ambient})
		return err
	}
	return fmt.Errorf("emacs step %s has no %v configuration", step, mode)
}

// genRunCmdAmbient generates the ambient driver for the Sandboxed
// configuration: open every path mentioned on the command line and hand
// the capabilities to run_cmd.
func (m *Machine) genRunCmdAmbient(bin string, argv []string, wd string, network bool) string {
	var b strings.Builder
	b.WriteString("#lang shill/ambient\n\nrequire shill/native;\nrequire \"run_cmd.cap\";\n\n")
	b.WriteString("root = open_dir(\"/\");\nwallet = create_wallet();\n")
	b.WriteString("populate_native_wallet(wallet, root,\n  \"/usr/local/sbin:/usr/bin:/bin\", \"/lib:/usr/local/lib\", pipe_factory());\n\n")
	fmt.Fprintf(&b, "wd = open_dir(%q);\n", wd)
	b.WriteString("out = open_file(\"/dev/console\");\n")

	// Arguments that name existing filesystem objects become
	// capabilities; everything else stays a string.
	parts := []string{fmt.Sprintf("%q", baseNameOf(bin))}
	capIdx := 0
	for _, a := range argv {
		if strings.HasPrefix(a, "/") {
			if vn, err := m.sys.K.FS.Resolve(a); err == nil {
				capIdx++
				varName := fmt.Sprintf("c%d", capIdx)
				if vn.IsDir() {
					fmt.Fprintf(&b, "%s = open_dir(%q);\n", varName, a)
				} else {
					fmt.Fprintf(&b, "%s = open_file(%q);\n", varName, a)
				}
				parts = append(parts, varName)
				continue
			}
		}
		parts = append(parts, fmt.Sprintf("%q", a))
	}
	socks := "[]"
	if network {
		b.WriteString("net = socket_factory(\"ip\");\n")
		socks = "[net]"
	}
	fmt.Fprintf(&b, "run_cmd(wallet, [%s], wd, out, [], %s);\n", strings.Join(parts, ", "), socks)
	return b.String()
}

func baseNameOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RunEmacsShill runs the full package-management script (the "Emacs"
// column's SHILL version): download, unpack, configure, build, install,
// uninstall, each under its own fine-grained contract.
func (m *Machine) RunEmacsShill(ctx context.Context) error {
	_, err := m.DefaultSession().Run(ctx, Script{Name: "pkg_emacs.ambient", Source: ScriptPkgEmacsAmbient})
	return err
}

// ===========================================================================
// Apache (§4.1)
// ===========================================================================

// RunApache starts the server in the given mode, drives the ab workload
// against it from a private session, shuts it down, and returns ab's
// Result (its console output carries the requests/transferred report).
// Server readiness is a listener notification from the network stack —
// no polling.
func (m *Machine) RunApache(ctx context.Context, mode Mode, w ApacheWorkload) (*Result, error) {
	server := m.DefaultSession()
	serverDone := make(chan error, 1)
	switch mode {
	case ModeAmbient:
		go func() {
			res, err := server.RunCommand(ctx, []string{"/usr/local/sbin/httpd", "-f", "/usr/local/etc/apache22/httpd.conf"}, "")
			if err == nil && res.ExitStatus != 0 {
				err = fmt.Errorf("httpd exited with status %d", res.ExitStatus)
			}
			serverDone <- err
		}()
	case ModeSandboxed, ModeShill:
		// Both SHILL configurations run the server through the apache
		// script; the case study has one script (its contract IS the
		// fine-grained version).
		go func() {
			_, err := server.Run(ctx, Script{Name: "apache.ambient", Source: ScriptApacheAmbient})
			serverDone <- err
		}()
	default:
		return nil, fmt.Errorf("unknown mode %v", mode)
	}
	if err := m.sys.K.Net.WaitListener(netstack.DomainIP, "8080", 5*time.Second, ctx.Done()); err != nil {
		// The server may be alive without ever having bound the port, in
		// which case the polite shutdown request cannot reach it —
		// interrupt its session so the failed start cannot hang forever.
		m.shutdownListener("8080")
		server.proc.Interrupt()
		serr := <-serverDone
		server.proc.ClearInterrupt()
		return nil, fmt.Errorf("apache: no listener on 8080 (server: %v): %w", serr, err)
	}
	// Drive the load from a private session, as a separate client would.
	ab := m.NewSession()
	defer ab.Close()
	res, err := ab.RunCommand(ctx, []string{"/usr/bin/ab",
		"-n", fmt.Sprint(w.Requests), "-c", fmt.Sprint(w.Concurrency), "http://localhost:8080/big.bin"}, "")
	m.shutdownListener("8080")
	if serr := <-serverDone; serr != nil {
		return res, fmt.Errorf("httpd: %w", serr)
	}
	if err != nil {
		return res, err
	}
	if res.ExitStatus != 0 {
		return res, fmt.Errorf("ab exited with status %d", res.ExitStatus)
	}
	return res, nil
}

// shutdownListener sends the server's shutdown request.
func (m *Machine) shutdownListener(port string) {
	net := m.sys.K.Net
	sock := net.NewSocket(netstack.DomainIP)
	if err := net.Connect(sock, port); err == nil {
		net.Send(sock, []byte("GET /__shutdown\n"))
		buf := make([]byte, 64)
		net.Recv(sock, buf)
	}
	net.Close(sock)
}

// ===========================================================================
// Find (§4.1)
// ===========================================================================

// RunFind runs the find-and-grep task. ModeAmbient runs the command
// directly; ModeSandboxed uses the single-sandbox script; ModeShill
// uses the fine-grained per-file-sandbox version.
func (m *Machine) RunFind(ctx context.Context, mode Mode) error {
	if err := m.WriteFile("/home/user/matches.txt", nil, 0o644, UserUID); err != nil {
		return err
	}
	s := m.DefaultSession()
	switch mode {
	case ModeAmbient:
		res, err := s.RunCommand(ctx, []string{"/bin/sh",
			"-c", "find /usr/src -name *.c -exec grep -H mac_ {} ';' > /home/user/matches.txt"}, "")
		if err != nil {
			return err
		}
		if res.ExitStatus != 0 {
			return fmt.Errorf("find exited with status %d", res.ExitStatus)
		}
		return nil
	case ModeSandboxed:
		_, err := s.Run(ctx, Script{Name: "findgrep.ambient", Source: ScriptFindGrepAmbientSandbox})
		return err
	case ModeShill:
		_, err := s.Run(ctx, Script{Name: "findgrep_fine.ambient", Source: ScriptFindGrepAmbientFine})
		return err
	}
	return fmt.Errorf("unknown mode %v", mode)
}

// Matches returns the find output.
func (m *Machine) Matches() string {
	out, err := m.ReadFile("/home/user/matches.txt")
	if err != nil {
		return ""
	}
	return out
}
