package shill

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// Cancellation parity for the compiled engine: the PR 3 cancellation
// trio — a pure eval spin loop, a parked socket_accept, and a
// sandboxed long-running command — must cancel within the same 2-second
// budget, leak nothing, and leave the session reusable, exactly as on
// the tree-walking engine. The compiled path polls the context at loop
// back-edges and closure calls instead of per AST node, so this is the
// test that the coarser poll sites are still dense enough.

func TestCompiledCancelInfiniteEvalLoop(t *testing.T) {
	m := newTestMachine(t, WithEngine(EngineCompiled))
	m.AddScript("spin.cap", spinScript)
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	assertCanceledPromptly(t, m, s, "spin.ambient", spinAmbient)
	settleGoroutines(t, before)
	assertSessionReusable(t, s)
}

func TestCompiledCancelBlockedSocketAccept(t *testing.T) {
	m := newTestMachine(t, WithEngine(EngineCompiled))
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	assertCanceledPromptly(t, m, s, "accept.ambient", acceptAmbient)
	settleGoroutines(t, before)
	assertSessionReusable(t, s)
}

func TestCompiledCancelSandboxedCommand(t *testing.T) {
	m := newTestMachine(t, WithEngine(EngineCompiled), WithConsoleLimit(1<<20))
	m.BuildWWW(ApacheWorkload{FileMB: 1, Requests: 1, Concurrency: 1})
	s := m.NewSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	procsBefore := len(m.kernel().Procs())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Run(ctx, Script{Name: "apache.ambient", Source: ScriptApacheAmbient})
	if err == nil {
		t.Fatal("cancelled server run reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	settleGoroutines(t, before)
	if got := len(m.kernel().Procs()); got > procsBefore {
		t.Fatalf("cancelled run leaked processes: %d before, %d after", procsBefore, got)
	}
	assertSessionReusable(t, s)
}
