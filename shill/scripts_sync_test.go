package shill

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang"
)

// TestScriptFilesInSync keeps examples/scripts/ identical to the
// embedded constants (regenerate with `go run ./cmd/genscripts`).
func TestScriptFilesInSync(t *testing.T) {
	for name, src := range ScriptFiles() {
		path := filepath.Join("..", "examples", "scripts", name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go run ./cmd/genscripts`)", name, err)
		}
		if string(data) != src {
			t.Errorf("%s is out of sync with the embedded constant (run `go run ./cmd/genscripts`)", name)
		}
	}
}

// TestAllShippedScriptsParse parses every shipped SHILL script.
func TestAllShippedScriptsParse(t *testing.T) {
	for name, src := range ScriptFiles() {
		if name == "grade.sh" {
			continue // the Bash script is interpreted by /bin/sh
		}
		if _, err := lang.Parse(src); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}
