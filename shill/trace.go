package shill

import (
	"context"

	"repro/internal/prof"
	"repro/internal/trace"
)

// Aliases re-exporting the tracing vocabulary embedders need to read a
// Result's span tree or drive a machine's recorder, without importing
// internal packages.

// Span is one completed interval of a request trace: a node in the span
// tree Result.Trace carries and /v1/trace serves.
type Span = trace.Span

// SpanKind names what a span measures ("request", "queue", "compile",
// "eval", "op-vfs", ...).
type SpanKind = trace.Kind

// TraceRecorder is the machine-wide lock-free span ring (see
// Machine.Tracer).
type TraceRecorder = trace.Recorder

// TraceRef is one live trace: the handle spans are recorded against.
type TraceRef = trace.Ref

// Span kinds, re-exported for switch statements over Result.Trace.
const (
	SpanRequest       = trace.KindRequest
	SpanQueue         = trace.KindQueue
	SpanAcquire       = trace.KindAcquire
	SpanResolve       = trace.KindResolve
	SpanRun           = trace.KindRun
	SpanCompile       = trace.KindCompile
	SpanEval          = trace.KindEval
	SpanStartup       = trace.KindStartup
	SpanSandboxSetup  = trace.KindSandboxSetup
	SpanSandboxExec   = trace.KindSandboxExec
	SpanContractCheck = trace.KindContractCheck
	SpanAuditEmit     = trace.KindAuditEmit
	SpanOpVFS         = trace.KindOpVFS
	SpanOpNet         = trace.KindOpNet
	SpanOpPolicy      = trace.KindOpPolicy
)

// NewTraceContext returns a context carrying an open trace: Session.Run
// records its run span (and everything below it) into ref as a child of
// parent instead of minting a trace of its own. shilld uses this to
// thread one trace from request admission through queue wait down to
// kernel ops.
func NewTraceContext(ctx context.Context, ref *TraceRef, parent uint64) context.Context {
	return trace.NewContext(ctx, &trace.Context{Ref: ref, Parent: parent})
}

// ProfFromTrace reconstructs the Figure 10 profile view from a span
// tree: the prof categories are also span kinds, so the profile is a
// projection of the trace. Returns nil when the spans carry no profile
// categories.
func ProfFromTrace(spans []Span) []prof.Sample { return trace.ProfView(spans) }
