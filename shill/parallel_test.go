package shill

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// These tests exercise the concurrent multi-session path end to end
// (run them under -race): N sessions, each with its own runtime
// process, console device, and course tree, grade simultaneously
// against one shared kernel. They assert both that the runs succeed and
// that isolation holds — no session's output or grades bleed into
// another's.

func parallelWorkload() GradingWorkload {
	return GradingWorkload{Students: 3, Tests: 2, Malicious: true}
}

func TestParallelGradingShill(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	const n = 4
	w := parallelWorkload()
	results, err := m.RunGradingSessions(bg, n, ModeShill, w)
	if err != nil {
		t.Fatalf("parallel grading: %v", err)
	}
	for _, r := range results {
		out := r.Result.Console
		if !strings.Contains(out, "grading-complete") {
			t.Errorf("session %d console = %q, want grading-complete", r.Index, out)
		}
		// Consoles are private: exactly one completion marker each.
		if got := strings.Count(out, "grading-complete"); got != 1 {
			t.Errorf("session %d completion markers = %d, want 1", r.Index, got)
		}
		root := GradingRoot(r.Index)
		g := m.GradeAt(root, "student000")
		if !strings.Contains(g, "compiled") || strings.Contains(g, "fail") {
			t.Errorf("session %d student000 grade = %q, want all passes", r.Index, g)
		}
		if got := strings.Count(g, "pass "); got != w.Tests {
			t.Errorf("session %d student000 passes = %d, want %d", r.Index, got, w.Tests)
		}
		// The SHILL version confines the vandal in every session: no
		// course's test suite is corrupted.
		tests, err := m.ReadFile(root + "/tests/t000")
		if err != nil {
			t.Fatalf("session %d: %v", r.Index, err)
		}
		if tests != "answer000" {
			t.Errorf("session %d vandal corrupted tests: %q", r.Index, tests)
		}
	}
}

// TestParallelGradingWorkloadSwitch: staging is keyed on the workload,
// not just on the course root existing — rerunning with a different
// GradingWorkload must rebuild the trees, not silently grade the old
// course.
func TestParallelGradingWorkloadSwitch(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	fs := m.kernel().FS
	const n = 2
	small := GradingWorkload{Students: 3, Tests: 2}
	big := GradingWorkload{Students: 10, Tests: 5, Malicious: true}
	for _, w := range []GradingWorkload{small, big, small} {
		if _, err := m.RunGradingSessions(bg, n, ModeShill, w); err != nil {
			t.Fatalf("grading %+v: %v", w, err)
		}
		want := w.Students
		if w.Malicious {
			want += 2 // zz_cheater and zz_vandal
		}
		for i := 0; i < n; i++ {
			root := GradingRoot(i)
			dir, err := fs.Resolve(root + "/submissions")
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			names, _ := fs.ReadDir(dir)
			if len(names) != want {
				t.Errorf("session %d with %+v: %d submissions, want %d", i, w, len(names), want)
			}
			grades, err := fs.Resolve(root + "/grades")
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			graded, _ := fs.ReadDir(grades)
			if len(graded) != want {
				t.Errorf("session %d with %+v: %d grades, want %d", i, w, len(graded), want)
			}
		}
	}
}

func TestParallelGradingSandboxed(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	const n = 3
	results, err := m.RunGradingSessions(bg, n, ModeSandboxed, parallelWorkload())
	if err != nil {
		t.Fatalf("parallel sandboxed grading: %v", err)
	}
	for _, r := range results {
		if !strings.Contains(r.Result.Console, "grading-complete") {
			t.Errorf("session %d console = %q, want grading-complete", r.Index, r.Result.Console)
		}
	}
}

func TestParallelGradingRepeatable(t *testing.T) {
	// Back-to-back runs over the same sessions must reuse pooled
	// sessions (no process-table growth) and still produce clean
	// results.
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	const n = 2
	w := parallelWorkload()
	if _, err := m.RunGradingSessions(bg, n, ModeShill, w); err != nil {
		t.Fatal(err)
	}
	procsAfterFirst := len(m.kernel().Procs())
	for round := 0; round < 2; round++ {
		results, err := m.RunGradingSessions(bg, n, ModeShill, w)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, r := range results {
			if !strings.Contains(r.Result.Console, "grading-complete") {
				t.Errorf("round %d session %d console = %q", round, r.Index, r.Result.Console)
			}
		}
	}
	if got := len(m.kernel().Procs()); got > procsAfterFirst {
		t.Errorf("process table grew across runs: %d -> %d", procsAfterFirst, got)
	}
}

func TestRunSessionsIsolatedConsoles(t *testing.T) {
	// The generic runner: each session writes a distinct marker through
	// its own console device; captures must not interleave.
	m := newTestMachine(t)
	const n = 8
	results, err := m.RunSessions(bg, n, func(ctx context.Context, s *Session) (*Result, error) {
		marker := fmt.Sprintf("session-%d-marker", s.Index())
		res, err := s.RunCommand(ctx, []string{"/bin/echo", marker}, "")
		if err != nil {
			return res, err
		}
		if res.ExitStatus != 0 {
			return res, fmt.Errorf("echo exited %d", res.ExitStatus)
		}
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := fmt.Sprintf("session-%d-marker\n", r.Index)
		if r.Result.Console != want {
			t.Errorf("session %d console = %q, want %q", r.Index, r.Result.Console, want)
		}
		if r.Elapsed < 0 || r.Elapsed > time.Minute {
			t.Errorf("session %d implausible elapsed %v", r.Index, r.Elapsed)
		}
	}
}

func TestRunSessionsStdoutBuiltinIsolated(t *testing.T) {
	// The ambient stdout/stderr builtins must bind each session's
	// private console, not the shared /dev/console.
	m := newTestMachine(t)
	const n = 4
	results, err := m.RunSessions(bg, n, func(ctx context.Context, s *Session) (*Result, error) {
		src := fmt.Sprintf("#lang shill/ambient\n\nappend(stdout, \"builtin-%d\\n\");\n", s.Index())
		return s.Run(ctx, Script{Name: "stdout.ambient", Source: src})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := fmt.Sprintf("builtin-%d\n", r.Index)
		if r.Result.Console != want {
			t.Errorf("session %d console = %q, want %q", r.Index, r.Result.Console, want)
		}
	}
	if shared := m.ConsoleText(); shared != "" {
		t.Errorf("shared /dev/console captured session output: %q", shared)
	}
}

func TestStreamSessionsDeliversAsFinished(t *testing.T) {
	// The streaming runner must deliver results as sessions complete:
	// with one deliberately slow session, every fast session's result
	// arrives before the slow one's.
	m := newTestMachine(t)
	const n = 4
	var order []int
	for r := range m.StreamSessions(bg, n, func(ctx context.Context, s *Session) (*Result, error) {
		if s.Index() == 0 {
			time.Sleep(300 * time.Millisecond)
		}
		return s.RunCommand(ctx, []string{"/bin/echo", "hi"}, "")
	}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		order = append(order, r.Index)
	}
	if len(order) != n {
		t.Fatalf("got %d results, want %d", len(order), n)
	}
	if order[len(order)-1] != 0 {
		t.Errorf("slow session finished at position %v, want last (order %v)", order, order)
	}
}

func TestParallelGradingThroughputScales(t *testing.T) {
	// The qualitative version of BenchmarkParallelGrading: with
	// simulated spawn latency (standing in for the real testbed's
	// fork/exec cost) concurrent sessions must finish much faster than
	// the same work run back to back.
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	m := newTestMachine(t, WithConsoleLimit(1<<20), WithSpawnLatency(2*time.Millisecond))
	const n = 8
	w := GradingWorkload{Students: 2, Tests: 1}
	m.PrepareGradingSessions(n, w) // stage outside the timed region

	serial := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := m.RunGradingSessions(bg, 1, ModeShill, w); err != nil {
			t.Fatal(err)
		}
		serial += time.Since(start)
	}
	start := time.Now()
	if _, err := m.RunGradingSessions(bg, n, ModeShill, w); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	// Require a clear win, not statistical noise: 8 concurrent sessions
	// should beat 8 serial runs by at least 2x when latency dominates.
	if parallel > serial/2 {
		t.Errorf("parallel %v vs serial %v: expected at least 2x speedup", parallel, serial)
	}
}
