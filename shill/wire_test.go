package shill

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// Result is part of shilld's wire format: a run executed on a server
// machine is serialized to the HTTP client. The denial provenance —
// the part a remote user needs to understand a rejection — must
// survive the round trip bit-for-bit.

func TestResultJSONRoundTrip(t *testing.T) {
	m := newTestMachine(t, WithWorkload(WorkloadDemo))
	s := m.NewSession()
	defer s.Close()

	res, err := s.Run(context.Background(), Script{Name: "why_denied.ambient"})
	if err == nil {
		t.Fatal("why_denied ran without a denial")
	}
	if len(res.Denials) == 0 {
		t.Fatal("result carries no denials")
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Script != res.Script || got.ExitStatus != res.ExitStatus ||
		got.Console != res.Console || got.Elapsed != res.Elapsed {
		t.Fatalf("scalar fields drifted:\n sent %+v\n got  %+v", res, &got)
	}
	if len(got.Denials) != len(res.Denials) {
		t.Fatalf("denials: sent %d, got %d", len(res.Denials), len(got.Denials))
	}
	for i := range res.Denials {
		// Resolve forces the original's lazily-described fields so the
		// direct field comparison below sees the final values.
		want, have := res.Denials[i].Resolve(), got.Denials[i]
		// An errno sentinel on the original must still satisfy errors.Is
		// after the round trip (event-reconstructed denials have none).
		if want.Errno != nil && !errors.Is(have, want.Errno) {
			t.Fatalf("denial %d lost its errno %v: decoded %+v", i, want.Errno, have)
		}
		if want.Layer != have.Layer || want.Op != have.Op || want.Object != have.Object ||
			want.Missing != have.Missing || want.CapID != have.CapID ||
			!reflect.DeepEqual(want.Blame, have.Blame) || want.Seq != have.Seq {
			t.Fatalf("denial %d lost provenance:\n sent %+v\n got  %+v", i, want, have)
		}
	}
	if !reflect.DeepEqual(got.Prof, res.Prof) {
		t.Fatalf("prof samples drifted")
	}
}
