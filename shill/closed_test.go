package shill_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/shill"
)

// TestRunOnClosedMachine: Run and RunCommand on a closed machine return
// ErrMachineClosed cleanly — never a panic, never a bogus success
// against the half-torn-down kernel (before the closed gate, a run on a
// dead machine "succeeded" with whatever the shut-down network stack
// and stopped session cleaner happened to produce).
func TestRunOnClosedMachine(t *testing.T) {
	m, err := shill.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	def := m.DefaultSession()
	m.Close()

	if !m.Closed() {
		t.Fatalf("Closed() must report true after Close")
	}
	for name, sess := range map[string]*shill.Session{"pooled": s, "default": def} {
		res, err := sess.Run(context.Background(), shill.Script{
			Name: "x.ambient", Source: "#lang shill/ambient\nx = 1;\n"})
		if !errors.Is(err, shill.ErrMachineClosed) {
			t.Errorf("%s: Run on closed machine: err = %v, want ErrMachineClosed", name, err)
		}
		if res != nil {
			t.Errorf("%s: Run on closed machine returned a result: %+v", name, res)
		}
		if _, err := sess.RunCommand(context.Background(), []string{"/bin/true"}, ""); !errors.Is(err, shill.ErrMachineClosed) {
			t.Errorf("%s: RunCommand on closed machine: err = %v, want ErrMachineClosed", name, err)
		}
	}

	// A session minted after Close is equally gated.
	late := m.NewSession()
	if _, err := late.Run(context.Background(), shill.Script{Name: "x.ambient",
		Source: "#lang shill/ambient\nx = 1;\n"}); !errors.Is(err, shill.ErrMachineClosed) {
		t.Errorf("late session: err = %v, want ErrMachineClosed", err)
	}

	// Close is idempotent.
	m.Close()
}

// TestCloseRacesRuns: closing the machine while many sessions run
// scripts must not panic; every run either completes or reports
// ErrMachineClosed (or a cancellation surfaced by the teardown).
func TestCloseRacesRuns(t *testing.T) {
	m, err := shill.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		s := m.NewSession()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 20; j++ {
				_, err := s.Run(context.Background(), shill.Script{
					Name:   "loop.ambient",
					Source: "#lang shill/ambient\nexe = open_file(\"/bin/true\");\nexec(exe, []);\n",
				})
				if err != nil {
					if !errors.Is(err, shill.ErrMachineClosed) {
						// Teardown can also surface as a script-level error
						// (e.g. a socket refused by the shut-down stack);
						// what matters is the absence of panics.
						t.Logf("run error during close race: %v", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	m.Close()
	wg.Wait()
}
