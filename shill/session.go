package shill

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Session is one isolated execution context on a machine: a dedicated
// runtime process (uid UserUID, cwd /home/user), a private console
// device, and a per-run audit window. Sessions are the unit of
// concurrency — a machine serves many sessions at once — and the unit
// of cancellation: cancelling a Run's context stops that session's
// script without disturbing the others, and the session stays reusable.
type Session struct {
	m           *Machine
	index       int // -1 for the default (shared-console) session
	proc        *kernel.Proc
	console     *vfs.ConsoleDevice
	consolePath string

	// runMu serialises runs on one session: a session is a single
	// sandbox owner, not a worker pool — use more sessions for
	// parallelism.
	runMu  sync.Mutex
	closed bool
}

// NewSession returns a session with its own runtime process and a
// private console at /dev/pts/N. Sessions (and their processes) are
// pooled: Close returns the slot for reuse by a later NewSession.
func (m *Machine) NewSession() *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.free); n > 0 {
		idx := m.free[n-1]
		m.free = m.free[:n-1]
		s := m.sessions[idx]
		s.closed = false
		return s
	}
	return m.newSessionLocked()
}

func (m *Machine) newSessionLocked() *Session {
	idx := len(m.sessions)
	console, path := m.sys.NewSessionConsole(fmt.Sprint(idx))
	proc := m.sys.K.NewProc(UserUID, UserUID)
	if err := proc.Chdir("/home/user"); err != nil {
		panic("shill: " + err.Error())
	}
	s := &Session{m: m, index: idx, proc: proc, console: console, consolePath: path}
	m.sessions = append(m.sessions, s)
	return s
}

// session returns the pooled session with the given index, creating the
// pool up to it — the reuse pattern the parallel drivers and benchmarks
// rely on so repeated iterations do not grow the process table. A
// closed (free-listed) session at that index is claimed back first, so
// a later NewSession cannot hand the same slot to a second owner.
func (m *Machine) session(i int) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.sessions) <= i {
		m.newSessionLocked()
	}
	s := m.sessions[i]
	if s.closed {
		s.closed = false
		for j, idx := range m.free {
			if idx == i {
				m.free = append(m.free[:j], m.free[j+1:]...)
				break
			}
		}
	}
	return s
}

// DefaultSession returns the machine's shared-console session: its
// process is the machine runtime (the user's login shell) and its
// console is /dev/console — where scripts that name the global console
// device write. Single-run embedders and the case-study drivers use it;
// concurrent workloads should create private sessions with NewSession.
func (m *Machine) DefaultSession() *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.def == nil {
		m.def = &Session{
			m: m, index: -1,
			proc:        m.sys.Runtime,
			console:     m.sys.Console,
			consolePath: "/dev/console",
		}
	}
	return m.def
}

// Index returns the session's pool index (-1 for the default session).
func (s *Session) Index() int { return s.index }

// ConsolePath returns the path of the session's console device — what
// a generated script should open to write to this session's capture.
func (s *Session) ConsolePath() string { return s.consolePath }

// StreamConsole mirrors everything the session writes to its console to
// w, live, in addition to the per-run capture on Result; nil stops the
// stream. The writer runs under the console device's lock — hand it
// something fast (os.Stdout, a pipe, a buffer).
func (s *Session) StreamConsole(w io.Writer) { s.console.SetTee(w) }

// Close returns the session to the machine's pool. The default session
// is never pooled; closing it only clears its console. Any console tee
// is detached: a recycled slot must never keep streaming to its
// previous owner's writer.
func (s *Session) Close() {
	s.console.SetTee(nil)
	s.console.ResetOutput()
	if s.index < 0 {
		return
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.m.free = append(s.m.free, s.index)
	}
}

// Script names a script to run. Source, when set, is the ambient script
// text and Name is its display/blame label; with an empty Source the
// script is resolved by Name through the resolver. Resolver, when set,
// overrides the machine's script-lookup chain for this run (it also
// serves the run's `require` loads).
type Script struct {
	Name     string
	Source   string
	Resolver ScriptResolver
}

// Result reports one finished run. It is JSON-round-trippable —
// shilld returns it on the wire, denial provenance intact (DenyReason
// has marshal/unmarshal helpers of its own; Elapsed travels as
// nanoseconds).
type Result struct {
	// Script is the script's display name (or the command's argv[0]).
	Script string `json:"script"`
	// ExitStatus is 0 on success; for commands, the process exit code;
	// for scripts, 1 when the run returned an error.
	ExitStatus int `json:"exitStatus"`
	// Console is everything the run wrote to the session's console.
	Console string `json:"console"`
	// Denials are the structured audit denials recorded during this run
	// (seq-windowed, not the whole log). With concurrent sessions on one
	// machine the window can include a neighbour's denials; the denial
	// that failed this script, if any, is always first.
	Denials []*DenyReason `json:"denials,omitempty"`
	// Prof holds the machine profile samples attributed to this run.
	Prof []prof.Sample `json:"prof,omitempty"`
	// Elapsed is the run's wall time.
	Elapsed time.Duration `json:"elapsedNs"`
	// TraceID names the run's request trace; 0 when the machine was
	// built WithTraceDisabled.
	TraceID uint64 `json:"traceId,omitempty"`
	// Trace is the run's span tree (bounded; see trace.Ref), wire-tagged
	// like Denials so shilld clients receive the full decomposition.
	Trace []Span `json:"trace,omitempty"`
}

// Run parses and executes an ambient SHILL script in the session,
// honouring ctx: cancellation (or deadline) interrupts the eval loop at
// the next statement or closure call, wakes any blocking kernel wait
// the script's process is parked in, kills everything the run spawned,
// and returns promptly with the cancellation error — the session
// remains reusable. The returned Result is non-nil whenever the script
// actually ran, so console output and denial provenance survive
// failures.
func (s *Session) Run(ctx context.Context, script Script) (*Result, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.m.Closed() {
		return nil, ErrMachineClosed
	}
	resolver := script.Resolver
	if resolver == nil {
		resolver = s.m.resolver
	}
	name := script.Name
	src := script.Source
	if src == "" {
		if name == "" {
			return nil, fmt.Errorf("shill: Script needs a Name or a Source")
		}
		var err error
		if src, err = resolver.Load(name); err != nil {
			return nil, err
		}
	}
	if name == "" {
		name = "script.ambient"
	}

	begin := s.beginRun(ctx, name)
	it := lang.NewInterp(s.proc, resolver, s.m.sys.Prof)
	it.ConsolePath = s.consolePath
	it.SetEngine(s.m.engine)
	it.CompileCache = s.m.compileCache
	it.Trace = begin.tr
	it.TraceParent = begin.runSpan.ID()
	it.SetContext(ctx)
	release := s.armCancel(ctx)
	err := it.RunAmbient(name, src)
	release()
	it.SetContext(nil)
	// Sweep sockets the script left open: pooled sessions outlive their
	// runs, so a cancelled (or sloppy) script's listeners would
	// otherwise stay bound on the machine forever.
	it.CloseLeftoverSockets()
	// A cancelled run always reports the cancellation, even when the
	// script happened to reach its last statement (e.g. a blocking
	// builtin woke with EINTR and the script treated it as a value):
	// results of an interrupted run are not trustworthy as successes.
	if err == nil && ctx != nil && ctx.Err() != nil {
		err = fmt.Errorf("shill: run canceled: %w", context.Cause(ctx))
	}

	res := s.finishRun(name, begin, err)
	return res, err
}

// RunCommand spawns a native executable through the session's process
// with the session console as its stdio, waits for it, and reports its
// exit status — the "Baseline" configurations of the case studies, and
// the simplest way to run a command on the machine. argv[0] is resolved
// against the image PATH when it has no slash; dir, when non-empty,
// sets the working directory. Cancellation kills the process tree and
// returns promptly.
func (s *Session) RunCommand(ctx context.Context, argv []string, dir string) (*Result, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("shill: RunCommand needs an argv")
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.m.Closed() {
		return nil, ErrMachineClosed
	}

	path, err := s.m.LookPath(argv[0])
	if err != nil {
		return nil, err
	}
	vn, err := s.m.sys.K.FS.Resolve(path)
	if err != nil {
		return nil, err
	}
	attr := kernel.SpawnAttr{}
	if dir != "" {
		wd, err := s.m.sys.K.FS.Resolve(dir)
		if err != nil {
			return nil, err
		}
		attr.Dir = wd
	}

	begin := s.beginRun(ctx, argv[0])
	release := s.armCancel(ctx)
	code, runErr := s.spawnWait(vn, argv[1:], attr)
	release()

	res := s.finishRun(argv[0], begin, runErr)
	res.ExitStatus = code
	return res, runErr
}

// spawnWait runs the child to completion on the session console. An
// interrupted wait (cancellation) kills and reaps the child so nothing
// leaks, then surfaces the interruption.
func (s *Session) spawnWait(vn *vfs.Vnode, argv []string, attr kernel.SpawnAttr) (int, error) {
	console := kernel.NewVnodeFD(s.m.sys.K.FS.MustResolve(s.consolePath), true, true, false)
	attr.Stdin, attr.Stdout, attr.Stderr = console, console, console
	child, err := s.proc.Spawn(vn, argv, attr)
	console.Release()
	if err != nil {
		return -1, err
	}
	code, err := s.proc.Wait(child.PID())
	if errors.Is(err, errno.EINTR) {
		if killed, kerr := s.proc.KillWait(child.PID()); kerr == nil {
			code = killed
		}
		err = fmt.Errorf("shill: command interrupted: %w", errno.EINTR)
	}
	return code, err
}

// runBegin snapshots the state a Result's windows are computed from.
type runBegin struct {
	seq   uint64
	prof  []prof.Sample
	start time.Time

	// tr is the run's trace: adopted from the context (shilld threads
	// one trace from request admission down here) or minted from the
	// machine's recorder. Nil when tracing is disabled — every use
	// below is nil-safe.
	tr      *trace.Ref
	runSpan *trace.Active
	ops     trace.OpSnapshot
}

func (s *Session) beginRun(ctx context.Context, name string) runBegin {
	s.console.ResetOutput()
	b := runBegin{
		seq:   s.m.sys.Audit().Seq(),
		prof:  s.m.sys.Prof.Samples(),
		start: time.Now(),
	}
	if tc := trace.FromContext(ctx); tc != nil {
		b.tr = tc.Ref
		b.runSpan = b.tr.Start(tc.Parent, trace.KindRun, name)
	} else {
		b.tr = s.m.tracer.NewTrace()
		b.runSpan = b.tr.Start(0, trace.KindRun, name)
	}
	// Tag the session process (and whatever it forks) with the trace so
	// kernel-side denials land in the audit log already linked to it.
	s.proc.SetTraceID(b.tr.TraceID())
	b.ops = s.m.kernel().Ops.Snapshot()
	return b
}

func (s *Session) finishRun(name string, begin runBegin, runErr error) *Result {
	res := &Result{
		Script:  name,
		Console: string(s.console.Output()),
		Denials: s.m.sys.Audit().DenyReasonsSince(begin.seq),
		Prof:    prof.SamplesSince(begin.prof, s.m.sys.Prof.Samples()),
		Elapsed: time.Since(begin.start),
	}
	s.console.ResetOutput()
	// Close out the trace: aggregated kernel-op spans and the Figure 10
	// profile view land as children of the run span, then the span tree
	// (bounded) rides the Result the way Denials do.
	begin.tr.AddOps(begin.runSpan.ID(), begin.start, s.m.kernel().Ops.Snapshot().Delta(begin.ops))
	begin.tr.AddProfSamples(begin.runSpan.ID(), begin.start, res.Prof)
	begin.runSpan.End()
	s.proc.SetTraceID(0)
	res.TraceID = begin.tr.TraceID()
	res.Trace = begin.tr.Spans()
	if runErr != nil {
		res.ExitStatus = 1
		// The denial that actually failed the script leads the slice,
		// whatever the audit window retained around it.
		if d := audit.ReasonFor(runErr); d != nil {
			keep := res.Denials[:0]
			for _, w := range res.Denials {
				if w.Seq == 0 || w.Seq != d.Seq {
					keep = append(keep, w)
				}
			}
			res.Denials = append([]*DenyReason{d}, keep...)
		}
	}
	return res
}

// armCancel starts the watcher that converts a context cancellation
// into kernel-level interruption: the session process's blocking waits
// wake with EINTR and everything it spawned is killed. The returned
// release must be called when the run finishes; it re-arms the
// interrupt gate and sweeps stragglers so the session is reusable.
func (s *Session) armCancel(ctx context.Context) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-ctx.Done():
			s.proc.Interrupt()
			s.proc.KillDescendants()
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-finished
		if s.proc.Interrupted() {
			// The run raced the watcher: kill anything spawned after the
			// first sweep, then re-arm so the next run starts clean.
			s.proc.KillDescendants()
			s.proc.ClearInterrupt()
		}
	}
}
