package shill

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netstack"
	"repro/internal/prof"
)

// --- Grading ---

func gradingMachine(t *testing.T, install bool) *Machine {
	t.Helper()
	m := newTestMachine(t, WithModule(install))
	m.BuildGradingCourse(DefaultGrading)
	return m
}

func checkHonestGrades(t *testing.T, m *Machine, mode Mode) {
	t.Helper()
	// student000 is correct: all tests pass.
	g := m.GradeFor("student000")
	if !strings.Contains(g, "compiled") || strings.Contains(g, "fail") {
		t.Errorf("[%v] student000 grade = %q, want all passes", mode, g)
	}
	if got := strings.Count(g, "pass "); got != DefaultGrading.Tests {
		t.Errorf("[%v] student000 passes = %d, want %d", mode, got, DefaultGrading.Tests)
	}
	// student003 (i%7==3) prints the wrong answer: compiled, all fails.
	g = m.GradeFor("student003")
	if !strings.Contains(g, "compiled") || strings.Contains(g, "pass ") {
		t.Errorf("[%v] student003 grade = %q, want all fails", mode, g)
	}
	// student005 (i%7==5) does not compile.
	g = m.GradeFor("student005")
	if !strings.Contains(g, "compile-failed") {
		t.Errorf("[%v] student005 grade = %q, want compile-failed", mode, g)
	}
}

func TestGradingBaseline(t *testing.T) {
	m := gradingMachine(t, false)
	if err := m.RunGrading(bg, ModeAmbient); err != nil {
		t.Fatalf("baseline grading: %v\nconsole: %s", err, m.ConsoleText())
	}
	checkHonestGrades(t, m, ModeAmbient)
	// With ambient authority the cheater reads student000's submission
	// and passes; the vandal corrupts the test suite.
	if g := m.GradeFor("zz_cheater"); !strings.Contains(g, "pass t000") {
		t.Errorf("baseline cheater unexpectedly failed: %q", g)
	}
	if got, err := m.ReadFile("/course/tests/t000"); err != nil || got != "pwned" {
		t.Errorf("baseline vandal did not corrupt the test suite: %v %q", err, got)
	}
}

func TestGradingSandboxed(t *testing.T) {
	m := gradingMachine(t, true)
	if err := m.RunGrading(bg, ModeSandboxed); err != nil {
		t.Fatalf("sandboxed grading: %v\nconsole: %s", err, m.ConsoleText())
	}
	checkHonestGrades(t, m, ModeSandboxed)
	// The coarse sandbox protects the test suite...
	if got, err := m.ReadFile("/course/tests/t000"); err != nil || got == "pwned" {
		t.Error("sandboxed vandal corrupted the test suite")
	}
	// ...but cannot isolate students from each other: the cheater's
	// program runs with read access to all submissions (§4.1 motivates
	// the SHILL version with exactly this gap).
	if g := m.GradeFor("zz_cheater"); !strings.Contains(g, "pass t000") {
		t.Errorf("sandboxed cheater was blocked, which the coarse sandbox cannot do: %q", g)
	}
}

func TestGradingShillVersion(t *testing.T) {
	m := gradingMachine(t, true)
	if err := m.RunGrading(bg, ModeShill); err != nil {
		t.Fatalf("SHILL grading: %v\nconsole: %s", err, m.ConsoleText())
	}
	checkHonestGrades(t, m, ModeShill)
	// Fine-grained isolation: the cheater's read of another submission
	// fails inside its sandbox, so it passes no tests.
	if g := m.GradeFor("zz_cheater"); strings.Contains(g, "pass ") {
		t.Errorf("SHILL version let the cheater read another submission: %q", g)
	}
	// And the vandal cannot touch the test suite.
	if got, err := m.ReadFile("/course/tests/t000"); err != nil || got == "pwned" {
		t.Error("SHILL version let the vandal corrupt the test suite")
	}
}

// --- Emacs package management ---

func TestEmacsStepsSandboxed(t *testing.T) {
	m := newTestMachine(t)
	m.BuildEmacsOrigin(DefaultEmacs)
	stop, err := m.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	for _, step := range AllEmacsSteps {
		if err := m.RunEmacsStep(bg, step, ModeSandboxed); err != nil {
			t.Fatalf("step %s: %v\nconsole: %s", step, err, m.ConsoleText())
		}
	}
	if _, err := m.ReadFile("/home/user/.local/bin/emacs"); err == nil {
		t.Fatal("uninstall left /home/user/.local/bin/emacs behind")
	}
}

func TestEmacsStepsBaseline(t *testing.T) {
	m := newTestMachine(t, WithModule(false))
	m.BuildEmacsOrigin(DefaultEmacs)
	stop, err := m.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	for _, step := range AllEmacsSteps[:5] { // through install
		if err := m.RunEmacsStep(bg, step, ModeAmbient); err != nil {
			t.Fatalf("step %s: %v\nconsole: %s", step, err, m.ConsoleText())
		}
	}
	got, err := m.ReadFile("/home/user/.local/bin/emacs")
	if err != nil {
		t.Fatalf("install did not produce emacs: %v\nconsole: %s", err, m.ConsoleText())
	}
	if !strings.HasPrefix(got, "#!bin:") {
		t.Fatal("installed emacs is not an executable image")
	}
}

func TestEmacsShillVersion(t *testing.T) {
	m := newTestMachine(t)
	m.BuildEmacsOrigin(DefaultEmacs)
	stop, err := m.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	if err := m.RunEmacsShill(bg); err != nil {
		t.Fatalf("pkg_emacs: %v\nconsole: %s", err, m.ConsoleText())
	}
	// The script installs and then uninstalls; the DOC and binary must
	// be gone, but the share directory (not in the manifest) remains.
	if _, err := m.ReadFile("/home/user/.local/bin/emacs"); err == nil {
		t.Fatal("uninstall left the emacs binary behind")
	}
	if _, err := m.ReadFile("/home/user/.local/share/emacs"); err != nil {
		t.Fatal("uninstall removed more than its manifest")
	}
}

// --- Apache ---

func TestApacheSandboxed(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	w := ApacheWorkload{FileMB: 1, Requests: 8, Concurrency: 4}
	m.BuildWWW(w)
	res, err := m.RunApache(bg, ModeSandboxed, w)
	if err != nil {
		t.Fatalf("apache: %v\nconsole: %s", err, m.ConsoleText())
	}
	if !strings.Contains(res.Console, "Failed requests: 0") {
		t.Fatalf("ab reported failures: %s", res.Console)
	}
	// The access log was written through the write-only log capability.
	logData, err := m.ReadFile("/var/log/httpd-access.log")
	if err != nil {
		t.Fatal("no access log written")
	}
	if got := strings.Count(logData, "GET /big.bin 200"); got != w.Requests {
		t.Fatalf("access log has %d entries, want %d", got, w.Requests)
	}
}

// TestApacheNotIsolatedFromSystem reproduces the §5 claim that SHILL
// sandboxes, unlike container-style isolation, leave the rest of the
// system live: while the sandboxed server runs, an ambient process adds
// new web content and reads the growing log.
func TestApacheNotIsolatedFromSystem(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	w := ApacheWorkload{FileMB: 1, Requests: 2, Concurrency: 1}
	m.BuildWWW(w)

	serverDone := make(chan error, 1)
	go func() {
		_, err := m.DefaultSession().Run(bg, Script{Name: "apache.ambient", Source: ScriptApacheAmbient})
		serverDone <- err
	}()
	if err := m.kernel().Net.WaitListener(netstack.DomainIP, "8080", 5*time.Second, nil); err != nil {
		t.Fatal(err)
	}

	// Concurrently add new content with ambient authority...
	if err := m.WriteFile("/usr/local/www/new.html", []byte("<p>fresh</p>"), 0o644, 0); err != nil {
		t.Fatal(err)
	}
	// ...and fetch it through the running sandboxed server, from a
	// private session (the default session is busy serving).
	client := m.NewSession()
	defer client.Close()
	res, err := client.RunCommand(bg, []string{"/usr/bin/curl", "http://localhost:8080/new.html"}, "")
	if err != nil || res.ExitStatus != 0 {
		t.Fatalf("curl new content = %v, %v", res, err)
	}
	if !strings.Contains(res.Console, "fresh") {
		t.Fatalf("new content not served: %q", res.Console)
	}
	// The log is readable ambiently while the server holds its
	// write-only capability.
	logData, err := m.ReadFile("/var/log/httpd-access.log")
	if err != nil || !strings.Contains(logData, "GET /new.html 200") {
		t.Fatal("log not visible to concurrent readers")
	}
	m.shutdownListener("8080")
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestApacheBaseline(t *testing.T) {
	m := newTestMachine(t, WithModule(false), WithConsoleLimit(1<<20))
	w := ApacheWorkload{FileMB: 1, Requests: 4, Concurrency: 2}
	m.BuildWWW(w)
	res, err := m.RunApache(bg, ModeAmbient, w)
	if err != nil {
		t.Fatalf("apache: %v\nconsole: %s", err, m.ConsoleText())
	}
	if !strings.Contains(res.Console, "Failed requests: 0") {
		t.Fatalf("ab reported failures: %s", res.Console)
	}
}

// --- Find ---

func TestFindAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeAmbient, ModeSandboxed, ModeShill} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			m := newTestMachine(t, WithModule(mode != ModeAmbient), WithConsoleLimit(1<<20))
			_, _, matches := m.BuildSrcTree(DefaultFind)
			if err := m.RunFind(bg, mode); err != nil {
				t.Fatalf("find: %v\nconsole: %s", err, m.ConsoleText())
			}
			got := m.Matches()
			lines := 0
			for _, l := range strings.Split(got, "\n") {
				if strings.Contains(l, "mac_") && strings.Contains(l, ".c:") {
					lines++
				}
			}
			if lines != matches {
				t.Fatalf("matched %d lines, want %d\noutput: %s\nconsole: %s",
					lines, matches, got, m.ConsoleText())
			}
		})
	}
}

// TestFindShillSandboxCount verifies the fine-grained version creates a
// sandbox per .c file (plus the pkg_native ldd sandbox), the behaviour
// behind the paper's 15,292-sandbox figure.
func TestFindShillSandboxCount(t *testing.T) {
	m := newTestMachine(t, WithConsoleLimit(1<<20))
	_, cFiles, _ := m.BuildSrcTree(DefaultFind)
	m.Prof().Reset()
	if err := m.RunFind(bg, ModeShill); err != nil {
		t.Fatalf("find: %v", err)
	}
	got := m.Prof().Count(prof.SandboxSetup)
	want := int64(cFiles + 1)
	if got != want {
		t.Fatalf("sandboxes = %d, want %d (one per .c file + ldd)", got, want)
	}
}
