// Command shill-scenarios lists and runs the declared workload bundles
// in internal/scenario. Every selected scenario runs three ways —
// ambient, sandboxed, and under the differential oracle — and failures
// are reported in root-cause clusters.
//
// Usage:
//
//	shill-scenarios -list [-attr expr]
//	shill-scenarios [-attr expr] [-mode all|ambient|sandboxed|oracle]
//	                [-engine tree-walk|compiled] [-json file] [-v]
//	shill-scenarios [flags] name...        # run exactly these scenarios
//
// Positional arguments select scenarios by exact name (replaying one
// red CI scenario in isolation); otherwise -attr selects by attribute
// expression. Exit status 0 on a clean run, 1 on any failure or oracle
// violation, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
	"repro/shill"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list selected scenarios and exit")
		attr     = flag.String("attr", "", "attribute selection expression, e.g. 'sandbox && !slow'")
		mode     = flag.String("mode", "all", "modes to run: all, ambient, sandboxed, oracle")
		engine   = flag.String("engine", "tree-walk", "execution engine: tree-walk or compiled")
		jsonPath = flag.String("json", "", "write the report as JSON to this file ('-' for stdout)")
		verbose  = flag.Bool("v", false, "narrate per-scenario progress")
	)
	flag.Parse()

	if *list {
		scs, err := scenario.Select(*attr)
		if err != nil {
			fatal(2, "%v", err)
		}
		for _, sc := range scs {
			fmt.Printf("%-28s [%s] %s\n", sc.Name, strings.Join(sc.Attrs, ","), sc.Desc)
		}
		fmt.Printf("%d scenarios\n", len(scs))
		return
	}

	opts := scenario.Options{Attr: *attr, Names: flag.Args()}
	if len(opts.Names) > 0 && *attr != "" {
		fatal(2, "positional scenario names and -attr are mutually exclusive")
	}
	switch *mode {
	case "all", "":
	case "ambient":
		opts.Modes = []scenario.Mode{scenario.ModeAmbient}
	case "sandboxed":
		opts.Modes = []scenario.Mode{scenario.ModeSandboxed}
	case "oracle":
		opts.Modes = []scenario.Mode{scenario.ModeOracle}
	default:
		fatal(2, "unknown -mode %q (want all, ambient, sandboxed, or oracle)", *mode)
	}
	switch *engine {
	case "tree-walk", "":
		opts.Engine = shill.EngineTreeWalk
	case "compiled":
		opts.Engine = shill.EngineCompiled
	default:
		fatal(2, "unknown -engine %q (want tree-walk or compiled)", *engine)
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := scenario.Run(context.Background(), opts)
	if err != nil {
		fatal(2, "%v", err)
	}

	for _, sc := range rep.Scenarios {
		fmt.Printf("%-28s %s\n", sc.Name, verdictLine(sc))
	}
	fmt.Printf("\n%d passed, %d failed, %d skipped, %d violations in %.1fs\n",
		rep.Passed, rep.Failed, rep.Skipped, rep.Violations, rep.ElapsedSec)
	if s := scenario.FormatClusters(rep.Clusters); s != "" {
		fmt.Printf("\n%s", s)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(2, "marshal report: %v", err)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(2, "write %s: %v", *jsonPath, err)
		}
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}

func verdictLine(sc scenario.ScenarioResult) string {
	parts := make([]string, 0, len(sc.Modes))
	for _, m := range sc.Modes {
		s := fmt.Sprintf("%s=%s", m.Mode, m.Verdict)
		if m.Verdict != "passed" && m.Detail != "" {
			s += fmt.Sprintf(" (%s)", m.Detail)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "  ")
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shill-scenarios: "+format+"\n", args...)
	os.Exit(code)
}
