// Command genscripts regenerates examples/scripts/ from the embedded
// case-study script constants in internal/core, so the SHILL sources are
// browsable as ordinary files (and runnable with cmd/shill). Run from
// the repository root:
//
//	go run ./cmd/genscripts
//
// TestScriptFilesInSync (internal/core) fails if the files drift from
// the constants.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	for name, src := range core.ScriptFiles() {
		if err := os.WriteFile("examples/scripts/"+name, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d scripts to examples/scripts/\n", len(core.ScriptFiles()))
}
