// Command genscripts regenerates examples/scripts/ from the embedded
// case-study script constants re-exported by repro/shill, so the SHILL sources are
// browsable as ordinary files (and runnable with cmd/shill). Run from
// the repository root:
//
//	go run ./cmd/genscripts
//
// TestScriptFilesInSync (repro/shill) fails if the files drift from
// the constants.
package main

import (
	"fmt"
	"os"

	"repro/shill"
)

func main() {
	for name, src := range shill.ScriptFiles() {
		if err := os.WriteFile("examples/scripts/"+name, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d scripts to examples/scripts/\n", len(shill.ScriptFiles()))
}
