// Command shill-soak runs generated conformance programs against the
// differential security oracle, continuously, across concurrent
// sessions of one shared machine — the soak harness for the §2.3
// security property. Every program is a paired sandboxed/ambient
// rendering of one grammar-generated script; the oracle checks
// no-escape, DAC-conjunction, and deny-provenance per program and
// minimizes any failure to a small reproducer.
//
// A slice of the iteration budget (-scenario-pct, default 25%) is dealt
// to the scenario registry instead: each such iteration runs one
// declared realistic workload bundle three-way (ambient, sandboxed,
// oracle) under internal/scenario, so the soak exercises curated
// multi-step behaviour alongside the generated corpus. -scenarios
// selects which bundles by attr expression.
//
// Usage:
//
//	shill-soak -duration 30s                  # time-budgeted soak
//	shill-soak -n 2000 -sessions 8            # count-budgeted soak
//	shill-soak -seed 7 -json soak.json        # reproducible + artifact
//	shill-soak -scenario-pct 0                # generated programs only
//
// A failing run exits 1; the printed (and JSON-recorded) per-program
// seeds replay deterministically:
//
//	go test ./internal/oracle -run TestGeneratedConformance -gen.seed=<seed> -gen.n=1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/oracle"
	"repro/internal/scenario"
	"repro/shill"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; program i derives its own seed from it")
		n        = flag.Int("n", 0, "stop after this many programs (0: duration-bounded only)")
		duration = flag.Duration("duration", 30*time.Second, "stop generating after this long (0: count-bounded only)")
		sessions = flag.Int("sessions", 4, "concurrent sessions on the shared machine")
		jsonPath = flag.String("json", "", "write the soak report as JSON to this file")
		noMin    = flag.Bool("nominimize", false, "skip failure minimization")
		verbose  = flag.Bool("v", false, "log progress and failures as they happen")
		scPct    = flag.Int("scenario-pct", 25, "percent of iterations that run a registry scenario three-way instead of a generated program (0: disable)")
		scAttr   = flag.String("scenarios", "!slow", "attr expression selecting the scenarios the soak samples")
	)
	flag.Parse()
	// A count budget without an explicit -duration means "run until the
	// count is reached" — the 30s duration default only applies when no
	// -n was given, so `shill-soak -n 2000` really checks 2000 pairs.
	durationSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "duration" {
			durationSet = true
		}
	})
	if *n > 0 && !durationSet {
		*duration = 0
	}
	if *n == 0 && *duration == 0 {
		fmt.Fprintln(os.Stderr, "shill-soak: need -n or -duration")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	opts := oracle.SoakOptions{
		Seed:     *seed,
		Sessions: *sessions,
		Duration: *duration,
		Programs: *n,
		Minimize: !*noMin,
		Logf:     logf,
	}
	if *scPct > 0 {
		scs, serr := scenario.Select(*scAttr)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "shill-soak: %v\n", serr)
			os.Exit(2)
		}
		if len(scs) == 0 {
			fmt.Fprintf(os.Stderr, "shill-soak: -scenarios %q selects no scenarios\n", *scAttr)
			os.Exit(2)
		}
		modes := []scenario.Mode{scenario.ModeAmbient, scenario.ModeSandboxed, scenario.ModeOracle}
		opts.ScenarioPct = *scPct
		opts.Scenario = func(ctx context.Context, i int64) (string, []string) {
			sc := scs[int(i)%len(scs)]
			res := scenario.RunScenario(ctx, sc, modes, shill.EngineTreeWalk)
			var fails []string
			for _, mr := range res.Modes {
				if mr.Verdict == "failed" || mr.Verdict == "violation" {
					fails = append(fails, fmt.Sprintf("%s/%s %s: %s %s", sc.Name, mr.Mode, mr.Verdict, mr.Kind, mr.Detail))
				}
			}
			return sc.Name, fails
		}
	}

	report, err := oracle.Soak(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill-soak: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("shill-soak: seed %d: %d programs (%d ops) + %d scenario runs across %d sessions in %.1fs — %d sandbox-only failures explained, %d windowed denials, %d live sockets at end\n",
		report.Seed, report.Programs, report.Ops, report.ScenarioRuns, report.Sessions, report.Elapsed,
		report.Divergences, report.Denials, report.LiveSockets)
	for _, f := range report.Failures {
		if f.Scenario != "" {
			fmt.Printf("FAILURE scenario %s (session %d): %v\n", f.Scenario, f.Session, f.Violations)
			continue
		}
		fmt.Printf("FAILURE seed %d (session %d, %d ops): %v\n", f.Seed, f.Session, f.Ops, f.Violations)
		if f.MinimizedModule != "" {
			fmt.Printf("  minimized to %d ops:\n%s\n", f.MinimizedOps, f.MinimizedModule)
		}
	}

	if *jsonPath != "" {
		data, merr := json.MarshalIndent(report, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "shill-soak: writing %s: %v\n", *jsonPath, merr)
			os.Exit(1)
		}
	}

	if !report.Ok() {
		os.Exit(1)
	}
}
