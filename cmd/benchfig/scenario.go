package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/scenario"
)

// --- scenario benchmark ---
//
// figureScenario times every non-slow registry scenario's sandboxed leg
// and publishes per-scenario throughput: runs/sec (a run is one full
// bundle — boot from the fixture image, body, teardown) and scripts/sec
// (runs/sec × the scripts the body executes per run). BENCH_scenario.json
// is the machine-readable artifact CI archives.

type scenarioRow struct {
	Name          string  `json:"name"`
	Reps          int     `json:"reps"`
	StepsPerRun   int     `json:"stepsPerRun"`
	MeanMs        float64 `json:"meanMs"`
	RunsPerSec    float64 `json:"runsPerSec"`
	ScriptsPerSec float64 `json:"scriptsPerSec"`
}

type scenarioDoc struct {
	Benchmark string        `json:"benchmark"`
	Attr      string        `json:"attr"`
	Mode      string        `json:"mode"`
	Rows      []scenarioRow `json:"rows"`
}

func figureScenario(reps int, jsonPath string) bool {
	const attr = "!slow"
	fmt.Printf("Scenario benchmark: sandboxed leg of every %q registry scenario, %d reps\n", attr, reps)

	scs, err := scenario.Select(attr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: scenario: %v\n", err)
		return false
	}
	modes := []scenario.Mode{scenario.ModeSandboxed}

	ok := true
	doc := scenarioDoc{Benchmark: "scenario", Attr: attr, Mode: "sandboxed"}
	fmt.Printf("%-26s %8s %10s %10s %12s\n", "scenario", "steps", "mean", "runs/s", "scripts/s")
	for _, sc := range scs {
		// One untimed warmup builds the fixture's golden image, so the
		// timed reps measure restore+body, not one-time staging.
		warm := scenario.RunScenario(ctx, sc, modes, 0)
		if v := warm.Verdict(); v != "passed" {
			fmt.Fprintf(os.Stderr, "benchfig: scenario %s: %s (%s)\n", sc.Name, v, warm.Modes[0].Detail)
			ok = false
			continue
		}
		steps := len(warm.Modes[0].Steps)

		start := time.Now()
		bad := false
		for r := 0; r < reps; r++ {
			res := scenario.RunScenario(ctx, sc, modes, 0)
			if res.Verdict() != "passed" {
				fmt.Fprintf(os.Stderr, "benchfig: scenario %s rep %d: %s (%s)\n",
					sc.Name, r, res.Verdict(), res.Modes[0].Detail)
				ok, bad = false, true
				break
			}
		}
		if bad {
			continue
		}
		elapsed := time.Since(start)

		row := scenarioRow{
			Name:        sc.Name,
			Reps:        reps,
			StepsPerRun: steps,
			MeanMs:      float64(elapsed) / float64(reps) / float64(time.Millisecond),
		}
		if elapsed > 0 {
			row.RunsPerSec = float64(reps) / elapsed.Seconds()
			row.ScriptsPerSec = row.RunsPerSec * float64(steps)
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Printf("%-26s %8d %8.2fms %10.1f %12.1f\n",
			row.Name, row.StepsPerRun, row.MeanMs, row.RunsPerSec, row.ScriptsPerSec)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: scenario: writing %s: %v\n", jsonPath, err)
			return false
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return ok
}
