package main

// The snapshot benchmark behind BENCH_snapshot.json: machine
// provisioning latency cold (scratch build plus grading staging) vs
// warm (restore from a prebuilt grading image), and end-to-end grading
// throughput when every run provisions its machine fresh vs by
// restore. CI runs `benchfig -fig snapshot -json BENCH_snapshot.json`
// and fails the build if a warm restore is not faster than a cold
// build.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/shill"
)

type snapshotResult struct {
	Benchmark         string  `json:"benchmark"`
	Reps              int     `json:"reps"`
	ColdBootMs        float64 `json:"cold_boot_ms"`
	WarmRestoreMs     float64 `json:"warm_restore_ms"`
	RestoreSpeedup    float64 `json:"restore_speedup"`
	FreshRunsPerSec   float64 `json:"fresh_grading_runs_per_sec"`
	RestoreRunsPerSec float64 `json:"restored_grading_runs_per_sec"`
	ThroughputGain    float64 `json:"grading_throughput_gain"`
	ImageID           string  `json:"image_id"`
	ImageLayers       int     `json:"image_layers"`
	WarmFaster        bool    `json:"warm_faster_than_cold"`
}

// coldCourse provisions the paper's grading course (122 students, 42
// tests) from scratch: build the machine, then stage the full course
// tree file by file. This is the work a warm restore amortizes into a
// shared base layer.
func coldCourse() *shill.Machine {
	m, err := shill.NewMachine(shill.WithConsoleLimit(1 << 20))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: snapshot: %v\n", err)
		os.Exit(1)
	}
	m.BuildGradingCourse(shill.FullScaleGrading)
	return m
}

// coldBoot provisions the scaled-down grading machine figure 9 grades,
// for the throughput arm.
func coldBoot() *shill.Machine {
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadGrading), shill.WithConsoleLimit(1<<20))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: snapshot: %v\n", err)
		os.Exit(1)
	}
	return m
}

func warmBoot(img *shill.Image) *shill.Machine {
	m, err := shill.RestoreMachine(img, shill.WithConsoleLimit(1<<20))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: snapshot restore: %v\n", err)
		os.Exit(1)
	}
	return m
}

// figureSnapshot measures machine provisioning cold vs warm and the
// grading throughput each path sustains. Returns false (failing the
// build) when the warm restore is not faster than the cold build.
func figureSnapshot(reps int, jsonPath string) bool {
	fmt.Println("Snapshot/restore: provisioning latency and grading throughput, cold build vs warm restore")

	// Latency arm: the paper-scale grading course, captured once.
	golden := coldCourse()
	img, err := golden.Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: snapshot: %v\n", err)
		os.Exit(1)
	}
	golden.Close()
	// Prime the flatten cache so the warm arm measures steady state —
	// the state a serving frontend is in from the second restore on.
	warmBoot(img).Close()

	var coldTotal, warmTotal time.Duration
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		m := coldCourse()
		coldTotal += time.Since(t0)
		m.Close()

		t0 = time.Now()
		r := warmBoot(img)
		warmTotal += time.Since(t0)
		r.Close()
	}
	coldMs := float64(coldTotal.Microseconds()) / float64(reps) / 1000
	warmMs := float64(warmTotal.Microseconds()) / float64(reps) / 1000

	// Throughput arm: grade the figure-9 course end to end, provisioning
	// the machine per run the way a per-request frontend would.
	seed := coldBoot()
	gradeImg, err := seed.Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: snapshot: %v\n", err)
		os.Exit(1)
	}
	seed.Close()
	warmBoot(gradeImg).Close()
	gradeRuns := reps
	if gradeRuns > 5 {
		gradeRuns = 5
	}
	grade := func(provision func() *shill.Machine) float64 {
		t0 := time.Now()
		for i := 0; i < gradeRuns; i++ {
			m := provision()
			if err := m.RunGrading(ctx, shill.ModeShill); err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: snapshot grading: %v\n", err)
				os.Exit(1)
			}
			m.Close()
		}
		return float64(gradeRuns) / time.Since(t0).Seconds()
	}
	freshRPS := grade(coldBoot)
	restoreRPS := grade(func() *shill.Machine { return warmBoot(gradeImg) })

	res := snapshotResult{
		Benchmark:         "snapshot",
		Reps:              reps,
		ColdBootMs:        coldMs,
		WarmRestoreMs:     warmMs,
		RestoreSpeedup:    coldMs / warmMs,
		FreshRunsPerSec:   freshRPS,
		RestoreRunsPerSec: restoreRPS,
		ThroughputGain:    restoreRPS / freshRPS,
		ImageID:           img.ID(),
		ImageLayers:       len(img.Layers()),
		WarmFaster:        warmMs < coldMs,
	}

	fmt.Printf("%-28s %12s %12s %9s\n", "", "cold build", "warm restore", "speedup")
	fmt.Printf("%-28s %10.3fms %10.3fms %8.1fx\n", "machine provisioning", res.ColdBootMs, res.WarmRestoreMs, res.RestoreSpeedup)
	fmt.Printf("%-28s %10.2f/s %10.2f/s %8.2fx\n", "grading runs (incl. boot)", res.FreshRunsPerSec, res.RestoreRunsPerSec, res.ThroughputGain)
	fmt.Printf("image %s… (%d layers)\n", res.ImageID[:12], res.ImageLayers)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if !res.WarmFaster {
		fmt.Fprintf(os.Stderr, "benchfig: GATE FAILED: warm restore (%.3fms) is not faster than cold build (%.3fms)\n", warmMs, coldMs)
		return false
	}
	return true
}
