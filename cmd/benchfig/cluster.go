package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/shill"
)

// The cluster figure measures what the router exists to buy: serving
// one logical shilld out of N replicas. The workload is deliberately
// latency-bound, not CPU-bound — each replica is throttled to a few
// concurrent runs and every run pays a simulated 20ms spawn — because
// the figure's claim is about the serving architecture (more replicas
// = more concurrent machine slots), and a CPU-bound workload on a
// small CI box would measure the box instead.
const (
	clusterSpawnLatency = 20 * time.Millisecond
	clusterClients      = 32
	clusterTenants      = 32
	clusterPerReplica   = 4 // MaxConcurrent per replica
	clusterDuration     = 2 * time.Second
)

// clusterScalingBar is the acceptance gate: two replicas must serve at
// least this multiple of one replica's req/s. (Perfect scaling is 2.0;
// the slack absorbs router overhead and scheduler noise.)
const clusterScalingBar = 1.5

// clusterRow is one fleet size's measurement.
type clusterRow struct {
	Replicas   int     `json:"replicas"`
	ReqPerSec  float64 `json:"reqPerSec"`
	P50Ms      float64 `json:"p50Ms"`
	P99Ms      float64 `json:"p99Ms"`
	Requests   int     `json:"requests"`
	Rejected   int     `json:"rejected"`
	HTTPErrors int     `json:"httpErrors"`
	Bad        int     `json:"bad"`
}

// clusterResult is the BENCH_cluster.json document.
type clusterResult struct {
	Benchmark      string       `json:"benchmark"`
	SpawnLatencyMs int          `json:"spawnLatencyMs"`
	Clients        int          `json:"clients"`
	Tenants        int          `json:"tenants"`
	PerReplica     int          `json:"perReplicaConcurrent"`
	Rows           []clusterRow `json:"rows"`
	// Scaling2x / Scaling4x are req/s relative to the single replica.
	Scaling2x float64 `json:"scaling2x"`
	Scaling4x float64 `json:"scaling4x"`
	BarMet    bool    `json:"barMet"`
}

// figureCluster drives the in-process cluster harness at 1, 2, and 4
// replicas with the same latency-bound allow-only load and reports the
// req/s scaling. Returns false (caller exits nonzero) if two replicas
// do not reach clusterScalingBar times one replica's throughput, or if
// any run produced errors.
func figureCluster(jsonPath string) bool {
	fmt.Printf("Cluster scaling: %d closed-loop clients, %d tenants, argv runs with %v simulated spawn, %d slots/replica\n",
		clusterClients, clusterTenants, clusterSpawnLatency, clusterPerReplica)
	fmt.Printf("%-10s %12s %12s %12s %10s %8s\n", "replicas", "req/s", "p50", "p99", "rejected", "errors")

	res := clusterResult{
		Benchmark:      "cluster",
		SpawnLatencyMs: int(clusterSpawnLatency / time.Millisecond),
		Clients:        clusterClients,
		Tenants:        clusterTenants,
		PerReplica:     clusterPerReplica,
	}
	ok := true
	for _, n := range []int{1, 2, 4} {
		row, err := clusterRun(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: cluster[%d]: %v\n", n, err)
			os.Exit(1)
		}
		res.Rows = append(res.Rows, row)
		fmt.Printf("%-10d %12.1f %10.2fms %10.2fms %10d %8d\n",
			n, row.ReqPerSec, row.P50Ms, row.P99Ms, row.Rejected, row.HTTPErrors+row.Bad)
		if row.HTTPErrors > 0 || row.Bad > 0 {
			fmt.Fprintf(os.Stderr, "benchfig: cluster[%d]: %d http errors, %d malformed responses\n",
				n, row.HTTPErrors, row.Bad)
			ok = false
		}
	}

	base := res.Rows[0].ReqPerSec
	if base > 0 {
		res.Scaling2x = res.Rows[1].ReqPerSec / base
		res.Scaling4x = res.Rows[2].ReqPerSec / base
	}
	res.BarMet = ok && res.Scaling2x >= clusterScalingBar
	fmt.Printf("scaling: 2 replicas %.2fx, 4 replicas %.2fx (bar: 2 replicas >= %.1fx)\n",
		res.Scaling2x, res.Scaling4x, clusterScalingBar)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if !res.BarMet {
		fmt.Fprintf(os.Stderr, "benchfig: 2-replica scaling %.2fx is below the %.1fx bar\n",
			res.Scaling2x, clusterScalingBar)
		return false
	}
	return ok
}

// clusterRun measures one fleet size: boot the cluster, warm every
// tenant's machine, then drive a fixed-duration allow-only load
// through the router.
func clusterRun(n int) (clusterRow, error) {
	c, err := router.StartCluster(n, func(i int, cfg *server.Config) {
		cfg.MaxMachines = clusterTenants
		cfg.MaxConcurrent = clusterPerReplica
		cfg.TenantConcurrent = clusterPerReplica
		cfg.MaxQueue = 256
		cfg.MachineOptions = func(string) []shill.Option {
			return []shill.Option{
				shill.WithWorkload(shill.WorkloadNone),
				shill.WithSpawnLatency(clusterSpawnLatency),
			}
		}
	}, router.Config{})
	if err != nil {
		return clusterRow{}, err
	}
	defer c.Close()

	cfg := loadgen.Config{
		URL:       c.URL,
		Clients:   clusterClients,
		Tenants:   clusterTenants,
		Mix:       loadgen.MustMix("legacy", loadgen.Ratio{AllowPct: 100}),
		AllowArgv: []string{"echo", "ok"},
	}
	warm := cfg
	warm.Requests = clusterTenants * 2
	if _, err := loadgen.Run(ctx, warm); err != nil {
		return clusterRow{}, fmt.Errorf("warmup: %w", err)
	}

	cfg.Duration = clusterDuration
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return clusterRow{}, err
	}
	return clusterRow{
		Replicas:   n,
		ReqPerSec:  rep.ReqPerSec,
		P50Ms:      rep.Latency.P50Ms,
		P99Ms:      rep.Latency.P99Ms,
		Requests:   rep.Requests,
		Rejected:   rep.Rejected,
		HTTPErrors: rep.HTTPErrors,
		Bad:        rep.Bad(),
	}, nil
}
