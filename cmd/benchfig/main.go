// Command benchfig regenerates the paper's evaluation tables and figures
// (§4) against the simulated machine, printing rows in the same shape
// the paper reports: mean wall time with a 95% confidence interval per
// configuration (Figure 9), the performance breakdown (Figure 10), the
// syscall microbenchmarks (Figure 11), the resource-protection matrix
// (Figure 7), and the case-study script line counts (§4.1).
//
// Usage:
//
//	benchfig -fig 9            # case-study wall times
//	benchfig -fig 10           # performance breakdown
//	benchfig -fig 11           # syscall microbenchmarks
//	benchfig -fig 7            # protection matrix
//	benchfig -fig loc          # script line counts vs the paper
//	benchfig -fig parallel     # multi-session throughput, audit/trace on vs off
//	benchfig -fig 9 -full      # paper-scale workloads (slow)
//	benchfig -fig 9 -reps 20   # more repetitions
//	benchfig -fig parallel -json BENCH_parallel.json
//	benchfig -fig serve    -json BENCH_serve.json
//	benchfig -fig interp   -json BENCH_interp.json
//	benchfig -fig snapshot -json BENCH_snapshot.json
//	benchfig -fig cluster  -json BENCH_cluster.json
//	benchfig -fig parallel -pprof BENCH_parallel  # + .cpu.pprof/.heap.pprof
//
// -json writes a machine-readable result file alongside the printed
// table (supported by -fig parallel and -fig serve); CI uploads them as
// artifacts so the performance trajectory accumulates across commits.
// -pprof PREFIX captures a CPU profile of the whole figure plus an
// end-of-run heap profile to PREFIX.cpu.pprof and PREFIX.heap.pprof,
// next to the -json document — `go tool pprof` then names what the
// figure actually spent its time on.
//
// -fig parallel is also an acceptance gate: it exits nonzero if the
// tracing overhead (trace on vs off, audit on in both arms) reaches 5%,
// the same bar the audit subsystem was held to. -fig snapshot gates
// likewise: it exits nonzero if booting from a machine image (warm
// restore) is not faster than building the machine from scratch.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"net/http/httptest"

	"repro/internal/kernel"
	"repro/internal/priv"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/shill"
)

func main() {
	fig := flag.String("fig", "9", "figure to regenerate: 7, 9, 10, 11, loc, sweep, parallel, serve, interp, snapshot, cluster, scenario")
	reps := flag.Int("reps", 5, "repetitions per configuration (the paper used 50)")
	full := flag.Bool("full", false, "use paper-scale workloads")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file (fig parallel)")
	pprofPrefix := flag.String("pprof", "", "capture cpu/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	var stopProfiles func()
	if *pprofPrefix != "" {
		stop, err := startProfiles(*pprofPrefix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: -pprof: %v\n", err)
			os.Exit(1)
		}
		stopProfiles = stop
	}

	// Figures that gate (parallel's trace-overhead bar) report failure
	// through ok instead of os.Exit so the deferred profile capture still
	// lands — a failed gate is exactly when the profile is wanted.
	ok := true
	switch *fig {
	case "7":
		figure7()
	case "9":
		figure9(*reps, *full)
	case "10":
		figure10(*full)
	case "11":
		figure11(*reps)
	case "loc":
		figureLoC()
	case "sweep":
		figureSweep(*reps)
	case "parallel":
		ok = figureParallel(*reps, *jsonPath)
	case "serve":
		figureServe(*jsonPath)
	case "interp":
		figureInterp(*reps, *jsonPath)
	case "snapshot":
		ok = figureSnapshot(*reps, *jsonPath)
	case "cluster":
		ok = figureCluster(*jsonPath)
	case "scenario":
		ok = figureScenario(*reps, *jsonPath)
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if stopProfiles != nil {
		stopProfiles()
	}
	if !ok {
		os.Exit(1)
	}
}

// startProfiles begins a CPU profile and returns a stop function that
// finishes it and writes a heap profile beside it.
func startProfiles(prefix string) (func(), error) {
	cpuPath := prefix + ".cpu.pprof"
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
		heapPath := prefix + ".heap.pprof"
		hf, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: -pprof: %v\n", err)
			return
		}
		runtime.GC() // up-to-date allocation stats
		if err := pprof.WriteHeapProfile(hf); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: -pprof: %v\n", err)
		}
		hf.Close()
		fmt.Printf("wrote %s and %s\n", cpuPath, heapPath)
	}, nil
}

// ctx: benchfig drives the machine without deadlines; per-run
// cancellation belongs to embedders and the CLI tools.
var ctx = context.Background()

// newMachine builds a benchmark machine, panicking on staging failure.
func newMachine(opts ...shill.Option) *shill.Machine {
	m, err := shill.NewMachine(opts...)
	if err != nil {
		panic("benchfig: " + err.Error())
	}
	return m
}

// --- statistics ---

type sample struct{ times []time.Duration }

func (s *sample) add(d time.Duration) { s.times = append(s.times, d) }

// meanCI returns the mean and half-width of a 95% confidence interval.
func (s *sample) meanCI() (time.Duration, time.Duration) {
	n := len(s.times)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, t := range s.times {
		sum += t.Seconds()
	}
	mean := sum / float64(n)
	if n == 1 {
		return time.Duration(mean * float64(time.Second)), 0
	}
	var ss float64
	for _, t := range s.times {
		d := t.Seconds() - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	ci := 1.96 * sd / math.Sqrt(float64(n))
	return time.Duration(mean * float64(time.Second)), time.Duration(ci * float64(time.Second))
}

func row(name string, samples map[string]*sample, configs []string) {
	fmt.Printf("%-12s", name)
	base, _ := samples[configs[0]].meanCI()
	for _, cfg := range configs {
		mean, ci := samples[cfg].meanCI()
		slow := ""
		if cfg != configs[0] && base > 0 {
			slow = fmt.Sprintf(" (%.2fx)", mean.Seconds()/base.Seconds())
		}
		fmt.Printf("  %12v ±%-10v%-8s", mean.Round(time.Microsecond), ci.Round(time.Microsecond), slow)
	}
	fmt.Println()
}

// --- Figure 9 ---

func figure9(reps int, full bool) {
	fmt.Println("Figure 9: case-study wall times (mean ± 95% CI; paper Figure 9)")
	configs := []string{"Baseline", "SHILL installed", "Sandboxed", "SHILL version"}
	fmt.Printf("%-12s", "benchmark")
	for _, c := range configs {
		fmt.Printf("  %-32s", c)
	}
	fmt.Println()

	grading := shill.DefaultGrading
	find := shill.DefaultFind
	apache := shill.ApacheWorkload{FileMB: 2, Requests: 20, Concurrency: 8}
	emacs := shill.DefaultEmacs
	if full {
		grading = shill.FullScaleGrading
		find = shill.FullScaleFind
		apache = shill.ApacheWorkload{FileMB: 50, Requests: 500, Concurrency: 100}
		emacs = shill.EmacsWorkload{SrcKB: 2048}
	}
	grading.Malicious = false

	type runner struct {
		name  string
		modes map[string]func() (*shill.Machine, func() error)
	}
	mkGrading := func(install bool, mode shill.Mode) func() (*shill.Machine, func() error) {
		return func() (*shill.Machine, func() error) {
			s := newMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
			s.BuildGradingCourse(grading)
			return s, func() error {
				s.ResetGradingOutputs()
				s.ConsoleText()
				return s.RunGrading(ctx, mode)
			}
		}
	}
	mkFind := func(install bool, mode shill.Mode) func() (*shill.Machine, func() error) {
		return func() (*shill.Machine, func() error) {
			s := newMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
			s.BuildSrcTree(find)
			return s, func() error { return s.RunFind(ctx, mode) }
		}
	}
	mkApache := func(install bool, mode shill.Mode) func() (*shill.Machine, func() error) {
		return func() (*shill.Machine, func() error) {
			s := newMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
			s.BuildWWW(apache)
			return s, func() error {
				_, err := s.RunApache(ctx, mode, apache)
				return err
			}
		}
	}
	mkEmacs := func(install bool, mode shill.Mode, shillVer bool) func() (*shill.Machine, func() error) {
		return func() (*shill.Machine, func() error) {
			s := newMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
			s.BuildEmacsOrigin(emacs)
			if _, err := s.StartOrigin(); err != nil {
				panic(err)
			}
			return s, func() error {
				s.ResetEmacsOutputs()
				s.ConsoleText()
				if shillVer {
					return s.RunEmacsShill(ctx)
				}
				for _, step := range shill.AllEmacsSteps {
					if err := s.RunEmacsStep(ctx, step, mode); err != nil {
						return fmt.Errorf("%s: %w", step, err)
					}
				}
				return nil
			}
		}
	}

	benchmarks := []runner{
		{"Grading", map[string]func() (*shill.Machine, func() error){
			"Baseline":        mkGrading(false, shill.ModeAmbient),
			"SHILL installed": mkGrading(true, shill.ModeAmbient),
			"Sandboxed":       mkGrading(true, shill.ModeSandboxed),
			"SHILL version":   mkGrading(true, shill.ModeShill),
		}},
		{"Emacs", map[string]func() (*shill.Machine, func() error){
			"Baseline":        mkEmacs(false, shill.ModeAmbient, false),
			"SHILL installed": mkEmacs(true, shill.ModeAmbient, false),
			"Sandboxed":       mkEmacs(true, shill.ModeSandboxed, false),
			"SHILL version":   mkEmacs(true, shill.ModeShill, true),
		}},
		{"Apache", map[string]func() (*shill.Machine, func() error){
			"Baseline":        mkApache(false, shill.ModeAmbient),
			"SHILL installed": mkApache(true, shill.ModeAmbient),
			"Sandboxed":       mkApache(true, shill.ModeSandboxed),
			"SHILL version":   mkApache(true, shill.ModeSandboxed), // the apache script IS the SHILL version
		}},
		{"Find", map[string]func() (*shill.Machine, func() error){
			"Baseline":        mkFind(false, shill.ModeAmbient),
			"SHILL installed": mkFind(true, shill.ModeAmbient),
			"Sandboxed":       mkFind(true, shill.ModeSandboxed),
			"SHILL version":   mkFind(true, shill.ModeShill),
		}},
	}

	for _, b := range benchmarks {
		samples := map[string]*sample{}
		for _, cfg := range configs {
			samples[cfg] = &sample{}
			sys, run := b.modes[cfg]()
			for i := 0; i < reps; i++ {
				start := time.Now()
				if err := run(); err != nil {
					fmt.Fprintf(os.Stderr, "benchfig: %s/%s: %v\n", b.name, cfg, err)
					os.Exit(1)
				}
				samples[cfg].add(time.Since(start))
			}
			sys.Close()
		}
		row(b.name, samples, configs)
	}
	fmt.Println("\nEmacs sub-benchmarks (Baseline / SHILL installed / Sandboxed):")
	subConfigs := []string{"Baseline", "SHILL installed", "Sandboxed"}
	for _, step := range shill.AllEmacsSteps {
		samples := map[string]*sample{}
		for _, cfg := range subConfigs {
			install := cfg != "Baseline"
			mode := shill.ModeAmbient
			if cfg == "Sandboxed" {
				mode = shill.ModeSandboxed
			}
			s := newMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
			s.BuildEmacsOrigin(emacs)
			stop, err := s.StartOrigin()
			if err != nil {
				panic(err)
			}
			// Prepare prerequisite state ambiently.
			for _, prior := range shill.AllEmacsSteps {
				if prior == step {
					break
				}
				if err := s.RunEmacsStep(ctx, prior, shill.ModeAmbient); err != nil {
					panic(err)
				}
			}
			samples[cfg] = &sample{}
			for i := 0; i < reps; i++ {
				resetEmacsStep(s, step)
				s.ConsoleText()
				start := time.Now()
				if err := s.RunEmacsStep(ctx, step, mode); err != nil {
					fmt.Fprintf(os.Stderr, "benchfig: %s/%s: %v\n", step, cfg, err)
					os.Exit(1)
				}
				samples[cfg].add(time.Since(start))
			}
			stop()
			s.Close()
		}
		row(string(step), samples, subConfigs)
	}
}

func resetEmacsStep(s *shill.Machine, step shill.EmacsStep) {
	switch step {
	case shill.StepDownload:
		s.RemovePath("/home/user/Downloads/emacs-24.3.tar")
	case shill.StepUntar:
		s.RemoveTree("/home/user/build/emacs-24.3")
	case shill.StepConfigure:
		s.RemovePath("/home/user/build/emacs-24.3/Makefile")
		s.RemovePath("/home/user/build/emacs-24.3/config.status")
	case shill.StepMake:
		s.RemovePath("/home/user/build/emacs-24.3/emacs")
	case shill.StepInstall:
		s.RemoveTree("/home/user/.local/bin")
		s.RemoveTree("/home/user/.local/share")
	case shill.StepUninstall:
		s.RunEmacsStep(ctx, shill.StepInstall, shill.ModeAmbient)
	}
}

// --- Figure 10 ---

func figure10(full bool) {
	fmt.Println("Figure 10: performance breakdown (paper Figure 10, plus audit overhead)")
	fmt.Printf("%-12s %12s %12s %12s %12s %12s %12s %10s\n",
		"benchmark", "total", "startup", "sbx setup", "sbx exec", "audit", "remaining", "sandboxes")

	grading := shill.DefaultGrading
	find := shill.DefaultFind
	if full {
		grading = shill.FullScaleGrading
		find = shill.FullScaleFind
	}
	grading.Malicious = false

	type c struct {
		name string
		prep func(*shill.Machine)
		run  func(*shill.Machine) error
	}
	cases := []c{
		{"Uninstall", func(s *shill.Machine) {
			s.BuildEmacsOrigin(shill.DefaultEmacs)
			if _, err := s.StartOrigin(); err != nil {
				panic(err)
			}
			for _, step := range shill.AllEmacsSteps[:5] {
				if err := s.RunEmacsStep(ctx, step, shill.ModeAmbient); err != nil {
					panic(err)
				}
			}
		}, func(s *shill.Machine) error {
			return s.RunEmacsStep(ctx, shill.StepUninstall, shill.ModeSandboxed)
		}},
		{"Download", func(s *shill.Machine) {
			s.BuildEmacsOrigin(shill.DefaultEmacs)
			if _, err := s.StartOrigin(); err != nil {
				panic(err)
			}
		}, func(s *shill.Machine) error {
			s.RemovePath("/home/user/Downloads/emacs-24.3.tar")
			return s.RunEmacsStep(ctx, shill.StepDownload, shill.ModeSandboxed)
		}},
		{"Grading", func(s *shill.Machine) {
			s.BuildGradingCourse(grading)
		}, func(s *shill.Machine) error {
			s.ResetGradingOutputs()
			return s.RunGrading(ctx, shill.ModeShill)
		}},
		{"Find", func(s *shill.Machine) {
			s.BuildSrcTree(find)
		}, func(s *shill.Machine) error {
			return s.RunFind(ctx, shill.ModeShill)
		}},
	}
	for _, cs := range cases {
		s := newMachine(shill.WithConsoleLimit(1 << 20))
		cs.prep(s)
		s.Prof().Reset()
		start := time.Now()
		if err := cs.run(s); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", cs.name, err)
			os.Exit(1)
		}
		s.FlushAuditProf()
		bd := s.Prof().Report(time.Since(start))
		fmt.Printf("%-12s %12v %12v %12v %12v %12v %12v %10d\n",
			cs.name,
			bd.Total.Round(time.Microsecond),
			bd.Startup.Round(time.Microsecond),
			bd.SandboxSetup.Round(time.Microsecond),
			bd.SandboxExec.Round(time.Microsecond),
			bd.AuditEmit.Round(time.Microsecond),
			bd.Remaining.Round(time.Microsecond),
			bd.Sandboxes)
		s.Close()
	}
}

// --- Figure 11 ---

func figure11(reps int) {
	fmt.Println("Figure 11: syscall microbenchmarks, SHILL installed vs Sandboxed (paper Figure 11)")
	fmt.Printf("%-24s %14s %14s %14s\n", "operation", "installed", "sandboxed", "difference")

	iters := 100000
	type micro struct {
		name string
		run  func(p *kernel.Proc, n int) error
	}
	micros := []micro{
		{"pread-1B", func(p *kernel.Proc, n int) error {
			fd, err := p.OpenAt(kernel.AtCWD, "/data/file.bin", kernel.ORead, 0)
			if err != nil {
				return err
			}
			defer p.Close(fd)
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				if _, err := p.Pread(fd, buf, 0); err != nil {
					return err
				}
			}
			return nil
		}},
		{"pread-1MB", func(p *kernel.Proc, n int) error {
			fd, err := p.OpenAt(kernel.AtCWD, "/data/file1m.bin", kernel.ORead, 0)
			if err != nil {
				return err
			}
			defer p.Close(fd)
			buf := make([]byte, 1<<20)
			for i := 0; i < n/100+1; i++ {
				if _, err := p.Pread(fd, buf, 0); err != nil {
					return err
				}
			}
			return nil
		}},
		{"create-unlink", func(p *kernel.Proc, n int) error {
			for i := 0; i < n; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "/work/tmp", kernel.OCreate|kernel.OWrite, 0o644)
				if err != nil {
					return err
				}
				p.Close(fd)
				if err := p.UnlinkAt(kernel.AtCWD, "/work/tmp", false); err != nil {
					return err
				}
			}
			return nil
		}},
		{"open-read-close (1)", func(p *kernel.Proc, n int) error {
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "file.bin", kernel.ORead, 0)
				if err != nil {
					return err
				}
				p.Read(fd, buf)
				p.Close(fd)
			}
			return nil
		}},
		{"open-read-close (5)", func(p *kernel.Proc, n int) error {
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "a/b/c/d/deep.bin", kernel.ORead, 0)
				if err != nil {
					return err
				}
				p.Read(fd, buf)
				p.Close(fd)
			}
			return nil
		}},
	}
	for _, m := range micros {
		perOp := map[bool]*sample{false: {}, true: {}}
		for _, sandboxed := range []bool{false, true} {
			for r := 0; r < reps; r++ {
				p := microProc(sandboxed)
				n := iters
				if strings.Contains(m.name, "1MB") {
					n = 1000
				}
				start := time.Now()
				if err := m.run(p, n); err != nil {
					fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", m.name, err)
					os.Exit(1)
				}
				perOp[sandboxed].add(time.Since(start) / time.Duration(n))
				p.Kernel().Shutdown()
			}
		}
		inst, _ := perOp[false].meanCI()
		sbx, _ := perOp[true].meanCI()
		fmt.Printf("%-24s %14v %14v %14v\n", m.name, inst, sbx, sbx-inst)
	}
}

func microProc(sandboxed bool) *kernel.Proc {
	k := kernel.New()
	k.InstallShillModule()
	big := make([]byte, 1<<20)
	k.FS.WriteFile("/data/file1m.bin", big, 0o666, 0, 0)
	k.FS.WriteFile("/data/file.bin", []byte("0123456789"), 0o666, 0, 0)
	k.FS.WriteFile("/data/a/b/c/d/deep.bin", []byte("0123456789"), 0o666, 0, 0)
	k.FS.MkdirAll("/work", 0o777, 0, 0)
	p := k.NewProc(0, 0)
	if sandboxed {
		child, err := p.Fork()
		if err != nil {
			panic(err)
		}
		if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
			panic(err)
		}
		child.ShillGrant(k.FS.MustResolve("/"), priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath))
		child.ShillGrant(k.FS.MustResolve("/data"), priv.GrantOf(priv.ReadOnlyDir))
		child.ShillGrant(k.FS.MustResolve("/work"), priv.GrantOf(priv.NewSet(
			priv.RLookup, priv.RContents, priv.RStat, priv.RPath,
			priv.RCreateFile, priv.RUnlinkFile, priv.RWrite, priv.RAppend)))
		// The working directory is set while the session still accepts
		// configuration, as sandbox.Exec does.
		if err := child.Chdir("/data"); err != nil {
			panic(err)
		}
		if err := child.ShillEnter(); err != nil {
			panic(err)
		}
		return child
	}
	if err := p.Chdir("/data"); err != nil {
		panic(err)
	}
	return p
}

// --- Figure 7 conformance ---

func figure7() {
	fmt.Println("Figure 7: system resources and how each is protected (verified against the implementation)")
	fmt.Printf("%-28s %-16s %-16s\n", "Resource", "Language", "Sandbox")
	rows := [][3]string{
		{"Directories, files, links", "Capabilities", "Capabilities"},
		{"Pipes", "Capabilities", "Capabilities"},
		{"Character Devices", "Capabilities", "Capabilities*"},
		{"Sockets (IP, Unix)", "Capabilities", "Capabilities"},
		{"Sockets (other)", "Denied", "Denied"},
		{"Processes", "ulimit", "Confinement"},
		{"Sysctl", "Denied", "Read-only"},
		{"Kernel environment", "Denied", "Denied"},
		{"Kernel modules", "Denied", "Denied"},
		{"POSIX IPC", "Denied", "Denied"},
		{"System V IPC", "Denied", "Denied"},
	}
	for _, r := range rows {
		fmt.Printf("%-28s %-16s %-16s\n", r[0], r[1], r[2])
	}
	fmt.Println("*: character-device reads/writes are not interposed on (§3.2.3 limitation, reproduced)")
	fmt.Println("\nrun `go test ./internal/conformance` to verify each row mechanically")
}

// --- LoC table ---

func figureLoC() {
	fmt.Println("Case-study script sizes, this reproduction vs the paper (§4.1)")
	fmt.Printf("%-28s %8s %10s %12s\n", "script", "lines", "contract", "paper")
	type entry struct {
		name  string
		src   string
		isCap bool
		paper string
	}
	entries := []entry{
		{"grade.sh (Bash)", shill.GradeSh, false, "61"},
		{"grade_sandbox.cap", shill.ScriptGradeSandboxCap, true, "22 (14 contract)"},
		{"grade_sandbox ambient", shill.ScriptGradeAmbientSandbox, false, "22"},
		{"grade.cap (pure SHILL)", shill.ScriptGradeCap, true, "78 (6 contract)"},
		{"grade ambient", shill.ScriptGradeAmbientShill, false, "16"},
		{"pkg_emacs.cap", shill.ScriptPkgEmacsCap, true, "91 (45 contract)"},
		{"pkg_emacs ambient", shill.ScriptPkgEmacsAmbient, false, "114"},
		{"apache.cap", shill.ScriptApacheCap, true, "30 (20 contract)"},
		{"apache ambient", shill.ScriptApacheAmbient, false, "27"},
		{"findgrep.cap", shill.ScriptFindGrepSandboxCap, true, "27 (5 contract)"},
		{"findgrep ambient", shill.ScriptFindGrepAmbientSandbox, false, "11"},
		{"findgrep_fine.cap", shill.ScriptFindGrepFineCap, true, "60 (11 contract)"},
		{"findgrep_fine ambient", shill.ScriptFindGrepAmbientFine, false, "9"},
	}
	for _, e := range entries {
		total, contractLines := countScript(e.src)
		c := "-"
		if e.isCap {
			c = fmt.Sprint(contractLines)
		}
		fmt.Printf("%-28s %8d %10s   %-20s\n", e.name, total, c, e.paper)
	}
}

// countScript counts non-blank, non-comment lines, and the subset that
// belongs to provide contracts.
func countScript(src string) (total, contractLines int) {
	inProvide := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		total++
		if strings.HasPrefix(t, "provide ") {
			inProvide = true
		}
		if inProvide {
			contractLines++
			if strings.HasSuffix(t, ";") {
				inProvide = false
			}
		}
	}
	return total, contractLines
}

// --- depth sweep ---

func figureSweep(reps int) {
	fmt.Println("open-read-close overhead vs path depth (§4.2: \"overhead increases linearly\")")
	fmt.Printf("%-8s %14s %14s %14s\n", "depth", "installed", "sandboxed", "difference")
	depths := []int{1, 2, 3, 4, 5, 6, 7, 8}
	iters := 50000
	for _, depth := range depths {
		perOp := map[bool]*sample{false: {}, true: {}}
		for _, sandboxed := range []bool{false, true} {
			for r := 0; r < reps; r++ {
				p := microProc(sandboxed)
				k := p.Kernel()
				rel := ""
				for i := 1; i < depth; i++ {
					rel += fmt.Sprintf("d%d/", i)
				}
				rel += "leaf.bin"
				k.FS.WriteFile("/data/"+rel, []byte("x"), 0o666, 0, 0)
				buf := make([]byte, 1)
				start := time.Now()
				for i := 0; i < iters; i++ {
					fd, err := p.OpenAt(kernel.AtCWD, rel, kernel.ORead, 0)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchfig: depth %d: %v\n", depth, err)
						os.Exit(1)
					}
					p.Read(fd, buf)
					p.Close(fd)
				}
				perOp[sandboxed].add(time.Since(start) / time.Duration(iters))
				k.Shutdown()
			}
		}
		inst, _ := perOp[false].meanCI()
		sbx, _ := perOp[true].meanCI()
		fmt.Printf("%-8d %14v %14v %14v\n", depth, inst, sbx, sbx-inst)
	}
	sort.Strings(nil) // keep sort imported for future table work
}

// --- parallel multi-session throughput ---

// parallelRow is one measurement in the machine-readable output.
type parallelRow struct {
	Sessions      int     `json:"sessions"`
	Audit         bool    `json:"audit"`
	Trace         bool    `json:"trace"`
	ScriptsPerSec float64 `json:"scripts_per_sec"`
	MeanSeconds   float64 `json:"mean_seconds"`
	CISeconds     float64 `json:"ci95_seconds"`
}

// parallelResult is the -json document CI archives per commit.
type parallelResult struct {
	Benchmark       string             `json:"benchmark"`
	Reps            int                `json:"reps"`
	SpawnLatencyUS  int                `json:"spawn_latency_us"`
	Students        int                `json:"students"`
	Tests           int                `json:"tests"`
	Rows            []parallelRow      `json:"rows"`
	AuditOverheadPc map[string]float64 `json:"audit_overhead_pct"`
	TraceOverheadPc map[string]float64 `json:"trace_overhead_pct"`
}

// parArm is one machine configuration in the parallel figure. The
// production shape (audit on, trace on) is the baseline; the other two
// arms each switch one subsystem off to price it.
type parArm struct{ audit, trace bool }

var parArms = []parArm{
	{audit: true, trace: true},  // production shape
	{audit: false, trace: true}, // prices the audit trail
	{audit: true, trace: false}, // prices request tracing
}

// traceOverheadBarPct is the acceptance bar: request tracing (which is
// on by default) must cost less than this against the trace-off arm,
// the same bar the audit subsystem was held to when it landed.
const traceOverheadBarPct = 5.0

// figureParallel measures aggregate grading throughput across 1/4/16
// concurrent sessions under three arms — audit+trace on (the production
// default), audit off, and trace off — the scripts/sec view of
// BenchmarkParallelGrading plus the overhead deltas both the audit and
// trace subsystems' acceptance bars (<5%) are judged against. Returns
// false (caller exits nonzero) if the tracing overhead, averaged across
// the session counts to damp single-point scheduler noise, reaches the
// bar.
func figureParallel(reps int, jsonPath string) bool {
	if reps < 1 {
		reps = 1 // below this the warmup discard would leave no samples
	}
	fmt.Println("Parallel grading throughput: N concurrent sessions; audit and trace arms")
	fmt.Printf("%-10s %14s %14s %14s %11s %11s\n",
		"sessions", "audit+trace", "no audit", "no trace", "audit-ovh", "trace-ovh")

	const latency = 500 * time.Microsecond
	w := shill.GradingWorkload{Students: 4, Tests: 2}
	res := parallelResult{
		Benchmark: "parallel-grading", Reps: reps,
		SpawnLatencyUS: int(latency / time.Microsecond),
		Students:       w.Students, Tests: w.Tests,
		AuditOverheadPc: map[string]float64{},
		TraceOverheadPc: map[string]float64{},
	}

	// The arms are measured interleaved — one rep of each in turn,
	// against long-lived systems — so scheduler and GC drift on a busy
	// box lands on every arm instead of biasing whichever arm ran last.
	// A warmup rep per arm is discarded (first run stages caches and
	// lazily creates session contexts).
	measure := func(n int) map[parArm]parallelRow {
		systems := map[parArm]*shill.Machine{}
		samples := map[parArm]*sample{}
		for _, arm := range parArms {
			opts := []shill.Option{
				shill.WithConsoleLimit(1 << 20),
				shill.WithSpawnLatency(latency),
			}
			if !arm.audit {
				opts = append(opts, shill.WithAuditDisabled())
			}
			if !arm.trace {
				opts = append(opts, shill.WithTraceDisabled())
			}
			systems[arm] = newMachine(opts...)
			samples[arm] = &sample{}
			defer systems[arm].Close()
		}
		for r := 0; r < reps+1; r++ {
			for _, arm := range parArms {
				s := systems[arm]
				s.PrepareGradingSessions(n, w)
				start := time.Now()
				if _, err := s.RunPreparedGradingSessions(ctx, n, shill.ModeShill); err != nil {
					fmt.Fprintf(os.Stderr, "benchfig: parallel[%d]: %v\n", n, err)
					os.Exit(1)
				}
				if r > 0 { // discard the warmup rep
					samples[arm].add(time.Since(start))
				}
			}
		}
		rows := map[parArm]parallelRow{}
		for _, arm := range parArms {
			mean, ci := samples[arm].meanCI()
			rows[arm] = parallelRow{
				Sessions: n, Audit: arm.audit, Trace: arm.trace,
				ScriptsPerSec: float64(n) / mean.Seconds(),
				MeanSeconds:   mean.Seconds(),
				CISeconds:     ci.Seconds(),
			}
		}
		return rows
	}

	// overheadPct prices the baseline arm against an arm with one
	// subsystem off: positive means the subsystem costs throughput.
	overheadPct := func(base, off parallelRow) float64 {
		return (off.ScriptsPerSec - base.ScriptsPerSec) / off.ScriptsPerSec * 100
	}

	var traceSum float64
	sessionCounts := []int{1, 4, 16}
	for _, n := range sessionCounts {
		rows := measure(n)
		base := rows[parArm{audit: true, trace: true}]
		noAudit := rows[parArm{audit: false, trace: true}]
		noTrace := rows[parArm{audit: true, trace: false}]
		res.Rows = append(res.Rows, base, noAudit, noTrace)
		auditOvh := overheadPct(base, noAudit)
		traceOvh := overheadPct(base, noTrace)
		res.AuditOverheadPc[fmt.Sprint(n)] = auditOvh
		res.TraceOverheadPc[fmt.Sprint(n)] = traceOvh
		traceSum += traceOvh
		fmt.Printf("%-10d %10.1f s/s %10.1f s/s %10.1f s/s %+10.2f%% %+10.2f%%\n",
			n, base.ScriptsPerSec, noAudit.ScriptsPerSec, noTrace.ScriptsPerSec,
			auditOvh, traceOvh)
	}
	traceMean := traceSum / float64(len(sessionCounts))

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}

	if traceMean >= traceOverheadBarPct {
		fmt.Fprintf(os.Stderr,
			"benchfig: tracing overhead %.2f%% (mean across %v sessions) breaches the %.0f%% bar\n",
			traceMean, sessionCounts, traceOverheadBarPct)
		return false
	}
	fmt.Printf("tracing overhead: %+.2f%% mean (bar <%.0f%%)\n", traceMean, traceOverheadBarPct)
	return true
}

// --- serving benchmark ---

// serveResult is the BENCH_serve.json document: the loadgen report of
// one in-process shilld run, plus the shape of the load.
type serveResult struct {
	Benchmark string        `json:"benchmark"`
	Ratio     loadgen.Ratio `json:"ratio"`
	Tenants   int           `json:"tenants"`
	loadgen.Report
}

// figureServe starts an in-process shilld (the same server.New +
// Handler cmd/shilld serves), drives it with the closed-loop load
// generator at 16 clients, and reports req/s, latency percentiles, and
// the deny-path overhead — the repo's first serving benchmark.
func figureServe(jsonPath string) {
	fmt.Println("Serving benchmark: in-process shilld, 16 closed-loop clients, mixed allow/deny/cancel")

	srv := server.New(server.Config{
		MaxMachines:      8,
		MaxConcurrent:    32,
		TenantConcurrent: 16,
		MaxQueue:         128,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		srv.Drain(dctx)
		ts.Close()
	}()

	// The legacy scenario set at the default ratio reproduces the
	// pre-registry hardcoded blend, keeping BENCH_serve comparable.
	cfg := loadgen.Config{
		URL:     ts.URL,
		Clients: 16,
		Tenants: 4,
		Mix:     loadgen.MustMix("legacy", loadgen.DefaultRatio),
	}

	// Warmup builds the tenant machines and JITs the paths; discarded.
	warm := cfg
	warm.Requests = 64
	if _, err := loadgen.Run(ctx, warm); err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: serve warmup: %v\n", err)
		os.Exit(1)
	}

	cfg.Requests = 1024
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: serve: %v\n", err)
		os.Exit(1)
	}
	if rep.Bad() > 0 || rep.HTTPErrors > 0 {
		fmt.Fprintf(os.Stderr, "benchfig: serve produced %d malformed responses, %d http errors\n",
			rep.Bad(), rep.HTTPErrors)
		os.Exit(1)
	}

	fmt.Printf("%-10s %12s %12s %12s %12s\n", "", "req/s", "p50", "p99", "max")
	row := func(name string, l loadgen.LatencySummary, rps float64) {
		r := ""
		if rps > 0 {
			r = fmt.Sprintf("%.1f", rps)
		}
		fmt.Printf("%-10s %12s %10.2fms %10.2fms %10.2fms\n", name, r, l.P50Ms, l.P99Ms, l.MaxMs)
	}
	row("overall", rep.Latency, rep.ReqPerSec)
	row("allow", rep.AllowLatency, 0)
	row("deny", rep.DenyLatency, 0)
	row("cancel", rep.CancelLatency, 0)
	fmt.Printf("outcomes: %d allowed, %d denied, %d canceled, %d rejected\n",
		rep.Allowed, rep.Denied, rep.Canceled, rep.Rejected)
	fmt.Printf("deny-path overhead: %+.1f%% (p50 vs allow)\n", rep.DenyOverheadPct)

	if jsonPath != "" {
		doc := serveResult{Benchmark: "serve", Ratio: loadgen.DefaultRatio, Tenants: cfg.Tenants, Report: *rep}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
}
