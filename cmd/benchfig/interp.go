package main

// The interpreter benchmark behind BENCH_interp.json: scripts/sec for
// an interpreter-bound workload under each execution engine, plus the
// allow-vs-deny p50 comparison that judges the lazy deny path. CI runs
// `benchfig -fig interp -json BENCH_interp.json` and fails the build
// if the compiled engine is not faster than the tree-walk.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/shill"
)

// interpWorkCap is the throughput workload: nested loops, closure
// calls, and multi-hop identifier lookups — pure interpreter work with
// a single kernel operation at the end, so the engines' evaluation
// cost dominates the measurement.
const interpWorkCap = `#lang shill/cap

provide work : {out : file(+append)} -> void;

add3 = fun(a, b, c) { a + b + c; };

inner = fun(k) { if k == 0 then { 0; } else { add3(k, k, k); } };

work = fun(out) {
  for a in range(250) {
    for b in range(100) {
      inner(b);
    }
  }
  append(out, "done\n");
};
`

// interpProbeCap renders the deny-path workload. The allow and deny
// variants are byte-identical except for the contract on f: with
// "+read, +stat" every read succeeds; with "+stat" every read is a
// capability denial that returns a syserror the script inspects and
// moves past. Run outcomes are identical (both exit 0) so the p50
// comparison isolates the cost of recording denials.
func interpProbeCap(privs string) string {
	return fmt.Sprintf(`#lang shill/cap

provide probe : {f : file(%s), out : file(+append)} -> void;

probe = fun(f, out) {
  for i in range(200) {
    r = read(f);
    is_syserror(r);
  }
  append(out, "done\n");
};
`, privs)
}

type interpRow struct {
	Engine        string  `json:"engine"`
	ScriptsPerSec float64 `json:"scripts_per_sec"`
	MeanMs        float64 `json:"mean_ms"`
	CIMs          float64 `json:"ci95_ms"`
	AllowP50Ms    float64 `json:"allow_p50_ms"`
	DenyP50Ms     float64 `json:"deny_p50_ms"`
	DenyOverhead  float64 `json:"deny_overhead_pct"`
}

type interpResult struct {
	Benchmark string      `json:"benchmark"`
	Runs      int         `json:"runs"`
	DenyRuns  int         `json:"deny_runs"`
	Rows      []interpRow `json:"rows"`
	Speedup   float64     `json:"compiled_speedup"`
}

func p50(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// interpMachine builds one engine's benchmark machine with the
// workload scripts registered.
func interpMachine(e shill.Engine) (*shill.Machine, *shill.Session) {
	m := newMachine(shill.WithEngine(e), shill.WithConsoleLimit(1<<20))
	m.AddScript("work.cap", interpWorkCap)
	m.AddScript("probe_allow.cap", interpProbeCap("+read, +stat"))
	m.AddScript("probe_deny.cap", interpProbeCap("+stat"))
	if err := m.WriteFile("/data/input.txt", []byte("interp benchmark input\n"), 0o644, shill.UserUID); err != nil {
		panic("benchfig: " + err.Error())
	}
	s := m.NewSession()
	return m, s
}

func interpDriver(console, module, pre, call string) string {
	return fmt.Sprintf(`#lang shill/ambient
require %q;

out = open_file(%q);
%s%s;
`, module, console, pre, call)
}

func runInterpScript(m *shill.Machine, s *shill.Session, name, src string) time.Duration {
	start := time.Now()
	res, err := s.Run(ctx, shill.Script{Name: name, Source: src})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: interp %s: %v\n", name, err)
		os.Exit(1)
	}
	if res.ExitStatus != 0 {
		fmt.Fprintf(os.Stderr, "benchfig: interp %s: exit %d\n", name, res.ExitStatus)
		os.Exit(1)
	}
	m.ConsoleText() // drain the console between runs
	return elapsed
}

func figureInterp(reps int, jsonPath string) {
	if reps < 1 {
		reps = 1
	}
	runs := 12 * reps
	denyRuns := 20 * reps
	fmt.Println("Interpreter engines: scripts/sec and deny-path p50 (tree-walk vs compiled)")

	engines := []shill.Engine{shill.EngineTreeWalk, shill.EngineCompiled}
	type arm struct {
		m *shill.Machine
		s *shill.Session

		work        []time.Duration
		allow, deny []time.Duration
	}
	arms := map[shill.Engine]*arm{}
	for _, e := range engines {
		m, s := interpMachine(e)
		defer m.Close()
		arms[e] = &arm{m: m, s: s}
	}

	// The arms run interleaved so scheduler and GC drift lands on both
	// engines instead of biasing whichever ran second. The first three
	// iterations warm caches (compiled-script cache included) and are
	// discarded.
	const warmup = 3
	for r := 0; r < runs+warmup; r++ {
		for _, e := range engines {
			a := arms[e]
			d := runInterpScript(a.m, a.s,
				"work.ambient", interpDriver(a.s.ConsolePath(), "work.cap", "", "work(out)"))
			if r >= warmup {
				a.work = append(a.work, d)
			}
		}
	}
	for r := 0; r < denyRuns+warmup; r++ {
		for _, e := range engines {
			a := arms[e]
			pre := "f = open_file(\"/data/input.txt\");\n"
			da := runInterpScript(a.m, a.s, "probe_allow.ambient",
				interpDriver(a.s.ConsolePath(), "probe_allow.cap", pre, "probe(f, out)"))
			dd := runInterpScript(a.m, a.s, "probe_deny.ambient",
				interpDriver(a.s.ConsolePath(), "probe_deny.cap", pre, "probe(f, out)"))
			if r >= warmup {
				a.allow = append(a.allow, da)
				a.deny = append(a.deny, dd)
			}
		}
	}

	res := interpResult{Benchmark: "interp", Runs: runs, DenyRuns: denyRuns}
	fmt.Printf("%-12s %14s %12s %12s %12s %10s\n",
		"engine", "scripts/sec", "mean", "allow p50", "deny p50", "overhead")
	persec := map[shill.Engine]float64{}
	for _, e := range engines {
		a := arms[e]
		sm := &sample{times: a.work}
		mean, ci := sm.meanCI()
		ap, dp := p50(a.allow), p50(a.deny)
		overhead := 0.0
		if ap > 0 {
			overhead = (dp.Seconds() - ap.Seconds()) / ap.Seconds() * 100
		}
		persec[e] = 1 / mean.Seconds()
		res.Rows = append(res.Rows, interpRow{
			Engine:        e.String(),
			ScriptsPerSec: persec[e],
			MeanMs:        mean.Seconds() * 1e3,
			CIMs:          ci.Seconds() * 1e3,
			AllowP50Ms:    ap.Seconds() * 1e3,
			DenyP50Ms:     dp.Seconds() * 1e3,
			DenyOverhead:  overhead,
		})
		fmt.Printf("%-12s %14.1f %12v %12v %12v %+9.1f%%\n",
			e, persec[e], mean.Round(time.Microsecond),
			ap.Round(time.Microsecond), dp.Round(time.Microsecond), overhead)
	}
	res.Speedup = persec[shill.EngineCompiled] / persec[shill.EngineTreeWalk]
	fmt.Printf("\ncompiled speedup: %.2fx (target >=3x; CI fails at <=1x)\n", res.Speedup)

	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if res.Speedup <= 1 {
		fmt.Fprintf(os.Stderr, "benchfig: compiled engine is not faster than tree-walk (%.2fx)\n", res.Speedup)
		os.Exit(1)
	}
}
