// Command shill-sandbox is the paper's command-line debugging tool
// (§3.2.2): it runs a single command inside a capability-based sandbox
// with capabilities specified in a policy file, optionally in debugging
// mode, which automatically grants the privileges an operation would
// otherwise be denied and logs them — "a useful starting point for
// identifying necessary capabilities to provide to a SHILL script".
//
// Usage:
//
//	shill-sandbox [-debug] [-policy file] [-workload name] -- command arg...
//
// Policy file syntax, one grant per line:
//
//	# path                privileges
//	/usr/src              +lookup, +contents, +stat, +path, +read
//	/home/user/out.txt    +write, +append
//	socket ip             +sock-create, +sock-connect, +sock-send, +sock-recv
//
// A privilege may carry a derivation modifier: +lookup with (+read, +stat).
// Relative paths resolve against /home/user. The sandbox always receives
// the command's executable and standard library capabilities.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/audit"
	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/sandbox"
	"repro/internal/stdlib"
)

func main() {
	debug := flag.Bool("debug", false, "debugging mode: auto-grant missing privileges and log them")
	policyFile := flag.String("policy", "", "policy file of capability grants")
	workload := flag.String("workload", "demo", "image to stage: demo, grading, emacs, apache, find, none")
	auditDump := flag.Bool("audit", false, "print the session's audit trail (with deciding layers) to stderr after the run")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: shill-sandbox [flags] -- command arg...")
		flag.Usage()
		os.Exit(2)
	}

	s := core.NewSystem(core.Config{InstallModule: true})
	defer s.Close()
	if err := stage(s, *workload); err != nil {
		fail("%v", err)
	}

	var grants []grantLine
	if *policyFile != "" {
		data, err := os.ReadFile(*policyFile)
		if err != nil {
			fail("%v", err)
		}
		grants, err = parsePolicy(string(data))
		if err != nil {
			fail("policy: %v", err)
		}
	}

	// Resolve the executable and its library dependencies.
	exePath := args[0]
	if !strings.Contains(exePath, "/") {
		for _, dir := range []string{"/bin/", "/usr/bin/", "/usr/local/sbin/"} {
			if _, err := s.K.FS.Resolve(dir + exePath); err == nil {
				exePath = dir + exePath
				break
			}
		}
	}
	exeVn, err := s.K.FS.Resolve(exePath)
	if err != nil {
		fail("command %s: %v", args[0], err)
	}
	exe := cap.NewFile(s.Runtime, exeVn, stdlib.ExecGrant)

	opts := sandbox.Options{
		Debug:   *debug,
		Logging: true,
		Prof:    s.Prof,
		Stdout:  consoleCap(s),
		Stderr:  consoleCap(s),
		Stdin:   consoleCap(s),
	}
	// Library directories ride along read-only, as pkg_native would
	// arrange.
	for _, libDir := range []string{"/lib", "/usr/local/lib"} {
		vn, err := s.K.FS.Resolve(libDir)
		if err == nil {
			opts.Extras = append(opts.Extras, cap.NewDir(s.Runtime, vn, stdlib.ReadOnlyDirGrant))
		}
	}
	sargs := make([]sandbox.Arg, 0, len(args)-1)
	for _, a := range args[1:] {
		sargs = append(sargs, sandbox.StrArg(a))
	}
	for _, g := range grants {
		if g.socket != "" {
			domain := netstack.DomainIP
			if g.socket == "unix" {
				domain = netstack.DomainUnix
			}
			opts.SocketFactories = append(opts.SocketFactories,
				cap.NewSocketFactory(s.Runtime, domain, g.grant))
			continue
		}
		vn, err := s.K.FS.Resolve(g.path)
		if err != nil {
			fail("policy: %s: %v", g.path, err)
		}
		opts.Extras = append(opts.Extras, cap.NewForVnode(s.Runtime, vn, g.grant))
	}

	res, err := sandbox.Exec(s.Runtime, exe, sargs, opts)
	fmt.Print(s.ConsoleText())
	if *auditDump {
		// Dump before any exit: a failed exec is exactly the case the
		// trail explains (e.g. the policy lacked +exec on the binary).
		filter := audit.Filter{}
		label := "all sessions"
		if res.Session != nil {
			filter.Session = res.Session.ID()
			label = fmt.Sprintf("session %d", res.Session.ID())
		}
		events := s.Audit().Query(filter)
		fmt.Fprintf(os.Stderr, "--- audit trail: %s, %d retained events ---\n", label, len(events))
		for _, e := range events {
			fmt.Fprintln(os.Stderr, audit.FormatEvent(e))
		}
	}
	if err != nil {
		fail("exec: %v", err)
	}
	if log := res.Session.Log(); log != nil {
		denials := log.Denials()
		autos := log.AutoGrants()
		if len(denials) > 0 {
			fmt.Fprintln(os.Stderr, "--- denied operations ---")
			for _, e := range denials {
				fmt.Fprintln(os.Stderr, e)
			}
		}
		if len(autos) > 0 {
			fmt.Fprintln(os.Stderr, "--- privileges auto-granted in debug mode (add these to your policy) ---")
			for _, e := range autos {
				fmt.Fprintln(os.Stderr, e)
			}
		}
	}
	os.Exit(res.ExitCode)
}

func consoleCap(s *core.System) *cap.Capability {
	vn := s.K.FS.MustResolve("/dev/console")
	return cap.NewFile(s.Runtime, vn, priv.FullGrant())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shill-sandbox: "+format+"\n", args...)
	os.Exit(1)
}

func stage(s *core.System, name string) error {
	switch name {
	case "none":
		return nil
	case "demo":
		_, err := s.K.FS.WriteFile("/home/user/Documents/dog.jpg", []byte("JFIFdog"), 0o644, core.UserUID, core.UserUID)
		return err
	case "grading":
		s.BuildGradingCourse(core.DefaultGrading)
	case "emacs":
		s.BuildEmacsOrigin(core.DefaultEmacs)
		_, err := s.StartOrigin()
		return err
	case "apache":
		s.BuildWWW(core.DefaultApache)
	case "find":
		s.BuildSrcTree(core.DefaultFind)
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
	return nil
}

// grantLine is one parsed policy grant.
type grantLine struct {
	path   string // filesystem grants
	socket string // "ip" or "unix" for socket-factory grants
	grant  *priv.Grant
}

// parsePolicy parses the policy file format.
func parsePolicy(src string) ([]grantLine, error) {
	var out []grantLine
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want \"<path> <privileges>\"", lineNo+1)
		}
		target := fields[0]
		rest := strings.TrimSpace(fields[1])
		g := grantLine{}
		if target == "socket" {
			sub := strings.SplitN(rest, " ", 2)
			if len(sub) != 2 || (sub[0] != "ip" && sub[0] != "unix") {
				return nil, fmt.Errorf("line %d: want \"socket ip|unix <privileges>\"", lineNo+1)
			}
			g.socket = sub[0]
			rest = sub[1]
		} else {
			if !strings.HasPrefix(target, "/") {
				target = "/home/user/" + target
			}
			g.path = target
		}
		grant, err := parseGrant(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		g.grant = grant
		out = append(out, g)
	}
	return out, nil
}

// parseGrant parses "+a, +b with (+c, +d), +e".
func parseGrant(s string) (*priv.Grant, error) {
	g := &priv.Grant{}
	for len(s) > 0 {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, "+") {
			return nil, fmt.Errorf("expected +privilege at %q", s)
		}
		s = s[1:]
		end := strings.IndexAny(s, " ,\t")
		name := s
		if end >= 0 {
			name = s[:end]
			s = s[end:]
		} else {
			s = ""
		}
		r, err := priv.ParseRight(strings.ReplaceAll(name, "_", "-"))
		if err != nil {
			return nil, err
		}
		g.Rights = g.Rights.Add(r)
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "with") {
			s = strings.TrimLeft(s[4:], " \t")
			if !strings.HasPrefix(s, "(") {
				return nil, fmt.Errorf("expected ( after with")
			}
			close := strings.IndexByte(s, ')')
			if close < 0 {
				return nil, fmt.Errorf("unterminated with(...)")
			}
			sub, err := parseGrant(s[1:close])
			if err != nil {
				return nil, err
			}
			if g.Derived == nil {
				g.Derived = make(map[priv.Right]*priv.Grant)
			}
			g.Derived[r] = sub
			s = s[close+1:]
		}
	}
	return g, nil
}
