// Command shill-sandbox is the paper's command-line debugging tool
// (§3.2.2): it runs a single command inside a capability-based sandbox
// with capabilities specified in a policy file, optionally in debugging
// mode, which automatically grants the privileges an operation would
// otherwise be denied and logs them — "a useful starting point for
// identifying necessary capabilities to provide to a SHILL script".
//
// Usage:
//
//	shill-sandbox [-debug] [-policy file] [-workload name] [-timeout d] -- command arg...
//
// Policy file syntax, one grant per line:
//
//	# path                privileges
//	/usr/src              +lookup, +contents, +stat, +path, +read
//	/home/user/out.txt    +write, +append
//	socket ip             +sock-create, +sock-connect, +sock-send, +sock-recv
//
// A privilege may carry a derivation modifier: +lookup with (+read, +stat).
// Relative paths resolve against /home/user. The sandbox always receives
// the command's executable and standard library capabilities.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/shill"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("shill-sandbox", flag.ExitOnError)
	debug := fs.Bool("debug", false, "debugging mode: auto-grant missing privileges and log them")
	policyFile := fs.String("policy", "", "policy file of capability grants")
	workload := fs.String("workload", "demo", "image to stage: demo, grading, emacs, apache, find, none")
	auditDump := fs.Bool("audit", false, "print the session's audit trail (with deciding layers) to stderr after the run")
	timeout := fs.Duration("timeout", 0, "wall-time limit for the sandboxed command (0 = none)")
	fs.Parse(argv)
	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: shill-sandbox [flags] -- command arg...")
		fs.Usage()
		return 2
	}

	m, err := shill.NewMachine(shill.WithWorkload(shill.Workload(*workload)))
	if err != nil {
		return fail("%v", err)
	}
	defer m.Close()

	var policy *shill.SandboxPolicy
	if *policyFile != "" {
		data, err := os.ReadFile(*policyFile)
		if err != nil {
			return fail("%v", err)
		}
		policy, err = shill.ParseSandboxPolicy(string(data))
		if err != nil {
			return fail("policy: %v", err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := m.ExecSandboxed(ctx, shill.SandboxCommand{
		Argv:   args,
		Policy: policy,
		Debug:  *debug,
	})
	if res != nil {
		fmt.Print(res.Console)
		if *auditDump {
			// Dump before any exit: a failed exec is exactly the case the
			// trail explains (e.g. the policy lacked +exec on the binary).
			fmt.Fprintf(os.Stderr, "--- audit trail: session %d, %d retained events ---\n",
				res.SessionID, len(res.Trail))
			for _, line := range res.Trail {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err != nil {
		return fail("%v", err)
	}
	if len(res.Denials) > 0 {
		fmt.Fprintln(os.Stderr, "--- denied operations ---")
		for _, e := range res.Denials {
			fmt.Fprintln(os.Stderr, e)
		}
	}
	if len(res.AutoGrants) > 0 {
		fmt.Fprintln(os.Stderr, "--- privileges auto-granted in debug mode (add these to your policy) ---")
		for _, e := range res.AutoGrants {
			fmt.Fprintln(os.Stderr, e)
		}
	}
	return res.ExitStatus
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "shill-sandbox: "+format+"\n", args...)
	return 1
}
