// Command shill runs SHILL ambient scripts against a freshly built
// simulated machine (see repro/shill): the interpreter plays the role
// of the paper's Racket front end, and the machine stands in for
// FreeBSD 9.2 with the SHILL kernel module loaded.
//
// Usage:
//
//	shill [-no-module] [-workload name] [-timeout d] script.ambient [more.ambient ...]
//
// Scripts are read from the host filesystem; require "x.cap" resolves
// first against the host directory of the requiring script, then against
// the built-in case-study scripts (grade.cap, pkg_emacs.cap, apache.cap,
// find.cap, findgrep.cap, findgrep_fine.cap, jpeginfo.cap, run_cmd.cap).
//
// The -workload flag stages one of the paper's case-study images before
// running: grading, emacs, apache, find, or demo (a home directory with
// a few JPEGs). The -timeout flag bounds each script's wall time via
// context cancellation; a runaway script is stopped and reported, and
// the run continues with the next script.
//
// Every script runs to a per-script exit status; the command's own exit
// status is the first non-zero script status (scripts after a failure
// still run, and the machine always shuts down cleanly).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/shill"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("shill", flag.ExitOnError)
	noModule := fs.Bool("no-module", false, "do not install the SHILL kernel module (Baseline configuration)")
	workload := fs.String("workload", "demo", "image to stage: demo, grading, emacs, apache, find, none")
	quiet := fs.Bool("quiet", false, "suppress the console dump after each script")
	auditDump := fs.Bool("audit", false, "print each script's denial provenance to stderr")
	timeout := fs.Duration("timeout", 0, "per-script wall-time limit (0 = none); a script over the limit is cancelled")
	engineName := fs.String("engine", "tree-walk", "execution engine: tree-walk or compiled")
	fs.Parse(argv)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: shill [flags] script.ambient ...")
		fs.Usage()
		return 2
	}

	engine, err := shill.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill: %v\n", err)
		return 2
	}
	m, err := shill.NewMachine(
		shill.WithModule(!*noModule),
		shill.WithWorkload(shill.Workload(*workload)),
		shill.WithEngine(engine),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill: %v\n", err)
		return 1
	}
	defer m.Close()
	// The CLI runs on the default (shared-console) session so scripts
	// that open /dev/console by name land in the captured output.
	session := m.DefaultSession()

	status := 0
	for _, script := range fs.Args() {
		code := runScript(m, session, script, *quiet, *auditDump, *timeout)
		if code != 0 && status == 0 {
			status = code
		}
	}
	return status
}

// runScript runs one script file to a per-script exit status.
func runScript(m *shill.Machine, session *shill.Session, script string, quiet, auditDump bool, timeout time.Duration) int {
	src, err := os.ReadFile(script)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill: %v\n", err)
		return 1
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := session.Run(ctx, shill.Script{
		Name:   filepath.Base(script),
		Source: string(src),
		// Required scripts resolve against the script's host directory
		// first, then the machine's built-in case-study scripts.
		Resolver: shill.ChainResolver{
			shill.HostDirResolver{Dir: filepath.Dir(script)},
			m.Resolver(),
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill: %s: %v\n", script, err)
		// Name the missing privilege explicitly when the error chain
		// carries structured provenance.
		if d := shill.DenyReasonFor(err); d != nil {
			fmt.Fprintf(os.Stderr, "shill: denied: %v\n", d)
		}
		if res != nil && res.Console != "" {
			fmt.Fprintf(os.Stderr, "--- console ---\n%s", res.Console)
		}
		dumpDenials(res, auditDump)
		if res != nil && res.ExitStatus != 0 {
			return res.ExitStatus
		}
		return 1
	}
	if !quiet {
		fmt.Print(res.Console)
	}
	dumpDenials(res, auditDump)
	return res.ExitStatus
}

// dumpDenials prints the denials the run's audit window recorded —
// including ones that never surfaced as script errors because a
// sandboxed binary swallowed the errno — so a failing run always names
// the privilege it was missing.
func dumpDenials(res *shill.Result, enabled bool) {
	if !enabled || res == nil {
		return
	}
	if len(res.Denials) == 0 {
		fmt.Fprintln(os.Stderr, "--- audit: no denials recorded ---")
		return
	}
	fmt.Fprintf(os.Stderr, "--- audit: %d denial(s); shill-audit why-denied explains lineage ---\n", len(res.Denials))
	for _, d := range res.Denials {
		fmt.Fprintln(os.Stderr, d)
	}
}
