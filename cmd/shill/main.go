// Command shill runs a SHILL ambient script against a freshly built
// simulated machine (see internal/core): the interpreter plays the role
// of the paper's Racket front end, and the machine stands in for
// FreeBSD 9.2 with the SHILL kernel module loaded.
//
// Usage:
//
//	shill [-no-module] [-workload name] script.ambient [more.ambient ...]
//
// Scripts are read from the host filesystem; require "x.cap" resolves
// first against the host directory of the requiring script, then against
// the built-in case-study scripts (grade.cap, pkg_emacs.cap, apache.cap,
// find.cap, findgrep.cap, findgrep_fine.cap, jpeginfo.cap, run_cmd.cap).
//
// The -workload flag stages one of the paper's case-study images before
// running: grading, emacs, apache, find, or demo (a home directory with
// a few JPEGs).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/lang"
)

func main() {
	noModule := flag.Bool("no-module", false, "do not install the SHILL kernel module (Baseline configuration)")
	workload := flag.String("workload", "demo", "image to stage: demo, grading, emacs, apache, find, none")
	quiet := flag.Bool("quiet", false, "suppress the console dump after each script")
	auditDump := flag.Bool("audit", false, "print the audit trail's denials (with provenance) to stderr after each script")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: shill [flags] script.ambient ...")
		flag.Usage()
		os.Exit(2)
	}

	s := core.NewSystem(core.Config{InstallModule: !*noModule})
	defer s.Close()
	if err := stageWorkload(s, *workload); err != nil {
		fmt.Fprintf(os.Stderr, "shill: %v\n", err)
		os.Exit(1)
	}

	for _, script := range flag.Args() {
		src, err := os.ReadFile(script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shill: %v\n", err)
			os.Exit(1)
		}
		// Remember where the trail stood so this script's dump reports
		// only its own denials, not an earlier script's.
		sinceSeq := s.Audit().Seq()
		loader := hostLoader{dir: filepath.Dir(script), fallback: s.Scripts}
		it := lang.NewInterp(s.Runtime, loader, s.Prof)
		if err := it.RunAmbient(filepath.Base(script), string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "shill: %s: %v\n", script, err)
			// Name the missing privilege explicitly when the error chain
			// carries structured provenance (internal/audit.DenyReason).
			if d := audit.ReasonFor(err); d != nil {
				fmt.Fprintf(os.Stderr, "shill: denied: %v\n", d)
			}
			if out := s.ConsoleText(); out != "" {
				fmt.Fprintf(os.Stderr, "--- console ---\n%s", out)
			}
			dumpDenials(s, *auditDump, sinceSeq)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Print(s.ConsoleText())
		}
		dumpDenials(s, *auditDump, sinceSeq)
	}
}

// dumpDenials prints the denials the audit trail recorded after
// sinceSeq — including ones that never surfaced as script errors
// because a sandboxed binary swallowed the errno — so a failing run
// always names the privilege it was missing.
func dumpDenials(s *core.System, enabled bool, sinceSeq uint64) {
	if !enabled {
		return
	}
	denials := s.Audit().Query(audit.Filter{Verdict: audit.Deny, SinceSeq: sinceSeq})
	if len(denials) == 0 {
		fmt.Fprintln(os.Stderr, "--- audit: no denials recorded ---")
		return
	}
	fmt.Fprintf(os.Stderr, "--- audit: %d denial(s); shill-audit why-denied explains lineage ---\n", len(denials))
	for _, e := range denials {
		fmt.Fprintln(os.Stderr, audit.FormatEvent(e))
	}
}

// hostLoader resolves required scripts from the host filesystem with the
// built-in scripts as a fallback.
type hostLoader struct {
	dir      string
	fallback lang.MapLoader
}

// Load implements lang.Loader.
func (l hostLoader) Load(name string) (string, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, name))
	if err == nil {
		return string(data), nil
	}
	return l.fallback.Load(name)
}

func stageWorkload(s *core.System, name string) error {
	// The built-in case-study scripts are always available to require.
	s.LoadCaseScripts()
	switch name {
	case "none":
		return nil
	case "demo":
		if _, err := s.K.FS.WriteFile("/home/user/Documents/dog.jpg", []byte("JFIFdog"), 0o644, core.UserUID, core.UserUID); err != nil {
			return err
		}
		_, err := s.K.FS.WriteFile("/home/user/Documents/cat.jpg", []byte("JFIFcat"), 0o644, core.UserUID, core.UserUID)
		return err
	case "grading":
		s.BuildGradingCourse(core.DefaultGrading)
		return nil
	case "emacs":
		s.BuildEmacsOrigin(core.DefaultEmacs)
		stop, err := s.StartOrigin()
		_ = stop // runs for the process lifetime
		return err
	case "apache":
		s.BuildWWW(core.DefaultApache)
		return nil
	case "find":
		s.BuildSrcTree(core.DefaultFind)
		return nil
	}
	return fmt.Errorf("unknown workload %q", name)
}
