// Command shill-audit runs SHILL scripts with the audit subsystem
// enabled and explains what the security layers decided: which
// operations were checked, which were denied and by which layer (DAC,
// MAC policy, SHILL policy, capability runtime, contract system), and
// the provenance of every capability involved — the forge, wallet, or
// contract that produced it.
//
// Usage:
//
//	shill-audit [-workload name] report     script.ambient [more ...]
//	shill-audit [-workload name] trace PATH script.ambient [more ...]
//	shill-audit [-workload name] why-denied script.ambient [more ...]
//
// report prints an event summary (counts by kind, layer, verdict, and
// session). trace prints every retained event touching PATH. why-denied
// explains each denial: the deciding layer, the operation and object,
// the missing privileges, and — for capability-level denials — the
// contract chain that attenuated the capability plus its full lineage.
//
// Script failures do not stop the walkthrough: the audit trail of a
// failing script is exactly what the tool exists to explain. Try it on
// the built-in demo:
//
//	shill-audit -workload demo why-denied examples/scripts/why_denied.ambient
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/audit"
	"repro/shill"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: shill-audit [-workload name] report|trace|why-denied [PATH] script.ambient ...")
	return 2
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shill-audit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "demo", "image to stage: demo, grading, emacs, apache, find, none")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if len(args) < 2 {
		return usage(stderr)
	}
	cmd := args[0]
	args = args[1:]
	var tracePath string
	switch cmd {
	case "report", "why-denied":
	case "trace":
		if len(args) < 2 {
			return usage(stderr)
		}
		tracePath = args[0]
		args = args[1:]
	default:
		// Reject typos before staging a workload and running scripts.
		fmt.Fprintf(stderr, "shill-audit: unknown command %q\n", cmd)
		return usage(stderr)
	}

	m, err := shill.NewMachine(shill.WithWorkload(shill.Workload(*workload)))
	if err != nil {
		fmt.Fprintf(stderr, "shill-audit: %v\n", err)
		return 1
	}
	defer m.Close()
	session := m.DefaultSession()

	// Run every script, collecting failures rather than stopping: the
	// audit trail of a failed run is the product, not a problem.
	var scriptErrs []error
	for _, script := range args {
		src, err := os.ReadFile(script)
		if err != nil {
			fmt.Fprintf(stderr, "shill-audit: %v\n", err)
			return 1
		}
		if _, rerr := session.Run(context.Background(), shill.Script{
			Name:   filepath.Base(script),
			Source: string(src),
			Resolver: shill.ChainResolver{
				shill.HostDirResolver{Dir: filepath.Dir(script)},
				m.Resolver(),
			},
		}); rerr != nil {
			scriptErrs = append(scriptErrs, fmt.Errorf("%s: %w", script, rerr))
		}
	}

	log := m.AuditLog()
	switch cmd {
	case "report":
		report(stdout, log)
	case "trace":
		trace(stdout, log, tracePath)
	case "why-denied":
		whyDenied(stdout, log, scriptErrs)
	}
	for _, e := range scriptErrs {
		fmt.Fprintf(stderr, "shill-audit: script failed: %v\n", e)
	}
	return 0
}

func report(w io.Writer, log *audit.Log) {
	events := log.Query(audit.Filter{})
	sum := audit.Summarize(events)
	fmt.Fprintf(w, "audit report: %d retained events, %d recorded in total\n", sum.Total, log.Emits())

	fmt.Fprintln(w, "\nby kind:")
	kinds := make([]audit.Kind, 0, len(sum.ByKind))
	for k := range sum.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-12s %6d\n", k, sum.ByKind[k])
	}

	fmt.Fprintln(w, "\nby deciding layer (checked operations):")
	layers := make([]audit.Layer, 0, len(sum.ByLayer))
	for l := range sum.ByLayer {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
	for _, l := range layers {
		fmt.Fprintf(w, "  %-12s %6d\n", l, sum.ByLayer[l])
	}

	fmt.Fprintf(w, "\nverdicts: %d allowed, %d denied\n", sum.ByVerdict[audit.Allow], sum.ByVerdict[audit.Deny])

	sessions := make([]uint64, 0, len(sum.Sessions))
	for id := range sum.Sessions {
		sessions = append(sessions, id)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i] < sessions[j] })
	fmt.Fprintln(w, "\nby session (0 = ambient):")
	for _, id := range sessions {
		fmt.Fprintf(w, "  session %-4d %6d events\n", id, sum.Sessions[id])
	}

	if len(sum.Denied) > 0 {
		fmt.Fprintf(w, "\n%d denials — run `shill-audit why-denied` for provenance\n", len(sum.Denied))
	}
}

func trace(w io.Writer, log *audit.Log, path string) {
	events := log.Query(audit.Filter{Path: path})
	if len(events) == 0 {
		fmt.Fprintf(w, "no retained events touch %q\n", path)
		return
	}
	fmt.Fprintf(w, "%d events touching %q:\n", len(events), path)
	for _, e := range events {
		fmt.Fprintln(w, audit.FormatEvent(e))
		if e.CapID != 0 && (e.Kind == audit.KindCapDeny || e.Kind == audit.KindContract) {
			fmt.Fprintf(w, "       lineage: %s\n", audit.FormatLineage(log.Lineage(e.CapID)))
		}
	}
}

func whyDenied(w io.Writer, log *audit.Log, scriptErrs []error) {
	// The same query path shilld serves over GET /v1/audit/why-denied.
	denials := audit.Explain(log, 0)
	if len(denials) == 0 {
		fmt.Fprintln(w, "no denials recorded: every checked operation was allowed")
		return
	}
	fmt.Fprintf(w, "%d denial(s) recorded:\n", len(denials))
	for _, e := range denials {
		fmt.Fprintf(w, "\ndenial #%d\n", e.Seq)
		fmt.Fprintf(w, "  layer:    %s", e.Layer)
		if e.Policy != "" && e.Layer == audit.LayerMAC {
			fmt.Fprintf(w, " (policy %q)", e.Policy)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  op:       %s\n", e.Op)
		if e.Object != "" {
			fmt.Fprintf(w, "  object:   %s\n", e.Object)
		}
		if e.Session != 0 {
			fmt.Fprintf(w, "  session:  %d\n", e.Session)
		} else {
			fmt.Fprintf(w, "  session:  ambient\n")
		}
		if !e.Missing.Empty() {
			fmt.Fprintf(w, "  missing:  %v\n", e.Missing)
		}
		if e.TraceID != 0 {
			// The trace links the denial to its request's span tree:
			// GET /v1/trace?tenant=T serves the spans this ID names, so
			// an operator sees exactly when in the request it landed.
			fmt.Fprintf(w, "  trace:    %d\n", e.TraceID)
		}
		switch {
		case e.Kind == audit.KindCapDeny && e.Detail != "":
			fmt.Fprintf(w, "  denied by contract: %s\n", e.Detail)
		case e.Kind == audit.KindContract:
			fmt.Fprintf(w, "  contract: %s (%s)\n", e.Object, e.Detail)
		case e.Detail != "":
			fmt.Fprintf(w, "  rule:     %s\n", e.Detail)
		}
		if e.CapID != 0 {
			fmt.Fprintf(w, "  capability: cap#%d\n", e.CapID)
			fmt.Fprintf(w, "  lineage:  %s\n", e.Lineage)
		}
	}
	// Structured reasons that surfaced as script errors add the
	// language-level view of the same denials.
	for _, err := range scriptErrs {
		if d := audit.ReasonFor(err); d != nil {
			fmt.Fprintf(w, "\nscript error carried provenance: %v\n", d)
		}
	}
}
