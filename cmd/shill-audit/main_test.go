package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/shill"
)

// writeDemo stages the built-in why_denied demo scripts in a temp dir.
func writeDemo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := shill.ScriptFiles()
	for _, name := range []string{"why_denied.ambient", "why_denied.cap"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(files[name]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "why_denied.ambient")
}

// TestWhyDeniedNamesContract is the acceptance check: why-denied on the
// demo denial must name the exact contract that rejected the write and
// the capability's lineage back to its forge.
func TestWhyDeniedNamesContract(t *testing.T) {
	script := writeDemo(t)
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "demo", "why-denied", script}, &out, &errOut); code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"layer:    capability",
		"op:       write",
		"object:   /home/user/Documents/dog.jpg",
		"missing:  {+write}",
		"denied by contract: file(+read, +stat)",
		"open_file(/home/user/Documents/dog.jpg) -> restrict[file(+read, +stat)]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("why-denied output missing %q\n--- output ---\n%s", want, got)
		}
	}
	// The script's failure itself is reported on stderr, not swallowed.
	if !strings.Contains(errOut.String(), "script failed") {
		t.Errorf("stderr did not report the script failure: %s", errOut.String())
	}
}

func TestReportCountsDenial(t *testing.T) {
	script := writeDemo(t)
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "demo", "report", script}, &out, &errOut); code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"cap-deny", "1 denials", "by kind:"} {
		if !strings.Contains(got, want) {
			t.Errorf("report output missing %q\n--- output ---\n%s", want, got)
		}
	}
}

func TestTraceFollowsPath(t *testing.T) {
	script := writeDemo(t)
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "demo", "trace", "dog.jpg", script}, &out, &errOut); code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "cap-new") || !strings.Contains(got, "cap-deny") {
		t.Errorf("trace output missing lineage events:\n%s", got)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"report"}, &out, &errOut); code != 2 {
		t.Fatalf("missing script: exit %d", code)
	}
	if code := run([]string{"nonsense", "x.ambient"}, &out, &errOut); code == 0 {
		t.Fatal("unknown command accepted")
	}
}
