// Command shill-load is the closed-loop load generator for shilld: N
// concurrent clients drive a daemon with a mix of allowed, denied, and
// cancelled runs, verify every response's shape (denials must carry
// structured provenance; cancelled runs must report cancellation), and
// print throughput plus a latency histogram — the serving benchmark of
// this reproduction.
//
// Usage:
//
//	shill-load -url http://127.0.0.1:8377 [-c 16] [-n 256 | -duration 30s]
//	           [-mix 60/30/10] [-scenarios legacy] [-tenants 4]
//	           [-json REPORT.json] [-check] [-server-stats=false]
//
// -mix is allow/deny/cancel percentages. Request bodies are sampled
// from the scenario registry's load probes: -scenarios is an attr
// expression selecting which scenarios contribute (default "legacy",
// the pre-registry hardcoded blend, so reports stay comparable; try
// "legacy || llm"). -check exits 1 if any response had the wrong shape
// (a denied run without provenance, a cancel that did not cancel) or
// any transport error occurred — the smoke-test mode CI uses.
//
// By default the tool also scrapes the daemon's /metrics latency
// histograms before and after the run and reports the server-side
// percentiles for the run's delta next to its own: the client times the
// whole wire round trip, the server times admission to response, and a
// gap over 10% at p50 or p99 is flagged as DISAGREE — latency is going
// somewhere neither side accounts for. -server-stats=false skips the
// scrape.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/server/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "http://127.0.0.1:8377", "shilld base URL")
	clients := flag.Int("c", 16, "concurrent closed-loop clients")
	requests := flag.Int("n", 256, "total requests (0: run for -duration)")
	duration := flag.Duration("duration", 0, "run for this long instead of -n requests")
	mixFlag := flag.String("mix", "60/30/10", "allow/deny/cancel percentages")
	scenariosFlag := flag.String("scenarios", "legacy", "attr expression selecting the scenarios whose load probes feed the mix")
	tenants := flag.Int("tenants", 4, "tenants to spread requests over")
	deadlineMs := flag.Int("deadline-ms", 10_000, "allow/deny request deadline")
	cancelMs := flag.Int("cancel-ms", 80, "cancel-kind request deadline")
	allowArgv := flag.String("allow-argv", "", "comma-separated native argv for the allow kind instead of the inline script (must print \"ok\"; e.g. echo,ok)")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	check := flag.Bool("check", false, "exit 1 on any malformed response or transport error")
	serverStats := flag.Bool("server-stats", true, "scrape the daemon's /metrics latency histograms around the run and compare percentiles")
	flag.Parse()

	var ratio loadgen.Ratio
	if _, err := fmt.Sscanf(*mixFlag, "%d/%d/%d", &ratio.AllowPct, &ratio.DenyPct, &ratio.CancelPct); err != nil {
		fmt.Fprintf(os.Stderr, "shill-load: bad -mix %q: %v\n", *mixFlag, err)
		return 2
	}
	mix, err := loadgen.NewRegistryMix(*scenariosFlag, ratio)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
		return 2
	}
	cfg := loadgen.Config{
		URL:              *url,
		Clients:          *clients,
		Requests:         *requests,
		Duration:         *duration,
		Mix:              mix,
		Tenants:          *tenants,
		DeadlineMs:       *deadlineMs,
		CancelDeadlineMs: *cancelMs,
	}
	if *allowArgv != "" {
		cfg.AllowArgv = strings.Split(*allowArgv, ",")
	}
	if *duration > 0 {
		cfg.Requests = 0
	}

	// Snapshot the server's cumulative latency histograms before the run
	// so the post-run scrape can be narrowed to this run's delta. A
	// failed scrape degrades to client-only reporting, not a failed run.
	var before map[string]loadgen.HistSnapshot
	if *serverStats {
		b, err := loadgen.ScrapeRunSeconds(context.Background(), nil, *url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: pre-run /metrics scrape: %v\n", err)
			*serverStats = false
		}
		before = b
	}

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
		return 1
	}
	if *serverStats {
		after, err := loadgen.ScrapeRunSeconds(context.Background(), nil, *url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: post-run /metrics scrape: %v\n", err)
		} else {
			rep.Server = loadgen.CompareServer(rep, before, after)
		}
	}

	fmt.Printf("shill-load: %d clients, %d requests in %.2fs = %.1f req/s\n",
		rep.Clients, rep.Requests, rep.ElapsedSec, rep.ReqPerSec)
	fmt.Printf("  outcomes: %d allowed, %d denied, %d canceled, %d rejected (429), %d http errors\n",
		rep.Allowed, rep.Denied, rep.Canceled, rep.Rejected, rep.HTTPErrors)
	fmt.Printf("  malformed: %d (allow %d, deny %d, cancel %d)\n",
		rep.Bad(), rep.BadAllow, rep.BadDeny, rep.BadCancel)
	row := func(name string, l loadgen.LatencySummary) {
		fmt.Printf("  %-8s n=%-5d p50=%8.2fms p90=%8.2fms p99=%8.2fms max=%8.2fms\n",
			name, l.Count, l.P50Ms, l.P90Ms, l.P99Ms, l.MaxMs)
	}
	row("overall", rep.Latency)
	row("allow", rep.AllowLatency)
	row("deny", rep.DenyLatency)
	row("cancel", rep.CancelLatency)
	fmt.Printf("  deny-path overhead: %+.1f%% (p50 vs allow)\n", rep.DenyOverheadPct)
	if len(rep.Server) > 0 {
		fmt.Println("  server-side view (shilld_run_seconds delta from /metrics):")
		for _, c := range rep.Server {
			flag := ""
			if c.Disagree {
				flag = fmt.Sprintf("  DISAGREE >%g%%", loadgen.DisagreeBarPct)
			}
			fmt.Printf("  %-8s n=%-5d p50=%8.2fms (client %+.1f%%) p99=%8.2fms (client %+.1f%%)%s\n",
				c.Outcome, c.ServerCount, c.ServerP50Ms, c.DeltaP50Pct, c.ServerP99Ms, c.DeltaP99Pct, flag)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote %s\n", *jsonPath)
	}

	if *check && (rep.Bad() > 0 || rep.HTTPErrors > 0) {
		fmt.Fprintln(os.Stderr, "shill-load: -check failed: malformed responses or transport errors")
		return 1
	}
	return 0
}
