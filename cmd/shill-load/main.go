// Command shill-load is the closed-loop load generator for shilld: N
// concurrent clients drive a daemon with a mix of allowed, denied, and
// cancelled runs, verify every response's shape (denials must carry
// structured provenance; cancelled runs must report cancellation), and
// print throughput plus a latency histogram — the serving benchmark of
// this reproduction.
//
// Usage:
//
//	shill-load -url http://127.0.0.1:8377 [-c 16] [-n 256 | -duration 30s]
//	           [-mix 60/30/10] [-tenants 4] [-json REPORT.json] [-check]
//
// -mix is allow/deny/cancel percentages. -check exits 1 if any response
// had the wrong shape (a denied run without provenance, a cancel that
// did not cancel) or any transport error occurred — the smoke-test
// mode CI uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/server/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "http://127.0.0.1:8377", "shilld base URL")
	clients := flag.Int("c", 16, "concurrent closed-loop clients")
	requests := flag.Int("n", 256, "total requests (0: run for -duration)")
	duration := flag.Duration("duration", 0, "run for this long instead of -n requests")
	mixFlag := flag.String("mix", "60/30/10", "allow/deny/cancel percentages")
	tenants := flag.Int("tenants", 4, "tenants to spread requests over")
	deadlineMs := flag.Int("deadline-ms", 10_000, "allow/deny request deadline")
	cancelMs := flag.Int("cancel-ms", 80, "cancel-kind request deadline")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	check := flag.Bool("check", false, "exit 1 on any malformed response or transport error")
	flag.Parse()

	var mix loadgen.Mix
	if _, err := fmt.Sscanf(*mixFlag, "%d/%d/%d", &mix.AllowPct, &mix.DenyPct, &mix.CancelPct); err != nil {
		fmt.Fprintf(os.Stderr, "shill-load: bad -mix %q: %v\n", *mixFlag, err)
		return 2
	}
	cfg := loadgen.Config{
		URL:              *url,
		Clients:          *clients,
		Requests:         *requests,
		Duration:         *duration,
		Mix:              mix,
		Tenants:          *tenants,
		DeadlineMs:       *deadlineMs,
		CancelDeadlineMs: *cancelMs,
	}
	if *duration > 0 {
		cfg.Requests = 0
	}

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
		return 1
	}

	fmt.Printf("shill-load: %d clients, %d requests in %.2fs = %.1f req/s\n",
		rep.Clients, rep.Requests, rep.ElapsedSec, rep.ReqPerSec)
	fmt.Printf("  outcomes: %d allowed, %d denied, %d canceled, %d rejected (429), %d http errors\n",
		rep.Allowed, rep.Denied, rep.Canceled, rep.Rejected, rep.HTTPErrors)
	fmt.Printf("  malformed: %d (allow %d, deny %d, cancel %d)\n",
		rep.Bad(), rep.BadAllow, rep.BadDeny, rep.BadCancel)
	row := func(name string, l loadgen.LatencySummary) {
		fmt.Printf("  %-8s n=%-5d p50=%8.2fms p90=%8.2fms p99=%8.2fms max=%8.2fms\n",
			name, l.Count, l.P50Ms, l.P90Ms, l.P99Ms, l.MaxMs)
	}
	row("overall", rep.Latency)
	row("allow", rep.AllowLatency)
	row("deny", rep.DenyLatency)
	row("cancel", rep.CancelLatency)
	fmt.Printf("  deny-path overhead: %+.1f%% (p50 vs allow)\n", rep.DenyOverheadPct)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "shill-load: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote %s\n", *jsonPath)
	}

	if *check && (rep.Bad() > 0 || rep.HTTPErrors > 0) {
		fmt.Fprintln(os.Stderr, "shill-load: -check failed: malformed responses or transport errors")
		return 1
	}
	return 0
}
