// Command shilld is the SHILL script-execution daemon: a multi-tenant
// HTTP/JSON service over the repro/shill embedding API. Clients POST
// scripts (inline source, a built-in script name, or a native argv)
// with a tenant name and a deadline, and receive the exit status, the
// console output, and the structured provenance of every denial — a
// rejected request is explainable over the wire the same way
// `shill-audit why-denied` explains it locally.
//
// Usage:
//
//	shilld [-addr :8377] [-workload demo] [-max-machines 8]
//	       [-max-concurrent 16] [-tenant-concurrent 4] [-max-queue 64]
//	       [-default-deadline 10s] [-max-deadline 60s]
//	       [-drain-timeout 30s] [-handoff-grace 0] [-debug-addr :6060]
//	       [-trace-disable] [-golden image.shillimg]
//
// Endpoints:
//
//	POST /v1/run              {tenant, script|scriptName|argv, args, deadlineMs, stream}
//	GET  /v1/audit/why-denied ?tenant=NAME&since=SEQ
//	GET  /v1/trace            ?tenant=NAME&since=SEQ — span stream + slowest traces
//	GET  /healthz             200 ok | 503 draining
//	GET  /metrics             Prometheus text format (incl. latency histograms)
//	GET  /v1/admin/snapshot   ?tenant=NAME[&evict=1] — export machine image
//	POST /v1/admin/restore    ?tenant=NAME — seed a tenant from an image
//	POST /v1/admin/denials    ?tenant=NAME — import migrated denial history
//	GET  /v1/admin/tenants    list live tenants and retained images
//
// The admin endpoints are the migration surface cmd/shill-router uses
// to move tenants between replicas during a rolling restart;
// -handoff-grace keeps a draining replica's listener serving snapshot
// exports until the router has pulled every tenant's state (or the
// grace expires).
//
// -debug-addr starts a second listener exposing net/http/pprof
// (/debug/pprof/) so a live daemon can be profiled without wiring pprof
// into the public surface. -trace-disable turns request tracing off on
// every tenant machine (the escape hatch; tracing is on by default).
//
// Each tenant runs on its own simulated machine (own kernel, image,
// network stack, audit log), pooled with LRU eviction. Admission is a
// bounded queue with per-tenant quotas; overload answers 429 +
// Retry-After. SIGTERM drains gracefully: in-flight runs finish, new
// runs are refused, every machine is closed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/shill"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8377", "listen address")
	workload := flag.String("workload", "demo", "workload staged on each tenant machine: demo, grading, apache, find, none")
	maxMachines := flag.Int("max-machines", 8, "max tenant machines (LRU-evicted when idle)")
	maxConcurrent := flag.Int("max-concurrent", 16, "max globally concurrent runs")
	tenantConcurrent := flag.Int("tenant-concurrent", 4, "max concurrent runs per tenant")
	maxQueue := flag.Int("max-queue", 64, "max runs queued for a slot before 429")
	defaultDeadline := flag.Duration("default-deadline", 10*time.Second, "deadline for runs that specify none")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second, "clamp for client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight runs")
	handoffGrace := flag.Duration("handoff-grace", 0, "how long a drain keeps serving admin snapshot exports so a router can pull tenant state off this replica (0 disables)")
	engineName := flag.String("engine", "tree-walk", "execution engine for every tenant machine: tree-walk or compiled")
	debugAddr := flag.String("debug-addr", "", "optional debug listener exposing net/http/pprof (e.g. localhost:6060)")
	traceDisable := flag.Bool("trace-disable", false, "disable request tracing on every tenant machine")
	golden := flag.String("golden", "", "path to a golden machine image; built from the configured workload and written there on first start if absent, then every new tenant boots from it")
	flag.Parse()

	engine, err := shill.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shilld: %v\n", err)
		return 2
	}

	machineOptions := func(string) []shill.Option {
		opts := []shill.Option{
			shill.WithWorkload(shill.Workload(*workload)),
			shill.WithEngine(engine),
		}
		if *traceDisable {
			opts = append(opts, shill.WithTraceDisabled())
		}
		return opts
	}

	var goldenImg *shill.Image
	if *golden != "" {
		goldenImg, err = loadOrBuildGolden(*golden, machineOptions(""))
		if err != nil {
			fmt.Fprintf(os.Stderr, "shilld: golden image: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "shilld: golden image %s (%s)\n", shortID(goldenImg.ID()), *golden)
	}

	srv := server.New(server.Config{
		MaxMachines:      *maxMachines,
		MaxConcurrent:    *maxConcurrent,
		TenantConcurrent: *tenantConcurrent,
		MaxQueue:         *maxQueue,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		MachineOptions:   machineOptions,
		GoldenImage:      goldenImg,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *debugAddr != "" {
		// The pprof mux is the http.DefaultServeMux net/http/pprof
		// registers against; it gets its own listener so profiling
		// endpoints are never reachable through the public address.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "shilld: debug listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "shilld: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}
	fmt.Fprintf(os.Stderr, "shilld: listening on %s (workload=%s engine=%s machines<=%d concurrent<=%d)\n",
		*addr, *workload, engine, *maxMachines, *maxConcurrent)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "shilld: %v\n", err)
		srv.Close()
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "shilld: %v: draining (timeout %v)\n", s, *drainTimeout)
	}

	// Graceful drain: flip health to 503 and refuse new runs first, then
	// stop accepting connections once in-flight handlers return, then
	// close every tenant machine. With -handoff-grace, the listener stays
	// up between those steps so a router that saw the 503 can pull every
	// tenant's state through /v1/admin/snapshot before it disappears —
	// that window is what makes a rolling restart lose no tenant files.
	srv.StartDrain()
	if *handoffGrace > 0 {
		hctx, hcancel := context.WithTimeout(context.Background(), *handoffGrace)
		left := srv.AwaitHandoff(hctx)
		hcancel()
		if left > 0 {
			fmt.Fprintf(os.Stderr, "shilld: handoff grace expired with %d tenant(s) unexported\n", left)
		} else {
			fmt.Fprintln(os.Stderr, "shilld: tenant state handed off")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	drainErr := srv.Drain(ctx)
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shilld: shutdown: %v\n", shutdownErr)
		return 1
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "shilld: drain: %v\n", drainErr)
		return 1
	}
	if !srv.MachinesClosed() {
		fmt.Fprintln(os.Stderr, "shilld: drain left machines open")
		return 1
	}
	fmt.Fprintln(os.Stderr, "shilld: drained cleanly")
	return 0
}

// loadOrBuildGolden returns the golden image stored at path, building
// one from the configured machine options and persisting it there when
// the file does not exist yet.
func loadOrBuildGolden(path string, opts []shill.Option) (*shill.Image, error) {
	if data, err := os.ReadFile(path); err == nil {
		return shill.DeserializeImage(data)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	m, err := shill.NewMachine(opts...)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	img, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, img.Serialize(), 0o644); err != nil {
		return nil, err
	}
	return img, nil
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
