// Command shill-router serves one logical shilld out of N replica
// processes. Tenants are placed on replicas by a consistent-hash ring
// (virtual nodes, so membership changes move only the tenants whose
// replica actually left), every tenant-scoped request is forwarded to
// the tenant's owner, and replica answers — backpressure 429s with
// Retry-After, 413 body limits — pass through unmodified.
//
// Usage:
//
//	shill-router -replicas http://h1:8377,http://h2:8377[,...]
//	             [-addr :8378] [-health-interval 250ms]
//	             [-retry-budget 15s]
//
// Endpoints:
//
//	POST /v1/run              forwarded to the tenant's owner (retried
//	                          across a migration; replica answers pass
//	                          through unmodified)
//	GET  /v1/audit/why-denied forwarded to the tenant's owner
//	GET  /v1/trace            forwarded to the tenant's owner
//	GET  /healthz             200 while >=1 replica is up
//	GET  /metrics             router series + all replicas' metrics
//	                          (replica="host:port" labels, replica="all"
//	                          sums)
//	GET  /v1/router/state     ring membership, replica health, placement
//
// The router health-checks each replica's /healthz. When a replica
// drains (SIGTERM'd shilld answering 503), the router migrates each of
// its tenants: requests gate briefly, the tenant's machine image is
// pulled off the draining replica (GET /v1/admin/snapshot?evict=1)
// together with its denial history, both are seeded onto the new owner
// (POST /v1/admin/restore, /v1/admin/denials), and the gate reopens.
// Run the replicas with -handoff-grace so a drain waits for the pull;
// a rolling restart under load then loses zero requests and zero
// tenant state.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8378", "listen address")
	replicas := flag.String("replicas", "", "comma-separated shilld base URLs (required)")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "replica /healthz poll period")
	retryBudget := flag.Duration("retry-budget", 15*time.Second, "how long one run request retries across replica failures before 502")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := router.New(router.Config{
		Replicas:       urls,
		HealthInterval: *healthInterval,
		RetryBudget:    *retryBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shill-router: %v\n", err)
		return 2
	}
	rt.Start()
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "shill-router: listening on %s over %d replicas\n", *addr, len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "shill-router: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "shill-router: %v: shutting down\n", s)
	}
	httpSrv.Close()
	return 0
}
