package cap

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
)

func netWorld(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New()
	t.Cleanup(k.Shutdown)
	return k, k.NewProc(0, 0)
}

func TestSocketCapabilityEcho(t *testing.T) {
	_, p := netWorld(t)
	full := NewSocketFactory(p, netstack.DomainIP, priv.GrantOf(priv.AllSock))

	l, err := full.SocketListen("5100")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() {
		conn, err := l.SocketAccept()
		if err != nil {
			done <- "accept: " + err.Error()
			return
		}
		msg, _ := conn.SocketRecv()
		conn.SocketSend(append([]byte("re:"), msg...))
		conn.SocketClose()
		done <- ""
	}()
	c, err := full.SocketConnect("5100")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SocketSend([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := c.SocketRecv()
	if err != nil || string(reply) != "re:ping" {
		t.Fatalf("reply = %q, %v", reply, err)
	}
	if msg := <-done; msg != "" {
		t.Fatal(msg)
	}
	c.SocketClose()
	l.SocketClose()
}

func TestSocketCapabilityPrivileges(t *testing.T) {
	_, p := netWorld(t)
	full := NewSocketFactory(p, netstack.DomainIP, priv.GrantOf(priv.AllSock))
	l, err := full.SocketListen("5200")
	if err != nil {
		t.Fatal(err)
	}
	defer l.SocketClose()
	go func() {
		for {
			conn, err := l.SocketAccept()
			if err != nil {
				return
			}
			conn.SocketClose()
		}
	}()

	// connect-only factory cannot listen.
	connectOnly := NewSocketFactory(p, netstack.DomainIP,
		priv.NewGrant(priv.RSockCreate, priv.RSockConnect, priv.RSockSend, priv.RSockRecv))
	if _, err := connectOnly.SocketListen("5300"); err == nil {
		t.Fatal("connect-only factory listened")
	}
	conn, err := connectOnly.SocketConnect("5200")
	if err != nil {
		t.Fatal(err)
	}
	// The connection inherits the factory grant: accept is missing.
	if _, err := conn.SocketAccept(); err == nil {
		t.Fatal("plain connection accepted")
	}
	conn.SocketClose()

	// A factory without create cannot do anything.
	noCreate := NewSocketFactory(p, netstack.DomainIP, priv.NewGrant(priv.RSockConnect))
	var np *NoPrivilegeError
	if _, err := noCreate.SocketConnect("5200"); !errors.As(err, &np) {
		t.Fatalf("create-less connect = %v", err)
	}
}

func TestSocketOpsRejectWrongKinds(t *testing.T) {
	k, p := netWorld(t)
	if _, err := k.FS.WriteFile("/f", nil, 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	file := NewFile(p, k.FS.MustResolve("/f"), priv.FullGrant())
	if _, err := file.SocketConnect("80"); err == nil {
		t.Fatal("file capability connected")
	}
	if err := file.SocketSend(nil); err == nil {
		t.Fatal("file capability sent")
	}
	if _, err := file.SocketRecv(); err == nil {
		t.Fatal("file capability received")
	}
	// Restrict applies to factories too: attenuating away connect.
	full := NewSocketFactory(p, netstack.DomainIP, priv.GrantOf(priv.AllSock))
	weak := full.Restrict(priv.NewGrant(priv.RSockCreate), "contract")
	if _, err := weak.SocketConnect("80"); err == nil {
		t.Fatal("restricted factory connected")
	}
}
