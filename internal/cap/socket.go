package cap

import (
	"repro/internal/errno"
	"repro/internal/netstack"
	"repro/internal/priv"
)

// Socket capabilities are the extension the paper sketches in §3.1.1:
// "In our prototype implementation, SHILL scripts cannot create or
// manipulate sockets directly (which can be addressed by adding built-in
// functions for socket operations to the language)." Here the built-ins
// exist (the shill/sockets standard-library module), and every operation
// is gated by the socket privileges of the factory capability the socket
// was derived from — the same seven privileges the sandbox MAC policy
// checks.

// sockCap returns a socket capability derived from parent (a factory or
// a listening socket), recording the lineage link.
func sockCap(parent *Capability, op string, so *netstack.Socket) *Capability {
	out := &Capability{
		id: nextCapID(), kind: KindSocket, grant: parent.grant,
		proc: parent.proc, sockDomain: parent.sockDomain, sockObj: so,
		lastPath: "socket(" + parent.sockDomain.String() + ")",
	}
	parent.emitDerive(out, op, out.lastPath, rightsOf(out.grant), "")
	return out
}

// Socket returns the underlying socket of a socket capability.
func (c *Capability) Socket() *netstack.Socket { return c.sockObj }

// SocketConnect derives a connected socket capability from a socket
// factory (requires +sock-create and +sock-connect).
func (c *Capability) SocketConnect(addr string) (*Capability, error) {
	if c.kind != KindSocketFactory {
		return nil, errno.EINVAL
	}
	if err := c.require("sock-connect", priv.NewSet(priv.RSockCreate, priv.RSockConnect)); err != nil {
		return nil, err
	}
	st := c.proc.Kernel().Net
	so := st.NewSocket(c.sockDomain)
	if err := st.Connect(so, addr); err != nil {
		// Close the failed socket so it leaves the stack's live-socket
		// registry: a connect-retry loop would otherwise pin one dead
		// socket per attempt until stack shutdown.
		st.Close(so)
		return nil, err
	}
	return sockCap(c, "sock-connect", so), nil
}

// SocketListen derives a listening socket capability from a socket
// factory (requires +sock-create, +sock-bind, and +sock-listen).
func (c *Capability) SocketListen(addr string) (*Capability, error) {
	if c.kind != KindSocketFactory {
		return nil, errno.EINVAL
	}
	if err := c.require("sock-listen", priv.NewSet(priv.RSockCreate, priv.RSockBind, priv.RSockListen)); err != nil {
		return nil, err
	}
	st := c.proc.Kernel().Net
	so := st.NewSocket(c.sockDomain)
	if err := st.Bind(so, addr); err != nil {
		st.Close(so)
		return nil, err
	}
	if err := st.Listen(so); err != nil {
		st.Close(so)
		return nil, err
	}
	return sockCap(c, "sock-listen", so), nil
}

// SocketAccept accepts a connection on a listening socket capability
// (requires +sock-accept); the new connection inherits the listener's
// grant, as the sandbox's post-accept hook arranges.
func (c *Capability) SocketAccept() (*Capability, error) {
	if c.kind != KindSocket || c.sockObj == nil {
		return nil, errno.EINVAL
	}
	if err := c.require("sock-accept", priv.NewSet(priv.RSockAccept)); err != nil {
		return nil, err
	}
	conn, err := c.proc.Kernel().Net.AcceptIntr(c.sockObj, c.proc.IntrChan())
	if err != nil {
		return nil, err
	}
	return sockCap(c, "sock-accept", conn), nil
}

// SocketSend writes to a connected socket capability (+sock-send).
func (c *Capability) SocketSend(data []byte) error {
	if c.kind != KindSocket || c.sockObj == nil {
		return errno.EINVAL
	}
	if err := c.require("sock-send", priv.NewSet(priv.RSockSend)); err != nil {
		return err
	}
	_, err := c.proc.Kernel().Net.SendIntr(c.sockObj, data, c.proc.IntrChan())
	return err
}

// SocketRecv reads from a connected socket capability (+sock-recv); an
// empty result means the peer closed.
func (c *Capability) SocketRecv() ([]byte, error) {
	if c.kind != KindSocket || c.sockObj == nil {
		return nil, errno.EINVAL
	}
	if err := c.require("sock-recv", priv.NewSet(priv.RSockRecv)); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := c.proc.Kernel().Net.RecvIntr(c.sockObj, buf, c.proc.IntrChan())
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// SocketClose shuts the socket down (no privilege needed: dropping
// authority is always allowed).
func (c *Capability) SocketClose() {
	if c.kind == KindSocket && c.sockObj != nil && !c.closed {
		c.closed = true
		c.proc.Kernel().Net.Close(c.sockObj)
	}
}

// SocketOpen reports whether the capability still holds a live socket —
// the run-end leftover sweep uses it to count what a script left bound.
func (c *Capability) SocketOpen() bool {
	return c.kind == KindSocket && c.sockObj != nil && !c.closed
}
