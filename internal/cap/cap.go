// Package cap implements SHILL's language-level capabilities (§3.1.1):
// object-like values that encapsulate low-level capabilities (file
// descriptors, sockets, pipe ends) plus the two factory capabilities
// (pipe factory, socket factory) that encapsulate the right to create
// new pipes or sockets.
//
// Every operation checks the capability's grant before calling the
// corresponding system call, so a capability that has passed through a
// contract behaves exactly as the contract's privilege set promises.
// Attenuation (Restrict) never adds rights; the blame chain records
// which contract imposed each restriction so a violation can "indicate
// which part of the script failed to meet its obligations" (§2.2).
package cap

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/vfs"
)

// Kind distinguishes capability flavours.
type Kind int

// Capability kinds. Following Unix convention, file capabilities cover
// files, pipes, and devices (§2.2); Dir capabilities are separate
// because they support a different operation set.
const (
	KindFile Kind = iota
	KindDir
	KindPipeEnd
	KindSocket
	KindPipeFactory
	KindSocketFactory
)

func (k Kind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindPipeEnd:
		return "pipe"
	case KindSocket:
		return "socket"
	case KindPipeFactory:
		return "pipe-factory"
	case KindSocketFactory:
		return "socket-factory"
	}
	return "unknown"
}

// NoPrivilegeError reports an operation attempted without the required
// privilege. Blame carries the contract chain that attenuated the
// capability, innermost last.
type NoPrivilegeError struct {
	Op      string
	Missing priv.Set
	Blame   []string
}

func (e *NoPrivilegeError) Error() string {
	msg := fmt.Sprintf("capability: operation %q requires privileges %v", e.Op, e.Missing)
	if len(e.Blame) > 0 {
		msg += " (restricted by: " + strings.Join(e.Blame, " <- ") + ")"
	}
	return msg
}

// Unwrap lets errors.Is treat privilege failures as EACCES.
func (e *NoPrivilegeError) Unwrap() error { return errno.EACCES }

// capIDs mints the process-wide capability identities the audit
// subsystem's lineage records refer to. Every constructed or derived
// capability gets a fresh id, so provenance chains never alias.
var capIDs atomic.Uint64

func nextCapID() uint64 { return capIDs.Add(1) }

// Capability is a SHILL capability value. The zero value is invalid;
// construct capabilities with the New* functions or derive them through
// operations.
type Capability struct {
	id    uint64 // audit-lineage identity
	kind  Kind
	grant *priv.Grant
	blame []string

	proc *kernel.Proc // the runtime process whose syscalls implement operations

	vn         *vfs.Vnode // file, dir, device
	pipeObj    *vfs.Pipe  // pipe ends
	pipeRead   bool
	closed     bool
	sockDomain SocketFactoryDomain // socket factories and sockets
	sockObj    *netstack.Socket    // sockets (the shill/sockets extension)

	// lastPath is the last path the capability was known to be
	// accessible at; the path operation falls back to it.
	lastPath string
}

// NewFile wraps a vnode as a file capability with the given grant.
func NewFile(proc *kernel.Proc, vn *vfs.Vnode, g *priv.Grant) *Capability {
	path, _ := proc.Kernel().FS.PathOf(vn)
	return &Capability{id: nextCapID(), kind: KindFile, grant: g, proc: proc, vn: vn, lastPath: path}
}

// NewDir wraps a directory vnode as a directory capability.
func NewDir(proc *kernel.Proc, vn *vfs.Vnode, g *priv.Grant) *Capability {
	path, _ := proc.Kernel().FS.PathOf(vn)
	return &Capability{id: nextCapID(), kind: KindDir, grant: g, proc: proc, vn: vn, lastPath: path}
}

// NewForVnode wraps a vnode with the kind matching its type.
func NewForVnode(proc *kernel.Proc, vn *vfs.Vnode, g *priv.Grant) *Capability {
	if vn.IsDir() {
		return NewDir(proc, vn, g)
	}
	return NewFile(proc, vn, g)
}

// ID returns the capability's audit-lineage identity.
func (c *Capability) ID() uint64 { return c.id }

// auditLog returns the owning kernel's audit log.
func (c *Capability) auditLog() *audit.Log { return c.proc.Kernel().Audit() }

// emitDerive records a lineage link: this capability produced child via
// the named operation.
func (c *Capability) emitDerive(child *Capability, op, object string, rights priv.Set, detail string) {
	c.auditLog().Emit(c.proc.AuditShard(), audit.Event{
		Kind: audit.KindCapDerive, Op: op, Object: object,
		CapID: child.id, Parent: c.id, Rights: rights, Detail: detail,
	})
}

// Announce records the forge that minted this capability (open_dir,
// populate_native_wallet, a policy file, …) as the root of its lineage.
func (c *Capability) Announce(origin string) *Capability {
	c.auditLog().Emit(c.proc.AuditShard(), audit.Event{
		Kind: audit.KindCapNew, Op: "mint", Object: c.lastPath,
		CapID: c.id, Rights: rightsOf(c.grant), Detail: origin,
	})
	return c
}

func rightsOf(g *priv.Grant) priv.Set {
	if g == nil {
		return 0
	}
	return g.Rights
}

// Kind returns the capability's kind.
func (c *Capability) Kind() Kind { return c.kind }

// Grant returns the capability's current privilege grant.
func (c *Capability) Grant() *priv.Grant { return c.grant }

// Vnode returns the wrapped vnode, or nil for non-filesystem
// capabilities.
func (c *Capability) Vnode() *vfs.Vnode { return c.vn }

// Proc returns the runtime process the capability operates through.
func (c *Capability) Proc() *kernel.Proc { return c.proc }

// BlameChain returns the contract names that attenuated this capability.
func (c *Capability) BlameChain() []string { return append([]string(nil), c.blame...) }

// IsFile reports whether the capability is a file-like capability
// (file, pipe end, or device — the Unix convention of §2.2).
func (c *Capability) IsFile() bool {
	return c.kind == KindFile || c.kind == KindPipeEnd
}

// IsDir reports whether the capability is a directory capability.
func (c *Capability) IsDir() bool { return c.kind == KindDir }

// String renders the capability for diagnostics.
func (c *Capability) String() string {
	name := c.lastPath
	if name == "" {
		name = "<anon>"
	}
	return fmt.Sprintf("%s(%s)%v", c.kind, name, c.grant.Rights)
}

// Restrict returns a copy of the capability attenuated to at most g,
// recording blame for the restricting contract. This is the proxy
// mechanism contracts use (§2.2): the body of a function never receives
// the raw capability, only the wrapped one.
func (c *Capability) Restrict(g *priv.Grant, blame string) *Capability {
	out := *c
	out.id = nextCapID()
	out.grant = c.grant.Intersect(g)
	out.blame = append(append([]string(nil), c.blame...), blame)
	c.emitDerive(&out, "restrict", c.lastPath, rightsOf(out.grant), blame)
	return &out
}

// WithGrant returns a copy with exactly the given grant (ambient-script
// minting only; not reachable from capability-safe code).
func (c *Capability) WithGrant(g *priv.Grant) *Capability {
	out := *c
	out.id = nextCapID()
	out.grant = g
	c.emitDerive(&out, "with-grant", c.lastPath, rightsOf(g), "")
	return &out
}

// Demand verifies the capability holds every right in need, recording a
// cap-deny audit event on failure exactly like the capability's own
// operations do. External consumers (the sandbox's exec gate) use it so
// their privilege refusals carry the same audited provenance — a denial
// that skips the log would break the conformance oracle's
// deny-provenance property.
func (c *Capability) Demand(op string, need priv.Set) error {
	return c.require(op, need)
}

// require verifies the capability holds every right in need. A failure
// is both recorded in the audit log (kind cap-deny, naming the contract
// chain that attenuated the capability) and returned as a
// NoPrivilegeError carrying the same provenance.
func (c *Capability) require(op string, need priv.Set) error {
	if c.grant.HasAll(need) {
		return nil
	}
	missing := need.Minus(rightsOf(c.grant))
	blame := c.blame
	c.auditLog().Emit(c.proc.AuditShard(), audit.Event{
		Kind: audit.KindCapDeny, Verdict: audit.Deny, Layer: audit.LayerCapability,
		Op: op, Object: c.lastPath, CapID: c.id, Rights: missing,
		Trace: c.proc.TraceID(),
		// The blame-chain join allocates; defer it until a query or a
		// formatted reason actually reads the detail.
		DetailFn: audit.DeferObject(func() string { return strings.Join(blame, " <- ") }),
	})
	return &NoPrivilegeError{Op: op, Missing: missing, Blame: c.blame}
}

// --- file operations ---

// Read returns the full contents of a file capability.
func (c *Capability) Read() ([]byte, error) {
	if err := c.require("read", priv.NewSet(priv.RRead)); err != nil {
		return nil, err
	}
	switch c.kind {
	case KindFile:
		if c.vn.Type() == vfs.TypeCharDev {
			buf := make([]byte, 4096)
			n, err := c.vn.Device().DevRead(buf)
			return buf[:n], err
		}
		fd, err := c.proc.OpenVnode(c.vn, kernel.ORead)
		if err != nil {
			return nil, err
		}
		defer c.proc.Close(fd)
		return readAll(c.proc, fd)
	case KindPipeEnd:
		if !c.pipeRead {
			return nil, errno.EBADF
		}
		buf := make([]byte, 4096)
		n, err := c.pipeObj.Read(buf)
		return buf[:n], err
	}
	return nil, errno.EINVAL
}

func readAll(p *kernel.Proc, fd int) ([]byte, error) {
	var out []byte
	buf := make([]byte, 32*1024)
	for {
		n, err := p.Read(fd, buf)
		if n > 0 {
			out = append(out, buf[:n]...)
		}
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// Write replaces the contents of a file capability.
func (c *Capability) Write(data []byte) error {
	if err := c.require("write", priv.NewSet(priv.RWrite)); err != nil {
		return err
	}
	switch c.kind {
	case KindFile:
		if c.vn.Type() == vfs.TypeCharDev {
			_, err := c.vn.Device().DevWrite(data)
			return err
		}
		flags := kernel.OWrite
		if c.grant.Has(priv.RTruncate) {
			flags |= kernel.OTrunc
		}
		fd, err := c.proc.OpenVnode(c.vn, flags)
		if err != nil {
			return err
		}
		defer c.proc.Close(fd)
		_, err = c.proc.Write(fd, data)
		return err
	case KindPipeEnd:
		if c.pipeRead {
			return errno.EBADF
		}
		_, err := c.pipeObj.Write(data)
		return err
	}
	return errno.EINVAL
}

// Append appends data to a file capability (pipes simply write).
func (c *Capability) Append(data []byte) error {
	if err := c.require("append", priv.NewSet(priv.RAppend)); err != nil {
		return err
	}
	switch c.kind {
	case KindFile:
		if c.vn.Type() == vfs.TypeCharDev {
			_, err := c.vn.Device().DevWrite(data)
			return err
		}
		fd, err := c.proc.OpenVnode(c.vn, kernel.OWrite|kernel.OAppend)
		if err != nil {
			return err
		}
		defer c.proc.Close(fd)
		_, err = c.proc.Write(fd, data)
		return err
	case KindPipeEnd:
		if c.pipeRead {
			return errno.EBADF
		}
		_, err := c.pipeObj.Write(data)
		return err
	}
	return errno.EINVAL
}

// Stat returns metadata.
func (c *Capability) Stat() (vfs.Stat, error) {
	if err := c.require("stat", priv.NewSet(priv.RStat)); err != nil {
		return vfs.Stat{}, err
	}
	if c.vn == nil {
		return vfs.Stat{}, errno.EINVAL
	}
	return c.vn.Stat(), nil
}

// Path returns an accessible path for the capability via the path
// syscall, falling back to the last known path (§3.1.3).
func (c *Capability) Path() (string, error) {
	if err := c.require("path", priv.NewSet(priv.RPath)); err != nil {
		return "", err
	}
	if c.vn == nil {
		return "", errno.EINVAL
	}
	if path, ok := c.proc.Kernel().FS.PathOf(c.vn); ok {
		return path, nil
	}
	if c.lastPath != "" {
		return c.lastPath, nil
	}
	return "", errno.ENOENT
}

// Name returns the capability's base name (no privilege required; names
// are not ambient authority).
func (c *Capability) Name() string {
	path := c.lastPath
	if p, ok := c.proc.Kernel().FS.PathOf(c.vn); ok {
		path = p
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Truncate truncates the file to the given size.
func (c *Capability) Truncate(size int64) error {
	if err := c.require("truncate", priv.NewSet(priv.RTruncate)); err != nil {
		return err
	}
	if c.kind != KindFile || c.vn.Type() != vfs.TypeFile {
		return errno.EINVAL
	}
	return c.vn.Truncate(size)
}

// Chmod changes permission bits.
func (c *Capability) Chmod(mode uint16) error {
	if err := c.require("chmod", priv.NewSet(priv.RChmod)); err != nil {
		return err
	}
	if c.vn == nil {
		return errno.EINVAL
	}
	c.vn.Chmod(mode)
	return nil
}

// --- directory operations ---

// Contents lists the directory's entry names.
func (c *Capability) Contents() ([]string, error) {
	if err := c.require("contents", priv.NewSet(priv.RContents)); err != nil {
		return nil, err
	}
	if c.kind != KindDir {
		return nil, errno.ENOTDIR
	}
	return c.proc.Kernel().FS.ReadDir(c.vn)
}

// Lookup derives a capability for the named child. Single-component
// names only — "a script cannot use lookup(cur, \"..\") to obtain the
// parent directory" (§2.1) and the runtime "requires that arguments that
// specify sub-paths contain only a single component" (§3.1.3).
func (c *Capability) Lookup(name string) (*Capability, error) {
	if err := c.require("lookup", priv.NewSet(priv.RLookup)); err != nil {
		return nil, err
	}
	if c.kind != KindDir {
		return nil, errno.ENOTDIR
	}
	if !vfs.ValidName(name) || name == "." || name == ".." {
		return nil, errno.EINVAL
	}
	child, err := c.proc.Kernel().FS.Lookup(c.vn, name)
	if err != nil {
		return nil, err
	}
	derived := c.grant.DerivedGrant(priv.RLookup)
	out := NewForVnode(c.proc, child, derived)
	out.blame = c.blame
	c.emitDerive(out, "lookup", name, rightsOf(derived), "")
	return out, nil
}

// ReadSymlink derives a capability for a symlink's target, resolved
// relative to this directory (single component targets only; others
// yield EINVAL, keeping capability safety).
func (c *Capability) ReadSymlink(name string) (*Capability, error) {
	if err := c.require("read-symlink", priv.NewSet(priv.RReadSymlink)); err != nil {
		return nil, err
	}
	if c.kind != KindDir {
		return nil, errno.ENOTDIR
	}
	link, err := c.proc.Kernel().FS.Lookup(c.vn, name)
	if err != nil {
		return nil, err
	}
	target, err := link.Readlink()
	if err != nil {
		return nil, err
	}
	if !vfs.ValidName(target) || target == "." || target == ".." {
		return nil, errno.EINVAL
	}
	child, err := c.proc.Kernel().FS.Lookup(c.vn, target)
	if err != nil {
		return nil, err
	}
	derived := c.grant.DerivedGrant(priv.RReadSymlink)
	out := NewForVnode(c.proc, child, derived)
	out.blame = c.blame
	c.emitDerive(out, "read-symlink", name, rightsOf(derived), "")
	return out, nil
}

// CreateFile creates a file in the directory and derives a capability
// for it with the create-file modifier's privileges.
func (c *Capability) CreateFile(name string, mode uint16) (*Capability, error) {
	if err := c.require("create-file", priv.NewSet(priv.RCreateFile)); err != nil {
		return nil, err
	}
	if c.kind != KindDir {
		return nil, errno.ENOTDIR
	}
	if !vfs.ValidName(name) || name == "." || name == ".." {
		return nil, errno.EINVAL
	}
	cred := c.proc.Cred()
	vn, err := c.proc.Kernel().FS.Create(c.vn, name, mode, cred.UID, cred.GID)
	if err != nil {
		return nil, err
	}
	derived := c.grant.DerivedGrant(priv.RCreateFile)
	out := NewFile(c.proc, vn, derived)
	out.blame = c.blame
	c.emitDerive(out, "create-file", name, rightsOf(derived), "")
	return out, nil
}

// CreateDir creates a subdirectory and derives a capability for it.
func (c *Capability) CreateDir(name string, mode uint16) (*Capability, error) {
	if err := c.require("create-dir", priv.NewSet(priv.RCreateDir)); err != nil {
		return nil, err
	}
	if c.kind != KindDir {
		return nil, errno.ENOTDIR
	}
	if !vfs.ValidName(name) || name == "." || name == ".." {
		return nil, errno.EINVAL
	}
	cred := c.proc.Cred()
	vn, err := c.proc.Kernel().FS.Mkdir(c.vn, name, mode, cred.UID, cred.GID)
	if err != nil {
		return nil, err
	}
	derived := c.grant.DerivedGrant(priv.RCreateDir)
	out := NewDir(c.proc, vn, derived)
	out.blame = c.blame
	c.emitDerive(out, "create-dir", name, rightsOf(derived), "")
	return out, nil
}

// Unlink removes the named entry from the directory. The required
// privilege depends on the entry's type (+unlink-file or +unlink-dir).
func (c *Capability) Unlink(name string) error {
	if c.kind != KindDir {
		return errno.ENOTDIR
	}
	if !vfs.ValidName(name) || name == "." || name == ".." {
		return errno.EINVAL
	}
	child, err := c.proc.Kernel().FS.Lookup(c.vn, name)
	if err != nil {
		return err
	}
	if child.IsDir() {
		if err := c.require("unlink-dir", priv.NewSet(priv.RUnlinkDir)); err != nil {
			return err
		}
		return c.proc.Kernel().FS.Unlink(c.vn, name, true)
	}
	if err := c.require("unlink-file", priv.NewSet(priv.RUnlinkFile)); err != nil {
		return err
	}
	return c.proc.Kernel().FS.Unlink(c.vn, name, false)
}

// UnlinkCap removes the entry only if it still refers to the given file
// capability (funlinkat semantics), requiring +unlink on the file.
func (c *Capability) UnlinkCap(name string, file *Capability) error {
	if c.kind != KindDir {
		return errno.ENOTDIR
	}
	if err := file.require("unlink", priv.NewSet(priv.RUnlink)); err != nil {
		return err
	}
	if err := c.require("lookup", priv.NewSet(priv.RLookup)); err != nil {
		return err
	}
	return c.proc.Kernel().FS.UnlinkIfSame(c.vn, name, file.vn)
}

// Link installs a hard link to the file capability at dir/name
// (flinkat semantics: +link on the file, +add-link on the directory).
func (c *Capability) Link(name string, file *Capability) error {
	if c.kind != KindDir {
		return errno.ENOTDIR
	}
	if err := c.require("add-link", priv.NewSet(priv.RAddLink)); err != nil {
		return err
	}
	if err := file.require("link", priv.NewSet(priv.RLink)); err != nil {
		return err
	}
	return c.proc.Kernel().FS.Link(c.vn, name, file.vn)
}

// Rename moves srcName from this directory to dstDir/dstName
// (frenameat-style, both ends named by capabilities).
func (c *Capability) Rename(srcName string, dstDir *Capability, dstName string) error {
	if c.kind != KindDir || dstDir.kind != KindDir {
		return errno.ENOTDIR
	}
	if err := c.require("unlink-file", priv.NewSet(priv.RUnlinkFile)); err != nil {
		return err
	}
	if err := dstDir.require("add-link", priv.NewSet(priv.RAddLink)); err != nil {
		return err
	}
	return c.proc.Kernel().FS.Rename(c.vn, srcName, dstDir.vn, dstName)
}

// CreateSymlink creates a symlink in the directory.
func (c *Capability) CreateSymlink(name, target string) error {
	if err := c.require("create-symlink", priv.NewSet(priv.RCreateSymlink)); err != nil {
		return err
	}
	if c.kind != KindDir {
		return errno.ENOTDIR
	}
	cred := c.proc.Cred()
	_, err := c.proc.Kernel().FS.Symlink(c.vn, name, target, cred.UID, cred.GID)
	return err
}
