package cap

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/priv"
)

func world(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New()
	t.Cleanup(k.Shutdown)
	files := map[string]string{
		"/tree/a.txt":       "alpha",
		"/tree/sub/b.jpg":   "JFIFb",
		"/tree/sub/c.txt":   "gamma",
		"/other/secret.txt": "hidden",
	}
	for path, data := range files {
		if _, err := k.FS.WriteFile(path, []byte(data), 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return k, k.NewProc(0, 0)
}

func fullDir(t *testing.T, k *kernel.Kernel, p *kernel.Proc, path string) *Capability {
	t.Helper()
	return NewDir(p, k.FS.MustResolve(path), priv.FullGrant())
}

func TestReadWriteAppend(t *testing.T) {
	k, p := world(t)
	f := NewFile(p, k.FS.MustResolve("/tree/a.txt"), priv.FullGrant())
	data, err := f.Read()
	if err != nil || string(data) != "alpha" {
		t.Fatalf("Read = %q, %v", data, err)
	}
	if err := f.Write([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	data, _ = f.Read()
	if string(data) != "beta!" {
		t.Fatalf("after write+append: %q", data)
	}
}

func TestPrivilegeChecksPerOperation(t *testing.T) {
	k, p := world(t)
	vn := k.FS.MustResolve("/tree/a.txt")
	cases := []struct {
		name string
		g    *priv.Grant
		op   func(c *Capability) error
	}{
		{"read", priv.NewGrant(priv.RWrite), func(c *Capability) error { _, err := c.Read(); return err }},
		{"write", priv.NewGrant(priv.RRead), func(c *Capability) error { return c.Write(nil) }},
		{"append", priv.NewGrant(priv.RWrite), func(c *Capability) error { return c.Append(nil) }},
		{"stat", priv.NewGrant(priv.RRead), func(c *Capability) error { _, err := c.Stat(); return err }},
		{"path", priv.NewGrant(priv.RRead), func(c *Capability) error { _, err := c.Path(); return err }},
		{"truncate", priv.NewGrant(priv.RWrite), func(c *Capability) error { return c.Truncate(0) }},
		{"chmod", priv.NewGrant(priv.RWrite), func(c *Capability) error { return c.Chmod(0o600) }},
	}
	for _, cse := range cases {
		c := NewFile(p, vn, cse.g)
		err := cse.op(c)
		var np *NoPrivilegeError
		if !errors.As(err, &np) {
			t.Errorf("%s without privilege: %v", cse.name, err)
			continue
		}
		if !errors.Is(err, errno.EACCES) {
			t.Errorf("%s error does not unwrap to EACCES", cse.name)
		}
	}
}

func TestLookupDerivesWithModifier(t *testing.T) {
	k, p := world(t)
	g := priv.NewGrant(priv.RLookup, priv.RContents).
		WithDerived(priv.RLookup, priv.NewGrant(priv.RRead, priv.RPath, priv.RLookup, priv.RContents))
	dir := NewDir(p, k.FS.MustResolve("/tree"), g)
	child, err := dir.Lookup("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.Read(); err != nil {
		t.Fatalf("derived read: %v", err)
	}
	if _, err := child.Stat(); err == nil {
		t.Fatal("derived capability has +stat it should not")
	}
	// Without a modifier, derivation inherits the parent grant.
	dir2 := fullDir(t, k, p, "/tree")
	c2, _ := dir2.Lookup("a.txt")
	if !c2.Grant().Rights.Has(priv.RWrite) {
		t.Fatal("inherit derivation lost rights")
	}
}

func TestLookupRejectsTraversal(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree/sub")
	for _, name := range []string{"..", ".", "a/b", ""} {
		if _, err := dir.Lookup(name); err == nil {
			t.Errorf("Lookup(%q) succeeded; capability safety broken", name)
		}
	}
}

func TestContentsAndHasName(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree")
	names, err := dir.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.txt" || names[1] != "sub" {
		t.Fatalf("Contents = %v", names)
	}
}

func TestCreateFileGrantsModifier(t *testing.T) {
	k, p := world(t)
	g := priv.NewGrant(priv.RCreateFile).
		WithDerived(priv.RCreateFile, priv.NewGrant(priv.RAppend, priv.RStat))
	dir := NewDir(p, k.FS.MustResolve("/tree"), g)
	f, err := dir.CreateFile("new.log", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("entry")); err != nil {
		t.Fatalf("append on created file: %v", err)
	}
	if _, err := f.Read(); err == nil {
		t.Fatal("created file readable beyond its modifier")
	}
}

func TestCreateDirUnlinkRename(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree")
	sub, err := dir.CreateDir("work", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.CreateFile("x", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unlink("x"); err != nil {
		t.Fatal(err)
	}
	if err := dir.Rename("work", dir, "done"); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Lookup("done"); err != nil {
		t.Fatal("renamed dir missing")
	}
	if err := dir.Unlink("done"); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkNeedsTypeSpecificPrivilege(t *testing.T) {
	k, p := world(t)
	// unlink-file alone cannot remove a directory.
	g := priv.NewGrant(priv.RLookup, priv.RUnlinkFile)
	dir := NewDir(p, k.FS.MustResolve("/tree"), g)
	if err := dir.Unlink("sub"); err == nil {
		t.Fatal("removed a directory with only +unlink-file")
	}
	if err := dir.Unlink("a.txt"); err != nil {
		t.Fatalf("unlink file: %v", err)
	}
}

func TestUnlinkCapChecksIdentity(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree")
	f, _ := dir.Lookup("a.txt")
	other, _ := fullDir(t, k, p, "/tree/sub").Lookup("c.txt")
	if err := dir.UnlinkCap("a.txt", other); err == nil {
		t.Fatal("unlink_cap removed a different file")
	}
	if err := dir.UnlinkCap("a.txt", f); err != nil {
		t.Fatalf("unlink_cap: %v", err)
	}
}

func TestRestrictMonotoneAndBlame(t *testing.T) {
	k, p := world(t)
	f := NewFile(p, k.FS.MustResolve("/tree/a.txt"), priv.FullGrant())
	r1 := f.Restrict(priv.NewGrant(priv.RRead, priv.RStat), "outer")
	r2 := r1.Restrict(priv.NewGrant(priv.RRead, priv.RWrite), "inner")
	// Intersection: only +read survives; +write cannot come back.
	if r2.Grant().Rights.Has(priv.RWrite) || r2.Grant().Rights.Has(priv.RStat) {
		t.Fatalf("restrict amplified: %v", r2.Grant())
	}
	err := r2.Write(nil)
	var np *NoPrivilegeError
	if !errors.As(err, &np) {
		t.Fatal(err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "outer") || !strings.Contains(msg, "inner") {
		t.Fatalf("blame chain missing from error: %s", msg)
	}
}

// Property: restriction never adds rights, regardless of order.
func TestRestrictNeverAmplifiesQuick(t *testing.T) {
	k, p := world(t)
	vn := k.FS.MustResolve("/tree/a.txt")
	fn := func(bits1, bits2 uint32) bool {
		g1 := priv.GrantOf(priv.Set(bits1) & priv.All)
		g2 := priv.GrantOf(priv.Set(bits2) & priv.All)
		c := NewFile(p, vn, priv.FullGrant()).Restrict(g1, "a").Restrict(g2, "b")
		return g1.Rights.HasAll(c.Grant().Rights) && g2.Rights.HasAll(c.Grant().Rights)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathAndNameFallback(t *testing.T) {
	k, p := world(t)
	f := NewFile(p, k.FS.MustResolve("/tree/a.txt"), priv.FullGrant())
	path, err := f.Path()
	if err != nil || path != "/tree/a.txt" {
		t.Fatalf("Path = %q, %v", path, err)
	}
	if f.Name() != "a.txt" {
		t.Fatalf("Name = %q", f.Name())
	}
	// Unlink the file: Path falls back to the last known path (§3.1.3).
	tree := fullDir(t, k, p, "/tree")
	if err := tree.Unlink("a.txt"); err != nil {
		t.Fatal(err)
	}
	path, err = f.Path()
	if err != nil || path != "/tree/a.txt" {
		t.Fatalf("fallback Path = %q, %v", path, err)
	}
}

func TestPipeFactoryAndEnds(t *testing.T) {
	_, p := world(t)
	pf := NewPipeFactory(p)
	r, w, err := pf.CreatePipe()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindPipeEnd || w.Kind() != KindPipeEnd {
		t.Fatal("pipe ends have wrong kind")
	}
	// Ends are directional.
	if err := r.Write([]byte("x")); err == nil {
		t.Fatal("read end writable")
	}
	if _, err := w.Read(); err == nil {
		t.Fatal("write end readable")
	}
	if err := w.Append([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	data, err := r.Read()
	if err != nil || string(data) != "ping" {
		t.Fatalf("pipe read = %q, %v", data, err)
	}
	// Closing the write end yields EOF on the read end.
	w.Close()
	data, err = r.Read()
	if err != nil || len(data) != 0 {
		t.Fatalf("EOF read = %q, %v", data, err)
	}
	// Pipes count as file capabilities (§2.2).
	if !r.IsFile() {
		t.Fatal("pipe end is not a file capability")
	}
}

func TestSymlinkOps(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree")
	if err := dir.CreateSymlink("ln", "a.txt"); err != nil {
		t.Fatal(err)
	}
	target, err := dir.ReadSymlink("ln")
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := target.Read(); string(data) != "alpha" {
		t.Fatalf("symlink target read = %q", data)
	}
	// Multi-component and dot-dot targets are rejected.
	if err := dir.CreateSymlink("evil", "../other/secret.txt"); err != nil {
		t.Fatal(err) // creating is fine...
	}
	if _, err := dir.ReadSymlink("evil"); err == nil {
		t.Fatal("...but deriving through a traversing symlink must fail")
	}
}

func TestLinkPrivileges(t *testing.T) {
	k, p := world(t)
	dir := fullDir(t, k, p, "/tree")
	f, _ := dir.Lookup("a.txt")
	weakFile := f.Restrict(priv.NewGrant(priv.RRead), "nolink")
	if err := dir.Link("alias", weakFile); err == nil {
		t.Fatal("linked a file without +link")
	}
	if err := dir.Link("alias", f); err != nil {
		t.Fatalf("link: %v", err)
	}
}
