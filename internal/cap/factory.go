package cap

import (
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/vfs"
)

// NewPipeFactory returns a pipe-factory capability: it encapsulates the
// right to create new pipes (§3.1.1). Its create operation returns a
// pair of pipe ends, each a file capability.
func NewPipeFactory(proc *kernel.Proc) *Capability {
	return &Capability{id: nextCapID(), kind: KindPipeFactory, grant: priv.FullGrant(), proc: proc}
}

// CreatePipe creates a pipe, returning (readEnd, writeEnd).
func (c *Capability) CreatePipe() (*Capability, *Capability, error) {
	if c.kind != KindPipeFactory {
		return nil, nil, errno.EINVAL
	}
	p := vfs.NewPipe()
	r := &Capability{
		id:      nextCapID(),
		kind:    KindPipeEnd,
		grant:   priv.GrantOf(priv.NewSet(priv.RRead, priv.RStat)),
		proc:    c.proc,
		pipeObj: p, pipeRead: true,
	}
	w := &Capability{
		id:      nextCapID(),
		kind:    KindPipeEnd,
		grant:   priv.GrantOf(priv.NewSet(priv.RWrite, priv.RAppend, priv.RStat)),
		proc:    c.proc,
		pipeObj: p,
	}
	c.emitDerive(r, "create-pipe", "pipe(read)", rightsOf(r.grant), "")
	c.emitDerive(w, "create-pipe", "pipe(write)", rightsOf(w.grant), "")
	return r, w, nil
}

// Pipe returns the underlying pipe of a pipe-end capability.
func (c *Capability) PipeObject() *vfs.Pipe { return c.pipeObj }

// Close releases a pipe-end capability's reference so the peer observes
// EOF (read end gone) or EPIPE (write end gone). Scripts that hand a
// pipe end to a sandbox and then read the other end must close their
// copy, exactly as with file descriptors. Non-pipe capabilities ignore
// Close.
func (c *Capability) Close() {
	if c.kind != KindPipeEnd || c.pipeObj == nil || c.closed {
		return
	}
	c.closed = true
	if c.pipeRead {
		c.pipeObj.CloseRead()
	} else {
		c.pipeObj.CloseWrite()
	}
}

// PipeIsReadEnd reports whether a pipe-end capability is the read end.
func (c *Capability) PipeIsReadEnd() bool { return c.pipeRead }

// SocketFactoryDomain configures which address family a socket factory
// mints sockets for.
type SocketFactoryDomain = netstack.Domain

// NewSocketFactory returns a socket-factory capability for the given
// domain with the given socket privileges. In the prototype, SHILL
// scripts cannot create or manipulate sockets directly (§3.1.1); the
// factory exists to be granted to sandboxes, which then may create and
// use sockets according to the factory's grant.
func NewSocketFactory(proc *kernel.Proc, domain netstack.Domain, g *priv.Grant) *Capability {
	return &Capability{id: nextCapID(), kind: KindSocketFactory, grant: g, proc: proc, sockDomain: domain, lastPath: "socket(" + domain.String() + ")"}
}

// SocketDomain returns the domain a socket-factory capability covers.
func (c *Capability) SocketDomain() netstack.Domain { return c.sockDomain }
