// Package errno defines the errno-style sentinel errors shared by the
// simulated kernel, VFS, and network stack. System calls in this
// reproduction return these sentinels (possibly wrapped); callers test
// them with errors.Is, the moral equivalent of comparing errno values.
package errno

import "errors"

// Sentinel errors mirroring the FreeBSD errnos the paper's system
// surfaces. EACCES in particular is what a SHILL sandbox returns when a
// session holds insufficient privileges (§3.2.2).
var (
	EPERM        = errors.New("EPERM: operation not permitted")
	ENOENT       = errors.New("ENOENT: no such file or directory")
	ESRCH        = errors.New("ESRCH: no such process")
	EINTR        = errors.New("EINTR: interrupted system call")
	EIO          = errors.New("EIO: input/output error")
	EBADF        = errors.New("EBADF: bad file descriptor")
	ECHILD       = errors.New("ECHILD: no child processes")
	EACCES       = errors.New("EACCES: permission denied")
	EBUSY        = errors.New("EBUSY: device busy")
	EEXIST       = errors.New("EEXIST: file exists")
	EXDEV        = errors.New("EXDEV: cross-device link")
	ENOTDIR      = errors.New("ENOTDIR: not a directory")
	EISDIR       = errors.New("EISDIR: is a directory")
	EINVAL       = errors.New("EINVAL: invalid argument")
	EMFILE       = errors.New("EMFILE: too many open files")
	EFBIG        = errors.New("EFBIG: file too large")
	ENOSPC       = errors.New("ENOSPC: no space left on device")
	EROFS        = errors.New("EROFS: read-only file system")
	EMLINK       = errors.New("EMLINK: too many links")
	EPIPE        = errors.New("EPIPE: broken pipe")
	ENOTEMPTY    = errors.New("ENOTEMPTY: directory not empty")
	ELOOP        = errors.New("ELOOP: too many levels of symbolic links")
	ENOSYS       = errors.New("ENOSYS: function not implemented")
	EADDRINUSE   = errors.New("EADDRINUSE: address already in use")
	ECONNREFUSED = errors.New("ECONNREFUSED: connection refused")
	ENOTCONN     = errors.New("ENOTCONN: socket is not connected")
	ECONNABORTED = errors.New("ECONNABORTED: software caused connection abort")
	EAGAIN       = errors.New("EAGAIN: resource temporarily unavailable")
	ENAMETOOLONG = errors.New("ENAMETOOLONG: file name too long")
	ETIMEDOUT    = errors.New("ETIMEDOUT: operation timed out")
)

// sentinels lists every defined errno, for message-based lookup.
var sentinels = []error{
	EPERM, ENOENT, ESRCH, EINTR, EIO, EBADF, ECHILD, EACCES, EBUSY,
	EEXIST, EXDEV, ENOTDIR, EISDIR, EINVAL, EMFILE, EFBIG, ENOSPC,
	EROFS, EMLINK, EPIPE, ENOTEMPTY, ELOOP, ENOSYS, EADDRINUSE,
	ECONNREFUSED, ENOTCONN, ECONNABORTED, EAGAIN, ENAMETOOLONG,
	ETIMEDOUT,
}

// Canonical maps an error message back to the sentinel that produced
// it, so an errno decoded from the wire satisfies the same errors.Is
// checks as the original. Unknown messages return a fresh error with
// the message preserved; empty messages return nil.
func Canonical(msg string) error {
	if msg == "" {
		return nil
	}
	for _, s := range sentinels {
		if s.Error() == msg {
			return s
		}
	}
	return errors.New(msg)
}
