// Package trace is the end-to-end request tracing layer: a lock-free,
// ring-buffered span recorder that decomposes a request into timed
// spans — admission, queue wait, machine/session acquire, script
// resolve, parse/compile, eval, aggregated kernel ops — and threads a
// trace ID through the stack via context.
//
// # Design
//
// The recorder follows internal/audit's design discipline: a fixed
// array of atomic slots with an atomic cursor (no locks on the emit
// path), plus a bounded per-trace span buffer so a finished run can
// hand its spans back without scanning the ring. Spans are recorded at
// completion only; the ring never holds half-open spans.
//
// Three granularities coexist:
//
//   - Pipeline spans (request, queue, acquire, resolve, run, compile,
//     eval) are individually timed regions opened with Ref.Start and
//     closed with Active.End.
//   - Figure 10 categories (startup, sandbox-setup, sandbox-exec,
//     contract-check, audit-emit) are absorbed from internal/prof via
//     Ref.AddProfSamples; ProfView inverts the mapping, making prof a
//     view over the trace rather than a second measurement.
//   - Kernel ops (op-vfs, op-net, op-policy) are far too frequent to
//     record individually; OpStats counts every operation and times a
//     1-in-64 sample (scaled), and a run emits one aggregated span per
//     category from its snapshot delta.
//
// # Attribution caveat
//
// OpStats and prof are machine-wide: a run's aggregated spans are
// snapshot deltas over shared counters, so concurrent sessions on one
// machine bleed into each other's windows. Per-run pipeline spans are
// exact; aggregated spans are attribution, not accounting.
//
// # Threading
//
// shilld mints a trace per admitted request and stores it in the
// request context (NewContext); shill.Session.Run picks it up
// (FromContext) or starts its own for direct embedders. The trace ID
// is stamped on audit denials (audit.DenyReason.TraceID), so
// why-denied output links a denial back to the exact request — and the
// position of the deny within its span tree shows when in the request
// the denial landed.
//
// Every method on Recorder, Ref, Active, and OpStats is nil-safe: a
// disabled configuration threads nils through the same call sites and
// pays one nil check per operation.
package trace
