package trace

import "context"

// ctxKey keys the active trace in a context.
type ctxKey struct{}

// Context carries an active trace through a request: the Ref plus the
// span ID new work should parent under. shilld mints one per admitted
// request; Session.Run picks it up (or starts its own trace for direct
// embedders) and re-parents as it opens the run span.
type Context struct {
	Ref    *Ref
	Parent uint64 // span ID children should attach to
}

// NewContext returns ctx carrying the trace. A nil tc (or a tc with a
// nil Ref) returns ctx unchanged, so disabled tracing adds no context
// allocation.
func NewContext(ctx context.Context, tc *Context) context.Context {
	if tc == nil || tc.Ref == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the active trace, or nil.
func FromContext(ctx context.Context) *Context {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(ctxKey{}).(*Context)
	return tc
}
