package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/prof"
)

// Kind identifies what a span measures. The first block is the serving
// pipeline (request admission through evaluation); the second block
// absorbs the Figure 10 categories of internal/prof, so the profiler's
// breakdown is reconstructible from a trace (ProfView); the third block
// is the aggregated kernel-op categories of OpStats.
type Kind uint8

// Span kinds.
const (
	KindRequest       Kind = iota // whole wire request (shilld)
	KindQueue                     // admission-queue wait
	KindAcquire                   // tenant machine/session acquire
	KindResolve                   // script resolution
	KindRun                       // whole Session.Run
	KindCompile                   // parse/compile (detail: engine, cache hit/miss)
	KindEval                      // script evaluation
	KindStartup                   // prof.Startup: interpreter construction
	KindSandboxSetup              // prof.SandboxSetup
	KindSandboxExec               // prof.SandboxExec
	KindContractCheck             // prof.ContractCheck
	KindAuditEmit                 // prof.AuditEmit
	KindOpVFS                     // aggregated vfs operations (OpStats)
	KindOpNet                     // aggregated netstack operations (OpStats)
	KindOpPolicy                  // aggregated MAC policy checks (OpStats)
	numKinds
)

var kindNames = [numKinds]string{
	"request", "queue", "acquire", "resolve", "run", "compile", "eval",
	"startup", "sandbox-setup", "sandbox-exec", "contract-check",
	"audit-emit", "op-vfs", "op-net", "op-policy",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so wire consumers (the
// /v1/trace endpoint, Result.Trace) see "compile" rather than 5.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	name := string(b)
	if len(name) >= 2 && name[0] == '"' {
		name = name[1 : len(name)-1]
	}
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	*k = numKinds // preserved as "unknown"; never an error on the read path
	return nil
}

// Span is one completed, timed region of a request. Spans are recorded
// at completion (start plus duration), so rings and per-trace buffers
// only ever hold finished spans. Aggregated spans (the op-* kinds and
// the prof categories) fold many operations into one span and carry the
// fold count.
type Span struct {
	Seq    uint64        `json:"seq"`
	Trace  uint64        `json:"traceId"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Kind   Kind          `json:"kind"`
	Name   string        `json:"name,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"durNs"`
	Count  int64         `json:"count,omitempty"`
}

// DefaultRingSize is the recorder's span-ring capacity.
const DefaultRingSize = 8192

// maxTraceSpans bounds the per-trace span buffer, the same
// bounded-memory discipline as audit's per-session shards: a runaway
// trace overwrites nothing and allocates no further.
const maxTraceSpans = 128

// Recorder is a lock-free, ring-buffered span store, built like
// internal/audit's Log: a fixed array of atomic slots and an atomic
// cursor, so concurrent emitters never contend on a lock and memory
// stays bounded. Queries (Since, TraceSpans) read whatever complete
// spans the ring still holds.
type Recorder struct {
	enabled atomic.Bool
	ids     atomic.Uint64 // allocator for trace and span IDs
	seq     atomic.Uint64 // monotone emission sequence
	cursor  atomic.Uint64
	size    int
	// ring is allocated on first emit, not at construction: machine
	// boot — especially image restore, which is held to microseconds —
	// must not pay for zeroing a 64KB span ring it may never use.
	ring atomic.Pointer[[]atomic.Pointer[Span]]
}

// NewRecorder returns an enabled recorder with the given ring size
// (DefaultRingSize if size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	r := &Recorder{size: size}
	r.enabled.Store(true)
	return r
}

// slots returns the span ring, allocating it on first use. A losing
// racer's allocation is discarded; both see the published ring.
func (r *Recorder) slots() []atomic.Pointer[Span] {
	if p := r.ring.Load(); p != nil {
		return *p
	}
	fresh := make([]atomic.Pointer[Span], r.size)
	if r.ring.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *r.ring.Load()
}

// Enabled reports whether the recorder accepts spans. Nil-safe.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles span recording. Nil-safe.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Seq returns the recorder's emission high-water mark; pass it back to
// Since for incremental reads.
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// emit assigns the span a sequence number and stores it in the ring.
func (r *Recorder) emit(s *Span) {
	s.Seq = r.seq.Add(1)
	slot := r.cursor.Add(1) - 1
	ring := r.slots()
	ring[slot%uint64(len(ring))].Store(s)
}

// Since returns every span still in the ring with Seq > since, in
// emission order.
func (r *Recorder) Since(since uint64) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	ring := r.ring.Load()
	if ring == nil {
		return nil
	}
	for i := range *ring {
		if p := (*ring)[i].Load(); p != nil && p.Seq > since {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TraceSpans returns every span still in the ring belonging to the
// given trace, in emission order.
func (r *Recorder) TraceSpans(traceID uint64) []Span {
	if r == nil || traceID == 0 {
		return nil
	}
	var out []Span
	ring := r.ring.Load()
	if ring == nil {
		return nil
	}
	for i := range *ring {
		if p := (*ring)[i].Load(); p != nil && p.Trace == traceID {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// NewTrace mints a trace: a fresh trace ID and a per-trace span buffer.
// Returns nil when the recorder is disabled (or nil); every Ref and
// Active method is nil-safe, so callers thread the result through
// unconditionally and a disabled configuration pays only this check.
func (r *Recorder) NewTrace() *Ref {
	if !r.Enabled() {
		return nil
	}
	return &Ref{rec: r, id: r.ids.Add(1)}
}

// Ref is one live trace: it carries the trace ID, emits spans into the
// owning recorder's ring, and keeps its own bounded copy of the trace's
// spans so a finished run can return them without scanning the ring.
type Ref struct {
	rec *Recorder
	id  uint64

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// TraceID returns the trace's ID (0 for a nil ref).
func (t *Ref) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Start opens a span under the given parent span ID (0 for a root
// span). Nil-safe: a nil ref returns a nil Active whose methods no-op.
func (t *Ref) Start(parent uint64, kind Kind, name string) *Active {
	if t == nil {
		return nil
	}
	return &Active{
		ref: t,
		span: Span{
			Trace: t.id, ID: t.rec.ids.Add(1), Parent: parent,
			Kind: kind, Name: name, Start: time.Now(),
		},
	}
}

// Add records a pre-measured span (aggregated kernel ops, prof
// categories): the trace ID and an ID are filled in, Start/Dur/Count
// are the caller's.
func (t *Ref) Add(s Span) {
	if t == nil {
		return
	}
	s.Trace = t.id
	if s.ID == 0 {
		s.ID = t.rec.ids.Add(1)
	}
	t.record(s)
}

func (t *Ref) record(s Span) {
	t.rec.emit(&s)
	t.mu.Lock()
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the trace's recorded spans in emission order.
func (t *Ref) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped reports spans the per-trace buffer refused (ring emission
// still happened).
func (t *Ref) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Active is an open span. It is not safe for concurrent use; one
// goroutine opens and ends it.
type Active struct {
	ref  *Ref
	span Span
}

// ID returns the span's ID, for parenting children under it.
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// SetDetail attaches free-form detail (engine, cache hit/miss, outcome).
func (a *Active) SetDetail(d string) {
	if a != nil {
		a.span.Detail = d
	}
}

// End closes the span, records it, and returns its duration.
func (a *Active) End() time.Duration {
	if a == nil {
		return 0
	}
	a.span.Dur = time.Since(a.span.Start)
	a.ref.record(a.span)
	return a.span.Dur
}

// --- prof interop: the Figure 10 categories as span kinds ---

var profKinds = map[prof.Category]Kind{
	prof.Startup:       KindStartup,
	prof.SandboxSetup:  KindSandboxSetup,
	prof.SandboxExec:   KindSandboxExec,
	prof.ContractCheck: KindContractCheck,
	prof.AuditEmit:     KindAuditEmit,
}

// KindForProf maps a prof category to its span kind.
func KindForProf(c prof.Category) (Kind, bool) {
	k, ok := profKinds[c]
	return k, ok
}

// AddProfSamples records one aggregated span per non-empty prof sample
// under the given parent — this is how a run's Figure 10 breakdown
// becomes part of its trace.
func (t *Ref) AddProfSamples(parent uint64, start time.Time, samples []prof.Sample) {
	if t == nil {
		return
	}
	for _, s := range samples {
		if s.Count == 0 && s.Total == 0 {
			continue
		}
		k, ok := profKinds[s.Category]
		if !ok {
			continue
		}
		t.Add(Span{Parent: parent, Kind: k, Name: k.String(), Start: start, Dur: s.Total, Count: s.Count})
	}
}

// ProfView reconstructs the prof breakdown from a trace's spans: prof
// is a view over the trace, not a second measurement. Spans of
// non-prof kinds are ignored; multiple spans of one category sum.
func ProfView(spans []Span) []prof.Sample {
	var totals [5]prof.Sample
	cats := [...]prof.Category{prof.Startup, prof.SandboxSetup, prof.SandboxExec, prof.ContractCheck, prof.AuditEmit}
	for i, c := range cats {
		totals[i].Category = c
	}
	any := false
	for _, s := range spans {
		for i, c := range cats {
			if k := profKinds[c]; k == s.Kind {
				totals[i].Total += s.Dur
				totals[i].Count += s.Count
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	out := make([]prof.Sample, 0, len(totals))
	for _, s := range totals {
		if s.Count != 0 || s.Total != 0 {
			out = append(out, s)
		}
	}
	return out
}
