package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/prof"
)

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(64)
	tr := r.NewTrace()
	if tr == nil {
		t.Fatal("NewTrace returned nil on an enabled recorder")
	}
	root := tr.Start(0, KindRequest, "run")
	child := tr.Start(root.ID(), KindCompile, "compile")
	child.SetDetail("engine=compiled cache=miss")
	if d := child.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: the child ends first.
	if spans[0].Kind != KindCompile || spans[1].Kind != KindRequest {
		t.Fatalf("unexpected span order: %v, %v", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %d != root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Trace != tr.TraceID() || spans[1].Trace != tr.TraceID() {
		t.Fatal("spans missing trace ID")
	}
	if spans[0].Detail != "engine=compiled cache=miss" {
		t.Fatalf("detail = %q", spans[0].Detail)
	}

	got := r.TraceSpans(tr.TraceID())
	if len(got) != 2 {
		t.Fatalf("ring holds %d spans for the trace, want 2", len(got))
	}
}

func TestRingWraparound(t *testing.T) {
	const size = 16
	r := NewRecorder(size)
	tr := r.NewTrace()
	for i := 0; i < size*3; i++ {
		tr.Add(Span{Kind: KindEval, Start: time.Now(), Dur: time.Microsecond})
	}
	spans := r.Since(0)
	if len(spans) != size {
		t.Fatalf("ring holds %d spans, want %d", len(spans), size)
	}
	// Only the newest survive, in order.
	want := r.Seq() - size + 1
	for _, s := range spans {
		if s.Seq != want {
			t.Fatalf("seq %d, want %d", s.Seq, want)
		}
		want++
	}
}

func TestSinceIncremental(t *testing.T) {
	r := NewRecorder(64)
	tr := r.NewTrace()
	tr.Add(Span{Kind: KindQueue})
	mark := r.Seq()
	tr.Add(Span{Kind: KindEval})
	got := r.Since(mark)
	if len(got) != 1 || got[0].Kind != KindEval {
		t.Fatalf("Since(%d) = %+v, want the one eval span", mark, got)
	}
}

func TestPerTraceBufferBounded(t *testing.T) {
	r := NewRecorder(64)
	tr := r.NewTrace()
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.Add(Span{Kind: KindEval})
	}
	if n := len(tr.Spans()); n != maxTraceSpans {
		t.Fatalf("per-trace buffer grew to %d, want cap %d", n, maxTraceSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestConcurrentEmission(t *testing.T) {
	r := NewRecorder(128)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.NewTrace()
			for i := 0; i < per; i++ {
				a := tr.Start(0, KindEval, "eval")
				a.End()
			}
			if len(tr.Spans()) != maxTraceSpans {
				t.Errorf("per-trace spans = %d, want %d", len(tr.Spans()), maxTraceSpans)
			}
		}()
	}
	wg.Wait()
	if r.Seq() != workers*per {
		t.Fatalf("seq = %d, want %d", r.Seq(), workers*per)
	}
	if got := len(r.Since(0)); got != 128 {
		t.Fatalf("ring holds %d spans, want full 128", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	r.SetEnabled(true)
	if r.Seq() != 0 || r.Since(0) != nil || r.TraceSpans(1) != nil {
		t.Fatal("nil recorder queries not empty")
	}
	tr := r.NewTrace()
	if tr != nil {
		t.Fatal("nil recorder minted a trace")
	}
	// The whole emission surface must no-op on nils.
	a := tr.Start(0, KindRun, "run")
	a.SetDetail("x")
	a.End()
	tr.Add(Span{})
	tr.AddProfSamples(0, time.Now(), []prof.Sample{{Category: prof.Startup, Total: 1, Count: 1}})
	tr.AddOps(0, time.Now(), OpSnapshot{})
	if tr.Spans() != nil || tr.TraceID() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil ref state not empty")
	}

	var o *OpStats
	o.End(OpVFS, o.Begin(OpVFS))
	if o.Snapshot() != (OpSnapshot{}) {
		t.Fatal("nil OpStats snapshot not zero")
	}

	disabled := NewRecorder(8)
	disabled.SetEnabled(false)
	if disabled.NewTrace() != nil {
		t.Fatal("disabled recorder minted a trace")
	}
}

func TestOpStats(t *testing.T) {
	o := NewOpStats()
	before := o.Snapshot()
	for i := 0; i < 2*opTimingSample; i++ {
		ts := o.Begin(OpVFS)
		o.End(OpVFS, ts)
	}
	o.End(OpNet, o.Begin(OpNet))
	delta := o.Snapshot().Delta(before)
	if delta[OpVFS].Count != 2*opTimingSample {
		t.Fatalf("vfs count = %d, want %d", delta[OpVFS].Count, 2*opTimingSample)
	}
	if delta[OpNet].Count != 1 || delta[OpPolicy].Count != 0 {
		t.Fatalf("net/policy counts = %d/%d", delta[OpNet].Count, delta[OpPolicy].Count)
	}

	tr := NewRecorder(16).NewTrace()
	tr.AddOps(7, time.Now(), delta)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("AddOps emitted %d spans, want 2 (vfs, net)", len(spans))
	}
	if spans[0].Kind != KindOpVFS || spans[0].Count != 2*opTimingSample || spans[0].Parent != 7 {
		t.Fatalf("vfs span = %+v", spans[0])
	}
}

func TestProfRoundTrip(t *testing.T) {
	samples := []prof.Sample{
		{Category: prof.Startup, Total: 3 * time.Millisecond, Count: 1},
		{Category: prof.SandboxExec, Total: 9 * time.Millisecond, Count: 4},
		{Category: prof.AuditEmit, Total: 0, Count: 0}, // empty: elided
	}
	tr := NewRecorder(16).NewTrace()
	tr.AddProfSamples(3, time.Now(), samples)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("emitted %d prof spans, want 2", len(spans))
	}
	view := ProfView(spans)
	if len(view) != 2 {
		t.Fatalf("ProfView returned %d samples, want 2", len(view))
	}
	if view[0].Category != prof.Startup || view[0].Total != 3*time.Millisecond || view[0].Count != 1 {
		t.Fatalf("startup sample = %+v", view[0])
	}
	if view[1].Category != prof.SandboxExec || view[1].Total != 9*time.Millisecond || view[1].Count != 4 {
		t.Fatalf("sandbox-exec sample = %+v", view[1])
	}
}

func TestKindJSON(t *testing.T) {
	b, err := json.Marshal(Span{Kind: KindCompile})
	if err != nil {
		t.Fatal(err)
	}
	if want := `"kind":"compile"`; !jsonContains(string(b), want) {
		t.Fatalf("span JSON %s missing %s", b, want)
	}
	var s Span
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindCompile {
		t.Fatalf("round-trip kind = %v", s.Kind)
	}
}

func jsonContains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
