package trace

import (
	"sync/atomic"
	"time"
)

// OpCat is an aggregated kernel-op category. Individual kernel
// operations are far too frequent to record one span each; instead the
// kernel counts them per category (always) and times a 1-in-N sample
// (scaled back up), and a run emits one aggregated span per category
// from the snapshot delta — the same sampled-self-timing discipline as
// audit's emit-cost accounting.
type OpCat uint8

// Kernel-op categories.
const (
	OpVFS    OpCat = iota // filesystem namespace and data operations
	OpNet                 // netstack socket operations
	OpPolicy              // MAC policy checks (vnode/pipe/socket/proc/system)
	NumOpCats
)

// Kind returns the span kind an aggregated category span carries.
func (c OpCat) Kind() Kind {
	switch c {
	case OpVFS:
		return KindOpVFS
	case OpNet:
		return KindOpNet
	}
	return KindOpPolicy
}

// opTimingSample times one in every opTimingSample operations per
// category. Sampled durations are scaled by the same factor, so totals
// are statistically unbiased; a single sampled operation that blocks
// (a parked socket read) is over-weighted by the scale factor, which
// averages out over many operations but makes any one small window
// noisy — the same caveat as every sampling profiler.
const opTimingSample = 64

// OpStats is the kernel-wide aggregated op accounting: two atomics per
// category, no locks, nil-safe (a kernel without tracing passes nil and
// pays one nil check per operation).
type OpStats struct {
	counts [NumOpCats]atomic.Int64
	nanos  [NumOpCats]atomic.Int64
}

// NewOpStats returns empty op accounting.
func NewOpStats() *OpStats { return &OpStats{} }

// Begin counts one operation and, for the sampled 1-in-N operation,
// returns a non-zero start timestamp to pass to End.
func (o *OpStats) Begin(c OpCat) int64 {
	if o == nil {
		return 0
	}
	if o.counts[c].Add(1)%opTimingSample != 0 {
		return 0
	}
	return time.Now().UnixNano()
}

// End records a sampled operation's duration, scaled back up to
// estimate the category total.
func (o *OpStats) End(c OpCat, startNanos int64) {
	if o == nil || startNanos == 0 {
		return
	}
	if d := time.Now().UnixNano() - startNanos; d > 0 {
		o.nanos[c].Add(d * opTimingSample)
	}
}

// OpCount is one category's totals.
type OpCount struct {
	Count int64
	Nanos int64
}

// OpSnapshot is a point-in-time copy of every category.
type OpSnapshot [NumOpCats]OpCount

// Snapshot copies the counters. Nil-safe (zero snapshot).
func (o *OpStats) Snapshot() OpSnapshot {
	var s OpSnapshot
	if o == nil {
		return s
	}
	for c := range s {
		s[c] = OpCount{Count: o.counts[c].Load(), Nanos: o.nanos[c].Load()}
	}
	return s
}

// Delta returns s minus before, clamped at zero.
func (s OpSnapshot) Delta(before OpSnapshot) OpSnapshot {
	var out OpSnapshot
	for c := range s {
		out[c] = OpCount{Count: s[c].Count - before[c].Count, Nanos: s[c].Nanos - before[c].Nanos}
		if out[c].Count < 0 {
			out[c].Count = 0
		}
		if out[c].Nanos < 0 {
			out[c].Nanos = 0
		}
	}
	return out
}

// AddOps records one aggregated span per non-empty category in the
// delta, under the given parent. As with the windowed prof and denial
// attribution, concurrent sessions on one machine bleed into each
// other's windows; counts are machine-wide, not per-run-exact.
func (t *Ref) AddOps(parent uint64, start time.Time, delta OpSnapshot) {
	if t == nil {
		return
	}
	for c := OpCat(0); c < NumOpCats; c++ {
		d := delta[c]
		if d.Count == 0 {
			continue
		}
		k := c.Kind()
		t.Add(Span{
			Parent: parent, Kind: k, Name: k.String(), Start: start,
			Dur: time.Duration(d.Nanos), Count: d.Count,
		})
	}
}
