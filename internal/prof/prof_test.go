package prof

import (
	"testing"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := New()
	c.Add(SandboxSetup, 10*time.Millisecond)
	c.Add(SandboxSetup, 5*time.Millisecond)
	c.Add(SandboxExec, 20*time.Millisecond)
	if c.Total(SandboxSetup) != 15*time.Millisecond {
		t.Fatalf("Total = %v", c.Total(SandboxSetup))
	}
	if c.Count(SandboxSetup) != 2 || c.Count(SandboxExec) != 1 {
		t.Fatal("counts wrong")
	}
	c.Reset()
	if c.Total(SandboxSetup) != 0 || c.Count(SandboxSetup) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Add(Startup, time.Second) // must not panic
	if c.Total(Startup) != 0 || c.Count(Startup) != 0 {
		t.Fatal("nil collector returned data")
	}
	c.Reset()
}

func TestReportBreakdown(t *testing.T) {
	c := New()
	c.Add(Startup, 100*time.Millisecond)
	c.Add(SandboxSetup, 200*time.Millisecond)
	c.Add(SandboxExec, 300*time.Millisecond)
	b := c.Report(time.Second)
	if b.Remaining != 400*time.Millisecond {
		t.Fatalf("remaining = %v", b.Remaining)
	}
	if b.Sandboxes != 1 {
		t.Fatalf("sandboxes = %d", b.Sandboxes)
	}
	// Remaining clamps at zero when the categories overlap the total.
	b = c.Report(100 * time.Millisecond)
	if b.Remaining != 0 {
		t.Fatalf("clamped remaining = %v", b.Remaining)
	}
	if b.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestCategoryNames(t *testing.T) {
	for _, c := range []Category{Startup, SandboxSetup, SandboxExec, ContractCheck, AuditEmit} {
		if c.String() == "" {
			t.Fatalf("category %d has no name", c)
		}
	}
}

// TestAuditEmitBreakdown verifies the AuditEmit category is attributed
// in the Figure-10 breakdown and subtracted from the remaining bucket,
// so audit overhead never masquerades as script-evaluation time.
func TestAuditEmitBreakdown(t *testing.T) {
	c := New()
	c.Add(Startup, 100*time.Millisecond)
	c.Add(SandboxExec, 300*time.Millisecond)
	c.Add(AuditEmit, 50*time.Millisecond)
	b := c.Report(time.Second)
	if b.AuditEmit != 50*time.Millisecond {
		t.Fatalf("AuditEmit = %v, want 50ms", b.AuditEmit)
	}
	if b.Remaining != 550*time.Millisecond {
		t.Fatalf("remaining = %v, want 550ms (audit time must be excluded)", b.Remaining)
	}
	if got := c.Total(AuditEmit); got != 50*time.Millisecond {
		t.Fatalf("Total(AuditEmit) = %v", got)
	}
}
