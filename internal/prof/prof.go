// Package prof is the lightweight instrumentation behind the Figure 10
// performance breakdown: total execution time, runtime startup, sandbox
// setup, sandboxed execution, and remaining time (contract checking and
// script evaluation).
package prof

import (
	"fmt"
	"sync"
	"time"
)

// Category labels one row of the Figure 10 breakdown.
type Category int

// Breakdown categories.
const (
	Startup Category = iota // interpreter startup (Racket startup in the paper)
	SandboxSetup
	SandboxExec
	ContractCheck // attributed within "remaining time" in the paper
	AuditEmit     // time spent recording audit events (internal/audit)
	numCategories
)

func (c Category) String() string {
	switch c {
	case Startup:
		return "runtime startup"
	case SandboxSetup:
		return "sandbox setup"
	case SandboxExec:
		return "sandboxed execution"
	case ContractCheck:
		return "contract checking"
	case AuditEmit:
		return "audit emission"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Collector accumulates duration per category plus event counts. A nil
// *Collector is valid and records nothing, so instrumented code can stay
// unconditional.
type Collector struct {
	mu     sync.Mutex
	totals [numCategories]time.Duration
	counts [numCategories]int64
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add records a duration in a category.
func (c *Collector) Add(cat Category, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.totals[cat] += d
	c.counts[cat]++
	c.mu.Unlock()
}

// Total returns the accumulated duration for a category.
func (c *Collector) Total(cat Category) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[cat]
}

// Count returns how many events were recorded in a category. The
// SandboxSetup count is the number of sandboxes created — the statistic
// the paper reports per benchmark (Grading 5371, Find 15292, …).
func (c *Collector) Count(cat Category) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[cat]
}

// Sample is one category's accumulated duration and event count — the
// unit of the per-run profiles repro/shill attaches to each Result.
type Sample struct {
	Category Category      `json:"category"`
	Total    time.Duration `json:"totalNs"`
	Count    int64         `json:"count"`
}

// Samples snapshots every category, in category order (including zero
// rows, so two snapshots subtract positionally).
func (c *Collector) Samples() []Sample {
	out := make([]Sample, numCategories)
	if c == nil {
		for i := range out {
			out[i].Category = Category(i)
		}
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range out {
		out[i] = Sample{Category: Category(i), Total: c.totals[i], Count: c.counts[i]}
	}
	return out
}

// SamplesSince subtracts an earlier snapshot from a later one and keeps
// the categories that advanced — the profile of just the work between
// the two snapshots.
func SamplesSince(before, after []Sample) []Sample {
	var out []Sample
	for i := range after {
		s := after[i]
		if i < len(before) {
			s.Total -= before[i].Total
			s.Count -= before[i].Count
		}
		if s.Total != 0 || s.Count != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Reset zeroes the collector.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.totals {
		c.totals[i] = 0
		c.counts[i] = 0
	}
}

// Breakdown is a Figure 10-style report. AuditEmit extends the paper's
// rows with the audit subsystem's own overhead, so "remaining" stays
// honest about where time outside sandboxes actually went.
type Breakdown struct {
	Total        time.Duration
	Startup      time.Duration
	SandboxSetup time.Duration
	SandboxExec  time.Duration
	AuditEmit    time.Duration // audit-event recording overhead
	Remaining    time.Duration // total - startup - setup - exec - audit
	Sandboxes    int64
}

// Report computes the breakdown for a run that took total wall time.
func (c *Collector) Report(total time.Duration) Breakdown {
	b := Breakdown{
		Total:        total,
		Startup:      c.Total(Startup),
		SandboxSetup: c.Total(SandboxSetup),
		SandboxExec:  c.Total(SandboxExec),
		AuditEmit:    c.Total(AuditEmit),
		Sandboxes:    c.Count(SandboxSetup),
	}
	b.Remaining = total - b.Startup - b.SandboxSetup - b.SandboxExec - b.AuditEmit
	if b.Remaining < 0 {
		b.Remaining = 0
	}
	return b
}

// String renders the breakdown like Figure 10.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %v | startup %v | sandbox setup %v | sandboxed execution %v | audit %v | remaining %v | sandboxes %d",
		b.Total.Round(time.Microsecond), b.Startup.Round(time.Microsecond),
		b.SandboxSetup.Round(time.Microsecond), b.SandboxExec.Round(time.Microsecond),
		b.AuditEmit.Round(time.Microsecond),
		b.Remaining.Round(time.Microsecond), b.Sandboxes)
}
