package gen

import (
	"fmt"
	"strconv"

	"repro/internal/lang"
)

// RenderConfig parameterises rendering: where the workspace root and
// console live on the target machine, which port range the program's
// abstract slots map to, and whether to render the ambient form.
// Sandboxed and ambient variants of one program must use distinct Root
// and PortBase values so their effects never collide on a shared
// machine.
type RenderConfig struct {
	Root     string // absolute workspace root (staged per Manifest.Stage)
	Console  string // console device path for status output
	PortBase int    // abstract port slot 0 renders as PortBase+0, ...
	Ambient  bool   // true: bare provide (full ambient authority)
	Module   string // module file name; default "gen.cap"
}

// ModuleName returns the module file name the driver requires.
func (c RenderConfig) ModuleName() string {
	if c.Module == "" {
		return "gen.cap"
	}
	return c.Module
}

// Render renders the program as a paired (driver, module) source. The
// driver is an ambient script that mints the parameter capabilities and
// invokes the module's run function; the module carries the op tree.
// With cfg.Ambient false the module's provide contract attenuates every
// parameter to exactly the manifest's grants (the capability-sandboxed
// form); with cfg.Ambient true the provide is bare, so the capabilities
// keep the invoking user's full authority and only DAC restrains the
// run (the ambient form).
func (p *Program) Render(cfg RenderConfig) (driver, module string) {
	return p.renderDriver(cfg), p.renderModule(cfg)
}

func (p *Program) renderDriver(cfg RenderConfig) string {
	s := lang.NewScript(lang.DialectAmbient,
		lang.NewRequire(cfg.ModuleName(), true),
		lang.NewBind("ws", lang.NewCall(lang.NewIdent("open_dir"), lang.NewString(cfg.Root))),
		lang.NewBind("out", lang.NewCall(lang.NewIdent("open_file"), lang.NewString(cfg.Console))),
		lang.NewBind("pf", lang.NewCall(lang.NewIdent("pipe_factory"))),
		lang.NewBind("sf", lang.NewCall(lang.NewIdent("socket_factory"), lang.NewString("ip"))),
		lang.NewBind("exe", lang.NewCall(lang.NewIdent("open_file"), lang.NewString(p.Manifest.Exe))),
		lang.NewExprStmt(lang.NewCall(lang.NewIdent("run"),
			lang.NewIdent("ws"), lang.NewIdent("out"), lang.NewIdent("pf"),
			lang.NewIdent("sf"), lang.NewIdent("exe"))),
	)
	return lang.Render(s)
}

func (p *Program) renderModule(cfg RenderConfig) string {
	r := &renderer{cfg: cfg, prog: p}
	var stmts []lang.Stmt
	stmts = append(stmts, lang.NewRequire("shill/io", false))
	if p.usesKind(OpSock) {
		stmts = append(stmts, lang.NewRequire("shill/sockets", false))
	}
	if p.usesKind(OpResolve) {
		stmts = append(stmts, lang.NewRequire("shill/filesys", false))
	}
	if cfg.Ambient {
		stmts = append(stmts, lang.NewProvide("run", nil))
	} else {
		m := &p.Manifest
		stmts = append(stmts, lang.NewProvide("run", lang.NewCFunc(
			[]lang.CParam{
				{Name: "ws", C: lang.NewCCap("dir", lang.PrivsOf(m.Grant))},
				{Name: "out", C: lang.NewCCap("file", lang.PrivsOf(m.OutGrant))},
				{Name: "pf", C: lang.NewCCap("pipe_factory", nil)},
				{Name: "sf", C: lang.NewCCap("socket_factory", lang.PrivsOf(m.SockGrant))},
				{Name: "exe", C: lang.NewCCap("file", lang.PrivsOf(m.ExeGrant))},
			},
			lang.NewCIdent("any"),
		)))
	}
	var body []lang.Stmt
	for _, op := range p.Ops {
		body = append(body, r.renderOp(op)...)
	}
	stmts = append(stmts, lang.NewBind("run",
		lang.NewFun([]string{"ws", "out", "pf", "sf", "exe"}, body...)))
	return lang.Render(lang.NewScript(lang.DialectCap, stmts...))
}

func (p *Program) usesKind(k OpKind) bool {
	found := false
	var walk func(ops []*Op)
	walk = func(ops []*Op) {
		for _, o := range ops {
			if o.Kind == k {
				found = true
			}
			walk(o.Deps)
		}
	}
	walk(p.Ops)
	return found
}

// renderer holds rendering state for one variant.
type renderer struct {
	cfg  RenderConfig
	prog *Program
}

// varOf names the variable holding a capability reference.
func varOf(id int) string {
	if id == VarWS {
		return "ws"
	}
	return fmt.Sprintf("r%d", id)
}

func id(name string) *lang.Ident    { return lang.NewIdent(name) }
func str(v string) *lang.StringLit  { return lang.NewString(v) }
func num(v float64) *lang.NumberLit { return lang.NewNumber(v) }
func call(fn string, args ...lang.Expr) *lang.CallExpr {
	return lang.NewCall(id(fn), args...)
}

// status emits fprintf(out, "\n<label>=<token>\n"). The leading
// newline guarantees the status starts a fresh console line even when
// the preceding output (an exec'd cat of a file with no trailing
// newline) did not terminate its own — otherwise the status would glue
// onto it and the oracle's parser would drop it.
func status(label, token string) lang.Stmt {
	return lang.NewExprStmt(call("fprintf", id("out"), str("\n"+label+"="+token+"\n")))
}

// statusExit emits fprintf(out, "\n<label>=x%v\n", v) — the numeric
// verdict form used for exec exit codes.
func statusExit(label string, v lang.Expr) lang.Stmt {
	return lang.NewExprStmt(call("fprintf", id("out"), str("\n"+label+"=x%v\n"), v))
}

// guard renders: dst = expr; if is_syserror(dst) then {label=err}
// else {label=ok; okBody...}.
func guard(dst string, expr lang.Expr, label string, okBody []lang.Stmt) []lang.Stmt {
	return []lang.Stmt{
		lang.NewBind(dst, expr),
		lang.NewIf(call("is_syserror", id(dst)),
			[]lang.Stmt{status(label, "err")},
			append([]lang.Stmt{status(label, "ok")}, okBody...),
		),
	}
}

func (r *renderer) port(slot int) string {
	return strconv.Itoa(r.cfg.PortBase + slot)
}

// renderOp renders one op (and its success-branch dependents).
func (r *renderer) renderOp(op *Op) []lang.Stmt {
	lbl := op.Label()
	dst := varOf(op.ID)
	src := id(varOf(op.Src))
	var deps []lang.Stmt
	for _, d := range op.Deps {
		deps = append(deps, r.renderOp(d)...)
	}
	switch op.Kind {
	case OpLookup, OpEscape:
		return guard(dst, call("lookup", src, str(op.Name)), lbl, deps)
	case OpCreateFile:
		return guard(dst, call("create_file", src, str(op.Name)), lbl, deps)
	case OpCreateDir:
		return guard(dst, call("create_dir", src, str(op.Name)), lbl, deps)
	case OpReadSymlink:
		return guard(dst, call("read_symlink", src, str(op.Name)), lbl, deps)
	case OpResolve:
		return guard(dst, call("resolve", src, str(op.Name)), lbl, deps)
	case OpWrite:
		return guard(dst, call("write", src, str(op.Data)), lbl, nil)
	case OpAppend:
		return guard(dst, call("append", src, str(op.Data)), lbl, nil)
	case OpRead:
		return guard(dst, call("read", src), lbl, nil)
	case OpSize:
		return guard(dst, call("size", src), lbl, nil)
	case OpPath:
		return guard(dst, call("path", src), lbl, nil)
	case OpContents:
		loopVar := "n" + strconv.Itoa(op.ID)
		loop := lang.NewFor(loopVar, id(dst), []lang.Stmt{
			lang.NewExprStmt(call("fprintf", id("out"),
				str("log"+strconv.Itoa(op.ID)+"=%s\n"), id(loopVar))),
		})
		return guard(dst, call("contents", src), lbl, []lang.Stmt{loop})
	case OpUnlink:
		return guard(dst, call("unlink", src, str(op.Name)), lbl, nil)
	case OpLink:
		// Guard the file lookup so a denied lookup reads as op failure
		// instead of aborting the script with a type error.
		lk := "k" + strconv.Itoa(op.ID)
		inner := guard(dst, call("link", src, str(op.Name), id(lk)), lbl, nil)
		return []lang.Stmt{
			lang.NewBind(lk, call("lookup", src, str(op.Name2))),
			lang.NewIf(call("is_syserror", id(lk)),
				[]lang.Stmt{status(lbl, "err")},
				inner,
			),
		}
	case OpRename:
		return guard(dst, call("rename", src, str(op.Name), src, str(op.Name2)), lbl, nil)
	case OpSymlink:
		return guard(dst, call("create_symlink", src, str(op.Name), str(op.Name2)), lbl, nil)
	case OpPipe:
		wv := "w" + strconv.Itoa(op.ID)
		rv := "g" + strconv.Itoa(op.ID)
		uv := "u" + strconv.Itoa(op.ID)
		vv := "v" + strconv.Itoa(op.ID)
		okBody := []lang.Stmt{
			lang.NewBind(rv, call("nth", id(dst), num(0))),
			lang.NewBind(wv, call("nth", id(dst), num(1))),
		}
		okBody = append(okBody, guard(uv, call("write", id(wv), str(op.Data)), lbl+".w", nil)...)
		okBody = append(okBody, guard(vv, call("read", id(rv)), lbl+".r", nil)...)
		return guard(dst, call("create_pipe", id("pf")), lbl, okBody)
	case OpSock:
		port := str(r.port(op.Port))
		lv := "l" + strconv.Itoa(op.ID)
		cv := "c" + strconv.Itoa(op.ID)
		av := "a" + strconv.Itoa(op.ID)
		sv := "s" + strconv.Itoa(op.ID)
		vv := "v" + strconv.Itoa(op.ID)
		recv := guard(vv, call("socket_recv", id(av)), lbl+".r", nil)
		send := guard(sv, call("socket_send", id(cv), str(op.Data)), lbl+".s", recv)
		accept := guard(av, call("socket_accept", id(lv)), lbl+".a",
			append(send, lang.NewExprStmt(call("socket_close", id(av)))))
		connect := guard(cv, call("socket_connect", id("sf"), port), lbl+".c",
			append(accept, lang.NewExprStmt(call("socket_close", id(cv)))))
		listen := guard(lv, call("socket_listen", id("sf"), port), lbl+".l",
			append(connect, lang.NewExprStmt(call("socket_close", id(lv)))))
		return listen
	case OpExec:
		args, named := r.execArgs(op, src)
		return []lang.Stmt{
			lang.NewBind(dst, lang.NewCallNamed(id("exec"), args, named)),
			lang.NewIf(call("is_syserror", id(dst)),
				[]lang.Stmt{status(lbl, "err")},
				[]lang.Stmt{statusExit(lbl, id(dst))},
			),
		}
	case OpExecEscape:
		named := []lang.NamedArg{{Name: "stdout", Expr: id("out")}}
		args := []lang.Expr{id("exe"), lang.NewList(str(op.Name))}
		return []lang.Stmt{
			lang.NewBind(dst, lang.NewCallNamed(id("exec"), args, named)),
			lang.NewIf(call("is_syserror", id(dst)),
				[]lang.Stmt{status(lbl, "err")},
				[]lang.Stmt{statusExit(lbl, id(dst))},
			),
		}
	case OpCompute:
		fv := "f" + strconv.Itoa(op.ID)
		n := float64(op.N)
		fn := lang.NewFun([]string{"x"},
			lang.NewExprStmt(lang.NewBinary("+",
				lang.NewBinary("*", id("x"), num(2)), num(n))))
		want := num(n*2 + n)
		return []lang.Stmt{
			lang.NewBind(fv, fn),
			lang.NewBind(dst, lang.NewCall(id(fv), num(n))),
			lang.NewIf(lang.NewBinary("==", id(dst), want),
				[]lang.Stmt{status(lbl, "ok")},
				[]lang.Stmt{status(lbl, "err")},
			),
		}
	}
	return []lang.Stmt{status(lbl, "skip")}
}

// execArgs assembles the exec call for OpExec: cat consumes the operand
// capability when it is not the workspace itself, echo gets a plain
// string, true runs bare. Output always lands on the console so exit
// codes and any file content stay visible to the oracle's comparator.
func (r *renderer) execArgs(op *Op, src lang.Expr) ([]lang.Expr, []lang.NamedArg) {
	named := []lang.NamedArg{{Name: "stdout", Expr: id("out")}}
	switch r.prog.Manifest.Exe {
	case "/bin/cat":
		if op.Src != VarWS {
			return []lang.Expr{id("exe"), lang.NewList(src)}, named
		}
		return []lang.Expr{id("exe"), lang.NewList()}, named
	case "/bin/echo":
		return []lang.Expr{id("exe"), lang.NewList(str(op.Data))}, named
	default: // /bin/true
		return []lang.Expr{id("exe"), lang.NewList()}, named
	}
}
