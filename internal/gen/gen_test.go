package gen_test

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/lang"
)

// TestGeneratorDeterministic: the same seed always yields the same
// program and the same rendered sources — the reproducibility contract
// failure reports depend on.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p1 := gen.New(seed).Program()
		p2 := gen.New(seed).Program()
		cfg := gen.RenderConfig{Root: "/gen/p0/sbx", Console: "/dev/pts/0", PortBase: 21000}
		d1, m1 := p1.Render(cfg)
		d2, m2 := p2.Render(cfg)
		if d1 != d2 || m1 != m2 {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if p1.NumOps() != p2.NumOps() {
			t.Fatalf("seed %d: op counts differ", seed)
		}
	}
}

// TestRenderedProgramsParse: both variants of every generated program
// are valid SHILL (the module in the cap dialect, the driver ambient),
// and the sandboxed module's contract carries the manifest's privilege
// spelling.
func TestRenderedProgramsParse(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := gen.New(seed).Program()
		for _, amb := range []bool{false, true} {
			cfg := gen.RenderConfig{
				Root: "/gen/p1/v", Console: "/dev/pts/1",
				PortBase: 22000, Ambient: amb,
			}
			driver, module := p.Render(cfg)
			ds, err := lang.Parse(driver)
			if err != nil {
				t.Fatalf("seed %d ambient=%v: driver does not parse: %v\n%s", seed, amb, err, driver)
			}
			if ds.Dialect != lang.DialectAmbient {
				t.Fatalf("seed %d: driver dialect wrong", seed)
			}
			ms, err := lang.Parse(module)
			if err != nil {
				t.Fatalf("seed %d ambient=%v: module does not parse: %v\n%s", seed, amb, err, module)
			}
			if ms.Dialect != lang.DialectCap {
				t.Fatalf("seed %d: module dialect wrong", seed)
			}
			if amb && strings.Contains(module, "provide run :") {
				t.Fatalf("seed %d: ambient variant must not attenuate:\n%s", seed, module)
			}
		}
	}
}

// TestProgramClone: clones are deep — mutating a clone's op tree leaves
// the original untouched (minimization relies on this).
func TestProgramClone(t *testing.T) {
	p := gen.New(7).Program()
	c := p.Clone()
	if c.NumOps() != p.NumOps() {
		t.Fatalf("clone op count differs")
	}
	before := p.NumOps()
	c.Ops = c.Ops[:1]
	if len(c.Ops[0].Deps) > 0 {
		c.Ops[0].Deps = nil
	}
	if p.NumOps() != before {
		t.Fatalf("mutating the clone changed the original")
	}
}

// TestManifestNonEmptyGrants: contract rendering requires every
// privilege list to be non-empty, whatever the seed.
func TestManifestNonEmptyGrants(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		m := gen.New(seed).Program().Manifest
		if m.Grant.Empty() || m.OutGrant.Empty() || m.SockGrant.Empty() || m.ExeGrant.Empty() {
			t.Fatalf("seed %d: empty grant would render invalid contract syntax: %+v", seed, m)
		}
	}
}
