// Package gen is a grammar-based, seed-deterministic generator of SHILL
// programs for conformance testing (in the spirit of ShellFuzzer's
// grammar-directed shell fuzzing). Unlike the byte-level FuzzParse /
// FuzzEval engines, gen emits well-formed typed ASTs — capability
// operations, control flow, closures, pipes, sockets, sandboxed exec,
// and deliberate escape attempts — together with a Manifest of every
// path, port, and privilege the program may legitimately exercise.
//
// Every program renders in two paired variants (render.go): a
// capability-sandboxed form, whose provide contract attenuates the
// workspace to exactly the manifest's privilege grant, and an ambient
// form whose bare provide leaves the invoking user's full authority
// intact. The differential oracle (internal/oracle) executes both and
// checks the paper's §2.3 security property op by op.
//
// Determinism contract: New(seed).Program() always yields the same
// program, and rendering is pure — a failure reported by seed is
// reproducible from the seed alone.
package gen

import (
	"fmt"
	"math/rand"
	"path"

	"repro/internal/priv"
)

// OpKind enumerates generated operations.
type OpKind int

// Operation kinds. Cap-producing kinds may carry nested Deps executed
// only in their success branch.
const (
	OpLookup      OpKind = iota // lookup(dir, name) -> cap
	OpCreateFile                // create_file(dir, name) -> cap
	OpCreateDir                 // create_dir(dir, name) -> cap
	OpWrite                     // write(file, data)
	OpAppend                    // append(file, data)
	OpRead                      // read(file)
	OpSize                      // size(cap)
	OpPath                      // path(cap)
	OpContents                  // contents(dir), for-loop logging entries
	OpUnlink                    // unlink(dir, name)
	OpLink                      // link(dir, name, file)
	OpRename                    // rename(dir, a, dir2, b)
	OpSymlink                   // create_symlink(dir, name, target)
	OpReadSymlink               // read_symlink(dir, name) -> cap
	OpResolve                   // resolve(dir, relpath) -> cap (shill/filesys)
	OpPipe                      // create_pipe + write/read through both ends
	OpSock                      // listen/connect/accept/send/recv/close stereotype
	OpExec                      // exec(exe, argv, stdout=out) in a fresh sandbox
	OpEscape                    // lookup(dir, "..") — must fail everywhere
	OpExecEscape                // exec(exe, [outside-path]) — sandbox must deny
	OpCompute                   // pure closure arithmetic (language-only)

	numOpKinds
)

var opKindNames = [...]string{
	"lookup", "create_file", "create_dir", "write", "append", "read",
	"size", "path", "contents", "unlink", "link", "rename", "symlink",
	"read_symlink", "resolve", "pipe", "sock", "exec", "escape",
	"exec_escape", "compute",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one generated operation. Src/Src2 reference the variable that
// holds the operand capability: VarWS for the workspace parameter,
// otherwise the ID of the producing op. Deps run inside the op's
// success branch and may use its result.
type Op struct {
	ID    int
	Kind  OpKind
	Src   int
	Src2  int
	Name  string
	Name2 string
	Data  string
	Port  int // abstract port slot (render maps slot -> PortBase+slot)
	N     int // numeric payload for OpCompute
	Deps  []*Op
}

// VarWS is the Src value referencing the workspace parameter.
const VarWS = -1

// Label returns the status label the rendered program prints for this
// op ("op<ID>"); composite ops print sub-labels ("op<ID>.c").
func (o *Op) Label() string { return fmt.Sprintf("op%d", o.ID) }

// StageEntry is one pre-created workspace object, with DAC-relevant
// ownership and mode. Owner 0 is root; otherwise the unprivileged user.
type StageEntry struct {
	Rel  string // path relative to the workspace root
	Dir  bool
	Mode uint16
	Root bool // owned by root (DAC bites for the user)
	Data string
}

// Manifest declares everything a program may legitimately exercise:
// the per-parameter privilege grants, the staged workspace tree, the
// executable, and the abstract port slots. The oracle attributes each
// denial to the parameter owning the denied object and judges it
// against that parameter's grant (oracle.grantFor); escape ops target
// objects outside every entry here, whose grant is therefore empty.
type Manifest struct {
	Grant     priv.Set // workspace contract privileges (inherited at every depth)
	OutGrant  priv.Set // console capability privileges (always +append)
	SockGrant priv.Set // socket-factory privileges
	ExeGrant  priv.Set // executable file privileges
	Exe       string   // absolute path of the executable parameter
	Stage     []StageEntry
	Ports     int // number of abstract port slots used (0..Ports-1)
}

// Program is one generated conformance program: a typed op tree plus
// its manifest. Render (render.go) turns it into the paired script
// variants.
type Program struct {
	Seed     int64
	Ops      []*Op
	Manifest Manifest
}

// NumOps counts every op in the tree, composites included.
func (p *Program) NumOps() int {
	n := 0
	var walk func(ops []*Op)
	walk = func(ops []*Op) {
		for _, o := range ops {
			n++
			walk(o.Deps)
		}
	}
	walk(p.Ops)
	return n
}

// Clone deep-copies the program (minimization mutates copies).
func (p *Program) Clone() *Program {
	out := &Program{Seed: p.Seed, Manifest: p.Manifest}
	out.Manifest.Stage = append([]StageEntry(nil), p.Manifest.Stage...)
	var cloneOps func(ops []*Op) []*Op
	cloneOps = func(ops []*Op) []*Op {
		if ops == nil {
			return nil
		}
		cp := make([]*Op, len(ops))
		for i, o := range ops {
			oc := *o
			oc.Deps = cloneOps(o.Deps)
			cp[i] = &oc
		}
		return cp
	}
	out.Ops = cloneOps(p.Ops)
	return out
}

// Generator produces Programs from a deterministic PRNG.
type Generator struct {
	rng    *rand.Rand
	nextID int
}

// New returns a generator seeded deterministically.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), nextID: 0}
}

// chance reports true with probability p.
func (g *Generator) chance(p float64) bool { return g.rng.Float64() < p }

// pick returns a uniformly random element.
func pick[T any](g *Generator, xs []T) T { return xs[g.rng.Intn(len(xs))] }

// capVar tracks a variable holding a capability during generation.
type capVar struct {
	id    int // VarWS or producing op ID
	isDir bool
}

// genState carries the in-scope capability variables while the op tree
// is built.
type genState struct {
	g     *Generator
	prog  *Program
	names []string // plausible entry names (staged + created)
}

// workspace privilege pool, with inclusion probabilities. +stat is
// always granted so the set is never empty (an empty privilege list is
// not valid contract syntax).
var wsPrivPool = []struct {
	r priv.Right
	p float64
}{
	{priv.RLookup, 0.95},
	{priv.RContents, 0.80},
	{priv.RRead, 0.80},
	{priv.RWrite, 0.65},
	{priv.RAppend, 0.65},
	{priv.RPath, 0.85},
	{priv.RCreateFile, 0.70},
	{priv.RCreateDir, 0.60},
	{priv.RUnlinkFile, 0.55},
	{priv.RUnlinkDir, 0.45},
	{priv.RAddLink, 0.50},
	{priv.RLink, 0.50},
	{priv.RCreateSymlink, 0.50},
	{priv.RReadSymlink, 0.50},
	{priv.RTruncate, 0.40},
	{priv.RExec, 0.30},
}

var sockPrivPool = []struct {
	r priv.Right
	p float64
}{
	{priv.RSockBind, 0.85},
	{priv.RSockListen, 0.85},
	{priv.RSockAccept, 0.85},
	{priv.RSockConnect, 0.85},
	{priv.RSockSend, 0.85},
	{priv.RSockRecv, 0.85},
}

// executables the exe parameter may bind to. cat consumes a capability
// (or escape path) argument; echo takes a plain string; true takes
// nothing.
var exePool = []string{"/bin/cat", "/bin/echo", "/bin/true"}

// staged file modes with DAC variety (root-owned entries use the same
// pool, so some are unreadable or unwritable for the user in BOTH
// variants — exactly the conjunction cases worth generating).
var modePool = []uint16{0o644, 0o600, 0o444, 0o200, 0o000, 0o640}

// Program generates one program.
func (g *Generator) Program() *Program {
	prog := &Program{}
	m := &prog.Manifest

	// Privilege grants.
	m.Grant = priv.NewSet(priv.RStat)
	for _, e := range wsPrivPool {
		if g.chance(e.p) {
			m.Grant = m.Grant.Add(e.r)
		}
	}
	m.OutGrant = priv.NewSet(priv.RAppend)
	m.SockGrant = priv.NewSet(priv.RSockCreate)
	for _, e := range sockPrivPool {
		if g.chance(e.p) {
			m.SockGrant = m.SockGrant.Add(e.r)
		}
	}
	m.Exe = pick(g, exePool)
	m.ExeGrant = priv.NewSet(priv.RStat, priv.RRead, priv.RPath)
	if g.chance(0.8) {
		m.ExeGrant = m.ExeGrant.Add(priv.RExec)
	}

	// Staged workspace skeleton plus random extras.
	m.Stage = []StageEntry{
		{Rel: "a", Dir: true, Mode: 0o755},
		{Rel: "a/b", Dir: true, Mode: 0o755},
		{Rel: "f1.txt", Mode: 0o644, Data: "data-f1"},
		{Rel: "a/f2.txt", Mode: 0o644, Data: "data-f2"},
		{Rel: "a/b/deep.txt", Mode: 0o644, Data: "data-deep"},
		{Rel: "locked.txt", Mode: 0o600, Root: true, Data: "locked"},
		{Rel: "roroot.txt", Mode: 0o644, Root: true, Data: "root-readonly"},
	}
	for i, n := 0, g.rng.Intn(4); i < n; i++ {
		m.Stage = append(m.Stage, StageEntry{
			Rel:  fmt.Sprintf("x%d.txt", i),
			Mode: pick(g, modePool),
			Root: g.chance(0.4),
			Data: fmt.Sprintf("data-x%d", i),
		})
	}

	st := &genState{g: g, prog: prog}
	for _, e := range m.Stage {
		if !e.Dir {
			st.names = append(st.names, path.Base(e.Rel))
		}
	}
	st.names = append(st.names, "a", "b", "nope.txt")

	// Top-level ops against the workspace.
	ws := capVar{id: VarWS, isDir: true}
	nTop := 4 + g.rng.Intn(5)
	for i := 0; i < nTop; i++ {
		if op := st.genOp(ws, 2); op != nil {
			prog.Ops = append(prog.Ops, op)
		}
	}
	// An exec escape is only a real attempt when the executable opens
	// its path argument: echo prints the string and true ignores it.
	// Pin cat for programs that carry one, so every OpExecEscape truly
	// tries to reach outside the manifest.
	if prog.usesKind(OpExecEscape) {
		m.Exe = "/bin/cat"
	}
	return prog
}

// freshName mints a new entry name and records it as plausible for
// later lookups.
func (st *genState) freshName(prefix string, id int) string {
	n := fmt.Sprintf("%s%d", prefix, id)
	st.names = append(st.names, n)
	return n
}

func (st *genState) anyName() string { return pick(st.g, st.names) }

// genOp generates one op against the capability variable src. depth
// bounds dependent-op nesting.
func (st *genState) genOp(src capVar, depth int) *Op {
	g := st.g
	st.g.nextID++
	op := &Op{ID: st.g.nextID, Src: src.id}

	// Weighted kind choice, respecting the operand's kind.
	var kinds []OpKind
	if src.isDir {
		kinds = []OpKind{
			OpLookup, OpLookup, OpLookup, OpContents, OpContents,
			OpCreateFile, OpCreateFile, OpCreateDir, OpUnlink, OpRename,
			OpLink, OpSymlink, OpReadSymlink, OpResolve, OpSize, OpPath,
			OpPipe, OpSock, OpExec, OpEscape, OpExecEscape, OpCompute,
		}
	} else {
		kinds = []OpKind{
			OpRead, OpRead, OpWrite, OpWrite, OpAppend, OpSize, OpPath,
			OpExec, OpCompute,
		}
	}
	op.Kind = pick(g, kinds)

	switch op.Kind {
	case OpLookup, OpReadSymlink:
		op.Name = st.anyName()
		st.genDeps(op, capVar{id: op.ID, isDir: g.chance(0.5)}, depth)
	case OpCreateFile:
		op.Name = st.freshName("n", op.ID)
		st.genDeps(op, capVar{id: op.ID, isDir: false}, depth)
	case OpCreateDir:
		op.Name = st.freshName("d", op.ID)
		st.genDeps(op, capVar{id: op.ID, isDir: true}, depth)
	case OpResolve:
		// Mostly legitimate multi-component paths; sometimes a ".."
		// escape, which the capability layer must reject as EINVAL.
		if g.chance(0.25) {
			op.Name = "../" + st.anyName() // ".." escape: EINVAL in every variant
		} else {
			op.Name = pick(g, []string{"a/b", "a/f2.txt", "a/b/deep.txt", "a/nope"})
		}
		st.genDeps(op, capVar{id: op.ID, isDir: g.chance(0.5)}, depth)
	case OpWrite, OpAppend:
		op.Data = fmt.Sprintf("w%d-data", op.ID)
	case OpUnlink:
		op.Name = st.anyName()
	case OpLink:
		// link(dir, newname, file): the file operand is the same dir's
		// child by a fresh lookup in the rendered code; keep it simple
		// by linking the workspace file f1.txt when operating on ws.
		op.Name = st.freshName("l", op.ID)
		op.Name2 = "f1.txt"
	case OpRename:
		op.Name = st.anyName()
		op.Name2 = st.freshName("r", op.ID)
	case OpSymlink:
		op.Name = st.freshName("s", op.ID)
		op.Name2 = st.anyName() // single-component target
	case OpSock:
		op.Port = st.prog.Manifest.Ports
		st.prog.Manifest.Ports++
		op.Data = fmt.Sprintf("ping-%d", op.ID)
	case OpPipe:
		op.Data = fmt.Sprintf("pipe-%d", op.ID)
	case OpExec:
		// cat consumes the operand capability as an argument when it is
		// a file; echo gets a string; true gets nothing.
		op.Data = fmt.Sprintf("hello-%d", op.ID)
	case OpEscape:
		op.Name = ".."
	case OpExecEscape:
		op.Name = pick(g, []string{"/gen/secret/leak.txt", "/etc/passwd", "/gen/secret"})
	case OpCompute:
		op.N = 1 + g.rng.Intn(9)
	}
	return op
}

// genDeps populates an op's success-branch dependents.
func (st *genState) genDeps(op *Op, result capVar, depth int) {
	if depth <= 0 {
		return
	}
	n := st.g.rng.Intn(3)
	for i := 0; i < n; i++ {
		if d := st.genOp(result, depth-1); d != nil {
			op.Deps = append(op.Deps, d)
		}
	}
}
