package lang_test

// Differential tests between the tree-walk and compiled engines at the
// lang layer: the same source, run on identically-prepared worlds,
// must produce the same outcome (error text byte for byte), the same
// console bytes, the same filesystem, and the same export-call
// results. FuzzEngineDiff extends the comparison to arbitrary inputs:
//
//	go test ./internal/lang -fuzz=FuzzEngineDiff -fuzztime=60s
//
// The machine-level suite (shill/engine_diff_test.go) repeats the
// comparison over the case-study scripts and generator programs with
// denial sequences included; this file keeps the inner loop close to
// the interpreter so fuzz throughput stays high.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/internal/vfs"
)

// diffWorld builds one world for one engine run: a console device, a
// small home tree, and a scratch directory for cap-module probes.
func diffWorld(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	for path, data := range map[string]string{
		"/dev/console":         "",
		"/home/user/a.txt":     "alpha\n",
		"/home/user/b.txt":     "beta\n",
		"/home/user/sub/c.txt": "gamma\n",
	} {
		if _, err := k.FS.WriteFile(path, []byte(data), 0o666, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.FS.MkdirAll("/sandbox", 0o777, 0, 0); err != nil {
		t.Fatal(err)
	}
	return k, k.NewProc(0, 0)
}

// snapshotAll captures the whole filesystem (console bytes included).
func snapshotAll(k *kernel.Kernel) map[string]string {
	snap := make(map[string]string)
	k.FS.Walk(k.FS.Root(), func(path string, v *vfs.Vnode) {
		switch {
		case v.IsDir():
			snap[path] = "dir"
		case v.Type() == vfs.TypeSymlink:
			target, _ := v.Readlink()
			snap[path] = "link:" + target
		default:
			snap[path] = "file:" + string(v.Bytes())
		}
	})
	return snap
}

// engineOutcome is everything one engine run observably produced.
type engineOutcome struct {
	result string // run/load error text, or per-export call results
	fs     map[string]string
}

// runOnEngine executes src on a fresh world under one engine. Ambient
// sources run through RunAmbient; cap sources load as a module and
// every export is called once with a /sandbox capability (falling back
// to a nullary call on arity errors, like FuzzEval).
func runOnEngine(t *testing.T, src string, engine lang.Engine) engineOutcome {
	t.Helper()
	k, proc := diffWorld(t)
	it := lang.NewInterp(proc, lang.MapLoader{"m.cap": src, "self.cap": src}, prof.New())
	it.SetEngine(engine)

	script, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("runOnEngine on unparseable source: %v", err)
	}
	var out strings.Builder
	if script.Dialect == lang.DialectAmbient {
		if err := it.RunAmbient("script", src); err != nil {
			fmt.Fprintf(&out, "run error: %v\n", err)
		}
	} else {
		m, err := it.LoadModule("m.cap", true)
		if err != nil {
			fmt.Fprintf(&out, "load error: %v\n", err)
		} else {
			scratch := k.FS.MustResolve("/sandbox")
			names := make([]string, 0, len(m.Exports))
			for name := range m.Exports {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fn, ok := m.Exports[name].(interface {
					Call([]lang.Value, map[string]lang.Value) (lang.Value, error)
				})
				if !ok {
					fmt.Fprintf(&out, "%s = %s\n", name, lang.FormatValue(m.Exports[name]))
					continue
				}
				dcap := cap.NewForVnode(proc, scratch, priv.FullGrant())
				v, cerr := fn.Call([]lang.Value{dcap}, nil)
				if cerr != nil {
					fmt.Fprintf(&out, "%s(d) error: %v\n", name, cerr)
					v, cerr = fn.Call(nil, nil)
					if cerr != nil {
						fmt.Fprintf(&out, "%s() error: %v\n", name, cerr)
						continue
					}
				}
				fmt.Fprintf(&out, "%s -> %s\n", name, lang.FormatValue(v))
			}
		}
	}
	it.CloseLeftoverSockets()
	return engineOutcome{result: out.String(), fs: snapshotAll(k)}
}

// assertEngineMatch runs src under both engines and fails on any
// observable difference.
func assertEngineMatch(t *testing.T, src string) {
	t.Helper()
	tw := runOnEngine(t, src, lang.EngineTreeWalk)
	cp := runOnEngine(t, src, lang.EngineCompiled)
	if tw.result != cp.result {
		t.Fatalf("engines diverge on result:\ntree-walk:\n%s\ncompiled:\n%s\nscript:\n%s", tw.result, cp.result, src)
	}
	for path, was := range tw.fs {
		now, ok := cp.fs[path]
		if !ok {
			t.Fatalf("compiled engine missing %s\nscript:\n%s", path, src)
		}
		if now != was {
			t.Fatalf("engines diverge on %s:\ntree-walk: %q\ncompiled:  %q\nscript:\n%s", path, was, now, src)
		}
	}
	for path := range cp.fs {
		if _, ok := tw.fs[path]; !ok {
			t.Fatalf("compiled engine created %s\nscript:\n%s", path, src)
		}
	}
}

// TestEngineParity pins the compiled engine to the tree-walk engine on
// a corpus chosen for the places the two implementations differ most:
// scope materialization, flow-sensitive shadowing, closure capture in
// loops, constant folding, the ambient dialect restrictions, and every
// interpreter error message.
func TestEngineParity(t *testing.T) {
	cases := map[string]string{
		"arith-and-strings": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { x = 1 + 2 * 3; s = "n=" + x; s ++ "!"; };
`,
		"const-fold-divzero": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { 1 / 0; };
`,
		"plusplus-numbers": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { 1 ++ 2; };
`,
		"unary-minus-string": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { -"x"; };
`,
		"unbound": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { nope; };
`,
		"shadow-later-bind": `#lang shill/cap
n = 10;
f = fun() { n; };
provide probe : {} -> any;
probe = fun() { a = f(); n2 = a + 1; n2; };
`,
		"flow-sensitive-visibility": `#lang shill/cap
x = 1;
provide probe : {} -> any;
probe = fun() { y = x + 1; x = 99; y; };
`,
		"dup-binding": `#lang shill/cap
x = 1;
x = 2;
`,
		"dup-in-function": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { a = 1; a = 2; };
`,
		"if-scopes": `#lang shill/cap
provide probe : {} -> any;
probe = fun() {
  x = 1;
  if x < 2 then { y = x + 1; y * 10; } else { z = 0; z; }
};
`,
		"for-closure-capture": `#lang shill/cap
provide probe : {} -> any;
probe = fun() {
  fns = [];
  for i in range(3) { g = fun() { i; }; fns = fns ++ [g]; }
};
`,
		"for-frame-reuse": `#lang shill/cap
provide probe : {} -> any;
probe = fun() {
  acc = [];
  for i in range(4) { d = i * 2; e = d + 1; append_to = e; }
  acc;
};
`,
		"for-non-list": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { for x in 42 { x; } };
`,
		"recursion": `#lang shill/cap
fact = fun(n) { if n <= 1 then { 1; } else { n * fact(n - 1); } };
provide probe : {} -> any;
probe = fun() { fact(10); };
`,
		"deep-recursion-limit": `#lang shill/cap
spin = fun(n) { spin(n + 1); };
provide probe : {} -> any;
probe = fun() { spin(0); };
`,
		"not-a-function": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { x = 3; x(1); };
`,
		"named-args-on-closure": `#lang shill/cap
f = fun(a) { a; };
provide probe : {} -> any;
probe = fun() { f(a=1); };
`,
		"arity-error": `#lang shill/cap
f = fun(a, b) { a; };
provide probe : {} -> any;
probe = fun() { f(1); };
`,
		"dup-param": `#lang shill/cap
f = fun(a, a) { a; };
provide probe : {} -> any;
probe = fun() { f(1, 2); };
`,
		"anon-closure-name": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { g = fun(x) { x(); }; g(3); };
`,
		"nested-require": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { 1; };
f = fun() { require std/list; };
q = f();
`,
		"nested-provide": `#lang shill/cap
x = 1;
if x < 2 then { provide x : any; }
`,
		"provide-no-binding": `#lang shill/cap
provide ghost : any;
`,
		"require-cycle": `#lang shill/cap
require "self.cap";
probe = fun() { 1; };
provide probe : {} -> any;
`,
		"cap-fs-writes": `#lang shill/cap
provide probe : {d : any} -> any;
probe = fun(d) {
  w = create_file(d, "out.txt");
  write(w, "hello");
  read(w);
};
`,
		"cap-deny": `#lang shill/cap
provide probe : {d : dir(+lookup)} -> any;
probe = fun(d) { create_file(d, "nope.txt"); };
`,
		"ambient-basic": `#lang shill/ambient
h = open_dir("~");
msg = "files: " + length(contents(h));
write(stdout, msg);
`,
		"ambient-fun-def": `#lang shill/ambient
write(stdout, "before");
f = fun() { 1; };
`,
		"ambient-control-flow": `#lang shill/ambient
write(stdout, "pre");
if true then { 1; }
`,
		"ambient-dup": `#lang shill/ambient
x = 1;
x = 2;
`,
		"ambient-shadow-builtin": `#lang shill/ambient
open_file = 3;
`,
		"truthy-errors": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { if 3 then { 1; } };
`,
		"and-or": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { a = true && false; b = false || true; c = 1 < 2 && 2 < 3; a == false && b && c; };
`,
		"truthy-non-bool-and": `#lang shill/cap
provide probe : {} -> any;
probe = fun() { "x" && true; };
`,
		"list-fresh-alloc": `#lang shill/cap
provide probe : {} -> any;
probe = fun() {
  mk = fun() { [1, 2]; };
  a = mk();
  b = mk() ++ [3];
  length(a) + length(b);
};
`,
		"stdlib-require": `#lang shill/cap
require std/list;
provide probe : {} -> any;
probe = fun() { 1; };
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { assertEngineMatch(t, src) })
	}
}

// FuzzEngineDiff: any input that parses must behave identically under
// both engines.
func FuzzEngineDiff(f *testing.F) {
	f.Add("#lang shill/cap\nx = 1 + 2;\n")
	f.Add("#lang shill/ambient\nwrite(stdout, \"hi\");\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { for n in contents(d) { unlink(lookup(d, n)); } };\n")
	f.Add("#lang shill/cap\nf = fun(x) { f(x); };\nprovide p : {d : any} -> any;\np = fun(d) { f(d); };\n")
	f.Add("#lang shill/cap\nrequire std/list;\nprovide p : {} -> any;\np = fun() { 1; };\n")
	f.Add("#lang shill/cap\nx = 1;\nif x < 2 then { y = 3; } else { y = 4; }\n")
	for i := 0; i < 8; i++ {
		p := gen.New(int64(4000 + i)).Program()
		driver, module := p.Render(gen.RenderConfig{
			Root: "/gen/fuzz", Console: "/dev/console", PortBase: 24000,
		})
		f.Add(driver)
		f.Add(module)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := lang.Parse(src); err != nil {
			return
		}
		assertEngineMatch(t, src)
	})
}
