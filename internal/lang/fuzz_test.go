package lang_test

// Go-native fuzz targets for the SHILL interpreter, in the spirit of
// ShellFuzzer's grammar-based fuzzing of shell implementations: the
// parser must never panic on arbitrary input, and evaluating an
// arbitrary capability-safe script inside a sandbox must never reach
// state outside the capabilities it was granted. Run the engines with
//
//	go test ./internal/lang -fuzz=FuzzParse -fuzztime=30s
//	go test ./internal/lang -fuzz=FuzzEval  -fuzztime=30s
//
// Plain `go test` replays only the seed corpus, which keeps CI fast.

import (
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/internal/vfs"
)

// addGenSeeds seeds a fuzz target with grammar-generated structured
// scripts (the ShellFuzzer lesson: byte-level mutation finds far more
// when it starts from grammatically rich inputs). Committed corpus
// files under testdata/fuzz mirror a selection of these so `go test`
// replays them even without this helper.
func addGenSeeds(f *testing.F, modulesOnly bool, n int) {
	for i := 0; i < n; i++ {
		p := gen.New(int64(1000 + i)).Program()
		driver, module := p.Render(gen.RenderConfig{
			Root: "/gen/fuzz", Console: "/dev/console", PortBase: 23000,
		})
		f.Add(module)
		if !modulesOnly {
			f.Add(driver)
		}
	}
}

// FuzzParse: the parser may reject anything but must always return.
func FuzzParse(f *testing.F) {
	for _, src := range core.ScriptFiles() {
		f.Add(src)
	}
	f.Add("")
	f.Add("#lang shill/cap\n")
	f.Add("#lang shill/ambient\nx = 1;\n")
	f.Add("#lang shill/cap\nf = fun(x) { f(x); };\n")
	f.Add("#lang shill/cap\nx = " + strings.Repeat("(", 512) + "1" + strings.Repeat(")", 512) + ";\n")
	f.Add("#lang shill/cap\nprovide p : {d : dir(+lookup)} -> any;\np = fun(d) { lookup(d, \"..\"); };\n")
	addGenSeeds(f, false, 12)
	f.Fuzz(func(t *testing.T, src string) {
		// A panic (or a hang) fails the fuzz run; any error is fine.
		_, _ = lang.Parse(src)
	})
}

// TestParseDeepNestingNoOverflow: inputs nested past maxParseDepth must
// come back as a syntax error, not an unrecoverable stack overflow.
func TestParseDeepNestingNoOverflow(t *testing.T) {
	for name, src := range map[string]string{
		"parens":   "#lang shill/cap\nx = " + strings.Repeat("(", 100_000) + "1" + strings.Repeat(")", 100_000) + ";\n",
		"lists":    "#lang shill/cap\nx = " + strings.Repeat("[", 100_000) + "1" + strings.Repeat("]", 100_000) + ";\n",
		"unary":    "#lang shill/cap\nx = " + strings.Repeat("!", 100_000) + "true;\n",
		"blocks":   "#lang shill/cap\n" + strings.Repeat("if true { ", 100_000) + "1;" + strings.Repeat(" }", 100_000) + "\n",
		"contract": "#lang shill/cap\nprovide p : " + strings.Repeat("listof ", 100_000) + "any -> any;\n",
	} {
		if _, err := lang.Parse(src); err == nil {
			t.Errorf("%s: deeply nested input parsed without error", name)
		}
	}
}

// fuzzWorld builds a minimal machine for one eval attempt: a kernel
// with the SHILL module, a secret tree the sandbox is NOT granted, and
// a scratch directory it is. Returns the sandboxed process and the
// scratch directory vnode.
func fuzzWorld(t *testing.T) (*kernel.Kernel, *kernel.Proc, *vfs.Vnode) {
	t.Helper()
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/secret/secret.txt", []byte("TOP-SECRET"), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.MkdirAll("/sandbox", 0o777, 1001, 1001); err != nil {
		t.Fatal(err)
	}
	launcher := k.NewProc(1001, 1001)
	child, err := launcher.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	scratch := k.FS.MustResolve("/sandbox")
	if err := child.ShillGrant(scratch, priv.FullGrant()); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	return k, child, scratch
}

// snapshotOutside captures every path outside /sandbox with its
// observable content, so escapes show up as a diff.
func snapshotOutside(k *kernel.Kernel) map[string]string {
	snap := make(map[string]string)
	k.FS.Walk(k.FS.Root(), func(path string, v *vfs.Vnode) {
		if path == "/sandbox" || strings.HasPrefix(path, "/sandbox/") {
			return
		}
		switch {
		case v.IsDir():
			snap[path] = "dir"
		case v.Type() == vfs.TypeSymlink:
			target, _ := v.Readlink()
			snap[path] = "link:" + target
		default:
			snap[path] = "file:" + string(v.Bytes())
		}
	})
	return snap
}

func diffSnapshots(t *testing.T, before, after map[string]string, src string) {
	t.Helper()
	for path, was := range before {
		now, ok := after[path]
		if !ok {
			t.Fatalf("script removed %s\nscript:\n%s", path, src)
		}
		if now != was {
			t.Fatalf("script altered %s: %q -> %q\nscript:\n%s", path, was, now, src)
		}
	}
	for path := range after {
		if _, ok := before[path]; !ok {
			t.Fatalf("script created %s outside the sandbox\nscript:\n%s", path, src)
		}
	}
}

// FuzzEval: load arbitrary source as a capability-safe module inside a
// sandbox granted only /sandbox, call its exports with a /sandbox
// capability, and verify nothing outside the sandbox changed. Panics
// and hangs fail the run; script-level errors are expected and fine.
func FuzzEval(f *testing.F) {
	f.Add("#lang shill/cap\nx = 1 + 2;\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { create_file(d, \"out.txt\"); };\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { lookup(d, \"..\"); };\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { up = lookup(d, \"..\"); lookup(up, \"secret\"); };\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { w = create_file(d, \"a\"); write(w, \"data\"); read(w); };\n")
	f.Add("#lang shill/cap\nprovide p : {d : any} -> any;\np = fun(d) { for n in contents(d) { unlink(lookup(d, n)); } };\n")
	f.Add("#lang shill/cap\nf = fun(x) { f(x); };\nprovide p : {d : any} -> any;\np = fun(d) { f(d); };\n")
	// Generated cap modules: loading evaluates their top level and the
	// provide contract machinery; the export calls below then exercise
	// whatever arity happens to match.
	addGenSeeds(f, true, 8)
	f.Fuzz(func(t *testing.T, src string) {
		k, proc, scratch := fuzzWorld(t)
		before := snapshotOutside(k)
		it := lang.NewInterp(proc, lang.MapLoader{"fuzz.cap": src}, prof.New())
		m, err := it.LoadModule("fuzz.cap", true)
		if err == nil {
			dcap := cap.NewForVnode(proc, scratch, priv.FullGrant())
			for _, v := range m.Exports {
				fn, ok := v.(interface {
					Call([]lang.Value, map[string]lang.Value) (lang.Value, error)
				})
				if !ok {
					continue
				}
				if _, cerr := fn.Call([]lang.Value{dcap}, nil); cerr != nil {
					_, _ = fn.Call(nil, nil) // wrong arity: retry nullary
				}
			}
		}
		diffSnapshots(t, before, snapshotOutside(k), src)
	})
}
