package lang

import (
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/kernel"
	"repro/internal/priv"
)

// fsProbe loads a module exporting probe : {root : full dir} -> any and
// runs it against a fresh tree.
func fsProbe(t *testing.T, body string, files map[string]string) (Value, error) {
	t.Helper()
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap
require shill/contracts;

provide probe : {root : full_privileges && is_dir} -> any;

probe = fun(root) {
` + body + `
};
`})
	k := it.Runtime.Kernel()
	if _, err := k.FS.MkdirAll("/tree", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	for path, data := range files {
		if _, err := k.FS.WriteFile("/tree"+path, []byte(data), 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	root := cap.NewDir(it.Runtime, k.FS.MustResolve("/tree"), priv.FullGrant())
	return m.Exports["probe"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{root}, nil)
}

func TestBuiltinFileOps(t *testing.T) {
	got, err := fsProbe(t, `
  f = lookup(root, "a.txt");
  write(f, "fresh");
  append(f, "+more");
  read(f);`, map[string]string{"/a.txt": "old"})
	if err != nil || got != "fresh+more" {
		t.Fatalf("file ops = %v, %v", got, err)
	}
}

func TestBuiltinCreateUnlinkRename(t *testing.T) {
	got, err := fsProbe(t, `
  d = create_dir(root, "sub");
  f = create_file(d, "x.txt");
  write(f, "data");
  link(d, "alias", f);
  rename(d, "x.txt", d, "y.txt");
  a = read(lookup(d, "alias"));
  b = read(lookup(d, "y.txt"));
  unlink(d, "alias");
  unlink(d, "y.txt");
  unlink(root, "sub");
  a + "/" + b;`, nil)
	if err != nil || got != "data/data" {
		t.Fatalf("create/unlink/rename = %v, %v", got, err)
	}
}

func TestBuiltinMetadata(t *testing.T) {
	got, err := fsProbe(t, `
  f = lookup(root, "a.txt");
  name(f) + ":" + size(f) + ":" + path(f) + ":" + to_string(has_ext(f, "txt"));`,
		map[string]string{"/a.txt": "12345"})
	if err != nil || got != "a.txt:5:/tree/a.txt:true" {
		t.Fatalf("metadata = %v, %v", got, err)
	}
}

func TestBuiltinSymlinkOps(t *testing.T) {
	got, err := fsProbe(t, `
  create_symlink(root, "ln", "a.txt");
  target = read_symlink(root, "ln");
  read(target);`, map[string]string{"/a.txt": "via-link"})
	if err != nil || got != "via-link" {
		t.Fatalf("symlink ops = %v, %v", got, err)
	}
}

func TestBuiltinUnlinkCap(t *testing.T) {
	got, err := fsProbe(t, `
  f = lookup(root, "a.txt");
  unlink_cap(root, "a.txt", f);
  is_syserror(lookup(root, "a.txt"));`, map[string]string{"/a.txt": "x"})
	if err != nil || got != true {
		t.Fatalf("unlink_cap = %v, %v", got, err)
	}
}

func TestBuiltinPipes(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap

provide probe : {pf : pipe_factory} -> any;

probe = fun(pf) {
  ends = create_pipe(pf);
  r = nth(ends, 0);
  w = nth(ends, 1);
  append(w, "ping");
  msg = read(r);
  close(w);
  close(r);
  msg;
};
`})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	pf := cap.NewPipeFactory(it.Runtime)
	got, err := m.Exports["probe"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{pf}, nil)
	if err != nil || got != "ping" {
		t.Fatalf("pipes = %v, %v", got, err)
	}
}

func TestBuiltinTypeErrors(t *testing.T) {
	cases := []string{
		`read(42);`,
		`lookup(root, 42);`,
		`append(lookup(root, "a.txt"), 42);`,
		`has_ext(root, 42);`,
		`create_file(root, 42);`,
		`split("a", 1);`,
		`nth("not a list", 0);`,
		`length(42);`,
		`strlen(42);`,
	}
	for _, body := range cases {
		if _, err := fsProbe(t, body, map[string]string{"/a.txt": "x"}); err == nil {
			t.Errorf("%q did not error", body)
		}
	}
	// Kind mismatches on capabilities yield syserror values, not fatal
	// errors: scripts can probe and recover (Figure 3's is_syserror).
	got, err := fsProbe(t, `is_syserror(write(root, "x"));`, nil)
	if err != nil || got != true {
		t.Fatalf("write on a dir = %v, %v; want syserror value", got, err)
	}
}

func TestExecArgumentValidation(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap

provide bad_argv : {f : file(+exec, +read, +path)} -> any;
provide bad_named : {f : file(+exec, +read, +path)} -> any;

bad_argv = fun(f) { exec(f, "not-a-list"); };
bad_named = fun(f) { exec(f, [], extras = "not-a-list"); };
`})
	k := it.Runtime.Kernel()
	k.RegisterBinary("true", func(p *kernel.Proc, argv []string) int { return 0 })
	if _, err := k.FS.WriteFile("/bin/true", []byte("#!bin:true\n"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	exe := cap.NewFile(it.Runtime, k.FS.MustResolve("/bin/true"), priv.FullGrant())
	for _, name := range []string{"bad_argv", "bad_named"} {
		if _, err := m.Exports[name].(interface {
			Call([]Value, map[string]Value) (Value, error)
		}).Call([]Value{exe}, nil); err == nil {
			t.Errorf("%s did not error", name)
		}
	}
}

func TestAmbientOpenFailuresAreSyserrors(t *testing.T) {
	it := testInterp(t, MapLoader{})
	err := it.RunAmbient("m.ambient", `#lang shill/ambient
missing = open_file("/no/such/file");
wrong = open_dir("/home/user/nonexistent");
`)
	// Ambient opens of missing paths yield syserror values, not fatal
	// errors; binding them is fine.
	if err != nil {
		t.Fatalf("ambient open failures should be values: %v", err)
	}
}

func TestSealedOpsThroughBuiltins(t *testing.T) {
	// has_ext and name work on sealed capabilities; read beyond the
	// bound does not.
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap

provide walk :
  forall X with {+lookup, +contents} .
  {cur : X} -> is_string;

walk = fun(cur) {
  names = contents(cur);
  n = nth(names, 0);
  child = lookup(cur, n);
  name(child);
};
`})
	k := it.Runtime.Kernel()
	if _, err := k.FS.WriteFile("/tree/only.txt", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	root := cap.NewDir(it.Runtime, k.FS.MustResolve("/tree"), priv.FullGrant())
	got, err := m.Exports["walk"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{root}, nil)
	if err != nil || got != "only.txt" {
		t.Fatalf("sealed walk = %v, %v", got, err)
	}
}

func TestViolationMessagesNameTheParty(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap

provide f : {n : is_num} -> is_num;
f = fun(n) { "not a number"; };
`})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Exports["f"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{1.0}, nil)
	if err == nil || !strings.Contains(err.Error(), "m.cap") {
		t.Fatalf("postcondition violation should blame the module: %v", err)
	}
}
