package lang

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/priv"
)

// capCall extracts a callable export.
func capCall(t *testing.T, m *Module, name string) func([]Value) (Value, error) {
	t.Helper()
	fn, ok := m.Exports[name].(interface {
		Call([]Value, map[string]Value) (Value, error)
	})
	if !ok {
		t.Fatalf("export %s is not callable", name)
	}
	return func(args []Value) (Value, error) { return fn.Call(args, nil) }
}

func TestFilesysResolve(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap
require shill/filesys;

provide deep_read : {root : dir(+lookup, +read, +contents, +stat, +path)} -> any;
provide bad_walk : {root : dir(+lookup)} -> any;

deep_read = fun(root) {
  f = resolve(root, "a/b/c.txt");
  if is_syserror(f) then { f; } else { read(f); }
};

bad_walk = fun(root) {
  resolve(root, "a/../secret");
};
`})
	k := it.Runtime.Kernel()
	if _, err := k.FS.WriteFile("/tree/a/b/c.txt", []byte("deep"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.WriteFile("/secret", []byte("no"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	root := cap.NewDir(it.Runtime, k.FS.MustResolve("/tree"), priv.FullGrant())

	got, err := capCall(t, m, "deep_read")([]Value{root})
	if err != nil || got != "deep" {
		t.Fatalf("deep_read = %v, %v", got, err)
	}
	// ".." components are rejected: capability safety holds through the
	// filesys convenience layer.
	got, err = capCall(t, m, "bad_walk")([]Value{root})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(SysError); !ok {
		t.Fatalf("resolve with .. = %v", got)
	}
}

func TestFilesysMkdirsAndExistsIn(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap
require shill/filesys;

provide setup : {root : dir(+lookup, +contents, +stat, +path, +create_dir, +create_file)} -> is_bool;

setup = fun(root) {
  work = mkdirs(root, "x/y/z");
  create_file(work, "marker");
  exists_in(work, "marker") && !exists_in(work, "other");
};
`})
	k := it.Runtime.Kernel()
	if _, err := k.FS.MkdirAll("/tree", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	root := cap.NewDir(it.Runtime, k.FS.MustResolve("/tree"), priv.FullGrant())
	got, err := capCall(t, m, "setup")([]Value{root})
	if err != nil || got != true {
		t.Fatalf("setup = %v, %v", got, err)
	}
	if _, err := k.FS.Resolve("/tree/x/y/z/marker"); err != nil {
		t.Fatal("mkdirs tree missing")
	}
}

func TestIOFprintf(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap
require shill/io;

provide report : {out : file(+append)} -> void;

report = fun(out) {
  fprintf(out, "count=%d name=%s\n", 3, "x");
};
`})
	k := it.Runtime.Kernel()
	if _, err := k.FS.WriteFile("/log.txt", nil, 0o666, 0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	out := cap.NewFile(it.Runtime, k.FS.MustResolve("/log.txt"), priv.FullGrant())
	if _, err := capCall(t, m, "report")([]Value{out}); err != nil {
		t.Fatal(err)
	}
	if got := string(k.FS.MustResolve("/log.txt").Bytes()); got != "count=3 name=x\n" {
		t.Fatalf("fprintf wrote %q", got)
	}
}
