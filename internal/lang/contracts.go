package lang

import (
	"fmt"
	"strings"

	"repro/internal/contract"
	"repro/internal/priv"
)

// polarity tracks which way values flow relative to the protected
// function body, determining whether a polymorphic variable occurrence
// seals (inbound) or unseals (outbound) — §2.4.2's dynamic sealing.
type polarity int

const (
	polarityOut polarity = iota // value flows out of the body
	polarityIn                  // value flows into the body
)

func (p polarity) flip() polarity {
	if p == polarityIn {
		return polarityOut
	}
	return polarityIn
}

// polyPair carries the seal/unseal contract pair for one quantified
// variable.
type polyPair struct {
	seal, unseal contract.Contract
}

// evalContract converts a contract AST into a contract value.
func (it *Interp) evalContract(ce CExpr, env *Env, pol polarity, polys map[string]polyPair) (contract.Contract, error) {
	switch c := ce.(type) {
	case *CIdent:
		if pair, ok := polys[c.Name]; ok {
			if pol == polarityIn {
				return pair.seal, nil
			}
			return pair.unseal, nil
		}
		switch c.Name {
		case "void":
			return contract.Void, nil
		case "any":
			return contract.Any, nil
		case "native_wallet":
			return contract.NativeWallet, nil
		}
		v, ok := env.Lookup(c.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: unbound contract %q", c.Pos(), c.Name)
		}
		switch t := v.(type) {
		case contract.Contract:
			return t, nil
		case contract.Callable:
			// A user-defined predicate written in SHILL (§2.4.2).
			return userPred(c.Name, t), nil
		default:
			return nil, fmt.Errorf("line %d: %q is not a contract", c.Pos(), c.Name)
		}
	case *CCap:
		grant, err := privGrant(c.Privs)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", c.Pos(), err)
		}
		var mask contract.CapKindMask
		switch c.Kind {
		case "file":
			mask = contract.MaskFile
		case "dir":
			mask = contract.MaskDir
		case "pipe":
			mask = contract.MaskPipe
		case "pipe_factory":
			mask = contract.MaskPipeFactory
		case "socket_factory":
			mask = contract.MaskSocketFactory
		default:
			return nil, fmt.Errorf("line %d: unknown capability contract %q", c.Pos(), c.Kind)
		}
		if len(c.Privs) == 0 {
			// Bare factory contracts demand only their own privilege
			// family; pipe factories carry no checked privileges.
			switch c.Kind {
			case "socket_factory":
				grant = priv.GrantOf(priv.AllSock)
			default:
				grant = nil // kind check only
			}
		}
		return &contract.CapC{Mask: mask, Grant: grant}, nil
	case *COr:
		var branches []contract.Contract
		for _, b := range c.Branches {
			bc, err := it.evalContract(b, env, pol, polys)
			if err != nil {
				return nil, err
			}
			branches = append(branches, bc)
		}
		return &contract.OrC{Branches: branches}, nil
	case *CAnd:
		var branches []contract.Contract
		for _, b := range c.Branches {
			bc, err := it.evalContract(b, env, pol, polys)
			if err != nil {
				return nil, err
			}
			branches = append(branches, bc)
		}
		return &contract.AndC{Branches: branches}, nil
	case *CListOf:
		elem, err := it.evalContract(c.Elem, env, pol, polys)
		if err != nil {
			return nil, err
		}
		return &contract.ListC{Elem: elem}, nil
	case *CFunc:
		return it.evalFuncContract(c, env, pol, polys)
	case *CForall:
		bound, err := privGrant(c.Bound)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", c.Pos(), err)
		}
		bodyFn, ok := c.Body.(*CFunc)
		if !ok {
			return nil, fmt.Errorf("line %d: forall body must be a function contract", c.Pos())
		}
		// Validate eagerly so later instantiations cannot fail.
		dummy := polyPair{seal: contract.Any, unseal: contract.Any}
		valPolys := withPoly(polys, c.Var, dummy)
		if _, err := it.evalFuncContract(bodyFn, env, pol, valPolys); err != nil {
			return nil, err
		}
		captured := polys
		return &contract.PolyC{
			Var:   c.Var,
			Bound: bound,
			Body: func(sealVar, unsealVar contract.Contract) *contract.FuncC {
				pp := withPoly(captured, c.Var, polyPair{seal: sealVar, unseal: unsealVar})
				fc, err := it.evalFuncContract(bodyFn, env, polarityOut, pp)
				if err != nil {
					// Unreachable: validated above.
					panic("lang: forall body re-evaluation failed: " + err.Error())
				}
				return fc
			},
		}, nil
	}
	return nil, fmt.Errorf("unknown contract node %T", ce)
}

func withPoly(polys map[string]polyPair, name string, pair polyPair) map[string]polyPair {
	out := make(map[string]polyPair, len(polys)+1)
	for k, v := range polys {
		out[k] = v
	}
	out[name] = pair
	return out
}

func (it *Interp) evalFuncContract(c *CFunc, env *Env, pol polarity, polys map[string]polyPair) (*contract.FuncC, error) {
	fc := &contract.FuncC{}
	for _, p := range c.Params {
		// Arguments flow opposite to the function value itself.
		pc, err := it.evalContract(p.C, env, pol.flip(), polys)
		if err != nil {
			return nil, err
		}
		fc.Params = append(fc.Params, contract.Param{Name: p.Name, C: pc})
	}
	for _, p := range c.Named {
		pc, err := it.evalContract(p.C, env, pol.flip(), polys)
		if err != nil {
			return nil, err
		}
		if fc.Named == nil {
			fc.Named = make(map[string]contract.Contract)
		}
		fc.Named[p.Name] = pc
	}
	if c.Result != nil {
		if id, ok := c.Result.(*CIdent); !ok || id.Name != "void" {
			rc, err := it.evalContract(c.Result, env, pol, polys)
			if err != nil {
				return nil, err
			}
			fc.Result = rc
		} else {
			fc.Result = contract.Void
		}
	}
	return fc, nil
}

// userPred wraps a SHILL function as a flat contract: the function is
// called with the value and must return a boolean.
func userPred(name string, fn contract.Callable) contract.Contract {
	return &contract.Pred{Name: name, Fn: func(v contract.Value) bool {
		out, err := fn.Call([]contract.Value{v}, nil)
		if err != nil {
			return false
		}
		b, ok := out.(bool)
		return ok && b
	}}
}

// privGrant converts privilege syntax (+read, +lookup with {...}) into a
// Grant. Privilege names written with underscores map onto the paper's
// hyphenated spelling (+create_file → create-file).
func privGrant(privs []CPriv) (*priv.Grant, error) {
	g := &priv.Grant{}
	for _, p := range privs {
		r, err := priv.ParseRight(strings.ReplaceAll(p.Name, "_", "-"))
		if err != nil {
			return nil, err
		}
		g.Rights = g.Rights.Add(r)
		switch {
		case p.With != nil:
			sub, err := privGrant(p.With)
			if err != nil {
				return nil, err
			}
			if !r.Deriving() {
				return nil, fmt.Errorf("privilege +%s does not take a with-modifier", p.Name)
			}
			if g.Derived == nil {
				g.Derived = make(map[priv.Right]*priv.Grant)
			}
			g.Derived[r] = sub
		case p.WithRef != "":
			if p.WithRef != "full_privileges" {
				return nil, fmt.Errorf("unknown with-reference %q (only full_privileges is supported)", p.WithRef)
			}
			if g.Derived == nil {
				g.Derived = make(map[priv.Right]*priv.Grant)
			}
			g.Derived[r] = priv.FullGrant()
		}
	}
	return g, nil
}
