package lang

// Node is any AST node; Line supports error reporting.
type Node interface{ Pos() int }

type base struct{ Line int }

func (b base) Pos() int { return b.Line }

// --- statements ---

// Stmt is a statement node.
type Stmt interface{ Node }

// RequireStmt imports a module: require shill/native; or require "x.cap";
type RequireStmt struct {
	base
	Module string // "shill/native" or a file name
	IsFile bool
}

// ProvideStmt exports a binding under a contract:
// provide find : {cur : ...} -> void;
type ProvideStmt struct {
	base
	Name     string
	Contract CExpr // nil means the trivial contract
}

// BindStmt is an immutable binding: name = expr;
type BindStmt struct {
	base
	Name string
	Expr Expr
}

// IfStmt is "if e then body [else body]".
type IfStmt struct {
	base
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForStmt is "for name in expr { body }".
type ForStmt struct {
	base
	Var  string
	Seq  Expr
	Body []Stmt
}

// ExprStmt is a bare expression statement.
type ExprStmt struct {
	base
	Expr Expr
}

// --- expressions ---

// Expr is an expression node.
type Expr interface{ Node }

// Ident references a binding.
type Ident struct {
	base
	Name string
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	base
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// ListLit is [e1, e2, ...].
type ListLit struct {
	base
	Elems []Expr
}

// FunLit is fun(a, b) { body }.
type FunLit struct {
	base
	Params []string
	Body   []Stmt
}

// CallExpr is f(a, b, name = v).
type CallExpr struct {
	base
	Fn    Expr
	Args  []Expr
	Named []NamedArg
}

// NamedArg is a keyword argument in a call.
type NamedArg struct {
	Name string
	Expr Expr
}

// UnaryExpr is !e or -e.
type UnaryExpr struct {
	base
	Op string
	X  Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	base
	Op   string
	L, R Expr
}

// --- contract expressions ---

// CExpr is a contract-language node.
type CExpr interface{ Node }

// CIdent references a contract binding (is_file, readonly, X, a
// user-defined predicate, ...).
type CIdent struct {
	base
	Name string
}

// CCap is file(+read, ...), dir(...), pipe(...), pipe_factory,
// socket_factory(...).
type CCap struct {
	base
	Kind  string // "file", "dir", "pipe", "pipe_factory", "socket_factory"
	Privs []CPriv
}

// CPriv is one privilege inside a capability contract, optionally with a
// derivation modifier: +lookup with {+path, +stat}.
type CPriv struct {
	Name string
	With []CPriv // nil: inherit
	// WithRef names a contract identifier after "with" (e.g. "with
	// full_privileges"); mutually exclusive with With.
	WithRef string
}

// COr is C1 \/ C2.
type COr struct {
	base
	Branches []CExpr
}

// CAnd is C1 && C2.
type CAnd struct {
	base
	Branches []CExpr
}

// CFunc is {a : C, b : C} -> R (Params) or X -> R (single anonymous
// parameter).
type CFunc struct {
	base
	Params []CParam
	Named  []CParam
	Result CExpr // nil = void
}

// CParam is one parameter of a function contract.
type CParam struct {
	Name string
	C    CExpr
}

// CForall is forall X with {privs} . body.
type CForall struct {
	base
	Var   string
	Bound []CPriv
	Body  CExpr
}

// CListOf is listof C.
type CListOf struct {
	base
	Elem CExpr
}

// Script is a parsed SHILL script.
type Script struct {
	Dialect Dialect
	Stmts   []Stmt
}
