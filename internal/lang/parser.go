package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse lexes and parses a complete script (including its #lang line).
func Parse(src string) (*Script, error) {
	dialect, body, err := SplitLang(src)
	if err != nil {
		return nil, err
	}
	toks, err := Lex(body)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(TEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Script{Dialect: dialect, Stmts: stmts}, nil
}

type parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxParseDepth bounds recursive-descent nesting (parenthesised
// expressions, list literals, nested blocks, unary chains, contract
// atoms). Without it a deeply nested input — the kind a fuzzer grows
// from a parenthesised seed — overflows the goroutine stack, which Go
// turns into an unrecoverable runtime death rather than a returnable
// error. Mirrors maxCallDepth on the eval side.
const maxParseDepth = 2048

// enter/leave bracket every self-recursive production.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("nesting depth exceeds %d", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) at(kind TokKind) bool { return p.cur().Kind == kind }

func (p *parser) is(text string) bool { return p.cur().Is(text) }

func (p *parser) advance() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) (Token, error) {
	if !p.is(text) {
		return p.cur(), p.errf("expected %q, found %s", text, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{t.Line, t.Col, fmt.Sprintf(format, args...)}
}

// --- statements ---

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.Is("require"):
		return p.requireStmt()
	case t.Is("provide"):
		return p.provideStmt()
	case t.Is("if"):
		return p.ifStmt()
	case t.Is("for"):
		return p.forStmt()
	case t.Kind == TIdent && p.peek().Is("="):
		name := p.advance().Text
		p.advance() // '='
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BindStmt{base{t.Line}, name, e}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{base{t.Line}, e}, nil
	}
}

func (p *parser) requireStmt() (Stmt, error) {
	t := p.advance() // require
	if p.at(TString) {
		name := p.advance().Text
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &RequireStmt{base{t.Line}, name, true}, nil
	}
	// Module path: ident ("/" ident)*
	if !p.at(TIdent) {
		return nil, p.errf("require expects a module path or string, found %s", p.cur())
	}
	var parts []string
	parts = append(parts, p.advance().Text)
	for p.is("/") {
		p.advance()
		if !p.at(TIdent) {
			return nil, p.errf("malformed module path")
		}
		parts = append(parts, p.advance().Text)
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &RequireStmt{base{t.Line}, strings.Join(parts, "/"), false}, nil
}

func (p *parser) provideStmt() (Stmt, error) {
	t := p.advance() // provide
	if !p.at(TIdent) {
		return nil, p.errf("provide expects a name, found %s", p.cur())
	}
	name := p.advance().Text
	var c CExpr
	if p.is(":") {
		p.advance()
		var err error
		c, err = p.contractExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ProvideStmt{base{t.Line}, name, c}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.advance() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("then"); err != nil {
		return nil, err
	}
	thenBody, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	var elseBody []Stmt
	if p.is("else") {
		p.advance()
		elseBody, err = p.blockOrStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{base{t.Line}, cond, thenBody, elseBody}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.advance() // for
	if !p.at(TIdent) {
		return nil, p.errf("for expects a variable name")
	}
	name := p.advance().Text
	if _, err := p.expect("in"); err != nil {
		return nil, err
	}
	seq, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{base{t.Line}, name, seq, body}, nil
}

func (p *parser) blockOrStmt() ([]Stmt, error) {
	if p.is("{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.is("}") && !p.at(TEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return stmts, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.is("||") {
		t := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, "||", l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.is("&&") {
		t := p.advance()
		r, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, "&&", l, r}
	}
	return l, nil
}

func (p *parser) eqExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.is("==") || p.is("!=") {
		t := p.advance()
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.is("<") || p.is(">") || p.is("<=") || p.is(">=") {
		t := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.is("+") || p.is("-") || p.is("++") {
		t := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.is("*") || p.is("/") {
		t := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base{t.Line}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.is("!") || p.is("-") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		t := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base{t.Line}, t.Text, x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.is("(") {
		t := p.advance()
		var args []Expr
		var named []NamedArg
		for !p.is(")") {
			if p.at(TIdent) && p.peek().Is("=") {
				name := p.advance().Text
				p.advance() // '='
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				named = append(named, NamedArg{name, v})
			} else {
				if len(named) > 0 {
					return nil, p.errf("positional argument after named argument")
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, v)
			}
			if p.is(",") {
				p.advance()
			} else {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		e = &CallExpr{base{t.Line}, e, args, named}
	}
	return e, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumberLit{base{t.Line}, v}, nil
	case t.Kind == TString:
		p.advance()
		return &StringLit{base{t.Line}, t.Text}, nil
	case t.Is("true"):
		p.advance()
		return &BoolLit{base{t.Line}, true}, nil
	case t.Is("false"):
		p.advance()
		return &BoolLit{base{t.Line}, false}, nil
	case t.Kind == TIdent:
		p.advance()
		return &Ident{base{t.Line}, t.Text}, nil
	case t.Is("["):
		p.advance()
		var elems []Expr
		for !p.is("]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.is(",") {
				p.advance()
			} else {
				break
			}
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		return &ListLit{base{t.Line}, elems}, nil
	case t.Is("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Is("fun"):
		p.advance()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var params []string
		for !p.is(")") {
			if !p.at(TIdent) {
				return nil, p.errf("expected parameter name, found %s", p.cur())
			}
			params = append(params, p.advance().Text)
			if p.is(",") {
				p.advance()
			} else {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &FunLit{base{t.Line}, params, body}, nil
	}
	return nil, p.errf("unexpected %s", t)
}

// --- contract expressions ---

func (p *parser) contractExpr() (CExpr, error) {
	if p.is("forall") {
		t := p.advance()
		if !p.at(TIdent) {
			return nil, p.errf("forall expects a variable name")
		}
		v := p.advance().Text
		if _, err := p.expect("with"); err != nil {
			return nil, err
		}
		bound, err := p.privSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("."); err != nil {
			return nil, err
		}
		body, err := p.contractExpr()
		if err != nil {
			return nil, err
		}
		return &CForall{base{t.Line}, v, bound, body}, nil
	}
	return p.contractOr()
}

func (p *parser) contractOr() (CExpr, error) {
	l, err := p.contractAnd()
	if err != nil {
		return nil, err
	}
	if !p.is("\\/") {
		return l, nil
	}
	branches := []CExpr{l}
	for p.is("\\/") {
		p.advance()
		r, err := p.contractAnd()
		if err != nil {
			return nil, err
		}
		branches = append(branches, r)
	}
	return &COr{base{l.Pos()}, branches}, nil
}

func (p *parser) contractAnd() (CExpr, error) {
	l, err := p.contractArrow()
	if err != nil {
		return nil, err
	}
	if !p.is("&&") {
		return l, nil
	}
	branches := []CExpr{l}
	for p.is("&&") {
		p.advance()
		r, err := p.contractArrow()
		if err != nil {
			return nil, err
		}
		branches = append(branches, r)
	}
	return &CAnd{base{l.Pos()}, branches}, nil
}

// contractArrow parses an atom possibly followed by "-> result": the
// single-parameter function contract sugar (X -> is_bool).
func (p *parser) contractArrow() (CExpr, error) {
	atom, err := p.contractAtom()
	if err != nil {
		return nil, err
	}
	if !p.is("->") {
		return atom, nil
	}
	p.advance()
	res, err := p.contractArrow()
	if err != nil {
		return nil, err
	}
	return &CFunc{base{atom.Pos()}, []CParam{{Name: "_", C: atom}}, nil, res}, nil
}

func (p *parser) contractAtom() (CExpr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.Is("{"):
		return p.funcContract()
	case t.Is("("):
		p.advance()
		c, err := p.contractExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return c, nil
	case t.Is("listof"):
		p.advance()
		elem, err := p.contractAtom()
		if err != nil {
			return nil, err
		}
		return &CListOf{base{t.Line}, elem}, nil
	case t.Kind == TIdent:
		name := p.advance().Text
		switch name {
		case "file", "dir", "pipe", "socket_factory", "pipe_factory":
			if p.is("(") {
				p.advance()
				privs, err := p.privList()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				return &CCap{base{t.Line}, name, privs}, nil
			}
			if name == "pipe_factory" || name == "socket_factory" {
				return &CCap{base{t.Line}, name, nil}, nil
			}
			return &CIdent{base{t.Line}, "is_" + name}, nil
		default:
			return &CIdent{base{t.Line}, name}, nil
		}
	case t.Is("void"):
		p.advance()
		return &CIdent{base{t.Line}, "void"}, nil
	}
	return nil, p.errf("unexpected %s in contract", t)
}

// funcContract parses {a : C, b : C} and, if followed by ->, the result.
// A bare {a : C} without an arrow is a syntax error — function contracts
// always state a postcondition (§2.2).
func (p *parser) funcContract() (CExpr, error) {
	t := p.cur()
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var params []CParam
	for !p.is("}") {
		if !p.at(TIdent) {
			return nil, p.errf("expected parameter name in function contract, found %s", p.cur())
		}
		name := p.advance().Text
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		c, err := p.contractExpr()
		if err != nil {
			return nil, err
		}
		params = append(params, CParam{name, c})
		if p.is(",") {
			p.advance()
		} else {
			break
		}
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	if _, err := p.expect("->"); err != nil {
		return nil, err
	}
	res, err := p.contractExpr()
	if err != nil {
		return nil, err
	}
	return &CFunc{base{t.Line}, params, nil, res}, nil
}

// privList parses +a, +b with {...}, +c with ident, ...
func (p *parser) privList() ([]CPriv, error) {
	var privs []CPriv
	for {
		if !p.is("+") {
			return nil, p.errf("expected privilege (+name), found %s", p.cur())
		}
		p.advance()
		if !p.at(TIdent) && p.cur().Kind != TKeyword {
			return nil, p.errf("expected privilege name, found %s", p.cur())
		}
		name := p.advance().Text
		pr := CPriv{Name: name}
		if p.is("with") {
			p.advance()
			if p.is("{") {
				sub, err := p.privSet()
				if err != nil {
					return nil, err
				}
				pr.With = sub
			} else if p.at(TIdent) {
				pr.WithRef = p.advance().Text
			} else {
				return nil, p.errf("expected privilege set or identifier after with")
			}
		}
		privs = append(privs, pr)
		if p.is(",") {
			p.advance()
			continue
		}
		return privs, nil
	}
}

// privSet parses {+a, +b, ...}.
func (p *parser) privSet() ([]CPriv, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	privs, err := p.privList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return privs, nil
}
