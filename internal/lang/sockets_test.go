package lang

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cap"
	"repro/internal/netstack"
	"repro/internal/priv"
)

// socketScripts is a client/server pair written entirely in SHILL using
// the shill/sockets extension module.
const socketServerCap = `#lang shill/cap
require shill/sockets;

provide serve_once : {net : socket_factory, port : is_string} -> is_string;

serve_once = fun(net, port) {
  l = socket_listen(net, port);
  conn = socket_accept(l);
  msg = socket_recv(conn);
  socket_send(conn, "echo:" + msg);
  socket_close(conn);
  socket_close(l);
  msg;
};
`

const socketClientCap = `#lang shill/cap
require shill/sockets;

provide ping : {net : socket_factory, port : is_string} -> is_string;

ping = fun(net, port) {
  conn = socket_connect(net, port);
  socket_send(conn, "hello");
  reply = socket_recv(conn);
  socket_close(conn);
  reply;
};
`

func TestSocketExtensionEcho(t *testing.T) {
	it := testInterp(t, MapLoader{"server.cap": socketServerCap, "client.cap": socketClientCap})
	server, err := it.LoadModule("server.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	client, err := it.LoadModule("client.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	factory := cap.NewSocketFactory(it.Runtime, netstack.DomainIP, priv.GrantOf(priv.AllSock))

	serve := server.Exports["serve_once"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	})
	pingFn := client.Exports["ping"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	})

	serverDone := make(chan Value, 1)
	go func() {
		got, err := serve.Call([]Value{factory, "4500"}, nil)
		if err != nil {
			t.Errorf("server: %v", err)
		}
		serverDone <- got
	}()
	// Wait for the listener. The retry loop must yield between attempts:
	// a hot loop can exhaust its budget before the server goroutine ever
	// runs, leaving the accepter parked forever (the old 600s hang).
	st := it.Runtime.Kernel().Net
	probed := false
	deadline := time.Now().Add(30 * time.Second)
	for !probed && time.Now().Before(deadline) {
		probe := st.NewSocket(netstack.DomainIP)
		if err := st.Connect(probe, "4500"); err == nil {
			// This probe IS the connection the server accepts; close it
			// and let the real client talk on a fresh serve cycle below.
			st.Close(probe)
			probed = true
		} else {
			// Failed probes must be closed too, or each one stays in
			// the stack's live-socket registry until shutdown.
			st.Close(probe)
			time.Sleep(50 * time.Microsecond)
		}
	}
	if !probed {
		t.Fatal("server never bound port 4500")
	}
	// The probe consumed the accept; serve again for the real client.
	<-serverDone
	go func() {
		got, err := serve.Call([]Value{factory, "4500"}, nil)
		if err != nil {
			t.Errorf("server: %v", err)
		}
		serverDone <- got
	}()
	var reply Value
	var perr error
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		reply, perr = pingFn.Call([]Value{factory, "4500"}, nil)
		_, isErr := reply.(SysError)
		if perr == nil && !isErr {
			break
		}
		// Connection refused (listener not re-bound yet): retry after a
		// yield instead of burning the attempt budget in a hot loop.
		time.Sleep(50 * time.Microsecond)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if reply != "echo:hello" {
		t.Fatalf("client reply = %v", reply)
	}
	if got := <-serverDone; got != "hello" {
		t.Fatalf("server saw %v", got)
	}
}

// TestSocketExtensionPrivileges verifies each operation demands its
// privilege, so a recv-only factory cannot send.
func TestSocketExtensionPrivileges(t *testing.T) {
	it := testInterp(t, nil)
	it.Loader = MapLoader{"m.cap": `#lang shill/cap
require shill/sockets;

provide try_send :
  {net : socket_factory(+sock_create, +sock_connect, +sock_recv),
   port : is_string} -> any;

try_send = fun(net, port) {
  conn = socket_connect(net, port);
  if is_syserror(conn) then {
    conn;
  } else {
    socket_send(conn, "data");
  }
};
`}
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	// A listener to connect to.
	st := it.Runtime.Kernel().Net
	l := st.NewSocket(netstack.DomainIP)
	if err := st.Bind(l, "4600"); err != nil {
		t.Fatal(err)
	}
	st.Listen(l)
	go func() {
		for {
			if _, err := st.Accept(l); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { st.Close(l) })

	noSend := cap.NewSocketFactory(it.Runtime, netstack.DomainIP,
		priv.NewGrant(priv.RSockCreate, priv.RSockConnect, priv.RSockRecv))
	got, err := m.Exports["try_send"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{noSend, "4600"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	se, ok := got.(SysError)
	if !ok {
		t.Fatalf("send without +sock-send = %v", got)
	}
	if !strings.Contains(se.Err.Error(), "sock-send") {
		t.Fatalf("error does not name the privilege: %v", se.Err)
	}
}

// TestSocketFactoryContractAttenuation: a contract can narrow a factory
// to connect-only, and the attenuated factory cannot listen.
func TestSocketFactoryContractAttenuation(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": `#lang shill/cap
require shill/sockets;

provide try_listen :
  {net : socket_factory(+sock_create, +sock_connect, +sock_send, +sock_recv)} -> any;

try_listen = fun(net) {
  socket_listen(net, "4700");
};
`})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	full := cap.NewSocketFactory(it.Runtime, netstack.DomainIP, priv.GrantOf(priv.AllSock))
	got, err := m.Exports["try_listen"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call([]Value{full}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(SysError); !ok {
		t.Fatalf("listen through a connect-only contract = %v", got)
	}
}
