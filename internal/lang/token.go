// Package lang implements the SHILL language (§2, §3.1): a lexer,
// parser, and evaluator for the two dialects — capability-safe scripts
// (#lang shill/cap) and ambient scripts (#lang shill/ambient) — plus the
// contract sub-language that annotates provided functions.
//
// Capability safety is achieved exactly as the paper describes (§3.1.2):
// the language has no mutable variables, capabilities are not
// serialisable, resource access flows only through capability-consuming
// builtins, and the ambient dialect is restricted to straight-line code
// that mints capabilities and invokes capability-safe scripts.
package lang

import (
	"fmt"
	"strings"
)

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TKeyword
	TString
	TNumber
	TPunct
)

// Token is one lexed token.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of script"
	case TString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Is reports whether the token is the given punctuation or keyword.
func (t Token) Is(text string) bool {
	return (t.Kind == TPunct || t.Kind == TKeyword) && t.Text == text
}

var keywords = map[string]bool{
	"provide": true, "require": true, "fun": true,
	"if": true, "then": true, "else": true,
	"for": true, "in": true,
	"forall": true, "with": true,
	"true": true, "false": true,
	"listof": true,
}

// multi-character punctuation, longest first.
var punct2 = []string{"->", "==", "!=", "<=", ">=", "&&", "||", "\\/", "++"}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes a script body (after the #lang line has been stripped).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if i+j < len(src) && src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var b strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						b.WriteByte(src[i+1])
					}
					advance(2)
					continue
				}
				b.WriteByte(src[i])
				advance(1)
			}
			if i >= len(src) {
				return nil, &SyntaxError{startLine, startCol, "unterminated string"}
			}
			advance(1)
			toks = append(toks, Token{TString, b.String(), startLine, startCol})
		case c >= '0' && c <= '9':
			startLine, startCol := line, col
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, Token{TNumber, src[i:j], startLine, startCol})
			advance(j - i)
		case isIdentStart(c):
			startLine, startCol := line, col
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			text := src[i:j]
			kind := TIdent
			if keywords[text] {
				kind = TKeyword
			}
			toks = append(toks, Token{kind, text, startLine, startCol})
			advance(j - i)
		default:
			startLine, startCol := line, col
			matched := false
			for _, p := range punct2 {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{TPunct, p, startLine, startCol})
					advance(len(p))
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("(){}[],;:=+-*/<>!.", rune(c)) {
				toks = append(toks, Token{TPunct, string(c), startLine, startCol})
				advance(1)
				continue
			}
			return nil, &SyntaxError{line, col, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{TEOF, "", line, col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// Dialect distinguishes the two SHILL languages.
type Dialect int

// Dialects.
const (
	DialectCap Dialect = iota
	DialectAmbient
)

func (d Dialect) String() string {
	if d == DialectAmbient {
		return "shill/ambient"
	}
	return "shill/cap"
}

// SplitLang extracts the #lang line from a script, returning the dialect
// and the remaining body. Scripts without a #lang line default to the
// capability-safe dialect.
func SplitLang(src string) (Dialect, string, error) {
	trimmed := strings.TrimLeft(src, " \t\r\n")
	if !strings.HasPrefix(trimmed, "#lang") {
		return DialectCap, src, nil
	}
	nl := strings.IndexByte(trimmed, '\n')
	header := trimmed
	rest := ""
	if nl >= 0 {
		header = trimmed[:nl]
		rest = trimmed[nl+1:]
	}
	switch strings.TrimSpace(strings.TrimPrefix(header, "#lang")) {
	case "shill/cap":
		return DialectCap, rest, nil
	case "shill/ambient":
		return DialectAmbient, rest, nil
	default:
		return DialectCap, "", fmt.Errorf("lang: unknown dialect in %q", header)
	}
}
