package lang

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/contract"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/trace"
)

// Loader resolves required script files to their source text.
type Loader interface {
	Load(name string) (string, error)
}

// MapLoader is an in-memory Loader keyed by file name.
type MapLoader map[string]string

// Load implements Loader.
func (m MapLoader) Load(name string) (string, error) {
	src, ok := m[name]
	if !ok {
		return "", fmt.Errorf("lang: no script %q", name)
	}
	return src, nil
}

// Module is a loaded capability-safe script: its exports are
// contract-wrapped values.
type Module struct {
	Name    string
	Dialect Dialect
	Exports map[string]Value
}

// Interp evaluates SHILL scripts against a simulated kernel. The Runtime
// process is the interpreter's own (ambient, unsandboxed) process; the
// capability layer issues system calls through it, and sandboxes fork
// from it.
type Interp struct {
	Runtime *kernel.Proc
	Loader  Loader
	Prof    *prof.Collector

	// ConsolePath is the device the ambient stdin/stdout/stderr
	// builtins bind to ("" means /dev/console). Parallel session
	// runners point it at the session's private console so builtin
	// output cannot interleave across sessions.
	ConsolePath string

	// CompileCache, when set, memoizes compiled programs by content
	// hash for the compiled engine (see compile.go). A machine shares
	// one cache across all its sessions.
	CompileCache *CompileCache

	// engine selects the execution path (SetEngine). The zero value is
	// the tree-walk interpreter.
	engine Engine

	modules map[string]*Module
	loading map[string]bool // modules mid-load, to reject require cycles
	globals *Env

	// callDepth tracks live closure invocations (atomically, since a
	// module's exports may be called from several goroutines) so
	// runaway recursion is cut off at maxCallDepth.
	callDepth atomic.Int32

	// runCtx, when set, is polled at every statement boundary and
	// closure call, so cancelling the context stops the eval loop of a
	// runaway script. Stored atomically because the fuzz/race harnesses
	// drive one interpreter from several goroutines.
	runCtx atomic.Pointer[context.Context]

	// socks registers every socket the run mints so leftovers can be
	// closed when the run ends (see sockets.go).
	socks sockTracker

	// Trace, when non-nil, receives compile and eval spans (children of
	// TraceParent) for the request-tracing layer. Both fields are set by
	// the run owner before RunAmbient; a nil Trace costs one nil check
	// per run, not per statement.
	Trace       *trace.Ref
	TraceParent uint64
}

// SetContext installs (or, with nil, removes) the context the eval loop
// polls for cancellation. The interpreter only observes Done/Err; the
// caller remains responsible for interrupting any kernel-level waits the
// script's process may be parked in (kernel.Proc.Interrupt).
func (it *Interp) SetContext(ctx context.Context) {
	if ctx == nil {
		it.runCtx.Store(nil)
		return
	}
	it.runCtx.Store(&ctx)
}

// checkCancel returns the cancellation error once the installed context
// is done. The fast path is one atomic load.
func (it *Interp) checkCancel() error {
	ctxp := it.runCtx.Load()
	if ctxp == nil {
		return nil
	}
	ctx := *ctxp
	select {
	case <-ctx.Done():
		return fmt.Errorf("script canceled: %w", context.Cause(ctx))
	default:
		return nil
	}
}

// NewInterp builds an interpreter. Construction cost is attributed to
// prof.Startup — the analogue of the paper's "Racket startup" row in
// Figure 10.
func NewInterp(runtime *kernel.Proc, loader Loader, collector *prof.Collector) *Interp {
	start := time.Now()
	it := &Interp{
		Runtime: runtime,
		Loader:  loader,
		Prof:    collector,
		modules: make(map[string]*Module),
	}
	it.globals = it.coreEnv()
	collector.Add(prof.Startup, time.Since(start))
	return it
}

// LoadModule loads (and caches) a capability-safe script or a standard
// library module by name.
func (it *Interp) LoadModule(name string, isFile bool) (*Module, error) {
	if m, ok := it.modules[name]; ok {
		return m, nil
	}
	// A module that (transitively) requires itself would recurse here
	// forever; the module cache only fills in after evaluation.
	if it.loading[name] {
		return nil, fmt.Errorf("%s: require cycle", name)
	}
	if it.loading == nil {
		it.loading = make(map[string]bool)
	}
	it.loading[name] = true
	defer delete(it.loading, name)
	if !isFile {
		m, err := it.stdlibModule(name)
		if err != nil {
			return nil, err
		}
		it.modules[name] = m
		return m, nil
	}
	src, err := it.Loader.Load(name)
	if err != nil {
		return nil, err
	}
	if it.engine == EngineCompiled {
		prog, _, err := it.compileSource(src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if prog.Dialect() != DialectCap {
			return nil, fmt.Errorf("%s: cannot require an ambient script", name)
		}
		m, err := it.evalCapModuleCompiled(name, prog)
		if err != nil {
			return nil, err
		}
		it.modules[name] = m
		return m, nil
	}
	script, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if script.Dialect != DialectCap {
		// "Capability-safe scripts cannot import ambient scripts" (§2.5).
		return nil, fmt.Errorf("%s: cannot require an ambient script", name)
	}
	m, err := it.evalCapModule(name, script)
	if err != nil {
		return nil, err
	}
	it.modules[name] = m
	return m, nil
}

// evalCapModule evaluates a capability-safe script and wraps its
// provides in their contracts.
func (it *Interp) evalCapModule(name string, script *Script) (*Module, error) {
	env := NewEnv(it.globals)
	var provides []*ProvideStmt
	for _, s := range script.Stmts {
		switch st := s.(type) {
		case *ProvideStmt:
			provides = append(provides, st)
		case *RequireStmt:
			if err := it.importInto(env, st); err != nil {
				return nil, fmt.Errorf("%s: line %d: %w", name, st.Pos(), err)
			}
		default:
			if _, err := it.evalStmt(s, env); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	m := &Module{Name: name, Dialect: DialectCap, Exports: make(map[string]Value)}
	for _, pr := range provides {
		v, ok := env.Lookup(pr.Name)
		if !ok {
			return nil, fmt.Errorf("%s: provide %s: no such binding", name, pr.Name)
		}
		if pr.Contract != nil {
			c, err := it.evalContract(pr.Contract, env, polarityOut, nil)
			if err != nil {
				return nil, fmt.Errorf("%s: provide %s: %w", name, pr.Name, err)
			}
			wrapped, err := contract.Apply(c, v, contract.Blame{Pos: name, Neg: "client of " + name})
			if err != nil {
				return nil, err
			}
			v = wrapped
		}
		m.Exports[pr.Name] = v
	}
	return m, nil
}

// importInto binds a module's exports into env. Exports are imported
// in sorted name order so that when several collide with existing
// bindings, the reported duplicate is deterministic (the differential
// engine suites compare error text byte for byte).
func (it *Interp) importInto(env *Env, st *RequireStmt) error {
	m, err := it.LoadModule(st.Module, st.IsFile)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(m.Exports))
	for name := range m.Exports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := env.Define(name, m.Exports[name]); err != nil {
			return fmt.Errorf("require %s: %w", st.Module, err)
		}
	}
	return nil
}

// RunAmbient parses and executes an ambient script (§2.5). The ambient
// dialect is restricted to straight-line code: requires, immutable
// bindings, and function invocations. Control flow, function
// definitions, and provides are rejected.
func (it *Interp) RunAmbient(name, src string) error {
	if it.engine == EngineCompiled {
		return it.runAmbientCompiled(name, src)
	}
	csp := it.Trace.Start(it.TraceParent, trace.KindCompile, "parse")
	csp.SetDetail("engine=tree-walk")
	script, err := Parse(src)
	csp.End()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if script.Dialect != DialectAmbient {
		return fmt.Errorf("%s: not an ambient script", name)
	}
	esp := it.Trace.Start(it.TraceParent, trace.KindEval, "eval")
	defer esp.End()
	env := NewEnv(it.globals)
	it.bindAmbient(env)
	for _, s := range script.Stmts {
		switch st := s.(type) {
		case *RequireStmt:
			if err := it.importInto(env, st); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, st.Pos(), err)
			}
		case *BindStmt:
			if _, ok := st.Expr.(*FunLit); ok {
				return fmt.Errorf("%s: line %d: ambient scripts cannot define functions", name, st.Pos())
			}
			if _, err := it.evalStmt(st, env); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case *ExprStmt:
			if _, err := it.evalStmt(st, env); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		default:
			return fmt.Errorf("%s: line %d: statement not allowed in an ambient script", name, s.Pos())
		}
	}
	return nil
}

// RunAmbientFile loads and runs an ambient script through the loader.
func (it *Interp) RunAmbientFile(name string) error {
	src, err := it.Loader.Load(name)
	if err != nil {
		return err
	}
	return it.RunAmbient(name, src)
}

// --- statement and expression evaluation ---

func (it *Interp) evalBlock(stmts []Stmt, env *Env) (Value, error) {
	var last Value
	for _, s := range stmts {
		v, err := it.evalStmt(s, env)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

func (it *Interp) evalStmt(s Stmt, env *Env) (Value, error) {
	// Every statement — including each iteration of a for body — is a
	// cancellation point, so a context deadline stops even a pure
	// compute loop that never enters the kernel.
	if err := it.checkCancel(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *BindStmt:
		v, err := it.evalExpr(st.Expr, env)
		if err != nil {
			return nil, err
		}
		if cl, ok := v.(*Closure); ok && cl.name == "" {
			cl.name = st.Name // name anonymous functions by their binding
		}
		if err := env.Define(st.Name, v); err != nil {
			return nil, fmt.Errorf("line %d: %w", st.Pos(), err)
		}
		return nil, nil
	case *ExprStmt:
		return it.evalExpr(st.Expr, env)
	case *IfStmt:
		cond, err := it.evalExpr(st.Cond, env)
		if err != nil {
			return nil, err
		}
		b, err := truthy(cond, "if condition")
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", st.Pos(), err)
		}
		if b {
			return it.evalBlock(st.Then, NewEnv(env))
		}
		if st.Else != nil {
			return it.evalBlock(st.Else, NewEnv(env))
		}
		return nil, nil
	case *ForStmt:
		seq, err := it.evalExpr(st.Seq, env)
		if err != nil {
			return nil, err
		}
		list, ok := seq.([]Value)
		if !ok {
			return nil, fmt.Errorf("line %d: for expects a list, got %s", st.Pos(), FormatValue(seq))
		}
		for _, item := range list {
			frame := NewEnv(env)
			if err := frame.Define(st.Var, item); err != nil {
				return nil, err
			}
			if _, err := it.evalBlock(st.Body, frame); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case *RequireStmt:
		return nil, fmt.Errorf("line %d: require is only allowed at the top of a script", st.Pos())
	case *ProvideStmt:
		return nil, fmt.Errorf("line %d: provide is only allowed at the top level of a capability-safe script", st.Pos())
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

func (it *Interp) evalExpr(e Expr, env *Env) (Value, error) {
	switch ex := e.(type) {
	case *Ident:
		v, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: unbound identifier %q", ex.Pos(), ex.Name)
		}
		return v, nil
	case *StringLit:
		return ex.Value, nil
	case *NumberLit:
		return ex.Value, nil
	case *BoolLit:
		return ex.Value, nil
	case *ListLit:
		out := make([]Value, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := it.evalExpr(el, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case *FunLit:
		return &Closure{params: ex.Params, body: ex.Body, env: env, interp: it}, nil
	case *UnaryExpr:
		x, err := it.evalExpr(ex.X, env)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "!":
			b, err := truthy(x, "operator !")
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ex.Pos(), err)
			}
			return !b, nil
		case "-":
			n, ok := x.(float64)
			if !ok {
				return nil, fmt.Errorf("line %d: unary - expects a number", ex.Pos())
			}
			return -n, nil
		}
		return nil, fmt.Errorf("line %d: unknown unary operator %q", ex.Pos(), ex.Op)
	case *BinaryExpr:
		return it.evalBinary(ex, env)
	case *CallExpr:
		fn, err := it.evalExpr(ex.Fn, env)
		if err != nil {
			return nil, err
		}
		callable, ok := fn.(contract.Callable)
		if !ok {
			return nil, fmt.Errorf("line %d: %s is not a function", ex.Pos(), FormatValue(fn))
		}
		args := make([]Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := it.evalExpr(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		var named map[string]Value
		if len(ex.Named) > 0 {
			named = make(map[string]Value, len(ex.Named))
			for _, na := range ex.Named {
				v, err := it.evalExpr(na.Expr, env)
				if err != nil {
					return nil, err
				}
				named[na.Name] = v
			}
		}
		out, err := callable.Call(args, named)
		if err != nil {
			if _, isViolation := err.(*contract.Violation); isViolation {
				return nil, err
			}
			return nil, fmt.Errorf("line %d: %w", ex.Pos(), err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (it *Interp) evalBinary(ex *BinaryExpr, env *Env) (Value, error) {
	// Short-circuit operators first.
	if ex.Op == "&&" || ex.Op == "||" {
		l, err := it.evalExpr(ex.L, env)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l, "operator "+ex.Op)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ex.Pos(), err)
		}
		if ex.Op == "&&" && !lb {
			return false, nil
		}
		if ex.Op == "||" && lb {
			return true, nil
		}
		r, err := it.evalExpr(ex.R, env)
		if err != nil {
			return nil, err
		}
		rb, err := truthy(r, "operator "+ex.Op)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ex.Pos(), err)
		}
		return rb, nil
	}

	l, err := it.evalExpr(ex.L, env)
	if err != nil {
		return nil, err
	}
	r, err := it.evalExpr(ex.R, env)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "==":
		return valueEqual(l, r), nil
	case "!=":
		return !valueEqual(l, r), nil
	case "+", "++":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
			return ls + FormatValue(r), nil
		}
		if ll, ok := l.([]Value); ok {
			if rl, ok := r.([]Value); ok {
				return append(append([]Value{}, ll...), rl...), nil
			}
		}
		fallthrough
	case "-", "*", "/", "<", ">", "<=", ">=":
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if !lok || !rok {
			return nil, fmt.Errorf("line %d: operator %q expects numbers, got %s and %s",
				ex.Pos(), ex.Op, FormatValue(l), FormatValue(r))
		}
		switch ex.Op {
		case "+":
			return ln + rn, nil
		case "-":
			return ln - rn, nil
		case "*":
			return ln * rn, nil
		case "/":
			if rn == 0 {
				return nil, fmt.Errorf("line %d: division by zero", ex.Pos())
			}
			return ln / rn, nil
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		case ">=":
			return ln >= rn, nil
		}
	}
	return nil, fmt.Errorf("line %d: unknown operator %q", ex.Pos(), ex.Op)
}

func valueEqual(l, r Value) bool {
	switch lt := l.(type) {
	case nil:
		return r == nil
	case bool:
		rb, ok := r.(bool)
		return ok && lt == rb
	case float64:
		rn, ok := r.(float64)
		return ok && lt == rn
	case string:
		rs, ok := r.(string)
		return ok && lt == rs
	case []Value:
		rl, ok := r.([]Value)
		if !ok || len(lt) != len(rl) {
			return false
		}
		for i := range lt {
			if !valueEqual(lt[i], rl[i]) {
				return false
			}
		}
		return true
	case SysError:
		_, ok := r.(SysError)
		return ok
	default:
		return l == r // identity for capabilities, functions, wallets
	}
}
