package lang

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/prof"
)

// --- lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`x = fun(a) { append(out, "hi\n"); } # comment`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"x", "=", "fun", "(", "a", ")", "{", "append", "(", "out", ",", "hi\n", ")", ";", "}"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	toks, err := Lex(`a -> b == c != d <= e >= f && g || h \/ i ++ j`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"->", "==", "!=", "<=", ">=", "&&", "||", "\\/", "++"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("operators = %v", ops)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("illegal character accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("positions: %+v", toks[:2])
	}
}

// --- parser ---

func TestSplitLang(t *testing.T) {
	d, body, err := SplitLang("#lang shill/ambient\nx = 1;\n")
	if err != nil || d != DialectAmbient || !strings.Contains(body, "x = 1") {
		t.Fatalf("SplitLang = %v, %q, %v", d, body, err)
	}
	d, _, err = SplitLang("#lang shill/cap\n")
	if err != nil || d != DialectCap {
		t.Fatal("cap dialect")
	}
	if _, _, err := SplitLang("#lang python\n"); err == nil {
		t.Fatal("unknown dialect accepted")
	}
}

func TestParseProvideContract(t *testing.T) {
	src := `#lang shill/cap
provide f : {a : is_file, b : dir(+lookup with {+read}, +contents) \/ file(+path)} -> void;
f = fun(a, b) { };
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(script.Stmts))
	}
	pr, ok := script.Stmts[0].(*ProvideStmt)
	if !ok || pr.Name != "f" || pr.Contract == nil {
		t.Fatalf("provide parse: %+v", script.Stmts[0])
	}
	fc, ok := pr.Contract.(*CFunc)
	if !ok || len(fc.Params) != 2 {
		t.Fatalf("contract shape: %+v", pr.Contract)
	}
	or, ok := fc.Params[1].C.(*COr)
	if !ok || len(or.Branches) != 2 {
		t.Fatalf("or contract: %+v", fc.Params[1].C)
	}
	cc := or.Branches[0].(*CCap)
	if cc.Kind != "dir" || len(cc.Privs) != 2 || cc.Privs[0].Name != "lookup" || len(cc.Privs[0].With) != 1 {
		t.Fatalf("cap contract: %+v", cc)
	}
}

func TestParseForall(t *testing.T) {
	src := `#lang shill/cap
provide find : forall X with {+lookup, +contents} . {cur : X, f : X -> is_bool} -> void;
find = fun(cur, f) { };
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := script.Stmts[0].(*ProvideStmt).Contract.(*CForall)
	if !ok || fa.Var != "X" || len(fa.Bound) != 2 {
		t.Fatalf("forall parse: %+v", script.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = ;",
		"if x { }",                   // missing then
		"for x { }",                  // missing in
		"provide : c;",               // missing name
		"f(a=1, b);",                 // positional after named
		"x = fun(a { };",             // malformed params
		"provide f : {a : is_file};", // function contract without ->
	}
	for _, src := range bad {
		if _, err := Parse("#lang shill/cap\n" + src); err == nil {
			t.Errorf("parsed bad input %q", src)
		}
	}
}

// --- evaluator ---

func testInterp(t *testing.T, scripts MapLoader) *Interp {
	t.Helper()
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.MkdirAll("/home/user", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(0, 0)
	if scripts == nil {
		scripts = MapLoader{}
	}
	return NewInterp(p, scripts, prof.New())
}

// evalInModule runs statements in a cap module and returns the exported
// result of calling the provided probe function.
func runProbe(t *testing.T, body string) (Value, error) {
	t.Helper()
	it := testInterp(t, MapLoader{"m.cap": "#lang shill/cap\nprovide probe : {} -> any;\nprobe = fun() {\n" + body + "\n};\n"})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		return nil, err
	}
	fn := m.Exports["probe"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	})
	return fn.Call(nil, nil)
}

func TestArithmeticAndStrings(t *testing.T) {
	cases := []struct {
		body string
		want Value
	}{
		{"1 + 2 * 3;", 7.0},
		{"(1 + 2) * 3;", 9.0},
		{"10 / 4;", 2.5},
		{"7 - 10;", -3.0},
		{`"a" + "b";`, "ab"},
		{`"n=" + 3;`, "n=3"},
		{"1 < 2;", true},
		{"2 <= 2;", true},
		{`"x" == "x";`, true},
		{"[1, 2] == [1, 2];", true},
		{"[1] ++ [2, 3] == [1, 2, 3];", true},
		{"!false;", true},
		{"true && false;", false},
		{"false || true;", true},
		{"-5 + 5;", 0.0},
		{`strlen("abc");`, 3.0},
		{`contains("hello", "ell");`, true},
		{`starts_with("hello", "he");`, true},
		{`nth(split("a:b:c", ":"), 1);`, "b"},
		{"length(range(4));", 4.0},
		{"to_string(42);", "42"},
	}
	for _, c := range cases {
		got, err := runProbe(t, c.body)
		if err != nil {
			t.Errorf("%q: %v", c.body, err)
			continue
		}
		if !valueEqual(got, c.want) {
			t.Errorf("%q = %v, want %v", c.body, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := runProbe(t, "1 / 0;"); err == nil {
		t.Fatal("division by zero succeeded")
	}
}

func TestImmutableBindings(t *testing.T) {
	if _, err := runProbe(t, "x = 1;\nx = 2;\nx;"); err == nil ||
		!strings.Contains(err.Error(), "immutable") {
		t.Fatalf("rebinding allowed: %v", err)
	}
	// Shadowing in an inner scope is fine.
	got, err := runProbe(t, "x = 1;\nif true then { x = 2; }\nx;")
	if err != nil || got != 1.0 {
		t.Fatalf("shadowing: %v, %v", got, err)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand would fail if evaluated.
	got, err := runProbe(t, "false && (1 / 0 == 0);")
	if err != nil || got != false {
		t.Fatalf("&& short circuit: %v, %v", got, err)
	}
	got, err = runProbe(t, "true || (1 / 0 == 0);")
	if err != nil || got != true {
		t.Fatalf("|| short circuit: %v, %v", got, err)
	}
}

func TestStrictBooleans(t *testing.T) {
	if _, err := runProbe(t, "if 1 then { 2; }"); err == nil {
		t.Fatal("non-boolean condition accepted")
	}
	if _, err := runProbe(t, "1 && true;"); err == nil {
		t.Fatal("non-boolean && accepted")
	}
}

func TestForLoopAndClosures(t *testing.T) {
	got, err := runProbe(t, `
total = fun(xs) {
  sum = fun(xs, i, acc) {
    if i == length(xs) then { acc; }
    else { sum(xs, i + 1, acc + nth(xs, i)); }
  };
  sum(xs, 0, 0);
};
total([1, 2, 3, 4]);`)
	if err != nil || got != 10.0 {
		t.Fatalf("recursion: %v, %v", got, err)
	}
}

func TestHigherOrderFunctions(t *testing.T) {
	got, err := runProbe(t, `
apply_twice = fun(f, x) { f(f(x)); };
apply_twice(fun(n) { n * 3; }, 2);`)
	if err != nil || got != 18.0 {
		t.Fatalf("higher order: %v, %v", got, err)
	}
}

func TestSyserrorValues(t *testing.T) {
	got, err := runProbe(t, "is_syserror(nth([1], 5));")
	if err != nil || got != true {
		t.Fatalf("syserror value: %v, %v", got, err)
	}
}

func TestModuleCaching(t *testing.T) {
	it := testInterp(t, MapLoader{
		"a.cap": "#lang shill/cap\nprovide f : {} -> any;\nf = fun() { 1; };\n",
	})
	m1, err := it.LoadModule("a.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := it.LoadModule("a.cap", true)
	if m1 != m2 {
		t.Fatal("module loaded twice")
	}
}

func TestRequireChainAndContractWrap(t *testing.T) {
	it := testInterp(t, MapLoader{
		"lib.cap": `#lang shill/cap
provide double : {n : is_num} -> is_num;
double = fun(n) { n * 2; };
`,
		"main.cap": `#lang shill/cap
require "lib.cap";
provide go : {} -> is_num;
go = fun() { double(21); };
`,
	})
	m, err := it.LoadModule("main.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Exports["go"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call(nil, nil)
	if err != nil || got != 42.0 {
		t.Fatalf("go() = %v, %v", got, err)
	}
	// Calling double with a string through its contract fails with blame.
	it2 := testInterp(t, MapLoader{
		"lib.cap": `#lang shill/cap
provide double : {n : is_num} -> is_num;
double = fun(n) { n * 2; };
`,
		"main.cap": `#lang shill/cap
require "lib.cap";
provide go : {} -> is_num;
go = fun() { double("oops"); };
`,
	})
	m2, err := it2.LoadModule("main.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m2.Exports["go"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "blaming") {
		t.Fatalf("contract violation: %v", err)
	}
}

func TestUserDefinedPredicateContract(t *testing.T) {
	it := testInterp(t, MapLoader{
		"m.cap": `#lang shill/cap
positive = fun(n) { is_num(n) && n > 0; };
provide f : {n : positive} -> is_num;
f = fun(n) { n; };
`,
	})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	call := m.Exports["f"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	})
	if _, err := call.Call([]Value{3.0}, nil); err != nil {
		t.Fatalf("positive arg rejected: %v", err)
	}
	if _, err := call.Call([]Value{-3.0}, nil); err == nil {
		t.Fatal("negative arg accepted by user predicate")
	}
}

func TestStdlibIO(t *testing.T) {
	it := testInterp(t, MapLoader{
		"m.cap": `#lang shill/cap
require shill/io;
provide f : {} -> is_string;
f = fun() { sprintf("x=%d y=%s z=%v", 4, "s", true); };
`,
	})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Exports["f"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call(nil, nil)
	if err != nil || got != "x=4 y=s z=true" {
		t.Fatalf("sprintf = %v, %v", got, err)
	}
}

func TestUnknownStdlibModule(t *testing.T) {
	it := testInterp(t, nil)
	if _, err := it.LoadModule("shill/none", false); err == nil {
		t.Fatal("unknown stdlib module loaded")
	}
}

func TestAmbientOnlyBuiltinsHiddenFromCap(t *testing.T) {
	it := testInterp(t, MapLoader{
		"m.cap": `#lang shill/cap
provide f : {} -> any;
f = fun() { pipe_factory(); };
`,
	})
	m, err := it.LoadModule("m.cap", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exports["f"].(interface {
		Call([]Value, map[string]Value) (Value, error)
	}).Call(nil, nil); err == nil {
		t.Fatal("cap script reached an ambient builtin")
	}
}

func TestContractEvalErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown privilege", `provide f : {x : file(+frobnicate)} -> void;`},
		{"with on non-deriving", `provide f : {x : dir(+read with {+stat})} -> void;`},
		{"unknown with-reference", `provide f : {x : dir(+lookup with nonsense_ref)} -> void;`},
		{"unbound contract name", `provide f : {x : no_such_contract} -> void;`},
		{"non-contract binding", `c = 42;
provide f : {x : c} -> void;`},
		{"forall over non-function", `provide f : forall X with {+lookup} . X;`},
	}
	for _, c := range cases {
		it := testInterp(t, MapLoader{"m.cap": "#lang shill/cap\n" + c.src + "\nf = fun(x) { };\n"})
		if _, err := it.LoadModule("m.cap", true); err == nil {
			t.Errorf("%s: module loaded", c.name)
		}
	}
}

func TestProvideUnknownBinding(t *testing.T) {
	it := testInterp(t, MapLoader{"m.cap": "#lang shill/cap\nprovide ghost : {} -> void;\n"})
	if _, err := it.LoadModule("m.cap", true); err == nil ||
		!strings.Contains(err.Error(), "no such binding") {
		t.Fatalf("provide of missing binding: %v", err)
	}
}

func TestRequireCollision(t *testing.T) {
	it := testInterp(t, MapLoader{
		"a.cap":    "#lang shill/cap\nprovide f : {} -> void;\nf = fun() { };\n",
		"b.cap":    "#lang shill/cap\nprovide f : {} -> void;\nf = fun() { };\n",
		"main.cap": "#lang shill/cap\nrequire \"a.cap\";\nrequire \"b.cap\";\nprovide g : {} -> void;\ng = fun() { };\n",
	})
	if _, err := it.LoadModule("main.cap", true); err == nil ||
		!strings.Contains(err.Error(), "immutable") {
		t.Fatalf("colliding imports: %v", err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "void"},
		{true, "true"},
		{3.0, "3"},
		{3.5, "3.5"},
		{"s", "s"},
		{[]Value{1.0, "a"}, "[1, a]"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
