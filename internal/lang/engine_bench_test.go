package lang_test

// BenchmarkEngineWork compares the execution engines on a pure
// interpreter-bound workload (nested loops, closure calls, arithmetic)
// with no kernel operations, isolating per-node evaluation cost:
//
//	go test ./internal/lang -bench BenchmarkEngineWork -run xxx

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/prof"
)

const profWorkCap = `#lang shill/cap

provide work : {} -> void;

add3 = fun(a, b, c) { a + b + c; };
inner = fun(k) { if k == 0 then { 0; } else { add3(k, k, k); } };

work = fun() {
  for a in range(250) {
    for b in range(100) {
      inner(b);
    }
  }
};
`

const profWorkAmbient = `#lang shill/ambient
require "w.cap";
work();
`

func BenchmarkEngineWork(b *testing.B) {
	for _, eng := range []lang.Engine{lang.EngineTreeWalk, lang.EngineCompiled} {
		b.Run(eng.String(), func(b *testing.B) {
			k := kernel.New()
			k.InstallShillModule()
			defer k.Shutdown()
			k.FS.WriteFile("/dev/console", nil, 0o666, 0, 0)
			proc := k.NewProc(0, 0)
			cache := lang.NewCompileCache()
			loader := lang.MapLoader{"w.cap": profWorkCap}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := lang.NewInterp(proc, loader, prof.New())
				it.SetEngine(eng)
				it.CompileCache = cache
				if err := it.RunAmbient("w.ambient", profWorkAmbient); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
