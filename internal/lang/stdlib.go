package lang

import (
	"fmt"
	"strings"

	"repro/internal/cap"
	"repro/internal/contract"
	"repro/internal/errno"
	"repro/internal/priv"
	"repro/internal/sandbox"
	"repro/internal/stdlib"
	"repro/internal/wallet"
)

// stdlibModule constructs one of SHILL's standard-library scripts
// (§3.1.4): shill/native, shill/io, shill/contracts, shill/filesys.
func (it *Interp) stdlibModule(name string) (*Module, error) {
	m := &Module{Name: name, Dialect: DialectCap, Exports: make(map[string]Value)}
	bi := func(n string, minA, maxA int, named []string,
		fn func(it *Interp, args []Value, named map[string]Value) (Value, error)) {
		m.Exports[n] = &Builtin{Name: n, MinArgs: minA, MaxArgs: maxA, NamedOK: named, Fn: fn, interp: it}
	}
	switch name {
	case "shill/native":
		bi("create_wallet", 0, 0, nil, func(it *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return wallet.New(), nil
		})
		bi("populate_native_wallet", 5, 6, nil, populateNativeWallet)
		bi("pkg_native", 2, 2, nil, pkgNative)
		bi("wallet_put", 3, 3, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			w, ok := args[0].(*wallet.Wallet)
			key, ok2 := args[1].(string)
			if !ok || !ok2 {
				return nil, fmt.Errorf("wallet_put expects (wallet, key, capability)")
			}
			c, err := viewOf(args[2], "wallet_put")
			if err != nil {
				return nil, err
			}
			w.Put(key, c)
			return nil, nil
		})
		bi("wallet_get", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			w, ok := args[0].(*wallet.Wallet)
			key, ok2 := args[1].(string)
			if !ok || !ok2 {
				return nil, fmt.Errorf("wallet_get expects (wallet, key)")
			}
			caps := w.Get(key)
			out := make([]Value, len(caps))
			for i, c := range caps {
				out[i] = c
			}
			return out, nil
		})

	case "shill/io":
		bi("fprintf", 2, -1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			out, err := viewOf(args[0], "fprintf")
			if err != nil {
				return nil, err
			}
			format, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("fprintf expects a format string")
			}
			text := sprintfValues(format, args[2:])
			if werr := out.Append([]byte(text)); werr != nil {
				return opResult(args[0], werr, "fprintf")
			}
			return nil, nil
		})
		bi("sprintf", 1, -1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			format, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("sprintf expects a format string")
			}
			return sprintfValues(format, args[1:]), nil
		})

	case "shill/contracts":
		m.Exports["readonly"] = &contract.OrC{Branches: []contract.Contract{
			&contract.CapC{Mask: contract.MaskDir, Grant: stdlib.ReadOnlyDirGrant, Label: "readonly"},
			&contract.CapC{Mask: contract.MaskFile, Grant: stdlib.ReadOnlyFileGrant, Label: "readonly"},
		}}
		m.Exports["writeable"] = &contract.CapC{Mask: contract.MaskFile, Grant: stdlib.WriteableGrant, Label: "writeable"}
		m.Exports["writeonly"] = &contract.CapC{Mask: contract.MaskFile, Grant: stdlib.WriteOnlyGrant, Label: "writeonly"}
		m.Exports["appendonly"] = &contract.CapC{Mask: contract.MaskFile, Grant: stdlib.AppendOnlyGrant, Label: "appendonly"}
		m.Exports["executable"] = &contract.CapC{Mask: contract.MaskFile, Grant: stdlib.ExecGrant, Label: "executable"}
		m.Exports["full_privileges"] = &contract.CapC{
			Mask:  contract.MaskFile | contract.MaskDir | contract.MaskPipe,
			Grant: priv.FullGrant(), Label: "full_privileges",
		}
		m.Exports["tmp_private"] = &contract.CapC{Mask: contract.MaskDir, Grant: stdlib.TmpGrant, Label: "tmp_private"}

	case "shill/filesys":
		bi("resolve", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			relpath, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("resolve expects a path string")
			}
			return resolveRel(args[0], relpath)
		})
		bi("exists_in", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			dir, err := viewOf(args[0], "exists_in")
			if err != nil {
				return nil, err
			}
			name, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("exists_in expects a name string")
			}
			_, lerr := dir.Lookup(name)
			return lerr == nil, nil
		})
		bi("mkdirs", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			dir, err := viewOf(args[0], "mkdirs")
			if err != nil {
				return nil, err
			}
			relpath, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("mkdirs expects a path string")
			}
			cur := dir
			for _, comp := range strings.Split(relpath, "/") {
				if comp == "" {
					continue
				}
				next, lerr := cur.Lookup(comp)
				if lerr != nil {
					next, lerr = cur.CreateDir(comp, 0o755)
					if lerr != nil {
						return opResult(args[0], lerr, "mkdirs")
					}
				}
				cur = next
			}
			return cur, nil
		})

	case "shill/sockets":
		// The extension the paper sketches in §3.1.1: built-in socket
		// operations gated by socket-factory capabilities. A script can
		// manipulate sockets only through a factory it was handed, and
		// every operation checks the corresponding socket privilege.
		sockOf := func(v Value, op string) (*cap.Capability, error) {
			c, ok := v.(*cap.Capability)
			if !ok || c.Kind() != cap.KindSocket {
				return nil, fmt.Errorf("%s expects a socket capability, got %s", op, FormatValue(v))
			}
			return c, nil
		}
		bi("socket_connect", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			f, ok := args[0].(*cap.Capability)
			if !ok || f.Kind() != cap.KindSocketFactory {
				return nil, fmt.Errorf("socket_connect expects a socket factory")
			}
			addr, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("socket_connect expects an address string")
			}
			c, err := f.SocketConnect(addr)
			if err != nil {
				return asSyserror(err)
			}
			it.trackSocket(c)
			return c, nil
		})
		bi("socket_listen", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			f, ok := args[0].(*cap.Capability)
			if !ok || f.Kind() != cap.KindSocketFactory {
				return nil, fmt.Errorf("socket_listen expects a socket factory")
			}
			addr, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("socket_listen expects an address string")
			}
			c, err := f.SocketListen(addr)
			if err != nil {
				return asSyserror(err)
			}
			it.trackSocket(c)
			return c, nil
		})
		bi("socket_accept", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			l, err := sockOf(args[0], "socket_accept")
			if err != nil {
				return nil, err
			}
			c, aerr := l.SocketAccept()
			if aerr != nil {
				return asSyserror(aerr)
			}
			it.trackSocket(c)
			return c, nil
		})
		bi("socket_send", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			c, err := sockOf(args[0], "socket_send")
			if err != nil {
				return nil, err
			}
			data, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("socket_send expects a string")
			}
			if serr := c.SocketSend([]byte(data)); serr != nil {
				return asSyserror(serr)
			}
			return nil, nil
		})
		bi("socket_recv", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			c, err := sockOf(args[0], "socket_recv")
			if err != nil {
				return nil, err
			}
			data, rerr := c.SocketRecv()
			if rerr != nil {
				return asSyserror(rerr)
			}
			return string(data), nil
		})
		bi("socket_close", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
			c, err := sockOf(args[0], "socket_close")
			if err != nil {
				return nil, err
			}
			c.SocketClose()
			return nil, nil
		})
		m.Exports["is_socket"] = predValue{&contract.Pred{Name: "is_socket", Fn: func(v Value) bool {
			c, ok := v.(*cap.Capability)
			return ok && c.Kind() == cap.KindSocket
		}}}

	default:
		return nil, fmt.Errorf("lang: unknown standard library module %q", name)
	}
	return m, nil
}

// sprintfValues formats with a restricted verb set (%s, %d, %v, %%).
func sprintfValues(format string, args []Value) string {
	var b strings.Builder
	argi := 0
	next := func() Value {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			b.WriteByte(c)
			continue
		}
		i++
		switch format[i] {
		case 's', 'v':
			b.WriteString(FormatValue(next()))
		case 'd':
			if n, ok := next().(float64); ok {
				fmt.Fprintf(&b, "%d", int64(n))
			} else {
				b.WriteString("NaN")
			}
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	return b.String()
}

// resolveRel walks a multi-component relative path by repeated
// single-component lookups (keeping capability safety: no "..").
func resolveRel(dirV Value, relpath string) (Value, error) {
	if strings.HasPrefix(relpath, "/") {
		relpath = strings.TrimPrefix(relpath, "/")
	}
	cur := dirV
	for _, comp := range strings.Split(relpath, "/") {
		if comp == "" || comp == "." {
			continue
		}
		if comp == ".." {
			return SysError{Err: errno.EINVAL}, nil
		}
		switch c := cur.(type) {
		case *cap.Capability:
			next, err := c.Lookup(comp)
			if err != nil {
				return asSyserror(err)
			}
			cur = next
		case *contract.Sealed:
			view, err := c.View.Lookup(comp)
			if err != nil {
				return sealedFailure(err, "resolve")
			}
			inner, err := c.Inner.Lookup(comp)
			if err != nil {
				return asSyserror(err)
			}
			cur = c.Derive(inner, view)
		default:
			return nil, fmt.Errorf("resolve expects a directory capability")
		}
	}
	return cur, nil
}

// populateNativeWallet implements the trusted standard-library function
// of Figure 6: populate_native_wallet(wallet, root, path_spec,
// libpath_spec, pipe_factory [, known_deps]). Path specifications are
// colon-separated strings resolved against the root capability; the
// optional known_deps is a list of [name, path, ...] lists, defaulting
// to the table the paper's authors arrived at (§4.1).
func populateNativeWallet(it *Interp, args []Value, _ map[string]Value) (Value, error) {
	w, ok := args[0].(*wallet.Wallet)
	if !ok {
		return nil, fmt.Errorf("populate_native_wallet expects a wallet")
	}
	root := args[1]
	pathSpec, ok1 := args[2].(string)
	libSpec, ok2 := args[3].(string)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("populate_native_wallet expects path specification strings")
	}
	pf, ok := args[4].(*cap.Capability)
	if !ok || pf.Kind() != cap.KindPipeFactory {
		return nil, fmt.Errorf("populate_native_wallet expects a pipe factory")
	}

	addDirs := func(key, spec string, grant *priv.Grant) error {
		for _, p := range strings.Split(spec, ":") {
			if p == "" {
				continue
			}
			v, err := resolveRel(root, p)
			if err != nil {
				return err
			}
			dir, ok := v.(*cap.Capability)
			if !ok {
				continue // unresolved entries are skipped, like a missing $PATH dir
			}
			w.Put(key, dir.Restrict(grant, "native_wallet:"+key))
		}
		return nil
	}
	if err := addDirs(wallet.KeyPath, pathSpec, stdlib.PathDirGrant); err != nil {
		return nil, err
	}
	if err := addDirs(wallet.KeyLibPath, libSpec, stdlib.PathDirGrant); err != nil {
		return nil, err
	}
	w.Put(wallet.KeyPipeFactory, pf)

	// Known dependencies: explicit argument or the stock table.
	if len(args) >= 6 {
		deps, ok := args[5].([]Value)
		if !ok {
			return nil, fmt.Errorf("populate_native_wallet known_deps must be a list of [name, path...] lists")
		}
		for _, entry := range deps {
			row, ok := entry.([]Value)
			if !ok || len(row) < 2 {
				return nil, fmt.Errorf("known_deps entries must be [name, path...] lists")
			}
			name, ok := row[0].(string)
			if !ok {
				return nil, fmt.Errorf("known_deps entry name must be a string")
			}
			for _, pv := range row[1:] {
				path, ok := pv.(string)
				if !ok {
					return nil, fmt.Errorf("known_deps paths must be strings")
				}
				if err := putDep(w, root, name, path); err != nil {
					return nil, err
				}
			}
		}
	} else {
		for name, paths := range stdlib.KnownDeps {
			for _, path := range paths {
				if err := putDep(w, root, name, path); err != nil {
					return nil, err
				}
			}
		}
	}
	return nil, nil
}

func putDep(w *wallet.Wallet, root Value, name, path string) error {
	v, err := resolveRel(root, path)
	if err != nil {
		return err
	}
	if dep, ok := v.(*cap.Capability); ok {
		w.Put(wallet.DepPrefix+name, dep)
	}
	return nil
}

// pkgNative implements pkg_native(name, wallet) (§3.1.4): find the
// executable on the wallet's PATH, run ldd in a sandbox to discover its
// libraries, gather library and known-dependency capabilities, and
// return a contracted wrapper that encapsulates a call to exec.
func pkgNative(it *Interp, args []Value, _ map[string]Value) (Value, error) {
	name, ok := args[0].(string)
	if !ok {
		return nil, fmt.Errorf("pkg_native expects an executable name")
	}
	w, ok := args[1].(*wallet.Wallet)
	if !ok {
		return nil, fmt.Errorf("pkg_native expects a wallet")
	}
	if !w.IsNative() {
		return nil, fmt.Errorf("pkg_native expects a native wallet (PATH, LD_LIBRARY_PATH, pipe-factory)")
	}
	exe, err := w.FindExecutable(name)
	if err != nil {
		return asSyserror(fmt.Errorf("pkg_native: %s: %w", name, err))
	}

	libNames, err := runLdd(it, w, exe)
	if err != nil {
		return asSyserror(err)
	}
	var extras []*cap.Capability
	for _, lib := range libNames {
		c, lerr := w.FindLibrary(lib)
		if lerr != nil {
			return asSyserror(fmt.Errorf("pkg_native: library %s: %w", lib, lerr))
		}
		extras = append(extras, c.Restrict(stdlib.ReadOnlyFileGrant, "pkg_native:lib"))
	}
	extras = append(extras, w.KnownDeps(name)...)

	wrapper := &Builtin{
		Name:    "native:" + name,
		MinArgs: 1, MaxArgs: 1,
		NamedOK: []string{"stdin", "stdout", "stderr", "extras", "socket_factories", "workdir", "debug"},
		interp:  it,
		Fn: func(it *Interp, wargs []Value, named map[string]Value) (Value, error) {
			argv, ok := wargs[0].([]Value)
			if !ok {
				return nil, fmt.Errorf("%s expects an argument list", name)
			}
			merged := make(map[string]Value, len(named)+1)
			for k, v := range named {
				merged[k] = v
			}
			extraVals := make([]Value, 0, len(extras))
			for _, e := range extras {
				extraVals = append(extraVals, e)
			}
			if user, ok := merged["extras"].([]Value); ok {
				extraVals = append(extraVals, user...)
			}
			merged["extras"] = extraVals
			return it.execBuiltin([]Value{exe, argv}, merged)
		},
	}

	// The wrapper's contract — checked once per sandbox, which the
	// paper's profile shows dominating contract-checking time (§4.2).
	fileOrPipe := &contract.CapC{Mask: contract.MaskFile | contract.MaskPipe}
	wrapC := &contract.FuncC{
		Params: []contract.Param{{Name: "args", C: contract.IsList}},
		Named: map[string]contract.Contract{
			"stdin": fileOrPipe, "stdout": fileOrPipe, "stderr": fileOrPipe,
			"extras": contract.IsList, "socket_factories": contract.IsList,
			"workdir": contract.Any, "debug": contract.IsBool,
		},
		Result: contract.IsNum,
	}
	wrapped, err := contract.Apply(wrapC, wrapper, contract.Blame{Pos: "pkg_native", Neg: "caller of pkg_native"})
	if err != nil {
		return nil, err
	}
	return wrapped, nil
}

// runLdd executes ldd in its own sandbox and parses the library names
// from its output. This is the extra sandbox the paper counts for
// pkg-native (Download creates two sandboxes: "one for pkg-native and
// one for the executable, curl", §4.2).
func runLdd(it *Interp, w *wallet.Wallet, exe *cap.Capability) ([]string, error) {
	lddExe, err := w.FindExecutable("ldd")
	if err != nil {
		return nil, fmt.Errorf("pkg_native: ldd not found on wallet PATH: %w", err)
	}
	pf := w.PipeFactory()
	if pf == nil {
		return nil, fmt.Errorf("pkg_native: wallet has no pipe factory")
	}
	r, wEnd, err := pf.CreatePipe()
	if err != nil {
		return nil, err
	}
	var extras []*cap.Capability
	for _, d := range w.Get(wallet.KeyLibPath) {
		extras = append(extras, d)
	}
	done := make(chan error, 1)
	var out []byte
	go func() {
		data, rerr := r.Read()
		for rerr == nil && len(data) > 0 {
			out = append(out, data...)
			data, rerr = r.Read()
		}
		done <- rerr
	}()
	// ldd reads the executable by path; run it in its own sandbox with
	// the exe as a capability argument. This is the sandbox the paper
	// counts for pkg-native itself.
	res, execErr := sandbox.Exec(it.Runtime, lddExe,
		[]sandbox.Arg{sandbox.CapArg(exe)},
		sandbox.Options{Stdout: wEnd, Extras: extras, Prof: it.Prof})
	wEnd.Close()
	if err := <-done; err != nil {
		return nil, err
	}
	if execErr != nil {
		return nil, fmt.Errorf("pkg_native: ldd failed: %w", execErr)
	}
	if res.ExitCode != 0 {
		return nil, fmt.Errorf("pkg_native: ldd exited with status %d", res.ExitCode)
	}
	var libs []string
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if i := strings.Index(line, " => "); i > 0 {
			libs = append(libs, strings.TrimSpace(line[:i]))
		}
	}
	return libs, nil
}
