package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the parser random strings and random
// token-shaped soup: it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	fn := func(raw string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", raw, r)
			}
		}()
		Parse(raw)
		Parse("#lang shill/cap\n" + raw)
		Parse("#lang shill/ambient\n" + raw)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParserTokenSoup builds inputs from the language's own token
// vocabulary, which reaches much deeper into the parser than random
// bytes.
func TestParserTokenSoup(t *testing.T) {
	vocab := []string{
		"provide", "require", "fun", "if", "then", "else", "for", "in",
		"forall", "with", "true", "false", "listof",
		"x", "file", "dir", "is_file", "\"s\"", "42",
		"(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "->", "+",
		"-", "*", "/", "&&", "||", "!", "\\/", ".", "<", ">",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := rng.Intn(40)
		var b strings.Builder
		b.WriteString("#lang shill/cap\n")
		for j := 0; j < n; j++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b.String(), r)
				}
			}()
			Parse(b.String())
		}()
	}
}

// TestLexerNeverPanics covers the tokenizer alone.
func TestLexerNeverPanics(t *testing.T) {
	fn := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", raw, r)
			}
		}()
		Lex(string(raw))
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepNestingTerminates guards the recursive-descent parser against
// pathological nesting (it may error, but must return).
func TestDeepNestingTerminates(t *testing.T) {
	depth := 2000
	src := "#lang shill/cap\nx = " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + ";\n"
	if _, err := Parse(src); err != nil {
		// An error is acceptable; hanging or crashing is not.
		t.Logf("deep nesting rejected: %v", err)
	}
}
