package lang

import (
	"sync"

	"repro/internal/cap"
)

// Language-level sockets are minted straight on the network stack (not
// in any process's descriptor table), so nothing closes them when a run
// ends: a pooled session outlives its runs, and a cancelled — or merely
// sloppy — script would otherwise leave its listeners bound forever.
// The interpreter therefore tracks every socket its builtins mint, and
// the run driver sweeps leftovers with CloseLeftoverSockets.

// sockTracker is the per-interpreter registry of minted sockets.
type sockTracker struct {
	mu    sync.Mutex
	socks []*cap.Capability
}

// trackSocket remembers a socket capability minted by this run.
func (it *Interp) trackSocket(c *cap.Capability) {
	it.socks.mu.Lock()
	it.socks.socks = append(it.socks.socks, c)
	it.socks.mu.Unlock()
}

// CloseLeftoverSockets closes every socket this interpreter minted and
// the script did not close itself, returning how many were still open.
// Callers run it after every script, successful or cancelled; scripts
// that close their sockets (as the generated conformance programs do)
// are unaffected.
func (it *Interp) CloseLeftoverSockets() int {
	it.socks.mu.Lock()
	socks := it.socks.socks
	it.socks.socks = nil
	it.socks.mu.Unlock()
	n := 0
	for _, c := range socks {
		if c.SocketOpen() {
			n++
			c.SocketClose()
		}
	}
	return n
}
