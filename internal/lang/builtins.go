package lang

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cap"
	"repro/internal/contract"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/sandbox"
	"repro/internal/vfs"
	"repro/internal/wallet"
)

// coreEnv builds the global environment shared by capability-safe
// scripts: predicates, capability operations, exec, and general string,
// list, and number helpers. Nothing in here confers ambient authority —
// every resource operation consumes a capability (§3.1.2).
func (it *Interp) coreEnv() *Env {
	env := NewEnv(nil)
	def := func(name string, v Value) {
		if err := env.Define(name, v); err != nil {
			panic(err)
		}
	}
	bi := func(name string, minA, maxA int, named []string,
		fn func(it *Interp, args []Value, named map[string]Value) (Value, error)) {
		def(name, &Builtin{Name: name, MinArgs: minA, MaxArgs: maxA, NamedOK: named, Fn: fn, interp: it})
	}

	// Predicates double as contracts.
	for _, p := range []*contract.Pred{
		contract.IsFile, contract.IsDir, contract.IsPipe, contract.IsBool,
		contract.IsString, contract.IsNum, contract.IsList, contract.IsFunc,
		contract.IsWallet, contract.IsPipeFactory, contract.IsSocketFactory,
		contract.Any,
	} {
		def(p.Name, predValue{p})
	}
	def("is_syserror", predValue{&contract.Pred{Name: "is_syserror", Fn: func(v Value) bool {
		_, ok := v.(SysError)
		return ok
	}}})
	def("is_void", predValue{&contract.Pred{Name: "is_void", Fn: func(v Value) bool {
		return v == nil
	}}})

	// --- capability operations ---

	bi("lookup", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("lookup expects a name string")
		}
		switch c := args[0].(type) {
		case *cap.Capability:
			child, err := c.Lookup(name)
			if err != nil {
				return asSyserror(err)
			}
			return child, nil
		case *contract.Sealed:
			view, err := c.View.Lookup(name)
			if err != nil {
				return sealedFailure(err, "lookup")
			}
			inner, err := c.Inner.Lookup(name)
			if err != nil {
				return asSyserror(err)
			}
			return c.Derive(inner, view), nil
		}
		return nil, fmt.Errorf("lookup expects a directory capability, got %s", FormatValue(args[0]))
	})

	bi("contents", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "contents")
		if err != nil {
			return nil, err
		}
		names, cerr := c.Contents()
		if cerr != nil {
			return opResult(args[0], cerr, "contents")
		}
		out := make([]Value, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})

	bi("read", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "read")
		if err != nil {
			return nil, err
		}
		data, rerr := c.Read()
		if rerr != nil {
			return opResult(args[0], rerr, "read")
		}
		return string(data), nil
	})

	bi("write", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "write")
		if err != nil {
			return nil, err
		}
		s, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("write expects a string")
		}
		if werr := c.Write([]byte(s)); werr != nil {
			return opResult(args[0], werr, "write")
		}
		return nil, nil
	})

	bi("append", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "append")
		if err != nil {
			return nil, err
		}
		s, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("append expects a string")
		}
		if werr := c.Append([]byte(s)); werr != nil {
			return opResult(args[0], werr, "append")
		}
		return nil, nil
	})

	bi("path", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "path")
		if err != nil {
			return nil, err
		}
		p, perr := c.Path()
		if perr != nil {
			return opResult(args[0], perr, "path")
		}
		return p, nil
	})

	bi("name", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "name")
		if err != nil {
			return nil, err
		}
		return c.Name(), nil
	})

	bi("size", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "size")
		if err != nil {
			return nil, err
		}
		st, serr := c.Stat()
		if serr != nil {
			return opResult(args[0], serr, "size")
		}
		return float64(st.Size), nil
	})

	bi("has_ext", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "has_ext")
		if err != nil {
			return nil, err
		}
		ext, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("has_ext expects an extension string")
		}
		return strings.HasSuffix(c.Name(), "."+strings.TrimPrefix(ext, ".")), nil
	})

	bi("create_file", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		return createIn(args[0], args[1], false)
	})
	bi("create_dir", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		return createIn(args[0], args[1], true)
	})

	bi("unlink", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "unlink")
		if err != nil {
			return nil, err
		}
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("unlink expects a name string")
		}
		if uerr := c.Unlink(name); uerr != nil {
			return opResult(args[0], uerr, "unlink")
		}
		return nil, nil
	})

	bi("unlink_cap", 3, 3, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		dir, err := viewOf(args[0], "unlink_cap")
		if err != nil {
			return nil, err
		}
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("unlink_cap expects a name string")
		}
		file, err := viewOf(args[2], "unlink_cap")
		if err != nil {
			return nil, err
		}
		if uerr := dir.UnlinkCap(name, file); uerr != nil {
			return opResult(args[0], uerr, "unlink_cap")
		}
		return nil, nil
	})

	bi("link", 3, 3, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		dir, err := viewOf(args[0], "link")
		if err != nil {
			return nil, err
		}
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("link expects a name string")
		}
		file, err := viewOf(args[2], "link")
		if err != nil {
			return nil, err
		}
		if lerr := dir.Link(name, file); lerr != nil {
			return opResult(args[0], lerr, "link")
		}
		return nil, nil
	})

	bi("rename", 4, 4, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		src, err := viewOf(args[0], "rename")
		if err != nil {
			return nil, err
		}
		srcName, ok1 := args[1].(string)
		dst, err := viewOf(args[2], "rename")
		if err != nil {
			return nil, err
		}
		dstName, ok2 := args[3].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("rename expects name strings")
		}
		if rerr := src.Rename(srcName, dst, dstName); rerr != nil {
			return opResult(args[0], rerr, "rename")
		}
		return nil, nil
	})

	bi("create_symlink", 3, 3, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "create_symlink")
		if err != nil {
			return nil, err
		}
		name, ok1 := args[1].(string)
		target, ok2 := args[2].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("create_symlink expects name and target strings")
		}
		if serr := c.CreateSymlink(name, target); serr != nil {
			return opResult(args[0], serr, "create_symlink")
		}
		return nil, nil
	})

	bi("read_symlink", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "read_symlink")
		if err != nil {
			return nil, err
		}
		name, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("read_symlink expects a name string")
		}
		child, serr := c.ReadSymlink(name)
		if serr != nil {
			return opResult(args[0], serr, "read_symlink")
		}
		return child, nil
	})

	bi("close", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, err := viewOf(args[0], "close")
		if err != nil {
			return nil, err
		}
		c.Close()
		if orig, ok := args[0].(*cap.Capability); ok {
			orig.Close()
		}
		return nil, nil
	})

	bi("create_pipe", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		c, ok := args[0].(*cap.Capability)
		if !ok || c.Kind() != cap.KindPipeFactory {
			return nil, fmt.Errorf("create_pipe expects a pipe factory")
		}
		r, w, err := c.CreatePipe()
		if err != nil {
			return asSyserror(err)
		}
		return []Value{r, w}, nil
	})

	// --- sandboxed execution (§2.3) ---

	bi("exec", 2, 2, []string{"stdin", "stdout", "stderr", "extras", "socket_factories", "workdir", "debug", "timeout_files"},
		func(it *Interp, args []Value, named map[string]Value) (Value, error) {
			return it.execBuiltin(args, named)
		})

	// --- strings, lists, numbers ---

	bi("strlen", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("strlen expects a string")
		}
		return float64(len(s)), nil
	})
	bi("to_string", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		return FormatValue(args[0]), nil
	})
	bi("split", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("split expects two strings")
		}
		parts := strings.Split(s, sep)
		out := make([]Value, len(parts))
		for i, part := range parts {
			out[i] = part
		}
		return out, nil
	})
	bi("starts_with", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		s, ok1 := args[0].(string)
		prefix, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("starts_with expects two strings")
		}
		return strings.HasPrefix(s, prefix), nil
	})
	bi("contains", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("contains expects two strings")
		}
		return strings.Contains(s, sub), nil
	})
	bi("length", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		l, ok := args[0].([]Value)
		if !ok {
			return nil, fmt.Errorf("length expects a list")
		}
		return float64(len(l)), nil
	})
	bi("nth", 2, 2, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		l, ok1 := args[0].([]Value)
		i, ok2 := args[1].(float64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("nth expects a list and an index")
		}
		idx := int(i)
		if idx < 0 || idx >= len(l) {
			return SysError{Err: errno.EINVAL}, nil
		}
		return l[idx], nil
	})
	bi("rest", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		l, ok := args[0].([]Value)
		if !ok {
			return nil, fmt.Errorf("rest expects a list")
		}
		if len(l) == 0 {
			return []Value{}, nil
		}
		return append([]Value{}, l[1:]...), nil
	})
	bi("range", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		n, ok := args[0].(float64)
		if !ok || n < 0 {
			return nil, fmt.Errorf("range expects a non-negative number")
		}
		out := make([]Value, int(n))
		for i := range out {
			out[i] = float64(i)
		}
		return out, nil
	})
	bi("error", 1, 1, nil, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		return nil, fmt.Errorf("script error: %s", FormatValue(args[0]))
	})

	return env
}

// viewOf extracts the capability a read-style operation should act
// through: the capability itself, or a sealed capability's attenuated
// view (§2.4.2).
func viewOf(v Value, op string) (*cap.Capability, error) {
	switch c := v.(type) {
	case *cap.Capability:
		return c, nil
	case *contract.Sealed:
		return c.View, nil
	}
	return nil, fmt.Errorf("%s expects a capability, got %s", op, FormatValue(v))
}

// opResult converts an operation failure into a SHILL value or error: on
// sealed capabilities a privilege failure is a contract violation (the
// body exceeded the polymorphic bound); otherwise it is a syserror
// value.
func opResult(orig Value, err error, op string) (Value, error) {
	if _, sealed := orig.(*contract.Sealed); sealed {
		return sealedFailure(err, op)
	}
	return asSyserror(err)
}

func sealedFailure(err error, op string) (Value, error) {
	var np *cap.NoPrivilegeError
	if errors.As(err, &np) {
		return nil, &contract.Violation{
			Contract: "forall-bounded capability",
			Blamed:   "function body",
			Message:  fmt.Sprintf("operation %q exceeds the polymorphic bound: %v", op, np.Missing),
		}
	}
	return asSyserror(err)
}

func createIn(dirV Value, nameV Value, isDir bool) (Value, error) {
	name, ok := nameV.(string)
	if !ok {
		return nil, fmt.Errorf("create expects a name string")
	}
	c, err := viewOf(dirV, "create")
	if err != nil {
		return nil, err
	}
	var child *cap.Capability
	var cerr error
	if isDir {
		child, cerr = c.CreateDir(name, 0o755)
	} else {
		child, cerr = c.CreateFile(name, 0o644)
	}
	if cerr != nil {
		return opResult(dirV, cerr, "create")
	}
	return child, nil
}

// execBuiltin implements exec(exe, argv, stdin=..., ...) (§2.3).
func (it *Interp) execBuiltin(args []Value, named map[string]Value) (Value, error) {
	exe, err := viewOf(args[0], "exec")
	if err != nil {
		return nil, err
	}
	argvList, ok := args[1].([]Value)
	if !ok {
		return nil, fmt.Errorf("exec expects a list of arguments")
	}
	sargs := make([]sandbox.Arg, 0, len(argvList))
	for _, a := range argvList {
		switch t := a.(type) {
		case string:
			sargs = append(sargs, sandbox.StrArg(t))
		case float64:
			sargs = append(sargs, sandbox.StrArg(FormatValue(t)))
		case *cap.Capability:
			sargs = append(sargs, sandbox.CapArg(t))
		case *contract.Sealed:
			sargs = append(sargs, sandbox.CapArg(t.View))
		default:
			return nil, fmt.Errorf("exec arguments must be strings or capabilities, got %s", FormatValue(a))
		}
	}
	opts := sandbox.Options{Prof: it.Prof, Trace: it.Trace, TraceParent: it.TraceParent}
	capOpt := func(key string) (*cap.Capability, error) {
		v, ok := named[key]
		if !ok || v == nil {
			return nil, nil
		}
		return viewOf(v, "exec "+key)
	}
	if opts.Stdin, err = capOpt("stdin"); err != nil {
		return nil, err
	}
	if opts.Stdout, err = capOpt("stdout"); err != nil {
		return nil, err
	}
	if opts.Stderr, err = capOpt("stderr"); err != nil {
		return nil, err
	}
	if opts.WorkDir, err = capOpt("workdir"); err != nil {
		return nil, err
	}
	if v, ok := named["extras"]; ok && v != nil {
		list, ok := v.([]Value)
		if !ok {
			return nil, fmt.Errorf("exec extras must be a list")
		}
		for _, e := range list {
			c, err := viewOf(e, "exec extras")
			if err != nil {
				return nil, err
			}
			opts.Extras = append(opts.Extras, c)
		}
	}
	if v, ok := named["socket_factories"]; ok && v != nil {
		list, ok := v.([]Value)
		if !ok {
			return nil, fmt.Errorf("exec socket_factories must be a list")
		}
		for _, e := range list {
			c, ok := e.(*cap.Capability)
			if !ok || c.Kind() != cap.KindSocketFactory {
				return nil, fmt.Errorf("exec socket_factories must contain socket factories")
			}
			opts.SocketFactories = append(opts.SocketFactories, c)
		}
	}
	if v, ok := named["debug"]; ok {
		if b, ok := v.(bool); ok {
			opts.Debug = b
		}
	}
	if v, ok := named["timeout_files"]; ok {
		if n, ok := v.(float64); ok {
			lim := kernel.DefaultUlimits()
			lim.MaxOpenFiles = int(n)
			opts.Limits = &lim
		}
	}
	res, err := sandbox.Exec(it.Runtime, exe, sargs, opts)
	if err != nil {
		return asSyserror(err)
	}
	return float64(res.ExitCode), nil
}

// bindAmbient adds the ambient-only builtins: minting capabilities from
// global names using the invoking user's ambient authority (§2.5).
func (it *Interp) bindAmbient(env *Env) {
	def := func(name string, v Value) {
		if err := env.Define(name, v); err != nil {
			panic(err)
		}
	}
	bi := func(name string, minA, maxA int,
		fn func(it *Interp, args []Value, named map[string]Value) (Value, error)) {
		def(name, &Builtin{Name: name, MinArgs: minA, MaxArgs: maxA, Fn: fn, interp: it})
	}

	open := func(path string, wantDir bool) (Value, error) {
		vn, err := it.resolveAmbient(path)
		if err != nil {
			return asSyserror(err)
		}
		if wantDir != vn.IsDir() {
			return asSyserror(errno.ENOTDIR)
		}
		// The capability has all privileges the invoking user is allowed
		// for this resource (§2.5); DAC still applies at operation time.
		origin := "open_file"
		if wantDir {
			origin = "open_dir"
		}
		return cap.NewForVnode(it.Runtime, vn, priv.FullGrant()).Announce(origin), nil
	}

	bi("open_file", 1, 1, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("open_file expects a path string")
		}
		return open(path, false)
	})
	bi("open_dir", 1, 1, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("open_dir expects a path string")
		}
		return open(path, true)
	})
	bi("pipe_factory", 0, 0, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		return cap.NewPipeFactory(it.Runtime).Announce("pipe_factory"), nil
	})
	bi("socket_factory", 1, 1, func(it *Interp, args []Value, _ map[string]Value) (Value, error) {
		domain, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("socket_factory expects \"ip\" or \"unix\"")
		}
		var d netstack.Domain
		switch domain {
		case "ip":
			d = netstack.DomainIP
		case "unix":
			d = netstack.DomainUnix
		default:
			return nil, fmt.Errorf("socket_factory expects \"ip\" or \"unix\", got %q", domain)
		}
		return cap.NewSocketFactory(it.Runtime, d, priv.GrantOf(priv.AllSock)).Announce("socket_factory"), nil
	})

	// Standard streams: console-device capabilities.
	if con := it.consoleCap(); con != nil {
		def("stdin", con)
		def("stdout", con)
		def("stderr", con)
	}
}

// consoleCap returns a capability for the interpreter's console device
// (ConsolePath, defaulting to /dev/console) if the image has one.
func (it *Interp) consoleCap() *cap.Capability {
	path := it.ConsolePath
	if path == "" {
		path = "/dev/console"
	}
	vn, err := it.Runtime.Kernel().FS.Resolve(path)
	if err != nil {
		return nil
	}
	return cap.NewFile(it.Runtime, vn, priv.FullGrant())
}

// resolveAmbient walks an absolute or home-relative path with the
// runtime's ambient authority (DAC checks via the runtime process).
func (it *Interp) resolveAmbient(path string) (*vfs.Vnode, error) {
	if strings.HasPrefix(path, "~") {
		path = "/home/user" + strings.TrimPrefix(path, "~")
	}
	fd, err := it.Runtime.OpenAt(kernel.AtCWD, path, kernel.ORead|kernel.ONoFollow, 0)
	if err != nil {
		// Directories and write-protected files still resolve: fall back
		// to a stat-style walk.
		fd, err = it.Runtime.OpenAt(kernel.AtCWD, path, kernel.ODirectory|kernel.ORead, 0)
		if err != nil {
			st, serr := it.Runtime.FStatAt(kernel.AtCWD, path, true)
			_ = st
			if serr != nil {
				return nil, serr
			}
			return it.Runtime.Kernel().FS.Resolve(path)
		}
	}
	desc, derr := it.Runtime.FD(fd)
	if derr != nil {
		return nil, derr
	}
	vn := desc.Vnode()
	it.Runtime.Close(fd)
	if vn == nil {
		return nil, errno.EINVAL
	}
	return vn, nil
}

var _ = wallet.New // wallet is used by the stdlib modules in stdlib.go
