// Compiled execution path: a resolver/compiler pass that turns a
// parsed script into a flattened, pre-resolved form — slot-indexed
// environments instead of map lookups, interned fallback identifiers,
// constant-folded literals, and coarser cancellation polls (loop
// back-edges and closure calls instead of every statement). The
// compiled form is executed by exec.go; both engines stay live behind
// Interp.SetEngine, and the differential conformance suites hold them
// to byte-identical observable behaviour.
//
// A CompiledProgram is interpreter-independent: compiled code closes
// over static data only (slot references, constants, sub-code), while
// all run state — the interpreter, the base environment, the fallback
// cells — travels through the frame. That is what makes a
// content-hash-keyed CompileCache shareable across sessions and
// tenants on one machine.
package lang

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
)

// Engine selects the execution path of an Interp.
type Engine uint8

// Engines. EngineTreeWalk is the original AST interpreter;
// EngineCompiled is the slot-resolved compiled path.
const (
	EngineTreeWalk Engine = iota
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineTreeWalk:
		return "tree-walk"
	case EngineCompiled:
		return "compiled"
	}
	return "unknown"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "tree-walk", "treewalk", "tw":
		return EngineTreeWalk, nil
	case "compiled", "compile", "vm":
		return EngineCompiled, nil
	}
	return 0, fmt.Errorf(`lang: unknown engine %q (want "tree-walk" or "compiled")`, s)
}

// SetEngine selects the execution path for subsequent RunAmbient and
// LoadModule calls.
func (it *Interp) SetEngine(e Engine) { it.engine = e }

// EngineKind reports the interpreter's selected execution path.
func (it *Interp) EngineKind() Engine { return it.engine }

// --- compiled program ---

// topKind classifies one top-level operation of a compiled script.
type topKind uint8

const (
	topStmt       topKind = iota // a compiled bind or expression statement
	topRequire                   // a module import
	topFunBind                   // ambient dialect: a function definition (error at reach time)
	topDisallowed                // ambient dialect: any other disallowed statement
)

// topOp is one top-level operation. Ambient-dialect restrictions
// compile into error ops rather than compile-time errors so they fire
// in execution order, exactly when the tree-walk engine reaches the
// offending statement (console output written before it must survive).
type topOp struct {
	kind   topKind
	line   int
	module string // topRequire: module name
	isFile bool   // topRequire: file vs stdlib module
	code   code   // topStmt: the compiled statement
}

// provideRef is one collected provide of a capability-safe script.
type provideRef struct {
	name     string
	contract CExpr
}

// CompiledProgram is a parsed and compiled script, ready to execute on
// any interpreter.
type CompiledProgram struct {
	dialect   Dialect
	nslots    int            // top-scope slot count
	topNames  map[string]int // top-scope name → slot
	cellNames []string       // interned fallback identifiers
	top       []topOp
	provides  []provideRef
}

// Dialect reports the compiled script's dialect.
func (p *CompiledProgram) Dialect() Dialect { return p.dialect }

// Compile parses and compiles a script. The only errors are parse
// errors: every static restriction (ambient dialect rules, duplicate
// bindings, nested require/provide) is deferred to execution so the
// compiled engine reports it at the same point in the run as the
// tree-walk engine.
func Compile(src string) (*CompiledProgram, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return compileScript(script), nil
}

// compileSource compiles through the interpreter's cache when one is
// installed. The bool reports a cache hit (always false without a
// cache), feeding the compile span's hit/miss detail and the server's
// shilld_compile_seconds{cache=...} histogram.
func (it *Interp) compileSource(src string) (*CompiledProgram, bool, error) {
	if c := it.CompileCache; c != nil {
		return c.get(src)
	}
	prog, err := Compile(src)
	return prog, false, err
}

// --- compile cache ---

// CompileCache memoizes compiled programs by content hash. It is safe
// for concurrent use; keying by the script text itself (not its name)
// means a tenant updating a script under the same name can never
// execute a stale compilation.
type CompileCache struct {
	entries sync.Map // [32]byte → *cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	prog *CompiledProgram
	err  error
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache { return &CompileCache{} }

// Get returns the compiled form of src, compiling on first sight.
// Parse errors are cached too, so a repeatedly-submitted broken script
// does not pay a re-parse per request.
func (c *CompileCache) Get(src string) (*CompiledProgram, error) {
	prog, _, err := c.get(src)
	return prog, err
}

// get is Get plus a hit report, so the tracing layer can label the
// compile span hit/miss without racing on the global counters.
func (c *CompileCache) get(src string) (*CompiledProgram, bool, error) {
	key := sha256.Sum256([]byte(src))
	if v, ok := c.entries.Load(key); ok {
		c.hits.Add(1)
		e := v.(*cacheEntry)
		return e.prog, true, e.err
	}
	c.misses.Add(1)
	prog, err := Compile(src)
	v, _ := c.entries.LoadOrStore(key, &cacheEntry{prog: prog, err: err})
	e := v.(*cacheEntry)
	return e.prog, false, e.err
}

// Stats reports cache hits and misses.
func (c *CompileCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// --- compiler ---

// cscope is a compile-time scope: the complete set of names the
// corresponding runtime frame will ever bind. Name sets are collected
// before bodies are compiled, so closures can reference bindings made
// later in the same scope (runtime set-checks give the tree-walk
// engine's flow-sensitive visibility).
type cscope struct {
	parent *cscope
	names  map[string]int
	n      int
	mat    bool // materializes a runtime frame (block scopes with no binds do not)
	top    bool // the script's top scope, backed by the run's base environment
}

func (sc *cscope) define(name string) int {
	if i, ok := sc.names[name]; ok {
		return i
	}
	i := sc.n
	sc.names[name] = i
	sc.n++
	return i
}

// compiler holds cross-scope compile state.
type compiler struct {
	cells  map[string]int // interned fallback identifiers
	names  []string
	sawFun bool // a FunLit was compiled (loop-frame freshness)
}

func (c *compiler) cell(name string) int {
	if i, ok := c.cells[name]; ok {
		return i
	}
	i := len(c.names)
	c.cells[name] = i
	c.names = append(c.names, name)
	return i
}

// blockScope collects the names a statement block binds. seed names
// (loop variable, parameters) get the first slots.
func blockScope(parent *cscope, stmts []Stmt, seed ...string) *cscope {
	sc := &cscope{parent: parent, names: make(map[string]int)}
	for _, n := range seed {
		sc.define(n)
	}
	for _, st := range stmts {
		if b, ok := st.(*BindStmt); ok {
			sc.define(b.Name)
		}
	}
	sc.mat = sc.n > 0
	return sc
}

func compileScript(s *Script) *CompiledProgram {
	c := &compiler{cells: make(map[string]int)}
	top := &cscope{names: make(map[string]int), mat: true, top: true}
	for _, st := range s.Stmts {
		if b, ok := st.(*BindStmt); ok {
			top.define(b.Name)
		}
	}
	prog := &CompiledProgram{dialect: s.Dialect}
	for _, st := range s.Stmts {
		switch t := st.(type) {
		case *RequireStmt:
			prog.top = append(prog.top, topOp{kind: topRequire, line: t.Pos(), module: t.Module, isFile: t.IsFile})
		case *ProvideStmt:
			if s.Dialect == DialectCap {
				// Collected, not executed: provides resolve after the whole
				// body has run, wherever they appear in the file.
				prog.provides = append(prog.provides, provideRef{name: t.Name, contract: t.Contract})
			} else {
				prog.top = append(prog.top, topOp{kind: topDisallowed, line: t.Pos()})
			}
		case *BindStmt:
			if s.Dialect == DialectAmbient {
				if _, isFun := t.Expr.(*FunLit); isFun {
					prog.top = append(prog.top, topOp{kind: topFunBind, line: t.Pos()})
					continue
				}
			}
			prog.top = append(prog.top, topOp{kind: topStmt, line: t.Pos(), code: c.compileStmt(t, top)})
		case *ExprStmt:
			prog.top = append(prog.top, topOp{kind: topStmt, line: t.Pos(), code: c.compileStmt(t, top)})
		default: // IfStmt, ForStmt
			if s.Dialect == DialectAmbient {
				prog.top = append(prog.top, topOp{kind: topDisallowed, line: st.Pos()})
			} else {
				prog.top = append(prog.top, topOp{kind: topStmt, line: st.Pos(), code: c.compileStmt(st, top)})
			}
		}
	}
	prog.nslots = top.n
	prog.topNames = top.names
	prog.cellNames = c.names
	return prog
}

// compileStmt compiles one statement. The returned code reproduces the
// tree-walk engine's error text and error ordering exactly; only the
// cancellation poll points are coarser (loop back-edges and calls).
func (c *compiler) compileStmt(s Stmt, sc *cscope) code {
	switch st := s.(type) {
	case *BindStmt:
		return c.compileBind(st, sc)
	case *ExprStmt:
		return c.compileExpr(st.Expr, sc)
	case *IfStmt:
		return c.compileIf(st, sc)
	case *ForStmt:
		return c.compileFor(st, sc)
	case *RequireStmt:
		line := st.Pos()
		return func(*cframe) (Value, error) {
			return nil, fmt.Errorf("line %d: require is only allowed at the top of a script", line)
		}
	case *ProvideStmt:
		line := st.Pos()
		return func(*cframe) (Value, error) {
			return nil, fmt.Errorf("line %d: provide is only allowed at the top level of a capability-safe script", line)
		}
	}
	return func(*cframe) (Value, error) { return nil, fmt.Errorf("unknown statement %T", s) }
}

func (c *compiler) compileBind(st *BindStmt, sc *cscope) code {
	slot := sc.define(st.Name)
	expr := c.compileExpr(st.Expr, sc)
	name := st.Name
	line := st.Pos()
	if sc.top {
		// The top scope shares its namespace with the base environment
		// (ambient builtins and module imports live there), so a bind
		// must also collide with those — one env map in the tree-walk
		// engine, a slot set plus a map check here.
		return func(f *cframe) (Value, error) {
			v, err := expr(f)
			if err != nil {
				return nil, err
			}
			nameClosure(v, name)
			if f.slots[slot] != unset || f.run.base.hasLocal(name) {
				return nil, fmt.Errorf("line %d: duplicate definition of %q (SHILL bindings are immutable)", line, name)
			}
			f.slots[slot] = v
			return nil, nil
		}
	}
	return func(f *cframe) (Value, error) {
		v, err := expr(f)
		if err != nil {
			return nil, err
		}
		nameClosure(v, name)
		if f.slots[slot] != unset {
			return nil, fmt.Errorf("line %d: duplicate definition of %q (SHILL bindings are immutable)", line, name)
		}
		f.slots[slot] = v
		return nil, nil
	}
}

// nameClosure names an anonymous function by its binding, matching the
// tree-walk engine.
func nameClosure(v Value, name string) {
	switch cl := v.(type) {
	case *Closure:
		if cl.name == "" {
			cl.name = name
		}
	case *compiledClosure:
		if cl.name == "" {
			cl.name = name
		}
	}
}

func (c *compiler) compileIf(st *IfStmt, sc *cscope) code {
	cond := c.compileExpr(st.Cond, sc)
	line := st.Pos()
	thenScope := blockScope(sc, st.Then)
	thenCode := c.compileBlock(st.Then, thenScope)
	thenSlots := thenScope.n
	thenMat := thenScope.mat
	var elseCode []code
	var elseSlots int
	var elseMat bool
	if st.Else != nil {
		elseScope := blockScope(sc, st.Else)
		elseCode = c.compileBlock(st.Else, elseScope)
		elseSlots = elseScope.n
		elseMat = elseScope.mat
	}
	hasElse := st.Else != nil
	return func(f *cframe) (Value, error) {
		cv, err := cond(f)
		if err != nil {
			return nil, err
		}
		b, err := truthy(cv, "if condition")
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if b {
			return execBlock(thenCode, blockFrame(f, thenMat, thenSlots))
		}
		if hasElse {
			return execBlock(elseCode, blockFrame(f, elseMat, elseSlots))
		}
		return nil, nil
	}
}

func (c *compiler) compileFor(st *ForStmt, sc *cscope) code {
	seq := c.compileExpr(st.Seq, sc)
	line := st.Pos()
	body := blockScope(sc, st.Body, st.Var)
	varSlot := body.names[st.Var]
	saw := c.sawFun
	c.sawFun = false
	bodyCode := c.compileBlock(st.Body, body)
	captures := c.sawFun // the body creates closures: they may capture per-iteration frames
	c.sawFun = saw || captures
	nslots := body.n
	return func(f *cframe) (Value, error) {
		sv, err := seq(f)
		if err != nil {
			return nil, err
		}
		list, ok := sv.([]Value)
		if !ok {
			return nil, fmt.Errorf("line %d: for expects a list, got %s", line, FormatValue(sv))
		}
		var bf *cframe
		for _, item := range list {
			// Loop back-edges are the compiled engine's in-loop
			// cancellation points.
			if err := f.run.it.checkCancel(); err != nil {
				return nil, err
			}
			if bf == nil || captures {
				bf = newFrame(f.run, f, nslots)
			} else {
				for i := range bf.slots {
					bf.slots[i] = unset
				}
			}
			bf.slots[varSlot] = item
			for _, bc := range bodyCode {
				if _, err := bc(bf); err != nil {
					return nil, err
				}
			}
		}
		return nil, nil
	}
}

func (c *compiler) compileBlock(stmts []Stmt, sc *cscope) []code {
	out := make([]code, len(stmts))
	for i, st := range stmts {
		out[i] = c.compileStmt(st, sc)
	}
	return out
}

// --- expressions ---

// constCode wraps a compile-time constant.
func constCode(v Value) code {
	return func(*cframe) (Value, error) { return v, nil }
}

// compileExpr compiles an expression; scalar literals (and error-free
// operations over them) fold to constants.
func (c *compiler) compileExpr(e Expr, sc *cscope) code {
	code, _, _ := c.compileExprConst(e, sc)
	return code
}

func (c *compiler) compileExprConst(e Expr, sc *cscope) (code, Value, bool) {
	switch ex := e.(type) {
	case *Ident:
		r := c.identRef(ex.Name, ex.Pos(), sc)
		return func(f *cframe) (Value, error) { return f.lookup(r) }, nil, false
	case *StringLit:
		return constCode(ex.Value), ex.Value, true
	case *NumberLit:
		return constCode(ex.Value), ex.Value, true
	case *BoolLit:
		return constCode(ex.Value), ex.Value, true
	case *ListLit:
		elems := make([]code, len(ex.Elems))
		for i, el := range ex.Elems {
			elems[i] = c.compileExpr(el, sc)
		}
		// Lists are freshly allocated per evaluation, like the
		// tree-walk engine — never folded, so no two evaluations share
		// a backing array.
		return func(f *cframe) (Value, error) {
			out := make([]Value, len(elems))
			for i, el := range elems {
				v, err := el(f)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}, nil, false
	case *FunLit:
		def := c.compileFun(ex, sc)
		return func(f *cframe) (Value, error) {
			return &compiledClosure{def: def, env: f, run: f.run}, nil
		}, nil, false
	case *UnaryExpr:
		return c.compileUnary(ex, sc)
	case *BinaryExpr:
		return c.compileBinary(ex, sc)
	case *CallExpr:
		return c.compileCall(ex, sc), nil, false
	}
	return func(*cframe) (Value, error) { return nil, fmt.Errorf("unknown expression %T", e) }, nil, false
}

func (c *compiler) identRef(name string, line int, sc *cscope) *identRef {
	r := &identRef{name: name, line: line, cell: c.cell(name)}
	hops := 0
	for s := sc; s != nil; s = s.parent {
		if !s.mat {
			continue
		}
		if slot, ok := s.names[name]; ok {
			r.cands = append(r.cands, slotRef{hops: hops, slot: slot})
		}
		hops++
	}
	return r
}

func (c *compiler) compileFun(ex *FunLit, sc *cscope) *cfundef {
	c.sawFun = true
	body := &cscope{parent: sc, names: make(map[string]int), mat: true}
	def := &cfundef{params: ex.Params}
	for _, p := range ex.Params {
		if _, dup := body.names[p]; dup && def.dupParam == "" {
			def.dupParam = p
		}
		body.define(p)
	}
	for _, st := range ex.Body {
		if b, ok := st.(*BindStmt); ok {
			body.define(b.Name)
		}
	}
	def.paramSlots = make([]int, len(ex.Params))
	for i, p := range ex.Params {
		def.paramSlots[i] = body.names[p]
	}
	def.body = c.compileBlock(ex.Body, body)
	def.nslots = body.n
	return def
}

func (c *compiler) compileUnary(ex *UnaryExpr, sc *cscope) (code, Value, bool) {
	xc, xv, xk := c.compileExprConst(ex.X, sc)
	line := ex.Pos()
	switch ex.Op {
	case "!":
		if xk {
			if b, ok := xv.(bool); ok {
				return constCode(!b), !b, true
			}
		}
		return func(f *cframe) (Value, error) {
			x, err := xc(f)
			if err != nil {
				return nil, err
			}
			b, err := truthy(x, "operator !")
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			return !b, nil
		}, nil, false
	case "-":
		if xk {
			if n, ok := xv.(float64); ok {
				return constCode(-n), -n, true
			}
		}
		return func(f *cframe) (Value, error) {
			x, err := xc(f)
			if err != nil {
				return nil, err
			}
			n, ok := x.(float64)
			if !ok {
				return nil, fmt.Errorf("line %d: unary - expects a number", line)
			}
			return -n, nil
		}, nil, false
	}
	op := ex.Op
	return func(f *cframe) (Value, error) {
		if _, err := xc(f); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("line %d: unknown unary operator %q", line, op)
	}, nil, false
}

// compileBinary mirrors evalBinary case by case, including the
// string/list behaviour of "+"/"++" and the exact error texts. Folding
// is conservative: only operations over scalar constants that cannot
// error fold; anything that could fail stays a runtime operation so
// the error fires only if execution reaches it.
func (c *compiler) compileBinary(ex *BinaryExpr, sc *cscope) (code, Value, bool) {
	line := ex.Pos()
	op := ex.Op
	if op == "&&" || op == "||" {
		lc, lv, lk := c.compileExprConst(ex.L, sc)
		rc, rv, rk := c.compileExprConst(ex.R, sc)
		if lk && rk {
			if lb, ok := lv.(bool); ok {
				if rb, ok := rv.(bool); ok {
					var out bool
					if op == "&&" {
						out = lb && rb
					} else {
						out = lb || rb
					}
					return constCode(out), out, true
				}
			}
		}
		isAnd := op == "&&"
		where := "operator " + op
		return func(f *cframe) (Value, error) {
			l, err := lc(f)
			if err != nil {
				return nil, err
			}
			lb, err := truthy(l, where)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if isAnd && !lb {
				return false, nil
			}
			if !isAnd && lb {
				return true, nil
			}
			r, err := rc(f)
			if err != nil {
				return nil, err
			}
			rb, err := truthy(r, where)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			return rb, nil
		}, nil, false
	}

	lc, lv, lk := c.compileExprConst(ex.L, sc)
	rc, rv, rk := c.compileExprConst(ex.R, sc)
	if lk && rk {
		if v, ok := foldBinary(op, lv, rv); ok {
			return constCode(v), v, true
		}
	}
	return func(f *cframe) (Value, error) {
		l, err := lc(f)
		if err != nil {
			return nil, err
		}
		r, err := rc(f)
		if err != nil {
			return nil, err
		}
		return applyBinary(op, l, r, line)
	}, nil, false
}

// foldBinary evaluates a binary operation over two constants at
// compile time. It folds only results the runtime path would produce
// without error; everything else reports !ok and stays runtime.
func foldBinary(op string, l, r Value) (Value, bool) {
	switch op {
	case "==":
		return valueEqual(l, r), true
	case "!=":
		return !valueEqual(l, r), true
	}
	if ls, ok := l.(string); ok && (op == "+" || op == "++") {
		if rs, ok := r.(string); ok {
			return ls + rs, true
		}
		return ls + FormatValue(r), true
	}
	ln, lok := l.(float64)
	rn, rok := r.(float64)
	if !lok || !rok {
		return nil, false
	}
	switch op {
	case "+":
		return ln + rn, true
	case "-":
		return ln - rn, true
	case "*":
		return ln * rn, true
	case "/":
		if rn == 0 {
			return nil, false // division by zero stays a runtime error
		}
		return ln / rn, true
	case "<":
		return ln < rn, true
	case ">":
		return ln > rn, true
	case "<=":
		return ln <= rn, true
	case ">=":
		return ln >= rn, true
	}
	return nil, false
}

// applyBinary is the runtime half of compileBinary: a transliteration
// of evalBinary's non-short-circuit arm over already-evaluated
// operands.
func applyBinary(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "==":
		return valueEqual(l, r), nil
	case "!=":
		return !valueEqual(l, r), nil
	case "+", "++":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
			return ls + FormatValue(r), nil
		}
		if ll, ok := l.([]Value); ok {
			if rl, ok := r.([]Value); ok {
				return append(append([]Value{}, ll...), rl...), nil
			}
		}
		fallthrough
	case "-", "*", "/", "<", ">", "<=", ">=":
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if !lok || !rok {
			return nil, fmt.Errorf("line %d: operator %q expects numbers, got %s and %s",
				line, op, FormatValue(l), FormatValue(r))
		}
		switch op {
		case "+":
			return ln + rn, nil
		case "-":
			return ln - rn, nil
		case "*":
			return ln * rn, nil
		case "/":
			if rn == 0 {
				return nil, fmt.Errorf("line %d: division by zero", line)
			}
			return ln / rn, nil
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		case ">=":
			return ln >= rn, nil
		}
	}
	return nil, fmt.Errorf("line %d: unknown operator %q", line, op)
}

func (c *compiler) compileCall(ex *CallExpr, sc *cscope) code {
	fn := c.compileExpr(ex.Fn, sc)
	args := make([]code, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.compileExpr(a, sc)
	}
	var namedNames []string
	var namedCodes []code
	for _, na := range ex.Named {
		namedNames = append(namedNames, na.Name)
		namedCodes = append(namedCodes, c.compileExpr(na.Expr, sc))
	}
	line := ex.Pos()
	return func(f *cframe) (Value, error) {
		fv, err := fn(f)
		if err != nil {
			return nil, err
		}
		callable, ok := fv.(callableValue)
		if !ok {
			return nil, fmt.Errorf("line %d: %s is not a function", line, FormatValue(fv))
		}
		if cc, ok := fv.(*compiledClosure); ok &&
			len(namedCodes) == 0 && len(args) == len(cc.def.params) {
			cf, err := cc.frameWithArgs(f, args)
			if err != nil {
				return nil, err // argument error: unwrapped, as on the generic path
			}
			out, err := cc.invoke(cf)
			if err != nil {
				if isViolation(err) {
					return nil, err
				}
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			return out, nil
		}
		av := make([]Value, len(args))
		for i, ac := range args {
			v, err := ac(f)
			if err != nil {
				return nil, err
			}
			av[i] = v
		}
		var named map[string]Value
		if len(namedCodes) > 0 {
			named = make(map[string]Value, len(namedCodes))
			for i, nc := range namedCodes {
				v, err := nc(f)
				if err != nil {
					return nil, err
				}
				named[namedNames[i]] = v
			}
		}
		out, err := callable.Call(av, named)
		if err != nil {
			if isViolation(err) {
				return nil, err
			}
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		return out, nil
	}
}
