package lang

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cap"
	"repro/internal/contract"
	"repro/internal/wallet"
)

// Value is any SHILL runtime value: nil (void), bool, float64, string,
// []Value, *cap.Capability, *contract.Sealed, *wallet.Wallet,
// contract.Callable, contract.Contract, or SysError.
type Value = contract.Value

// SysError is an error-as-value: fallible builtins like lookup return it
// instead of aborting, so scripts can test with is_syserror (Figure 3).
type SysError struct{ Err error }

func (e SysError) String() string { return "syserror: " + e.Err.Error() }

// Env is a lexical environment. Bindings are immutable: SHILL "does not
// have mutable variables" (§2.1); defining a name twice in one scope is
// an error, while inner scopes may shadow outer ones.
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv creates an environment with the given parent.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Define binds a name, failing on rebinding within the same scope.
func (e *Env) Define(name string, v Value) error {
	if _, exists := e.vars[name]; exists {
		return fmt.Errorf("duplicate definition of %q (SHILL bindings are immutable)", name)
	}
	e.vars[name] = v
	return nil
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Closure is a user-defined SHILL function.
type Closure struct {
	name   string
	params []string
	body   []Stmt
	env    *Env
	interp *Interp
}

// FuncName implements contract.Callable.
func (c *Closure) FuncName() string {
	if c.name == "" {
		return "<anonymous function>"
	}
	return c.name
}

// maxCallDepth bounds script recursion: a runaway script (the kind
// grammar-based shell fuzzers synthesize) gets an error instead of
// exhausting the Go stack and killing the whole process.
const maxCallDepth = 4096

// Call implements contract.Callable.
func (c *Closure) Call(args []Value, named map[string]Value) (Value, error) {
	if len(named) > 0 {
		return nil, fmt.Errorf("%s does not accept named arguments", c.FuncName())
	}
	if len(args) != len(c.params) {
		return nil, fmt.Errorf("%s expects %d arguments, got %d", c.FuncName(), len(c.params), len(args))
	}
	if err := c.interp.checkCancel(); err != nil {
		return nil, err
	}
	if c.interp.callDepth.Add(1) > maxCallDepth {
		c.interp.callDepth.Add(-1)
		return nil, fmt.Errorf("%s: call depth exceeds %d", c.FuncName(), maxCallDepth)
	}
	defer c.interp.callDepth.Add(-1)
	frame := NewEnv(c.env)
	for i, p := range c.params {
		if err := frame.Define(p, args[i]); err != nil {
			return nil, err
		}
	}
	return c.interp.evalBlock(c.body, frame)
}

// Builtin is a native function exposed to scripts.
type Builtin struct {
	Name    string
	MinArgs int
	MaxArgs int // -1: variadic
	// NamedOK lists accepted named arguments; nil means none.
	NamedOK []string
	Fn      func(it *Interp, args []Value, named map[string]Value) (Value, error)

	interp *Interp
}

// FuncName implements contract.Callable.
func (b *Builtin) FuncName() string { return b.Name }

// Call implements contract.Callable.
func (b *Builtin) Call(args []Value, named map[string]Value) (Value, error) {
	if len(args) < b.MinArgs || (b.MaxArgs >= 0 && len(args) > b.MaxArgs) {
		if b.MaxArgs == b.MinArgs {
			return nil, fmt.Errorf("%s expects %d arguments, got %d", b.Name, b.MinArgs, len(args))
		}
		return nil, fmt.Errorf("%s expects %d-%d arguments, got %d", b.Name, b.MinArgs, b.MaxArgs, len(args))
	}
	for name := range named {
		ok := false
		for _, allowed := range b.NamedOK {
			if name == allowed {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%s does not accept named argument %q", b.Name, name)
		}
	}
	return b.Fn(b.interp, args, named)
}

// predValue makes a contract predicate double as a callable, so is_file
// works both as a contract (cur : is_file) and as a function
// (if is_file(cur) ...).
type predValue struct{ *contract.Pred }

// Call implements contract.Callable.
func (p predValue) Call(args []Value, named map[string]Value) (Value, error) {
	if len(args) != 1 || len(named) > 0 {
		return nil, fmt.Errorf("%s expects exactly 1 argument", p.Name)
	}
	return p.Fn(args[0]), nil
}

// FuncName implements contract.Callable.
func (p predValue) FuncName() string { return p.Name }

// FormatValue renders a value for printing and error messages.
func FormatValue(v Value) string {
	switch t := v.(type) {
	case nil:
		return "void"
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		if t == float64(int64(t)) {
			return fmt.Sprintf("%d", int64(t))
		}
		return fmt.Sprintf("%g", t)
	case string:
		return t
	case []Value:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = FormatValue(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case SysError:
		return t.String()
	case *cap.Capability:
		return t.String()
	case *contract.Sealed:
		return t.String()
	case *wallet.Wallet:
		return "wallet{" + strings.Join(t.Keys(), ", ") + "}"
	case contract.Callable:
		return "#<procedure:" + t.FuncName() + ">"
	case contract.Contract:
		return "#<contract:" + t.String() + ">"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// truthy requires a real boolean; SHILL has no implicit coercion.
func truthy(v Value, where string) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%s requires a boolean, got %s", where, FormatValue(v))
	}
	return b, nil
}

// asSyserror converts Go errors from capability operations into SHILL
// error values; contract violations stay fatal.
func asSyserror(err error) (Value, error) {
	var v *contract.Violation
	if errors.As(err, &v) {
		return nil, err
	}
	return SysError{Err: err}, nil
}
