// Executor for the compiled engine (compile.go): slot-indexed frames,
// memoized base-environment fallback cells, and the compiled
// counterparts of RunAmbient and evalCapModule. The executable form is
// a tree of `code` closures over static data only; all per-run state
// (interpreter, base environment, cells) flows through the frame, so
// one CompiledProgram can execute concurrently on many interpreters.
package lang

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/contract"
	"repro/internal/trace"
)

// code is one compiled statement or expression.
type code func(f *cframe) (Value, error)

// callableValue is the callable interface scripts invoke.
type callableValue = contract.Callable

// isViolation matches the tree-walk engine's CallExpr error handling:
// a direct type assertion, not errors.As, so only an unwrapped
// violation passes through without the "line N:" prefix.
func isViolation(err error) bool {
	_, ok := err.(*contract.Violation)
	return ok
}

// unset marks a slot whose binding has not executed yet. It is a real
// sentinel value (not nil) because nil is SHILL's void. Lookups skip
// unset slots outward, which reproduces the tree-walk engine's
// flow-sensitive scoping: a name bound later in the same scope is
// invisible until its bind statement runs.
type unsetType struct{}

var unset Value = unsetType{}

// crun is the state of one compiled execution: the interpreter, the
// base environment (globals, ambient bindings, module imports), and
// the memoized fallback cells. Cells are atomic because a module's
// exports may be called from several goroutines.
type crun struct {
	it    *Interp
	base  *Env
	prog  *CompiledProgram
	cells []atomic.Pointer[Value]
}

func newRun(it *Interp, base *Env, prog *CompiledProgram) *crun {
	return &crun{it: it, base: base, prog: prog, cells: make([]atomic.Pointer[Value], len(prog.cellNames))}
}

// invalidateCells forgets every memoized base lookup. Executing a
// require can shadow a global a cell already cached (the import
// defines the name closer in the chain), so imports reset the cache.
func (run *crun) invalidateCells() {
	for i := range run.cells {
		run.cells[i].Store(nil)
	}
}

// cframe is one runtime scope frame.
type cframe struct {
	run    *crun
	parent *cframe
	slots  []Value
	// inline backs slots for small frames so a call or block entry is
	// a single allocation; most SHILL scopes bind a handful of names.
	inline [8]Value
}

func newFrame(run *crun, parent *cframe, n int) *cframe {
	f := &cframe{run: run, parent: parent}
	if n > 0 {
		s := f.inline[:]
		if n > len(f.inline) {
			s = make([]Value, n)
		} else {
			s = s[:n]
		}
		for i := range s {
			s[i] = unset
		}
		f.slots = s
	}
	return f
}

// blockFrame returns the frame a statement block executes in: a fresh
// frame when the block binds names, the current frame otherwise.
func blockFrame(f *cframe, mat bool, nslots int) *cframe {
	if !mat {
		return f
	}
	return newFrame(f.run, f, nslots)
}

func execBlock(codes []code, f *cframe) (Value, error) {
	var last Value
	for _, c := range codes {
		v, err := c(f)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

// slotRef addresses a slot a fixed number of frame hops away.
type slotRef struct{ hops, slot int }

// identRef is a pre-resolved identifier: the slot candidates in every
// enclosing scope that ever binds the name (innermost first), plus an
// interned fallback cell for the base environment.
type identRef struct {
	name  string
	line  int
	cands []slotRef
	cell  int
}

func (f *cframe) lookup(r *identRef) (Value, error) {
	for i := range r.cands {
		fr := f
		for h := r.cands[i].hops; h > 0; h-- {
			fr = fr.parent
		}
		if v := fr.slots[r.cands[i].slot]; v != unset {
			return v, nil
		}
	}
	run := f.run
	if p := run.cells[r.cell].Load(); p != nil {
		return *p, nil
	}
	if v, ok := run.base.Lookup(r.name); ok {
		vv := v
		run.cells[r.cell].Store(&vv)
		return v, nil
	}
	return nil, fmt.Errorf("line %d: unbound identifier %q", r.line, r.name)
}

// hasLocal reports whether the environment itself (not its parents)
// binds the name — the duplicate-definition check the compiled top
// scope shares with the base environment.
func (e *Env) hasLocal(name string) bool {
	_, ok := e.vars[name]
	return ok
}

// cfundef is the static part of a compiled function literal.
type cfundef struct {
	params     []string
	paramSlots []int
	dupParam   string // first duplicated parameter name; errors at call time
	nslots     int
	body       []code
}

// compiledClosure is a user-defined function on the compiled engine.
// It mirrors Closure's call protocol (and error text) exactly; only
// the environment representation differs.
type compiledClosure struct {
	name string
	def  *cfundef
	env  *cframe
	run  *crun
}

// FuncName implements contract.Callable.
func (c *compiledClosure) FuncName() string {
	if c.name == "" {
		return "<anonymous function>"
	}
	return c.name
}

// Call implements contract.Callable.
func (c *compiledClosure) Call(args []Value, named map[string]Value) (Value, error) {
	if len(named) > 0 {
		return nil, fmt.Errorf("%s does not accept named arguments", c.FuncName())
	}
	if len(args) != len(c.def.params) {
		return nil, fmt.Errorf("%s expects %d arguments, got %d", c.FuncName(), len(c.def.params), len(args))
	}
	f := newFrame(c.run, c.env, c.def.nslots)
	for i, slot := range c.def.paramSlots {
		f.slots[slot] = args[i]
	}
	return c.invoke(f)
}

// frameWithArgs and invoke form the hot-path call protocol used when
// the compiler can see the callee is a compiled closure with matching
// positional arity and no named arguments: argument codes evaluate
// straight into the callee frame, skipping the generic path's per-call
// argument slice. The split keeps error identity identical to the
// generic path — argument-evaluation errors surface unwrapped, while
// errors from the call itself get the call site's line wrap.
func (c *compiledClosure) frameWithArgs(caller *cframe, args []code) (*cframe, error) {
	f := newFrame(c.run, c.env, c.def.nslots)
	for i, ac := range args {
		v, err := ac(caller)
		if err != nil {
			return nil, err
		}
		f.slots[c.def.paramSlots[i]] = v
	}
	return f, nil
}

// invoke runs the closure body in a frame built by frameWithArgs,
// applying the same cancellation, depth, and duplicate-parameter
// checks (in the same order) as Call.
func (c *compiledClosure) invoke(f *cframe) (Value, error) {
	it := c.run.it
	if err := it.checkCancel(); err != nil {
		return nil, err
	}
	if it.callDepth.Add(1) > maxCallDepth {
		it.callDepth.Add(-1)
		return nil, fmt.Errorf("%s: call depth exceeds %d", c.FuncName(), maxCallDepth)
	}
	defer it.callDepth.Add(-1)
	if c.def.dupParam != "" {
		return nil, fmt.Errorf("duplicate definition of %q (SHILL bindings are immutable)", c.def.dupParam)
	}
	return execBlock(c.def.body, f)
}

// --- top-level execution ---

// runAmbientCompiled is RunAmbient on the compiled engine.
func (it *Interp) runAmbientCompiled(name, src string) error {
	csp := it.Trace.Start(it.TraceParent, trace.KindCompile, "compile")
	prog, hit, err := it.compileSource(src)
	if csp != nil {
		if hit {
			csp.SetDetail("engine=compiled cache=hit")
		} else {
			csp.SetDetail("engine=compiled cache=miss")
		}
		csp.End()
	}
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if prog.dialect != DialectAmbient {
		return fmt.Errorf("%s: not an ambient script", name)
	}
	esp := it.Trace.Start(it.TraceParent, trace.KindEval, "eval")
	defer esp.End()
	env := NewEnv(it.globals)
	it.bindAmbient(env)
	run := newRun(it, env, prog)
	f := newFrame(run, nil, prog.nslots)
	for i := range prog.top {
		op := &prog.top[i]
		switch op.kind {
		case topRequire:
			if err := it.importCompiled(run, f, op); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, op.line, err)
			}
		case topFunBind:
			return fmt.Errorf("%s: line %d: ambient scripts cannot define functions", name, op.line)
		case topDisallowed:
			return fmt.Errorf("%s: line %d: statement not allowed in an ambient script", name, op.line)
		case topStmt:
			if err := it.checkCancel(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if _, err := op.code(f); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// evalCapModuleCompiled is evalCapModule on the compiled engine: the
// body executes in slot frames, then the top bindings are materialized
// into the base environment so provides and their contracts resolve
// exactly as the tree-walk engine resolves them.
func (it *Interp) evalCapModuleCompiled(name string, prog *CompiledProgram) (*Module, error) {
	env := NewEnv(it.globals)
	run := newRun(it, env, prog)
	f := newFrame(run, nil, prog.nslots)
	for i := range prog.top {
		op := &prog.top[i]
		switch op.kind {
		case topRequire:
			if err := it.importCompiled(run, f, op); err != nil {
				return nil, fmt.Errorf("%s: line %d: %w", name, op.line, err)
			}
		case topStmt:
			if err := it.checkCancel(); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			if _, err := op.code(f); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	for bname, slot := range prog.topNames {
		if v := f.slots[slot]; v != unset {
			env.vars[bname] = v
		}
	}
	m := &Module{Name: name, Dialect: DialectCap, Exports: make(map[string]Value)}
	for _, pr := range prog.provides {
		v, ok := env.Lookup(pr.name)
		if !ok {
			return nil, fmt.Errorf("%s: provide %s: no such binding", name, pr.name)
		}
		if pr.contract != nil {
			cc, err := it.evalContract(pr.contract, env, polarityOut, nil)
			if err != nil {
				return nil, fmt.Errorf("%s: provide %s: %w", name, pr.name, err)
			}
			wrapped, err := contract.Apply(cc, v, contract.Blame{Pos: name, Neg: "client of " + name})
			if err != nil {
				return nil, err
			}
			v = wrapped
		}
		m.Exports[pr.name] = v
	}
	return m, nil
}

// importCompiled executes a top-level require: it loads the module and
// defines its exports into the base environment, reporting duplicate
// definitions against both the base environment and the already-set
// top slots (the tree-walk engine keeps all three name populations in
// one map). Export names are imported in sorted order so collisions
// are deterministic.
func (it *Interp) importCompiled(run *crun, f *cframe, op *topOp) error {
	m, err := it.LoadModule(op.module, op.isFile)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(m.Exports))
	for en := range m.Exports {
		names = append(names, en)
	}
	sort.Strings(names)
	for _, en := range names {
		if slot, ok := run.prog.topNames[en]; ok && f.slots[slot] != unset {
			return fmt.Errorf("require %s: duplicate definition of %q (SHILL bindings are immutable)", op.module, en)
		}
		if err := run.base.Define(en, m.Exports[en]); err != nil {
			return fmt.Errorf("require %s: %w", op.module, err)
		}
	}
	run.invalidateCells()
	return nil
}
