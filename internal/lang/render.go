package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Render pretty-prints a script back to parseable SHILL source,
// including its #lang line. Render is a fixpoint under parsing: for any
// script s, Render(Parse(Render(s))) == Render(s) — the property the
// grammar-based generator needs so a program can be re-parsed, shrunk,
// and re-rendered without drifting. Nested expressions are always
// parenthesised, which keeps the output unambiguous without tracking
// operator precedence.
func Render(s *Script) string {
	var b strings.Builder
	b.WriteString("#lang " + s.Dialect.String() + "\n")
	renderStmts(&b, s.Stmts, 0)
	return b.String()
}

func indentOf(n int) string { return strings.Repeat("  ", n) }

func renderStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		renderStmt(b, s, depth)
	}
}

func renderStmt(b *strings.Builder, s Stmt, depth int) {
	ind := indentOf(depth)
	switch st := s.(type) {
	case *RequireStmt:
		if st.IsFile {
			fmt.Fprintf(b, "%srequire %s;\n", ind, quoteString(st.Module))
		} else {
			fmt.Fprintf(b, "%srequire %s;\n", ind, st.Module)
		}
	case *ProvideStmt:
		if st.Contract == nil {
			fmt.Fprintf(b, "%sprovide %s;\n", ind, st.Name)
		} else {
			fmt.Fprintf(b, "%sprovide %s : %s;\n", ind, st.Name, renderContract(st.Contract))
		}
	case *BindStmt:
		fmt.Fprintf(b, "%s%s = %s;\n", ind, st.Name, renderExpr(st.Expr, depth))
	case *IfStmt:
		fmt.Fprintf(b, "%sif %s then {\n", ind, renderExpr(st.Cond, depth))
		renderStmts(b, st.Then, depth+1)
		if st.Else != nil {
			fmt.Fprintf(b, "%s} else {\n", ind)
			renderStmts(b, st.Else, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case *ForStmt:
		fmt.Fprintf(b, "%sfor %s in %s {\n", ind, st.Var, renderExpr(st.Seq, depth))
		renderStmts(b, st.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *ExprStmt:
		fmt.Fprintf(b, "%s%s;\n", ind, renderExpr(st.Expr, depth))
	default:
		// Unknown node kinds render as a comment so the output stays
		// parseable; the round-trip test would still catch the loss.
		fmt.Fprintf(b, "%s# <unrenderable %T>\n", ind, s)
	}
}

// renderExpr renders an expression. depth is the statement indentation
// for multi-line function literals.
func renderExpr(e Expr, depth int) string {
	switch ex := e.(type) {
	case *Ident:
		return ex.Name
	case *StringLit:
		return quoteString(ex.Value)
	case *NumberLit:
		return renderNumber(ex.Value)
	case *BoolLit:
		if ex.Value {
			return "true"
		}
		return "false"
	case *ListLit:
		parts := make([]string, len(ex.Elems))
		for i, el := range ex.Elems {
			parts[i] = renderExpr(el, depth)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *FunLit:
		var b strings.Builder
		fmt.Fprintf(&b, "fun(%s) {\n", strings.Join(ex.Params, ", "))
		renderStmts(&b, ex.Body, depth+1)
		b.WriteString(indentOf(depth) + "}")
		return b.String()
	case *CallExpr:
		var parts []string
		for _, a := range ex.Args {
			parts = append(parts, renderExpr(a, depth))
		}
		for _, na := range ex.Named {
			parts = append(parts, na.Name+" = "+renderExpr(na.Expr, depth))
		}
		return renderOperand(ex.Fn, depth) + "(" + strings.Join(parts, ", ") + ")"
	case *UnaryExpr:
		return ex.Op + renderOperand(ex.X, depth)
	case *BinaryExpr:
		return renderOperand(ex.L, depth) + " " + ex.Op + " " + renderOperand(ex.R, depth)
	}
	return fmt.Sprintf("<unrenderable %T>", e)
}

// renderOperand parenthesises compound sub-expressions so the output
// never depends on precedence.
func renderOperand(e Expr, depth int) string {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr, *FunLit:
		return "(" + renderExpr(e, depth) + ")"
	}
	return renderExpr(e, depth)
}

// renderNumber emits a float in the syntax the lexer accepts (digits and
// an optional dot — no exponent, no sign; negatives render as unary
// minus).
func renderNumber(v float64) string {
	if v < 0 {
		return "-" + renderNumber(-v)
	}
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// quoteString emits a double-quoted string using only the escapes the
// lexer understands (\n, \t, \", \\).
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// --- contract rendering ---

func renderContract(c CExpr) string {
	switch ct := c.(type) {
	case *CIdent:
		return ct.Name
	case *CCap:
		if len(ct.Privs) == 0 {
			return ct.Kind
		}
		return ct.Kind + "(" + renderPrivList(ct.Privs) + ")"
	case *COr:
		parts := make([]string, len(ct.Branches))
		for i, br := range ct.Branches {
			parts[i] = renderContractAtom(br)
		}
		return strings.Join(parts, ` \/ `)
	case *CAnd:
		parts := make([]string, len(ct.Branches))
		for i, br := range ct.Branches {
			parts[i] = renderContractAtom(br)
		}
		return strings.Join(parts, " && ")
	case *CFunc:
		var parts []string
		for _, p := range ct.Params {
			parts = append(parts, p.Name+" : "+renderContract(p.C))
		}
		res := "void"
		if ct.Result != nil {
			res = renderContract(ct.Result)
		}
		return "{" + strings.Join(parts, ", ") + "} -> " + res
	case *CForall:
		return "forall " + ct.Var + " with {" + renderPrivList(ct.Bound) + "} . " + renderContract(ct.Body)
	case *CListOf:
		return "listof " + renderContractAtom(ct.Elem)
	}
	return fmt.Sprintf("<unrenderable %T>", c)
}

// renderContractAtom parenthesises compound contracts in operand
// position.
func renderContractAtom(c CExpr) string {
	switch c.(type) {
	case *COr, *CAnd, *CFunc, *CForall:
		return "(" + renderContract(c) + ")"
	}
	return renderContract(c)
}

func renderPrivList(privs []CPriv) string {
	parts := make([]string, len(privs))
	for i, p := range privs {
		s := "+" + p.Name
		switch {
		case p.With != nil:
			s += " with {" + renderPrivList(p.With) + "}"
		case p.WithRef != "":
			s += " with " + p.WithRef
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}
