package lang_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/priv"
)

// TestRenderFixpoint: rendering is a fixpoint under parsing. For every
// embedded case-study script (the richest corpus of real SHILL syntax in
// the tree) and a set of syntax-stress samples, Render(Parse(src))
// must itself parse, and re-rendering the reparse must reproduce it
// byte for byte. This is the property the generator relies on: a
// program can be rendered, reparsed, shrunk, and re-rendered without
// semantic drift.
func TestRenderFixpoint(t *testing.T) {
	sources := map[string]string{}
	for name, src := range core.ScriptFiles() {
		// Only SHILL sources round-trip; the script table also embeds
		// shell scripts like grade.sh.
		if strings.HasSuffix(name, ".cap") || strings.HasSuffix(name, ".ambient") {
			sources[name] = src
		}
	}
	sources["samples"] = `#lang shill/cap
require shill/io;
require "other.cap";
provide p : {d : dir(+lookup with {+read, +stat}, +create_file with full_privileges), out : file(+append)} -> any;
provide q : forall X with {+read} . {d : X} -> is_bool;
provide r : listof (is_num \/ is_string) -> void;
provide s : readonly && is_dir -> any;
p = fun(d, out) {
  x = (1 + 2) * -3;
  y = !true || (x < 4 && x >= 0);
  l = [1, "two\n", [true, false]];
  if y then { fprintf(out, "ok %s\n", "t\"quoted\""); } else {
    for n in l { fprintf(out, "%v;", n); }
  }
  f = fun(a) { a + 1; };
  f(x);
};
`
	sources["ambient"] = `#lang shill/ambient
require "p.cap";
d = open_dir("/tmp");
p(d, open_file("/dev/console"));
`
	for name, src := range sources {
		s1, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse original: %v", name, err)
		}
		r1 := lang.Render(s1)
		s2, err := lang.Parse(r1)
		if err != nil {
			t.Fatalf("%s: rendered output does not parse: %v\n%s", name, err, r1)
		}
		r2 := lang.Render(s2)
		if r1 != r2 {
			t.Errorf("%s: Render is not a fixpoint under Parse:\n--- first ---\n%s\n--- second ---\n%s", name, r1, r2)
		}
	}
}

// TestBuildersRenderParseable: a script assembled from the exported AST
// builders renders to source the parser accepts and evaluates.
func TestBuildersRenderParseable(t *testing.T) {
	grant := priv.NewSet(priv.RLookup, priv.RContents, priv.RCreateFile, priv.RStat)
	script := lang.NewScript(lang.DialectCap,
		lang.NewRequire("shill/io", false),
		lang.NewProvide("run", lang.NewCFunc(
			[]lang.CParam{
				{Name: "d", C: lang.NewCCap("dir", lang.PrivsOf(grant))},
				{Name: "out", C: lang.NewCCap("file", lang.PrivsOf(priv.NewSet(priv.RAppend)))},
			},
			lang.NewCIdent("any"),
		)),
		lang.NewBind("run", lang.NewFun([]string{"d", "out"},
			lang.NewBind("r0", lang.NewCall(lang.NewIdent("contents"), lang.NewIdent("d"))),
			lang.NewIf(
				lang.NewCall(lang.NewIdent("is_syserror"), lang.NewIdent("r0")),
				[]lang.Stmt{lang.NewExprStmt(lang.NewCall(lang.NewIdent("fprintf"),
					lang.NewIdent("out"), lang.NewString("op0=err\n")))},
				[]lang.Stmt{
					lang.NewExprStmt(lang.NewCall(lang.NewIdent("fprintf"),
						lang.NewIdent("out"), lang.NewString("op0=ok\n"))),
					lang.NewFor("n", lang.NewIdent("r0"), []lang.Stmt{
						lang.NewExprStmt(lang.NewCall(lang.NewIdent("fprintf"),
							lang.NewIdent("out"), lang.NewString("log0=%s\n"), lang.NewIdent("n"))),
					}),
				},
			),
			lang.NewExprStmt(lang.NewBinary("+", lang.NewNumber(1),
				lang.NewUnary("-", lang.NewNumber(2)))),
		)),
	)
	src := lang.Render(script)
	parsed, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("built script does not parse: %v\n%s", err, src)
	}
	if parsed.Dialect != lang.DialectCap {
		t.Fatalf("dialect lost in round trip")
	}
	if again := lang.Render(parsed); again != src {
		t.Errorf("builder render not a fixpoint:\n%s\nvs\n%s", src, again)
	}
	if !strings.Contains(src, "+create_file") {
		t.Errorf("privilege spelling should use underscores: %s", src)
	}
}
