package lang

import (
	"strings"

	"repro/internal/priv"
)

// AST builders: exported constructors for every node the grammar-based
// script generator (internal/gen) assembles programmatically. The node
// types themselves are exported but embed the unexported position base,
// so out-of-package code cannot use composite literals; these
// constructors are the supported way to build a Script that Render can
// turn back into parseable source. Builders leave positions at zero —
// generated programs get real positions when their rendered source is
// parsed for execution.

// NewScript assembles a script in the given dialect.
func NewScript(d Dialect, stmts ...Stmt) *Script {
	return &Script{Dialect: d, Stmts: stmts}
}

// NewRequire builds "require module;" (module path) or "require
// \"file\";" (isFile).
func NewRequire(module string, isFile bool) *RequireStmt {
	return &RequireStmt{Module: module, IsFile: isFile}
}

// NewProvide builds "provide name : contract;" (nil contract for a bare
// provide).
func NewProvide(name string, c CExpr) *ProvideStmt {
	return &ProvideStmt{Name: name, Contract: c}
}

// NewBind builds "name = expr;".
func NewBind(name string, e Expr) *BindStmt {
	return &BindStmt{Name: name, Expr: e}
}

// NewIf builds "if cond then { then... } [else { else... }]". A nil else
// renders without the else arm.
func NewIf(cond Expr, then, els []Stmt) *IfStmt {
	return &IfStmt{Cond: cond, Then: then, Else: els}
}

// NewFor builds "for v in seq { body... }".
func NewFor(v string, seq Expr, body []Stmt) *ForStmt {
	return &ForStmt{Var: v, Seq: seq, Body: body}
}

// NewExprStmt builds a bare expression statement "expr;".
func NewExprStmt(e Expr) *ExprStmt { return &ExprStmt{Expr: e} }

// NewIdent references a binding.
func NewIdent(name string) *Ident { return &Ident{Name: name} }

// NewString builds a string literal.
func NewString(v string) *StringLit { return &StringLit{Value: v} }

// NewNumber builds a numeric literal.
func NewNumber(v float64) *NumberLit { return &NumberLit{Value: v} }

// NewBool builds true/false.
func NewBool(v bool) *BoolLit { return &BoolLit{Value: v} }

// NewList builds [e1, e2, ...].
func NewList(elems ...Expr) *ListLit { return &ListLit{Elems: elems} }

// NewFun builds fun(params...) { body... }.
func NewFun(params []string, body ...Stmt) *FunLit {
	return &FunLit{Params: params, Body: body}
}

// NewCall builds f(args...).
func NewCall(fn Expr, args ...Expr) *CallExpr {
	return &CallExpr{Fn: fn, Args: args}
}

// NewCallNamed builds f(args..., name = v, ...).
func NewCallNamed(fn Expr, args []Expr, named []NamedArg) *CallExpr {
	return &CallExpr{Fn: fn, Args: args, Named: named}
}

// NewUnary builds !x or -x.
func NewUnary(op string, x Expr) *UnaryExpr { return &UnaryExpr{Op: op, X: x} }

// NewBinary builds a binary operation.
func NewBinary(op string, l, r Expr) *BinaryExpr {
	return &BinaryExpr{Op: op, L: l, R: r}
}

// --- contract builders ---

// NewCIdent references a contract binding (any, is_file, readonly, ...).
func NewCIdent(name string) *CIdent { return &CIdent{Name: name} }

// NewCCap builds a capability contract of the given kind ("file", "dir",
// "pipe", "pipe_factory", "socket_factory") with the given privileges.
func NewCCap(kind string, privs []CPriv) *CCap {
	return &CCap{Kind: kind, Privs: privs}
}

// NewCFunc builds {a : C, ...} -> result. A nil result renders as void.
func NewCFunc(params []CParam, result CExpr) *CFunc {
	return &CFunc{Params: params, Result: result}
}

// NewCListOf builds listof elem.
func NewCListOf(elem CExpr) *CListOf { return &CListOf{Elem: elem} }

// PrivsOf converts a privilege set into contract syntax (+read,
// +create_file, ...), spelling hyphenated privilege names with
// underscores the way the parser expects. No derivation modifiers are
// attached, so capabilities derived through any right inherit the full
// set — the semantics internal/gen's manifests rely on.
func PrivsOf(s priv.Set) []CPriv {
	rights := s.Rights()
	out := make([]CPriv, 0, len(rights))
	for _, r := range rights {
		out = append(out, CPriv{Name: strings.ReplaceAll(r.String(), "-", "_")})
	}
	return out
}
