package scenario

import (
	"fmt"
	"strings"
)

// AttrExpr is a parsed attribute-selection expression: identifiers over
// KnownAttrs combined with &&, ||, ! and parentheses — the tast-style
// selector behind `shill-scenarios -attr 'sandbox && !slow'`.
type AttrExpr interface {
	Eval(attrs map[string]bool) bool
}

type attrIdent string

func (a attrIdent) Eval(attrs map[string]bool) bool { return attrs[string(a)] }

type attrNot struct{ x AttrExpr }

func (a attrNot) Eval(attrs map[string]bool) bool { return !a.x.Eval(attrs) }

type attrAnd struct{ xs []AttrExpr }

func (a attrAnd) Eval(attrs map[string]bool) bool {
	for _, x := range a.xs {
		if !x.Eval(attrs) {
			return false
		}
	}
	return true
}

type attrOr struct{ xs []AttrExpr }

func (a attrOr) Eval(attrs map[string]bool) bool {
	for _, x := range a.xs {
		if x.Eval(attrs) {
			return true
		}
	}
	return false
}

type attrAll struct{}

func (attrAll) Eval(map[string]bool) bool { return true }

// ParseAttr parses an attr expression. The empty expression selects
// everything. Grammar, loosest-binding first:
//
//	expr  := and ('||' and)*
//	and   := unary ('&&' unary)*
//	unary := '!' unary | '(' expr ')' | ident
//
// An identifier outside KnownAttrs is an error, not an empty match — a
// typo must fail the selection, not silently select nothing.
func ParseAttr(s string) (AttrExpr, error) {
	if strings.TrimSpace(s) == "" {
		return attrAll{}, nil
	}
	p := &attrParser{toks: lexAttr(s)}
	e, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("scenario: attr expression %q: unexpected %q", s, p.toks[p.pos])
	}
	return e, nil
}

func lexAttr(s string) []string {
	var toks []string
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '!':
			toks = append(toks, string(c))
			i++
		case c == '&' || c == '|':
			// Both operators are two-character; a lone '&' surfaces as an
			// unknown-identifier error below.
			if i+1 < len(s) && s[i+1] == c {
				toks = append(toks, string(c)+string(c))
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		default:
			j := i
			for j < len(s) && isAttrIdent(s[j]) {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, s[i:j])
				i = j
			}
		}
	}
	return toks
}

func isAttrIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

type attrParser struct {
	toks []string
	pos  int
}

func (p *attrParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *attrParser) or() (AttrExpr, error) {
	x, err := p.and()
	if err != nil {
		return nil, err
	}
	xs := []AttrExpr{x}
	for p.peek() == "||" {
		p.pos++
		y, err := p.and()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return attrOr{xs}, nil
}

func (p *attrParser) and() (AttrExpr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	xs := []AttrExpr{x}
	for p.peek() == "&&" {
		p.pos++
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return attrAnd{xs}, nil
}

func (p *attrParser) unary() (AttrExpr, error) {
	switch tok := p.peek(); tok {
	case "":
		return nil, fmt.Errorf("scenario: attr expression ends where an attribute was expected")
	case "!":
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return attrNot{x}, nil
	case "(":
		p.pos++
		x, err := p.or()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("scenario: attr expression: missing ')'")
		}
		p.pos++
		return x, nil
	default:
		p.pos++
		if !KnownAttrs[tok] {
			return nil, fmt.Errorf("scenario: unknown attr %q (known: %s)", tok, knownAttrList())
		}
		return attrIdent(tok), nil
	}
}

func knownAttrList() string {
	names := make([]string, 0, len(KnownAttrs))
	for a := range KnownAttrs {
		names = append(names, a)
	}
	// KnownAttrs is small; a sorted list keeps error messages stable.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
