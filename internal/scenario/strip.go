package scenario

import "strings"

// StripContracts rewrites a capability module so every
// `provide name : <contract>;` becomes a bare `provide name;` — the
// full-authority export form. It is how one committed module source
// yields both legs of a scenario: the sandboxed leg runs it as written,
// the ambient leg runs the stripped form, and the differential oracle
// compares the two (the same Ambient/sandboxed pairing internal/gen
// renders for generated programs).
//
// The scan is syntactic but contract-shape-aware: it skips comments and
// strings, and consumes the contract by bracket depth over (), {}, []
// until the terminating ';', so nested `with {...}` modifiers and
// arrow types strip cleanly.
func StripContracts(src string) string {
	var out strings.Builder
	out.Grow(len(src))
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			// Comment (or the #lang line): copy to end of line.
			j := strings.IndexByte(src[i:], '\n')
			if j < 0 {
				out.WriteString(src[i:])
				return out.String()
			}
			out.WriteString(src[i : i+j+1])
			i += j + 1
		case c == '"':
			j := skipString(src, i)
			out.WriteString(src[i:j])
			i = j
		case isWordStart(c) && wordBoundary(src, i) && strings.HasPrefix(src[i:], "provide") &&
			(i+7 >= len(src) || !isWordChar(src[i+7])):
			i = stripProvide(src, i, &out)
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}

// stripProvide copies `provide <name>` and reduces any `: contract` to
// nothing, emitting the terminating ';'. It returns the index just past
// the statement.
func stripProvide(src string, i int, out *strings.Builder) int {
	out.WriteString("provide")
	i += len("provide")
	// Copy whitespace + the provided identifier.
	for i < len(src) && (src[i] == ' ' || src[i] == '\t') {
		out.WriteByte(src[i])
		i++
	}
	for i < len(src) && isWordChar(src[i]) {
		out.WriteByte(src[i])
		i++
	}
	// Skip to the next significant character.
	for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n') {
		i++
	}
	if i < len(src) && src[i] == ':' {
		// Consume the contract up to the statement's ';' at depth 0.
		i++
		depth := 0
		for i < len(src) {
			switch src[i] {
			case '(', '{', '[':
				depth++
			case ')', '}', ']':
				depth--
			case '"':
				i = skipString(src, i) - 1
			case '#':
				if j := strings.IndexByte(src[i:], '\n'); j >= 0 {
					i += j
				} else {
					i = len(src) - 1
				}
			case ';':
				if depth == 0 {
					out.WriteString(";")
					return i + 1
				}
			}
			i++
		}
		out.WriteString(";")
		return i
	}
	// Bare provide already; keep whatever follows (normally ';').
	return i
}

// skipString returns the index just past the string literal opening at i.
func skipString(src string, i int) int {
	j := i + 1
	for j < len(src) {
		if src[j] == '\\' {
			j += 2
			continue
		}
		if src[j] == '"' {
			return j + 1
		}
		j++
	}
	return j
}

func isWordStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isWordChar(c byte) bool {
	return isWordStart(c) || c >= '0' && c <= '9'
}

// wordBoundary reports whether position i starts a word (the previous
// byte is not a word character).
func wordBoundary(src string, i int) bool {
	return i == 0 || !isWordChar(src[i-1])
}
