package scenario

import (
	"bytes"
	"context"
	"crypto/sha256"
	"testing"
)

const fixtureWriterDriver = `#lang shill/ambient

work = open_dir("/home/user/work");
f = create_file(work, "marker.txt");
write(f, "tainted\n");
`

const fixtureReaderDriver = `#lang shill/ambient
require "probe.cap";

work = open_dir("/home/user/work");
check(work, stdout);
`

const fixtureReaderCap = `#lang shill/cap

provide check;

check = fun(work, out) {
  r = lookup(work, "marker.txt");
  if is_syserror(r) then {
    append(out, "clean\n");
  } else {
    error("marker from the sibling scenario is visible across fixture restores");
  }
};
`

// TestFixtureIsolation proves the golden-image contract: two scenarios
// sharing a fixture each restore a private machine, so one scenario's
// writes can never leak into the other, and the shared base image's
// content address is unchanged by either run.
func TestFixtureIsolation(t *testing.T) {
	img, err := FixtureImage("workspace")
	if err != nil {
		t.Fatal(err)
	}
	id := img.ID()
	digestBefore := sha256.Sum256(img.Serialize())

	writer := &Scenario{
		Name:       "t/fixture-writer",
		Fixture:    "workspace",
		WriteRoots: []string{"/home/user/work"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "write-marker", Driver: fixtureWriterDriver,
				Expect: map[Mode]string{ModeSandboxed: "ok"}})
			return nil
		},
	}
	reader := &Scenario{
		Name:    "t/fixture-reader",
		Fixture: "workspace",
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "probe-marker", Driver: fixtureReaderDriver,
				Module: "probe.cap", Cap: fixtureReaderCap,
				Expect: map[Mode]string{ModeSandboxed: "ok"}})
			return nil
		},
	}

	wres := RunScenario(context.Background(), writer, []Mode{ModeSandboxed}, 0)
	if v := wres.Modes[0].Verdict; v != "passed" {
		t.Fatalf("writer scenario verdict = %s (%s) steps=%+v", v, wres.Modes[0].Detail, wres.Modes[0].Steps)
	}
	rres := RunScenario(context.Background(), reader, []Mode{ModeSandboxed}, 0)
	if v := rres.Modes[0].Verdict; v != "passed" {
		t.Fatalf("reader scenario observed the writer's mutation: %s (%s) steps=%+v", v, rres.Modes[0].Detail, rres.Modes[0].Steps)
	}
	if got := rres.Modes[0].Steps[0].Console; got != "clean\n" {
		t.Fatalf("reader console = %q, want \"clean\\n\"", got)
	}

	// The fixture image is immutable: same object, same content address,
	// byte-identical serialization after both scenarios ran on it.
	img2, err := FixtureImage("workspace")
	if err != nil {
		t.Fatal(err)
	}
	if img2 != img {
		t.Fatal("FixtureImage rebuilt the golden image instead of reusing it")
	}
	if img2.ID() != id {
		t.Fatalf("fixture image ID changed across scenario runs: %s -> %s", id, img2.ID())
	}
	digestAfter := sha256.Sum256(img2.Serialize())
	if !bytes.Equal(digestBefore[:], digestAfter[:]) {
		t.Fatal("fixture image serialization changed across scenario runs")
	}
}

func TestRegisterFixtureDuplicatePanics(t *testing.T) {
	mustPanic(t, "duplicate fixture workspace", func() {
		RegisterFixture(Fixture{Name: "workspace"})
	})
}

func TestFixtureUnknown(t *testing.T) {
	if _, err := FixtureImage("no-such-fixture"); err == nil {
		t.Fatal("FixtureImage on an unregistered name succeeded")
	}
}
