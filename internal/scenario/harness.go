package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/shill"
)

// Options tune a harness run.
type Options struct {
	// Attr selects scenarios by attribute expression ("" runs all).
	Attr string
	// Names, when non-empty, selects exactly these scenarios instead of
	// Attr — how a red CI scenario is replayed in isolation. An unknown
	// name is an error.
	Names []string
	// Modes lists the modes to report (default: all three). Requesting
	// oracle always executes both legs; their results are reported only
	// when their modes are also requested.
	Modes []Mode
	// Engine selects the execution engine for every leg machine.
	Engine shill.Engine
	// Logf, when set, narrates per-scenario progress.
	Logf func(format string, args ...any)
}

// ModeResult is one scenario × mode verdict.
type ModeResult struct {
	Mode    Mode   `json:"mode"`
	Verdict string `json:"verdict"` // passed | failed | skipped | violation
	// Kind/Step/Provenance are the triage cluster key for non-passed
	// results: the failure class, the step it anchors on, and the deny
	// provenance that explains (or fails to explain) it.
	Kind       string       `json:"kind,omitempty"`
	Step       string       `json:"step,omitempty"`
	Provenance string       `json:"provenance,omitempty"`
	Detail     string       `json:"detail,omitempty"`
	ElapsedMs  float64      `json:"elapsedMs"`
	Steps      []StepResult `json:"steps,omitempty"`
}

// ScenarioResult aggregates one scenario's three-way outcome.
type ScenarioResult struct {
	Name  string       `json:"name"`
	Attrs []string     `json:"attrs"`
	Modes []ModeResult `json:"modes"`
}

// Verdict returns the scenario's worst verdict across modes.
func (r *ScenarioResult) Verdict() string {
	worst := "passed"
	rank := map[string]int{"passed": 0, "skipped": 1, "failed": 2, "violation": 3}
	for _, m := range r.Modes {
		if rank[m.Verdict] > rank[worst] {
			worst = m.Verdict
		}
	}
	return worst
}

// Report is one harness run over the selected scenarios; it doubles as
// the SCENARIOS.json document CI uploads.
type Report struct {
	Attr       string           `json:"attr,omitempty"`
	Engine     string           `json:"engine"`
	Scenarios  []ScenarioResult `json:"scenarios"`
	Clusters   []Cluster        `json:"clusters,omitempty"`
	Passed     int              `json:"passed"`
	Failed     int              `json:"failed"`
	Skipped    int              `json:"skipped"`
	Violations int              `json:"violations"`
	ElapsedSec float64          `json:"elapsedSec"`
}

// Ok reports a clean run: no failures and no oracle violations
// (skipped legs are fine — that is what preconditions are for).
func (r *Report) Ok() bool { return r.Failed == 0 && r.Violations == 0 }

// legResult is one executed leg, before verdict mapping.
type legResult struct {
	mode     Mode
	skipped  string // unmet precondition, when non-empty
	steps    []StepResult
	bodyErr  error
	timedOut bool
	escapes  []string
	leaked   []string
	elapsed  time.Duration
}

// Run executes every selected scenario in the requested modes and
// clusters the failures by root cause.
func Run(ctx context.Context, opts Options) (*Report, error) {
	var scs []*Scenario
	var err error
	if len(opts.Names) > 0 {
		for _, name := range opts.Names {
			sc := Lookup(name)
			if sc == nil {
				return nil, fmt.Errorf("scenario: unknown scenario %q", name)
			}
			scs = append(scs, sc)
		}
	} else if scs, err = Select(opts.Attr); err != nil {
		return nil, err
	}
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []Mode{ModeAmbient, ModeSandboxed, ModeOracle}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	start := time.Now()
	rep := &Report{Attr: opts.Attr, Engine: engineName(opts.Engine)}
	for _, sc := range scs {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		res := RunScenario(ctx, sc, modes, opts.Engine)
		rep.Scenarios = append(rep.Scenarios, res)
		for _, m := range res.Modes {
			switch m.Verdict {
			case "passed":
				rep.Passed++
			case "failed":
				rep.Failed++
			case "skipped":
				rep.Skipped++
			case "violation":
				rep.Violations++
			}
		}
		logf("scenario %-28s %s", sc.Name, summarizeModes(res.Modes))
	}
	rep.Clusters = Clusterize(rep.Scenarios)
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep, nil
}

func summarizeModes(ms []ModeResult) string {
	parts := make([]string, 0, len(ms))
	for _, m := range ms {
		parts = append(parts, fmt.Sprintf("%s=%s", m.Mode, m.Verdict))
	}
	return strings.Join(parts, " ")
}

func engineName(e shill.Engine) string {
	if e == shill.EngineCompiled {
		return "compiled"
	}
	return "tree-walk"
}

// RunScenario executes one scenario in the requested modes. The two
// real legs each run on a private machine booted from the scenario's
// fixture image; the oracle mode is a pure judgment over their recorded
// steps, so "all three ways" costs two machine runs, not three.
func RunScenario(ctx context.Context, sc *Scenario, modes []Mode, engine shill.Engine) ScenarioResult {
	want := make(map[Mode]bool, len(modes))
	for _, m := range modes {
		want[m] = true
	}
	res := ScenarioResult{Name: sc.Name, Attrs: sc.Attrs}

	var amb, sbx *legResult
	if want[ModeAmbient] || want[ModeOracle] {
		amb = runLeg(ctx, sc, ModeAmbient, engine)
	}
	if want[ModeSandboxed] || want[ModeOracle] {
		sbx = runLeg(ctx, sc, ModeSandboxed, engine)
	}
	if want[ModeAmbient] {
		res.Modes = append(res.Modes, legVerdict(sc, amb))
	}
	if want[ModeSandboxed] {
		res.Modes = append(res.Modes, legVerdict(sc, sbx))
	}
	if want[ModeOracle] {
		res.Modes = append(res.Modes, oracleVerdict(amb, sbx))
	}
	return res
}

// runLeg boots, checks preconditions, runs the body under the scenario
// timeout, and measures its effects (touched paths, leaked listeners).
func runLeg(ctx context.Context, sc *Scenario, mode Mode, engine shill.Engine) *legResult {
	leg := &legResult{mode: mode}
	start := time.Now()
	defer func() { leg.elapsed = time.Since(start) }()

	m, err := boot(sc, engine)
	if err != nil {
		leg.bodyErr = fmt.Errorf("boot: %w", err)
		return leg
	}
	defer m.Close()

	for _, pre := range sc.Pre {
		if err := pre.Check(m); err != nil {
			leg.skipped = fmt.Sprintf("%s: %v", pre.Name, err)
			return leg
		}
	}

	env := &Env{M: m, Mode: mode, sc: sc, sess: m.NewSession()}
	defer env.sess.Close()

	win := m.OpenFSWindow()
	netBefore := m.NetListeners()

	lctx, cancel := context.WithTimeout(ctx, sc.timeout())
	leg.bodyErr = sc.Body(lctx, env)
	timedOut := lctx.Err() != nil && ctx.Err() == nil
	cancel()

	leg.steps = env.Steps()
	touched := win.Touched()
	win.Close()
	leg.escapes = escapes(touched, sc.WriteRoots)
	leg.leaked = diffListeners(netBefore, m.NetListeners())
	if leg.bodyErr != nil && timedOut && errors.Is(leg.bodyErr, context.DeadlineExceeded) {
		leg.timedOut = true
	}
	return leg
}

func diffListeners(before, after []string) []string {
	prev := make(map[string]struct{}, len(before))
	for _, l := range before {
		prev[l] = struct{}{}
	}
	var out []string
	for _, l := range after {
		if _, ok := prev[l]; !ok {
			out = append(out, l)
		}
	}
	return out
}

// legVerdict maps one real leg to its mode result.
func legVerdict(sc *Scenario, leg *legResult) ModeResult {
	out := ModeResult{Mode: leg.mode, ElapsedMs: float64(leg.elapsed) / float64(time.Millisecond), Steps: leg.steps}
	switch {
	case leg.skipped != "":
		out.Verdict, out.Kind, out.Detail = "skipped", "precondition", leg.skipped
	case leg.timedOut:
		out.Verdict, out.Kind = "failed", "timeout"
		out.Detail = fmt.Sprintf("body exceeded the %s scenario timeout", sc.timeout())
		out.Step = lastStepName(leg.steps)
	case leg.bodyErr != nil:
		out.Verdict, out.Kind, out.Detail = "failed", "body-error", leg.bodyErr.Error()
		out.Step = lastStepName(leg.steps)
	case len(leg.escapes) > 0:
		out.Verdict, out.Kind = "failed", "escape"
		out.Detail = fmt.Sprintf("touched outside write roots: %s", strings.Join(head(leg.escapes, 6), ", "))
	case len(leg.leaked) > 0:
		out.Verdict, out.Kind = "failed", "listener-leak"
		out.Detail = fmt.Sprintf("listeners still bound after body: %v", leg.leaked)
	default:
		for _, s := range leg.steps {
			if s.Expected != "" && !expectMatches(s.Expected, s.Status) {
				out.Verdict, out.Kind, out.Step = "failed", "expectation", s.Name
				out.Provenance = s.Provenance
				out.Detail = fmt.Sprintf("step %s: expected %s %s, got %s", s.Name, leg.mode, s.Expected, s.Status)
				return out
			}
		}
		out.Verdict = "passed"
	}
	return out
}

// expectMatches compares a recorded status against an Expect assertion.
// Two special values loosen the match: "exit" matches any nonzero exit
// status, and "fail" matches every failure outcome (denied, error, or a
// nonzero exit) — how a scenario asserts "this must not succeed"
// without caring how exactly the sandbox stops it.
func expectMatches(want, got string) bool {
	switch want {
	case "exit":
		return strings.HasPrefix(got, "exit:")
	case "fail":
		return got == "denied" || got == "error" || strings.HasPrefix(got, "exit:")
	}
	return want == got
}

func lastStepName(steps []StepResult) string {
	if len(steps) == 0 {
		return ""
	}
	return steps[len(steps)-1].Name
}

// oracleVerdict judges the differential properties over the two legs:
// no-escape (either leg mutating outside the scenario's write roots or
// leaking listeners), DAC-conjunction (a step succeeding sandboxed but
// failing ambient), and deny-provenance (the first sandbox-only failing
// step must carry a MAC/policy/capability denial). Comparison stops at
// the first divergent step — past it the two filesystems legitimately
// differ.
func oracleVerdict(amb, sbx *legResult) ModeResult {
	out := ModeResult{Mode: ModeOracle, ElapsedMs: float64(amb.elapsed+sbx.elapsed) / float64(time.Millisecond)}
	switch {
	case amb.skipped != "" || sbx.skipped != "":
		out.Verdict, out.Kind = "skipped", "precondition"
		out.Detail = firstNonEmpty(amb.skipped, sbx.skipped)
		return out
	case amb.bodyErr != nil || sbx.bodyErr != nil:
		out.Verdict, out.Kind = "failed", "harness"
		if amb.bodyErr != nil {
			out.Detail = "ambient leg: " + amb.bodyErr.Error()
		} else {
			out.Detail = "sandboxed leg: " + sbx.bodyErr.Error()
		}
		return out
	}

	for _, leg := range []*legResult{sbx, amb} {
		if len(leg.escapes) > 0 {
			out.Verdict, out.Kind = "violation", "no-escape"
			out.Detail = fmt.Sprintf("%s leg touched outside write roots: %s",
				leg.mode, strings.Join(head(leg.escapes, 6), ", "))
			return out
		}
		if len(leg.leaked) > 0 {
			out.Verdict, out.Kind = "violation", "no-escape"
			out.Detail = fmt.Sprintf("%s leg left listeners bound: %v", leg.mode, leg.leaked)
			return out
		}
	}

	n := len(sbx.steps)
	if len(amb.steps) < n {
		n = len(amb.steps)
	}
	for i := 0; i < n; i++ {
		as, ss := amb.steps[i], sbx.steps[i]
		if as.Name != ss.Name {
			out.Verdict, out.Kind, out.Step = "violation", "step-divergence", ss.Name
			out.Detail = fmt.Sprintf("step %d is %q ambient but %q sandboxed — the body's control flow is mode-dependent", i, as.Name, ss.Name)
			return out
		}
		if as.Status == ss.Status {
			if sbxOK(ss) && as.Console != ss.Console && ss.Compared {
				out.Verdict, out.Kind, out.Step = "violation", "console-divergence", ss.Name
				out.Detail = fmt.Sprintf("step %s: console differs between legs before any divergence (%q vs %q)",
					ss.Name, head1(as.Console), head1(ss.Console))
				return out
			}
			continue
		}
		// First divergent op: judge and stop comparing.
		out.Step = ss.Name
		if sbxOK(ss) {
			out.Verdict, out.Kind = "violation", "conjunction"
			out.Detail = fmt.Sprintf("step %s succeeded sandboxed (%s) but failed ambient (%s): the sandbox exceeded ambient authority",
				ss.Name, ss.Status, as.Status)
			return out
		}
		if !qualifiedProvenance(ss) {
			out.Verdict, out.Kind = "violation", "deny-unexplained"
			out.Detail = fmt.Sprintf("step %s failed only under the sandbox (%s vs %s) with no MAC/policy/capability denial explaining it",
				ss.Name, ss.Status, as.Status)
			return out
		}
		out.Provenance = ss.Provenance
		out.Verdict = "passed"
		out.Detail = fmt.Sprintf("diverged at %s, explained by denial: %s", ss.Name, ss.Provenance)
		return out
	}
	if len(amb.steps) != len(sbx.steps) {
		out.Verdict, out.Kind = "violation", "step-divergence"
		out.Detail = fmt.Sprintf("legs recorded different step counts (%d ambient, %d sandboxed) without a status divergence",
			len(amb.steps), len(sbx.steps))
		return out
	}
	out.Verdict = "passed"
	return out
}

// sbxOK treats only a clean "ok" as success; a nonzero exit is a
// failure outcome for conjunction purposes.
func sbxOK(s StepResult) bool { return s.Status == "ok" }

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func head(xs []string, n int) []string {
	if len(xs) > n {
		return append(xs[:n:n], fmt.Sprintf("... (%d more)", len(xs)-n))
	}
	return xs
}

func head1(s string) string {
	if len(s) > 80 {
		return s[:80] + "..."
	}
	return s
}
