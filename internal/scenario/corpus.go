package scenario

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
)

// The committed LLM-generated script corpus. Each entry under corpus/
// is a driver + capability module pair produced by a language model
// (see corpus/README.md for provenance and regeneration), checked in
// under an inferred manifest: the fixture it needs, the write roots its
// honest execution stays inside, and the per-mode statuses observed
// when the manifest was inferred. The harness holds every run to that
// manifest — an LLM script drifting outside its inferred footprint is a
// failure, not a surprise.

//go:embed corpus
var corpusFS embed.FS

type corpusStep struct {
	Name           string            `json:"name"`
	Driver         string            `json:"driver,omitempty"`
	Module         string            `json:"module,omitempty"`
	Argv           []string          `json:"argv,omitempty"`
	CompareConsole bool              `json:"compareConsole,omitempty"`
	Expect         map[string]string `json:"expect,omitempty"`
}

type corpusManifest struct {
	Name         string       `json:"name"`
	Desc         string       `json:"desc"`
	Attrs        []string     `json:"attrs"`
	Fixture      string       `json:"fixture,omitempty"`
	WriteRoots   []string     `json:"writeRoots,omitempty"`
	RequirePaths []string     `json:"requirePaths,omitempty"`
	Steps        []corpusStep `json:"steps"`
}

func init() {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		panic("scenario: corpus: " + err.Error())
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if err := registerCorpusEntry(ent.Name()); err != nil {
			panic("scenario: corpus " + ent.Name() + ": " + err.Error())
		}
	}
}

func registerCorpusEntry(dir string) error {
	read := func(name string) (string, error) {
		data, err := corpusFS.ReadFile("corpus/" + dir + "/" + name)
		return string(data), err
	}
	manifest, err := read("manifest.json")
	if err != nil {
		return err
	}
	var m corpusManifest
	if err := json.Unmarshal([]byte(manifest), &m); err != nil {
		return fmt.Errorf("manifest.json: %w", err)
	}
	if m.Name == "" || len(m.Steps) == 0 {
		return fmt.Errorf("manifest.json: missing name or steps")
	}

	// Resolve the step sources at registration so a missing file panics
	// at init, not mid-run.
	specs := make([]StepSpec, 0, len(m.Steps))
	for _, st := range m.Steps {
		spec := StepSpec{Name: st.Name, Argv: st.Argv, CompareConsole: st.CompareConsole}
		if st.Driver != "" {
			if spec.Driver, err = read(st.Driver); err != nil {
				return err
			}
		}
		if st.Module != "" {
			spec.Module = st.Module
			if spec.Cap, err = read(st.Module); err != nil {
				return err
			}
		}
		if len(st.Expect) > 0 {
			spec.Expect = make(map[Mode]string, len(st.Expect))
			for mode, status := range st.Expect {
				spec.Expect[Mode(mode)] = status
			}
		}
		specs = append(specs, spec)
	}

	var pre []Precondition
	if len(m.RequirePaths) > 0 {
		pre = append(pre, RequirePaths(m.RequirePaths...))
	}
	Register(Scenario{
		Name:       m.Name,
		Desc:       m.Desc,
		Attrs:      m.Attrs,
		Fixture:    m.Fixture,
		Pre:        pre,
		WriteRoots: m.WriteRoots,
		Body: func(ctx context.Context, e *Env) error {
			for _, spec := range specs {
				e.Step(ctx, spec)
			}
			return nil
		},
	})
	return nil
}
