package scenario

import (
	"context"
	"regexp"
	"strings"
	"testing"

	"repro/shill"
)

// TestThreeWayRegistry runs every registered scenario in all three
// modes — the acceptance bar for the registry: at least 12 scenarios,
// zero failures, zero oracle violations.
func TestThreeWayRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-way registry run skipped in -short")
	}
	rep, err := Run(context.Background(), Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 12 {
		t.Fatalf("registry holds %d scenarios, want >= 12", len(rep.Scenarios))
	}
	if !rep.Ok() {
		t.Fatalf("three-way run not clean: %d failed, %d violations\n%s",
			rep.Failed, rep.Violations, FormatClusters(rep.Clusters))
	}
	for _, sc := range rep.Scenarios {
		if len(sc.Modes) != 3 {
			t.Errorf("%s ran %d modes, want 3", sc.Name, len(sc.Modes))
		}
	}
}

func TestRunRejectsUnknownAttr(t *testing.T) {
	if _, err := Run(context.Background(), Options{Attr: "not-an-attr"}); err == nil {
		t.Fatal("Run with an unknown attr succeeded; a typo must fail the selection")
	}
}

const stripSample = `#lang shill/cap

provide scan :
  dir(+stat, +contents, +lookup with { file: file(+read, +stat) }) ->
  void;
provide helper;

scan = fun(d) {
  # provide in a comment stays; "provide x : y;" in a string too.
  s = "provide fake : contract;";
};
`

func TestStripContractsSample(t *testing.T) {
	got := StripContracts(stripSample)
	if !strings.Contains(got, "provide scan;") {
		t.Fatalf("contracted provide not reduced to bare form:\n%s", got)
	}
	if strings.Contains(got, "->") || strings.Contains(got, "+lookup") {
		t.Fatalf("contract text survived stripping:\n%s", got)
	}
	if !strings.Contains(got, "provide helper;") {
		t.Fatalf("bare provide damaged:\n%s", got)
	}
	if !strings.Contains(got, `# provide in a comment stays`) ||
		!strings.Contains(got, `"provide fake : contract;"`) {
		t.Fatalf("comment or string content altered:\n%s", got)
	}
	// Idempotent: stripping an already-stripped module is a no-op.
	if again := StripContracts(got); again != got {
		t.Fatalf("StripContracts not idempotent:\n%s\nvs\n%s", got, again)
	}
}

// TestStripContractsBuiltins strips every embedded case-study module:
// afterwards each provide statement must be the bare full-authority
// form, with the same set of names exported.
func TestStripContractsBuiltins(t *testing.T) {
	bare := regexp.MustCompile(`provide\s+([A-Za-z_][A-Za-z0-9_]*)\s*;`)
	any := regexp.MustCompile(`provide\s+([A-Za-z_][A-Za-z0-9_]*)`)
	checked := 0
	for name, src := range shill.ScriptFiles() {
		if !strings.HasSuffix(name, ".cap") {
			continue
		}
		checked++
		got := StripContracts(src)
		want := names(any.FindAllStringSubmatch(src, -1))
		have := names(bare.FindAllStringSubmatch(got, -1))
		if len(want) == 0 {
			t.Errorf("%s: no provides found; the corpus assumption broke", name)
			continue
		}
		if strings.Join(want, ",") != strings.Join(have, ",") {
			t.Errorf("%s: stripped exports %v, want bare provides for %v\n%s", name, have, want, got)
		}
	}
	if checked == 0 {
		t.Fatal("no .cap modules in shill.ScriptFiles(); nothing exercised")
	}
}

func names(matches [][]string) []string {
	var out []string
	for _, m := range matches {
		out = append(out, m[1])
	}
	return out
}
