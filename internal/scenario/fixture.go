package scenario

import (
	"fmt"
	"sync"

	"repro/shill"
)

// Fixture is a reusable staged environment: a workload plus arbitrary
// extra staging, set up once on a scratch machine and captured as a
// golden image (the PR 8 snapshot machinery). Every leg of every
// scenario that names the fixture boots a private machine restored from
// that one image — N scenarios share one setup cost, and because
// restores mount the image's layers copy-on-write, no scenario can ever
// observe another's writes (fixture_test proves it).
type Fixture struct {
	Name     string
	Workload shill.Workload
	Setup    func(m *shill.Machine) error
}

type fixtureState struct {
	f    Fixture
	once sync.Once
	img  *shill.Image
	err  error
}

var fixtureRegistry struct {
	sync.Mutex
	fixtures map[string]*fixtureState
}

// RegisterFixture adds a fixture. Like Register, it panics on
// duplicates — fixtures are declared in package init.
func RegisterFixture(f Fixture) {
	if f.Name == "" {
		panic("scenario: RegisterFixture: empty name")
	}
	fixtureRegistry.Lock()
	defer fixtureRegistry.Unlock()
	if fixtureRegistry.fixtures == nil {
		fixtureRegistry.fixtures = make(map[string]*fixtureState)
	}
	if _, dup := fixtureRegistry.fixtures[f.Name]; dup {
		panic("scenario: RegisterFixture: duplicate fixture " + f.Name)
	}
	fixtureRegistry.fixtures[f.Name] = &fixtureState{f: f}
}

// FixtureImage returns the fixture's golden image, building and
// snapshotting it on first use (concurrency-safe; the build happens
// once per process).
func FixtureImage(name string) (*shill.Image, error) {
	fixtureRegistry.Lock()
	st := fixtureRegistry.fixtures[name]
	fixtureRegistry.Unlock()
	if st == nil {
		return nil, fmt.Errorf("scenario: unknown fixture %q", name)
	}
	st.once.Do(func() {
		m, err := shill.NewMachine(shill.WithWorkload(st.f.Workload))
		if err != nil {
			st.err = fmt.Errorf("scenario: fixture %s: %w", name, err)
			return
		}
		defer m.Close()
		if st.f.Setup != nil {
			if err := st.f.Setup(m); err != nil {
				st.err = fmt.Errorf("scenario: fixture %s setup: %w", name, err)
				return
			}
		}
		st.img, st.err = m.Snapshot()
	})
	return st.img, st.err
}

// boot builds the machine one leg runs on: a restore from the
// scenario's fixture image, or a bare machine when it declares none.
func boot(sc *Scenario, engine shill.Engine) (*shill.Machine, error) {
	if sc.Fixture == "" {
		return shill.NewMachine(shill.WithEngine(engine))
	}
	img, err := FixtureImage(sc.Fixture)
	if err != nil {
		return nil, err
	}
	return shill.RestoreMachine(img, shill.WithEngine(engine))
}
