package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/shill"
)

// Mode is one of the three ways every scenario runs.
type Mode string

// The three run modes. Ambient and sandboxed are real executions on
// private machines — the capability modules run stripped
// (full-authority provides) or as written. Oracle is the differential
// judgment over the two legs' recorded steps: the PR 4 properties
// (no-escape, DAC-conjunction, deny-provenance) applied to declared
// scenarios instead of generated programs.
const (
	ModeAmbient   Mode = "ambient"
	ModeSandboxed Mode = "sandboxed"
	ModeOracle    Mode = "oracle"
)

// StepSpec describes one step of a scenario body: either a SHILL driver
// script (optionally requiring a capability module) or a native argv.
type StepSpec struct {
	// Name labels the step; oracle divergences and triage clusters
	// anchor on it.
	Name string
	// Driver is an ambient SHILL script source.
	Driver string
	// Module/Cap install a capability module the driver requires: Cap is
	// its source, Module the name the driver requires it by. The
	// sandboxed leg runs Cap as written; the ambient leg runs
	// StripContracts(Cap).
	Module string
	Cap    string
	// Argv runs a native command instead of a script (identical in both
	// modes — the baseline configuration). Dir optionally sets its
	// working directory.
	Argv []string
	Dir  string
	// Deadline bounds just this step; the scenario timeout still covers
	// the whole leg.
	Deadline time.Duration
	// CompareConsole marks the step's console output as
	// mode-deterministic: the oracle diffs it between legs (before the
	// first divergence).
	CompareConsole bool
	// Expect asserts the step's status per mode ("ok", "denied",
	// "canceled", "exit:N", "error"; "exit" matches any nonzero exit and
	// "fail" matches any failure outcome). A mismatch fails the leg —
	// how an adversarial scenario states "this probe must be denied
	// sandboxed and succeed ambient".
	Expect map[Mode]string
}

// StepResult records one executed step in mode-comparable form.
type StepResult struct {
	Name    string `json:"name"`
	Status  string `json:"status"`
	Console string `json:"console,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// Provenance is the triage key of the first MAC/policy/capability
	// denial in the step's audit window ("layer op missing") — the
	// denial that explains a sandbox-only failure, and the key failures
	// cluster by.
	Provenance string `json:"provenance,omitempty"`
	// Expected is the status the spec asserted for this leg's mode
	// (empty when the spec made no assertion).
	Expected string `json:"expected,omitempty"`
	// Compared carries the spec's CompareConsole flag for the oracle.
	Compared bool `json:"-"`
}

// Ok reports a successful step.
func (r StepResult) Ok() bool { return r.Status == "ok" }

// Env is the execution context a scenario body drives: the leg's
// private machine, its mode, and the recorded step results.
type Env struct {
	M    *shill.Machine
	Mode Mode

	sc   *Scenario
	sess *shill.Session

	mu    sync.Mutex
	steps []StepResult
}

// Steps returns the results recorded so far.
func (e *Env) Steps() []StepResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]StepResult(nil), e.steps...)
}

func (e *Env) record(r StepResult) {
	e.mu.Lock()
	e.steps = append(e.steps, r)
	e.mu.Unlock()
}

// Step runs one step on the leg's session and records its result. It
// never returns an error for in-band outcomes (denials, nonzero exits,
// cancellation) — those are statuses the oracle compares; bodies should
// normally run every step regardless and let Expect/oracle judge.
func (e *Env) Step(ctx context.Context, spec StepSpec) StepResult {
	r := e.exec(ctx, e.sess, spec)
	e.record(r)
	return r
}

// Handle is a step running in the background on its own session — a
// server the scenario's foreground steps talk to.
type Handle struct {
	name string
	sess *shill.Session
	res  chan StepResult
}

// Spawn starts a step on a fresh session and returns immediately; Wait
// collects (and records) its result. The body must Wait every handle it
// spawns before returning.
func (e *Env) Spawn(ctx context.Context, spec StepSpec) *Handle {
	h := &Handle{name: spec.Name, sess: e.M.NewSession(), res: make(chan StepResult, 1)}
	go func() {
		h.res <- e.exec(ctx, h.sess, spec)
	}()
	return h
}

// Wait blocks until the spawned step finishes, records its result in
// body order, and releases its session.
func (e *Env) Wait(h *Handle) StepResult {
	r := <-h.res
	h.sess.Close()
	e.record(r)
	return r
}

// WaitListener blocks until a listener is bound on the given port —
// how a body synchronizes with a server it spawned.
func (e *Env) WaitListener(port string, timeout time.Duration) error {
	return e.M.WaitListener(port, timeout)
}

// ShutdownHTTP sends the simulated web servers' shutdown request to the
// given port.
func (e *Env) ShutdownHTTP(port string) { e.M.ShutdownHTTP(port) }

// exec runs one step and maps its outcome to a mode-comparable status:
// "ok", "exit:N", "denied", "canceled", or "error".
func (e *Env) exec(ctx context.Context, s *shill.Session, spec StepSpec) StepResult {
	out := StepResult{Name: spec.Name, Expected: spec.Expect[e.Mode], Compared: spec.CompareConsole}
	if spec.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Deadline)
		defer cancel()
	}

	var res *shill.Result
	var err error
	if len(spec.Argv) > 0 {
		res, err = s.RunCommand(ctx, spec.Argv, spec.Dir)
	} else {
		script := shill.Script{Name: spec.Name + ".ambient", Source: spec.Driver}
		if spec.Cap != "" {
			mod := spec.Cap
			if e.Mode == ModeAmbient {
				mod = StripContracts(mod)
			}
			script.Resolver = shill.ChainResolver{
				shill.MapResolver{spec.Module: mod},
				e.M.Resolver(),
			}
		}
		res, err = s.Run(ctx, script)
	}

	if res != nil {
		out.Console = res.Console
		out.Provenance = provenanceKey(res.Denials)
	}
	switch {
	case err == nil && (res == nil || res.ExitStatus == 0):
		out.Status = "ok"
	case err == nil:
		out.Status = fmt.Sprintf("exit:%d", res.ExitStatus)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		out.Status = "canceled"
		out.Detail = err.Error()
	case shill.DenyReasonFor(err) != nil:
		out.Status = "denied"
		out.Detail = err.Error()
		if out.Provenance == "" {
			out.Provenance = denyKey(shill.DenyReasonFor(err))
		}
	default:
		out.Status = "error"
		out.Detail = err.Error()
	}
	return out
}

// provenanceKey extracts the triage key of the first denial a sandbox
// (not DAC) layer produced in the step's window.
func provenanceKey(denials []*shill.DenyReason) string {
	for _, d := range denials {
		if key := denyKey(d); key != "" {
			return key
		}
	}
	return ""
}

// denyKey renders one qualifying denial as "layer op missing"; DAC
// denials (which bind ambient runs equally) yield "".
func denyKey(d *shill.DenyReason) string {
	if d == nil {
		return ""
	}
	d.Resolve()
	switch d.Layer {
	case audit.LayerCapability, audit.LayerPolicy, audit.LayerMAC:
	default:
		return ""
	}
	key := d.Layer.String() + " " + d.Op
	if !d.Missing.Empty() {
		key += " missing=" + d.Missing.String()
	}
	return key
}

// qualifiedProvenance reports whether a step's recorded provenance
// explains a sandbox-only failure (any non-DAC denial does; denyKey
// already filtered the layers).
func qualifiedProvenance(r StepResult) bool { return r.Provenance != "" }

// escapes filters a leg's touched paths down to the ones outside the
// scenario's write roots — the no-escape check. Console devices are
// always legitimate.
func escapes(touched []string, roots []string) []string {
	var out []string
	for _, p := range touched {
		if p == "/dev" || strings.HasPrefix(p, "/dev/") {
			continue
		}
		inRoot := false
		for _, r := range roots {
			if p == r || strings.HasPrefix(p, r+"/") {
				inRoot = true
				break
			}
		}
		if !inRoot {
			out = append(out, p)
		}
	}
	return out
}
