package scenario

import "repro/shill"

// The built-in fixtures. Each is staged once per process and captured
// as a golden image; every scenario leg that names one boots a private
// restore (see Fixture).
func init() {
	RegisterFixture(Fixture{Name: "demo", Workload: shill.WorkloadDemo})
	RegisterFixture(Fixture{Name: "workspace", Setup: stageWorkspace})
	RegisterFixture(Fixture{Name: "webtier", Setup: stageWebtier})
	RegisterFixture(Fixture{Name: "buildtree", Setup: stageBuildtree})
}

func stageTree(m *shill.Machine, dirs []string, files map[string]string) error {
	for _, d := range dirs {
		if err := m.MkdirAll(d, 0o755, shill.UserUID); err != nil {
			return err
		}
	}
	for path, data := range files {
		if err := m.WriteFile(path, []byte(data), 0o644, shill.UserUID); err != nil {
			return err
		}
	}
	return nil
}

// workspace is a developer home: sources, notes, a service log, and a
// batch queue. The logs, files, and batch scenario families share it.
func stageWorkspace(m *shill.Machine) error {
	return stageTree(m,
		[]string{
			"/home/user/work/src",
			"/home/user/work/notes",
			"/home/user/work/logs",
			"/home/user/work/queue",
			"/home/user/work/out",
		},
		map[string]string{
			"/home/user/work/src/main.c":     "int main() { return mac_check(); }\n",
			"/home/user/work/src/util.c":     "static int helper = 1;\n",
			"/home/user/work/src/mac.c":      "int mac_check() { return 0; }\nint mac_audit() { return 1; }\n",
			"/home/user/work/src/README":     "toy service sources\n",
			"/home/user/work/notes/todo.txt": "review mac_ hooks\n",
			"/home/user/work/logs/app.log": "INFO boot\n" +
				"ERROR disk full\n" +
				"INFO serve\n" +
				"ERROR timeout\n" +
				"INFO done\n",
			"/home/user/work/queue/job1": "alpha",
			"/home/user/work/queue/job2": "beta",
			"/home/user/work/queue/job3": "gamma",
			"/home/user/work/out/.keep":  "",
		})
}

// webtier is a small web deployment: a docroot, two server configs (the
// web and adversarial scenarios bind different ports), and a log dir.
func stageWebtier(m *shill.Machine) error {
	return stageTree(m,
		[]string{
			"/home/user/web/www",
			"/home/user/web/logs",
		},
		map[string]string{
			"/home/user/web/www/index.html": "<html>home</html>\n",
			"/home/user/web/www/data.txt":   "payload-42\n",
			"/home/user/web/httpd.conf": "Listen 8090\n" +
				"DocumentRoot /home/user/web/www\n" +
				"AccessLog /home/user/web/logs/access.log\n",
			"/home/user/web/httpd-alt.conf": "Listen 8091\n" +
				"DocumentRoot /home/user/web/www\n" +
				"AccessLog /home/user/web/logs/alt.log\n",
			"/home/user/web/logs/.keep": "",
		})
}

// buildtree is an unpacked source tree in the shape ./configure expects
// (the emacs stand-in: three C files and a DOC blob), plus an install
// prefix.
func stageBuildtree(m *shill.Machine) error {
	if err := stageTree(m,
		[]string{
			"/home/user/proj/src",
			"/home/user/proj/etc",
			"/home/user/.local",
		},
		map[string]string{
			"/home/user/proj/src/emacs.c":  "int main() { return editor(); }\n",
			"/home/user/proj/src/lisp.c":   "int eval() { return 0; }\n",
			"/home/user/proj/src/buffer.c": "int gap() { return 1; }\n",
			"/home/user/proj/etc/DOC":      "Emacs documentation blob\n",
		}); err != nil {
		return err
	}
	// The configure script is an executable image dispatching to the
	// simulated binary of the same name.
	return m.WriteFile("/home/user/proj/configure", []byte("#!bin:configure\n"), 0o755, shill.UserUID)
}
