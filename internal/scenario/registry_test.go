package scenario

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want one containing %q", r, want)
		}
	}()
	f()
}

func trivialBody(context.Context, *Env) error { return nil }

func TestRegisterDuplicatePanics(t *testing.T) {
	// legacy/allow is registered in package init; re-registering the
	// name must panic (and, because the duplicate check rejects it, the
	// registry is left untouched).
	mustPanic(t, "duplicate scenario legacy/allow", func() {
		Register(Scenario{Name: "legacy/allow", Body: trivialBody})
	})
	if Lookup("legacy/allow") == nil {
		t.Fatal("built-in legacy/allow lost after rejected duplicate registration")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "empty name", func() {
		Register(Scenario{Body: trivialBody})
	})
	mustPanic(t, "has no body", func() {
		Register(Scenario{Name: "t/nobody"})
	})
	mustPanic(t, `unknown attr "bogus"`, func() {
		Register(Scenario{Name: "t/badattr", Attrs: []string{"bogus"}, Body: trivialBody})
	})
	if Lookup("t/nobody") != nil || Lookup("t/badattr") != nil {
		t.Fatal("rejected registrations leaked into the registry")
	}
}

func TestParseAttr(t *testing.T) {
	cases := []struct {
		expr  string
		attrs []string
		want  bool
	}{
		{"", nil, true},
		{"", []string{"slow"}, true},
		{"sandbox", []string{"sandbox"}, true},
		{"sandbox", []string{"web"}, false},
		{"!slow", []string{"sandbox"}, true},
		{"!slow", []string{"sandbox", "slow"}, false},
		{"sandbox && !slow", []string{"sandbox"}, true},
		{"sandbox && !slow", []string{"sandbox", "slow"}, false},
		{"legacy || llm", []string{"llm"}, true},
		{"legacy || llm", []string{"web"}, false},
		{"(net || web) && !adversarial", []string{"web"}, true},
		{"(net || web) && !adversarial", []string{"web", "adversarial"}, false},
		{"!(net || web)", []string{"files"}, true},
		// && binds tighter than ||.
		{"legacy || sandbox && slow", []string{"legacy"}, true},
		{"legacy || sandbox && slow", []string{"sandbox"}, false},
	}
	for _, c := range cases {
		e, err := ParseAttr(c.expr)
		if err != nil {
			t.Fatalf("ParseAttr(%q): %v", c.expr, err)
		}
		set := make(map[string]bool, len(c.attrs))
		for _, a := range c.attrs {
			set[a] = true
		}
		if got := e.Eval(set); got != c.want {
			t.Errorf("ParseAttr(%q).Eval(%v) = %v, want %v", c.expr, c.attrs, got, c.want)
		}
	}
}

func TestParseAttrErrors(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"bogus", `unknown attr "bogus"`},
		{"sandbox &&", "ends where an attribute was expected"},
		{"(sandbox", "missing ')'"},
		{"sandbox & slow", `unexpected "&"`},
		{"sandbox slow", `unexpected "slow"`},
	}
	for _, c := range cases {
		_, err := ParseAttr(c.expr)
		if err == nil {
			t.Errorf("ParseAttr(%q) succeeded, want error containing %q", c.expr, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseAttr(%q) error = %v, want one containing %q", c.expr, err, c.want)
		}
	}
}

func TestSelect(t *testing.T) {
	legacy, err := Select("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) < 3 {
		t.Fatalf("Select(legacy) = %d scenarios, want the 3 pre-registry bodies", len(legacy))
	}
	for _, sc := range legacy {
		if !sc.attrSet()["legacy"] {
			t.Errorf("Select(legacy) returned %s without the attr", sc.Name)
		}
	}
	if _, err := Select("no-such-attr"); err == nil || !strings.Contains(err.Error(), "unknown attr") {
		t.Fatalf("Select with a typo = %v, want unknown-attr error", err)
	}
	if all, err := Select(""); err != nil || len(all) < 12 {
		t.Fatalf("Select(\"\") = %d scenarios, %v; want the full registry (>= 12)", len(all), err)
	}
}

func TestPreconditionUnmetReportsSkipped(t *testing.T) {
	bodyRan := false
	sc := &Scenario{
		Name: "t/unmet",
		Pre:  []Precondition{RequirePaths("/no/such/staged/path")},
		Body: func(context.Context, *Env) error {
			bodyRan = true
			return nil
		},
	}
	res := RunScenario(context.Background(), sc, []Mode{ModeAmbient, ModeSandboxed, ModeOracle}, 0)
	if len(res.Modes) != 3 {
		t.Fatalf("got %d mode results, want 3", len(res.Modes))
	}
	for _, m := range res.Modes {
		if m.Verdict != "skipped" {
			t.Errorf("%s verdict = %q, want skipped (detail: %s)", m.Mode, m.Verdict, m.Detail)
		}
		if m.Kind != "precondition" {
			t.Errorf("%s kind = %q, want precondition", m.Mode, m.Kind)
		}
	}
	if bodyRan {
		t.Fatal("body ran despite an unmet precondition")
	}
	if res.Verdict() == "passed" {
		t.Fatal("scenario verdict is passed; an unmet precondition must not count as a pass")
	}
}

const blockingAccept = `#lang shill/ambient
require shill/sockets;

f = socket_factory("ip");
l = socket_listen(f, "29997");
c = socket_accept(l);
`

func TestTimeoutCancelsLeakFree(t *testing.T) {
	sc := &Scenario{
		Name:    "t/timeout",
		Timeout: 200 * time.Millisecond,
		Ports:   []int{29997},
		Body: func(ctx context.Context, e *Env) error {
			r := e.Step(ctx, StepSpec{Name: "block", Driver: blockingAccept})
			if r.Status != "canceled" {
				return nil
			}
			return ctx.Err()
		},
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	res := RunScenario(context.Background(), sc, []Mode{ModeSandboxed}, 0)
	elapsed := time.Since(start)

	m := res.Modes[0]
	if m.Verdict != "failed" || m.Kind != "timeout" {
		t.Fatalf("verdict = %s/%s (%s), want failed/timeout", m.Verdict, m.Kind, m.Detail)
	}
	if len(m.Steps) != 1 || m.Steps[0].Status != "canceled" {
		t.Fatalf("steps = %+v, want one canceled step", m.Steps)
	}
	// PR 3's cancellation contract: the blocked run must come back well
	// within the promptness budget, not hang until some network timeout.
	if elapsed > 2*time.Second {
		t.Fatalf("timeout cancellation took %v, want < 2s", elapsed)
	}
	settleGoroutines(t, before)
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline — the leak assertion the PR 3 cancellation tests established.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by the cancelled scenario: %d before, %d after", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
