package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// ClusterKey is the root-cause identity of a failure: the failure
// class, the step it first manifested at, and the deny-provenance key
// (layer + op + missing rights) when a denial explains it. Twenty
// scenarios all failing because one capability contract lost
// +create_file collapse to one cluster — the xfstests-style triage that
// makes a wide regression readable.
type ClusterKey struct {
	Kind       string `json:"kind"`
	Step       string `json:"step,omitempty"`
	Provenance string `json:"provenance,omitempty"`
}

// Cluster groups every non-passed mode result sharing a root cause.
type Cluster struct {
	ClusterKey
	// Verdict is the worst verdict in the cluster (violation > failed >
	// skipped).
	Verdict string `json:"verdict"`
	// Members lists "scenario/mode" identifiers, sorted.
	Members []string `json:"members"`
	// Example is one member's detail string, representative of the
	// cluster.
	Example string `json:"example,omitempty"`
}

// Clusterize groups the non-passed results of a run by root cause,
// worst clusters first.
func Clusterize(scs []ScenarioResult) []Cluster {
	byKey := make(map[ClusterKey]*Cluster)
	for _, sc := range scs {
		for _, m := range sc.Modes {
			if m.Verdict == "passed" {
				continue
			}
			key := ClusterKey{Kind: m.Kind, Step: m.Step, Provenance: m.Provenance}
			c := byKey[key]
			if c == nil {
				c = &Cluster{ClusterKey: key, Verdict: m.Verdict, Example: m.Detail}
				byKey[key] = c
			}
			if verdictRank(m.Verdict) > verdictRank(c.Verdict) {
				c.Verdict, c.Example = m.Verdict, m.Detail
			}
			c.Members = append(c.Members, sc.Name+"/"+string(m.Mode))
		}
	}
	out := make([]Cluster, 0, len(byKey))
	for _, c := range byKey {
		sort.Strings(c.Members)
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := verdictRank(out[i].Verdict), verdictRank(out[j].Verdict); a != b {
			return a > b
		}
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return clusterLess(out[i].ClusterKey, out[j].ClusterKey)
	})
	return out
}

func verdictRank(v string) int {
	switch v {
	case "violation":
		return 3
	case "failed":
		return 2
	case "skipped":
		return 1
	}
	return 0
}

func clusterLess(a, b ClusterKey) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	return a.Provenance < b.Provenance
}

// FormatClusters renders clusters for terminal output.
func FormatClusters(cs []Cluster) string {
	if len(cs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range cs {
		fmt.Fprintf(&b, "cluster %d [%s] kind=%s", i+1, c.Verdict, c.Kind)
		if c.Step != "" {
			fmt.Fprintf(&b, " step=%s", c.Step)
		}
		if c.Provenance != "" {
			fmt.Fprintf(&b, " provenance=%q", c.Provenance)
		}
		fmt.Fprintf(&b, " (%d)\n", len(c.Members))
		for _, m := range c.Members {
			fmt.Fprintf(&b, "  %s\n", m)
		}
		if c.Example != "" {
			fmt.Fprintf(&b, "  ↳ %s\n", c.Example)
		}
		if hint := clusterHint(c.Kind); hint != "" {
			fmt.Fprintf(&b, "  hint: %s\n", hint)
		}
	}
	return b.String()
}

// clusterHint suggests where to look for each failure class.
func clusterHint(kind string) string {
	switch kind {
	case "conjunction":
		return "the sandboxed leg out-performed ambient — a capability grants authority DAC would refuse; check the module's contracts against the fixture's ownership"
	case "deny-unexplained":
		return "a sandbox-only failure with no MAC/policy/capability denial in its window — likely a lost DenyReason or an op denied before audit; check the kernel path for the step's op"
	case "no-escape":
		return "writes landed outside the scenario's declared WriteRoots — either the scenario under-declares its roots or a capability leaked"
	case "console-divergence":
		return "a step marked CompareConsole printed different output per leg before any divergence — nondeterminism in the step or a contract changing visible behavior without failing"
	case "expectation":
		return "a step's Expect assertion failed for this mode — the scenario's model of the sandbox disagrees with its behavior"
	case "timeout":
		return "the body exceeded its scenario timeout — check for a spawned server that never bound its port or a Wait on a handle whose context is not the leg's"
	}
	return ""
}
