package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/shill"
)

// DefaultTimeout bounds one leg of a scenario that declares no timeout
// of its own. A body that blocks past it is cancelled through the
// session's context — the PR 3 contract guarantees the interruption is
// prompt and leak-free.
const DefaultTimeout = 20 * time.Second

// KnownAttrs is the closed attribute vocabulary. Registration rejects a
// scenario tagged outside it, and attr-expression parsing rejects a
// selector naming an unknown attribute — a typo in either place is an
// error, never a silently-empty selection.
var KnownAttrs = map[string]bool{
	"adversarial": true, // probes denials and escape attempts on purpose
	"batch":       true, // cron-style fan-out
	"build":       true, // configure/compile/install pipelines
	"files":       true, // find/grep/archive chains
	"legacy":      true, // the pre-registry loadgen bodies
	"llm":         true, // the committed LLM-generated corpus
	"logs":        true, // log rotation and processing
	"net":         true, // binds or connects sockets
	"sandbox":     true, // meaningfully exercises capability confinement
	"slow":        true, // excluded from the CI '!slow' selection
	"web":         true, // drives the netstack web tier
}

// Precondition is a named requirement checked against the freshly
// booted machine before a leg runs. An unmet precondition makes the leg
// report "skipped" — never "passed".
type Precondition struct {
	Name  string
	Check func(m *shill.Machine) error
}

// RequireBinaries demands that every named executable resolves on the
// image PATH.
func RequireBinaries(names ...string) Precondition {
	return Precondition{
		Name: "binaries:" + strings.Join(names, ","),
		Check: func(m *shill.Machine) error {
			for _, n := range names {
				if _, err := m.LookPath(n); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// RequirePaths demands that every named path is staged on the image —
// how a scenario states its workload-staging precondition.
func RequirePaths(paths ...string) Precondition {
	return Precondition{
		Name: "paths:" + strings.Join(paths, ","),
		Check: func(m *shill.Machine) error {
			for _, p := range paths {
				// ReadFile resolves directories too (their content is just
				// empty), so this is a pure existence check.
				if _, err := m.ReadFile(p); err != nil {
					return fmt.Errorf("required path %s not staged: %w", p, err)
				}
			}
			return nil
		},
	}
}

// Scenario is one declared workload bundle: metadata, preconditions, a
// fixture to boot from, the mutation/port manifest the harness holds
// the run to, a body that drives sessions, and optional load-probe
// derivations for the serving load generator.
type Scenario struct {
	// Name identifies the scenario, conventionally "area/name"
	// ("build/pipeline"). Registration panics on duplicates.
	Name string
	// Desc is the one-line human description shill-scenarios lists.
	Desc string
	// Attrs tag the scenario for attr-expression selection; every entry
	// must be in KnownAttrs.
	Attrs []string
	// Timeout bounds one leg (0: DefaultTimeout). On expiry the session
	// context is cancelled; the PR 3 cancellation contract kills the
	// run's process tree leak-free and the leg reports a timeout
	// failure.
	Timeout time.Duration
	// Fixture names the registered fixture image the legs boot from
	// ("" boots a bare machine). Fixtures are built once and
	// snapshotted; every leg restores a private machine from the golden
	// image, so scenarios sharing a fixture can never observe each
	// other's writes.
	Fixture string
	// Pre are checked on the booted machine before the body runs; an
	// unmet precondition reports the leg skipped.
	Pre []Precondition
	// WriteRoots are the filesystem subtrees the body may mutate — the
	// scenario's no-escape manifest. A leg that touches paths outside
	// them (consoles under /dev excepted) fails, and under the oracle
	// that is a no-escape violation.
	WriteRoots []string
	// Ports lists the ports the body may bind while running. Any
	// listener still bound after the body returns is a leak regardless
	// of port.
	Ports []int
	// Body drives the scenario through the Env: sequential Step calls,
	// background servers via Spawn, listener waits. It must behave
	// identically under both modes — per-step outcomes are recorded and
	// compared, so mode-dependent results belong in step statuses (and
	// Expect), not in control flow.
	Body func(ctx context.Context, e *Env) error
	// Probes derive serving-load request shapes from this scenario for
	// internal/server/loadgen's registry-sourced mix.
	Probes []Probe
}

// attrSet returns the scenario's attributes as a lookup set.
func (sc *Scenario) attrSet() map[string]bool {
	set := make(map[string]bool, len(sc.Attrs))
	for _, a := range sc.Attrs {
		set[a] = true
	}
	return set
}

func (sc *Scenario) timeout() time.Duration {
	if sc.Timeout > 0 {
		return sc.Timeout
	}
	return DefaultTimeout
}

var registry struct {
	sync.Mutex
	scenarios map[string]*Scenario
}

// Register adds a scenario to the registry. It panics on a duplicate
// name, an empty name or body, or an attribute outside KnownAttrs —
// registration happens in package init, where a bad declaration should
// stop the program, not surface as a skipped test.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("scenario: Register: empty name")
	}
	if sc.Body == nil {
		panic("scenario: Register: " + sc.Name + " has no body")
	}
	for _, a := range sc.Attrs {
		if !KnownAttrs[a] {
			panic(fmt.Sprintf("scenario: Register: %s declares unknown attr %q", sc.Name, a))
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if registry.scenarios == nil {
		registry.scenarios = make(map[string]*Scenario)
	}
	if _, dup := registry.scenarios[sc.Name]; dup {
		panic("scenario: Register: duplicate scenario " + sc.Name)
	}
	cp := sc
	for i := range cp.Probes {
		cp.Probes[i].Scenario = cp.Name
	}
	registry.scenarios[sc.Name] = &cp
}

// All returns every registered scenario, sorted by name.
func All() []*Scenario {
	registry.Lock()
	defer registry.Unlock()
	out := make([]*Scenario, 0, len(registry.scenarios))
	for _, sc := range registry.scenarios {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named scenario, or nil.
func Lookup(name string) *Scenario {
	registry.Lock()
	defer registry.Unlock()
	return registry.scenarios[name]
}

// Select returns the scenarios matching an attr expression ("" selects
// everything), sorted by name. An expression naming an unknown
// attribute is an error.
func Select(expr string) ([]*Scenario, error) {
	e, err := ParseAttr(expr)
	if err != nil {
		return nil, err
	}
	var out []*Scenario
	for _, sc := range All() {
		if e.Eval(sc.attrSet()) {
			out = append(out, sc)
		}
	}
	return out, nil
}
