package scenario

import (
	"context"
	"fmt"
	"time"
)

// okBoth asserts a step succeeds in both real legs.
var okBoth = map[Mode]string{ModeAmbient: "ok", ModeSandboxed: "ok"}

// deniedSandboxed asserts the adversarial pattern: full authority lets
// the step through, the capability sandbox makes it fail.
var deniedSandboxed = map[Mode]string{ModeAmbient: "ok", ModeSandboxed: "fail"}

// walletPreamble opens the root wallet every native-toolchain driver
// needs. PATH includes the server directory so httpd resolves.
const walletPreamble = `root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/local/sbin:/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());
`

// ===========================================================================
// files/findgrep — find/grep/archive chain over a source tree
// ===========================================================================

const scanCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide scan :
  {wallet : native_wallet,
   src    : readonly,
   out    : file(+write, +append)} -> is_num;

provide archive :
  {wallet : native_wallet,
   src    : readonly,
   dest   : dir(+stat, +path, +contents,
                +lookup with {+read, +write, +append, +stat, +path},
                +create_file with {+read, +write, +append, +stat, +path})} -> is_num;

scan = fun(wallet, src, out) {
  fnd = pkg_native("find", wallet);
  fnd([src, "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
      stdout = out,
      extras = wallet_get(wallet, "PATH")
            ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

archive = fun(wallet, src, dest) {
  tr = pkg_native("tar", wallet);
  target = create_file(dest, "src.tar");
  tr(["-cf", target, src],
     extras = wallet_get(wallet, "PATH")
           ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};
`

const scanDriver = `#lang shill/ambient
require shill/native;
require "scan.cap";

` + walletPreamble + `
src = open_dir("/home/user/work/src");
outdir = open_dir("/home/user/work/out");
out = create_file(outdir, "matches.txt");
scan(wallet, src, out);
`

const archiveDriver = `#lang shill/ambient
require shill/native;
require "scan.cap";

` + walletPreamble + `
src = open_dir("/home/user/work/src");
outdir = open_dir("/home/user/work/out");
archive(wallet, src, outdir);
`

// ===========================================================================
// logs/rotate — rotate a service log, then digest the rotated copy
// ===========================================================================

const logrotateCap = `#lang shill/cap
require shill/contracts;

provide rotate :
  {logs : dir(+stat, +path, +contents, +unlink_file, +add_link,
              +lookup with {+read, +stat, +path},
              +create_file with {+read, +write, +append, +stat, +path})} -> void;

provide digest :
  {logs : dir(+stat, +path, +contents,
              +lookup with {+read, +stat, +path}),
   out  : file(+write, +append)} -> void;

rotate = fun(logs) {
  rename(logs, "app.log", logs, "app.log.1");
  create_file(logs, "app.log");
};

count_tagged = fun(lines, tag, idx, acc) {
  if idx == length(lines) then {
    acc;
  } else {
    if contains(nth(lines, idx), tag) then {
      count_tagged(lines, tag, idx + 1, acc + 1);
    } else {
      count_tagged(lines, tag, idx + 1, acc);
    }
  }
};

digest = fun(logs, out) {
  old = lookup(logs, "app.log.1");
  lines = split(read(old), "\n");
  errors = count_tagged(lines, "ERROR", 0, 0);
  infos = count_tagged(lines, "INFO", 0, 0);
  write(out, "errors=" + to_string(errors) + " infos=" + to_string(infos) + "\n");
};
`

const rotateDriver = `#lang shill/ambient
require "logrotate.cap";

logs = open_dir("/home/user/work/logs");
rotate(logs);
`

const digestDriver = `#lang shill/ambient
require "logrotate.cap";

logs = open_dir("/home/user/work/logs");
outdir = open_dir("/home/user/work/out");
out = create_file(outdir, "errors.txt");
digest(logs, out);
`

// ===========================================================================
// build/pipeline — configure/compile/install with scoped write caps
// ===========================================================================

const buildpipeCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide configure_tree :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read,
                +lookup with full_privileges,
                +create_file with full_privileges),
   prefix : is_string} -> is_num;

provide compile_tree :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read, +chdir,
                +lookup with full_privileges,
                +create_file with full_privileges)} -> is_num;

provide install_tree :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read, +chdir,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   prefix : dir(+stat, +path,
                +lookup with {+lookup, +stat, +path,
                              +create_file with {+write, +append, +chmod, +stat, +path},
                              +create_dir with full_privileges},
                +create_dir with {+lookup, +stat, +path,
                                  +create_file with {+write, +append, +chmod, +stat, +path},
                                  +create_dir with full_privileges},
                +create_file with {+write, +append, +chmod, +stat, +path})} -> is_num;

configure_tree = fun(wallet, build, prefix) {
  shexe = pkg_native("sh", wallet);
  shexe(["-c", "./configure --prefix=" + prefix],
        workdir = build,
        extras = [build] ++ wallet_get(wallet, "PATH")
                         ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

compile_tree = fun(wallet, build) {
  mk = pkg_native("gmake", wallet);
  mk(["-C", build],
     extras = [build] ++ wallet_get(wallet, "PATH")
                      ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

install_tree = fun(wallet, build, prefix) {
  mk = pkg_native("gmake", wallet);
  mk(["-C", build, "install"],
     extras = [build, prefix] ++ wallet_get(wallet, "PATH")
                              ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};
`

const configureDriver = `#lang shill/ambient
require shill/native;
require "buildpipe.cap";

` + walletPreamble + `
build = open_dir("/home/user/proj");
configure_tree(wallet, build, "/home/user/.local");
`

const compileDriver = `#lang shill/ambient
require shill/native;
require "buildpipe.cap";

` + walletPreamble + `
build = open_dir("/home/user/proj");
compile_tree(wallet, build);
`

const installDriver = `#lang shill/ambient
require shill/native;
require "buildpipe.cap";

` + walletPreamble + `
build = open_dir("/home/user/proj");
prefix = open_dir("/home/user/.local");
install_tree(wallet, build, prefix);
`

// ===========================================================================
// batch/fanout — cron-style queue fan-out into an output directory
// ===========================================================================

const batchCap = `#lang shill/cap
require shill/contracts;

provide process :
  {queue : dir(+stat, +path, +contents,
               +lookup with {+read, +stat, +path}),
   out   : dir(+stat, +path, +contents,
               +lookup with {+read, +write, +append, +stat, +path},
               +create_file with {+read, +write, +append, +stat, +path}),
   jobs  : is_list} -> void;

process = fun(queue, out, jobs) {
  for j in jobs {
    src = lookup(queue, j);
    done = create_file(out, j + ".done");
    write(done, "done:" + read(src) + "\n");
  }
};
`

const fanoutDriver = `#lang shill/ambient
require "batch.cap";

queue = open_dir("/home/user/work/queue");
outdir = open_dir("/home/user/work/out");
process(queue, outdir, ["job1", "job2", "job3"]);
`

const collectDriver = `#lang shill/ambient

outdir = open_dir("/home/user/work/out");
append(stdout, read(lookup(outdir, "job1.done")));
append(stdout, read(lookup(outdir, "job2.done")));
append(stdout, read(lookup(outdir, "job3.done")));
`

// ===========================================================================
// web/cgi — a confined web tier over the netstack
// ===========================================================================

const webtierCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide serve :
  {wallet : native_wallet,
   conf   : file(+read, +path, +stat),
   docs   : dir(+contents, +stat, +path,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   logs   : dir(+contents, +stat, +path,
                +lookup with {+write, +append, +stat, +path},
                +create_file with {+write, +append, +stat, +path}),
   net    : socket_factory} -> is_num;

provide probe_write :
  {docs : dir(+contents, +stat, +path,
              +lookup with {+read, +stat, +path})} -> void;

provide probe_tamper :
  {page : file(+read, +stat)} -> void;

serve = fun(wallet, conf, docs, logs, net) {
  httpd = pkg_native("httpd", wallet);
  httpd(["-f", conf],
        extras = [docs, logs],
        socket_factories = [net]);
};

probe_write = fun(docs) {
  r = create_file(docs, "pwned.txt");
  if is_syserror(r) then {
    error("escape blocked: " + to_string(r));
  } else {
    write(r, "tenant escape\n");
  }
};

probe_tamper = fun(page) {
  r = write(page, "<html>defaced</html>");
  if is_syserror(r) then {
    error("tamper blocked: " + to_string(r));
  }
};
`

func webServeDriver(conf string) string {
	return `#lang shill/ambient
require shill/native;
require "webtier.cap";

` + walletPreamble + `
conf = open_file("` + conf + `");
docs = open_dir("/home/user/web/www");
logs = open_dir("/home/user/web/logs");
net = socket_factory("ip");
serve(wallet, conf, docs, logs, net);
`
}

const probeWriteDriver = `#lang shill/ambient
require "webtier.cap";

docs = open_dir("/home/user/web/www");
probe_write(docs);
`

const probeTamperDriver = `#lang shill/ambient
require "webtier.cap";

page = open_file("/home/user/web/www/index.html");
probe_tamper(page);
`

func curlStep(name, url string, expect map[Mode]string) StepSpec {
	return StepSpec{
		Name:           name,
		Argv:           []string{"curl", "-s", url},
		CompareConsole: true,
		Expect:         expect,
	}
}

// runWebTier spawns the confined server, drives the given foreground
// steps against it, and shuts it down. Shared by web/cgi and
// adversarial/multitenant.
func runWebTier(ctx context.Context, e *Env, conf, port string, foreground func() error) error {
	h := e.Spawn(ctx, StepSpec{
		Name:   "serve",
		Driver: webServeDriver(conf),
		Module: "webtier.cap",
		Cap:    webtierCap,
		Expect: okBoth,
	})
	if err := e.WaitListener(port, 5*time.Second); err != nil {
		e.ShutdownHTTP(port)
		e.Wait(h)
		return fmt.Errorf("web tier never bound port %s: %w", port, err)
	}
	ferr := foreground()
	e.ShutdownHTTP(port)
	e.Wait(h)
	return ferr
}

func init() {
	Register(Scenario{
		Name:       "files/findgrep",
		Desc:       "find/grep a source tree into a report, then archive the tree with scoped write caps",
		Attrs:      []string{"files", "sandbox"},
		Fixture:    "workspace",
		Pre:        []Precondition{RequireBinaries("find", "grep", "tar", "cat"), RequirePaths("/home/user/work/src/main.c")},
		WriteRoots: []string{"/home/user/work/out"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "scan", Driver: scanDriver, Module: "scan.cap", Cap: scanCap, Expect: okBoth})
			e.Step(ctx, StepSpec{Name: "archive", Driver: archiveDriver, Module: "scan.cap", Cap: scanCap, Expect: okBoth})
			e.Step(ctx, StepSpec{
				Name: "check", Argv: []string{"grep", "-c", "mac_", "/home/user/work/out/matches.txt"},
				CompareConsole: true, Expect: okBoth,
			})
			return nil
		},
	})

	Register(Scenario{
		Name:       "logs/rotate",
		Desc:       "rotate a service log and digest the rotated copy into a report",
		Attrs:      []string{"logs", "sandbox"},
		Fixture:    "workspace",
		Pre:        []Precondition{RequirePaths("/home/user/work/logs/app.log")},
		WriteRoots: []string{"/home/user/work/logs", "/home/user/work/out"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "rotate", Driver: rotateDriver, Module: "logrotate.cap", Cap: logrotateCap, Expect: okBoth})
			e.Step(ctx, StepSpec{Name: "digest", Driver: digestDriver, Module: "logrotate.cap", Cap: logrotateCap, Expect: okBoth})
			e.Step(ctx, StepSpec{
				Name: "verify", Argv: []string{"cat", "/home/user/work/out/errors.txt"},
				CompareConsole: true, Expect: okBoth,
			})
			return nil
		},
	})

	Register(Scenario{
		Name:    "build/pipeline",
		Desc:    "configure, compile, and install a source tree under per-phase write capabilities",
		Attrs:   []string{"build", "sandbox", "slow"},
		Fixture: "buildtree",
		Timeout: 30 * time.Second,
		Pre: []Precondition{
			RequireBinaries("sh", "gmake", "cc", "install"),
			RequirePaths("/home/user/proj/configure"),
		},
		WriteRoots: []string{"/home/user/proj", "/home/user/.local"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "configure", Driver: configureDriver, Module: "buildpipe.cap", Cap: buildpipeCap, Expect: okBoth})
			e.Step(ctx, StepSpec{Name: "compile", Driver: compileDriver, Module: "buildpipe.cap", Cap: buildpipeCap, Expect: okBoth})
			e.Step(ctx, StepSpec{Name: "install", Driver: installDriver, Module: "buildpipe.cap", Cap: buildpipeCap, Expect: okBoth})
			e.Step(ctx, StepSpec{
				Name: "verify", Argv: []string{"cat", "/home/user/.local/share/emacs/DOC"},
				CompareConsole: true, Expect: okBoth,
			})
			return nil
		},
	})

	Register(Scenario{
		Name:       "batch/fanout",
		Desc:       "cron-style fan-out: process every queued job into the output directory",
		Attrs:      []string{"batch", "sandbox"},
		Fixture:    "workspace",
		Pre:        []Precondition{RequirePaths("/home/user/work/queue/job1")},
		WriteRoots: []string{"/home/user/work/out"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "fanout", Driver: fanoutDriver, Module: "batch.cap", Cap: batchCap, Expect: okBoth})
			e.Step(ctx, StepSpec{Name: "collect", Driver: collectDriver, CompareConsole: true, Expect: okBoth})
			return nil
		},
	})

	Register(Scenario{
		Name:       "web/cgi",
		Desc:       "confined web tier over the netstack: serve a docroot, append an access log",
		Attrs:      []string{"web", "net", "sandbox"},
		Fixture:    "webtier",
		Pre:        []Precondition{RequireBinaries("httpd", "curl", "grep"), RequirePaths("/home/user/web/httpd.conf")},
		WriteRoots: []string{"/home/user/web/logs"},
		Ports:      []int{8090},
		Body: func(ctx context.Context, e *Env) error {
			err := runWebTier(ctx, e, "/home/user/web/httpd.conf", "8090", func() error {
				e.Step(ctx, curlStep("fetch-index", "http://localhost:8090/index.html", okBoth))
				e.Step(ctx, curlStep("fetch-data", "http://localhost:8090/data.txt", okBoth))
				e.Step(ctx, curlStep("fetch-missing", "http://localhost:8090/missing.txt",
					map[Mode]string{ModeAmbient: "exit:22", ModeSandboxed: "exit:22"}))
				return nil
			})
			if err != nil {
				return err
			}
			e.Step(ctx, StepSpec{
				Name: "check-log", Argv: []string{"grep", "-c", "GET", "/home/user/web/logs/access.log"},
				CompareConsole: true, Expect: okBoth,
			})
			return nil
		},
	})

	Register(Scenario{
		Name:    "adversarial/multitenant",
		Desc:    "one tenant probes escapes while the web tier keeps serving traffic",
		Attrs:   []string{"adversarial", "web", "net", "sandbox"},
		Fixture: "webtier",
		Pre:     []Precondition{RequireBinaries("httpd", "curl"), RequirePaths("/home/user/web/httpd-alt.conf")},
		// The probes' targets are inside the roots on purpose: the ambient
		// leg (full authority) succeeds, and its writes must still land
		// within the scenario's declared mutation footprint.
		WriteRoots: []string{"/home/user/web/www", "/home/user/web/logs"},
		Ports:      []int{8091},
		Body: func(ctx context.Context, e *Env) error {
			return runWebTier(ctx, e, "/home/user/web/httpd-alt.conf", "8091", func() error {
				e.Step(ctx, curlStep("serve-check", "http://localhost:8091/index.html", okBoth))
				e.Step(ctx, StepSpec{
					Name: "probe-write", Driver: probeWriteDriver, Module: "webtier.cap", Cap: webtierCap,
					Expect: deniedSandboxed,
				})
				e.Step(ctx, StepSpec{
					Name: "probe-tamper", Driver: probeTamperDriver, Module: "webtier.cap", Cap: webtierCap,
					Expect: deniedSandboxed,
				})
				return nil
			})
		},
	})
}
