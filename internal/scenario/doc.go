// Package scenario is the registry of declared, realistic multi-step
// workload bundles and the harness that runs every one of them three
// ways.
//
// A Scenario declares metadata (name, attributes, timeout),
// preconditions (required binaries and staged paths), the fixture image
// it boots from, a mutation manifest (WriteRoots, Ports), and a Body
// that drives a shill machine through steps — SHILL driver scripts with
// capability modules, native commands, background servers. Fixtures are
// staged once on a scratch machine and captured with the snapshot
// machinery; every leg of every scenario restores a private machine
// from the golden image, so N scenarios share one setup cost and none
// can observe another's writes.
//
// The harness runs each selected scenario:
//
//   - ambient: capability modules run with their contracts stripped
//     (bare provides — full ambient authority),
//   - sandboxed: modules run as written,
//   - oracle: the differential judgment over the two legs' recorded
//     steps — no-escape (no writes outside WriteRoots, no leaked
//     listeners), DAC-conjunction (nothing succeeds sandboxed that
//     failed ambient), and deny-provenance (the first sandbox-only
//     failure must carry a MAC/policy/capability denial).
//
// Scenarios are selected by attribute expression ("sandbox && !slow");
// failures are clustered by root cause (failure kind + first-divergent
// step + deny-provenance key) so one broken contract reads as one
// cluster, not twenty scattered failures. Scenarios also contribute
// Probes — request templates the serving load generator
// (internal/server/loadgen) and the soak driver sample instead of
// hardcoded script constants.
//
// The cmd/shill-scenarios runner lists, selects, runs, and reports
// (including the SCENARIOS.json document CI uploads).
package scenario
