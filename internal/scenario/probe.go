package scenario

// ProbeKind classifies what a load-generator probe exercises — the
// three outcome classes the serve benchmarks have always mixed.
type ProbeKind string

// Probe kinds. Allow probes must succeed, deny probes must fail with
// capability-layer provenance, cancel probes must be interrupted by
// their deadline.
const (
	KindAllow  ProbeKind = "allow"
	KindDeny   ProbeKind = "deny"
	KindCancel ProbeKind = "cancel"
)

// ProbeRequest is one concrete request a probe renders: a script body
// (or the name of a built-in script) plus the shape of a correct
// response.
type ProbeRequest struct {
	// Script is an inline source; ScriptName names a built-in script
	// instead. Exactly one is set.
	Script     string
	ScriptName string
	// Argv runs a native command instead of a script.
	Argv []string
	// WantConsole, when non-empty, is the exact console output of a
	// correct run.
	WantConsole string
}

// Probe is a scenario-contributed load-generator request template. The
// registry replaces the generators' hardcoded script constants:
// shill-load and shill-soak sample probes from registered scenarios, so
// serving benchmarks exercise the same bodies the scenario harness
// verifies three-way.
type Probe struct {
	// Scenario is stamped by Register with the owning scenario's name.
	Scenario string
	// Name distinguishes multiple probes within one scenario.
	Name string
	Kind ProbeKind
	// DeadlineMs, when nonzero, bounds the request server-side — how
	// cancel probes guarantee interruption.
	DeadlineMs int
	// Request renders the i-th request. Implementations must be
	// deterministic in i so runs are reproducible.
	Request func(i int64) ProbeRequest
}

// Probes returns every probe whose owning scenario matches the attr
// expression, sorted by scenario then probe name. It panics on a bad
// expression — callers pass literals.
func Probes(attr string) []Probe {
	scs, err := Select(attr)
	if err != nil {
		panic("scenario: Probes: " + err.Error())
	}
	var out []Probe
	for _, sc := range scs {
		out = append(out, sc.Probes...)
	}
	return out
}

// ProbesByKind partitions probes for generators that weight the three
// outcome classes separately.
func ProbesByKind(probes []Probe) map[ProbeKind][]Probe {
	out := make(map[ProbeKind][]Probe)
	for _, p := range probes {
		out[p.Kind] = append(out[p.Kind], p)
	}
	return out
}
