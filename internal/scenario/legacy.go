package scenario

import (
	"context"
	"fmt"
	"time"
)

// The legacy scenario set: the exact request bodies the serving load
// generator hardcoded before the registry existed. They are registered
// (not deleted) so `benchfig -fig serve` keeps measuring the same
// workload — loadgen's default mix now samples these probes from the
// registry instead of private constants.

// LegacyAllowScript is the minimal allowed run: print "ok" and exit 0.
const LegacyAllowScript = "#lang shill/ambient\n\nappend(stdout, \"ok\\n\");\n"

// LegacyCancelScript renders the blocking run the cancel kind relies
// on: it binds a listener and blocks in accept until the server-side
// deadline kills it. Each request gets its own port so concurrent
// cancels on one machine don't collide.
func LegacyCancelScript(port int) string {
	return fmt.Sprintf(`#lang shill/ambient
require shill/sockets;

append(stdout, "blocking\n");
f = socket_factory("ip");
l = socket_listen(f, "%d");
c = socket_accept(l);
`, port)
}

// legacyTamperCap is the deny body as a capability module: the contract
// attenuates the file to read-only, and the unguarded-then-fatal write
// makes the denial the run's outcome (unlike the built-in
// why_denied.cap, whose guarded write only reports).
const legacyTamperCap = `#lang shill/cap

provide poke : {f : file(+read, +stat)} -> void;

poke = fun(f) {
  r = write(f, "tampered");
  if is_syserror(r) then {
    error("poke: " + to_string(r));
  }
};
`

const legacyTamperDriver = `#lang shill/ambient
require "tamper.cap";

doc = open_file("/home/user/Documents/dog.jpg");
poke(doc);
`

func init() {
	Register(Scenario{
		Name:  "legacy/allow",
		Desc:  "the load generator's allowed run: print ok, exit 0",
		Attrs: []string{"legacy"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{Name: "allow", Driver: LegacyAllowScript, CompareConsole: true, Expect: okBoth})
			return nil
		},
		Probes: []Probe{{
			Name: "allow",
			Kind: KindAllow,
			Request: func(int64) ProbeRequest {
				return ProbeRequest{Script: LegacyAllowScript, WantConsole: "ok\n"}
			},
		}},
	})

	Register(Scenario{
		Name:       "legacy/deny",
		Desc:       "the load generator's denied run: a read-only contract rejects a write",
		Attrs:      []string{"legacy", "sandbox"},
		Fixture:    "demo",
		Pre:        []Precondition{RequirePaths("/home/user/Documents/dog.jpg")},
		WriteRoots: []string{"/home/user/Documents"},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{
				Name: "deny", Driver: legacyTamperDriver, Module: "tamper.cap", Cap: legacyTamperCap,
				Expect: deniedSandboxed,
			})
			return nil
		},
		Probes: []Probe{{
			Name: "deny",
			Kind: KindDeny,
			Request: func(int64) ProbeRequest {
				// The built-in script every shilld tenant machine resolves;
				// its contract denies the write regardless of leg.
				return ProbeRequest{ScriptName: "why_denied.ambient"}
			},
		}},
	})

	Register(Scenario{
		Name:  "legacy/cancel",
		Desc:  "the load generator's cancelled run: block in accept until the deadline kills it",
		Attrs: []string{"legacy", "net"},
		Ports: []int{28090},
		Body: func(ctx context.Context, e *Env) error {
			e.Step(ctx, StepSpec{
				Name:     "block",
				Driver:   LegacyCancelScript(28090),
				Deadline: 150 * time.Millisecond,
				Expect:   map[Mode]string{ModeAmbient: "canceled", ModeSandboxed: "canceled"},
			})
			return nil
		},
		Probes: []Probe{{
			Name:       "cancel",
			Kind:       KindCancel,
			DeadlineMs: 80,
			Request: func(i int64) ProbeRequest {
				// Ports spread over [20000, 52000) so concurrent cancels on
				// one machine don't collide.
				return ProbeRequest{Script: LegacyCancelScript(20000 + int(i%32000))}
			},
		}},
	})
}
