// Package image defines immutable, content-addressed machine snapshots
// for the SHILL reproduction's serving stack.
//
// An Image is a bottom-to-top stack of copy-on-write filesystem layers
// (internal/vfs.Layer) plus the machine metadata needed to boot a
// session-ready machine from it: configuration, the script store, bound
// listener addresses, the audit sequence number, and workload staging
// state. Its identity is a sha256 over the canonical serialization, so
// identical machine states produce identical image IDs and a
// snapshot→restore→snapshot round trip is byte-reproducible.
//
// The design follows container-image layering rather than full memory
// checkpointing:
//
//   - Capturing a machine built from an image appends one layer holding
//     only its divergence (modified files, whiteouts for deletions),
//     sharing every parent layer by reference.
//   - Restoring boots a filesystem whose vnodes materialize lazily from
//     the flattened layer view; file data aliases layer bytes until
//     first write. Many machines share one flattened base, which is
//     computed once per image and cached (the machine layer reports
//     reuse as image-cache hits).
//   - Live kernel state that cannot be serialized — processes, open
//     descriptors, sockets, character devices — is deliberately outside
//     the image. Machines are quiesced before capture, devices are
//     rewired at restore, and recorded services (the origin server) are
//     restarted from their on-image binaries.
//
// The public entry points are shill.(*Machine).Snapshot,
// shill.RestoreMachine, and shill.WithBaseImage; internal/server uses
// them to snapshot evicted tenants and re-admit them warm.
package image
