package image

import (
	"bytes"
	"testing"

	"repro/internal/vfs"
)

func baseLayer(t *testing.T) *vfs.Layer {
	t.Helper()
	fs := vfs.New()
	if _, err := fs.WriteFile("/etc/passwd", []byte("root:0\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("/home/user/f.txt", []byte("hello"), 0o644, 1001, 1001); err != nil {
		t.Fatal(err)
	}
	return fs.CaptureLayer()
}

func TestSerializeRoundTrip(t *testing.T) {
	img := New([]*vfs.Layer{baseLayer(t)}, Meta{
		Config:    Config{InstallModule: true, Workload: "grading"},
		Scripts:   map[string]string{"grade": "script grade() {}"},
		Listeners: []string{"80"},
		AuditSeq:  42,
		Staging:   []byte(`{"course":"x"}`),
	})
	data := img.Serialize()
	back, err := Deserialize(data)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	if back.ID() != img.ID() {
		t.Fatalf("round trip changed ID: %s vs %s", back.ID(), img.ID())
	}
	if !bytes.Equal(back.Serialize(), data) {
		t.Fatal("round trip not byte-identical")
	}
	m := back.Meta()
	if m.Config.Workload != "grading" || m.AuditSeq != 42 || m.Scripts["grade"] == "" {
		t.Fatalf("metadata lost: %+v", m)
	}
	flat, _ := back.Flatten()
	if e := flat.Entry("/home/user/f.txt"); e == nil || string(e.Data) != "hello" {
		t.Fatalf("flattened content lost: %+v", e)
	}
}

func TestContentAddressing(t *testing.T) {
	l := baseLayer(t)
	a := New([]*vfs.Layer{l}, Meta{Config: Config{InstallModule: true}})
	b := New([]*vfs.Layer{l}, Meta{Config: Config{InstallModule: true}})
	if a.ID() != b.ID() {
		t.Fatal("identical images got different IDs")
	}
	c := New([]*vfs.Layer{l}, Meta{Config: Config{InstallModule: false}})
	if c.ID() == a.ID() {
		t.Fatal("differing config got same ID")
	}
}

func TestFlattenCached(t *testing.T) {
	img := New([]*vfs.Layer{baseLayer(t)}, Meta{})
	if _, hit := img.Flatten(); hit {
		t.Fatal("first flatten reported a cache hit")
	}
	f1, hit := img.Flatten()
	if !hit {
		t.Fatal("second flatten missed the cache")
	}
	f2, _ := img.Flatten()
	if f1 != f2 {
		t.Fatal("flatten returned different views")
	}
}

func TestLayerStacking(t *testing.T) {
	base := baseLayer(t)
	derived := vfs.NewFromLayer(base)
	if _, err := derived.WriteFile("/home/user/f.txt", []byte("changed"), 0o644, 1001, 1001); err != nil {
		t.Fatal(err)
	}
	etc, err := derived.Resolve("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if err := derived.Unlink(etc, "passwd", false); err != nil {
		t.Fatal(err)
	}
	img := New([]*vfs.Layer{base, derived.CaptureLayer()}, Meta{})
	flat, _ := img.Flatten()
	if e := flat.Entry("/home/user/f.txt"); e == nil || string(e.Data) != "changed" {
		t.Fatalf("top layer did not win: %+v", e)
	}
	if e := flat.Entry("/etc/passwd"); e != nil {
		t.Fatal("whiteout did not delete lower entry")
	}
}
