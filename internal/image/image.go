package image

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

// Config is the machine configuration baked into an image. A restored
// machine boots with these settings unless the caller overrides the
// runtime-only ones (engine, tracing, resolver) at restore time.
type Config struct {
	InstallModule  bool   `json:"installModule"`
	ConsoleLimit   int    `json:"consoleLimit,omitempty"`
	SpawnLatencyNs int64  `json:"spawnLatencyNs,omitempty"`
	AuditDisabled  bool   `json:"auditDisabled,omitempty"`
	Workload       string `json:"workload,omitempty"`
	Origin         bool   `json:"origin,omitempty"`
}

// Meta is everything an image carries beyond filesystem layers.
type Meta struct {
	Config Config
	// Scripts is the machine's script store at capture.
	Scripts map[string]string
	// Listeners are the network addresses bound at capture ("80",
	// "10.0.0.1!80", ...). Live sockets cannot be serialized; the
	// restoring machine restarts the services that own them (today:
	// the origin server, via Config.Origin).
	Listeners []string
	// AuditSeq is the audit sequence number at capture; the restored
	// log continues from it so per-machine audit ordering survives.
	AuditSeq uint64
	// Staging is the opaque workload-staging state blob produced by
	// core.(*System).StagingState.
	Staging []byte
}

// Image is an immutable, content-addressed machine snapshot: a stack of
// filesystem layers (bottom to top) plus machine metadata. Images built
// on a common parent share those parent layers, and the flattened view
// used to boot machines is computed once and shared by every restore.
type Image struct {
	id     string
	idOnce sync.Once
	layers []*vfs.Layer
	meta   Meta

	flatOnce  sync.Once
	flat      *vfs.Layer
	flattened atomic.Bool
}

// New assembles an image from a bottom-to-top layer stack and metadata.
// The layers and meta must not be mutated afterwards.
func New(layers []*vfs.Layer, meta Meta) *Image {
	return &Image{layers: layers, meta: meta}
}

// ID returns the image's content address: a hex sha256 over the
// canonical serialization, so two images with identical layers and
// metadata have identical IDs.
func (im *Image) ID() string {
	im.idOnce.Do(func() {
		sum := sha256.Sum256(im.Serialize())
		im.id = hex.EncodeToString(sum[:])
	})
	return im.id
}

// Layers returns the layer stack, bottom to top. Callers must treat it
// as read-only.
func (im *Image) Layers() []*vfs.Layer { return im.layers }

// Meta returns the image metadata. Callers must treat it as read-only.
func (im *Image) Meta() Meta { return im.meta }

// Flatten returns the merged single-layer view of the stack, computing
// it on first use and caching it for every later restore. The second
// return reports whether the cached view was already available — the
// machine layer surfaces it as an image-cache hit.
func (im *Image) Flatten() (*vfs.Layer, bool) {
	hit := im.flattened.Load()
	im.flatOnce.Do(func() {
		im.flat = vfs.FlattenLayers(im.layers)
		im.flattened.Store(true)
	})
	return im.flat, hit
}

// serialization ------------------------------------------------------

const serialFormat = 1

type serialEntry struct {
	Path     string `json:"path"`
	Type     int    `json:"type"`
	Mode     uint16 `json:"mode"`
	UID      int    `json:"uid"`
	GID      int    `json:"gid"`
	Data     []byte `json:"data,omitempty"`
	Whiteout bool   `json:"whiteout,omitempty"`
	Opaque   bool   `json:"opaque,omitempty"`
}

type serialScript struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type serialImage struct {
	Format    int             `json:"format"`
	Layers    [][]serialEntry `json:"layers"`
	Config    Config          `json:"config"`
	Scripts   []serialScript  `json:"scripts,omitempty"`
	Listeners []string        `json:"listeners,omitempty"`
	AuditSeq  uint64          `json:"auditSeq,omitempty"`
	Staging   []byte          `json:"staging,omitempty"`
}

// Serialize renders the image deterministically: entries sorted by
// path, scripts by name, listeners lexically. Byte-identical images are
// the contract the snapshot→restore→snapshot determinism test holds
// the system to.
func (im *Image) Serialize() []byte {
	s := serialImage{
		Format:   serialFormat,
		Config:   im.meta.Config,
		AuditSeq: im.meta.AuditSeq,
		Staging:  im.meta.Staging,
	}
	for _, l := range im.layers {
		entries := make([]serialEntry, 0, l.Len())
		for _, path := range l.Paths() {
			e := l.Entry(path)
			entries = append(entries, serialEntry{
				Path:     path,
				Type:     int(e.Type),
				Mode:     e.Mode,
				UID:      e.UID,
				GID:      e.GID,
				Data:     e.Data,
				Whiteout: e.Whiteout,
				Opaque:   e.Opaque,
			})
		}
		s.Layers = append(s.Layers, entries)
	}
	for name, src := range im.meta.Scripts {
		s.Scripts = append(s.Scripts, serialScript{Name: name, Source: src})
	}
	sort.Slice(s.Scripts, func(i, j int) bool { return s.Scripts[i].Name < s.Scripts[j].Name })
	s.Listeners = append(s.Listeners, im.meta.Listeners...)
	sort.Strings(s.Listeners)
	out, err := json.Marshal(s)
	if err != nil {
		panic("image: serialize: " + err.Error())
	}
	return out
}

// Deserialize rebuilds an image from Serialize's output.
func Deserialize(data []byte) (*Image, error) {
	var s serialImage
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("image: decode: %w", err)
	}
	if s.Format != serialFormat {
		return nil, fmt.Errorf("image: unsupported format %d", s.Format)
	}
	layers := make([]*vfs.Layer, 0, len(s.Layers))
	for _, entries := range s.Layers {
		lb := vfs.NewLayerBuilder()
		for _, e := range entries {
			lb.Add(e.Path, vfs.LayerEntry{
				Type:     vfs.VnodeType(e.Type),
				Mode:     e.Mode,
				UID:      e.UID,
				GID:      e.GID,
				Data:     e.Data,
				Whiteout: e.Whiteout,
				Opaque:   e.Opaque,
			})
		}
		layers = append(layers, lb.Build())
	}
	meta := Meta{
		Config:    s.Config,
		Listeners: s.Listeners,
		AuditSeq:  s.AuditSeq,
		Staging:   s.Staging,
	}
	if len(s.Scripts) > 0 {
		meta.Scripts = make(map[string]string, len(s.Scripts))
		for _, sc := range s.Scripts {
			meta.Scripts[sc.Name] = sc.Source
		}
	}
	return New(layers, meta), nil
}
