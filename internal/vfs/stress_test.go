package vfs

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentNamespaceOps hammers the namespace with concurrent
// creates, links, renames, and unlinks across goroutines. The invariant:
// no operation panics, and afterwards every surviving entry resolves and
// reports a positive link count.
func TestConcurrentNamespaceOps(t *testing.T) {
	fs := New()
	const workers = 8
	const opsPerWorker = 400

	dirs := make([]*Vnode, workers)
	for i := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("w%d", i), 0o755, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = d
	}
	shared, err := fs.Mkdir(fs.Root(), "shared", 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := dirs[w]
			for i := 0; i < opsPerWorker; i++ {
				name := fmt.Sprintf("f%d", i%20)
				switch i % 5 {
				case 0:
					if f, err := fs.Create(mine, name, 0o644, 0, 0); err == nil {
						f.SetBytes([]byte(name))
					}
				case 1:
					if f, err := fs.Lookup(mine, name); err == nil {
						fs.Link(shared, fmt.Sprintf("w%d-%s", w, name), f)
					}
				case 2:
					fs.Rename(mine, name, mine, name+"-r")
				case 3:
					fs.Unlink(mine, name+"-r", false)
				case 4:
					if f, err := fs.Lookup(mine, name); err == nil {
						f.ReadAt(make([]byte, 8), 0)
						f.Append([]byte("x"))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Post-conditions: the tree walks cleanly and every path resolves to
	// the vnode the walk visited.
	count := 0
	fs.Walk(fs.Root(), func(path string, v *Vnode) {
		count++
		if path == "/" {
			return
		}
		got, err := fs.Resolve(path)
		if err != nil || got != v {
			t.Errorf("path %s does not round-trip: %v", path, err)
		}
		if st := v.Stat(); st.Nlink <= 0 {
			t.Errorf("%s has nlink %d", path, st.Nlink)
		}
	})
	if count < workers { // at minimum the worker dirs survive
		t.Fatalf("tree too small after stress: %d nodes", count)
	}
}

// TestConcurrentPipeTraffic runs several writer/reader pairs over one
// pipe and checks byte conservation.
func TestConcurrentPipeTraffic(t *testing.T) {
	p := NewPipe()
	const writers = 4
	const chunk = 1024
	const perWriter = 64

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, chunk)
			for i := 0; i < perWriter; i++ {
				if _, err := p.Write(buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan int, 1)
	go func() {
		total := 0
		buf := make([]byte, 4096)
		for {
			n, err := p.Read(buf)
			if err != nil || n == 0 {
				done <- total
				return
			}
			total += n
		}
	}()
	wg.Wait()
	p.CloseWrite()
	if total := <-done; total != writers*chunk*perWriter {
		t.Fatalf("read %d bytes, want %d", total, writers*chunk*perWriter)
	}
}
