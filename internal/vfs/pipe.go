package vfs

import (
	"io"
	"sync"

	"repro/internal/errno"
	"repro/internal/mac"
)

// pipeBufCap mirrors the 64 KiB capacity of a FreeBSD pipe buffer.
const pipeBufCap = 64 * 1024

// Pipe is an anonymous pipe shared by a read end and a write end. SHILL
// treats pipe ends as file capabilities (§2.2 "Following Unix convention,
// file capabilities include capabilities for files, pipes, and devices").
type Pipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	readers int
	writers int
	label   mac.Label
}

// NewPipe returns a pipe with one reader and one writer reference.
func NewPipe() *Pipe {
	p := &Pipe{readers: 1, writers: 1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// MACLabel returns the pipe's MAC label.
func (p *Pipe) MACLabel() *mac.Label { return &p.label }

// Read blocks until data is available or every writer has closed. It
// returns 0, nil at EOF.
func (p *Pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.writers == 0 {
			return 0, nil // EOF
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	p.cond.Broadcast()
	return n, nil
}

// Write appends to the pipe buffer, blocking while the buffer is full.
// Writing with no readers returns EPIPE.
func (p *Pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if p.readers == 0 {
			return total, errno.EPIPE
		}
		space := pipeBufCap - len(p.buf)
		for space <= 0 {
			p.cond.Wait()
			if p.readers == 0 {
				return total, errno.EPIPE
			}
			space = pipeBufCap - len(p.buf)
		}
		n := len(b)
		if n > space {
			n = space
		}
		p.buf = append(p.buf, b[:n]...)
		b = b[n:]
		total += n
		p.cond.Broadcast()
	}
	return total, nil
}

// CloseRead drops a reader reference.
func (p *Pipe) CloseRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readers > 0 {
		p.readers--
	}
	p.cond.Broadcast()
}

// CloseWrite drops a writer reference.
func (p *Pipe) CloseWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.writers > 0 {
		p.writers--
	}
	p.cond.Broadcast()
}

// AddReader adds a reader reference (fd duplication across fork).
func (p *Pipe) AddReader() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readers++
}

// AddWriter adds a writer reference.
func (p *Pipe) AddWriter() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writers++
}

// Buffered returns the number of bytes waiting in the pipe.
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// --- standard character devices ---

// NullDevice implements /dev/null: reads return EOF, writes are
// discarded.
type NullDevice struct{}

// DevRead returns EOF.
func (NullDevice) DevRead(p []byte) (int, error) { return 0, nil }

// DevWrite discards p.
func (NullDevice) DevWrite(p []byte) (int, error) { return len(p), nil }

// ZeroDevice implements /dev/zero.
type ZeroDevice struct{}

// DevRead fills p with zero bytes.
func (ZeroDevice) DevRead(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// DevWrite discards p.
func (ZeroDevice) DevWrite(p []byte) (int, error) { return len(p), nil }

// ConsoleDevice is a capture-backed pseudo-terminal: writes accumulate
// into an in-memory buffer that tests and the benchmark harness inspect,
// and reads drain a scripted input buffer. Because the MAC framework
// does not interpose on character-device I/O (§3.2.3), sandboxed
// processes can always write here if handed the device — the documented
// limitation, reproduced.
type ConsoleDevice struct {
	mu     sync.Mutex
	out    []byte
	in     []byte
	maxOut int
	tee    io.Writer
}

// NewConsoleDevice returns a console with an unbounded capture buffer.
func NewConsoleDevice() *ConsoleDevice { return &ConsoleDevice{} }

// SetLimit caps the capture buffer; older output is discarded first.
// Long-running benchmarks use it to bound memory.
func (c *ConsoleDevice) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxOut = n
}

// DevRead drains scripted input.
func (c *ConsoleDevice) DevRead(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.in) == 0 {
		return 0, nil
	}
	n := copy(p, c.in)
	c.in = c.in[n:]
	return n, nil
}

// DevWrite captures output and mirrors it to the tee writer, if set.
func (c *ConsoleDevice) DevWrite(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = append(c.out, p...)
	if c.maxOut > 0 && len(c.out) > c.maxOut {
		c.out = c.out[len(c.out)-c.maxOut:]
	}
	if c.tee != nil {
		c.tee.Write(p) // best-effort: a failing tee must not fail the device
	}
	return len(p), nil
}

// SetTee mirrors every subsequent write to w as it happens — the live
// streaming view of a session's console. The tee runs under the device
// lock, so w should be fast (a pipe, a buffer, os.Stdout); nil disables
// mirroring.
func (c *ConsoleDevice) SetTee(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tee = w
}

// FeedInput appends scripted input for subsequent reads.
func (c *ConsoleDevice) FeedInput(p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.in = append(c.in, p...)
}

// Output returns a copy of everything written so far.
func (c *ConsoleDevice) Output() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]byte, len(c.out))
	copy(out, c.out)
	return out
}

// ResetOutput clears the capture buffer.
func (c *ConsoleDevice) ResetOutput() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = nil
}
