package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/errno"
)

func newTestFS(t *testing.T) *FS {
	t.Helper()
	return New()
}

func TestRootProperties(t *testing.T) {
	fs := newTestFS(t)
	root := fs.Root()
	if !root.IsDir() {
		t.Fatal("root is not a directory")
	}
	if p, ok := fs.PathOf(root); !ok || p != "/" {
		t.Fatalf("PathOf(root) = %q, %v", p, ok)
	}
	if parent, err := fs.Lookup(root, ".."); err != nil || parent != root {
		t.Fatalf("root/.. = %v, %v; want root", parent, err)
	}
}

func TestCreateLookupReadWrite(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Create(fs.Root(), "hello.txt", 0o644, 1000, 1000)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got, err := fs.Lookup(fs.Root(), "hello.txt")
	if err != nil || got != f {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	buf := make([]byte, 16)
	n, err := f.ReadAt(buf, 0)
	if err != nil || string(buf[:n]) != "hello world" {
		t.Fatalf("ReadAt = %q, %v", buf[:n], err)
	}
	if n, _ := f.ReadAt(buf, 100); n != 0 {
		t.Fatalf("read past EOF returned %d bytes", n)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Create(fs.Root(), "x", 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(fs.Root(), "x", 0o644, 0, 0); !errors.Is(err, errno.EEXIST) {
		t.Fatalf("duplicate create err = %v, want EEXIST", err)
	}
}

func TestInvalidNames(t *testing.T) {
	fs := newTestFS(t)
	for _, name := range []string{"", "a/b", "a\x00b", ".", ".."} {
		if _, err := fs.Create(fs.Root(), name, 0o644, 0, 0); err == nil {
			t.Errorf("Create(%q) succeeded, want error", name)
		}
	}
	long := make([]byte, 256)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := fs.Create(fs.Root(), string(long), 0o644, 0, 0); err == nil {
		t.Error("Create(256-char name) succeeded, want error")
	}
}

func TestMkdirNesting(t *testing.T) {
	fs := newTestFS(t)
	a, err := fs.Mkdir(fs.Root(), "a", 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Mkdir(a, "b", 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := fs.PathOf(b); !ok || p != "/a/b" {
		t.Fatalf("PathOf = %q, %v", p, ok)
	}
	if parent, _ := fs.Lookup(b, ".."); parent != a {
		t.Fatal("b/.. != a")
	}
}

func TestAppendIsAtomicOffset(t *testing.T) {
	fs := newTestFS(t)
	f, _ := fs.Create(fs.Root(), "log", 0o644, 0, 0)
	off1, _ := f.Append([]byte("aa"))
	off2, _ := f.Append([]byte("bb"))
	if off1 != 0 || off2 != 2 {
		t.Fatalf("append offsets = %d, %d", off1, off2)
	}
	if !bytes.Equal(f.Bytes(), []byte("aabb")) {
		t.Fatalf("contents = %q", f.Bytes())
	}
}

func TestUnlinkSemantics(t *testing.T) {
	fs := newTestFS(t)
	d, _ := fs.Mkdir(fs.Root(), "d", 0o755, 0, 0)
	f, _ := fs.Create(d, "f", 0o644, 0, 0)

	if err := fs.Unlink(fs.Root(), "d", false); !errors.Is(err, errno.EISDIR) {
		t.Fatalf("unlink dir without rmdir = %v, want EISDIR", err)
	}
	if err := fs.Unlink(fs.Root(), "d", true); !errors.Is(err, errno.ENOTEMPTY) {
		t.Fatalf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	if err := fs.Unlink(d, "f", true); !errors.Is(err, errno.ENOTDIR) {
		t.Fatalf("rmdir file = %v, want ENOTDIR", err)
	}
	if err := fs.Unlink(d, "f", false); err != nil {
		t.Fatalf("unlink file: %v", err)
	}
	if _, ok := fs.PathOf(f); ok {
		t.Fatal("unlinked file still has a cached path")
	}
	if err := fs.Unlink(fs.Root(), "d", true); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
}

func TestUnlinkIfSame(t *testing.T) {
	fs := newTestFS(t)
	d, _ := fs.Mkdir(fs.Root(), "d", 0o755, 0, 0)
	f1, _ := fs.Create(d, "f", 0o644, 0, 0)

	// Simulate the TOCTOU race: replace d/f with another file.
	if err := fs.Unlink(d, "f", false); err != nil {
		t.Fatal(err)
	}
	f2, _ := fs.Create(d, "f", 0o644, 0, 0)
	if err := fs.UnlinkIfSame(d, "f", f1); !errors.Is(err, errno.EINVAL) {
		t.Fatalf("UnlinkIfSame stale = %v, want EINVAL", err)
	}
	if err := fs.UnlinkIfSame(d, "f", f2); err != nil {
		t.Fatalf("UnlinkIfSame fresh: %v", err)
	}
}

func TestHardLinks(t *testing.T) {
	fs := newTestFS(t)
	f, _ := fs.Create(fs.Root(), "a", 0o644, 0, 0)
	d, _ := fs.Mkdir(fs.Root(), "d", 0o755, 0, 0)
	if err := fs.Link(d, "b", f); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if st := f.Stat(); st.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", st.Nlink)
	}
	got, err := fs.Lookup(d, "b")
	if err != nil || got != f {
		t.Fatal("link does not resolve to the same vnode")
	}
	if err := fs.Link(d, "sub", d); !errors.Is(err, errno.EPERM) {
		t.Fatalf("hard-linking a directory = %v, want EPERM", err)
	}
	// Unlink the original; the path cache should fall over to the link.
	if err := fs.Unlink(fs.Root(), "a", false); err != nil {
		t.Fatal(err)
	}
	if st := f.Stat(); st.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", st.Nlink)
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t)
	a, _ := fs.Mkdir(fs.Root(), "a", 0o755, 0, 0)
	b, _ := fs.Mkdir(fs.Root(), "b", 0o755, 0, 0)
	f, _ := fs.Create(a, "f", 0o644, 0, 0)
	if err := fs.Rename(a, "f", b, "g"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.Lookup(a, "f"); !errors.Is(err, errno.ENOENT) {
		t.Fatal("source entry survived rename")
	}
	if got, _ := fs.Lookup(b, "g"); got != f {
		t.Fatal("renamed entry is a different vnode")
	}
	if p, _ := fs.PathOf(f); p != "/b/g" {
		t.Fatalf("PathOf after rename = %q", p)
	}
}

func TestRenameIntoOwnSubtree(t *testing.T) {
	fs := newTestFS(t)
	a, _ := fs.Mkdir(fs.Root(), "a", 0o755, 0, 0)
	sub, _ := fs.Mkdir(a, "sub", 0o755, 0, 0)
	if err := fs.Rename(fs.Root(), "a", sub, "x"); !errors.Is(err, errno.EINVAL) {
		t.Fatalf("rename into own subtree = %v, want EINVAL", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := newTestFS(t)
	src, _ := fs.Create(fs.Root(), "src", 0o644, 0, 0)
	dst, _ := fs.Create(fs.Root(), "dst", 0o644, 0, 0)
	if err := fs.Rename(fs.Root(), "src", fs.Root(), "dst"); err != nil {
		t.Fatalf("Rename replace: %v", err)
	}
	if got, _ := fs.Lookup(fs.Root(), "dst"); got != src {
		t.Fatal("target was not replaced")
	}
	if st := dst.Stat(); st.Nlink != 0 {
		t.Fatalf("replaced target nlink = %d", st.Nlink)
	}
}

func TestSymlink(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Symlink(fs.Root(), "ln", "/target", 0, 0); err != nil {
		t.Fatal(err)
	}
	ln, _ := fs.Lookup(fs.Root(), "ln")
	target, err := ln.Readlink()
	if err != nil || target != "/target" {
		t.Fatalf("Readlink = %q, %v", target, err)
	}
	f, _ := fs.Create(fs.Root(), "file", 0o644, 0, 0)
	if _, err := f.Readlink(); !errors.Is(err, errno.EINVAL) {
		t.Fatal("Readlink on regular file should fail")
	}
}

func TestDACAccessible(t *testing.T) {
	fs := newTestFS(t)
	f, _ := fs.Create(fs.Root(), "f", 0o640, 1000, 100)
	cases := []struct {
		uid, gid int
		want     uint16
		ok       bool
	}{
		{1000, 100, ModeRead | ModeWrite, true}, // owner rw
		{1000, 100, ModeExec, false},            // owner no exec
		{2000, 100, ModeRead, true},             // group r
		{2000, 100, ModeWrite, false},           // group no w
		{2000, 200, ModeRead, false},            // other none
		{0, 0, ModeRead | ModeWrite, true},      // root bypass
		{0, 0, ModeExec, false},                 // root exec needs some x bit
	}
	for i, c := range cases {
		if got := f.Accessible(c.uid, c.gid, c.want); got != c.ok {
			t.Errorf("case %d: Accessible(%d,%d,%o) = %v, want %v", i, c.uid, c.gid, c.want, got, c.ok)
		}
	}
}

func TestTruncate(t *testing.T) {
	fs := newTestFS(t)
	f, _ := fs.Create(fs.Root(), "f", 0o644, 0, 0)
	f.SetBytes([]byte("abcdef"))
	if err := f.Truncate(3); err != nil || string(f.Bytes()) != "abc" {
		t.Fatalf("shrink: %q, %v", f.Bytes(), err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), []byte("abc\x00\x00")) {
		t.Fatalf("grow: %q", f.Bytes())
	}
	if err := f.Truncate(-1); !errors.Is(err, errno.EINVAL) {
		t.Fatal("negative truncate should fail")
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := newTestFS(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := fs.Create(fs.Root(), name, 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}

func TestMkdirAllAndWriteFile(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.WriteFile("/usr/local/lib/libc.so", []byte("elf"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	v := fs.MustResolve("/usr/local/lib/libc.so")
	if string(v.Bytes()) != "elf" {
		t.Fatal("contents mismatch")
	}
	// MkdirAll over an existing file component fails.
	if _, err := fs.MkdirAll("/usr/local/lib/libc.so/x", 0o755, 0, 0); !errors.Is(err, errno.ENOTDIR) {
		t.Fatalf("MkdirAll through file = %v", err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	fs := newTestFS(t)
	fs.MustResolve("/")
	if _, err := fs.WriteFile("/a/b/c.txt", nil, 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	var paths []string
	fs.Walk(fs.Root(), func(p string, v *Vnode) { paths = append(paths, p) })
	want := map[string]bool{"/": true, "/a": true, "/a/b": true, "/a/b/c.txt": true}
	if len(paths) != len(want) {
		t.Fatalf("Walk visited %v", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q", p)
		}
	}
}

func TestPipeReadWriteEOF(t *testing.T) {
	p := NewPipe()
	go func() {
		p.Write([]byte("hello"))
		p.CloseWrite()
	}()
	buf := make([]byte, 8)
	n, err := p.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	n, err = p.Read(buf)
	if n != 0 || err != nil {
		t.Fatalf("EOF read = %d, %v", n, err)
	}
}

func TestPipeWriteAfterReaderClose(t *testing.T) {
	p := NewPipe()
	p.CloseRead()
	if _, err := p.Write([]byte("x")); !errors.Is(err, errno.EPIPE) {
		t.Fatalf("write to closed pipe = %v, want EPIPE", err)
	}
}

func TestPipeBackpressure(t *testing.T) {
	p := NewPipe()
	big := make([]byte, pipeBufCap+1024)
	done := make(chan struct{})
	go func() {
		p.Write(big)
		close(done)
	}()
	// Drain until the writer can finish.
	total := 0
	buf := make([]byte, 4096)
	for total < len(big) {
		n, err := p.Read(buf)
		if err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		total += n
	}
	<-done
}

func TestDevices(t *testing.T) {
	fs := newTestFS(t)
	dev, _ := fs.MkdirAll("/dev", 0o755, 0, 0)
	null, err := fs.Mkdev(dev, "null", 0o666, 0, 0, NullDevice{})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := null.Device().DevRead(make([]byte, 4)); n != 0 {
		t.Fatal("/dev/null read should be EOF")
	}
	zero := ZeroDevice{}
	buf := []byte{1, 2, 3}
	zero.DevRead(buf)
	if buf[0] != 0 || buf[2] != 0 {
		t.Fatal("/dev/zero should zero the buffer")
	}
	con := NewConsoleDevice()
	con.DevWrite([]byte("out"))
	if string(con.Output()) != "out" {
		t.Fatal("console capture mismatch")
	}
	con.FeedInput([]byte("in"))
	got := make([]byte, 2)
	con.DevRead(got)
	if string(got) != "in" {
		t.Fatal("console input mismatch")
	}
}

// Property: PathOf is the inverse of resolution for every created path.
func TestPathOfRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	fn := func(rawNames []string) bool {
		cur := fs.Root()
		path := ""
		for _, raw := range rawNames {
			name := sanitizeName(raw)
			if name == "" {
				continue
			}
			next, err := fs.Lookup(cur, name)
			if err != nil {
				next, err = fs.Mkdir(cur, name, 0o755, 0, 0)
				if err != nil {
					return false
				}
			}
			if !next.IsDir() {
				continue
			}
			cur = next
			path += "/" + name
		}
		if path == "" {
			path = "/"
		}
		got, ok := fs.PathOf(cur)
		return ok && got == path
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '/' || r == 0 || r == '.' {
			continue
		}
		out = append(out, r)
		if len(out) >= 32 {
			break
		}
	}
	return string(out)
}

// Property: nlink of a directory equals 2 + number of subdirectories.
func TestDirNlinkInvariant(t *testing.T) {
	fs := newTestFS(t)
	d, _ := fs.Mkdir(fs.Root(), "d", 0o755, 0, 0)
	subs := []string{"a", "b", "c"}
	for _, s := range subs {
		fs.Mkdir(d, s, 0o755, 0, 0)
	}
	fs.Create(d, "file", 0o644, 0, 0) // files don't count
	if st := d.Stat(); st.Nlink != 2+len(subs) {
		t.Fatalf("dir nlink = %d, want %d", st.Nlink, 2+len(subs))
	}
	fs.Unlink(d, "a", true)
	if st := d.Stat(); st.Nlink != 2+len(subs)-1 {
		t.Fatalf("dir nlink after rmdir = %d", st.Nlink)
	}
}
