package vfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// buildBase returns a flattened base layer with a small tree:
//
//	/bin/sh, /etc/passwd, /home/user/, /course/s1/sub.txt, /course/s2/sub.txt
func buildBase(t *testing.T) *Layer {
	t.Helper()
	fs := New()
	mustWrite := func(path, data string) {
		if _, err := fs.WriteFile(path, []byte(data), 0o644, 0, 0); err != nil {
			t.Fatalf("WriteFile %s: %v", path, err)
		}
	}
	mustWrite("/bin/sh", "#!bin:sh\n")
	mustWrite("/etc/passwd", "root:0\nuser:1001\n")
	mustWrite("/course/s1/sub.txt", "submission one")
	mustWrite("/course/s2/sub.txt", "submission two")
	if _, err := fs.MkdirAll("/home/user", 0o755, 1001, 1001); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if _, err := fs.Symlink(fs.MustResolve("/etc"), "motd", "/etc/passwd", 0, 0); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	return fs.CaptureLayer()
}

func readFile(t *testing.T, fs *FS, path string) string {
	t.Helper()
	v, err := fs.Resolve(path)
	if err != nil {
		t.Fatalf("Resolve %s: %v", path, err)
	}
	return string(v.Bytes())
}

func TestLayerRoundTrip(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	if got := readFile(t, fs, "/course/s1/sub.txt"); got != "submission one" {
		t.Fatalf("s1 content = %q", got)
	}
	names, err := fs.ReadDir(fs.MustResolve("/course"))
	if err != nil || len(names) != 2 || names[0] != "s1" || names[1] != "s2" {
		t.Fatalf("ReadDir /course = %v, %v", names, err)
	}
	link := fs.MustResolve("/etc/motd")
	if target, _ := link.Readlink(); target != "/etc/passwd" {
		t.Fatalf("symlink target = %q", target)
	}
	// Unmodified derived filesystems capture an empty layer.
	if top := fs.CaptureLayer(); top.Len() != 0 {
		t.Fatalf("clean capture has %d entries: %v", top.Len(), top.Paths())
	}
}

func TestCoWIsolation(t *testing.T) {
	base := buildBase(t)
	a, b := NewFromLayer(base), NewFromLayer(base)

	va := a.MustResolve("/course/s1/sub.txt")
	if _, err := va.WriteAt([]byte("HACKED"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := readFile(t, b, "/course/s1/sub.txt"); got != "submission one" {
		t.Fatalf("sibling sees write: %q", got)
	}
	if got := string(base.Entry("/course/s1/sub.txt").Data); got != "submission one" {
		t.Fatalf("base layer mutated: %q", got)
	}

	// Append must also break the alias: an append into a shared backing
	// array would corrupt every sibling machine.
	vb := b.MustResolve("/etc/passwd")
	if _, err := vb.Append([]byte("evil:666\n")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := readFile(t, a, "/etc/passwd"); got != "root:0\nuser:1001\n" {
		t.Fatalf("sibling sees append: %q", got)
	}
	if err := a.MustResolve("/course/s2/sub.txt").Truncate(3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := readFile(t, b, "/course/s2/sub.txt"); got != "submission two" {
		t.Fatalf("sibling sees truncate: %q", got)
	}
}

func TestWhiteoutUnlink(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	etc := fs.MustResolve("/etc")
	if err := fs.Unlink(etc, "passwd", false); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := fs.Resolve("/etc/passwd"); err == nil {
		t.Fatal("unlinked base file still resolves")
	}
	if names, _ := fs.ReadDir(etc); len(names) != 1 || names[0] != "motd" {
		t.Fatalf("ReadDir /etc = %v", names)
	}
	// Recreating over the whiteout works and hides nothing afterwards.
	if _, err := fs.Create(etc, "passwd", 0o600, 0, 0); err != nil {
		t.Fatalf("Create over whiteout: %v", err)
	}
	if got := readFile(t, fs, "/etc/passwd"); got != "" {
		t.Fatalf("recreated file has stale content %q", got)
	}

	// The captured layer must carry the deletion: a fresh boot from the
	// stacked image sees the new empty file, not the base content.
	top := fs.CaptureLayer()
	fs2 := NewFromLayer(FlattenLayers([]*Layer{base, top}))
	if got := readFile(t, fs2, "/etc/passwd"); got != "" {
		t.Fatalf("restored sees base content %q", got)
	}
}

func TestWhiteoutRenameAcrossLayers(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	root := fs.Root()
	// Rename a base-backed directory whose children were never
	// materialized; the capture must relocate the whole subtree.
	if err := fs.Rename(root, "course", root, "archive"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.Resolve("/course"); err == nil {
		t.Fatal("/course still resolves after rename")
	}
	if got := readFile(t, fs, "/archive/s1/sub.txt"); got != "submission one" {
		t.Fatalf("renamed subtree content = %q", got)
	}
	top := fs.CaptureLayer()
	fs2 := NewFromLayer(FlattenLayers([]*Layer{base, top}))
	if _, err := fs2.Resolve("/course"); err == nil {
		t.Fatal("restored still has /course")
	}
	if got := readFile(t, fs2, "/archive/s2/sub.txt"); got != "submission two" {
		t.Fatalf("restored renamed subtree = %q", got)
	}
}

func TestRmdirRecreateStaysOpaque(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	s1 := fs.MustResolve("/course/s1")
	if err := fs.Unlink(s1, "sub.txt", false); err != nil {
		t.Fatalf("Unlink child: %v", err)
	}
	course := fs.MustResolve("/course")
	if err := fs.Unlink(course, "s1", true); err != nil {
		t.Fatalf("rmdir s1: %v", err)
	}
	if _, err := fs.Mkdir(course, "s1", 0o755, 0, 0); err != nil {
		t.Fatalf("recreate s1: %v", err)
	}
	if names, _ := fs.ReadDir(fs.MustResolve("/course/s1")); len(names) != 0 {
		t.Fatalf("recreated dir resurrects children: %v", names)
	}
	top := fs.CaptureLayer()
	fs2 := NewFromLayer(FlattenLayers([]*Layer{base, top}))
	if _, err := fs2.Resolve("/course/s1/sub.txt"); err == nil {
		t.Fatal("restored resurrects deleted child through recreated dir")
	}
}

func TestRmdirBaseBackedNonEmpty(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	course := fs.MustResolve("/course")
	// s1 has an unmaterialized base child, so rmdir must refuse.
	if err := fs.Unlink(course, "s1", true); err == nil {
		t.Fatal("rmdir of non-empty base-backed dir succeeded")
	}
}

func TestHardLinkAliasSurvivesCapture(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	home := fs.MustResolve("/home/user")
	f, err := fs.Create(home, "notes", 0o644, 1001, 1001)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.SetBytes([]byte("aliased"))
	if err := fs.Link(fs.MustResolve("/home"), "alias", f); err != nil {
		t.Fatalf("Link: %v", err)
	}
	top := fs.CaptureLayer()
	fs2 := NewFromLayer(FlattenLayers([]*Layer{base, top}))
	if got := readFile(t, fs2, "/home/user/notes"); got != "aliased" {
		t.Fatalf("original path = %q", got)
	}
	if got := readFile(t, fs2, "/home/alias"); got != "aliased" {
		t.Fatalf("alias path = %q", got)
	}
}

func TestCaptureIsODirty(t *testing.T) {
	fs := New()
	for i := 0; i < 200; i++ {
		if _, err := fs.WriteFile(fmt.Sprintf("/big/f%03d", i), []byte("x"), 0o644, 0, 0); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	base := fs.CaptureLayer()
	derived := NewFromLayer(base)
	if _, err := derived.WriteFile("/big/f000", []byte("y"), 0o644, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if n := derived.ModifiedCount(); n > 2 {
		t.Fatalf("one write dirtied %d vnodes", n)
	}
	if top := derived.CaptureLayer(); top.Len() > 2 {
		t.Fatalf("one write captured %d entries: %v", top.Len(), top.Paths())
	}
}

func TestCaptureDeterministic(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	if _, err := fs.WriteFile("/home/user/a.txt", []byte("hello"), 0o644, 1001, 1001); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	h1 := fs.CaptureLayer().Hash()
	h2 := fs.CaptureLayer().Hash()
	if h1 != h2 {
		t.Fatalf("capture not deterministic: %s vs %s", h1, h2)
	}
}

func TestChangeWindow(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)

	w1 := fs.OpenChangeWindow()
	if _, err := fs.WriteFile("/home/user/w1.txt", []byte("1"), 0o644, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	w2 := fs.OpenChangeWindow()
	if _, err := fs.WriteFile("/home/user/w2.txt", []byte("2"), 0o644, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	has := func(paths []string, want string) bool {
		for _, p := range paths {
			if p == want {
				return true
			}
		}
		return false
	}
	t1 := w1.Touched()
	if !has(t1, "/home/user/w1.txt") || !has(t1, "/home/user/w2.txt") {
		t.Fatalf("w1 touched = %v", t1)
	}
	t2 := w2.Touched()
	if has(t2, "/home/user/w1.txt") || !has(t2, "/home/user/w2.txt") {
		t.Fatalf("w2 touched = %v", t2)
	}
	w1.Close()
	w2.Close()

	// With every window closed the journal is released and mutations
	// cost only the fast-path check.
	if _, err := fs.WriteFile("/home/user/after.txt", []byte("3"), 0o644, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	fs.jmu.Lock()
	jlen := len(fs.journal)
	fs.jmu.Unlock()
	if jlen != 0 {
		t.Fatalf("journal not truncated: %d entries", jlen)
	}

	// Unlinks and renames of base content are observed too.
	w3 := fs.OpenChangeWindow()
	defer w3.Close()
	if err := fs.Unlink(fs.MustResolve("/etc"), "passwd", false); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	root := fs.Root()
	if err := fs.Rename(root, "course", root, "archive"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	t3 := w3.Touched()
	for _, want := range []string{"/etc/passwd", "/course", "/archive", "/course/s1/sub.txt", "/archive/s1/sub.txt"} {
		if !has(t3, want) {
			t.Fatalf("w3 missing %s: %v", want, t3)
		}
	}
}

func TestSharedBaseStress(t *testing.T) {
	base := buildBase(t)
	const machines = 8
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fs := NewFromLayer(base)
			for j := 0; j < 50; j++ {
				path := fmt.Sprintf("/home/user/f%d.txt", j%5)
				if _, err := fs.WriteFile(path, []byte(fmt.Sprintf("m%d-%d", id, j)), 0o644, 1001, 1001); err != nil {
					t.Errorf("machine %d: WriteFile: %v", id, err)
					return
				}
				v := fs.MustResolve("/course/s1/sub.txt")
				if _, err := v.Append([]byte{byte('a' + id)}); err != nil {
					t.Errorf("machine %d: Append: %v", id, err)
					return
				}
				if _, err := fs.Resolve("/etc/passwd"); err != nil {
					t.Errorf("machine %d: Resolve: %v", id, err)
					return
				}
			}
			want := "submission one"
			got := readFile(t, fs, "/course/s2/sub.txt")
			if got != "submission two" {
				t.Errorf("machine %d: cross-machine corruption: %q", id, got)
			}
			if v := fs.MustResolve("/course/s1/sub.txt"); !bytes.HasPrefix(v.Bytes(), []byte(want)) {
				t.Errorf("machine %d: appended file lost base prefix", id)
			}
		}(i)
	}
	wg.Wait()
	for _, e := range []string{"/course/s1/sub.txt", "/course/s2/sub.txt"} {
		if got := string(base.Entry(e).Data); got != "submission one" && got != "submission two" {
			t.Fatalf("base layer corrupted at %s: %q", e, got)
		}
	}
}

func TestConcurrentWindowsOneFS(t *testing.T) {
	base := buildBase(t)
	fs := NewFromLayer(base)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				w := fs.OpenChangeWindow()
				path := fmt.Sprintf("/home/user/c%d.txt", id)
				if _, err := fs.WriteFile(path, []byte("x"), 0o644, 0, 0); err != nil {
					t.Errorf("WriteFile: %v", err)
				}
				found := false
				for _, p := range w.Touched() {
					if p == path {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("window %d/%d missed own write", id, j)
				}
				w.Close()
			}
		}(i)
	}
	wg.Wait()
}
