package vfs

import "time"

// This file holds the copy-on-write machinery layered over the plain
// in-memory filesystem:
//
//   - NewFromLayer boots an FS whose namespace is backed by an immutable
//     flattened Layer. Base entries are materialized into vnodes lazily
//     on first lookup; file data aliases the layer's bytes until first
//     mutation (copy-on-write), so many machines share one base image.
//   - Whiteouts: removing or renaming away a base-backed name records a
//     whiteout on the parent directory so the base entry stays hidden
//     and so a later capture can replay the deletion.
//   - Dirty tracking: every vnode that diverges from the base is added
//     to fs.modified, making CaptureLayer O(changed entries) instead of
//     O(tree).
//   - Change windows: a refcounted journal of touched paths that lets
//     the escape-detection oracle diff a run in O(paths it touched).
//     When no window is open the journal costs one atomic load per
//     mutation.

// NewFromLayer returns a filesystem backed by the flattened base layer.
// The layer must be the result of FlattenLayers (or a single built
// layer) and must never be mutated afterwards; its entries are shared
// copy-on-write by every filesystem booted from it. Character-device
// entries are ignored — devices hold live Go state and are rewired by
// the restoring kernel.
func NewFromLayer(base *Layer) *FS {
	fs := &FS{}
	fs.clock.Store(time.Now)
	fs.modified = make(map[*Vnode]struct{})
	fs.base = base
	root := fs.newVnode(TypeDir, 0o755, 0, 0)
	if e := base.Entry("/"); e != nil && !e.Whiteout {
		root.mode = e.Mode & 0o7777
		root.uid, root.gid = e.UID, e.GID
	}
	root.basePath = "/"
	root.nlink = 2 + base.dirChildDirs("/")
	root.parent = root
	root.name = "/"
	fs.root = root
	return fs
}

// BaseLayer returns the flattened base layer this filesystem was booted
// from, or nil for a cold filesystem.
func (fs *FS) BaseLayer() *Layer { return fs.base }

// baseEntryLocked returns the visible base entry for name within dir and
// the base path it lives at, or nil. Caller holds fs.mu (read or write).
func (fs *FS) baseEntryLocked(dir *Vnode, name string) (*LayerEntry, string) {
	if fs.base == nil || dir.basePath == "" {
		return nil, ""
	}
	if _, whited := dir.wh[name]; whited {
		return nil, ""
	}
	path := joinPath(dir.basePath, name)
	e := fs.base.Entry(path)
	if e == nil || e.Whiteout || e.Type == TypeCharDev {
		return nil, ""
	}
	return e, path
}

// childLocked resolves name within dir, materializing a base entry into
// a vnode if needed. Caller holds fs.mu for writing.
func (fs *FS) childLocked(dir *Vnode, name string) (*Vnode, bool) {
	if c, ok := dir.children[name]; ok {
		return c, true
	}
	e, bpath := fs.baseEntryLocked(dir, name)
	if e == nil {
		return nil, false
	}
	return fs.materializeLocked(dir, name, e, bpath), true
}

// materializeLocked turns a base entry into a live vnode under dir.
// Materialization is not a modification: the vnode is not added to the
// dirty set, and file data aliases the layer bytes until first write.
// Caller holds fs.mu for writing.
func (fs *FS) materializeLocked(dir *Vnode, name string, e *LayerEntry, bpath string) *Vnode {
	v := fs.newVnode(e.Type, e.Mode, e.UID, e.GID)
	v.basePath = bpath
	switch e.Type {
	case TypeDir:
		v.nlink = 2 + fs.base.dirChildDirs(bpath)
	case TypeFile, TypeSymlink:
		v.data = e.Data
		v.cowData = true
	}
	dir.children[name] = v
	v.parent = dir
	v.name = name
	return v
}

// visibleBaseNamesLocked returns base child names of dir that are not
// whited out and not already materialized. Caller holds fs.mu.
func (fs *FS) visibleBaseNamesLocked(dir *Vnode) []string {
	if fs.base == nil || dir.basePath == "" {
		return nil
	}
	var names []string
	for _, name := range fs.base.ChildNames(dir.basePath) {
		if _, whited := dir.wh[name]; whited {
			continue
		}
		if _, ok := dir.children[name]; ok {
			continue
		}
		if e := fs.base.Entry(joinPath(dir.basePath, name)); e == nil || e.Whiteout || e.Type == TypeCharDev {
			continue
		}
		names = append(names, name)
	}
	return names
}

// dirEmptyLocked reports whether dir has no visible entries, counting
// unmaterialized base children. Caller holds fs.mu.
func (fs *FS) dirEmptyLocked(dir *Vnode) bool {
	if len(dir.children) > 0 {
		return false
	}
	return len(fs.visibleBaseNamesLocked(dir)) == 0
}

// installLocked places v at dir/name, clearing any whiteout covering the
// name. A vnode installed over a whiteout is marked opaque so that a
// captured layer hides the base subtree the whiteout was deleting.
// Caller holds fs.mu for writing.
func (fs *FS) installLocked(dir *Vnode, name string, v *Vnode) {
	if _, whited := dir.wh[name]; whited {
		delete(dir.wh, name)
		v.opaque = true
	}
	dir.children[name] = v
}

// removeNameLocked removes dir/name from the namespace, recording a
// whiteout when the base image still has a visible entry at that name.
// Caller holds fs.mu for writing.
func (fs *FS) removeNameLocked(dir *Vnode, name string) {
	delete(dir.children, name)
	if fs.base == nil || dir.basePath == "" {
		return
	}
	if e := fs.base.Entry(joinPath(dir.basePath, name)); e != nil && !e.Whiteout {
		if dir.wh == nil {
			dir.wh = make(map[string]struct{})
		}
		dir.wh[name] = struct{}{}
		fs.noteVnode(dir)
	}
}

// noteVnode records v as diverged from the base image. Safe under any
// lock context except fs.modMu itself.
func (fs *FS) noteVnode(v *Vnode) {
	if fs.base == nil || v == nil || v.noted.Load() {
		return
	}
	fs.modMu.Lock()
	if !v.noted.Load() {
		v.noted.Store(true)
		fs.modified[v] = struct{}{}
	}
	fs.modMu.Unlock()
}

// noteMutate is the data-path dirty hook, called by vnode mutators
// before they take the vnode's data lock. When the filesystem has no
// base and no change window is open it costs two atomic loads.
func (fs *FS) noteMutate(v *Vnode) {
	needDirty := fs.base != nil && !v.noted.Load()
	needJournal := fs.jwin.Load() > 0
	if !needDirty && !needJournal {
		return
	}
	if needDirty {
		fs.noteVnode(v)
	}
	if needJournal {
		if path, ok := fs.pathOf(v); ok {
			fs.journalTouch(v, path)
		} else {
			// The vnode's cached path was invalidated (e.g. one hard
			// link of several was unlinked) but a descriptor still
			// writes to it: journal the last-known path so the window
			// does not silently miss the mutation.
			fs.journalTouchFallback(v)
		}
	}
}

// journalTouchFallback journals v's last-journaled path when its
// current path cannot be resolved.
func (fs *FS) journalTouchFallback(v *Vnode) {
	if fs.jwin.Load() == 0 {
		return
	}
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	if len(fs.jopen) == 0 || v.jpath == "" || v.jpos >= fs.jnewest {
		return
	}
	v.jpos = fs.jbase + uint64(len(fs.journal))
	fs.journal = append(fs.journal, v.jpath)
}

// --- change windows -------------------------------------------------

// ChangeWindow observes every path touched by filesystem mutations
// between OpenChangeWindow and Close. Windows are independent: several
// checkers can watch one filesystem concurrently, and the shared
// journal is truncated when the last window closes.
type ChangeWindow struct {
	fs     *FS
	start  uint64
	closed bool
}

// OpenChangeWindow starts observing mutations.
func (fs *FS) OpenChangeWindow() *ChangeWindow {
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	w := &ChangeWindow{fs: fs, start: fs.jbase + uint64(len(fs.journal))}
	fs.jopen = append(fs.jopen, w)
	fs.jwin.Store(int32(len(fs.jopen)))
	if w.start > fs.jnewest {
		fs.jnewest = w.start
	}
	return w
}

// Touched returns the unique paths mutated since the window opened, in
// first-touch order. The window stays open.
func (w *ChangeWindow) Touched() []string {
	w.fs.jmu.Lock()
	defer w.fs.jmu.Unlock()
	if w.closed {
		return nil
	}
	seen := make(map[string]struct{})
	var paths []string
	for _, p := range w.fs.journal[w.start-w.fs.jbase:] {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		paths = append(paths, p)
	}
	return paths
}

// Close stops observing. When the last window closes the journal is
// released.
func (w *ChangeWindow) Close() {
	w.fs.jmu.Lock()
	defer w.fs.jmu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	fs := w.fs
	for i, open := range fs.jopen {
		if open == w {
			fs.jopen = append(fs.jopen[:i], fs.jopen[i+1:]...)
			break
		}
	}
	fs.jwin.Store(int32(len(fs.jopen)))
	fs.jnewest = 0
	for _, open := range fs.jopen {
		if open.start > fs.jnewest {
			fs.jnewest = open.start
		}
	}
	if len(fs.jopen) == 0 {
		fs.jbase += uint64(len(fs.journal))
		fs.journal = nil
	}
}

// journalTouch appends path to the journal if any window is open. The
// per-vnode (jpath, jpos) pair dedups repeated touches of the same path
// since the newest window opened; pass v == nil to force an append.
func (fs *FS) journalTouch(v *Vnode, path string) {
	if fs.jwin.Load() == 0 {
		return
	}
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	if len(fs.jopen) == 0 {
		return
	}
	if v != nil && v.jpath == path && v.jpos >= fs.jnewest {
		return
	}
	pos := fs.jbase + uint64(len(fs.journal))
	fs.journal = append(fs.journal, path)
	if v != nil {
		v.jpath, v.jpos = path, pos
	}
}

// journalSubtreeLocked journals every path in the subtree rooted at v,
// currently addressed by path, including unmaterialized base children.
// Used for directory renames. Caller holds fs.mu for writing.
func (fs *FS) journalSubtreeLocked(v *Vnode, path string) {
	fs.journalTouch(nil, path)
	if !v.IsDir() {
		return
	}
	for name, c := range v.children {
		fs.journalSubtreeLocked(c, joinPath(path, name))
	}
	for _, name := range fs.visibleBaseNamesLocked(v) {
		fs.journalBaseSubtree(v.basePath, joinPath(path, name), name)
	}
}

// journalBaseSubtree journals unmaterialized base entries under
// dirBase/name, remapped to live under newPath.
func (fs *FS) journalBaseSubtree(dirBase, newPath, name string) {
	bpath := joinPath(dirBase, name)
	e := fs.base.Entry(bpath)
	if e == nil || e.Whiteout || e.Type == TypeCharDev {
		return
	}
	fs.journalTouch(nil, newPath)
	if e.Type != TypeDir {
		return
	}
	for _, child := range fs.base.ChildNames(bpath) {
		fs.journalBaseSubtree(bpath, joinPath(newPath, child), child)
	}
}

// --- capture ---------------------------------------------------------

// CaptureLayer serializes the filesystem's divergence from its base
// image into a new immutable layer. For a cold filesystem (no base) the
// whole tree is captured. Character devices are skipped — they hold
// live Go state and are rewired at restore. Hard links are materialized
// as independent copies. The caller must guarantee the filesystem is
// quiescent (the machine layer quiesces all sessions first).
func (fs *FS) CaptureLayer() *Layer {
	lb := NewLayerBuilder()
	if fs.base == nil {
		fs.Walk(fs.root, func(path string, v *Vnode) {
			fs.captureVnode(lb, path, v, false)
		})
		return lb.Build()
	}
	fs.modMu.Lock()
	mods := make([]*Vnode, 0, len(fs.modified))
	for v := range fs.modified {
		mods = append(mods, v)
	}
	fs.modMu.Unlock()
	for _, v := range mods {
		path, ok := fs.pathOf(v)
		if !ok {
			continue // unlinked since modification; unreachable content
		}
		if v.typ == TypeCharDev {
			continue
		}
		fs.mu.RLock()
		bpath := v.basePath
		relist := v.relist
		whNames := make([]string, 0, len(v.wh))
		for name := range v.wh {
			whNames = append(whNames, name)
		}
		var relisted map[string]*Vnode
		if relist && v.IsDir() {
			relisted = make(map[string]*Vnode, len(v.children))
			for name, c := range v.children {
				if !c.IsDir() {
					relisted[name] = c
				}
			}
		}
		fs.mu.RUnlock()
		if v.IsDir() && bpath != "" && bpath != path {
			// A base-backed directory living at a new path: its
			// unmaterialized children exist nowhere in upper layers, so
			// emit the full subtree, opaque, at the new location. The
			// old location is hidden by the whiteout its rename left
			// behind.
			fs.Walk(v, func(p string, c *Vnode) {
				fs.captureVnode(lb, p, c, true)
			})
			continue
		}
		fs.captureVnode(lb, path, v, false)
		if v.IsDir() && bpath == path {
			for _, name := range whNames {
				lb.AddWhiteout(joinPath(path, name))
			}
		}
		// A dir that gained hard links re-emits its non-dir children:
		// a linked file's cached path may point at another parent, so
		// per-vnode emission alone would drop the alias.
		for name, c := range relisted {
			fs.captureVnode(lb, joinPath(path, name), c, false)
		}
	}
	return lb.Build()
}

// captureVnode adds one vnode's entry to the builder. Walk-based
// captures pass forceOpaque for relocated base subtrees.
func (fs *FS) captureVnode(lb *LayerBuilder, path string, v *Vnode, forceOpaque bool) {
	if v.typ == TypeCharDev {
		return
	}
	fs.mu.RLock()
	opaque := v.opaque
	fs.mu.RUnlock()
	v.dmu.RLock()
	e := LayerEntry{
		Type:   v.typ,
		Mode:   v.mode,
		UID:    v.uid,
		GID:    v.gid,
		Opaque: opaque || (forceOpaque && v.typ == TypeDir),
	}
	if v.typ == TypeFile || v.typ == TypeSymlink {
		e.Data = append([]byte(nil), v.data...)
	}
	v.dmu.RUnlock()
	lb.Add(path, e)
}

// ModifiedCount returns the number of vnodes diverged from the base
// (diagnostics and tests).
func (fs *FS) ModifiedCount() int {
	fs.modMu.Lock()
	defer fs.modMu.Unlock()
	return len(fs.modified)
}
