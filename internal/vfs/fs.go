package vfs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errno"
	"repro/internal/trace"
)

// FS is an in-memory filesystem: a tree of vnodes under a single root.
// Namespace mutations (link, unlink, rename, create) take the FS-wide
// namespace lock; file data I/O uses per-vnode locks.
type FS struct {
	mu      sync.RWMutex
	root    *Vnode
	nextIno uint64

	// ops, when set, aggregates per-operation counts and sampled timings
	// under trace.OpVFS for the request-tracing layer. Nil (the default)
	// costs one nil check per operation.
	ops *trace.OpStats

	// clock lets deterministic tests pin timestamps; defaults to
	// time.Now.
	clock atomic.Value // func() time.Time

	// base is the immutable flattened layer this filesystem was booted
	// from (nil for a cold filesystem); see cow.go.
	base *Layer

	// modified is the dirty set: vnodes diverged from base. Guarded by
	// modMu, which nests inside every other lock.
	modMu    sync.Mutex
	modified map[*Vnode]struct{}

	// Change-window journal (see cow.go). jwin mirrors len(jopen) so
	// the no-window fast path is one atomic load. jbase is the absolute
	// index of journal[0]; jnewest the largest open-window start.
	jwin    atomic.Int32
	jmu     sync.Mutex
	jopen   []*ChangeWindow
	journal []string
	jbase   uint64
	jnewest uint64
}

// New returns a filesystem containing only a root directory owned by
// root with mode 0755.
func New() *FS {
	fs := &FS{}
	fs.clock.Store(time.Now)
	fs.modified = make(map[*Vnode]struct{})
	fs.root = fs.newVnode(TypeDir, 0o755, 0, 0)
	fs.root.children = make(map[string]*Vnode)
	fs.root.parent = fs.root
	fs.root.name = "/"
	fs.root.nlink = 2
	return fs
}

// SetClock replaces the timestamp source (tests only).
func (fs *FS) SetClock(fn func() time.Time) { fs.clock.Store(fn) }

// SetOpStats attaches aggregated-op accounting (trace.OpVFS). Set it
// before the filesystem is shared across goroutines; the kernel wires
// it at construction.
func (fs *FS) SetOpStats(o *trace.OpStats) { fs.ops = o }

func (fs *FS) now() time.Time { return fs.clock.Load().(func() time.Time)() }

// Root returns the root directory vnode.
func (fs *FS) Root() *Vnode { return fs.root }

func (fs *FS) newVnode(typ VnodeType, mode uint16, uid, gid int) *Vnode {
	now := fs.now()
	v := &Vnode{
		ino:   atomic.AddUint64(&fs.nextIno, 1),
		typ:   typ,
		fs:    fs,
		mode:  mode & 0o7777,
		uid:   uid,
		gid:   gid,
		atime: now,
		mtime: now,
		ctime: now,
		nlink: 1,
	}
	if typ == TypeDir {
		v.children = make(map[string]*Vnode)
		v.nlink = 2
	}
	return v
}

// ValidName reports whether name is a legal single directory-entry name:
// non-empty, no '/', no NUL, and within NAME_MAX. "." and ".." are legal
// names for lookup but never for creation.
func ValidName(name string) bool {
	if name == "" || len(name) > 255 {
		return false
	}
	return !strings.ContainsAny(name, "/\x00")
}

func validCreateName(name string) error {
	if !ValidName(name) {
		return errno.EINVAL
	}
	if name == "." || name == ".." {
		return errno.EEXIST
	}
	return nil
}

// Lookup resolves a single component name within dir. "." returns dir
// itself; ".." returns the parent (the root's parent is the root). The
// caller is responsible for MAC checks and symlink policy.
func (fs *FS) Lookup(dir *Vnode, name string) (*Vnode, error) {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return nil, errno.ENOTDIR
	}
	if !ValidName(name) {
		return nil, errno.EINVAL
	}
	fs.mu.RLock()
	switch name {
	case ".":
		fs.mu.RUnlock()
		return dir, nil
	case "..":
		parent := dir.parent
		fs.mu.RUnlock()
		return parent, nil
	}
	if child, ok := dir.children[name]; ok {
		fs.mu.RUnlock()
		return child, nil
	}
	e, _ := fs.baseEntryLocked(dir, name)
	fs.mu.RUnlock()
	if e == nil {
		return nil, errno.ENOENT
	}
	// The name resolves into the base image: upgrade to the write lock
	// and materialize (re-checking, since the namespace may have moved
	// between the two lock acquisitions).
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := fs.childLocked(dir, name)
	if !ok {
		return nil, errno.ENOENT
	}
	return child, nil
}

// Exists reports whether dir has an entry called name.
func (fs *FS) Exists(dir *Vnode, name string) bool {
	_, err := fs.Lookup(dir, name)
	return err == nil
}

// Create makes a new regular file in dir.
func (fs *FS) Create(dir *Vnode, name string, mode uint16, uid, gid int) (*Vnode, error) {
	return fs.createNode(dir, name, TypeFile, mode, uid, gid, "")
}

// Mkdir makes a new directory in dir.
func (fs *FS) Mkdir(dir *Vnode, name string, mode uint16, uid, gid int) (*Vnode, error) {
	return fs.createNode(dir, name, TypeDir, mode, uid, gid, "")
}

// Symlink makes a new symbolic link in dir pointing at target.
func (fs *FS) Symlink(dir *Vnode, name, target string, uid, gid int) (*Vnode, error) {
	return fs.createNode(dir, name, TypeSymlink, 0o777, uid, gid, target)
}

// Mkdev makes a character device in dir backed by ops.
func (fs *FS) Mkdev(dir *Vnode, name string, mode uint16, uid, gid int, ops DeviceOps) (*Vnode, error) {
	v, err := fs.createNode(dir, name, TypeCharDev, mode, uid, gid, "")
	if err != nil {
		return nil, err
	}
	v.dev = ops
	return v, nil
}

func (fs *FS) createNode(dir *Vnode, name string, typ VnodeType, mode uint16, uid, gid int, target string) (*Vnode, error) {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return nil, errno.ENOTDIR
	}
	if err := validCreateName(name); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := dir.children[name]; exists {
		return nil, errno.EEXIST
	}
	if e, _ := fs.baseEntryLocked(dir, name); e != nil {
		return nil, errno.EEXIST
	}
	v := fs.newVnode(typ, mode, uid, gid)
	if typ == TypeSymlink {
		v.data = []byte(target)
	}
	fs.installLocked(dir, name, v)
	v.parent = dir
	v.name = name
	if typ == TypeDir {
		dir.nlink++
	}
	dir.dmu.Lock()
	dir.mtime = fs.now()
	dir.dmu.Unlock()
	fs.noteVnode(v)
	if fs.jwin.Load() > 0 {
		if dpath, ok := fs.pathOfLocked(dir); ok {
			fs.journalTouch(v, joinPath(dpath, name))
		}
	}
	return v, nil
}

// Link installs a new hard link to file under dir/name. Directories
// cannot be hard-linked.
func (fs *FS) Link(dir *Vnode, name string, file *Vnode) error {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return errno.ENOTDIR
	}
	if file.IsDir() {
		return errno.EPERM
	}
	if err := validCreateName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := dir.children[name]; exists {
		return errno.EEXIST
	}
	if e, _ := fs.baseEntryLocked(dir, name); e != nil {
		return errno.EEXIST
	}
	fs.installLocked(dir, name, file)
	file.nlink++
	// The lookup cache records the most recent place the file was
	// reachable; keep the original parent if still linked there.
	if file.parent == nil || file.parent.children[file.name] != file {
		file.parent = dir
		file.name = name
	}
	fs.noteVnode(file)
	if fs.base != nil {
		// Capture emits each modified vnode at one cached path; a dir
		// that gained a hard link re-emits its direct children so the
		// alias is not lost in a snapshot.
		dir.relist = true
		fs.noteVnode(dir)
	}
	if fs.jwin.Load() > 0 {
		if dpath, ok := fs.pathOfLocked(dir); ok {
			fs.journalTouch(nil, joinPath(dpath, name))
		}
	}
	return nil
}

// Unlink removes the entry dir/name. Removing a directory requires it to
// be empty; rmdir must be true for directories and false for files,
// matching unlinkat(2)'s AT_REMOVEDIR flag split.
func (fs *FS) Unlink(dir *Vnode, name string, rmdir bool) error {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return errno.ENOTDIR
	}
	if name == "." || name == ".." {
		return errno.EINVAL
	}
	if !ValidName(name) {
		return errno.EINVAL
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := fs.childLocked(dir, name)
	if !ok {
		return errno.ENOENT
	}
	if child.IsDir() {
		if !rmdir {
			return errno.EISDIR
		}
		if !fs.dirEmptyLocked(child) {
			return errno.ENOTEMPTY
		}
		dir.nlink--
	} else if rmdir {
		return errno.ENOTDIR
	}
	fs.removeNameLocked(dir, name)
	child.nlink--
	if child.parent == dir && child.name == name {
		child.parent = nil // no longer reachable here; path cache misses
	}
	if fs.jwin.Load() > 0 {
		if dpath, ok := fs.pathOfLocked(dir); ok {
			fs.journalTouch(nil, joinPath(dpath, name))
		}
	}
	return nil
}

// UnlinkIfSame removes dir/name only if it still refers to file,
// implementing the TOCTOU-free funlinkat(2) the SHILL kernel module adds
// (§3.1.3).
func (fs *FS) UnlinkIfSame(dir *Vnode, name string, file *Vnode) error {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return errno.ENOTDIR
	}
	if !ValidName(name) || name == "." || name == ".." {
		return errno.EINVAL
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := fs.childLocked(dir, name)
	if !ok {
		return errno.ENOENT
	}
	if child != file {
		return errno.EINVAL
	}
	if child.IsDir() {
		return errno.EISDIR
	}
	fs.removeNameLocked(dir, name)
	child.nlink--
	if child.parent == dir && child.name == name {
		child.parent = nil
	}
	if fs.jwin.Load() > 0 {
		if dpath, ok := fs.pathOfLocked(dir); ok {
			fs.journalTouch(nil, joinPath(dpath, name))
		}
	}
	return nil
}

// Rename moves srcDir/srcName to dstDir/dstName, replacing a compatible
// existing target as rename(2) does.
func (fs *FS) Rename(srcDir *Vnode, srcName string, dstDir *Vnode, dstName string) error {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !srcDir.IsDir() || !dstDir.IsDir() {
		return errno.ENOTDIR
	}
	if !ValidName(srcName) || srcName == "." || srcName == ".." {
		return errno.EINVAL
	}
	if err := validCreateName(dstName); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	src, ok := fs.childLocked(srcDir, srcName)
	if !ok {
		return errno.ENOENT
	}
	// A directory may not be moved into its own subtree.
	if src.IsDir() {
		for d := dstDir; ; d = d.parent {
			if d == src {
				return errno.EINVAL
			}
			if d == fs.root {
				break
			}
		}
	}
	if dst, exists := fs.childLocked(dstDir, dstName); exists {
		if dst == src {
			return nil
		}
		if dst.IsDir() {
			if !src.IsDir() {
				return errno.EISDIR
			}
			if !fs.dirEmptyLocked(dst) {
				return errno.ENOTEMPTY
			}
			dstDir.nlink--
		} else if src.IsDir() {
			return errno.ENOTDIR
		}
		dst.nlink--
		if dst.parent == dstDir && dst.name == dstName {
			dst.parent = nil
		}
		fs.removeNameLocked(dstDir, dstName)
	}
	fs.removeNameLocked(srcDir, srcName)
	fs.installLocked(dstDir, dstName, src)
	if src.IsDir() {
		srcDir.nlink--
		dstDir.nlink++
	}
	src.parent = dstDir
	src.name = dstName
	fs.noteVnode(src)
	if fs.jwin.Load() > 0 {
		// journalSubtreeLocked builds paths from the given prefix and
		// the subtree's structure, so it can record both the vacated
		// and the new locations after the move.
		if spath, ok := fs.pathOfLocked(srcDir); ok {
			fs.journalSubtreeLocked(src, joinPath(spath, srcName))
		}
		if dpath, ok := fs.pathOfLocked(dstDir); ok {
			fs.journalSubtreeLocked(src, joinPath(dpath, dstName))
		}
	}
	return nil
}

// ReadDir returns the sorted entry names of dir (excluding "." and "..").
func (fs *FS) ReadDir(dir *Vnode) ([]string, error) {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	if !dir.IsDir() {
		return nil, errno.ENOTDIR
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	names = append(names, fs.visibleBaseNamesLocked(dir)...)
	sort.Strings(names)
	return names, nil
}

// PathOf returns an accessible absolute path for v from the lookup
// cache, or "" and false if v is no longer reachable. It backs the
// path(2) syscall the SHILL module adds (§3.1.3).
func (fs *FS) PathOf(v *Vnode) (string, bool) {
	defer fs.ops.End(trace.OpVFS, fs.ops.Begin(trace.OpVFS))
	return fs.pathOf(v)
}

// pathOf is PathOf without op accounting, for internal hooks.
func (fs *FS) pathOf(v *Vnode) (string, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.pathOfLocked(v)
}

// pathOfLocked resolves v's cached path. Caller holds fs.mu.
func (fs *FS) pathOfLocked(v *Vnode) (string, bool) {
	if v == fs.root {
		return "/", true
	}
	var parts []string
	for cur := v; cur != fs.root; {
		p := cur.parent
		if p == nil || p.children[cur.name] != cur {
			return "", false
		}
		parts = append(parts, cur.name)
		cur = p
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/"), true
}

// Parent returns v's last-known parent directory (root for the root).
func (fs *FS) Parent(v *Vnode) *Vnode {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if v.parent == nil {
		return nil
	}
	return v.parent
}

// --- image-building helpers (host-side, no access control) ---

// MustResolve walks an absolute slash-separated path from the root,
// following no symlinks, and panics if any component is missing. It is a
// test/image-building convenience only.
func (fs *FS) MustResolve(path string) *Vnode {
	v, err := fs.Resolve(path)
	if err != nil {
		panic("vfs.MustResolve " + path + ": " + err.Error())
	}
	return v
}

// Resolve walks an absolute path from the root without following
// symlinks and without access checks (image building and tests only).
func (fs *FS) Resolve(path string) (*Vnode, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, errno.EINVAL
	}
	cur := fs.root
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		next, err := fs.Lookup(cur, comp)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// MkdirAll creates every missing directory along an absolute path and
// returns the final directory (image building only).
func (fs *FS) MkdirAll(path string, mode uint16, uid, gid int) (*Vnode, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, errno.EINVAL
	}
	cur := fs.root
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		next, err := fs.Lookup(cur, comp)
		if err == nil {
			if !next.IsDir() {
				return nil, errno.ENOTDIR
			}
			cur = next
			continue
		}
		next, err = fs.Mkdir(cur, comp, mode, uid, gid)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// WriteFile creates (or replaces the contents of) the file at an
// absolute path, creating parent directories as needed (image building
// only).
func (fs *FS) WriteFile(path string, data []byte, mode uint16, uid, gid int) (*Vnode, error) {
	dirPath, name := splitPath(path)
	dir, err := fs.MkdirAll(dirPath, 0o755, uid, gid)
	if err != nil {
		return nil, err
	}
	v, err := fs.Lookup(dir, name)
	if err != nil {
		v, err = fs.Create(dir, name, mode, uid, gid)
		if err != nil {
			return nil, err
		}
	}
	v.SetBytes(data)
	return v, nil
}

func splitPath(path string) (dir, name string) {
	path = strings.TrimRight(path, "/")
	idx := strings.LastIndex(path, "/")
	if idx <= 0 {
		return "/", strings.TrimPrefix(path, "/")
	}
	return path[:idx], path[idx+1:]
}

// Walk visits every vnode under dir in depth-first order, invoking fn
// with the vnode's absolute path. Used by image verification and tests.
func (fs *FS) Walk(dir *Vnode, fn func(path string, v *Vnode)) {
	path, ok := fs.PathOf(dir)
	if !ok {
		return
	}
	fs.walk(path, dir, fn)
}

// WalkPrune visits vnodes under dir in depth-first order. fn returns
// whether to descend into the vnode's children, letting callers skip
// whole subtrees instead of filtering a full walk's results.
func (fs *FS) WalkPrune(dir *Vnode, fn func(path string, v *Vnode) bool) {
	path, ok := fs.PathOf(dir)
	if !ok {
		return
	}
	fs.walkPrune(path, dir, fn)
}

func (fs *FS) walkPrune(path string, v *Vnode, fn func(string, *Vnode) bool) {
	if !fn(path, v) || !v.IsDir() {
		return
	}
	names, _ := fs.ReadDir(v)
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	for _, name := range names {
		child, err := fs.Lookup(v, name)
		if err == nil {
			fs.walkPrune(prefix+name, child, fn)
		}
	}
}

func (fs *FS) walk(path string, v *Vnode, fn func(string, *Vnode)) {
	fn(path, v)
	if !v.IsDir() {
		return
	}
	names, _ := fs.ReadDir(v)
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	for _, name := range names {
		child, err := fs.Lookup(v, name)
		if err == nil {
			fs.walk(prefix+name, child, fn)
		}
	}
}
