// Package vfs is the in-memory filesystem substrate standing in for the
// FreeBSD VFS layer the paper's kernel module hooks into. It supplies
// vnodes (regular files, directories, symlinks, character devices),
// classic UNIX discretionary access control, hard links, a lookup cache
// supporting the SHILL module's path(2) reverse lookup, and anonymous
// pipes. No mandatory access control happens here: the simulated kernel
// (internal/kernel) invokes the MAC framework around these primitives,
// exactly as FreeBSD's syscall layer wraps its VFS.
package vfs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/trace"
)

// VnodeType distinguishes the kinds of filesystem objects.
type VnodeType int

// Vnode types.
const (
	TypeFile VnodeType = iota
	TypeDir
	TypeSymlink
	TypeCharDev
)

func (t VnodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	case TypeCharDev:
		return "chardev"
	}
	return "unknown"
}

// DeviceOps is implemented by character-device backends (e.g. /dev/null,
// a pseudo-terminal). The MAC framework does not interpose on these reads
// and writes — the paper's §3.2.3 limitation — so the kernel calls them
// without consulting the framework.
type DeviceOps interface {
	DevRead(p []byte) (int, error)
	DevWrite(p []byte) (int, error)
}

// Mode bits follow the UNIX convention (owner/group/other rwx).
const (
	ModeRead  = 4
	ModeWrite = 2
	ModeExec  = 1
)

// Stat is the metadata snapshot returned by stat-family syscalls.
type Stat struct {
	Ino   uint64
	Type  VnodeType
	Mode  uint16
	UID   int
	GID   int
	Nlink int
	Size  int64
	Atime time.Time
	Mtime time.Time
	Ctime time.Time
}

// Vnode is an in-memory filesystem object. Namespace fields (children,
// parent, name, nlink) are guarded by the owning FS's namespace lock;
// data is guarded by the vnode's own lock so concurrent I/O on distinct
// files does not contend.
type Vnode struct {
	ino uint64
	typ VnodeType
	fs  *FS

	// Namespace state, guarded by fs.mu.
	children map[string]*Vnode // directories only
	parent   *Vnode            // last-known parent (lookup cache)
	name     string            // last-known name within parent
	nlink    int

	// Layering state (see cow.go). basePath is the path this vnode's
	// content lives at inside fs.base ("" when not base-backed); wh
	// records whited-out base child names of a directory; opaque marks
	// a vnode that replaced a base path entirely. All guarded by fs.mu.
	basePath string
	wh       map[string]struct{}
	opaque   bool
	relist   bool // dir gained a hard link; capture re-emits its children

	// cowData, guarded by dmu, marks file/symlink data that still
	// aliases an immutable base layer; mutators copy before writing.
	cowData bool

	// noted flags membership in fs.modified (the dirty set).
	noted atomic.Bool

	// Journal dedup state, guarded by fs.jmu.
	jpath string
	jpos  uint64

	// Metadata, guarded by dmu.
	dmu   sync.RWMutex
	mode  uint16
	uid   int
	gid   int
	atime time.Time
	mtime time.Time
	ctime time.Time
	data  []byte // files: contents; symlinks: target path

	dev DeviceOps // character devices only

	label mac.Label
}

// MACLabel returns the vnode's MAC label.
func (v *Vnode) MACLabel() *mac.Label { return &v.label }

// Ino returns the vnode's inode number.
func (v *Vnode) Ino() uint64 { return v.ino }

// Type returns the vnode's type.
func (v *Vnode) Type() VnodeType { return v.typ }

// IsDir reports whether the vnode is a directory.
func (v *Vnode) IsDir() bool { return v.typ == TypeDir }

// IsFile reports whether the vnode is a regular file.
func (v *Vnode) IsFile() bool { return v.typ == TypeFile }

// Device returns the device backend for character devices, or nil.
func (v *Vnode) Device() DeviceOps { return v.dev }

// Stat returns a metadata snapshot.
func (v *Vnode) Stat() Stat {
	v.fs.mu.RLock()
	nlink := v.nlink
	v.fs.mu.RUnlock()
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return Stat{
		Ino:   v.ino,
		Type:  v.typ,
		Mode:  v.mode,
		UID:   v.uid,
		GID:   v.gid,
		Nlink: nlink,
		Size:  int64(len(v.data)),
		Atime: v.atime,
		Mtime: v.mtime,
		Ctime: v.ctime,
	}
}

// Size returns the current data length.
func (v *Vnode) Size() int64 {
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return int64(len(v.data))
}

// Accessible implements discretionary access control: it reports whether
// the identity (uid, gid) may access the vnode with the requested
// permission bits (a combination of ModeRead/ModeWrite/ModeExec).
// UID 0 bypasses DAC for everything except execute, which requires at
// least one execute bit, matching UNIX semantics.
func (v *Vnode) Accessible(uid, gid int, want uint16) bool {
	v.dmu.RLock()
	mode, vuid, vgid := v.mode, v.uid, v.gid
	v.dmu.RUnlock()
	if uid == 0 {
		if want&ModeExec != 0 && mode&0o111 == 0 {
			return false
		}
		return true
	}
	var granted uint16
	switch {
	case uid == vuid:
		granted = (mode >> 6) & 7
	case gid == vgid:
		granted = (mode >> 3) & 7
	default:
		granted = mode & 7
	}
	return granted&want == want
}

// ensureOwnedLocked breaks the copy-on-write alias to a base layer's
// bytes before any in-place mutation. Caller holds dmu for writing.
func (v *Vnode) ensureOwnedLocked() {
	if v.cowData {
		v.data = append([]byte(nil), v.data...)
		v.cowData = false
	}
}

// ReadAt reads into p starting at offset off, returning the byte count.
// Reading at or past EOF returns 0 bytes and no error (the kernel layer
// translates that to EOF as read(2) does).
func (v *Vnode) ReadAt(p []byte, off int64) (int, error) {
	defer v.fs.ops.End(trace.OpVFS, v.fs.ops.Begin(trace.OpVFS))
	if v.typ == TypeDir {
		return 0, errno.EISDIR
	}
	if v.typ == TypeCharDev {
		return v.dev.DevRead(p)
	}
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.atime = v.fs.now()
	if off >= int64(len(v.data)) {
		return 0, nil
	}
	n := copy(p, v.data[off:])
	return n, nil
}

// WriteAt writes p at offset off, growing the file as needed.
func (v *Vnode) WriteAt(p []byte, off int64) (int, error) {
	defer v.fs.ops.End(trace.OpVFS, v.fs.ops.Begin(trace.OpVFS))
	if v.typ == TypeDir {
		return 0, errno.EISDIR
	}
	if v.typ == TypeCharDev {
		return v.dev.DevWrite(p)
	}
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	if need := off + int64(len(p)); need > int64(len(v.data)) {
		grown := make([]byte, need)
		copy(grown, v.data)
		v.data = grown
		v.cowData = false
	} else {
		v.ensureOwnedLocked()
	}
	copy(v.data[off:], p)
	v.mtime = v.fs.now()
	return len(p), nil
}

// Append writes p at end-of-file and returns the offset it was written
// at, providing the atomic O_APPEND behaviour SHILL's append builtin and
// grade-log isolation rely on.
func (v *Vnode) Append(p []byte) (int64, error) {
	defer v.fs.ops.End(trace.OpVFS, v.fs.ops.Begin(trace.OpVFS))
	if v.typ == TypeDir {
		return 0, errno.EISDIR
	}
	if v.typ == TypeCharDev {
		_, err := v.dev.DevWrite(p)
		return 0, err
	}
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.ensureOwnedLocked()
	off := int64(len(v.data))
	v.data = append(v.data, p...)
	v.mtime = v.fs.now()
	return off, nil
}

// Truncate sets the file length.
func (v *Vnode) Truncate(size int64) error {
	if v.typ != TypeFile {
		return errno.EINVAL
	}
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.ensureOwnedLocked()
	switch {
	case size < 0:
		return errno.EINVAL
	case size <= int64(len(v.data)):
		v.data = v.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, v.data)
		v.data = grown
	}
	v.mtime = v.fs.now()
	return nil
}

// Bytes returns a copy of the file contents.
func (v *Vnode) Bytes() []byte {
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	out := make([]byte, len(v.data))
	copy(out, v.data)
	return out
}

// SetBytes replaces the file contents (used when building filesystem
// images; goes through no access checks).
func (v *Vnode) SetBytes(p []byte) {
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.data = make([]byte, len(p))
	copy(v.data, p)
	v.cowData = false
	v.mtime = v.fs.now()
}

// Readlink returns a symlink's target.
func (v *Vnode) Readlink() (string, error) {
	if v.typ != TypeSymlink {
		return "", errno.EINVAL
	}
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return string(v.data), nil
}

// Mode returns the permission bits.
func (v *Vnode) Mode() uint16 {
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return v.mode
}

// Chmod sets the permission bits.
func (v *Vnode) Chmod(mode uint16) {
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.mode = mode & 0o7777
	v.ctime = v.fs.now()
}

// Chown sets the owner and group.
func (v *Vnode) Chown(uid, gid int) {
	v.fs.noteMutate(v)
	v.dmu.Lock()
	defer v.dmu.Unlock()
	v.uid, v.gid = uid, gid
	v.ctime = v.fs.now()
}

// Owner returns the owning uid and gid.
func (v *Vnode) Owner() (uid, gid int) {
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return v.uid, v.gid
}
