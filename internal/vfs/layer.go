package vfs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
)

// LayerEntry is one path's state inside an immutable filesystem layer.
// Data is file contents (TypeFile) or the link target (TypeSymlink) and
// must never be mutated once the layer is built: restored filesystems
// alias it copy-on-write.
type LayerEntry struct {
	Type     VnodeType
	Mode     uint16
	UID      int
	GID      int
	Data     []byte
	Whiteout bool // path (and its subtree) is deleted relative to lower layers
	Opaque   bool // entry fully replaces the lower entry, hiding its subtree
}

// Layer is an immutable set of absolute-path → entry mappings, the unit
// of sharing between machine images. Layers stack overlay-style: a
// flattened view applies each layer bottom to top, with whiteout entries
// deleting lower paths and opaque entries hiding lower subtrees before
// re-adding their own content.
type Layer struct {
	entries  map[string]*LayerEntry
	kids     map[string][]string // dir path → sorted child names
	hashOnce sync.Once
	hash     string
}

// Len returns the number of entries (including whiteouts).
func (l *Layer) Len() int { return len(l.entries) }

// Entry returns the entry at path, or nil. Whiteout entries are
// returned too; callers that want only visible content must check
// e.Whiteout.
func (l *Layer) Entry(path string) *LayerEntry { return l.entries[path] }

// ChildNames returns the sorted child names recorded under the
// directory path. The slice is owned by the layer; do not mutate it.
func (l *Layer) ChildNames(path string) []string { return l.kids[path] }

// Paths returns every entry path in sorted order.
func (l *Layer) Paths() []string {
	paths := make([]string, 0, len(l.entries))
	for p := range l.entries {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// dirChildDirs counts the visible directory entries directly under path,
// used to seed nlink when a base directory is materialized.
func (l *Layer) dirChildDirs(path string) int {
	n := 0
	for _, name := range l.kids[path] {
		if e := l.entries[joinPath(path, name)]; e != nil && !e.Whiteout && e.Type == TypeDir {
			n++
		}
	}
	return n
}

// Hash returns a stable content hash of the layer, computed lazily.
func (l *Layer) Hash() string {
	l.hashOnce.Do(func() {
		h := sha256.New()
		var num [8]byte
		writeStr := func(s string) {
			binary.LittleEndian.PutUint64(num[:], uint64(len(s)))
			h.Write(num[:])
			h.Write([]byte(s))
		}
		for _, path := range l.Paths() {
			e := l.entries[path]
			writeStr(path)
			binary.LittleEndian.PutUint64(num[:], uint64(e.Type))
			h.Write(num[:])
			binary.LittleEndian.PutUint64(num[:], uint64(e.Mode))
			h.Write(num[:])
			binary.LittleEndian.PutUint64(num[:], uint64(e.UID))
			h.Write(num[:])
			binary.LittleEndian.PutUint64(num[:], uint64(e.GID))
			h.Write(num[:])
			flags := uint64(0)
			if e.Whiteout {
				flags |= 1
			}
			if e.Opaque {
				flags |= 2
			}
			binary.LittleEndian.PutUint64(num[:], flags)
			h.Write(num[:])
			binary.LittleEndian.PutUint64(num[:], uint64(len(e.Data)))
			h.Write(num[:])
			h.Write(e.Data)
		}
		l.hash = hex.EncodeToString(h.Sum(nil))
	})
	return l.hash
}

// LayerBuilder accumulates entries for an immutable Layer.
type LayerBuilder struct {
	entries map[string]*LayerEntry
}

// NewLayerBuilder returns an empty builder.
func NewLayerBuilder() *LayerBuilder {
	return &LayerBuilder{entries: make(map[string]*LayerEntry)}
}

// Add records an entry at the cleaned absolute path, replacing any
// earlier entry (including whiteouts) at that path.
func (b *LayerBuilder) Add(path string, e LayerEntry) {
	b.entries[cleanPath(path)] = &e
}

// AddWhiteout records the deletion of path relative to lower layers.
// It does not override a real entry already recorded at path.
func (b *LayerBuilder) AddWhiteout(path string) {
	path = cleanPath(path)
	if _, ok := b.entries[path]; ok {
		return
	}
	b.entries[path] = &LayerEntry{Whiteout: true}
}

// Len returns the number of entries recorded so far.
func (b *LayerBuilder) Len() int { return len(b.entries) }

// Build seals the builder into an immutable Layer. The builder must not
// be reused afterwards.
func (b *LayerBuilder) Build() *Layer {
	l := &Layer{entries: b.entries}
	l.kids = childIndex(b.entries)
	b.entries = nil
	return l
}

func childIndex(entries map[string]*LayerEntry) map[string][]string {
	kids := make(map[string][]string)
	for path, e := range entries {
		if e.Whiteout || path == "/" {
			continue
		}
		dir, name := splitPath(path)
		kids[dir] = append(kids[dir], name)
	}
	for dir := range kids {
		sort.Strings(kids[dir])
	}
	return kids
}

// FlattenLayers merges a bottom-to-top stack into one layer: whiteouts
// and opaque entries delete the lower subtree at their path, then the
// layer's own content is applied. Entry values are shared with the
// input layers, never copied.
func FlattenLayers(layers []*Layer) *Layer {
	merged := make(map[string]*LayerEntry)
	for _, l := range layers {
		var prefixes []string
		for path, e := range l.entries {
			if e.Whiteout || e.Opaque {
				prefixes = append(prefixes, path)
			}
		}
		if len(prefixes) > 0 {
			for path := range merged {
				for _, p := range prefixes {
					if path == p || strings.HasPrefix(path, withSlash(p)) {
						delete(merged, path)
						break
					}
				}
			}
		}
		for path, e := range l.entries {
			if !e.Whiteout {
				merged[path] = e
			}
		}
	}
	fl := &Layer{entries: merged}
	fl.kids = childIndex(merged)
	return fl
}

func withSlash(p string) string {
	if p == "/" {
		return "/"
	}
	return p + "/"
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

func cleanPath(path string) string {
	if path == "" {
		return "/"
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	if len(path) > 1 {
		path = strings.TrimRight(path, "/")
		if path == "" {
			path = "/"
		}
	}
	return path
}
