package binaries

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/netstack"
)

// The wire protocol is a miniature HTTP:
//
//	request:  "GET <path>\n"
//	response: "OK <size>\n" + bytes, or "ERR <message>\n"

// curlMain downloads a URL to a file (-o) or stdout. It exercises the
// socket path of the sandbox: without a socket-factory capability the
// connect fails with EACCES — the package-management case study's
// guarantee that "only the function for downloading the source code can
// access the network" (§4.1).
func curlMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	outPath := ""
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		if args[0] == "-o" && len(args) > 1 {
			outPath = args[1]
			args = args[2:]
			continue
		}
		if args[0] == "-s" {
			args = args[1:]
			continue
		}
		stderr(p, "curl: unknown flag %s\n", args[0])
		return 2
	}
	if len(args) != 1 {
		stderr(p, "usage: curl [-o file] url\n")
		return 2
	}
	host, port, path, err := parseURL(args[0])
	if err != nil {
		stderr(p, "curl: %v\n", err)
		return 3
	}
	_ = host // the loopback stack has one host

	sock, err := p.Socket(netstack.DomainIP)
	if err != nil {
		stderr(p, "curl: socket: %v\n", err)
		return 7
	}
	defer p.Close(sock)
	if err := p.Connect(sock, port); err != nil {
		stderr(p, "curl: connect: %v\n", err)
		return 7
	}
	if _, err := p.Send(sock, []byte("GET "+path+"\n")); err != nil {
		stderr(p, "curl: send: %v\n", err)
		return 55
	}
	header, rest, err := readLine(p, sock)
	if err != nil {
		stderr(p, "curl: recv: %v\n", err)
		return 56
	}
	var size int
	if _, err := fmt.Sscanf(header, "OK %d", &size); err != nil {
		stderr(p, "curl: server: %s\n", header)
		return 22
	}
	body := rest
	buf := make([]byte, 64*1024)
	for len(body) < size {
		n, err := p.Recv(sock, buf)
		if err != nil {
			stderr(p, "curl: recv: %v\n", err)
			return 56
		}
		if n == 0 {
			break
		}
		body = append(body, buf[:n]...)
	}
	if len(body) < size {
		stderr(p, "curl: short read: %d of %d bytes\n", len(body), size)
		return 18
	}
	body = body[:size]
	if outPath == "" {
		p.Write(1, body)
		return 0
	}
	if err := writeFile(p, outPath, body, 0o644); err != nil {
		stderr(p, "curl: %s: %v\n", outPath, err)
		return 23
	}
	return 0
}

func parseURL(url string) (host, port, path string, err error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return "", "", "", fmt.Errorf("unsupported url %q", url)
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		host, path = rest, "/"
	} else {
		host, path = rest[:slash], rest[slash:]
	}
	port = "80"
	if c := strings.IndexByte(host, ':'); c >= 0 {
		port = host[c+1:]
		host = host[:c]
	}
	return host, port, path, nil
}

func readLine(p *kernel.Proc, sock int) (line string, rest []byte, err error) {
	var acc []byte
	buf := make([]byte, 4096)
	for {
		if i := indexByte(acc, '\n'); i >= 0 {
			return string(acc[:i]), acc[i+1:], nil
		}
		n, err := p.Recv(sock, buf)
		if err != nil {
			return "", nil, err
		}
		if n == 0 {
			return string(acc), nil, nil
		}
		acc = append(acc, buf[:n]...)
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// origindMain is the origin server the download benchmark fetches from:
// it serves files below its docroot (argv[1]) on port 80 until it
// receives "GET /__shutdown". It runs outside any sandbox, standing in
// for the remote half of the Internet the paper's curl talked to.
func origindMain(p *kernel.Proc, argv []string) int {
	docroot := "/srv/origin"
	if len(argv) > 1 {
		docroot = argv[1]
	}
	port := "80"
	if len(argv) > 2 {
		port = argv[2]
	}
	l, err := p.Socket(netstack.DomainIP)
	if err != nil {
		stderr(p, "origind: socket: %v\n", err)
		return 1
	}
	if err := p.Bind(l, port); err != nil {
		stderr(p, "origind: bind: %v\n", err)
		return 1
	}
	if err := p.Listen(l); err != nil {
		stderr(p, "origind: listen: %v\n", err)
		return 1
	}
	// Each connection is served concurrently so a stalled client can
	// never wedge the shutdown request.
	shutdown := make(chan struct{})
	for {
		conn, err := p.Accept(l)
		if err != nil {
			return 0 // listener closed
		}
		go func(conn int) {
			line, _, err := readLine(p, conn)
			if err != nil {
				p.Close(conn)
				return
			}
			path := strings.TrimSpace(strings.TrimPrefix(line, "GET "))
			if path == "/__shutdown" {
				p.Send(conn, []byte("OK 0\n"))
				p.Close(conn)
				close(shutdown)
				p.Close(l) // unblocks Accept
				return
			}
			data, err := readFile(p, joinPath(docroot, strings.TrimPrefix(path, "/")))
			if err != nil {
				p.Send(conn, []byte("ERR not found\n"))
			} else {
				p.Send(conn, []byte(fmt.Sprintf("OK %d\n", len(data))))
				p.Send(conn, data)
			}
			p.Close(conn)
		}(conn)
		select {
		case <-shutdown:
			return 0
		default:
		}
	}
}
