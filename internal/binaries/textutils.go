package binaries

import (
	"strings"

	"repro/internal/kernel"
	"repro/internal/vfs"
)

// grepMain searches files (or stdin) for a fixed substring pattern,
// supporting the flags the Find case study needs: -H (print file name)
// and -l (names only). The paper's task greps 15,376 .c files for
// "mac_" (§4.1).
func grepMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	printName, namesOnly, countOnly := false, false, false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-H":
			printName = true
		case "-l":
			namesOnly = true
		case "-c":
			countOnly = true
		default:
			stderr(p, "grep: unknown flag %s\n", args[0])
			return 2
		}
		args = args[1:]
	}
	if len(args) == 0 {
		stderr(p, "usage: grep [-H|-l|-c] pattern [file...]\n")
		return 2
	}
	pattern := args[0]
	files := args[1:]

	matched := false
	grepOne := func(name string, data []byte) {
		count := 0
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.Contains(line, pattern) {
				continue
			}
			matched = true
			count++
			if namesOnly {
				stdout(p, "%s\n", name)
				return
			}
			if countOnly {
				continue
			}
			if printName && name != "" {
				stdout(p, "%s:%s\n", name, line)
			} else {
				stdout(p, "%s\n", line)
			}
		}
		if countOnly {
			if name != "" {
				stdout(p, "%s:%d\n", name, count)
			} else {
				stdout(p, "%d\n", count)
			}
		}
	}

	if len(files) == 0 {
		data, err := readAllFD(p, 0)
		if err != nil {
			stderr(p, "grep: stdin: %v\n", err)
			return 2
		}
		grepOne("", data)
	}
	status := 0
	for _, f := range files {
		data, err := readFile(p, f)
		if err != nil {
			stderr(p, "grep: %s: %v\n", f, err)
			status = 2
			continue
		}
		grepOne(f, data)
	}
	if status != 0 {
		return status
	}
	if matched {
		return 0
	}
	return 1
}

// findMain walks directories, filtering by -name glob and optionally
// executing a command per match via -exec cmd {} \; — the shape of the
// paper's simpler Find case study:
//
//	find /usr/src -name "*.c" -exec grep -H mac_ {} \;
func findMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	var roots []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		roots = append(roots, args[0])
		args = args[1:]
	}
	if len(roots) == 0 {
		roots = []string{"."}
	}
	pattern := ""
	var execCmd []string
	typeFilter := byte(0)
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-name":
			i++
			if i >= len(args) {
				stderr(p, "find: -name needs an argument\n")
				return 64
			}
			pattern = args[i]
		case "-type":
			i++
			if i >= len(args) || (args[i] != "f" && args[i] != "d") {
				stderr(p, "find: -type needs f or d\n")
				return 64
			}
			typeFilter = args[i][0]
		case "-exec":
			for j := i + 1; j < len(args); j++ {
				if args[j] == ";" || args[j] == "\\;" {
					execCmd = args[i+1 : j]
					i = j
					break
				}
			}
			if execCmd == nil {
				stderr(p, "find: -exec not terminated with ;\n")
				return 64
			}
		default:
			stderr(p, "find: unknown predicate %s\n", args[i])
			return 64
		}
	}

	status := 0
	var visit func(path string)
	visit = func(path string) {
		st, err := p.FStatAt(kernel.AtCWD, path, false)
		if err != nil {
			stderr(p, "find: %s: %v\n", path, err)
			status = 1
			return
		}
		dir := st.Type == vfs.TypeDir
		match := (pattern == "" || matchGlob(pattern, baseName(path))) &&
			(typeFilter == 0 || (typeFilter == 'd') == dir)
		if match {
			if execCmd != nil {
				cmd := make([]string, len(execCmd))
				for i, c := range execCmd {
					if c == "{}" {
						cmd[i] = path
					} else {
						cmd[i] = c
					}
				}
				if _, err := runCommand(p, cmd); err != nil {
					stderr(p, "find: exec %s: %v\n", cmd[0], err)
					status = 1
				}
			} else {
				stdout(p, "%s\n", path)
			}
		}
		if !dir {
			return
		}
		fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead|kernel.ODirectory, 0)
		if err != nil {
			stderr(p, "find: %s: %v\n", path, err)
			status = 1
			return
		}
		names, err := p.ReadDir(fd)
		p.Close(fd)
		if err != nil {
			status = 1
			return
		}
		for _, name := range names {
			visit(joinPath(path, name))
		}
	}
	for _, root := range roots {
		visit(root)
	}
	return status
}

// matchGlob matches the restricted glob language find needs: '*' matches
// any run of characters, '?' one character; no character classes.
func matchGlob(pattern, name string) bool {
	// Dynamic-programming match over pattern/name positions.
	pi, ni := 0, 0
	star, starN := -1, 0
	for ni < len(name) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == name[ni]):
			pi++
			ni++
		case pi < len(pattern) && pattern[pi] == '*':
			star, starN = pi, ni
			pi++
		case star >= 0:
			starN++
			ni = starN
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// diffMain compares two files line by line, printing differing lines and
// exiting 1 when they differ — enough for the grading harness to score
// submissions against expected test output.
func diffMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	quiet := false
	if len(args) > 0 && args[0] == "-q" {
		quiet = true
		args = args[1:]
	}
	if len(args) != 2 {
		stderr(p, "usage: diff [-q] file1 file2\n")
		return 2
	}
	a, err := readFile(p, args[0])
	if err != nil {
		stderr(p, "diff: %s: %v\n", args[0], err)
		return 2
	}
	b, err := readFile(p, args[1])
	if err != nil {
		stderr(p, "diff: %s: %v\n", args[1], err)
		return 2
	}
	if string(a) == string(b) {
		return 0
	}
	if quiet {
		stdout(p, "Files %s and %s differ\n", args[0], args[1])
		return 1
	}
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	max := len(al)
	if len(bl) > max {
		max = len(bl)
	}
	for i := 0; i < max; i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			if i < len(al) {
				stdout(p, "< %s\n", la)
			}
			if i < len(bl) {
				stdout(p, "> %s\n", lb)
			}
		}
	}
	return 1
}

// lddMain prints the shared libraries an executable depends on, reading
// the dependency table the registry publishes. pkg_native runs it in a
// sandbox to discover required library capabilities (§3.1.4).
func lddMain(p *kernel.Proc, argv []string) int {
	if len(argv) < 2 {
		stderr(p, "usage: ldd file\n")
		return 1
	}
	status := 0
	for _, path := range argv[1:] {
		data, err := readFile(p, path)
		if err != nil {
			stderr(p, "ldd: %s: %v\n", path, err)
			status = 1
			continue
		}
		name := binNameFromImage(data)
		if name == "" {
			stderr(p, "ldd: %s: not a dynamic executable\n", path)
			status = 1
			continue
		}
		stdout(p, "%s:\n", path)
		for _, lib := range Deps[name] {
			stdout(p, "\t%s => /lib/%s\n", lib, lib)
		}
	}
	return status
}

// binNameFromImage extracts the registered binary name from an
// executable image ("#!bin:name\n").
func binNameFromImage(data []byte) string {
	s := string(data)
	if !strings.HasPrefix(s, "#!bin:") {
		return ""
	}
	s = s[len("#!bin:"):]
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// jpeginfoMain prints information about JPEG files (the §2 running
// example). With -i it prints dimensions and size.
func jpeginfoMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	if len(args) > 0 && args[0] == "-i" {
		args = args[1:]
	}
	if len(args) == 0 {
		stderr(p, "usage: jpeginfo [-i] file...\n")
		return 1
	}
	status := 0
	for _, path := range args {
		data, err := readFile(p, path)
		if err != nil {
			stderr(p, "jpeginfo: %s: %v\n", path, err)
			status = 1
			continue
		}
		if len(data) < 4 || string(data[:4]) != "JFIF" {
			stdout(p, "%s: not a JPEG file\n", path)
			status = 1
			continue
		}
		stdout(p, "%s %d bytes JFIF N 640x480 24bit\n", path, len(data))
	}
	return status
}
