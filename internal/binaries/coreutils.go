package binaries

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
)

// catMain concatenates files (or stdin with no arguments) to stdout.
// Executing cat in a sandbox is the paper's motivating example for
// wallets: it "requires providing eight capabilities to libraries and
// configuration files in addition to capabilities for the executable
// itself and the input and output" (§2.4.1).
func catMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	if len(args) == 0 {
		data, err := readAllFD(p, 0)
		if err != nil {
			stderr(p, "cat: stdin: %v\n", err)
			return 1
		}
		p.Write(1, data)
		return 0
	}
	status := 0
	for _, path := range args {
		data, err := readFile(p, path)
		if err != nil {
			stderr(p, "cat: %s: %v\n", path, err)
			status = 1
			continue
		}
		p.Write(1, data)
	}
	return status
}

func echoMain(p *kernel.Proc, argv []string) int {
	stdout(p, "%s\n", strings.Join(argv[1:], " "))
	return 0
}

func cpMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	recursive := false
	if len(args) > 0 && args[0] == "-r" {
		recursive = true
		args = args[1:]
	}
	if len(args) != 2 {
		stderr(p, "usage: cp [-r] src dst\n")
		return 64
	}
	src, dst := args[0], args[1]
	if isDir(p, dst) {
		dst = joinPath(dst, baseName(src))
	}
	if err := copyPath(p, src, dst, recursive); err != nil {
		stderr(p, "cp: %v\n", err)
		return 1
	}
	return 0
}

func copyPath(p *kernel.Proc, src, dst string, recursive bool) error {
	if isDir(p, src) {
		if !recursive {
			return fmt.Errorf("%s is a directory (not copied)", src)
		}
		if !exists(p, dst) {
			if err := p.MkdirAt(kernel.AtCWD, dst, 0o755); err != nil {
				return err
			}
		}
		fd, err := p.OpenAt(kernel.AtCWD, src, kernel.ORead|kernel.ODirectory, 0)
		if err != nil {
			return err
		}
		names, err := p.ReadDir(fd)
		p.Close(fd)
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := copyPath(p, joinPath(src, name), joinPath(dst, name), true); err != nil {
				return err
			}
		}
		return nil
	}
	data, err := readFile(p, src)
	if err != nil {
		return err
	}
	return writeFile(p, dst, data, 0o644)
}

func mvMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	if len(args) != 2 {
		stderr(p, "usage: mv src dst\n")
		return 64
	}
	dst := args[1]
	if isDir(p, dst) {
		dst = joinPath(dst, baseName(args[0]))
	}
	if err := p.RenameAt(kernel.AtCWD, args[0], kernel.AtCWD, dst); err != nil {
		stderr(p, "mv: %v\n", err)
		return 1
	}
	return 0
}

func rmMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	recursive, force := false, false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-r", "-R":
			recursive = true
		case "-f":
			force = true
		case "-rf", "-fr":
			recursive, force = true, true
		default:
			stderr(p, "rm: unknown flag %s\n", args[0])
			return 64
		}
		args = args[1:]
	}
	status := 0
	for _, path := range args {
		if err := removePath(p, path, recursive); err != nil {
			if !force {
				stderr(p, "rm: %s: %v\n", path, err)
				status = 1
			}
		}
	}
	return status
}

func removePath(p *kernel.Proc, path string, recursive bool) error {
	if isDir(p, path) {
		if !recursive {
			return fmt.Errorf("%s: is a directory", path)
		}
		fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead|kernel.ODirectory, 0)
		if err != nil {
			return err
		}
		names, err := p.ReadDir(fd)
		p.Close(fd)
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := removePath(p, joinPath(path, name), true); err != nil {
				return err
			}
		}
		return p.UnlinkAt(kernel.AtCWD, path, true)
	}
	return p.UnlinkAt(kernel.AtCWD, path, false)
}

func mkdirMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	parents := false
	if len(args) > 0 && args[0] == "-p" {
		parents = true
		args = args[1:]
	}
	status := 0
	for _, path := range args {
		var err error
		if parents {
			err = mkdirAll(p, path)
		} else {
			err = p.MkdirAt(kernel.AtCWD, path, 0o755)
		}
		if err != nil {
			stderr(p, "mkdir: %s: %v\n", path, err)
			status = 1
		}
	}
	return status
}

func mkdirAll(p *kernel.Proc, path string) error {
	comps := strings.Split(path, "/")
	cur := ""
	if strings.HasPrefix(path, "/") {
		cur = "/"
	}
	for _, c := range comps {
		if c == "" {
			continue
		}
		cur = joinPath(cur, c)
		if exists(p, cur) {
			continue
		}
		if err := p.MkdirAt(kernel.AtCWD, cur, 0o755); err != nil {
			return err
		}
	}
	return nil
}

func lsMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	if len(args) == 0 {
		args = []string{"."}
	}
	status := 0
	for _, path := range args {
		if !isDir(p, path) {
			if exists(p, path) {
				stdout(p, "%s\n", path)
			} else {
				stderr(p, "ls: %s: no such file or directory\n", path)
				status = 1
			}
			continue
		}
		fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead|kernel.ODirectory, 0)
		if err != nil {
			stderr(p, "ls: %s: %v\n", path, err)
			status = 1
			continue
		}
		names, err := p.ReadDir(fd)
		p.Close(fd)
		if err != nil {
			stderr(p, "ls: %s: %v\n", path, err)
			status = 1
			continue
		}
		for _, name := range names {
			stdout(p, "%s\n", name)
		}
	}
	return status
}

func headMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	n := 10
	if len(args) >= 2 && args[0] == "-n" {
		fmt.Sscanf(args[1], "%d", &n)
		args = args[2:]
	}
	var data []byte
	var err error
	if len(args) == 0 {
		data, err = readAllFD(p, 0)
	} else {
		data, err = readFile(p, args[0])
	}
	if err != nil {
		stderr(p, "head: %v\n", err)
		return 1
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	stdout(p, "%s", strings.Join(lines, ""))
	return 0
}

func wcMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	var data []byte
	var err error
	name := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		data, err = readFile(p, name)
	} else if len(args) > 1 {
		name = args[1]
		data, err = readFile(p, name)
	} else {
		data, err = readAllFD(p, 0)
	}
	if err != nil {
		stderr(p, "wc: %v\n", err)
		return 1
	}
	lines := strings.Count(string(data), "\n")
	words := len(strings.Fields(string(data)))
	stdout(p, "%8d%8d%8d %s\n", lines, words, len(data), name)
	return 0
}

func touchMain(p *kernel.Proc, argv []string) int {
	status := 0
	for _, path := range argv[1:] {
		fd, err := p.OpenAt(kernel.AtCWD, path, kernel.OCreate|kernel.OWrite, 0o644)
		if err != nil {
			stderr(p, "touch: %s: %v\n", path, err)
			status = 1
			continue
		}
		p.Close(fd)
	}
	return status
}

// installMain copies a file into place with a mode, as BSD install(1)
// does; the Emacs package-management case study's install step uses it.
func installMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	mode := uint16(0o755)
	mkdirs := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-d":
			mkdirs = true
		case args[0] == "-m" && len(args) > 1:
			var m int
			fmt.Sscanf(args[1], "%o", &m)
			mode = uint16(m)
			args = args[1:]
		}
		args = args[1:]
	}
	if mkdirs {
		for _, d := range args {
			if err := mkdirAll(p, d); err != nil {
				stderr(p, "install: %s: %v\n", d, err)
				return 1
			}
		}
		return 0
	}
	if len(args) != 2 {
		stderr(p, "usage: install [-m mode] src dst | install -d dir...\n")
		return 64
	}
	src, dst := args[0], args[1]
	if isDir(p, dst) {
		dst = joinPath(dst, baseName(src))
	}
	data, err := readFile(p, src)
	if err != nil {
		stderr(p, "install: %s: %v\n", src, err)
		return 1
	}
	if err := writeFile(p, dst, data, mode); err != nil {
		stderr(p, "install: %s: %v\n", dst, err)
		return 1
	}
	p.FChmodAt(kernel.AtCWD, dst, mode)
	return 0
}
