// Package binaries implements the simulated native executables the
// paper's case studies run in SHILL sandboxes: coreutils, grep, find, a
// POSIX-ish shell, tar, curl, the OCaml toolchain, gmake, the Apache
// httpd, and support tools. Each binary is an ordinary Go function that
// performs all of its work through the simulated kernel's system calls,
// so the SHILL MAC policy confines it exactly as it would confine a real
// statically compiled program — the substitution DESIGN.md documents.
package binaries

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/vfs"
)

// Deps maps each binary to the shared libraries it links against; the
// simulated ldd prints these, and pkg_native collects capabilities for
// them (§3.1.4).
var Deps = map[string][]string{
	"cat":       {"libc.so.7"},
	"echo":      {"libc.so.7"},
	"cp":        {"libc.so.7"},
	"mv":        {"libc.so.7"},
	"rm":        {"libc.so.7"},
	"mkdir":     {"libc.so.7"},
	"ls":        {"libc.so.7"},
	"head":      {"libc.so.7"},
	"wc":        {"libc.so.7"},
	"touch":     {"libc.so.7"},
	"install":   {"libc.so.7"},
	"true":      {"libc.so.7"},
	"false":     {"libc.so.7"},
	"sh":        {"libc.so.7", "libedit.so.7"},
	"grep":      {"libc.so.7"},
	"find":      {"libc.so.7"},
	"diff":      {"libc.so.7"},
	"tar":       {"libc.so.7", "libarchive.so.6"},
	"curl":      {"libc.so.7", "libcurl.so.8", "libcrypto.so.6"},
	"ldd":       {"libc.so.7"},
	"jpeginfo":  {"libc.so.7", "libjpeg.so.8"},
	"ocamlc":    {"libc.so.7", "libm.so.5", "libocaml.so.4"},
	"ocamlrun":  {"libc.so.7", "libm.so.5", "libocaml.so.4"},
	"ocamlyacc": {"libc.so.7", "libocaml.so.4"},
	"gmake":     {"libc.so.7"},
	"cc":        {"libc.so.7", "libm.so.5"},
	"httpd":     {"libc.so.7", "libcrypto.so.6", "libpcre.so.3"},
	"ab":        {"libc.so.7", "libcrypto.so.6"},
	"configure": {"libc.so.7"},
	"origind":   {"libc.so.7"},
}

// Names returns every registered binary name, sorted.
func Names() []string {
	names := make([]string, 0, len(Deps))
	for n := range Deps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LibNames returns every library any binary depends on, sorted.
func LibNames() []string {
	set := map[string]bool{}
	for _, libs := range Deps {
		for _, l := range libs {
			set[l] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Register installs every simulated binary into the kernel's registry.
func Register(k *kernel.Kernel) {
	k.RegisterBinary("cat", catMain)
	k.RegisterBinary("echo", echoMain)
	k.RegisterBinary("cp", cpMain)
	k.RegisterBinary("mv", mvMain)
	k.RegisterBinary("rm", rmMain)
	k.RegisterBinary("mkdir", mkdirMain)
	k.RegisterBinary("ls", lsMain)
	k.RegisterBinary("head", headMain)
	k.RegisterBinary("wc", wcMain)
	k.RegisterBinary("touch", touchMain)
	k.RegisterBinary("install", installMain)
	k.RegisterBinary("true", func(*kernel.Proc, []string) int { return 0 })
	k.RegisterBinary("false", func(*kernel.Proc, []string) int { return 1 })
	k.RegisterBinary("sh", shMain)
	k.RegisterBinary("grep", grepMain)
	k.RegisterBinary("find", findMain)
	k.RegisterBinary("diff", diffMain)
	k.RegisterBinary("tar", tarMain)
	k.RegisterBinary("curl", curlMain)
	k.RegisterBinary("ldd", lddMain)
	k.RegisterBinary("jpeginfo", jpeginfoMain)
	k.RegisterBinary("ocamlc", ocamlcMain)
	k.RegisterBinary("ocamlrun", ocamlrunMain)
	k.RegisterBinary("ocamlyacc", ocamlyaccMain)
	k.RegisterBinary("gmake", gmakeMain)
	k.RegisterBinary("cc", ccMain)
	k.RegisterBinary("httpd", httpdMain)
	k.RegisterBinary("ab", abMain)
	k.RegisterBinary("configure", configureMain)
	k.RegisterBinary("origind", origindMain)
}

// --- shared helpers (each binary's "libc") ---

func stdout(p *kernel.Proc, format string, args ...any) {
	p.Write(1, []byte(fmt.Sprintf(format, args...)))
}

func stderr(p *kernel.Proc, format string, args ...any) {
	p.Write(2, []byte(fmt.Sprintf(format, args...)))
}

// readAllFD drains a descriptor.
func readAllFD(p *kernel.Proc, fd int) ([]byte, error) {
	var out []byte
	buf := make([]byte, 32*1024)
	for {
		n, err := p.Read(fd, buf)
		if n > 0 {
			out = append(out, buf[:n]...)
		}
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// readFile opens and reads a whole file by path.
func readFile(p *kernel.Proc, path string) ([]byte, error) {
	fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead, 0)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	return readAllFD(p, fd)
}

// writeFile creates/truncates and writes a whole file by path.
func writeFile(p *kernel.Proc, path string, data []byte, mode uint16) error {
	fd, err := p.OpenAt(kernel.AtCWD, path, kernel.OWrite|kernel.OCreate|kernel.OTrunc, mode)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	_, err = p.Write(fd, data)
	return err
}

// appendFile appends to a file by path, creating it if needed.
func appendFile(p *kernel.Proc, path string, data []byte) error {
	fd, err := p.OpenAt(kernel.AtCWD, path, kernel.OWrite|kernel.OAppend|kernel.OCreate, 0o644)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	_, err = p.Write(fd, data)
	return err
}

func isDir(p *kernel.Proc, path string) bool {
	st, err := p.FStatAt(kernel.AtCWD, path, true)
	return err == nil && st.Type == vfs.TypeDir
}

func exists(p *kernel.Proc, path string) bool {
	_, err := p.FStatAt(kernel.AtCWD, path, true)
	return err == nil
}

func joinPath(dir, name string) string {
	if dir == "" {
		return name
	}
	if strings.HasSuffix(dir, "/") {
		return dir + name
	}
	return dir + "/" + name
}

func baseName(path string) string {
	path = strings.TrimRight(path, "/")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func dirName(path string) string {
	path = strings.TrimRight(path, "/")
	i := strings.LastIndexByte(path, '/')
	switch {
	case i < 0:
		return "."
	case i == 0:
		return "/"
	default:
		return path[:i]
	}
}

// resolveExecutable finds a command on a conventional search path and
// returns its vnode for Spawn. The sandbox must hold lookup privileges
// along the way, exactly like a real execvp.
func resolveExecutable(p *kernel.Proc, name string) (*vfs.Vnode, error) {
	paths := []string{name}
	if !strings.Contains(name, "/") {
		paths = []string{"/bin/" + name, "/usr/bin/" + name, "/usr/local/bin/" + name}
	}
	var lastErr error
	for _, path := range paths {
		fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead, 0)
		if err != nil {
			lastErr = err
			continue
		}
		desc, _ := p.FD(fd)
		vnode := desc.Vnode()
		p.Close(fd)
		return vnode, nil
	}
	return nil, lastErr
}

// runCommand resolves and runs a command line within the current
// session, inheriting stdio, and returns its exit status.
func runCommand(p *kernel.Proc, argv []string) (int, error) {
	vn, err := resolveExecutable(p, argv[0])
	if err != nil {
		return 127, err
	}
	return p.SpawnWait(vn, argv[1:], kernel.SpawnAttr{})
}
