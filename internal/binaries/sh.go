package binaries

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/vfs"
)

// shMain is a small POSIX-flavoured shell: enough of /bin/sh to run the
// grading case study's 61-line Bash script inside a SHILL sandbox
// (§4.1). Supported: comments, variable assignment and expansion
// ($VAR, ${VAR}, $1..$9, $?), command substitution $(cmd ...), for/do/done
// over word lists, if/then/else/fi with [ -f ], [ -d ], [ -e ],
// string equality tests, ! negation, && and ; sequencing, output
// redirection (>, >>, 2>) and input redirection (<), exit, and external
// command execution via the conventional search path.
func shMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	var script string
	var positional []string
	switch {
	case len(args) >= 2 && args[0] == "-c":
		script = args[1]
		positional = args[2:]
	case len(args) >= 1:
		data, err := readFile(p, args[0])
		if err != nil {
			stderr(p, "sh: %s: %v\n", args[0], err)
			return 127
		}
		script = string(data)
		positional = args[1:]
	default:
		stderr(p, "usage: sh script [args...] | sh -c 'commands'\n")
		return 2
	}
	sh := &shell{p: p, vars: map[string]string{}, positional: positional}
	return sh.runScript(script)
}

type shell struct {
	p          *kernel.Proc
	vars       map[string]string
	positional []string
	lastStatus int
	exited     bool
	exitCode   int
}

func (sh *shell) runScript(src string) int {
	lines := strings.Split(src, "\n")
	sh.runLines(lines, 0, len(lines))
	if sh.exited {
		return sh.exitCode
	}
	return sh.lastStatus
}

// runLines executes lines[from:to], handling block constructs.
func (sh *shell) runLines(lines []string, from, to int) {
	for i := from; i < to && !sh.exited; {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			i++
		case strings.HasPrefix(line, "for "):
			end, body := sh.findBlock(lines, i, "done")
			if end < 0 {
				stderr(sh.p, "sh: for without done\n")
				sh.lastStatus = 2
				return
			}
			sh.runFor(line, lines, body, end)
			i = end + 1
		case strings.HasPrefix(line, "if "):
			i = sh.runIf(lines, i, to)
		default:
			sh.lastStatus = sh.runLine(line)
			i++
		}
	}
}

// findBlock locates the matching terminator for a block opened at start,
// returning (endIndex, bodyStartIndex). Nested for/if blocks are skipped.
func (sh *shell) findBlock(lines []string, start int, term string) (int, int) {
	depth := 0
	body := start + 1
	// A "do" may be on the same line ("for x in a b; do") or alone.
	if !strings.Contains(lines[start], "; do") && !strings.HasSuffix(strings.TrimSpace(lines[start]), " do") {
		for body < len(lines) && strings.TrimSpace(lines[body]) != "do" {
			body++
		}
		body++
	}
	for i := body; i < len(lines); i++ {
		t := strings.TrimSpace(lines[i])
		switch {
		case strings.HasPrefix(t, "for ") || strings.HasPrefix(t, "if "):
			depth++
		case t == term && depth == 0:
			return i, body
		case (t == "done" || t == "fi") && depth > 0:
			depth--
		}
	}
	return -1, body
}

func (sh *shell) runFor(header string, lines []string, body, end int) {
	header = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(header), "do"), ";")
	header = strings.TrimSpace(strings.TrimPrefix(header, "for "))
	parts := strings.SplitN(header, " in ", 2)
	if len(parts) != 2 {
		stderr(sh.p, "sh: malformed for\n")
		sh.lastStatus = 2
		return
	}
	varName := strings.TrimSpace(parts[0])
	words := sh.expandWords(parts[1])
	for _, w := range words {
		if sh.exited {
			return
		}
		sh.vars[varName] = w
		sh.runLines(lines, body, end)
	}
}

// runIf executes an if/then/else/fi block starting at line i and returns
// the index after "fi".
func (sh *shell) runIf(lines []string, i, to int) int {
	header := strings.TrimSpace(lines[i])
	header = strings.TrimSuffix(strings.TrimSuffix(header, "then"), ";")
	cond := strings.TrimSpace(strings.TrimPrefix(header, "if "))
	// Find matching else/fi at depth 0.
	depth := 0
	elseAt, fiAt := -1, -1
	body := i + 1
	if !strings.Contains(lines[i], "then") {
		for body < to && strings.TrimSpace(lines[body]) != "then" {
			body++
		}
		body++
	}
	for j := body; j < to; j++ {
		t := strings.TrimSpace(lines[j])
		switch {
		case strings.HasPrefix(t, "if ") || strings.HasPrefix(t, "for "):
			depth++
		case (t == "fi" || t == "done") && depth > 0:
			depth--
		case t == "else" && depth == 0 && elseAt < 0:
			elseAt = j
		case t == "fi" && depth == 0:
			fiAt = j
		}
		if fiAt >= 0 {
			break
		}
	}
	if fiAt < 0 {
		stderr(sh.p, "sh: if without fi\n")
		sh.lastStatus = 2
		return to
	}
	ok := sh.evalCond(cond)
	if ok {
		endBody := fiAt
		if elseAt >= 0 {
			endBody = elseAt
		}
		sh.runLines(lines, body, endBody)
	} else if elseAt >= 0 {
		sh.runLines(lines, elseAt+1, fiAt)
	}
	return fiAt + 1
}

func (sh *shell) evalCond(cond string) bool {
	cond = strings.TrimSpace(cond)
	negate := false
	if strings.HasPrefix(cond, "! ") {
		negate = true
		cond = strings.TrimSpace(cond[2:])
	}
	result := false
	if strings.HasPrefix(cond, "[") {
		inner := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(cond, "["), "]"))
		result = sh.evalTest(inner)
	} else {
		result = sh.runLine(cond) == 0
	}
	if negate {
		return !result
	}
	return result
}

func (sh *shell) evalTest(expr string) bool {
	fields := sh.expandWords(expr)
	switch {
	case len(fields) == 2 && fields[0] == "-f":
		st, err := sh.p.FStatAt(kernel.AtCWD, fields[1], true)
		return err == nil && st.Type == vfs.TypeFile
	case len(fields) == 2 && fields[0] == "-d":
		return isDir(sh.p, fields[1])
	case len(fields) == 2 && fields[0] == "-e":
		return exists(sh.p, fields[1])
	case len(fields) == 2 && fields[0] == "-n":
		return fields[1] != ""
	case len(fields) == 2 && fields[0] == "-z":
		return fields[1] == ""
	case len(fields) == 3 && fields[1] == "=":
		return fields[0] == fields[2]
	case len(fields) == 3 && fields[1] == "!=":
		return fields[0] != fields[2]
	case len(fields) == 1:
		return fields[0] != ""
	}
	return false
}

// runLine executes one command line, handling && chains and ;.
func (sh *shell) runLine(line string) int {
	status := 0
	for _, seq := range splitTop(line, ';') {
		cmds := strings.Split(seq, "&&")
		status = 0
		for _, c := range cmds {
			status = sh.runSimple(strings.TrimSpace(c))
			if status != 0 {
				break
			}
			if sh.exited {
				return sh.exitCode
			}
		}
	}
	return status
}

func (sh *shell) runSimple(cmd string) int {
	if cmd == "" {
		return 0
	}
	// Variable assignment: NAME=value (no spaces around '=').
	if i := strings.IndexByte(cmd, '='); i > 0 && !strings.ContainsAny(cmd[:i], " \t$([") {
		name := cmd[:i]
		val := strings.Join(sh.expandWords(cmd[i+1:]), " ")
		sh.vars[name] = val
		return 0
	}

	words, redirs := sh.parseRedirects(cmd)
	fields := sh.expandWords(strings.Join(words, " "))
	if len(fields) == 0 {
		return 0
	}

	switch fields[0] {
	case "exit":
		sh.exited = true
		sh.exitCode = 0
		if len(fields) > 1 {
			fmt.Sscanf(fields[1], "%d", &sh.exitCode)
		}
		return sh.exitCode
	case "cd":
		if len(fields) > 1 {
			if err := sh.p.Chdir(fields[1]); err != nil {
				stderr(sh.p, "sh: cd: %v\n", err)
				return 1
			}
		}
		return 0
	case "echo":
		out := strings.Join(fields[1:], " ") + "\n"
		return sh.withRedirects(redirs, func(stdoutFD int) int {
			sh.p.Write(stdoutFD, []byte(out))
			return 0
		})
	}

	vn, err := resolveExecutable(sh.p, fields[0])
	if err != nil {
		stderr(sh.p, "sh: %s: command not found\n", fields[0])
		return 127
	}
	return sh.withRedirects(redirs, func(stdoutFD int) int {
		attr := kernel.SpawnAttr{}
		if stdoutFD != 1 {
			fd, err := sh.p.FD(stdoutFD)
			if err == nil {
				attr.Stdout = fd
			}
		}
		if redirs.stdinPath != "" {
			fd, err := sh.p.OpenAt(kernel.AtCWD, redirs.stdinPath, kernel.ORead, 0)
			if err != nil {
				stderr(sh.p, "sh: %s: %v\n", redirs.stdinPath, err)
				return 1
			}
			defer sh.p.Close(fd)
			desc, _ := sh.p.FD(fd)
			attr.Stdin = desc
		}
		if redirs.stderrPath != "" {
			fd, err := sh.p.OpenAt(kernel.AtCWD, redirs.stderrPath, kernel.OWrite|kernel.OCreate|kernel.OAppend, 0o644)
			if err != nil {
				stderr(sh.p, "sh: %s: %v\n", redirs.stderrPath, err)
				return 1
			}
			defer sh.p.Close(fd)
			desc, _ := sh.p.FD(fd)
			attr.Stderr = desc
		}
		code, err := sh.p.SpawnWait(vn, fields[1:], attr)
		if err != nil {
			stderr(sh.p, "sh: %s: %v\n", fields[0], err)
			return 126
		}
		return code
	})
}

type redirects struct {
	stdoutPath string
	appendOut  bool
	stdinPath  string
	stderrPath string
}

// parseRedirects strips redirection operators from the token stream.
func (sh *shell) parseRedirects(cmd string) ([]string, redirects) {
	tokens := tokenize(cmd)
	var words []string
	var r redirects
	for i := 0; i < len(tokens); i++ {
		switch tokens[i] {
		case ">":
			if i+1 < len(tokens) {
				r.stdoutPath = sh.expandOne(tokens[i+1])
				i++
			}
		case ">>":
			if i+1 < len(tokens) {
				r.stdoutPath = sh.expandOne(tokens[i+1])
				r.appendOut = true
				i++
			}
		case "<":
			if i+1 < len(tokens) {
				r.stdinPath = sh.expandOne(tokens[i+1])
				i++
			}
		case "2>":
			if i+1 < len(tokens) {
				r.stderrPath = sh.expandOne(tokens[i+1])
				i++
			}
		default:
			words = append(words, tokens[i])
		}
	}
	return words, r
}

// withRedirects opens the stdout redirection target (if any) and invokes
// fn with the descriptor to use as standard output.
func (sh *shell) withRedirects(r redirects, fn func(stdoutFD int) int) int {
	if r.stdoutPath == "" {
		return fn(1)
	}
	flags := kernel.OWrite | kernel.OCreate
	if r.appendOut {
		flags |= kernel.OAppend
	} else {
		flags |= kernel.OTrunc
	}
	fd, err := sh.p.OpenAt(kernel.AtCWD, r.stdoutPath, flags, 0o644)
	if err != nil {
		stderr(sh.p, "sh: %s: %v\n", r.stdoutPath, err)
		return 1
	}
	defer sh.p.Close(fd)
	return fn(fd)
}

// expandWords tokenizes and expands variables and command substitutions.
func (sh *shell) expandWords(s string) []string {
	var out []string
	for _, tok := range tokenize(s) {
		expanded := sh.expandOne(tok)
		if strings.HasPrefix(tok, "\"") || strings.HasPrefix(tok, "'") {
			out = append(out, expanded)
			continue
		}
		// Unquoted expansions split on whitespace, as sh does.
		fields := strings.Fields(expanded)
		if len(fields) == 0 && expanded == "" && !strings.ContainsAny(tok, "$`") {
			out = append(out, expanded)
			continue
		}
		out = append(out, fields...)
	}
	return out
}

// expandOne expands $VAR, ${VAR}, $1..$9, $?, and $(cmd) in one token.
func (sh *shell) expandOne(tok string) string {
	if strings.HasPrefix(tok, "'") {
		return strings.Trim(tok, "'")
	}
	quoted := strings.HasPrefix(tok, "\"")
	if quoted {
		tok = strings.Trim(tok, "\"")
	}
	var b strings.Builder
	for i := 0; i < len(tok); {
		c := tok[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(tok) {
			b.WriteByte(c)
			break
		}
		switch next := tok[i+1]; {
		case next == '(':
			depth := 1
			j := i + 2
			for ; j < len(tok) && depth > 0; j++ {
				if tok[j] == '(' {
					depth++
				}
				if tok[j] == ')' {
					depth--
				}
			}
			inner := tok[i+2 : j-1]
			b.WriteString(strings.TrimSpace(sh.commandSubst(inner)))
			i = j
		case next == '{':
			j := strings.IndexByte(tok[i:], '}')
			if j < 0 {
				b.WriteByte(c)
				i++
				continue
			}
			name := tok[i+2 : i+j]
			b.WriteString(sh.lookupVar(name))
			i += j + 1
		case next == '?':
			fmt.Fprintf(&b, "%d", sh.lastStatus)
			i += 2
		case next >= '0' && next <= '9':
			idx := int(next - '1')
			if idx >= 0 && idx < len(sh.positional) {
				b.WriteString(sh.positional[idx])
			}
			i += 2
		default:
			j := i + 1
			for j < len(tok) && (isAlnum(tok[j]) || tok[j] == '_') {
				j++
			}
			if j == i+1 {
				b.WriteByte(c)
				i++
				continue
			}
			b.WriteString(sh.lookupVar(tok[i+1 : j]))
			i = j
		}
	}
	return b.String()
}

func (sh *shell) lookupVar(name string) string { return sh.vars[name] }

// commandSubst runs a command and captures its stdout.
func (sh *shell) commandSubst(cmd string) string {
	fields := sh.expandWords(cmd)
	if len(fields) == 0 {
		return ""
	}
	if fields[0] == "ls" {
		// Fast path: $(ls dir) is the grading script's main use.
		var names []string
		dirs := fields[1:]
		if len(dirs) == 0 {
			dirs = []string{"."}
		}
		for _, d := range dirs {
			fd, err := sh.p.OpenAt(kernel.AtCWD, d, kernel.ORead|kernel.ODirectory, 0)
			if err != nil {
				continue
			}
			ns, _ := sh.p.ReadDir(fd)
			sh.p.Close(fd)
			names = append(names, ns...)
		}
		return strings.Join(names, " ")
	}
	if fields[0] == "cat" && len(fields) == 2 {
		data, err := readFile(sh.p, fields[1])
		if err != nil {
			return ""
		}
		return string(data)
	}
	// General case: run with a pipe as stdout.
	rfd, wfd, err := sh.p.MakePipe()
	if err != nil {
		return ""
	}
	vn, err := resolveExecutable(sh.p, fields[0])
	if err != nil {
		sh.p.Close(rfd)
		sh.p.Close(wfd)
		return ""
	}
	wdesc, _ := sh.p.FD(wfd)
	child, err := sh.p.Spawn(vn, fields[1:], kernel.SpawnAttr{Stdout: wdesc})
	sh.p.Close(wfd)
	if err != nil {
		sh.p.Close(rfd)
		return ""
	}
	data, _ := readAllFD(sh.p, rfd)
	sh.p.Close(rfd)
	sh.p.Wait(child.PID())
	return string(data)
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// tokenize splits a command line into tokens, respecting single and
// double quotes and recognising redirection operators.
func tokenize(s string) []string {
	var tokens []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		switch s[i] {
		case '"', '\'':
			q := s[i]
			i++
			for i < len(s) && s[i] != q {
				i++
			}
			i++
			tokens = append(tokens, s[start:min(i, len(s))])
		case '>':
			if i+1 < len(s) && s[i+1] == '>' {
				tokens = append(tokens, ">>")
				i += 2
			} else {
				tokens = append(tokens, ">")
				i++
			}
		case '<':
			tokens = append(tokens, "<")
			i++
		default:
			for i < len(s) && s[i] != ' ' && s[i] != '\t' && s[i] != '>' && s[i] != '<' {
				if s[i] == '$' && i+1 < len(s) && s[i+1] == '(' {
					depth := 1
					i += 2
					for i < len(s) && depth > 0 {
						if s[i] == '(' {
							depth++
						}
						if s[i] == ')' {
							depth--
						}
						i++
					}
					continue
				}
				i++
			}
			tok := s[start:i]
			if tok == "2" && i < len(s) && s[i] == '>' {
				tokens = append(tokens, "2>")
				i++
				continue
			}
			tokens = append(tokens, tok)
		}
	}
	return tokens
}

// splitTop splits on sep at top level (outside quotes and $()).
func splitTop(s string, sep byte) []string {
	var parts []string
	depth := 0
	last := 0
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == sep && depth == 0:
			parts = append(parts, s[last:i])
			last = i + 1
		}
	}
	parts = append(parts, s[last:])
	return parts
}
