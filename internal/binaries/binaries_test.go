package binaries

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/vfs"
)

// world builds a kernel with the full binary set installed at the
// conventional locations plus a console to capture output.
func world(t *testing.T) (*kernel.Kernel, *kernel.Proc, *vfs.ConsoleDevice) {
	t.Helper()
	k := kernel.New()
	t.Cleanup(k.Shutdown)
	Register(k)
	for _, name := range Names() {
		dir := "/bin"
		switch name {
		case "httpd", "origind":
			dir = "/usr/local/sbin"
		case "grep", "find", "diff", "tar", "curl", "ldd", "jpeginfo",
			"ocamlc", "ocamlrun", "ocamlyacc", "gmake", "cc", "ab", "configure":
			dir = "/usr/bin"
		}
		if _, err := k.FS.WriteFile(dir+"/"+name, []byte("#!bin:"+name+"\n"), 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.FS.WriteFile("/lib/libc.so.7", []byte("elf"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.WriteFile("/usr/local/lib/ocaml/stdlib.cma", []byte("CAML"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.MkdirAll("/tmp", 0o777, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.MkdirAll("/work", 0o777, 0, 0); err != nil {
		t.Fatal(err)
	}
	console := vfs.NewConsoleDevice()
	dev, err := k.FS.MkdirAll("/dev", 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.Mkdev(dev, "console", 0o666, 0, 0, console); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(0, 0)
	if err := p.Chdir("/work"); err != nil {
		t.Fatal(err)
	}
	return k, p, console
}

// run executes a command with console stdio and returns (exit, output).
func run(t *testing.T, k *kernel.Kernel, p *kernel.Proc, console *vfs.ConsoleDevice, argv ...string) (int, string) {
	t.Helper()
	vn, err := resolveExecutable(p, argv[0])
	if err != nil {
		t.Fatalf("resolve %s: %v", argv[0], err)
	}
	fd := kernel.NewVnodeFD(k.FS.MustResolve("/dev/console"), true, true, false)
	defer fd.Release()
	code, err := p.SpawnWait(vn, argv[1:], kernel.SpawnAttr{Stdin: fd, Stdout: fd, Stderr: fd})
	if err != nil {
		t.Fatalf("%v: %v", argv, err)
	}
	out := string(console.Output())
	console.ResetOutput()
	return code, out
}

func TestEchoCatWcHead(t *testing.T) {
	k, p, con := world(t)
	if code, out := run(t, k, p, con, "echo", "hello", "world"); code != 0 || out != "hello world\n" {
		t.Fatalf("echo = %d %q", code, out)
	}
	k.FS.WriteFile("/work/f.txt", []byte("l1\nl2\nl3\n"), 0o644, 0, 0)
	if code, out := run(t, k, p, con, "cat", "f.txt"); code != 0 || out != "l1\nl2\nl3\n" {
		t.Fatalf("cat = %d %q", code, out)
	}
	if _, out := run(t, k, p, con, "head", "-n", "2", "f.txt"); out != "l1\nl2\n" {
		t.Fatalf("head = %q", out)
	}
	if _, out := run(t, k, p, con, "wc", "f.txt"); !strings.Contains(out, "3") {
		t.Fatalf("wc = %q", out)
	}
	if code, _ := run(t, k, p, con, "cat", "missing"); code == 0 {
		t.Fatal("cat missing file succeeded")
	}
}

func TestCpMvRmMkdirLs(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/src.txt", []byte("data"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "cp", "src.txt", "dst.txt"); code != 0 {
		t.Fatal("cp failed")
	}
	if code, _ := run(t, k, p, con, "mkdir", "-p", "a/b/c"); code != 0 {
		t.Fatal("mkdir -p failed")
	}
	if code, _ := run(t, k, p, con, "cp", "-r", "a", "acopy"); code != 0 {
		t.Fatal("cp -r failed")
	}
	if _, err := k.FS.Resolve("/work/acopy/b/c"); err != nil {
		t.Fatal("recursive copy incomplete")
	}
	if code, _ := run(t, k, p, con, "mv", "dst.txt", "a/moved.txt"); code != 0 {
		t.Fatal("mv failed")
	}
	if code, out := run(t, k, p, con, "ls", "a"); code != 0 || !strings.Contains(out, "moved.txt") {
		t.Fatalf("ls = %q", out)
	}
	if code, _ := run(t, k, p, con, "rm", "-r", "a"); code != 0 {
		t.Fatal("rm -r failed")
	}
	if _, err := k.FS.Resolve("/work/a"); err == nil {
		t.Fatal("rm -r left the tree")
	}
	if code, _ := run(t, k, p, con, "rm", "missing"); code == 0 {
		t.Fatal("rm missing succeeded")
	}
	if code, _ := run(t, k, p, con, "rm", "-f", "missing"); code != 0 {
		t.Fatal("rm -f missing failed")
	}
}

func TestGrepModes(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/a.txt", []byte("one mac_line\ntwo\nmac_ again\n"), 0o644, 0, 0)
	code, out := run(t, k, p, con, "grep", "-H", "mac_", "a.txt")
	if code != 0 || strings.Count(out, "a.txt:") != 2 {
		t.Fatalf("grep -H = %d %q", code, out)
	}
	if _, out := run(t, k, p, con, "grep", "-l", "mac_", "a.txt"); out != "a.txt\n" {
		t.Fatalf("grep -l = %q", out)
	}
	if _, out := run(t, k, p, con, "grep", "-c", "mac_", "a.txt"); !strings.Contains(out, "2") {
		t.Fatalf("grep -c = %q", out)
	}
	if code, _ := run(t, k, p, con, "grep", "absent", "a.txt"); code != 1 {
		t.Fatalf("grep no-match exit = %d", code)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"*.c", "file.c", true},
		{"*.c", "file.cc", false},
		{"*.c", ".c", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*", "anything", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXbY", false},
		{"", "", true},
	}
	for _, c := range cases {
		if got := matchGlob(c.pat, c.name); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v", c.pat, c.name, got)
		}
	}
}

func TestFindNameAndExec(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/tree/x.c", []byte("mac_hook\n"), 0o644, 0, 0)
	k.FS.WriteFile("/work/tree/sub/y.c", []byte("nothing\n"), 0o644, 0, 0)
	k.FS.WriteFile("/work/tree/z.h", []byte("mac_hook\n"), 0o644, 0, 0)
	code, out := run(t, k, p, con, "find", "tree", "-name", "*.c")
	if code != 0 || !strings.Contains(out, "tree/x.c") || !strings.Contains(out, "tree/sub/y.c") || strings.Contains(out, "z.h") {
		t.Fatalf("find -name = %d %q", code, out)
	}
	code, out = run(t, k, p, con, "find", "tree", "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";")
	if code != 0 || !strings.Contains(out, "x.c:mac_hook") || strings.Contains(out, "y.c:") {
		t.Fatalf("find -exec = %d %q", code, out)
	}
	if _, out := run(t, k, p, con, "find", "tree", "-type", "d"); !strings.Contains(out, "tree/sub") {
		t.Fatalf("find -type d = %q", out)
	}
}

func TestDiff(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/a", []byte("same\n"), 0o644, 0, 0)
	k.FS.WriteFile("/work/b", []byte("same\n"), 0o644, 0, 0)
	k.FS.WriteFile("/work/c", []byte("other\n"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "diff", "a", "b"); code != 0 {
		t.Fatal("diff equal files != 0")
	}
	code, out := run(t, k, p, con, "diff", "a", "c")
	if code != 1 || !strings.Contains(out, "< same") || !strings.Contains(out, "> other") {
		t.Fatalf("diff = %d %q", code, out)
	}
}

func TestTarRoundTrip(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/tree/f1.txt", []byte("one"), 0o644, 0, 0)
	k.FS.WriteFile("/work/tree/sub/f2.txt", []byte("two\nlines"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "tar", "-cf", "out.tar", "tree"); code != 0 {
		t.Fatal("tar -cf failed")
	}
	k.FS.MkdirAll("/work/extract", 0o777, 0, 0)
	if code, _ := run(t, k, p, con, "tar", "-xf", "out.tar", "-C", "extract"); code != 0 {
		t.Fatal("tar -xf failed")
	}
	got := k.FS.MustResolve("/work/extract/tree/sub/f2.txt").Bytes()
	if string(got) != "two\nlines" {
		t.Fatalf("extracted contents = %q", got)
	}
}

func TestShFeatures(t *testing.T) {
	k, p, con := world(t)
	script := `# test script
msg=hello
echo $msg $1
for f in a b c
do
  echo item-$f
done
if [ -f present.txt ]
then
  echo found
else
  echo missing
fi
echo $(echo nested) >> log.txt
cat log.txt
`
	k.FS.WriteFile("/work/present.txt", []byte("x"), 0o644, 0, 0)
	k.FS.WriteFile("/work/s.sh", []byte(script), 0o644, 0, 0)
	code, out := run(t, k, p, con, "sh", "s.sh", "arg1")
	if code != 0 {
		t.Fatalf("sh exit = %d: %q", code, out)
	}
	for _, want := range []string{"hello arg1", "item-a", "item-b", "item-c", "found", "nested"} {
		if !strings.Contains(out, want) {
			t.Errorf("sh output missing %q: %q", want, out)
		}
	}
	if code, out := run(t, k, p, con, "sh", "-c", "echo one && echo two; echo three"); code != 0 ||
		!strings.Contains(out, "one") || !strings.Contains(out, "two") || !strings.Contains(out, "three") {
		t.Fatalf("sh -c chains = %q", out)
	}
	// && stops on failure.
	if _, out := run(t, k, p, con, "sh", "-c", "false && echo no"); strings.Contains(out, "no") {
		t.Fatal("&& continued after failure")
	}
	// exit status propagates.
	if code, _ := run(t, k, p, con, "sh", "-c", "exit 3"); code != 3 {
		t.Fatalf("sh exit code = %d", code)
	}
}

func TestShRedirects(t *testing.T) {
	k, p, con := world(t)
	if code, _ := run(t, k, p, con, "sh", "-c", "echo out > f.txt"); code != 0 {
		t.Fatal("redirect failed")
	}
	if got := string(k.FS.MustResolve("/work/f.txt").Bytes()); got != "out\n" {
		t.Fatalf("> wrote %q", got)
	}
	run(t, k, p, con, "sh", "-c", "echo more >> f.txt")
	if got := string(k.FS.MustResolve("/work/f.txt").Bytes()); got != "out\nmore\n" {
		t.Fatalf(">> wrote %q", got)
	}
	// stdin redirect.
	if _, out := run(t, k, p, con, "sh", "-c", "cat < f.txt"); !strings.Contains(out, "more") {
		t.Fatalf("< read %q", out)
	}
}

func TestOcamlToolchain(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/good.ml", []byte("print hi\nloop 10\n"), 0o644, 0, 0)
	k.FS.WriteFile("/work/bad.ml", []byte("not a directive\n"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "ocamlc", "-o", "good.byte", "good.ml"); code != 0 {
		t.Fatal("ocamlc failed on valid source")
	}
	if code, out := run(t, k, p, con, "ocamlc", "-o", "bad.byte", "bad.ml"); code == 0 || !strings.Contains(out, "syntax error") {
		t.Fatalf("ocamlc accepted bad source: %d %q", code, out)
	}
	if code, out := run(t, k, p, con, "ocamlrun", "good.byte"); code != 0 || !strings.Contains(out, "hi") {
		t.Fatalf("ocamlrun = %d %q", code, out)
	}
	// The compiler requires the stdlib (§4.1 debugging anecdote).
	k.FS.Unlink(k.FS.MustResolve("/usr/local/lib/ocaml"), "stdlib.cma", false)
	if code, out := run(t, k, p, con, "ocamlc", "-o", "x.byte", "good.ml"); code == 0 ||
		!strings.Contains(out, "/usr/local/lib/ocaml") {
		t.Fatalf("ocamlc without stdlib: %d %q", code, out)
	}
}

func TestOcamlyaccNeedsTmp(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/g.mly", []byte("%token X\n"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "ocamlyacc", "g.mly"); code != 0 {
		t.Fatal("ocamlyacc failed")
	}
	if _, err := k.FS.Resolve("/work/g.ml"); err != nil {
		t.Fatal("generated parser missing")
	}
}

func TestGmakeBuildsAndSkipsFresh(t *testing.T) {
	k, p, con := world(t)
	mk := `OUT = result.txt

all: $(OUT)

$(OUT): input.txt
	cp input.txt $(OUT)

clean:
	rm -f result.txt
`
	k.FS.WriteFile("/work/Makefile", []byte(mk), 0o644, 0, 0)
	k.FS.WriteFile("/work/input.txt", []byte("in"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "gmake"); code != 0 {
		t.Fatal("gmake failed")
	}
	if got := string(k.FS.MustResolve("/work/result.txt").Bytes()); got != "in" {
		t.Fatalf("built %q", got)
	}
	// Existing target: commands skipped (echo output absent).
	if _, out := run(t, k, p, con, "gmake"); strings.Contains(out, "cp input.txt") {
		t.Fatalf("gmake rebuilt a fresh target: %q", out)
	}
	if code, _ := run(t, k, p, con, "gmake", "clean"); code != 0 {
		t.Fatal("gmake clean failed")
	}
	if _, err := k.FS.Resolve("/work/result.txt"); err == nil {
		t.Fatal("clean did not remove the target")
	}
	if code, _ := run(t, k, p, con, "gmake", "nonexistent"); code == 0 {
		t.Fatal("gmake built an unknown target")
	}
}

func TestLdd(t *testing.T) {
	k, p, con := world(t)
	code, out := run(t, k, p, con, "ldd", "/usr/bin/curl")
	if code != 0 {
		t.Fatal("ldd failed")
	}
	for _, lib := range Deps["curl"] {
		if !strings.Contains(out, lib) {
			t.Errorf("ldd output missing %s: %q", lib, out)
		}
	}
	k.FS.WriteFile("/work/plain.txt", []byte("not an exe"), 0o644, 0, 0)
	if code, _ := run(t, k, p, con, "ldd", "plain.txt"); code == 0 {
		t.Fatal("ldd accepted a non-executable")
	}
}

func TestCurlAgainstOrigind(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/srv/origin/file.bin", []byte("remote-bytes"), 0o644, 0, 0)
	vn := k.FS.MustResolve("/usr/local/sbin/origind")
	server, err := p.Spawn(vn, []string{"/srv/origin", "80"}, kernel.SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for bind, yielding between attempts so the server goroutine
	// actually gets scheduled (a hot loop can exhaust its attempts
	// before origind ever binds).
	bound := false
	deadline := time.Now().Add(30 * time.Second)
	for !bound && time.Now().Before(deadline) {
		s := k.Net.NewSocket(netstack.DomainIP)
		if err := k.Net.Connect(s, "80"); err == nil {
			k.Net.Send(s, []byte("GET /__ping\n"))
			k.Net.Close(s)
			bound = true
		} else {
			// Close failed probes too: they would otherwise sit in the
			// stack's live-socket registry until shutdown.
			k.Net.Close(s)
			time.Sleep(50 * time.Microsecond)
		}
	}
	if !bound {
		t.Fatal("origind never bound port 80")
	}
	if code, _ := run(t, k, p, con, "curl", "-o", "dl.bin", "http://origin/file.bin"); code != 0 {
		t.Fatal("curl failed")
	}
	if got := string(k.FS.MustResolve("/work/dl.bin").Bytes()); got != "remote-bytes" {
		t.Fatalf("downloaded %q", got)
	}
	if code, _ := run(t, k, p, con, "curl", "-o", "x", "http://origin/missing"); code == 0 {
		t.Fatal("curl downloaded a missing file")
	}
	// Shut the server down.
	s := k.Net.NewSocket(netstack.DomainIP)
	if err := k.Net.Connect(s, "80"); err == nil {
		k.Net.Send(s, []byte("GET /__shutdown\n"))
		buf := make([]byte, 16)
		k.Net.Recv(s, buf)
		k.Net.Close(s)
	}
	p.Wait(server.PID())
}

func TestJpeginfo(t *testing.T) {
	k, p, con := world(t)
	k.FS.WriteFile("/work/ok.jpg", []byte("JFIFxxx"), 0o644, 0, 0)
	k.FS.WriteFile("/work/no.jpg", []byte("PNG"), 0o644, 0, 0)
	if code, out := run(t, k, p, con, "jpeginfo", "-i", "ok.jpg"); code != 0 || !strings.Contains(out, "640x480") {
		t.Fatalf("jpeginfo = %d %q", code, out)
	}
	if code, out := run(t, k, p, con, "jpeginfo", "-i", "no.jpg"); code == 0 || !strings.Contains(out, "not a JPEG") {
		t.Fatalf("jpeginfo non-jpeg = %d %q", code, out)
	}
}
