package binaries

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kernel"
)

// Archive format: a textual stream of records —
//
//	DIR <path>\n
//	FILE <path> <size>\n<size raw bytes>\n
//	END\n
//
// Simple enough to build in tests, faithful enough to exercise the same
// syscall pattern (deep creates and large sequential reads/writes) as
// the paper's Untar benchmark.

// tarMain implements tar -cf out.tar path... and tar -xf in.tar [-C dir].
func tarMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	if len(args) < 2 {
		stderr(p, "usage: tar -cf out.tar path... | tar -xf in.tar [-C dir]\n")
		return 64
	}
	switch args[0] {
	case "-cf", "cf":
		return tarCreate(p, args[1], args[2:])
	case "-xf", "xf":
		dest := "."
		rest := args[2:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == "-C" && i+1 < len(rest) {
				dest = rest[i+1]
				i++
			}
		}
		return tarExtract(p, args[1], dest)
	}
	stderr(p, "tar: unknown mode %s\n", args[0])
	return 64
}

func tarCreate(p *kernel.Proc, out string, paths []string) int {
	var b strings.Builder
	var walk func(path, rel string) error
	walk = func(path, rel string) error {
		if isDir(p, path) {
			fmt.Fprintf(&b, "DIR %s\n", rel)
			fd, err := p.OpenAt(kernel.AtCWD, path, kernel.ORead|kernel.ODirectory, 0)
			if err != nil {
				return err
			}
			names, err := p.ReadDir(fd)
			p.Close(fd)
			if err != nil {
				return err
			}
			for _, name := range names {
				if err := walk(joinPath(path, name), joinPath(rel, name)); err != nil {
					return err
				}
			}
			return nil
		}
		data, err := readFile(p, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "FILE %s %d\n%s\n", rel, len(data), data)
		return nil
	}
	for _, path := range paths {
		if err := walk(path, baseName(path)); err != nil {
			stderr(p, "tar: %s: %v\n", path, err)
			return 1
		}
	}
	b.WriteString("END\n")
	if err := writeFile(p, out, []byte(b.String()), 0o644); err != nil {
		stderr(p, "tar: %s: %v\n", out, err)
		return 1
	}
	return 0
}

func tarExtract(p *kernel.Proc, archive, dest string) int {
	data, err := readFile(p, archive)
	if err != nil {
		stderr(p, "tar: %s: %v\n", archive, err)
		return 1
	}
	s := string(data)
	for len(s) > 0 {
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			break
		}
		header := s[:nl]
		s = s[nl+1:]
		fields := strings.Fields(header)
		switch {
		case len(fields) == 1 && fields[0] == "END":
			return 0
		case len(fields) == 2 && fields[0] == "DIR":
			path := joinPath(dest, fields[1])
			if !exists(p, path) {
				if err := mkdirAll(p, path); err != nil {
					stderr(p, "tar: mkdir %s: %v\n", path, err)
					return 1
				}
			}
		case len(fields) == 3 && fields[0] == "FILE":
			size, err := strconv.Atoi(fields[2])
			if err != nil || size > len(s) {
				stderr(p, "tar: corrupt archive\n")
				return 1
			}
			contents := s[:size]
			s = s[size:]
			if strings.HasPrefix(s, "\n") {
				s = s[1:]
			}
			path := joinPath(dest, fields[1])
			if err := mkdirAll(p, dirName(path)); err != nil {
				stderr(p, "tar: %s: %v\n", path, err)
				return 1
			}
			// The simple format carries no mode bits; extract everything
			// executable, as source tarballs need their configure
			// scripts runnable.
			if err := writeFile(p, path, []byte(contents), 0o755); err != nil {
				stderr(p, "tar: %s: %v\n", path, err)
				return 1
			}
		default:
			stderr(p, "tar: corrupt header %q\n", header)
			return 1
		}
	}
	stderr(p, "tar: missing END record\n")
	return 1
}

// BuildArchive renders the archive format for an in-memory tree; image
// builders use it to stage tarballs (e.g. the Emacs source tarball on
// the origin server).
func BuildArchive(entries []ArchiveEntry) []byte {
	var b strings.Builder
	for _, e := range entries {
		if e.Dir {
			fmt.Fprintf(&b, "DIR %s\n", e.Path)
		} else {
			fmt.Fprintf(&b, "FILE %s %d\n%s\n", e.Path, len(e.Data), e.Data)
		}
	}
	b.WriteString("END\n")
	return []byte(b.String())
}

// ArchiveEntry is one record of the simple archive format.
type ArchiveEntry struct {
	Path string
	Dir  bool
	Data []byte
}
