package binaries

import (
	"strings"

	"repro/internal/kernel"
)

// gmakeMain is a small GNU-make lookalike: it parses a Makefile of
//
//	target: dep1 dep2
//	\tcommand ...
//
// rules plus "NAME = value" macros, and builds the requested target
// (default: the first rule). A target rebuilds when its file is missing;
// phony targets (no file) always run. Commands run through the
// conventional search path inside the invoking session, so every
// compiler or install step the Emacs case study triggers is confined by
// the same sandbox as gmake itself (§4.1).
func gmakeMain(p *kernel.Proc, argv []string) int {
	args := argv[1:]
	makefile := "Makefile"
	dir := ""
	var targets []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-f" && i+1 < len(args):
			makefile = args[i+1]
			i++
		case args[i] == "-C" && i+1 < len(args):
			dir = args[i+1]
			i++
		default:
			targets = append(targets, args[i])
		}
	}
	if dir != "" {
		if err := p.Chdir(dir); err != nil {
			stderr(p, "gmake: cannot chdir to %s: %v\n", dir, err)
			return 2
		}
	}
	data, err := readFile(p, makefile)
	if err != nil {
		stderr(p, "gmake: %s: %v\n", makefile, err)
		return 2
	}
	rules, order, macros, err := parseMakefile(string(data))
	if err != nil {
		stderr(p, "gmake: %v\n", err)
		return 2
	}
	if len(targets) == 0 {
		if len(order) == 0 {
			stderr(p, "gmake: no targets\n")
			return 2
		}
		targets = order[:1]
	}
	m := &maker{p: p, rules: rules, macros: macros, building: map[string]bool{}}
	for _, t := range targets {
		if code := m.build(t); code != 0 {
			stderr(p, "gmake: *** [%s] Error %d\n", t, code)
			return code
		}
	}
	return 0
}

type makeRule struct {
	deps     []string
	commands []string
}

func parseMakefile(src string) (map[string]*makeRule, []string, map[string]string, error) {
	rules := make(map[string]*makeRule)
	macros := make(map[string]string)
	var order []string
	var current *makeRule
	for _, line := range strings.Split(src, "\n") {
		switch {
		case strings.HasPrefix(line, "\t"):
			if current == nil {
				continue
			}
			current.commands = append(current.commands, strings.TrimSpace(line))
		case strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#"):
			// blank or comment
		case strings.Contains(line, "=") && !strings.Contains(line, ":"):
			parts := strings.SplitN(line, "=", 2)
			macros[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		case strings.Contains(line, ":"):
			parts := strings.SplitN(line, ":", 2)
			// Macros are defined before use; expand target and
			// dependency names eagerly.
			name := expandMacros(strings.TrimSpace(parts[0]), macros)
			deps := strings.Fields(parts[1])
			for i, d := range deps {
				deps[i] = expandMacros(d, macros)
			}
			rule := &makeRule{deps: deps}
			rules[name] = rule
			order = append(order, name)
			current = rule
		}
	}
	return rules, order, macros, nil
}

func expandMacros(s string, macros map[string]string) string {
	for name, val := range macros {
		s = strings.ReplaceAll(s, "$("+name+")", val)
		s = strings.ReplaceAll(s, "${"+name+"}", val)
	}
	return s
}

type maker struct {
	p        *kernel.Proc
	rules    map[string]*makeRule
	macros   map[string]string
	building map[string]bool
}

func (m *maker) expand(s string) string { return expandMacros(s, m.macros) }

func (m *maker) build(target string) int {
	target = m.expand(target)
	if m.building[target] {
		return 0 // cycle guard
	}
	rule, ok := m.rules[target]
	if !ok {
		if exists(m.p, target) {
			return 0 // plain file dependency
		}
		stderr(m.p, "gmake: no rule to make target %q\n", target)
		return 2
	}
	m.building[target] = true
	defer delete(m.building, target)
	for _, dep := range rule.deps {
		if code := m.build(dep); code != 0 {
			return code
		}
	}
	// Without mtimes, a target whose file already exists is up to date;
	// phony targets (no corresponding file) always run.
	if exists(m.p, target) {
		return 0
	}
	for _, cmd := range rule.commands {
		cmd = m.expand(cmd)
		silent := strings.HasPrefix(cmd, "@")
		cmd = strings.TrimPrefix(cmd, "@")
		if !silent {
			stdout(m.p, "%s\n", cmd)
		}
		fields := strings.Fields(cmd)
		if len(fields) == 0 {
			continue
		}
		code, err := runCommand(m.p, fields)
		if err != nil {
			stderr(m.p, "gmake: %s: %v\n", fields[0], err)
			return 2
		}
		if code != 0 {
			return code
		}
	}
	return 0
}

// configureMain is the Emacs tarball's ./configure: it probes for the
// toolchain and writes config.status plus the Makefile the build uses.
// The probe reads real files, so a sandbox missing those capabilities
// fails here — matching where real configure scripts fail.
func configureMain(p *kernel.Proc, argv []string) int {
	prefix := "/usr/local"
	for _, a := range argv[1:] {
		if v, ok := strings.CutPrefix(a, "--prefix="); ok {
			prefix = v
		}
	}
	stdout(p, "checking for cc... ")
	if _, err := readFile(p, "/usr/bin/cc"); err != nil {
		stdout(p, "no\n")
		stderr(p, "configure: error: C compiler not found\n")
		return 1
	}
	stdout(p, "yes\nchecking for libc... ")
	if _, err := readFile(p, "/lib/libc.so.7"); err != nil {
		stdout(p, "no\n")
		stderr(p, "configure: error: libc not usable\n")
		return 1
	}
	stdout(p, "yes\n")
	if err := writeFile(p, "config.status", []byte("prefix="+prefix+"\n"), 0o644); err != nil {
		stderr(p, "configure: cannot write config.status: %v\n", err)
		return 1
	}
	makefile := "PREFIX = " + prefix + `
BIN = emacs

all: $(BIN)

$(BIN): src/emacs.c src/lisp.c src/buffer.c
	cc -O2 -o $(BIN) src/emacs.c src/lisp.c src/buffer.c

install: $(BIN)
	install -d $(PREFIX)/bin $(PREFIX)/share/emacs
	install -m 0755 $(BIN) $(PREFIX)/bin/emacs
	install -m 0644 etc/DOC $(PREFIX)/share/emacs/DOC

uninstall:
	rm -f $(PREFIX)/bin/emacs
	rm -f $(PREFIX)/share/emacs/DOC
`
	if err := writeFile(p, "Makefile", []byte(makefile), 0o644); err != nil {
		stderr(p, "configure: cannot write Makefile: %v\n", err)
		return 1
	}
	stdout(p, "configure: creating Makefile\n")
	return 0
}
