package binaries

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/netstack"
)

// httpdMain is the Apache stand-in for the web-server case study (§4.1):
// it serves files below a document root, appends to an access log, and
// handles concurrent connections. Its contract in the case study gives
// it "read-only access to configuration files and web content
// directories, the ability to create and use sockets, and write-only
// access to log files".
//
// Configuration file directives: Listen <port>, DocumentRoot <dir>,
// AccessLog <file>. The server exits on "GET /__shutdown".
func httpdMain(p *kernel.Proc, argv []string) int {
	conf := "/usr/local/etc/apache22/httpd.conf"
	for i := 1; i < len(argv); i++ {
		if argv[i] == "-f" && i+1 < len(argv) {
			conf = argv[i+1]
			i++
		}
	}
	data, err := readFile(p, conf)
	if err != nil {
		stderr(p, "httpd: %s: %v\n", conf, err)
		return 1
	}
	port, docroot, accessLog := "80", "/usr/local/www", ""
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "Listen":
			port = fields[1]
		case "DocumentRoot":
			docroot = fields[1]
		case "AccessLog":
			accessLog = fields[1]
		}
	}

	l, err := p.Socket(netstack.DomainIP)
	if err != nil {
		stderr(p, "httpd: socket: %v\n", err)
		return 1
	}
	if err := p.Bind(l, port); err != nil {
		stderr(p, "httpd: bind %s: %v\n", port, err)
		return 1
	}
	if err := p.Listen(l); err != nil {
		stderr(p, "httpd: listen: %v\n", err)
		return 1
	}

	var wg sync.WaitGroup
	shutdown := false
	for !shutdown {
		conn, err := p.Accept(l)
		if err != nil {
			break
		}
		line, _, err := readLine(p, conn)
		if err != nil {
			p.Close(conn)
			continue
		}
		path := strings.TrimSpace(strings.TrimPrefix(line, "GET "))
		if path == "/__shutdown" {
			p.Send(conn, []byte("OK 0\n"))
			p.Close(conn)
			shutdown = true
			break
		}
		wg.Add(1)
		go func(conn int, path string) {
			defer wg.Done()
			defer p.Close(conn)
			serveOne(p, conn, docroot, accessLog, path)
		}(conn, path)
	}
	wg.Wait()
	p.Close(l)
	return 0
}

func serveOne(p *kernel.Proc, conn int, docroot, accessLog, path string) {
	full := joinPath(docroot, strings.TrimPrefix(path, "/"))
	fd, err := p.OpenAt(kernel.AtCWD, full, kernel.ORead, 0)
	status := "200"
	if err != nil {
		status = "404"
		p.Send(conn, []byte("ERR not found\n"))
	} else {
		st, _ := p.FStat(fd)
		p.Send(conn, []byte(fmt.Sprintf("OK %d\n", st.Size)))
		buf := make([]byte, 64*1024)
		for {
			n, err := p.Read(fd, buf)
			if n > 0 {
				if _, werr := p.Send(conn, buf[:n]); werr != nil {
					break
				}
			}
			if err != nil || n == 0 {
				break
			}
		}
		p.Close(fd)
	}
	if accessLog != "" {
		// Concurrent requests append whole lines; the log capability is
		// write-only in the case-study contract.
		appendFile(p, accessLog, []byte(fmt.Sprintf("GET %s %s\n", path, status)))
	}
}

// abMain is the ApacheBench stand-in: ab -n <requests> -c <concurrency>
// url. The paper's benchmark downloads a 50 MB file 5000 times with up
// to 100 concurrent connections (§4.1).
func abMain(p *kernel.Proc, argv []string) int {
	n, c := 1, 1
	var url string
	args := argv[1:]
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-n" && i+1 < len(args):
			fmt.Sscanf(args[i+1], "%d", &n)
			i++
		case args[i] == "-c" && i+1 < len(args):
			fmt.Sscanf(args[i+1], "%d", &c)
			i++
		default:
			url = args[i]
		}
	}
	if url == "" {
		stderr(p, "usage: ab -n N -c C url\n")
		return 2
	}
	_, port, path, err := parseURL(url)
	if err != nil {
		stderr(p, "ab: %v\n", err)
		return 2
	}
	if c < 1 {
		c = 1
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	var bytes int64
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64*1024)
			for range work {
				got, err := fetchOne(p, port, path, buf)
				mu.Lock()
				if err != nil {
					failures++
				} else {
					bytes += got
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stdout(p, "Complete requests: %d\nFailed requests: %d\nTotal transferred: %d bytes\n",
		n, failures, bytes)
	if failures > 0 {
		return 1
	}
	return 0
}

func fetchOne(p *kernel.Proc, port, path string, buf []byte) (int64, error) {
	sock, err := p.Socket(netstack.DomainIP)
	if err != nil {
		return 0, err
	}
	defer p.Close(sock)
	if err := p.Connect(sock, port); err != nil {
		return 0, err
	}
	if _, err := p.Send(sock, []byte("GET "+path+"\n")); err != nil {
		return 0, err
	}
	header, rest, err := readLine(p, sock)
	if err != nil {
		return 0, err
	}
	var size int64
	if _, err := fmt.Sscanf(header, "OK %d", &size); err != nil {
		return 0, fmt.Errorf("server error: %s", header)
	}
	got := int64(len(rest))
	for got < size {
		n, err := p.Recv(sock, buf)
		if err != nil {
			return got, err
		}
		if n == 0 {
			break
		}
		got += int64(n)
	}
	if got != size {
		return got, fmt.Errorf("short body: %d of %d", got, size)
	}
	return got, nil
}
