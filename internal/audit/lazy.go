package audit

import "sync"

// LazyObject defers an expensive description (typically a vfs path
// walk) until something actually reads it: the deny hot path records a
// closure over the minimal facts, and formatting, wire JSON, or a
// why-denied query forces it later. The resolved value is memoized, so
// a LazyObject shared between an Event and a DenyReason computes its
// description at most once however many views force it.
type LazyObject struct {
	once sync.Once
	fn   func() string
	val  string
}

// DeferObject wraps a description closure. fn runs at most once, on
// first Value call; it must be safe to call from any goroutine.
func DeferObject(fn func() string) *LazyObject {
	return &LazyObject{fn: fn}
}

// Value forces and returns the description. Safe for concurrent use.
func (z *LazyObject) Value() string {
	if z == nil {
		return ""
	}
	z.once.Do(func() {
		z.val = z.fn()
		z.fn = nil
	})
	return z.val
}
