package audit

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/priv"
)

// Layer names the part of the system that decided an operation. Values
// start at 1 so a zero-valued Filter field means "any layer".
type Layer uint8

// Deciding layers, ordered the way a syscall traverses them: DAC first,
// then the MAC framework's registered policies (of which the SHILL
// policy is one), then — inside the language runtime — the capability
// layer and the contract system.
const (
	LayerDAC        Layer = iota + 1 // classic UNIX permission bits
	LayerMAC                         // a registered MAC policy module
	LayerPolicy                      // the SHILL policy's privilege maps
	LayerCapability                  // the language-level capability grant
	LayerContract                    // a contract violation
)

func (l Layer) String() string {
	switch l {
	case LayerDAC:
		return "DAC"
	case LayerMAC:
		return "MAC"
	case LayerPolicy:
		return "shill-policy"
	case LayerCapability:
		return "capability"
	case LayerContract:
		return "contract"
	}
	return "unknown"
}

// DenyReason is a structured denial: the provenance of an EPERM/EACCES.
// It implements error and unwraps to the underlying errno sentinel, so
// every existing errors.Is(err, errno.EACCES) check keeps working while
// the message — and the fields, for tools like shill-audit — explain
// which layer, operation, object, and missing privilege produced the
// denial (the explainability §3.2.2's logging facility gestures at).
type DenyReason struct {
	Layer   Layer
	Policy  string   // deciding MAC policy module, when Layer is MAC/Policy
	Op      string   // operation that was refused
	Object  string   // object path or name, best-effort
	Session uint64   // denied session, 0 if ambient
	Missing priv.Set // privileges the subject lacked
	CapID   uint64   // capability involved, if the denial is capability-level
	Blame   []string // contract chain that attenuated the capability
	Seq     uint64   // audit sequence number of the recorded denial event
	TraceID uint64   // request trace the denial landed in, 0 if untraced
	Errno   error    // underlying sentinel (errno.EACCES, errno.EPERM, …)

	// ObjectFn, when set, lazily resolves Object: deny sites capture a
	// closure over the denied object instead of walking its path on the
	// hot path. Error, MarshalJSON, and Resolve force it; code reading
	// the Object field directly must call Resolve first.
	ObjectFn *LazyObject
	// blameFn lazily resolves the single-entry Blame chain carried by
	// reconstructed cap-deny reasons (DenyReasonsSince).
	blameFn *LazyObject
}

// Resolve forces any deferred fields and returns d, so direct field
// reads (d.Object, d.Blame) see the final values. Error and
// MarshalJSON resolve on their own without mutating d.
func (d *DenyReason) Resolve() *DenyReason {
	if d == nil {
		return nil
	}
	if d.ObjectFn != nil {
		if d.Object == "" {
			d.Object = d.ObjectFn.Value()
		}
		d.ObjectFn = nil
	}
	if d.blameFn != nil {
		if len(d.Blame) == 0 {
			if det := d.blameFn.Value(); det != "" {
				d.Blame = []string{det}
			}
		}
		d.blameFn = nil
	}
	return d
}

// object returns the resolved object description without mutating d.
func (d *DenyReason) object() string {
	if d.Object == "" && d.ObjectFn != nil {
		return d.ObjectFn.Value()
	}
	return d.Object
}

// blame returns the resolved blame chain without mutating d.
func (d *DenyReason) blame() []string {
	if len(d.Blame) == 0 && d.blameFn != nil {
		if det := d.blameFn.Value(); det != "" {
			return []string{det}
		}
	}
	return d.Blame
}

// Error renders the full provenance in one line, so even a bare %v in a
// script's stderr names the missing privilege.
func (d *DenyReason) Error() string {
	var b strings.Builder
	if d.Errno != nil {
		fmt.Fprintf(&b, "%v: ", d.Errno)
	}
	fmt.Fprintf(&b, "operation %q", d.Op)
	if obj := d.object(); obj != "" {
		fmt.Fprintf(&b, " on %s", obj)
	}
	fmt.Fprintf(&b, " denied by %s", d.Layer)
	if d.Policy != "" && d.Layer == LayerMAC {
		fmt.Fprintf(&b, " policy %q", d.Policy)
	}
	if d.Session != 0 {
		fmt.Fprintf(&b, " (session %d)", d.Session)
	}
	if !d.Missing.Empty() {
		fmt.Fprintf(&b, ": missing privileges %v", d.Missing)
	}
	if blame := d.blame(); len(blame) > 0 {
		fmt.Fprintf(&b, " (restricted by: %s)", strings.Join(blame, " <- "))
	}
	return b.String()
}

// Unwrap exposes the errno sentinel to errors.Is.
func (d *DenyReason) Unwrap() error { return d.Errno }

// ReasonFor extracts the structured denial from an error chain, or nil.
func ReasonFor(err error) *DenyReason {
	var d *DenyReason
	if errors.As(err, &d) {
		return d
	}
	return nil
}

// Annotate attributes a MAC-framework denial to the policy module that
// produced it. Errors that already carry a DenyReason keep it (the
// SHILL policy builds richer ones itself); bare errors from third-party
// policy modules are wrapped so the deciding layer is never lost.
func Annotate(err error, policy, op, object string) error {
	if err == nil {
		return nil
	}
	if d := ReasonFor(err); d != nil {
		if d.Policy == "" {
			d.Policy = policy
		}
		return err
	}
	return &DenyReason{
		Layer:  LayerMAC,
		Policy: policy,
		Op:     op,
		Object: object,
		Errno:  err,
	}
}
