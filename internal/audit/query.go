package audit

import (
	"fmt"
	"strings"
)

// Filter selects events. The zero value matches everything; set a field
// to narrow. Session 0 means any session; use GlobalSession for the
// ambient shard specifically.
type Filter struct {
	Session  uint64 // exact session id; 0 = any
	Global   bool   // only the ambient (session-less) shard
	Kind     Kind   // 0 = any
	Verdict  Verdict
	Layer    Layer
	Path     string // substring match against Object
	CapID    uint64 // events concerning this capability (as subject or parent)
	SinceSeq uint64 // only events with Seq > SinceSeq
}

func (f Filter) match(e *Event) bool {
	if f.Kind != 0 && e.Kind != f.Kind {
		return false
	}
	if f.Verdict != 0 && e.Verdict != f.Verdict {
		return false
	}
	if f.Layer != 0 && e.Layer != f.Layer {
		return false
	}
	if f.Path != "" && !strings.Contains(e.Object, f.Path) {
		return false
	}
	if f.CapID != 0 && e.CapID != f.CapID && e.Parent != f.CapID {
		return false
	}
	if f.SinceSeq != 0 && e.Seq <= f.SinceSeq {
		return false
	}
	return true
}

// Query returns the retained events matching the filter, in global
// sequence order. It walks only the shards the filter selects.
func (l *Log) Query(f Filter) []Event {
	if l == nil {
		return nil
	}
	var shards []*Shard
	switch {
	case f.Global:
		shards = []*Shard{l.global}
	case f.Session != 0:
		l.mu.RLock()
		if sh := l.shards[f.Session]; sh != nil {
			shards = []*Shard{sh}
		}
		l.mu.RUnlock()
	default:
		shards = append(shards, l.global)
		l.mu.RLock()
		for _, sh := range l.shards {
			shards = append(shards, sh)
		}
		l.mu.RUnlock()
	}
	var out []Event
	for _, sh := range shards {
		for _, e := range sh.Snapshot() {
			if f.match(&e) {
				out = append(out, e)
			}
		}
	}
	sortEvents(out)
	return out
}

// Denials returns every retained denial, most recent last.
func (l *Log) Denials() []Event {
	return l.Query(Filter{Verdict: Deny})
}

// DenyReasonsSince reconstructs structured DenyReasons from the denial
// events recorded after the sequence point since (exclusive) — the
// windowed view a per-run Result carries, so each run reports its own
// denials instead of the whole log's history. Events carry no errno, so
// reconstructed reasons unwrap to nil; reasons that travelled as errors
// through the script keep their original sentinel.
func (l *Log) DenyReasonsSince(since uint64) []*DenyReason {
	if l == nil {
		return nil
	}
	// The lazy variant keeps deferred object/blame descriptions
	// deferred: a run whose Result (and its denial slice) is never
	// formatted or serialized never resolves a single path.
	events := l.recentDenialsLazy(since)
	out := make([]*DenyReason, 0, len(events))
	for _, e := range events {
		d := &DenyReason{
			Layer:    e.Layer,
			Policy:   e.Policy,
			Op:       e.Op,
			Object:   e.Object,
			ObjectFn: e.ObjectFn,
			Session:  e.Session,
			Missing:  e.Rights,
			CapID:    e.CapID,
			Seq:      e.Seq,
			TraceID:  e.Trace,
		}
		if e.Kind == KindCapDeny {
			if e.Detail != "" {
				d.Blame = []string{e.Detail}
			} else {
				d.blameFn = e.DetailFn
			}
		}
		out = append(out, d)
	}
	return out
}

// Lineage reconstructs a capability's provenance chain: the sequence of
// cap-new / cap-derive events from the forge that minted its oldest
// retained ancestor down to the capability itself. The chain is bounded
// by ring retention — a long-lived capability's origin may have been
// overwritten, in which case the chain starts at the oldest retained
// link.
func (l *Log) Lineage(capID uint64) []Event {
	if l == nil || capID == 0 {
		return nil
	}
	// Index derivation events by the capability they produced. Later
	// events win, matching "the most recent derivation of this id".
	byCap := make(map[uint64]Event)
	for _, e := range l.Query(Filter{}) {
		if e.Kind == KindCapNew || e.Kind == KindCapDerive {
			byCap[e.CapID] = e
		}
	}
	var chain []Event
	for id := capID; id != 0; {
		e, ok := byCap[id]
		if !ok {
			break
		}
		chain = append([]Event{e}, chain...)
		if len(chain) > 256 { // defensive: lineage cycles cannot happen, but cap the walk
			break
		}
		id = e.Parent
	}
	return chain
}

// FormatLineage renders a lineage chain as a one-line provenance trail,
// e.g. "open_dir(/home/user) -> lookup "Documents" -> restrict[file(+read)]".
func FormatLineage(chain []Event) string {
	if len(chain) == 0 {
		return "(no retained lineage)"
	}
	parts := make([]string, 0, len(chain))
	for _, e := range chain {
		switch e.Kind {
		case KindCapNew:
			origin := e.Detail
			if origin == "" {
				origin = "forge"
			}
			parts = append(parts, fmt.Sprintf("%s(%s)", origin, e.Object))
		case KindCapDerive:
			switch e.Op {
			case "restrict":
				parts = append(parts, fmt.Sprintf("restrict[%s]", e.Detail))
			default:
				parts = append(parts, fmt.Sprintf("%s %q", e.Op, e.Object))
			}
		}
	}
	return strings.Join(parts, " -> ")
}

// Summary aggregates a set of events for reports.
type Summary struct {
	Total     int
	ByKind    map[Kind]int
	ByLayer   map[Layer]int
	ByVerdict map[Verdict]int
	Denied    []Event // denial events, in order
	Sessions  map[uint64]int
}

// Summarize aggregates events.
func Summarize(events []Event) Summary {
	s := Summary{
		ByKind:    make(map[Kind]int),
		ByLayer:   make(map[Layer]int),
		ByVerdict: make(map[Verdict]int),
		Sessions:  make(map[uint64]int),
	}
	for _, e := range events {
		s.Total++
		s.ByKind[e.Kind]++
		if e.Layer != 0 {
			s.ByLayer[e.Layer]++
		}
		if e.Verdict != 0 {
			s.ByVerdict[e.Verdict]++
		}
		s.Sessions[e.Session]++
		if e.Verdict == Deny {
			s.Denied = append(s.Denied, e)
		}
	}
	return s
}

// FormatEvent renders one event the way shill-audit prints it.
func FormatEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-6d s%-3d %-10s", e.Seq, e.Session, e.Kind)
	if e.Verdict != 0 {
		fmt.Fprintf(&b, " %-5s", e.Verdict)
	}
	if e.Layer != 0 {
		fmt.Fprintf(&b, " [%s]", e.Layer)
	}
	if e.Op != "" {
		fmt.Fprintf(&b, " %s", e.Op)
	}
	if e.Object != "" {
		fmt.Fprintf(&b, " %s", e.Object)
	}
	if !e.Rights.Empty() {
		fmt.Fprintf(&b, " %v", e.Rights)
	}
	if e.CapID != 0 {
		fmt.Fprintf(&b, " cap#%d", e.CapID)
		if e.Parent != 0 {
			fmt.Fprintf(&b, "<-cap#%d", e.Parent)
		}
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}
