package audit

import "repro/internal/priv"

// Explain is the shared why-denied query path: it turns the log's
// retained denial events into self-contained, JSON-ready explanations —
// the deciding layer, operation, object, missing privileges, contract
// blame, and (for capability-level denials) the full forge-to-denial
// lineage. cmd/shill-audit prints these; shilld serves them over
// GET /v1/audit/why-denied, so a rejected request is explainable over
// the wire with exactly the provenance the CLI shows locally.

// Explanation is one denial, explained.
type Explanation struct {
	Seq     uint64   `json:"seq"`
	Session uint64   `json:"session"`
	Kind    Kind     `json:"kind"`
	Layer   Layer    `json:"layer"`
	Policy  string   `json:"policy,omitempty"`
	Op      string   `json:"op"`
	Object  string   `json:"object,omitempty"`
	Missing priv.Set `json:"missing,omitempty"`
	// Detail carries the kind-specific context: the contract that
	// attenuated the capability (cap-deny), the contract label and
	// outcome (contract), or the deciding rule (syscall denials).
	Detail  string `json:"detail,omitempty"`
	CapID   uint64 `json:"capId,omitempty"`
	Lineage string `json:"lineage,omitempty"`
	// TraceID links the denial to its request trace (internal/trace):
	// /v1/trace?tenant=T serves the span tree the ID names, showing when
	// in the request the denial landed.
	TraceID uint64 `json:"traceId,omitempty"`
}

// Explain returns an explanation for every retained denial recorded
// after the sequence point since (exclusive); since 0 explains the
// whole retained log. A nil log explains nothing.
func Explain(l *Log, since uint64) []Explanation {
	if l == nil {
		return nil
	}
	events := l.Denials()
	out := make([]Explanation, 0, len(events))
	for _, e := range events {
		if e.Seq <= since {
			continue
		}
		ex := Explanation{
			Seq:     e.Seq,
			Session: e.Session,
			Kind:    e.Kind,
			Layer:   e.Layer,
			Policy:  e.Policy,
			Op:      e.Op,
			Object:  e.Object,
			Missing: e.Rights,
			Detail:  e.Detail,
			CapID:   e.CapID,
			TraceID: e.Trace,
		}
		if e.CapID != 0 {
			ex.Lineage = FormatLineage(l.Lineage(e.CapID))
		}
		out = append(out, ex)
	}
	return out
}
