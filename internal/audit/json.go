package audit

import (
	"encoding/json"
	"fmt"

	"repro/internal/errno"
	"repro/internal/priv"
)

// JSON encoding: DenyReason is part of shilld's wire format — a client
// that POSTs a script receives the structured provenance of every
// denial the run recorded. Layers and kinds travel as their display
// names, privilege sets as name lists, and the errno as its canonical
// message, so a denial survives encode→decode with errors.Is intact.

// MarshalText renders the layer name ("DAC", "shill-policy", …).
func (l Layer) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses a layer name produced by MarshalText.
func (l *Layer) UnmarshalText(b []byte) error {
	s := string(b)
	for c := LayerDAC; c <= LayerContract; c++ {
		if c.String() == s {
			*l = c
			return nil
		}
	}
	return fmt.Errorf("audit: unknown layer %q", s)
}

// MarshalText renders the kind name ("syscall", "cap-deny", …).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name produced by MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for c := KindSyscall; c <= KindExit; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("audit: unknown kind %q", s)
}

// MarshalText renders the verdict name ("allow", "deny").
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a verdict name produced by MarshalText.
func (v *Verdict) UnmarshalText(b []byte) error {
	switch string(b) {
	case Allow.String():
		*v = Allow
	case Deny.String():
		*v = Deny
	default:
		return fmt.Errorf("audit: unknown verdict %q", string(b))
	}
	return nil
}

// denyReasonJSON is the wire shape of a DenyReason; Errno travels as
// its canonical message.
type denyReasonJSON struct {
	Layer   Layer    `json:"layer"`
	Policy  string   `json:"policy,omitempty"`
	Op      string   `json:"op"`
	Object  string   `json:"object,omitempty"`
	Session uint64   `json:"session,omitempty"`
	Missing priv.Set `json:"missing,omitempty"`
	CapID   uint64   `json:"capId,omitempty"`
	Blame   []string `json:"blame,omitempty"`
	Seq     uint64   `json:"seq,omitempty"`
	TraceID uint64   `json:"traceId,omitempty"`
	Errno   string   `json:"errno,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d *DenyReason) MarshalJSON() ([]byte, error) {
	w := denyReasonJSON{
		Layer:   d.Layer,
		Policy:  d.Policy,
		Op:      d.Op,
		Object:  d.object(),
		Session: d.Session,
		Missing: d.Missing,
		CapID:   d.CapID,
		Blame:   d.blame(),
		Seq:     d.Seq,
		TraceID: d.TraceID,
	}
	if d.Errno != nil {
		w.Errno = d.Errno.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded reason's Errno
// is the canonical sentinel when the message names one, so errors.Is
// checks against errno.EACCES et al. keep working across the wire.
func (d *DenyReason) UnmarshalJSON(b []byte) error {
	var w denyReasonJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*d = DenyReason{
		Layer:   w.Layer,
		Policy:  w.Policy,
		Op:      w.Op,
		Object:  w.Object,
		Session: w.Session,
		Missing: w.Missing,
		CapID:   w.CapID,
		Blame:   w.Blame,
		Seq:     w.Seq,
		TraceID: w.TraceID,
		Errno:   errno.Canonical(w.Errno),
	}
	return nil
}
