// Package audit is the capability provenance and audit subsystem: an
// always-on, low-overhead, append-only event log that records every
// security-relevant decision the simulated system makes — syscall
// allow/deny outcomes with the deciding layer (DAC, MAC policy, SHILL
// policy, capability runtime, contract system), capability creation and
// derivation lineage (which forge, wallet, or contract produced each
// capability), contract check outcomes, and sandbox spawn/exit.
//
// The log is sharded per session so concurrent sandbox sessions never
// contend: each shard is a fixed-size ring of immutable events whose
// slots are atomic pointers, and the only cross-shard state is one
// atomic global sequencer that gives events a total order. The hot path
// (Emit) is lock-free — an atomic sequence fetch, an atomic cursor
// fetch, and an atomic pointer store — so audit can stay enabled in
// production multi-session serving without a measurable throughput
// hit. Denial events are additionally retained in a small per-shard
// side ring so a burst of allowed operations can never evict the one
// denial a user needs explained.
//
// Structured denials travel as *DenyReason errors (deny.go), so an
// EACCES/EPERM observed by a script names the layer, operation, object,
// and missing privileges that produced it instead of a bare errno.
package audit

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/priv"
	"repro/internal/prof"
)

// Kind classifies audit events. Values start at 1 so a zero-valued
// Filter field means "any kind".
type Kind uint8

// Event kinds.
const (
	KindSyscall   Kind = iota + 1 // a mediated operation was checked
	KindGrant                     // a capability grant was installed on an object
	KindPropagate                 // privileges propagated to a derived object
	KindAutoGrant                 // debug mode auto-granted a missing privilege
	KindCapNew                    // a capability was minted by a forge/wallet
	KindCapDerive                 // a capability was derived from another
	KindCapDeny                   // the capability runtime refused an operation
	KindContract                  // a contract check ran
	KindSpawn                     // a session or sandboxed process started
	KindExit                      // a session or sandboxed process ended
)

func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindGrant:
		return "grant"
	case KindPropagate:
		return "propagate"
	case KindAutoGrant:
		return "autogrant"
	case KindCapNew:
		return "cap-new"
	case KindCapDerive:
		return "cap-derive"
	case KindCapDeny:
		return "cap-deny"
	case KindContract:
		return "contract"
	case KindSpawn:
		return "spawn"
	case KindExit:
		return "exit"
	}
	return "unknown"
}

// Verdict is an event's outcome. Values start at 1 so a zero-valued
// Filter field means "any verdict".
type Verdict uint8

// Verdicts.
const (
	Allow Verdict = iota + 1
	Deny
)

func (v Verdict) String() string {
	switch v {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	}
	return "unknown"
}

// Event is one immutable audit record. Events are stored by pointer and
// never mutated after Emit, which is what makes the lock-free ring
// reads safe.
type Event struct {
	Seq     uint64 // global total order, assigned by Emit
	Session uint64 // owning session id; 0 for ambient/global activity
	Kind    Kind
	Verdict Verdict
	Layer   Layer    // deciding layer for allow/deny events
	Policy  string   // MAC policy module that decided, if any
	Op      string   // operation name ("read", "lookup", "sock-send", …)
	Object  string   // object path or name, as cheap as the hot path allows
	Rights  priv.Set // rights granted, propagated, or found missing
	CapID   uint64   // capability the event concerns (lineage)
	Parent  uint64   // parent capability for derivation events
	Detail  string   // free-form: forge name, contract label, exit code…
	Trace   uint64   // request trace the event belongs to (internal/trace), 0 if untraced

	// ObjectFn/DetailFn defer the Object/Detail description (deny.go's
	// lazy provenance): the emitting hot path stores a closure instead
	// of walking paths eagerly, and every read path that hands events
	// out (Snapshot, RecentDenials) forces them on its copies. Shared
	// LazyObjects memoize, so at most one walk happens per fact.
	ObjectFn *LazyObject
	DetailFn *LazyObject
}

// resolveLazy forces any deferred descriptions into the string fields.
// It is called on copies handed out by queries — events stored in the
// rings stay immutable.
func (e *Event) resolveLazy() {
	if e.ObjectFn != nil {
		if e.Object == "" {
			e.Object = e.ObjectFn.Value()
		}
		e.ObjectFn = nil
	}
	if e.DetailFn != nil {
		if e.Detail == "" {
			e.Detail = e.DetailFn.Value()
		}
		e.DetailFn = nil
	}
}

// Shard is one session's ring of events. All methods are safe for
// concurrent use; writers never block and never allocate beyond the
// event itself.
type Shard struct {
	session uint64
	size    int
	cursor  atomic.Uint64
	slots   atomic.Pointer[[]atomic.Pointer[Event]]

	// Denials ride in a second, smaller ring so allowed-operation
	// churn cannot evict them before a query explains the failure.
	denySize   int
	denyCursor atomic.Uint64
	denySlots  atomic.Pointer[[]atomic.Pointer[Event]]
}

// lazyRing returns the ring behind p, allocating it on first use: ring
// zeroing is deferred from construction (machine boot, sandbox spawn)
// to the first event that actually needs the ring. A losing racer's
// allocation is discarded; both see the published ring.
func lazyRing(p *atomic.Pointer[[]atomic.Pointer[Event]], size int) []atomic.Pointer[Event] {
	if r := p.Load(); r != nil {
		return *r
	}
	fresh := make([]atomic.Pointer[Event], size)
	if p.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *p.Load()
}

// loadRing returns the ring behind p without allocating: nil means no
// event was ever stored, so readers have nothing to scan.
func loadRing(p *atomic.Pointer[[]atomic.Pointer[Event]]) []atomic.Pointer[Event] {
	if r := p.Load(); r != nil {
		return *r
	}
	return nil
}

// Session returns the session id the shard records for.
func (sh *Shard) Session() uint64 { return sh.session }

func (sh *Shard) put(e *Event) {
	i := sh.cursor.Add(1) - 1
	ring := lazyRing(&sh.slots, sh.size)
	ring[i%uint64(len(ring))].Store(e)
	if e.Verdict == Deny {
		j := sh.denyCursor.Add(1) - 1
		deny := lazyRing(&sh.denySlots, sh.denySize)
		deny[j%uint64(len(deny))].Store(e)
	}
}

// Emitted returns how many events the shard has ever received (not how
// many its ring still holds).
func (sh *Shard) Emitted() uint64 { return sh.cursor.Load() }

// Snapshot returns the events currently held by the shard (main ring
// plus retained denials), deduplicated by sequence number and sorted in
// emission order. Concurrent writers may overwrite slots during the
// scan; every returned event is internally consistent because events
// are immutable once stored.
func (sh *Shard) Snapshot() []Event {
	main, deny := loadRing(&sh.slots), loadRing(&sh.denySlots)
	seen := make(map[uint64]struct{}, len(main)+len(deny))
	out := make([]Event, 0, len(main))
	collect := func(slots []atomic.Pointer[Event]) {
		for i := range slots {
			e := slots[i].Load()
			if e == nil {
				continue
			}
			if _, dup := seen[e.Seq]; dup {
				continue
			}
			seen[e.Seq] = struct{}{}
			ev := *e
			ev.resolveLazy()
			out = append(out, ev)
		}
	}
	collect(main)
	collect(deny)
	sortEvents(out)
	return out
}

// Default ring geometry. The global shard retains the most recent ~4k
// decisions and 512 denials. Per-session shards are deliberately small:
// a kernel session is one sandbox execution (a few dozen decisions),
// so a large ring would be dead weight even allocated lazily. All
// rings wrap (append-only semantics with bounded memory), and none is
// allocated before its first event (lazyRing) — shard construction on
// the boot and spawn paths costs a few words, not a zeroed ring.
const (
	DefaultShardSize = 4096
	DefaultDenySize  = 512

	sessionShardSize = 256
	sessionDenySize  = 64

	// maxSessionShards bounds retained per-session history: beyond it
	// the oldest session's shard is evicted, the same wraparound rule
	// the rings apply per event. ~1k sessions × ~2.5KB ≈ 2.5MB ceiling.
	maxSessionShards = 1024
)

// Log is the audit log for one kernel: a set of per-session shards plus
// a global shard for ambient (session-less) activity, ordered by one
// atomic sequencer.
type Log struct {
	enabled     atomic.Bool
	seq         atomic.Uint64
	shardSize   int
	denySize    int
	sessionSize int
	sessionDeny int

	global *Shard

	// denyAll is a log-wide ring of the most recent denials across every
	// shard. Windowed queries (DenyReasonsSince, per-run Result denial
	// slices) scan this small ring instead of walking every session
	// shard, so attaching denial provenance to each run stays O(ring)
	// however many sessions the kernel has served.
	denyAllCursor atomic.Uint64
	denyAll       atomic.Pointer[[]atomic.Pointer[Event]]

	mu         sync.RWMutex
	shards     map[uint64]*Shard
	shardOrder []uint64 // insertion order, for bounded-history eviction

	// Self-instrumentation: estimated total time spent inside Emit
	// (sampled, see timingSample), drained into a prof.Collector's
	// AuditEmit category by FlushProf.
	emitNanos atomic.Int64
}

// NewLog returns an enabled log. shardSize/denySize of 0 select the
// defaults; tests shrink them to exercise wraparound. Session shards
// use the (smaller) session geometry, clamped to the configured sizes
// so shrunken test logs shrink everywhere.
func NewLog(shardSize, denySize int) *Log {
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if denySize <= 0 {
		denySize = DefaultDenySize
	}
	l := &Log{
		shardSize:   shardSize,
		denySize:    denySize,
		sessionSize: min(shardSize, sessionShardSize),
		sessionDeny: min(denySize, sessionDenySize),
		shards:      make(map[uint64]*Shard),
	}
	l.global = newShard(0, l.shardSize, l.denySize)
	l.enabled.Store(true)
	return l
}

// putDeny records a denial in the log-wide denial ring.
func (l *Log) putDeny(e *Event) {
	i := l.denyAllCursor.Add(1) - 1
	ring := lazyRing(&l.denyAll, l.denySize)
	ring[i%uint64(len(ring))].Store(e)
}

// RecentDenials returns the denials retained by the log-wide denial
// ring whose sequence number is greater than since, in emission order.
// This is the cheap windowed view; per-session rings still retain their
// own denials for session-filtered queries.
func (l *Log) RecentDenials(since uint64) []Event {
	out := l.recentDenialsLazy(since)
	for i := range out {
		out[i].resolveLazy()
	}
	return out
}

// recentDenialsLazy is RecentDenials without forcing deferred
// descriptions — the variant DenyReasonsSince builds per-run windows
// from, so a run whose Result is never inspected never pays for path
// resolution.
func (l *Log) recentDenialsLazy(since uint64) []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, 8)
	ring := loadRing(&l.denyAll)
	for i := range ring {
		e := ring[i].Load()
		if e != nil && e.Seq > since {
			out = append(out, *e)
		}
	}
	sortEvents(out)
	return out
}

func newShard(session uint64, size, denySize int) *Shard {
	return &Shard{session: session, size: size, denySize: denySize}
}

// SetEnabled toggles recording. Disabled, Emit is a single atomic load.
func (l *Log) SetEnabled(on bool) {
	if l != nil {
		l.enabled.Store(on)
	}
}

// Enabled reports whether the log records events.
func (l *Log) Enabled() bool { return l != nil && l.enabled.Load() }

// Global returns the shard for ambient (session-less) activity.
func (l *Log) Global() *Shard {
	if l == nil {
		return nil
	}
	return l.global
}

// SessionShard returns (creating if needed) the shard for a session id.
// Sessions cache the returned pointer, so the map is touched once per
// session. Retained history is bounded: past maxSessionShards the
// oldest session's shard is dropped from the queryable set (writers
// holding the evicted pointer still write to it harmlessly; it is
// simply no longer reachable from queries).
func (l *Log) SessionShard(session uint64) *Shard {
	if l == nil {
		return nil
	}
	if session == 0 {
		return l.global
	}
	l.mu.RLock()
	sh := l.shards[session]
	l.mu.RUnlock()
	if sh != nil {
		return sh
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if sh = l.shards[session]; sh == nil {
		sh = newShard(session, l.sessionSize, l.sessionDeny)
		l.shards[session] = sh
		l.shardOrder = append(l.shardOrder, session)
		if len(l.shardOrder) > maxSessionShards {
			delete(l.shards, l.shardOrder[0])
			l.shardOrder = l.shardOrder[1:]
		}
	}
	return sh
}

// timingSample controls the self-instrumentation duty cycle: one emit
// in every timingSample is timed and its duration scaled up, so the
// AuditEmit attribution stays live while the common emit pays only a
// mask-and-compare instead of two clock reads.
const timingSample = 64

// Emit records an event on the given shard (nil means the global
// shard), assigning its global sequence number. It returns the sequence
// number, or 0 when the log is disabled. Emit is the lock-free hot
// path: no locks, no map lookups, one small allocation.
func (l *Log) Emit(sh *Shard, e Event) uint64 {
	if l == nil || !l.enabled.Load() {
		return 0
	}
	seq := l.seq.Add(1)
	var start time.Time
	timed := seq%timingSample == 0
	if timed {
		start = time.Now()
	}
	e.Seq = seq
	if sh == nil {
		sh = l.global
	}
	if e.Session == 0 {
		e.Session = sh.session
	}
	sh.put(&e)
	if e.Verdict == Deny {
		l.putDeny(&e)
	}
	if timed {
		l.emitNanos.Add(int64(time.Since(start)) * timingSample)
	}
	return seq
}

// StartAt advances the sequence counter to at least seq without
// emitting events. Machine restore uses it so a restored machine's
// audit trail continues the captured machine's ordering instead of
// reissuing sequence numbers.
func (l *Log) StartAt(seq uint64) {
	if l == nil {
		return
	}
	for {
		cur := l.seq.Load()
		if cur >= seq || l.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Seq returns the latest assigned sequence number.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Emits returns the total number of recorded events. Every emit takes
// exactly one sequence number, so the sequencer doubles as the counter.
func (l *Log) Emits() uint64 { return l.Seq() }

// DrainEmitTime returns and zeroes the accumulated time spent emitting
// events — the audit subsystem's own overhead, attributed to the
// Figure-10 breakdown via prof.AuditEmit.
func (l *Log) DrainEmitTime() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.emitNanos.Swap(0))
}

// FlushProf drains the accumulated emission time into a collector's
// AuditEmit category, so Figure-10 breakdowns attribute audit overhead.
func (l *Log) FlushProf(c *prof.Collector) {
	if d := l.DrainEmitTime(); d > 0 {
		c.Add(prof.AuditEmit, d)
	}
}

// Sessions returns the ids of every session that has a shard, sorted.
func (l *Log) Sessions() []uint64 {
	if l == nil {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]uint64, 0, len(l.shards))
	for id := range l.shards {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortEvents(es []Event) {
	sort.Slice(es, func(i, j int) bool { return es[i].Seq < es[j].Seq })
}
