package audit

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/errno"
	"repro/internal/priv"
)

func TestEmitAssignsGlobalOrder(t *testing.T) {
	l := NewLog(0, 0)
	a := l.SessionShard(1)
	b := l.SessionShard(2)
	if s1 := l.Emit(a, Event{Kind: KindGrant, Op: "grant"}); s1 != 1 {
		t.Fatalf("first seq = %d", s1)
	}
	if s2 := l.Emit(b, Event{Kind: KindGrant, Op: "grant"}); s2 != 2 {
		t.Fatalf("second seq = %d", s2)
	}
	if l.Emits() != 2 {
		t.Fatalf("emits = %d", l.Emits())
	}
	// Events land on their own shards, stamped with the session id.
	ea, eb := a.Snapshot(), b.Snapshot()
	if len(ea) != 1 || len(eb) != 1 {
		t.Fatalf("snapshot sizes = %d, %d", len(ea), len(eb))
	}
	if ea[0].Session != 1 || eb[0].Session != 2 {
		t.Fatalf("sessions = %d, %d", ea[0].Session, eb[0].Session)
	}
}

func TestDisabledLogRecordsNothing(t *testing.T) {
	l := NewLog(0, 0)
	l.SetEnabled(false)
	if seq := l.Emit(nil, Event{Kind: KindSyscall}); seq != 0 {
		t.Fatalf("disabled emit returned seq %d", seq)
	}
	if l.Emits() != 0 || len(l.Global().Snapshot()) != 0 {
		t.Fatal("disabled log retained events")
	}
	l.SetEnabled(true)
	if seq := l.Emit(nil, Event{Kind: KindSyscall}); seq == 0 {
		t.Fatal("re-enabled log did not record")
	}
	var nilLog *Log
	if nilLog.Emit(nil, Event{}) != 0 || nilLog.Enabled() {
		t.Fatal("nil log must be inert")
	}
}

// TestRingWraparound shrinks the ring and overflows it: the shard must
// retain exactly the most recent events, in order.
func TestRingWraparound(t *testing.T) {
	l := NewLog(8, 4)
	sh := l.SessionShard(7)
	for i := 0; i < 20; i++ {
		l.Emit(sh, Event{Kind: KindSyscall, Verdict: Allow, Op: fmt.Sprintf("op%d", i)})
	}
	got := sh.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(got))
	}
	for i, e := range got {
		wantSeq := uint64(13 + i) // events 13..20 survive
		if e.Seq != wantSeq {
			t.Fatalf("slot %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
	}
	if sh.Emitted() != 20 {
		t.Fatalf("Emitted = %d", sh.Emitted())
	}
}

// TestDenyRetention is the property the side ring exists for: a denial
// followed by a flood of allowed operations must still be retrievable.
func TestDenyRetention(t *testing.T) {
	l := NewLog(8, 4)
	sh := l.SessionShard(3)
	l.Emit(sh, Event{Kind: KindSyscall, Verdict: Deny, Layer: LayerPolicy, Op: "write", Object: "/secret"})
	for i := 0; i < 100; i++ {
		l.Emit(sh, Event{Kind: KindSyscall, Verdict: Allow, Op: "read"})
	}
	denials := l.Denials()
	if len(denials) != 1 {
		t.Fatalf("denials = %d, want 1", len(denials))
	}
	if denials[0].Op != "write" || denials[0].Object != "/secret" {
		t.Fatalf("retained denial = %+v", denials[0])
	}
	// The denial also shows up (exactly once) in the full query.
	all := l.Query(Filter{Session: 3})
	count := 0
	for _, e := range all {
		if e.Verdict == Deny {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("deny appears %d times in query", count)
	}
}

func TestQueryFilters(t *testing.T) {
	l := NewLog(0, 0)
	s1, s2 := l.SessionShard(1), l.SessionShard(2)
	l.Emit(s1, Event{Kind: KindSyscall, Verdict: Allow, Layer: LayerPolicy, Op: "read", Object: "/a/x"})
	l.Emit(s1, Event{Kind: KindSyscall, Verdict: Deny, Layer: LayerPolicy, Op: "write", Object: "/a/x", Rights: priv.NewSet(priv.RWrite)})
	l.Emit(s2, Event{Kind: KindCapDeny, Verdict: Deny, Layer: LayerCapability, Op: "write", Object: "/b/y", CapID: 9})
	l.Emit(nil, Event{Kind: KindSpawn, Op: "exec", Object: "sh"})

	if got := l.Query(Filter{Session: 1}); len(got) != 2 {
		t.Fatalf("session filter: %d", len(got))
	}
	if got := l.Query(Filter{Verdict: Deny}); len(got) != 2 {
		t.Fatalf("verdict filter: %d", len(got))
	}
	if got := l.Query(Filter{Layer: LayerCapability}); len(got) != 1 || got[0].CapID != 9 {
		t.Fatalf("layer filter: %+v", got)
	}
	if got := l.Query(Filter{Path: "/a/"}); len(got) != 2 {
		t.Fatalf("path filter: %d", len(got))
	}
	if got := l.Query(Filter{Global: true}); len(got) != 1 || got[0].Kind != KindSpawn {
		t.Fatalf("global filter: %+v", got)
	}
	if got := l.Query(Filter{CapID: 9}); len(got) != 1 {
		t.Fatalf("cap filter: %d", len(got))
	}
	all := l.Query(Filter{})
	if len(all) != 4 {
		t.Fatalf("unfiltered: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq >= all[i].Seq {
			t.Fatal("query result not in sequence order")
		}
	}
	if got := l.Query(Filter{SinceSeq: all[2].Seq}); len(got) != 1 {
		t.Fatalf("since filter: %d", len(got))
	}
}

func TestLineageWalk(t *testing.T) {
	l := NewLog(0, 0)
	l.Emit(nil, Event{Kind: KindCapNew, Op: "mint", Object: "/home", CapID: 1, Detail: "open_dir"})
	l.Emit(nil, Event{Kind: KindCapDerive, Op: "lookup", Object: "docs", CapID: 2, Parent: 1})
	l.Emit(nil, Event{Kind: KindCapDerive, Op: "restrict", Object: "/home/docs", CapID: 3, Parent: 2, Detail: "file(+read)"})
	chain := l.Lineage(3)
	if len(chain) != 3 {
		t.Fatalf("lineage length = %d", len(chain))
	}
	if chain[0].CapID != 1 || chain[2].CapID != 3 {
		t.Fatalf("lineage order wrong: %+v", chain)
	}
	rendered := FormatLineage(chain)
	want := `open_dir(/home) -> lookup "docs" -> restrict[file(+read)]`
	if rendered != want {
		t.Fatalf("FormatLineage = %q, want %q", rendered, want)
	}
	if FormatLineage(nil) == "" {
		t.Fatal("empty lineage must still render")
	}
}

// TestConcurrentEmitNoRace hammers one log from many goroutines across
// shared and private shards; run under -race this proves the lock-free
// hot path is data-race-free, and afterwards every retained event must
// be internally consistent (seq matches the op stamped with it).
func TestConcurrentEmitNoRace(t *testing.T) {
	l := NewLog(64, 16)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := l.SessionShard(uint64(g + 1))
			for i := 0; i < perG; i++ {
				sh := own
				if i%5 == 0 {
					sh = l.Global() // shared-shard contention
				}
				v := Allow
				if i%17 == 0 {
					v = Deny
				}
				l.Emit(sh, Event{Kind: KindSyscall, Verdict: v, Op: fmt.Sprintf("g%d", g), Detail: fmt.Sprint(i)})
			}
		}(g)
	}
	// Concurrent readers while writers run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = l.Query(Filter{Verdict: Deny})
				_ = l.Global().Snapshot()
			}
		}()
	}
	wg.Wait()
	if l.Emits() != goroutines*perG {
		t.Fatalf("emits = %d, want %d", l.Emits(), goroutines*perG)
	}
	seen := map[uint64]bool{}
	for _, e := range l.Query(Filter{}) {
		if seen[e.Seq] {
			t.Fatalf("seq %d retained twice", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestSessionShardEviction(t *testing.T) {
	l := NewLog(0, 0)
	for i := 1; i <= maxSessionShards+10; i++ {
		sh := l.SessionShard(uint64(i))
		l.Emit(sh, Event{Kind: KindSpawn, Op: "shill-init"})
	}
	ids := l.Sessions()
	if len(ids) != maxSessionShards {
		t.Fatalf("retained %d session shards, want %d", len(ids), maxSessionShards)
	}
	if ids[0] != 11 {
		t.Fatalf("oldest retained session = %d, want 11 (1..10 evicted)", ids[0])
	}
	// Re-requesting an evicted session id mints a fresh shard.
	if sh := l.SessionShard(1); sh == nil || sh.Session() != 1 {
		t.Fatal("evicted session id not re-creatable")
	}
}

func TestDenyReasonErrorAndUnwrap(t *testing.T) {
	d := &DenyReason{
		Layer: LayerPolicy, Policy: "shill", Op: "write", Object: "/course/tests",
		Session: 4, Missing: priv.NewSet(priv.RWrite, priv.RAppend),
		Blame: []string{"file(+read)"}, Errno: errno.EACCES,
	}
	if !errors.Is(d, errno.EACCES) {
		t.Fatal("DenyReason must unwrap to its errno")
	}
	msg := d.Error()
	for _, want := range []string{"EACCES", `"write"`, "/course/tests", "shill-policy", "session 4", "+write", "file(+read)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() missing %q: %s", want, msg)
		}
	}
	if ReasonFor(fmt.Errorf("wrapped: %w", d)) != d {
		t.Fatal("ReasonFor must find the reason through wrapping")
	}
	if ReasonFor(errno.EPERM) != nil {
		t.Fatal("ReasonFor on a bare errno must be nil")
	}
}

func TestAnnotate(t *testing.T) {
	if Annotate(nil, "p", "op", "obj") != nil {
		t.Fatal("nil must pass through")
	}
	// Bare errors from third-party policies gain MAC provenance.
	err := Annotate(errno.EPERM, "biba", "write", "/etc")
	d := ReasonFor(err)
	if d == nil || d.Layer != LayerMAC || d.Policy != "biba" {
		t.Fatalf("annotated = %+v", d)
	}
	if !errors.Is(err, errno.EPERM) {
		t.Fatal("annotation must preserve errors.Is")
	}
	// Existing reasons keep their fields; only a missing policy is filled.
	orig := &DenyReason{Layer: LayerPolicy, Op: "read", Errno: errno.EACCES}
	if got := Annotate(orig, "shill", "x", "y"); ReasonFor(got) != orig {
		t.Fatal("existing reason replaced")
	}
	if orig.Policy != "shill" {
		t.Fatal("missing policy not filled in")
	}
}

func TestSummarizeAndFormat(t *testing.T) {
	l := NewLog(0, 0)
	sh := l.SessionShard(1)
	l.Emit(sh, Event{Kind: KindSyscall, Verdict: Allow, Layer: LayerPolicy, Op: "read"})
	l.Emit(sh, Event{Kind: KindSyscall, Verdict: Deny, Layer: LayerPolicy, Op: "write", Object: "/x", Rights: priv.NewSet(priv.RWrite), CapID: 2, Parent: 1, Detail: "why"})
	sum := Summarize(l.Query(Filter{}))
	if sum.Total != 2 || sum.ByVerdict[Deny] != 1 || len(sum.Denied) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	line := FormatEvent(sum.Denied[0])
	for _, want := range []string{"deny", "shill-policy", "write", "/x", "cap#2", "why"} {
		if !strings.Contains(line, want) {
			t.Errorf("FormatEvent missing %q: %s", want, line)
		}
	}
}
