package audit

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/errno"
	"repro/internal/priv"
)

// A denial must survive encode→decode with its provenance intact: the
// wire is how shilld explains rejections to remote clients, so a lossy
// round trip would silently strip the explanation.

func TestDenyReasonJSONRoundTrip(t *testing.T) {
	orig := &DenyReason{
		Layer:   LayerCapability,
		Op:      "write",
		Object:  "/home/user/Documents/dog.jpg",
		Session: 7,
		Missing: priv.NewSet(priv.RWrite, priv.RAppend),
		CapID:   42,
		Blame:   []string{"peek : {f : file(+read, +stat)} -> void"},
		Seq:     1234,
		Errno:   errno.EACCES,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got DenyReason
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Fatalf("round trip lost provenance:\n sent %+v\n got  %+v\n wire %s", orig, &got, data)
	}
	// The decoded errno is the canonical sentinel, not a lookalike.
	if !errors.Is(&got, errno.EACCES) {
		t.Fatalf("decoded reason does not unwrap to errno.EACCES: %v", got.Errno)
	}
	// And the one-line rendering still names the missing privileges.
	if want := orig.Error(); got.Error() != want {
		t.Fatalf("decoded message = %q, want %q", got.Error(), want)
	}
}

func TestDenyReasonJSONLayers(t *testing.T) {
	for l := LayerDAC; l <= LayerContract; l++ {
		orig := &DenyReason{Layer: l, Op: "open", Errno: errno.EPERM}
		if l == LayerMAC {
			orig.Policy = "mac_test"
		}
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var got DenyReason
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("layer %v: %v", l, err)
		}
		if got.Layer != l || got.Policy != orig.Policy {
			t.Fatalf("layer %v round-tripped to %v (policy %q)", l, got.Layer, got.Policy)
		}
	}
}

func TestDenyReasonJSONUnknownErrno(t *testing.T) {
	var got DenyReason
	if err := json.Unmarshal([]byte(`{"layer":"DAC","op":"open","errno":"EWEIRD: not a real errno"}`), &got); err != nil {
		t.Fatal(err)
	}
	if got.Errno == nil || got.Errno.Error() != "EWEIRD: not a real errno" {
		t.Fatalf("unknown errno message not preserved: %v", got.Errno)
	}
}

func TestPrivSetJSONRoundTrip(t *testing.T) {
	for _, s := range []priv.Set{0, priv.ReadOnlyDir, priv.All, priv.AllSock} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got priv.Set
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		if got != s {
			t.Fatalf("set %v round-tripped to %v via %s", s, got, data)
		}
	}
	var bad priv.Set
	if err := json.Unmarshal([]byte(`["no-such-right"]`), &bad); err == nil {
		t.Fatal("unknown right decoded without error")
	}
}

func TestExplainWindowsAndLineage(t *testing.T) {
	l := NewLog(64, 16)
	sh := l.SessionShard(3)
	l.Emit(l.Global(), Event{Kind: KindCapNew, CapID: 9, Detail: "forge:open-dir", Verdict: Allow})
	before := l.Seq()
	l.Emit(sh, Event{
		Kind: KindCapDeny, Verdict: Deny, Layer: LayerCapability, Session: 3,
		Op: "write", Object: "/tmp/x", Rights: priv.NewSet(priv.RWrite),
		CapID: 9, Detail: "peek-contract",
	})
	all := Explain(l, 0)
	if len(all) != 1 {
		t.Fatalf("Explain(0) = %d explanations, want 1", len(all))
	}
	ex := all[0]
	if ex.Layer != LayerCapability || ex.Op != "write" || ex.Detail != "peek-contract" || ex.Session != 3 {
		t.Fatalf("explanation lost fields: %+v", ex)
	}
	if ex.Lineage == "" {
		t.Fatalf("cap-deny explanation has no lineage: %+v", ex)
	}
	if got := Explain(l, before); len(got) != 1 {
		t.Fatalf("Explain(since=%d) = %d, want 1", before, len(got))
	}
	if got := Explain(l, l.Seq()); len(got) != 0 {
		t.Fatalf("Explain(since=now) = %d, want 0", len(got))
	}
	// Explanations are wire-ready.
	if _, err := json.Marshal(all); err != nil {
		t.Fatal(err)
	}
}
