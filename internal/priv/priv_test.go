package priv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRightNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumRights; i++ {
		r := Right(i)
		got, err := ParseRight(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRight(%q) = %v, %v", r.String(), got, err)
		}
		// The '+' prefix is accepted too.
		got, err = ParseRight("+" + r.String())
		if err != nil || got != r {
			t.Errorf("ParseRight(+%q) failed", r.String())
		}
	}
	if _, err := ParseRight("no-such-privilege"); err == nil {
		t.Error("unknown privilege parsed")
	}
}

func TestPrivilegeCounts(t *testing.T) {
	// The paper's counts: 24 filesystem privileges, 7 socket privileges
	// (§3.1.1).
	if NumFSRights != 24 {
		t.Errorf("filesystem privileges = %d, want 24", NumFSRights)
	}
	if NumSockRights != 7 {
		t.Errorf("socket privileges = %d, want 7", NumSockRights)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(RRead, RWrite)
	if !s.Has(RRead) || !s.Has(RWrite) || s.Has(RStat) {
		t.Fatal("basic membership broken")
	}
	s = s.Add(RStat).Remove(RWrite)
	if !s.Has(RStat) || s.Has(RWrite) {
		t.Fatal("add/remove broken")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !AllFS.HasAll(ReadOnlyDir) {
		t.Fatal("AllFS should cover ReadOnlyDir")
	}
	if AllFS.Intersect(AllSock) != 0 {
		t.Fatal("FS and socket rights overlap")
	}
}

func randomSet(rng *rand.Rand) Set {
	var s Set
	for i := 0; i < NumRights; i++ {
		if rng.Intn(2) == 0 {
			s = s.Add(Right(i))
		}
	}
	return s
}

// Property: set algebra laws.
func TestSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomSet(rng), randomSet(rng)
		if !a.Union(b).HasAll(a) || !a.Union(b).HasAll(b) {
			t.Fatal("union not an upper bound")
		}
		if !a.HasAll(a.Intersect(b)) || !b.HasAll(a.Intersect(b)) {
			t.Fatal("intersection not a lower bound")
		}
		if a.Minus(b).Intersect(b) != 0 {
			t.Fatal("minus leaves common rights")
		}
		if a.Union(b) != b.Union(a) || a.Intersect(b) != b.Intersect(a) {
			t.Fatal("commutativity broken")
		}
	}
}

func randomGrant(rng *rand.Rand, depth int) *Grant {
	g := GrantOf(randomSet(rng))
	if depth > 0 {
		for _, r := range []Right{RLookup, RCreateFile, RCreateDir} {
			if g.Has(r) && rng.Intn(2) == 0 {
				g = g.WithDerived(r, randomGrant(rng, depth-1))
			}
		}
	}
	return g
}

// Property: Intersect is a lower bound under Covers, and attenuation is
// monotone — the heart of "contracts can only restrict" (§2.2).
func TestGrantIntersectMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := randomGrant(rng, 2), randomGrant(rng, 2)
		meet := a.Intersect(b)
		if !a.Covers(meet) {
			t.Fatalf("a does not cover a∧b:\na = %v\nb = %v\nmeet = %v", a, b, meet)
		}
		if !b.Covers(meet) {
			t.Fatalf("b does not cover a∧b:\na = %v\nb = %v\nmeet = %v", a, b, meet)
		}
	}
}

// Property: Covers is reflexive and FullGrant covers everything.
func TestCoversProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := FullGrant()
	for i := 0; i < 300; i++ {
		g := randomGrant(rng, 2)
		if !g.Covers(g) {
			t.Fatalf("Covers not reflexive for %v", g)
		}
		if !full.Covers(GrantOf(g.Rights)) {
			t.Fatalf("FullGrant does not cover %v", g.Rights)
		}
		if !g.Covers(&Grant{}) {
			t.Fatal("grant does not cover the empty grant")
		}
	}
}

// Property: Clone produces an equal but independent grant.
func TestGrantCloneIndependent(t *testing.T) {
	g := NewGrant(RLookup, RRead).WithDerived(RLookup, NewGrant(RStat))
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Derived[RLookup].Rights = c.Derived[RLookup].Rights.Add(RWrite)
	if g.Derived[RLookup].Rights.Has(RWrite) {
		t.Fatal("clone shares modifier storage")
	}
}

func TestDerivedGrantInheritance(t *testing.T) {
	g := NewGrant(RLookup, RRead, RStat)
	// No modifier: derived grant is the grant itself.
	if g.DerivedGrant(RLookup) != g {
		t.Fatal("missing modifier should inherit")
	}
	sub := NewGrant(RStat)
	g2 := g.WithDerived(RLookup, sub)
	if got := g2.DerivedGrant(RLookup); !got.Equal(sub) {
		t.Fatalf("modifier not honoured: %v", got)
	}
	// WithDerived does not mutate the receiver.
	if g.Derived != nil {
		t.Fatal("WithDerived mutated the receiver")
	}
}

func TestDerivingRights(t *testing.T) {
	deriving := map[Right]bool{RLookup: true, RCreateFile: true, RCreateDir: true, RReadSymlink: true}
	for i := 0; i < NumRights; i++ {
		r := Right(i)
		if r.Deriving() != deriving[r] {
			t.Errorf("%v.Deriving() = %v", r, r.Deriving())
		}
	}
}

func TestGrantStringSyntax(t *testing.T) {
	g := NewGrant(RLookup, RRead).WithDerived(RLookup, NewGrant(RPath, RStat))
	s := g.String()
	want := "{+read, +lookup with {+stat, +path}}"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}

// quick.Check: rights survive a set round trip.
func TestSetRoundTripQuick(t *testing.T) {
	fn := func(raw []uint8) bool {
		var rights []Right
		for _, b := range raw {
			r := Right(b % uint8(NumRights))
			rights = append(rights, r)
		}
		s := NewSet(rights...)
		for _, r := range rights {
			if !s.Has(r) {
				return false
			}
		}
		back := s.Rights()
		return NewSet(back...) == s
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
