// Package priv defines SHILL's privilege lattice: the twenty-four
// filesystem privileges and seven socket privileges that annotate
// capabilities in the language and privilege maps in the kernel policy
// (paper §3.1.1).
//
// A Right names a single privilege (e.g. RRead, RLookup). A Set is a
// bitmask of rights. A Grant couples a Set with per-right derivation
// modifiers: the paper's "+lookup with {+path, +stat}" becomes a Grant
// whose Rights include RLookup and whose Derived map binds RLookup to a
// sub-Grant containing RPath and RStat. A deriving right with no entry in
// Derived passes the parent Grant through unchanged ("the derived
// capability has the same privileges as its parent capability").
package priv

import (
	"fmt"
	"sort"
	"strings"
)

// Right enumerates every privilege SHILL distinguishes. Filesystem rights
// come first (24 of them), then socket rights (7).
type Right uint8

// Filesystem privileges (paper §3.1.1: "twenty-four different privileges
// for filesystem capabilities").
const (
	RRead Right = iota // read file contents
	RWrite
	RAppend
	RStat
	RPath // retrieve an accessible path for the capability
	RExec
	RContents // list directory entries
	RLookup   // deriving: open a child of a directory
	RCreateFile
	RCreateDir
	RCreateSymlink
	RReadSymlink
	RUnlinkFile // remove file entries from a directory
	RUnlinkDir  // remove subdirectory entries from a directory
	RUnlink     // permission for the object itself to be unlinked
	RLink       // the file may be linked from elsewhere
	RAddLink    // the directory may receive new links
	RRename
	RChmod
	RChown
	RChflags
	RUtimes
	RTruncate
	RChdir

	numFSRights = iota
)

// Socket privileges (paper §3.1.1: "seven different privileges for
// sockets", refined by connection type).
const (
	RSockCreate Right = numFSRights + iota
	RSockBind
	RSockConnect
	RSockListen
	RSockAccept
	RSockSend
	RSockRecv

	numRights = numFSRights + iota
)

// NumFSRights and NumSockRights report the size of each privilege family.
const (
	NumFSRights   = int(numFSRights)
	NumSockRights = int(numRights) - int(numFSRights)
	NumRights     = int(numRights)
)

var rightNames = [...]string{
	RRead:          "read",
	RWrite:         "write",
	RAppend:        "append",
	RStat:          "stat",
	RPath:          "path",
	RExec:          "exec",
	RContents:      "contents",
	RLookup:        "lookup",
	RCreateFile:    "create-file",
	RCreateDir:     "create-dir",
	RCreateSymlink: "create-symlink",
	RReadSymlink:   "read-symlink",
	RUnlinkFile:    "unlink-file",
	RUnlinkDir:     "unlink-dir",
	RUnlink:        "unlink",
	RLink:          "link",
	RAddLink:       "add-link",
	RRename:        "rename",
	RChmod:         "chmod",
	RChown:         "chown",
	RChflags:       "chflags",
	RUtimes:        "utimes",
	RTruncate:      "truncate",
	RChdir:         "chdir",
	RSockCreate:    "sock-create",
	RSockBind:      "sock-bind",
	RSockConnect:   "sock-connect",
	RSockListen:    "sock-listen",
	RSockAccept:    "sock-accept",
	RSockSend:      "sock-send",
	RSockRecv:      "sock-recv",
}

// String returns the paper-style name of the right, e.g. "create-file".
func (r Right) String() string {
	if int(r) < len(rightNames) {
		return rightNames[r]
	}
	return fmt.Sprintf("right(%d)", uint8(r))
}

// Valid reports whether r names a defined privilege.
func (r Right) Valid() bool { return int(r) < NumRights }

// Deriving reports whether exercising r produces a new capability whose
// privileges may be attenuated by a "with {...}" modifier.
func (r Right) Deriving() bool {
	switch r {
	case RLookup, RCreateFile, RCreateDir, RReadSymlink:
		return true
	}
	return false
}

// ParseRight maps a paper-style name (with or without the leading '+') to
// a Right.
func ParseRight(name string) (Right, error) {
	name = strings.TrimPrefix(name, "+")
	for i, n := range rightNames {
		if n == name {
			return Right(i), nil
		}
	}
	return 0, fmt.Errorf("priv: unknown privilege %q", name)
}

// Set is a bitmask of rights.
type Set uint64

// NewSet builds a Set from individual rights.
func NewSet(rights ...Right) Set {
	var s Set
	for _, r := range rights {
		s = s.Add(r)
	}
	return s
}

// Add returns s with r included.
func (s Set) Add(r Right) Set { return s | 1<<uint(r) }

// Remove returns s with r excluded.
func (s Set) Remove(r Right) Set { return s &^ (1 << uint(r)) }

// Has reports whether r is in s.
func (s Set) Has(r Right) bool { return s&(1<<uint(r)) != 0 }

// HasAll reports whether every right of o is in s.
func (s Set) HasAll(o Set) bool { return s&o == o }

// Union returns the union of s and o.
func (s Set) Union(o Set) Set { return s | o }

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set { return s & o }

// Minus returns the rights in s that are not in o.
func (s Set) Minus(o Set) Set { return s &^ o }

// Empty reports whether s contains no rights.
func (s Set) Empty() bool { return s == 0 }

// Rights returns the rights in s in numeric order.
func (s Set) Rights() []Right {
	var out []Right
	for i := 0; i < NumRights; i++ {
		if s.Has(Right(i)) {
			out = append(out, Right(i))
		}
	}
	return out
}

// Count returns the number of rights in s.
func (s Set) Count() int {
	n := 0
	for i := 0; i < NumRights; i++ {
		if s.Has(Right(i)) {
			n++
		}
	}
	return n
}

// String renders the set in contract syntax, e.g. "{+read, +stat}".
func (s Set) String() string {
	var names []string
	for _, r := range s.Rights() {
		names = append(names, "+"+r.String())
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// Common privilege bundles, mirroring SHILL's contracts stdlib (§3.1.4).
var (
	// ReadOnlyFile is file(+stat, +read, +path).
	ReadOnlyFile = NewSet(RStat, RRead, RPath)
	// ReadOnlyDir is dir(+read-symlink, +contents, +lookup, +stat, +read, +path).
	ReadOnlyDir = NewSet(RReadSymlink, RContents, RLookup, RStat, RRead, RPath)
	// WriteableFile extends ReadOnlyFile with write/append/truncate.
	WriteableFile = ReadOnlyFile.Union(NewSet(RWrite, RAppend, RTruncate))
	// ExecFile is the bundle needed to execute a binary.
	ExecFile = NewSet(RExec, RStat, RRead, RPath)
	// AllFS contains every filesystem right.
	AllFS = allFS()
	// AllSock contains every socket right.
	AllSock = NewSet(RSockCreate, RSockBind, RSockConnect, RSockListen,
		RSockAccept, RSockSend, RSockRecv)
	// All contains every right.
	All = AllFS.Union(AllSock)
)

func allFS() Set {
	var s Set
	for i := 0; i < NumFSRights; i++ {
		s = s.Add(Right(i))
	}
	return s
}

// Grant is a set of rights plus optional derivation modifiers for the
// deriving rights. The zero value is the empty grant (no authority).
type Grant struct {
	Rights Set
	// Derived maps a deriving right to the grant that capabilities
	// derived through it receive. A nil entry (or absent key) means the
	// derived capability inherits this grant itself.
	Derived map[Right]*Grant
}

// NewGrant returns a grant with exactly the given rights and no modifiers.
func NewGrant(rights ...Right) *Grant { return &Grant{Rights: NewSet(rights...)} }

// GrantOf returns a grant holding the given set with no modifiers.
func GrantOf(s Set) *Grant { return &Grant{Rights: s} }

// FullGrant returns a grant of every right, used by ambient scripts when
// minting capabilities with the invoking user's full authority.
func FullGrant() *Grant { return &Grant{Rights: All} }

// Has reports whether the grant includes r.
func (g *Grant) Has(r Right) bool {
	if g == nil {
		return false
	}
	return g.Rights.Has(r)
}

// HasAll reports whether the grant includes every right in s.
func (g *Grant) HasAll(s Set) bool {
	if g == nil {
		return s.Empty()
	}
	return g.Rights.HasAll(s)
}

// WithDerived returns a copy of g where deriving right r carries the
// modifier sub. It implements the contract syntax "+r with {…}".
func (g *Grant) WithDerived(r Right, sub *Grant) *Grant {
	out := g.Clone()
	if out.Derived == nil {
		out.Derived = make(map[Right]*Grant)
	}
	out.Derived[r] = sub
	return out
}

// DerivedGrant returns the grant a capability derived via right r
// receives: the modifier if one is present, otherwise g itself.
func (g *Grant) DerivedGrant(r Right) *Grant {
	if g == nil {
		return nil
	}
	if sub, ok := g.Derived[r]; ok {
		return sub
	}
	return g
}

// Clone returns a deep copy of g.
func (g *Grant) Clone() *Grant {
	if g == nil {
		return nil
	}
	out := &Grant{Rights: g.Rights}
	if g.Derived != nil {
		out.Derived = make(map[Right]*Grant, len(g.Derived))
		for r, sub := range g.Derived {
			out.Derived[r] = sub.Clone()
		}
	}
	return out
}

// Intersect returns the meet of g and o: rights are intersected and, for
// each deriving right surviving the intersection, the modifiers are
// intersected recursively. Contract application uses this to attenuate a
// capability ("the consumer promises to use the capability as if it has
// at most the specified privileges").
func (g *Grant) Intersect(o *Grant) *Grant { return intersect(g, o, 0) }

// maxModifierDepth bounds recursion through derivation modifiers;
// deeper chains collapse to plain rights with inherited modifiers.
const maxModifierDepth = 16

func intersect(g, o *Grant, depth int) *Grant {
	if g == nil || o == nil {
		return &Grant{}
	}
	out := &Grant{Rights: g.Rights.Intersect(o.Rights)}
	if depth > maxModifierDepth {
		return out
	}
	for _, r := range out.Rights.Rights() {
		if !r.Deriving() {
			continue
		}
		gs, os := g.DerivedGrant(r), o.DerivedGrant(r)
		if gs == g && os == o {
			continue // both inherit: the intersection inherits too
		}
		sub := intersect(gs, os, depth+1)
		if out.Derived == nil {
			out.Derived = make(map[Right]*Grant)
		}
		out.Derived[r] = sub
	}
	return out
}

// Covers reports whether g confers at least the authority of o: o's
// rights are a subset of g's, and for each deriving right the modifier
// of g covers the modifier of o. Used by property tests to verify that
// attenuation is monotone.
func (g *Grant) Covers(o *Grant) bool {
	return covers(g, o, 0)
}

func covers(g, o *Grant, depth int) bool {
	if o == nil {
		return true
	}
	if g == nil {
		return o.Rights.Empty()
	}
	if !g.Rights.HasAll(o.Rights) {
		return false
	}
	if depth > 32 { // self-referential "inherit" chains terminate here
		return true
	}
	for _, r := range o.Rights.Rights() {
		if !r.Deriving() {
			continue
		}
		gd, od := g.DerivedGrant(r), o.DerivedGrant(r)
		if gd == g && od == o {
			continue // both inherit; same relationship holds
		}
		if !covers(gd, od, depth+1) {
			return false
		}
	}
	return true
}

// Equal reports structural equality of grants (treating an absent
// modifier and a modifier equal to the parent as distinct).
func (g *Grant) Equal(o *Grant) bool {
	if g == nil || o == nil {
		return g == o || (g.Rights.Empty() && o.Rights.Empty() &&
			len(g.derivedKeys()) == 0 && len(o.derivedKeys()) == 0)
	}
	if g.Rights != o.Rights {
		return false
	}
	gk, ok := g.derivedKeys(), o.derivedKeys()
	if len(gk) != len(ok) {
		return false
	}
	for _, r := range gk {
		sub, present := o.Derived[r]
		if !present || !g.Derived[r].Equal(sub) {
			return false
		}
	}
	return true
}

func (g *Grant) derivedKeys() []Right {
	if g == nil || len(g.Derived) == 0 {
		return nil
	}
	keys := make([]Right, 0, len(g.Derived))
	for r := range g.Derived {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// String renders the grant in contract syntax, e.g.
// "{+lookup with {+read, +stat}, +contents}".
func (g *Grant) String() string {
	if g == nil {
		return "{}"
	}
	var parts []string
	for _, r := range g.Rights.Rights() {
		p := "+" + r.String()
		if sub, ok := g.Derived[r]; ok && r.Deriving() {
			p += " with " + sub.String()
		}
		parts = append(parts, p)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
