package priv

import (
	"encoding/json"
	"fmt"
)

// JSON encoding: a Set travels on the wire as the sorted list of
// paper-style privilege names, e.g. ["read","stat","path"], so a denial
// serialized by shilld is readable without knowing the bitmask layout
// and round-trips exactly through ParseRight.

// MarshalJSON implements json.Marshaler.
func (s Set) MarshalJSON() ([]byte, error) {
	names := make([]string, 0, s.Count())
	for _, r := range s.Rights() {
		names = append(names, r.String())
	}
	return json.Marshal(names)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Set) UnmarshalJSON(b []byte) error {
	var names []string
	if err := json.Unmarshal(b, &names); err != nil {
		return fmt.Errorf("priv: Set: %w", err)
	}
	var out Set
	for _, n := range names {
		r, err := ParseRight(n)
		if err != nil {
			return err
		}
		out = out.Add(r)
	}
	*s = out
	return nil
}
