package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// These tests exercise the concurrent multi-session path end to end
// (run them under -race): N sessions, each with its own runtime
// process, console device, and course tree, grade simultaneously
// against one shared kernel. They assert both that the runs succeed and
// that isolation holds — no session's output or grades bleed into
// another's.

func parallelWorkload() GradingWorkload {
	return GradingWorkload{Students: 3, Tests: 2, Malicious: true}
}

func TestParallelGradingShill(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	const n = 4
	w := parallelWorkload()
	results, err := s.RunGradingSessions(n, ModeShill, w)
	if err != nil {
		t.Fatalf("parallel grading: %v", err)
	}
	for _, r := range results {
		if !strings.Contains(r.Output, "grading-complete") {
			t.Errorf("session %d console = %q, want grading-complete", r.Index, r.Output)
		}
		// Consoles are private: exactly one completion marker each.
		if got := strings.Count(r.Output, "grading-complete"); got != 1 {
			t.Errorf("session %d completion markers = %d, want 1", r.Index, got)
		}
		root := GradingRoot(r.Index)
		g := s.GradeAt(root, "student000")
		if !strings.Contains(g, "compiled") || strings.Contains(g, "fail") {
			t.Errorf("session %d student000 grade = %q, want all passes", r.Index, g)
		}
		if got := strings.Count(g, "pass "); got != w.Tests {
			t.Errorf("session %d student000 passes = %d, want %d", r.Index, got, w.Tests)
		}
		// The SHILL version confines the vandal in every session: no
		// course's test suite is corrupted.
		vn, err := s.K.FS.Resolve(root + "/tests/t000")
		if err != nil {
			t.Fatalf("session %d: %v", r.Index, err)
		}
		if string(vn.Bytes()) != "answer000" {
			t.Errorf("session %d vandal corrupted tests: %q", r.Index, vn.Bytes())
		}
	}
}

// TestParallelGradingWorkloadSwitch: staging is keyed on the workload,
// not just on the course root existing — rerunning with a different
// GradingWorkload must rebuild the trees, not silently grade the old
// course.
func TestParallelGradingWorkloadSwitch(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	const n = 2
	small := GradingWorkload{Students: 3, Tests: 2}
	big := GradingWorkload{Students: 10, Tests: 5, Malicious: true}
	for _, w := range []GradingWorkload{small, big, small} {
		if _, err := s.RunGradingSessions(n, ModeShill, w); err != nil {
			t.Fatalf("grading %+v: %v", w, err)
		}
		want := w.Students
		if w.Malicious {
			want += 2 // zz_cheater and zz_vandal
		}
		for i := 0; i < n; i++ {
			root := GradingRoot(i)
			dir, err := s.K.FS.Resolve(root + "/submissions")
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			names, _ := s.K.FS.ReadDir(dir)
			if len(names) != want {
				t.Errorf("session %d with %+v: %d submissions, want %d", i, w, len(names), want)
			}
			grades, err := s.K.FS.Resolve(root + "/grades")
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			graded, _ := s.K.FS.ReadDir(grades)
			if len(graded) != want {
				t.Errorf("session %d with %+v: %d grades, want %d", i, w, len(graded), want)
			}
		}
	}
}

func TestParallelGradingSandboxed(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	const n = 3
	results, err := s.RunGradingSessions(n, ModeSandboxed, parallelWorkload())
	if err != nil {
		t.Fatalf("parallel sandboxed grading: %v", err)
	}
	for _, r := range results {
		if !strings.Contains(r.Output, "grading-complete") {
			t.Errorf("session %d console = %q, want grading-complete", r.Index, r.Output)
		}
	}
}

func TestParallelGradingRepeatable(t *testing.T) {
	// Back-to-back runs over the same sessions must reuse contexts (no
	// process-table growth) and still produce clean results.
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	const n = 2
	w := parallelWorkload()
	if _, err := s.RunGradingSessions(n, ModeShill, w); err != nil {
		t.Fatal(err)
	}
	procsAfterFirst := len(s.K.Procs())
	for round := 0; round < 2; round++ {
		results, err := s.RunGradingSessions(n, ModeShill, w)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, r := range results {
			if !strings.Contains(r.Output, "grading-complete") {
				t.Errorf("round %d session %d console = %q", round, r.Index, r.Output)
			}
		}
	}
	if got := len(s.K.Procs()); got > procsAfterFirst {
		t.Errorf("process table grew across runs: %d -> %d", procsAfterFirst, got)
	}
}

func TestRunSessionsIsolatedConsoles(t *testing.T) {
	// The generic runner: each session writes a distinct marker through
	// its own console device; captures must not interleave.
	s := NewSystem(Config{InstallModule: true})
	t.Cleanup(s.Close)
	const n = 8
	results, err := s.RunSessions(n, func(ctx *SessionCtx) error {
		marker := fmt.Sprintf("session-%d-marker", ctx.Index)
		code, err := s.spawnWaitConsole(ctx.Proc, ctx.ConsolePath, "/bin/echo", []string{marker}, "")
		if err != nil {
			return err
		}
		if code != 0 {
			return fmt.Errorf("echo exited %d", code)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := fmt.Sprintf("session-%d-marker\n", r.Index)
		if r.Output != want {
			t.Errorf("session %d console = %q, want %q", r.Index, r.Output, want)
		}
		if r.Elapsed < 0 || r.Elapsed > time.Minute {
			t.Errorf("session %d implausible elapsed %v", r.Index, r.Elapsed)
		}
	}
}

func TestRunSessionsStdoutBuiltinIsolated(t *testing.T) {
	// The ambient stdout/stderr builtins must bind each session's
	// private console, not the shared /dev/console.
	s := NewSystem(Config{InstallModule: true})
	t.Cleanup(s.Close)
	const n = 4
	results, err := s.RunSessions(n, func(ctx *SessionCtx) error {
		src := fmt.Sprintf("#lang shill/ambient\n\nappend(stdout, \"builtin-%d\\n\");\n", ctx.Index)
		return ctx.NewInterp(s).RunAmbient("stdout.ambient", src)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want := fmt.Sprintf("builtin-%d\n", r.Index)
		if r.Output != want {
			t.Errorf("session %d console = %q, want %q", r.Index, r.Output, want)
		}
	}
	if shared := s.ConsoleText(); shared != "" {
		t.Errorf("shared /dev/console captured session output: %q", shared)
	}
}

func TestParallelGradingThroughputScales(t *testing.T) {
	// The qualitative version of BenchmarkParallelGrading: with
	// simulated spawn latency (standing in for the real testbed's
	// fork/exec cost) concurrent sessions must finish much faster than
	// the same work run back to back.
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20, SpawnLatency: 2 * time.Millisecond})
	t.Cleanup(s.Close)
	const n = 8
	w := GradingWorkload{Students: 2, Tests: 1}
	s.PrepareGradingSessions(n, w) // stage outside the timed region

	serial := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := s.RunGradingSessions(1, ModeShill, w); err != nil {
			t.Fatal(err)
		}
		serial += time.Since(start)
	}
	start := time.Now()
	if _, err := s.RunGradingSessions(n, ModeShill, w); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	// Require a clear win, not statistical noise: 8 concurrent sessions
	// should beat 8 serial runs by at least 2x when latency dominates.
	if parallel > serial/2 {
		t.Errorf("parallel %v vs serial %v: expected at least 2x speedup", parallel, serial)
	}
}
