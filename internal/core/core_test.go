package core

import (
	"strings"
	"testing"
)

// newTestSystem builds a machine with the SHILL module installed and the
// paper's figure scripts loaded.
func newTestSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem(Config{InstallModule: true})
	t.Cleanup(s.Close)
	s.Scripts["find_jpg.cap"] = ScriptFindJpg
	s.Scripts["find.cap"] = ScriptFindPoly
	s.Scripts["jpeginfo.cap"] = ScriptJpeginfoCap
	return s
}

func TestFigure4And6Jpeginfo(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/Documents/dog.jpg", []byte("JFIFdogdata"), 0o644, UserUID)
	if err := s.RunAmbient("jpeginfo.ambient", ScriptJpeginfoAmbient); err != nil {
		t.Fatalf("ambient script: %v", err)
	}
	out := s.ConsoleText()
	if !strings.Contains(out, "640x480") {
		t.Fatalf("jpeginfo output missing info line: %q", out)
	}
	if !strings.Contains(out, "dog.jpg") {
		t.Fatalf("jpeginfo output missing file path: %q", out)
	}
}

func TestFigure3FindJpg(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/pics/a.jpg", []byte("JFIFa"), 0o644, UserUID)
	s.mustWrite("/home/user/pics/sub/b.jpg", []byte("JFIFb"), 0o644, UserUID)
	s.mustWrite("/home/user/pics/notes.txt", []byte("x"), 0o644, UserUID)
	s.mustWrite("/home/user/out.txt", nil, 0o644, UserUID)

	ambient := `#lang shill/ambient
require "find_jpg.cap";

pics = open_dir("/home/user/pics");
out = open_file("/home/user/out.txt");
find_jpg(pics, out);
`
	if err := s.RunAmbient("main.ambient", ambient); err != nil {
		t.Fatalf("ambient: %v", err)
	}
	got := string(s.K.FS.MustResolve("/home/user/out.txt").Bytes())
	if !strings.Contains(got, "/home/user/pics/a.jpg") ||
		!strings.Contains(got, "/home/user/pics/sub/b.jpg") {
		t.Fatalf("find_jpg output = %q", got)
	}
	if strings.Contains(got, "notes.txt") {
		t.Fatalf("find_jpg matched a non-jpg: %q", got)
	}
}

// TestFigure5PolymorphicFind checks both halves of the §2.4.2 guarantee:
// the filter may use privileges beyond the bound (here +path via
// has_ext), while find's own body cannot.
func TestFigure5PolymorphicFind(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/tree/x.c", []byte("int main(){}"), 0o644, UserUID)
	s.mustWrite("/home/user/tree/sub/y.c", []byte("void f(){}"), 0o644, UserUID)
	s.mustWrite("/home/user/tree/z.txt", []byte("no"), 0o644, UserUID)
	s.mustWrite("/home/user/found.txt", nil, 0o644, UserUID)

	ambient := `#lang shill/ambient
require "find.cap";
require "driver.cap";

tree = open_dir("/home/user/tree");
out = open_file("/home/user/found.txt");
run_find(tree, out);
`
	s.Scripts["driver.cap"] = `#lang shill/cap
require "find.cap";

provide run_find :
  {tree : dir(+contents, +lookup, +path, +stat, +read),
   out : file(+append)} -> void;

run_find = fun(tree, out) {
  find(tree,
       fun(f) { has_ext(f, "c"); },
       fun(f) { append(out, path(f) + "\n"); });
};
`
	if err := s.RunAmbient("main.ambient", ambient); err != nil {
		t.Fatalf("ambient: %v", err)
	}
	got := string(s.K.FS.MustResolve("/home/user/found.txt").Bytes())
	if !strings.Contains(got, "x.c") || !strings.Contains(got, "y.c") {
		t.Fatalf("find output = %q", got)
	}
	if strings.Contains(got, "z.txt") {
		t.Fatalf("filter failed: %q", got)
	}
}

// TestPolymorphicBoundEnforced verifies that the body of a function with
// a forall contract cannot exceed the bound even though the supplied
// capability has more privileges.
func TestPolymorphicBoundEnforced(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/tree/x.c", []byte("x"), 0o644, UserUID)

	// sneaky_find tries to read file contents inside the body, which the
	// bound {+lookup, +contents} does not allow.
	s.Scripts["sneaky.cap"] = `#lang shill/cap

provide sneaky :
  forall X with {+lookup, +contents} .
  {cur : X} -> void;

sneaky = fun(cur) {
  for name in contents(cur) {
    child = lookup(cur, name);
    if is_file(child) then
      read(child);
  }
};
`
	ambient := `#lang shill/ambient
require "sneaky.cap";

tree = open_dir("/home/user/tree");
sneaky(tree);
`
	err := s.RunAmbient("main.ambient", ambient)
	if err == nil {
		t.Fatal("sneaky body read beyond the polymorphic bound without a violation")
	}
	if !strings.Contains(err.Error(), "contract violation") {
		t.Fatalf("expected a contract violation, got: %v", err)
	}
}

// TestContractDeniesUndeclaredOperation is the core §2.2 guarantee: a
// script whose contract grants only +append on out cannot read it.
func TestContractDeniesUndeclaredOperation(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/secret.txt", []byte("secret"), 0o644, UserUID)

	s.Scripts["leaky.cap"] = `#lang shill/cap

provide leaky : {out : file(+append)} -> void;

leaky = fun(out) {
  read(out);
};
`
	ambient := `#lang shill/ambient
require "leaky.cap";

out = open_file("/home/user/secret.txt");
leaky(out);
`
	err := s.RunAmbient("main.ambient", ambient)
	// read on an append-only capability yields a syserror value, which
	// the script ignores; reading must NOT have succeeded. To observe,
	// run a variant that appends the read result.
	if err != nil {
		t.Fatalf("leaky run failed unexpectedly: %v", err)
	}

	s.Scripts["leaky2.cap"] = `#lang shill/cap

provide leaky2 : {out : file(+append), sink : file(+append)} -> void;

leaky2 = fun(out, sink) {
  data = read(out);
  if !is_syserror(data) then
    append(sink, data);
};
`
	s.mustWrite("/home/user/sink.txt", nil, 0o644, UserUID)
	ambient2 := `#lang shill/ambient
require "leaky2.cap";

out = open_file("/home/user/secret.txt");
sink = open_file("/home/user/sink.txt");
leaky2(out, sink);
`
	if err := s.RunAmbient("main2.ambient", ambient2); err != nil {
		t.Fatalf("leaky2: %v", err)
	}
	if got := string(s.K.FS.MustResolve("/home/user/sink.txt").Bytes()); got != "" {
		t.Fatalf("append-only capability leaked data: %q", got)
	}
}

func TestAmbientRestrictions(t *testing.T) {
	s := newTestSystem(t)
	cases := []struct{ name, src string }{
		{"function definition", "#lang shill/ambient\nf = fun(x) { x; };\n"},
		{"if statement", "#lang shill/ambient\nif true then open_dir(\"/\");\n"},
		{"for statement", "#lang shill/ambient\nfor x in [1] { x; }\n"},
	}
	for _, c := range cases {
		if err := s.RunAmbient(c.name, c.src); err == nil {
			t.Errorf("%s allowed in ambient script", c.name)
		}
	}
}

func TestCapScriptHasNoAmbientAuthority(t *testing.T) {
	s := newTestSystem(t)
	s.Scripts["grab.cap"] = `#lang shill/cap

provide grab : {} -> void;

grab = fun() {
	open_dir("/");
};
`
	err := s.RunAmbient("main.ambient", `#lang shill/ambient
require "grab.cap";
grab();
`)
	if err == nil || !strings.Contains(err.Error(), "unbound identifier") {
		t.Fatalf("capability-safe script reached open_dir: %v", err)
	}
}

func TestCapScriptCannotRequireAmbient(t *testing.T) {
	s := newTestSystem(t)
	s.Scripts["evil.cap"] = `#lang shill/cap
require "helper.ambient";

provide f : {} -> void;
f = fun() { };
`
	s.Scripts["helper.ambient"] = "#lang shill/ambient\n"
	err := s.RunAmbient("main.ambient", `#lang shill/ambient
require "evil.cap";
f();
`)
	if err == nil || !strings.Contains(err.Error(), "ambient") {
		t.Fatalf("cap script required an ambient script: %v", err)
	}
}

func TestSandboxCountsForJpeginfo(t *testing.T) {
	s := newTestSystem(t)
	s.mustWrite("/home/user/Documents/dog.jpg", []byte("JFIFdogdata"), 0o644, UserUID)
	s.Prof.Reset()
	if err := s.RunAmbient("jpeginfo.ambient", ScriptJpeginfoAmbient); err != nil {
		t.Fatalf("ambient: %v", err)
	}
	// pkg_native runs ldd in one sandbox; the wrapper runs jpeginfo in a
	// second (§4.2 counts sandboxes exactly this way for Download).
	if got := s.Prof.Count(2); got != 2 { // prof.SandboxExec
		t.Fatalf("sandbox count = %d, want 2", got)
	}
}
