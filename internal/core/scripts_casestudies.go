package core

// Case-study scripts (§4.1). The comments above each constant record the
// paper's reported line counts; cmd/benchfig -fig loc measures these
// sources against them.

// GradeSh is the baseline Bash grading script (paper: 61 lines). It
// compiles each student's OCaml submission, runs it, and scores the
// output against a test suite of expected strings, one result file per
// student. It runs under /bin/sh both ambiently (Baseline) and inside a
// single SHILL sandbox (Sandboxed).
const GradeSh = `# grade.sh SUBMISSIONS TESTS WORK GRADES
# Compile each student's OCaml submission and run it against the test
# suite, recording per-student results under GRADES.
subs=$1
tests=$2
work=$3
grades=$4

for student in $(ls $subs)
do
  sdir=$subs/$student
  wdir=$work/$student
  log=$grades/$student
  mkdir $wdir
  touch $log

  # Stage the submission into the working directory.
  if [ -f $sdir/main.ml ]
  then
    cp $sdir/main.ml $wdir/main.ml
  else
    echo no-submission >> $log
  fi

  # Compile.
  if [ -f $wdir/main.ml ]
  then
    ocamlc -o $wdir/main.byte $wdir/main.ml 2> $wdir/compile.err
    if [ -f $wdir/main.byte ]
    then
      echo compiled >> $log
    else
      echo compile-failed >> $log
    fi
  fi

  # Run the submission and capture its output.
  if [ -f $wdir/main.byte ]
  then
    ocamlrun $wdir/main.byte > $wdir/out.txt 2> $wdir/run.err
    # Score: one expected string per test file.
    for t in $(ls $tests)
    do
      expected=$(cat $tests/$t)
      if grep $expected $wdir/out.txt >> $wdir/grep.out
      then
        echo pass $t >> $log
      else
        echo fail $t >> $log
      fi
    done
  fi
done
echo grading-complete
`

// ScriptGradeSandboxCap wraps grade.sh in a capability-based sandbox
// (paper: 22 lines of which 14 are the contract). The contract is the
// coarse-grained guarantee: read submissions and tests, write only under
// the working and grades directories, tmp only for its own files.
const ScriptGradeSandboxCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide grade_sandbox :
  {wallet : native_wallet,
   script : file(+read, +path, +stat),
   subs   : dir(+contents, +stat, +path,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   tests  : readonly,
   work   : dir(+contents, +stat, +path, +lookup with full_privileges,
                +create_file with full_privileges,
                +create_dir with full_privileges),
   grades : dir(+contents, +stat, +path,
                +lookup with {+write, +append, +stat, +path},
                +create_file with {+write, +append, +stat, +path}),
   tmp    : tmp_private,
   out    : file(+write, +append)} -> is_num;

grade_sandbox = fun(wallet, script, subs, tests, work, grades, tmp, out) {
  shell = pkg_native("sh", wallet);
  shell([script, subs, tests, work, grades],
        stdout = out, stderr = out,
        extras = [tmp] ++ wallet_get(wallet, "PATH")
                       ++ wallet_get(wallet, "LD_LIBRARY_PATH")
                       ++ wallet_get(wallet, "dep:ocamlc")
                       ++ wallet_get(wallet, "dep:ocamlrun"));
};
`

// ScriptGradeCap is the grading script written exclusively in SHILL
// (paper: 78 lines of which 6 are contracts). Beyond the sandboxed
// version it guarantees per-student isolation: grading one submission
// can touch no other student's submission, working files, or results
// (§4.1) — each compile/run sandbox receives only that student's
// capabilities, and grade logs are created append-only.
const ScriptGradeCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide grade :
  {wallet : native_wallet,
   subs   : dir(+contents, +stat, +path,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   tests  : readonly,
   work   : dir(+stat, +path, +create_dir with full_privileges),
   grades : dir(+stat, +path, +create_file with {+append, +stat, +path}),
   out    : file(+write, +append)} -> void;

# Compile one staged submission; 0 exit means success.
compile_one = fun(occ, wdir, wsrc, cerr) {
  occ(["-o", path(wdir) + "/main.byte", wsrc],
      stderr = cerr, extras = [wdir]);
};

# Run the compiled submission, capturing stdout.
run_one = fun(orun, wdir, byte, outf, rerr) {
  orun([byte], stdout = outf, stderr = rerr, extras = [wdir]);
};

# Score the output against every test, appending pass/fail lines to the
# student's log. Each grep runs in its own sandbox holding only the
# output file.
score_one = fun(grp, tests, outf, wdir, log) {
  for t in contents(tests) {
    expected = read(lookup(tests, t));
    sink = create_file(wdir, "grep." + t);
    code = grp([expected, outf], stdout = sink);
    if code == 0 then {
      append(log, "pass " + t + "\n");
    } else {
      append(log, "fail " + t + "\n");
    }
  }
};

grade_one = fun(occ, orun, grp, tests, sdir, wdir, log) {
  src = lookup(sdir, "main.ml");
  if is_syserror(src) then {
    append(log, "no-submission\n");
  } else {
    wsrc = create_file(wdir, "main.ml");
    write(wsrc, read(src));
    cerr = create_file(wdir, "compile.err");
    code = compile_one(occ, wdir, wsrc, cerr);
    if code == 0 then {
      append(log, "compiled\n");
      byte = lookup(wdir, "main.byte");
      outf = create_file(wdir, "out.txt");
      rerr = create_file(wdir, "run.err");
      run_one(orun, wdir, byte, outf, rerr);
      score_one(grp, tests, outf, wdir, log);
    } else {
      append(log, "compile-failed\n");
    }
  }
};

grade = fun(wallet, subs, tests, work, grades, out) {
  occ = pkg_native("ocamlc", wallet);
  orun = pkg_native("ocamlrun", wallet);
  grp = pkg_native("grep", wallet);
  for student in contents(subs) {
    sdir = lookup(subs, student);
    if is_dir(sdir) then {
      wdir = create_dir(work, student);
      log = create_file(grades, student);
      grade_one(occ, orun, grp, tests, sdir, wdir, log);
    }
  }
  append(out, "grading-complete\n");
};
`

// GradeAmbientShillAt renders the ambient driver for the pure-SHILL
// grading script (paper: 16 lines) with the course root and console
// device path baked in, so concurrent sessions can each grade their own
// course tree and write to their own console.
func GradeAmbientShillAt(root, console string) string {
	return `#lang shill/ambient

require shill/native;
require "grade.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

subs = open_dir("` + root + `/submissions");
tests = open_dir("` + root + `/tests");
work = open_dir("` + root + `/work");
grades = open_dir("` + root + `/grades");
out = open_file("` + console + `");
grade(wallet, subs, tests, work, grades, out);
`
}

// ScriptGradeAmbientShill invokes the pure-SHILL grading script against
// the default course at /course.
var ScriptGradeAmbientShill = GradeAmbientShillAt("/course", "/dev/console")

// GradeAmbientSandboxAt renders the ambient driver for the
// sandboxed-Bash grading script (paper: 22 lines) with the course root
// and console device path baked in.
func GradeAmbientSandboxAt(root, console string) string {
	return `#lang shill/ambient

require shill/native;
require "grade_sandbox.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

script = open_file("` + root + `/grade.sh");
subs = open_dir("` + root + `/submissions");
tests = open_dir("` + root + `/tests");
work = open_dir("` + root + `/work");
grades = open_dir("` + root + `/grades");
tmp = open_dir("/tmp");
out = open_file("` + console + `");
grade_sandbox(wallet, script, subs, tests, work, grades, tmp, out);
`
}

// ScriptGradeAmbientSandbox invokes the sandboxed-Bash grading script
// against the default course at /course.
var ScriptGradeAmbientSandbox = GradeAmbientSandboxAt("/course", "/dev/console")

// ScriptPkgEmacsCap is the Emacs package-management script (paper: 91
// lines of capability-safe code of which 45 are contracts). Each
// function's contract is its security interface: only fetch can reach
// the network; only install_emacs may write under the prefix, and it may
// not read, alter, or remove existing files there; uninstall_emacs may
// remove exactly the files listed in its manifest argument.
const ScriptPkgEmacsCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide fetch :
  {wallet : native_wallet,
   net    : socket_factory,
   dest   : dir(+stat, +path,
                +create_file with {+read, +write, +append, +truncate, +stat, +path}),
   url    : is_string,
   fname  : is_string} -> is_num;

provide unpack :
  {wallet   : native_wallet,
   tarball  : file(+read, +path, +stat),
   buildtop : dir(+stat, +path, +contents,
                  +lookup with full_privileges,
                  +create_file with full_privileges,
                  +create_dir with full_privileges)} -> is_num;

provide configure_src :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read,
                +lookup with full_privileges,
                +create_file with full_privileges),
   prefix : is_string} -> is_num;

provide build_src :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read, +chdir,
                +lookup with full_privileges,
                +create_file with full_privileges)} -> is_num;

provide install_emacs :
  {wallet : native_wallet,
   build  : dir(+stat, +path, +contents, +read, +chdir,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   prefix : dir(+stat, +path,
                +lookup with {+lookup, +stat, +path,
                              +create_file with {+write, +append, +chmod, +stat, +path},
                              +create_dir with {+lookup, +stat, +path,
                                                +create_file with {+write, +append, +chmod, +stat, +path},
                                                +create_dir with full_privileges}},
                +create_dir with {+lookup, +stat, +path,
                                  +create_file with {+write, +append, +chmod, +stat, +path},
                                  +create_dir with full_privileges},
                +create_file with {+write, +append, +chmod, +stat, +path})} -> is_num;

# The uninstall manifest: exactly the files the installer created.
uninstall_manifest = fun(files) {
  files == ["bin/emacs", "share/emacs/DOC"];
};

provide uninstall_emacs :
  {prefix : dir(+stat, +path,
                +lookup with {+lookup, +stat, +path, +contents,
                              +unlink_file}),
   files  : is_list && uninstall_manifest} -> void;

fetch = fun(wallet, net, dest, url, fname) {
  crl = pkg_native("curl", wallet);
  target = create_file(dest, fname);
  crl(["-o", target, url], socket_factories = [net]);
};

unpack = fun(wallet, tarball, buildtop) {
  tr = pkg_native("tar", wallet);
  tr(["-xf", tarball, "-C", buildtop], extras = [buildtop]);
};

configure_src = fun(wallet, build, prefix) {
  shexe = pkg_native("sh", wallet);
  shexe(["-c", "./configure --prefix=" + prefix],
        workdir = build,
        extras = [build] ++ wallet_get(wallet, "PATH")
                         ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

build_src = fun(wallet, build) {
  mk = pkg_native("gmake", wallet);
  mk(["-C", build],
     extras = [build] ++ wallet_get(wallet, "PATH")
                      ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

install_emacs = fun(wallet, build, prefix) {
  mk = pkg_native("gmake", wallet);
  mk(["-C", build, "install"],
     extras = [build, prefix] ++ wallet_get(wallet, "PATH")
                              ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};

# Walk a relative path and unlink exactly its final component.
remove_rel = fun(dir, parts, idx) {
  name = nth(parts, idx);
  if idx == length(parts) - 1 then {
    unlink(dir, name);
  } else {
    child = lookup(dir, name);
    if !is_syserror(child) then {
      remove_rel(child, parts, idx + 1);
    }
  }
};

uninstall_emacs = fun(prefix, files) {
  for f in files {
    remove_rel(prefix, split(f, "/"), 0);
  }
};
`

// ScriptPkgEmacsAmbient drives the package manager end to end (paper:
// 114 lines of ambient code). It mints exactly the capabilities each
// step's contract demands.
const ScriptPkgEmacsAmbient = `#lang shill/ambient

require shill/native;
require "pkg_emacs.cap";

# Wallet for the build toolchain.
root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

# Step 1: download the source tarball. Only this step receives a
# socket factory.
net = socket_factory("ip");
downloads = open_dir("/home/user/Downloads");
fetch(wallet, net, downloads, "http://origin/emacs-24.3.tar", "emacs-24.3.tar");

# Step 2: unpack into the build area.
tarball = open_file("/home/user/Downloads/emacs-24.3.tar");
buildtop = open_dir("/home/user/build");
unpack(wallet, tarball, buildtop);

# Step 3: configure.
build = open_dir("/home/user/build/emacs-24.3");
configure_src(wallet, build, "/home/user/.local");

# Step 4: compile.
build_src(wallet, build);

# Step 5: install into the prefix.
prefix = open_dir("/home/user/.local");
install_emacs(wallet, build, prefix);

# Step 6: uninstall again (the benchmark's final sub-task).
uninstall_emacs(prefix, ["bin/emacs", "share/emacs/DOC"]);
`

// ScriptApacheCap sandboxes the Apache web server (paper: 30 lines of
// which 20 are contracts): read-only configuration and content, the
// ability to create and use sockets, and write-only access to logs.
const ScriptApacheCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide run_apache :
  {wallet : native_wallet,
   conf   : file(+read, +path, +stat),
   docs   : dir(+contents, +stat, +path,
                +lookup with {+read, +stat, +path, +contents, +lookup}),
   logs   : dir(+contents, +stat, +path,
                +lookup with {+write, +append, +stat, +path},
                +create_file with {+write, +append, +stat, +path}),
   net    : socket_factory} -> is_num;

run_apache = fun(wallet, conf, docs, logs, net) {
  httpd = pkg_native("httpd", wallet);
  httpd(["-f", conf],
        extras = [docs, logs],
        socket_factories = [net]);
};
`

// ScriptApacheAmbient launches the sandboxed web server (paper: 27
// lines).
const ScriptApacheAmbient = `#lang shill/ambient

require shill/native;
require "apache.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/local/sbin:/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

conf = open_file("/usr/local/etc/apache22/httpd.conf");
docs = open_dir("/usr/local/www");
logs = open_dir("/var/log");
net = socket_factory("ip");
run_apache(wallet, conf, docs, logs, net);
`

// ScriptFindGrepSandboxCap is the simpler Find case study (paper: 27
// lines of which 5 are contracts): one sandbox around
// "find /usr/src -name '*.c' -exec grep -H mac_ {} ;".
const ScriptFindGrepSandboxCap = `#lang shill/cap
require shill/native;
require shill/contracts;

provide findgrep :
  {wallet : native_wallet,
   src    : readonly,
   out    : file(+write, +append)} -> is_num;

findgrep = fun(wallet, src, out) {
  fnd = pkg_native("find", wallet);
  fnd([src, "-name", "*.c", "-exec", "grep", "-H", "mac_", "{}", ";"],
      stdout = out,
      extras = wallet_get(wallet, "PATH")
            ++ wallet_get(wallet, "LD_LIBRARY_PATH"));
};
`

// ScriptFindGrepAmbientSandbox drives the simple version (paper: 11
// lines).
const ScriptFindGrepAmbientSandbox = `#lang shill/ambient

require shill/native;
require "findgrep.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

src = open_dir("/usr/src");
out = open_file("/home/user/matches.txt");
findgrep(wallet, src, out);
`

// ScriptFindGrepFineCap is the fine-grained Find (paper: 60 lines of
// which 11 are contracts): the polymorphic find selects the files, and
// each grep runs in a fresh sandbox holding exactly the file it greps —
// so "the files that grep operates on are exactly the files selected by
// the find function".
const ScriptFindGrepFineCap = `#lang shill/cap
require shill/native;
require "find.cap";

provide findgrep_fine :
  {wallet : native_wallet,
   src    : dir(+lookup, +contents, +stat, +path, +read),
   out    : file(+write, +append)} -> void;

# Each matching file is handed to grep in its own sandbox. The grep
# wrapper is packaged once; its result contract is checked per sandbox.
findgrep_fine = fun(wallet, src, out) {
  grp = pkg_native("grep", wallet);
  find(src,
       fun(f) { has_ext(f, "c"); },
       fun(f) { grp(["-H", "mac_", f], stdout = out); });
};
`

// ScriptFindGrepAmbientFine drives the fine-grained version (paper: 9
// lines).
const ScriptFindGrepAmbientFine = `#lang shill/ambient

require shill/native;
require "findgrep_fine.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());

src = open_dir("/usr/src");
out = open_file("/home/user/matches.txt");
findgrep_fine(wallet, src, out);
`
