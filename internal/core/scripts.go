package core

// This file carries the SHILL scripts of the paper's figures and case
// studies, embedded as constants so the interpreter tests, examples, and
// the LoC table regenerator all share one copy. Line counts (reported by
// cmd/benchfig -fig loc) are measured over these sources.

// ScriptRunCmd is the generic "create a sandbox for one command" script
// the Sandboxed configuration uses: the ambient driver hands it whatever
// capabilities the command needs, unattenuated — the coarse-grained end
// of SHILL's spectrum.
const ScriptRunCmd = `#lang shill/cap
require shill/native;

provide run_cmd :
  {wallet : native_wallet, argv : is_list, wd : is_dir,
   out : file(+write, +append),
   extras : is_list, socks : is_list} -> is_num;

run_cmd = fun(wallet, argv, wd, out, extras, socks) {
  w = pkg_native(nth(argv, 0), wallet);
  w(rest(argv), stdout = out, stderr = out, workdir = wd,
    extras = [wd] ++ extras ++ wallet_get(wallet, "PATH")
                            ++ wallet_get(wallet, "LD_LIBRARY_PATH")
                            ++ wallet_get(wallet, "dep:ocamlc")
                            ++ wallet_get(wallet, "dep:ocamlrun"),
    socket_factories = socks);
};
`

// LoadCaseScripts installs every case-study script into the loader.
func (s *System) LoadCaseScripts() {
	s.Scripts["find.cap"] = ScriptFindPoly
	s.Scripts["find_jpg.cap"] = ScriptFindJpg
	s.Scripts["jpeginfo.cap"] = ScriptJpeginfoCap
	s.Scripts["grade.cap"] = ScriptGradeCap
	s.Scripts["grade_sandbox.cap"] = ScriptGradeSandboxCap
	s.Scripts["pkg_emacs.cap"] = ScriptPkgEmacsCap
	s.Scripts["apache.cap"] = ScriptApacheCap
	s.Scripts["findgrep.cap"] = ScriptFindGrepSandboxCap
	s.Scripts["findgrep_fine.cap"] = ScriptFindGrepFineCap
	s.Scripts["run_cmd.cap"] = ScriptRunCmd
	s.Scripts["why_denied.cap"] = ScriptWhyDeniedCap
	s.Scripts["why_denied.ambient"] = ScriptWhyDeniedAmbient
}

// ScriptFindJpg is Figure 3 plus the refined contract of §2.2: recursively
// find files with extension .jpg and append their paths to out.
const ScriptFindJpg = `#lang shill/cap

provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \/ file(+path),
   out : file(+append)} -> void;

find_jpg = fun(cur, out) {
  # if cur is a file with extension jpg, output its path to out.
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) + "\n");

  # if cur is a directory, recur on its contents
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find_jpg(child, out);
    }
};
`

// ScriptFindPoly is Figure 5: find with a bounded polymorphic contract.
// The implementation cannot use more than +lookup and +contents on cur,
// while filter and cmd receive the caller's full privileges.
const ScriptFindPoly = `#lang shill/cap

provide find :
  forall X with {+lookup, +contents} .
  {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;

find = fun(cur, filter, cmd) {
  if is_file(cur) && filter(cur) then
    cmd(cur);

  # if cur is a directory, recur on its contents
  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find(child, filter, cmd);
    }
};
`

// ScriptJpeginfoCap is Figure 4: executing jpeginfo in a sandbox using a
// native wallet.
const ScriptJpeginfoCap = `#lang shill/cap
require shill/native;

provide jpeginfo :
  {wallet : native_wallet, out : file(+write, +append),
   arg : file(+read, +path)} -> void;

jpeginfo = fun(wallet, out, arg) {
  jpeg_wrapper = pkg_native("jpeginfo", wallet);
  jpeg_wrapper(["-i", arg], stdout = out);
};
`

// ScriptJpeginfoAmbient is Figure 6: the ambient script that mints
// capabilities and invokes the capability-safe jpeginfo.
const ScriptJpeginfoAmbient = `#lang shill/ambient

require shill/native;
require "jpeginfo.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root,
  "/usr/bin:/bin",
  "/lib:/usr/local/lib",
  pipe_factory());

dog = open_file("~/Documents/dog.jpg");
jpeginfo(wallet, stdout, dog);
`

// ScriptWhyDeniedCap is the audit-subsystem demo: a capability-safe
// function whose contract attenuates its file argument to read-only, so
// the write in its body is denied at the capability layer with the
// contract recorded as blame. Running the companion ambient script and
// then `shill-audit why-denied` names this contract as the layer that
// rejected the operation.
const ScriptWhyDeniedCap = `#lang shill/cap

provide peek : {f : file(+read, +stat)} -> void;

peek = fun(f) {
  # Reading is within the contract...
  r = read(f);
  # ...but writing is not: the contract above attenuated f to
  # (+read, +stat), so the capability layer denies this operation.
  w = write(f, "tampered");
  if is_syserror(w) then
    error("peek could not write: " + to_string(w));
};
`

// ScriptWhyDeniedAmbient mints a full-privilege file capability and
// hands it to peek, whose contract strips the write privilege — the
// denial the shill-audit walkthrough explains.
const ScriptWhyDeniedAmbient = `#lang shill/ambient
require "why_denied.cap";

doc = open_file("~/Documents/dog.jpg");
peek(doc);
`

// ScriptFiles maps file names to the embedded script sources; it backs
// cmd/genscripts and the examples/scripts consistency test.
func ScriptFiles() map[string]string {
	return map[string]string{
		"why_denied.cap":        ScriptWhyDeniedCap,
		"why_denied.ambient":    ScriptWhyDeniedAmbient,
		"find_jpg.cap":          ScriptFindJpg,
		"find.cap":              ScriptFindPoly,
		"jpeginfo.cap":          ScriptJpeginfoCap,
		"jpeginfo.ambient":      ScriptJpeginfoAmbient,
		"grade.sh":              GradeSh,
		"grade.cap":             ScriptGradeCap,
		"grade.ambient":         ScriptGradeAmbientShill,
		"grade_sandbox.cap":     ScriptGradeSandboxCap,
		"grade_sandbox.ambient": ScriptGradeAmbientSandbox,
		"pkg_emacs.cap":         ScriptPkgEmacsCap,
		"pkg_emacs.ambient":     ScriptPkgEmacsAmbient,
		"apache.cap":            ScriptApacheCap,
		"apache.ambient":        ScriptApacheAmbient,
		"findgrep.cap":          ScriptFindGrepSandboxCap,
		"findgrep.ambient":      ScriptFindGrepAmbientSandbox,
		"findgrep_fine.cap":     ScriptFindGrepFineCap,
		"findgrep_fine.ambient": ScriptFindGrepAmbientFine,
		"run_cmd.cap":           ScriptRunCmd,
	}
}
