// Package core assembles and stages the simulated machine of the SHILL
// reproduction: the kernel, the base filesystem image, the registered
// binaries, the loopback network, and the case-study workload builders
// (§4.1). It is deliberately mechanism-only — the supported way to run
// scripts, manage sessions, and drive the case studies is the public
// embedding package repro/shill, which builds on this one.
package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/binaries"
	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/netstack"
	"repro/internal/prof"
	"repro/internal/vfs"
)

// Config selects the machine configuration, mirroring the paper's
// benchmark columns (§4.2).
type Config struct {
	// InstallModule loads the SHILL policy module ("SHILL installed").
	// Without it the machine is the "Baseline" configuration.
	InstallModule bool
	// ConsoleLimit caps the console capture buffer (0 = unlimited).
	ConsoleLimit int
	// SpawnLatency, when non-zero, simulates the fork/exec cost of the
	// paper's real testbed on every Exec (see kernel.SetSpawnLatency).
	// Parallel-session benchmarks enable it so throughput scaling
	// reflects overlap of genuine per-sandbox blocking.
	SpawnLatency time.Duration
	// AuditDisabled turns the always-on audit trail off — the control
	// configuration for measuring audit overhead (BenchmarkParallelGrading
	// runs audit=on vs audit=off).
	AuditDisabled bool
}

// System is an assembled simulated machine: kernel, image, and staging
// state. Script execution and session management live in repro/shill.
type System struct {
	K       *kernel.Kernel
	Runtime *kernel.Proc // uid 1001: the user's shell / SHILL runtime
	RootSh  *kernel.Proc // uid 0: privileged helper (origin server, image tweaks)
	Console *vfs.ConsoleDevice
	Prof    *prof.Collector
	Scripts lang.MapLoader

	// ConsoleLimit echoes Config.ConsoleLimit so per-session console
	// devices created on top of this machine inherit the same cap.
	ConsoleLimit int

	// stagedGrading records, per course root, the workload its tree was
	// last built for, so EnsureGradingCourseAt rebuilds when the caller
	// switches workloads instead of silently grading the stale course.
	stagedMu      sync.Mutex
	stagedGrading map[string]GradingWorkload
}

// UID of the unprivileged user every case study runs as.
const UserUID = 1001

// NewSystem builds a machine with the base image: binaries in /bin and
// /usr/bin, libraries in /lib and /usr/local/lib, devices, /tmp, and a
// home directory.
func NewSystem(cfg Config) *System {
	k := kernel.New()
	binaries.Register(k)
	if cfg.InstallModule {
		k.InstallShillModule()
	}
	s := &System{
		K:       k,
		Prof:    prof.New(),
		Console: vfs.NewConsoleDevice(),
		Scripts: lang.MapLoader{},
	}
	if cfg.ConsoleLimit > 0 {
		s.Console.SetLimit(cfg.ConsoleLimit)
	}
	s.ConsoleLimit = cfg.ConsoleLimit
	if cfg.SpawnLatency > 0 {
		k.SetSpawnLatency(cfg.SpawnLatency)
	}
	if cfg.AuditDisabled {
		k.Audit().SetEnabled(false)
	}
	s.buildBaseImage()
	s.RootSh = k.NewProc(0, 0)
	s.Runtime = k.NewProc(UserUID, UserUID)
	if err := s.Runtime.Chdir("/home/user"); err != nil {
		panic("core: " + err.Error())
	}
	return s
}

// NewSystemFromBase builds a machine whose filesystem boots
// copy-on-write from a flattened image layer instead of staging the
// base image file by file. The layer must already contain the full
// tree (binaries, /etc, home directories); only devices are rewired.
func NewSystemFromBase(cfg Config, base *vfs.Layer) *System {
	k := kernel.New()
	k.SetFS(vfs.NewFromLayer(base))
	binaries.Register(k)
	if cfg.InstallModule {
		k.InstallShillModule()
	}
	s := &System{
		K:       k,
		Prof:    prof.New(),
		Console: vfs.NewConsoleDevice(),
		Scripts: lang.MapLoader{},
	}
	if cfg.ConsoleLimit > 0 {
		s.Console.SetLimit(cfg.ConsoleLimit)
	}
	s.ConsoleLimit = cfg.ConsoleLimit
	if cfg.SpawnLatency > 0 {
		k.SetSpawnLatency(cfg.SpawnLatency)
	}
	if cfg.AuditDisabled {
		k.Audit().SetEnabled(false)
	}
	s.wireDevices()
	s.RootSh = k.NewProc(0, 0)
	s.Runtime = k.NewProc(UserUID, UserUID)
	if err := s.Runtime.Chdir("/home/user"); err != nil {
		panic("core: " + err.Error())
	}
	return s
}

// StagingState serializes the workload-staging bookkeeping for capture
// into a machine image; RestoreStagingState is its inverse. Without it
// a restored machine would restage (and so reset) course trees its
// image already contains.
func (s *System) StagingState() []byte {
	s.stagedMu.Lock()
	defer s.stagedMu.Unlock()
	if len(s.stagedGrading) == 0 {
		return nil
	}
	out, err := json.Marshal(s.stagedGrading)
	if err != nil {
		panic("core: staging state: " + err.Error())
	}
	return out
}

// RestoreStagingState applies a StagingState blob captured from another
// machine.
func (s *System) RestoreStagingState(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	staged := make(map[string]GradingWorkload)
	if err := json.Unmarshal(blob, &staged); err != nil {
		return fmt.Errorf("core: staging state: %w", err)
	}
	s.stagedMu.Lock()
	s.stagedGrading = staged
	s.stagedMu.Unlock()
	return nil
}

// Close shuts down background kernel workers.
func (s *System) Close() { s.K.Shutdown() }

// Audit returns the machine's audit log.
func (s *System) Audit() *audit.Log { return s.K.Audit() }

// FlushAuditProf attributes the audit subsystem's accumulated emission
// time to the Prof collector's AuditEmit category. Figure-10 style
// reports call it just before Prof.Report.
func (s *System) FlushAuditProf() { s.K.Audit().FlushProf(s.Prof) }

// binImage renders an executable image for a registered binary.
func binImage(name string) []byte {
	return []byte("#!bin:" + name + "\n")
}

// libImage renders a fake shared library with plausible bulk.
func libImage(name string) []byte {
	data := make([]byte, 8192)
	copy(data, "\x7fELF shared library "+name)
	return data
}

// MustWrite writes a file into the image, panicking on failure — the
// staging-time counterpart of a fatal provisioning error.
func (s *System) MustWrite(path string, data []byte, mode uint16, uid int) *vfs.Vnode {
	return s.mustWrite(path, data, mode, uid)
}

func (s *System) mustWrite(path string, data []byte, mode uint16, uid int) *vfs.Vnode {
	vn, err := s.K.FS.WriteFile(path, data, mode, uid, uid)
	if err != nil {
		panic(fmt.Sprintf("core: write %s: %v", path, err))
	}
	return vn
}

func (s *System) buildBaseImage() {
	fs := s.K.FS
	mk := func(path string, mode uint16, uid int) {
		if _, err := fs.MkdirAll(path, mode, uid, uid); err != nil {
			panic("core: " + err.Error())
		}
	}
	mk("/bin", 0o755, 0)
	mk("/usr/bin", 0o755, 0)
	mk("/usr/local/bin", 0o755, 0)
	mk("/usr/local/sbin", 0o755, 0)
	mk("/usr/local/etc/apache22", 0o755, 0)
	mk("/usr/local/www", 0o755, 0)
	mk("/usr/local/lib/ocaml", 0o755, 0)
	mk("/lib", 0o755, 0)
	mk("/etc", 0o755, 0)
	mk("/tmp", 0o777, 0)
	mk("/var/log", 0o777, 0)
	mk("/home/user", 0o755, UserUID)
	mk("/home/user/Downloads", 0o755, UserUID)
	mk("/srv/origin", 0o755, 0)
	mk("/usr/src", 0o755, 0)

	// Binaries. The split matches FreeBSD convention loosely: core tools
	// in /bin, the rest in /usr/bin, servers in /usr/local/sbin.
	binDirs := map[string]string{
		"cat": "/bin", "echo": "/bin", "cp": "/bin", "mv": "/bin",
		"rm": "/bin", "mkdir": "/bin", "ls": "/bin", "head": "/bin",
		"wc": "/bin", "touch": "/bin", "install": "/bin", "true": "/bin",
		"false": "/bin", "sh": "/bin",
		"grep": "/usr/bin", "find": "/usr/bin", "diff": "/usr/bin",
		"tar": "/usr/bin", "curl": "/usr/bin", "ldd": "/usr/bin",
		"jpeginfo": "/usr/bin", "ocamlc": "/usr/bin", "ocamlrun": "/usr/bin",
		"ocamlyacc": "/usr/bin", "gmake": "/usr/bin", "cc": "/usr/bin",
		"ab":    "/usr/bin",
		"httpd": "/usr/local/sbin", "origind": "/usr/local/sbin",
	}
	for name, dir := range binDirs {
		s.mustWrite(dir+"/"+name, binImage(name), 0o755, 0)
	}
	// Shared libraries.
	for _, lib := range binaries.LibNames() {
		dir := "/lib"
		if lib == "libocaml.so.4" {
			dir = "/usr/local/lib"
		}
		s.mustWrite(dir+"/"+lib, libImage(lib), 0o644, 0)
	}
	// OCaml standard library (the debugging-anecdote dependency, §4.1).
	s.mustWrite("/usr/local/lib/ocaml/stdlib.cma", []byte("CAML1999stdlib"), 0o644, 0)
	s.mustWrite("/usr/local/lib/ocaml/pervasives.cmi", []byte("CAML1999cmi"), 0o644, 0)

	// /etc and devices.
	s.mustWrite("/etc/passwd", []byte("root:0:0\nuser:1001:1001\n"), 0o644, 0)
	s.mustWrite("/etc/resolv.conf", []byte("nameserver 10.0.0.1\n"), 0o644, 0)
	s.wireDevices()
}

// wireDevices creates the character devices. Devices hold live Go state
// (closures over channels and buffers), so they are never captured into
// an image; both cold builds and restores wire them fresh.
func (s *System) wireDevices() {
	fs := s.K.FS
	dev, err := fs.MkdirAll("/dev", 0o755, 0, 0)
	if err != nil {
		panic("core: " + err.Error())
	}
	if _, err := fs.Mkdev(dev, "null", 0o666, 0, 0, vfs.NullDevice{}); err != nil {
		panic("core: " + err.Error())
	}
	if _, err := fs.Mkdev(dev, "zero", 0o666, 0, 0, vfs.ZeroDevice{}); err != nil {
		panic("core: " + err.Error())
	}
	if _, err := fs.Mkdev(dev, "console", 0o666, 0, 0, s.Console); err != nil {
		panic("core: " + err.Error())
	}
}

// NewSessionConsole creates a private console device at /dev/pts/<name>
// with the machine's configured capture limit — the per-session console
// repro/shill binds each Session's stdio builtins to.
func (s *System) NewSessionConsole(name string) (*vfs.ConsoleDevice, string) {
	console := vfs.NewConsoleDevice()
	if s.ConsoleLimit > 0 {
		console.SetLimit(s.ConsoleLimit)
	}
	dir, err := s.K.FS.MkdirAll("/dev/pts", 0o755, 0, 0)
	if err != nil {
		panic("core: " + err.Error())
	}
	if _, err := s.K.FS.Mkdev(dir, name, 0o666, 0, 0, console); err != nil {
		panic("core: " + err.Error())
	}
	return console, "/dev/pts/" + name
}

// StartOrigin launches the origin web server (the "remote" host curl
// downloads from) as root, outside any sandbox, and returns a stop
// function. It serves /srv/origin on port 80. Readiness is a listener
// notification from the network stack, not a connect-poll loop.
func (s *System) StartOrigin() (stop func(), err error) {
	vn, err := s.K.FS.Resolve("/usr/local/sbin/origind")
	if err != nil {
		return nil, err
	}
	child, err := s.RootSh.Spawn(vn, []string{"/srv/origin", "80"}, kernel.SpawnAttr{})
	if err != nil {
		return nil, err
	}
	if err := s.K.Net.WaitListener(netstack.DomainIP, "80", 5*time.Second, nil); err != nil {
		s.RootSh.Kill(child.PID())
		s.RootSh.Wait(child.PID())
		return nil, fmt.Errorf("core: origin server did not start: %w", err)
	}
	return func() {
		sock := s.K.Net.NewSocket(netstack.DomainIP)
		if cerr := s.K.Net.Connect(sock, "80"); cerr == nil {
			s.K.Net.Send(sock, []byte("GET /__shutdown\n"))
			buf := make([]byte, 16)
			s.K.Net.Recv(sock, buf)
			s.K.Net.Close(sock)
		}
		s.RootSh.Wait(child.PID())
	}, nil
}

// RemovePath unlinks a single file, ignoring errors (bench resets).
func (s *System) RemovePath(path string) {
	dirPath, name := splitParent(path)
	dir, err := s.K.FS.Resolve(dirPath)
	if err != nil {
		return
	}
	s.K.FS.Unlink(dir, name, false)
}

// RemoveTree removes a directory tree, ignoring errors (bench resets).
func (s *System) RemoveTree(path string) {
	s.ClearDir(path)
	dirPath, name := splitParent(path)
	dir, err := s.K.FS.Resolve(dirPath)
	if err != nil {
		return
	}
	s.K.FS.Unlink(dir, name, true)
}

func splitParent(path string) (dir, name string) {
	i := len(path) - 1
	for i > 0 && path[i] != '/' {
		i--
	}
	if i == 0 {
		return "/", path[1:]
	}
	return path[:i], path[i+1:]
}
