package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/lang"
	"repro/internal/vfs"
)

// This file is the multi-session workload layer: a System can execute N
// independent sandboxed scripts concurrently, each in its own runtime
// process with its own console device, the way a production SHILL host
// would serve many users at once. The kernel's per-subsystem locking
// (internal/kernel, internal/netstack, internal/vfs) is what makes this
// safe; the parallel Figure 9 benchmarks in bench_test.go are what make
// it measured rather than asserted.

// SessionCtx is one isolated execution context: a dedicated runtime
// process (uid UserUID, cwd /home/user) and a private console device at
// /dev/pts/<index>. Contexts are created once per index and reused, so
// repeated runs do not grow the process table.
type SessionCtx struct {
	Index       int
	Proc        *kernel.Proc
	Console     *vfs.ConsoleDevice
	ConsolePath string
}

// NewInterp builds a fresh interpreter whose ambient authority is this
// session's process and whose stdin/stdout/stderr builtins bind the
// session's private console rather than the shared /dev/console.
func (ctx *SessionCtx) NewInterp(s *System) *lang.Interp {
	it := lang.NewInterp(ctx.Proc, s.Scripts, s.Prof)
	it.ConsolePath = ctx.ConsolePath
	return it
}

// Session returns the i-th session context, creating it (and its
// console device) on first use.
func (s *System) Session(i int) *SessionCtx {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for len(s.sessions) <= i {
		idx := len(s.sessions)
		console := vfs.NewConsoleDevice()
		if s.consoleLimit > 0 {
			console.SetLimit(s.consoleLimit)
		}
		path := fmt.Sprintf("/dev/pts/%d", idx)
		dir, err := s.K.FS.MkdirAll("/dev/pts", 0o755, 0, 0)
		if err != nil {
			panic("core: " + err.Error())
		}
		if _, err := s.K.FS.Mkdev(dir, fmt.Sprint(idx), 0o666, 0, 0, console); err != nil {
			panic("core: " + err.Error())
		}
		proc := s.K.NewProc(UserUID, UserUID)
		if err := proc.Chdir("/home/user"); err != nil {
			panic("core: " + err.Error())
		}
		s.sessions = append(s.sessions, &SessionCtx{
			Index: idx, Proc: proc, Console: console, ConsolePath: path,
		})
	}
	return s.sessions[i]
}

// SessionResult reports one session's outcome.
type SessionResult struct {
	Index   int
	Err     error
	Output  string // everything the session wrote to its console
	Elapsed time.Duration
}

// RunSessions executes fn once per session index, concurrently, one
// goroutine per session. Each invocation receives its own SessionCtx;
// console output is captured (and the capture buffer cleared) per
// session. The returned slice is ordered by index; the returned error
// is the first session error, if any.
func (s *System) RunSessions(n int, fn func(ctx *SessionCtx) error) ([]SessionResult, error) {
	results := make([]SessionResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx := s.Session(i)
		ctx.Console.ResetOutput()
		wg.Add(1)
		go func(i int, ctx *SessionCtx) {
			defer wg.Done()
			start := time.Now()
			err := fn(ctx)
			results[i] = SessionResult{
				Index:   i,
				Err:     err,
				Output:  string(ctx.Console.Output()),
				Elapsed: time.Since(start),
			}
			ctx.Console.ResetOutput()
		}(i, ctx)
	}
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("session %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// GradingRoot returns the course root a parallel grading session uses.
func GradingRoot(i int) string { return fmt.Sprintf("/course/s%03d", i) }

// PrepareGradingSessions stages one private course tree per session (if
// not already staged) and resets its outputs, so RunGradingSessions can
// be called repeatedly from a benchmark loop.
func (s *System) PrepareGradingSessions(n int, w GradingWorkload) {
	s.LoadCaseScripts()
	for i := 0; i < n; i++ {
		s.Session(i) // ensure console + proc exist
		root := GradingRoot(i)
		s.sessMu.Lock()
		if s.stagedGrading == nil {
			s.stagedGrading = make(map[string]GradingWorkload)
		}
		staged, ok := s.stagedGrading[root]
		s.sessMu.Unlock()
		_, rerr := s.K.FS.Resolve(root)
		if rerr != nil || !ok || staged != w {
			if rerr == nil {
				s.clearDir(root) // workload changed: drop the stale tree
			}
			s.BuildGradingCourseAt(root, w)
			s.sessMu.Lock()
			s.stagedGrading[root] = w
			s.sessMu.Unlock()
		}
		s.ResetGradingOutputsAt(root)
	}
}

// RunGradingSessions grades n private courses concurrently, one session
// each, in the given mode — the parallel variant of the Figure 9
// grading case study.
func (s *System) RunGradingSessions(n int, mode Mode, w GradingWorkload) ([]SessionResult, error) {
	s.PrepareGradingSessions(n, w)
	return s.RunPreparedGradingSessions(n, mode)
}

// RunPreparedGradingSessions grades the n courses most recently staged
// by PrepareGradingSessions without re-staging or resetting them, so a
// benchmark's timed region measures grading alone.
func (s *System) RunPreparedGradingSessions(n int, mode Mode) ([]SessionResult, error) {
	return s.RunSessions(n, func(ctx *SessionCtx) error {
		return s.runGradingSession(ctx, mode, GradingRoot(ctx.Index))
	})
}

// runGradingSession grades one course root inside one session context.
func (s *System) runGradingSession(ctx *SessionCtx, mode Mode, root string) error {
	switch mode {
	case ModeAmbient:
		code, err := s.spawnWaitConsole(ctx.Proc, ctx.ConsolePath, "/bin/sh",
			[]string{root + "/grade.sh", root + "/submissions", root + "/tests", root + "/work", root + "/grades"}, "")
		if err != nil {
			return err
		}
		if code != 0 {
			return fmt.Errorf("grade.sh exited with status %d", code)
		}
		return nil
	case ModeSandboxed:
		return ctx.NewInterp(s).RunAmbient("grade_sandbox.ambient",
			GradeAmbientSandboxAt(root, ctx.ConsolePath))
	case ModeShill:
		return ctx.NewInterp(s).RunAmbient("grade.ambient",
			GradeAmbientShillAt(root, ctx.ConsolePath))
	}
	return fmt.Errorf("unknown mode %v", mode)
}

// GradeAt returns a student's grade-log contents under a course root.
func (s *System) GradeAt(root, student string) string {
	vn, err := s.K.FS.Resolve(root + "/grades/" + student)
	if err != nil {
		return ""
	}
	return string(vn.Bytes())
}
