package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/binaries"
	"repro/internal/kernel"
	"repro/internal/netstack"
)

// Mode selects one of the paper's four benchmark configurations (§4.2).
// Baseline vs Installed is a property of the System (whether the module
// is loaded); drivers treat them identically — the point of the paired
// configurations is precisely that the code path is the same.
type Mode int

// Benchmark configurations.
const (
	ModeAmbient   Mode = iota // Baseline / "SHILL installed": run the command directly
	ModeSandboxed             // a SHILL script creates one sandbox for the command
	ModeShill                 // the task rewritten in SHILL with fine-grained contracts
)

func (m Mode) String() string {
	switch m {
	case ModeAmbient:
		return "ambient"
	case ModeSandboxed:
		return "sandboxed"
	case ModeShill:
		return "shill"
	}
	return "unknown"
}

// ScriptRunCmd is the generic "create a sandbox for one command" script
// the Sandboxed configuration uses: the ambient driver hands it whatever
// capabilities the command needs, unattenuated — the coarse-grained end
// of SHILL's spectrum.
const ScriptRunCmd = `#lang shill/cap
require shill/native;

provide run_cmd :
  {wallet : native_wallet, argv : is_list, wd : is_dir,
   out : file(+write, +append),
   extras : is_list, socks : is_list} -> is_num;

run_cmd = fun(wallet, argv, wd, out, extras, socks) {
  w = pkg_native(nth(argv, 0), wallet);
  w(rest(argv), stdout = out, stderr = out, workdir = wd,
    extras = [wd] ++ extras ++ wallet_get(wallet, "PATH")
                            ++ wallet_get(wallet, "LD_LIBRARY_PATH")
                            ++ wallet_get(wallet, "dep:ocamlc")
                            ++ wallet_get(wallet, "dep:ocamlrun"),
    socket_factories = socks);
};
`

// LoadCaseScripts installs every case-study script into the loader.
func (s *System) LoadCaseScripts() {
	s.Scripts["find.cap"] = ScriptFindPoly
	s.Scripts["find_jpg.cap"] = ScriptFindJpg
	s.Scripts["jpeginfo.cap"] = ScriptJpeginfoCap
	s.Scripts["grade.cap"] = ScriptGradeCap
	s.Scripts["grade_sandbox.cap"] = ScriptGradeSandboxCap
	s.Scripts["pkg_emacs.cap"] = ScriptPkgEmacsCap
	s.Scripts["apache.cap"] = ScriptApacheCap
	s.Scripts["findgrep.cap"] = ScriptFindGrepSandboxCap
	s.Scripts["findgrep_fine.cap"] = ScriptFindGrepFineCap
	s.Scripts["run_cmd.cap"] = ScriptRunCmd
	s.Scripts["why_denied.cap"] = ScriptWhyDeniedCap
	s.Scripts["why_denied.ambient"] = ScriptWhyDeniedAmbient
}

// ===========================================================================
// Grading case study (§4.1)
// ===========================================================================

// GradingWorkload parameterises the course. The paper's full-scale run
// created 5,371 sandboxes; with the SHILL version costing
// students×(tests+2) command sandboxes plus 3 for pkg_native, 122
// students × 42 tests reproduces that count exactly.
type GradingWorkload struct {
	Students int
	Tests    int
	// Malicious adds a cheater (reads another student's submission) and
	// a vandal (corrupts the test suite) to the class.
	Malicious bool
}

// DefaultGrading is the scaled-down default workload.
var DefaultGrading = GradingWorkload{Students: 8, Tests: 4, Malicious: true}

// FullScaleGrading reproduces the paper's sandbox count.
var FullScaleGrading = GradingWorkload{Students: 122, Tests: 42, Malicious: true}

// BuildGradingCourse stages /course: submissions, tests, empty work and
// grades directories, and grade.sh.
func (s *System) BuildGradingCourse(w GradingWorkload) {
	s.BuildGradingCourseAt("/course", w)
}

// BuildGradingCourseAt stages a full course tree under an arbitrary
// root, so concurrent sessions can each grade a private course.
func (s *System) BuildGradingCourseAt(root string, w GradingWorkload) {
	fs := s.K.FS
	for _, d := range []string{"", "/submissions", "/tests", "/work", "/grades"} {
		if _, err := fs.MkdirAll(root+d, 0o755, UserUID, UserUID); err != nil {
			panic("core: " + err.Error())
		}
	}
	s.mustWrite(root+"/grade.sh", []byte(GradeSh), 0o644, UserUID)
	for i := 0; i < w.Tests; i++ {
		s.mustWrite(fmt.Sprintf("%s/tests/t%03d", root, i),
			[]byte(fmt.Sprintf("answer%03d", i)), 0o644, UserUID)
	}
	// Correct students print every expected answer.
	var correct strings.Builder
	for i := 0; i < w.Tests; i++ {
		fmt.Fprintf(&correct, "print answer%03d\n", i)
	}
	for i := 0; i < w.Students; i++ {
		name := fmt.Sprintf("student%03d", i)
		src := correct.String()
		switch {
		case i%7 == 3: // wrong output
			src = "print answer999\n"
		case i%7 == 5: // does not compile
			src = "let rec oops = syntax error\n"
		}
		s.mustWrite(root+"/submissions/"+name+"/main.ml", []byte(src), 0o644, UserUID)
	}
	if w.Malicious {
		// The cheater copies student000's answers by reading their
		// submission at grading time.
		s.mustWrite(root+"/submissions/zz_cheater/main.ml",
			[]byte("readfile "+root+"/submissions/student000/main.ml\n"), 0o644, UserUID)
		// The vandal corrupts the test suite, then answers correctly.
		s.mustWrite(root+"/submissions/zz_vandal/main.ml",
			[]byte("writefile "+root+"/tests/t000 pwned\n"+correct.String()), 0o644, UserUID)
	}
}

// ResetGradingOutputs clears work and grades between runs.
func (s *System) ResetGradingOutputs() { s.ResetGradingOutputsAt("/course") }

// ResetGradingOutputsAt clears a course's work and grades directories.
func (s *System) ResetGradingOutputsAt(root string) {
	s.clearDir(root + "/work")
	s.clearDir(root + "/grades")
}

func (s *System) clearDir(path string) {
	fs := s.K.FS
	dir, err := fs.Resolve(path)
	if err != nil {
		return
	}
	names, _ := fs.ReadDir(dir)
	for _, name := range names {
		child, err := fs.Lookup(dir, name)
		if err != nil {
			continue
		}
		if child.IsDir() {
			sub, _ := fs.PathOf(child)
			s.clearDir(sub)
			fs.Unlink(dir, name, true)
		} else {
			fs.Unlink(dir, name, false)
		}
	}
}

// RunGrading grades the whole course in the given mode.
func (s *System) RunGrading(mode Mode) error {
	s.LoadCaseScripts()
	switch mode {
	case ModeAmbient:
		code, err := s.SpawnWaitAmbient("/bin/sh",
			[]string{"/course/grade.sh", "/course/submissions", "/course/tests", "/course/work", "/course/grades"})
		if err != nil {
			return err
		}
		if code != 0 {
			return fmt.Errorf("grade.sh exited with status %d", code)
		}
		return nil
	case ModeSandboxed:
		return s.RunAmbient("grade_sandbox.ambient", ScriptGradeAmbientSandbox)
	case ModeShill:
		return s.RunAmbient("grade.ambient", ScriptGradeAmbientShill)
	}
	return fmt.Errorf("unknown mode %v", mode)
}

// GradeFor returns a student's grade-log contents.
func (s *System) GradeFor(student string) string {
	vn, err := s.K.FS.Resolve("/course/grades/" + student)
	if err != nil {
		return ""
	}
	return string(vn.Bytes())
}

// ===========================================================================
// Emacs package management (§4.1)
// ===========================================================================

// EmacsWorkload sizes the source tarball.
type EmacsWorkload struct {
	// SrcKB is the approximate size of each of the three C sources.
	SrcKB int
}

// DefaultEmacs is the scaled-down tarball.
var DefaultEmacs = EmacsWorkload{SrcKB: 64}

// BuildEmacsOrigin stages the source tarball on the origin server and
// prepares the user's build area and install prefix.
func (s *System) BuildEmacsOrigin(w EmacsWorkload) {
	src := make([]byte, w.SrcKB*1024)
	for i := range src {
		src[i] = "int emacs(){}\n"[i%14]
	}
	tar := binaries.BuildArchive([]binaries.ArchiveEntry{
		{Path: "emacs-24.3", Dir: true},
		{Path: "emacs-24.3/configure", Data: []byte("#!bin:configure\n")},
		{Path: "emacs-24.3/src", Dir: true},
		{Path: "emacs-24.3/src/emacs.c", Data: src},
		{Path: "emacs-24.3/src/lisp.c", Data: src},
		{Path: "emacs-24.3/src/buffer.c", Data: src},
		{Path: "emacs-24.3/etc", Dir: true},
		{Path: "emacs-24.3/etc/DOC", Data: []byte("Emacs documentation\n")},
	})
	s.mustWrite("/srv/origin/emacs-24.3.tar", tar, 0o644, 0)
	for _, d := range []string{"/home/user/build", "/home/user/.local"} {
		if _, err := s.K.FS.MkdirAll(d, 0o755, UserUID, UserUID); err != nil {
			panic("core: " + err.Error())
		}
	}
}

// ResetEmacsOutputs clears the build area, downloads, and prefix.
func (s *System) ResetEmacsOutputs() {
	s.clearDir("/home/user/build")
	s.clearDir("/home/user/.local")
	s.clearDir("/home/user/Downloads")
}

// EmacsStep names one sub-benchmark of the package-management case
// study (Figure 9's Download/Untar/Configure/Make/Install/Uninstall).
type EmacsStep string

// Emacs sub-benchmarks.
const (
	StepDownload  EmacsStep = "download"
	StepUntar     EmacsStep = "untar"
	StepConfigure EmacsStep = "configure"
	StepMake      EmacsStep = "make"
	StepInstall   EmacsStep = "install"
	StepUninstall EmacsStep = "uninstall"
)

// AllEmacsSteps lists the sub-benchmarks in dependency order.
var AllEmacsSteps = []EmacsStep{StepDownload, StepUntar, StepConfigure, StepMake, StepInstall, StepUninstall}

// emacsCommands returns the command line for each step (the "command
// line invocation to achieve the same task outside of SHILL", §4.2).
func emacsCommand(step EmacsStep) (bin string, argv []string, wd string) {
	switch step {
	case StepDownload:
		return "/usr/bin/curl", []string{"-o", "/home/user/Downloads/emacs-24.3.tar", "http://origin/emacs-24.3.tar"}, "/home/user/Downloads"
	case StepUntar:
		return "/usr/bin/tar", []string{"-xf", "/home/user/Downloads/emacs-24.3.tar", "-C", "/home/user/build"}, "/home/user/build"
	case StepConfigure:
		return "/bin/sh", []string{"-c", "./configure --prefix=/home/user/.local"}, "/home/user/build/emacs-24.3"
	case StepMake:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3"}, "/home/user/build/emacs-24.3"
	case StepInstall:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3", "install"}, "/home/user/build/emacs-24.3"
	case StepUninstall:
		return "/usr/bin/gmake", []string{"-C", "/home/user/build/emacs-24.3", "uninstall"}, "/home/user/build/emacs-24.3"
	}
	panic("core: unknown emacs step " + string(step))
}

// RunEmacsStep runs one sub-benchmark ambiently or in a single sandbox.
// The origin server must be running for StepDownload.
func (s *System) RunEmacsStep(step EmacsStep, mode Mode) error {
	s.LoadCaseScripts()
	bin, argv, wd := emacsCommand(step)
	switch mode {
	case ModeAmbient:
		code, err := s.SpawnWaitAmbientDir(bin, argv, wd)
		if err != nil {
			return fmt.Errorf("%s: %w", step, err)
		}
		if code != 0 {
			return fmt.Errorf("%s exited with status %d", step, code)
		}
		return nil
	case ModeSandboxed:
		ambient := s.genRunCmdAmbient(bin, argv, wd, step == StepDownload)
		return s.RunAmbient(string(step)+".ambient", ambient)
	}
	return fmt.Errorf("emacs step %s has no %v configuration", step, mode)
}

// genRunCmdAmbient generates the ambient driver for the Sandboxed
// configuration: open every path mentioned on the command line and hand
// the capabilities to run_cmd.
func (s *System) genRunCmdAmbient(bin string, argv []string, wd string, network bool) string {
	var b strings.Builder
	b.WriteString("#lang shill/ambient\n\nrequire shill/native;\nrequire \"run_cmd.cap\";\n\n")
	b.WriteString("root = open_dir(\"/\");\nwallet = create_wallet();\n")
	b.WriteString("populate_native_wallet(wallet, root,\n  \"/usr/local/sbin:/usr/bin:/bin\", \"/lib:/usr/local/lib\", pipe_factory());\n\n")
	fmt.Fprintf(&b, "wd = open_dir(%q);\n", wd)
	b.WriteString("out = open_file(\"/dev/console\");\n")

	// Arguments that name existing filesystem objects become
	// capabilities; everything else stays a string.
	parts := []string{fmt.Sprintf("%q", baseNameOf(bin))}
	capIdx := 0
	for _, a := range argv {
		if strings.HasPrefix(a, "/") {
			if vn, err := s.K.FS.Resolve(a); err == nil {
				capIdx++
				varName := fmt.Sprintf("c%d", capIdx)
				if vn.IsDir() {
					fmt.Fprintf(&b, "%s = open_dir(%q);\n", varName, a)
				} else {
					fmt.Fprintf(&b, "%s = open_file(%q);\n", varName, a)
				}
				parts = append(parts, varName)
				continue
			}
		}
		parts = append(parts, fmt.Sprintf("%q", a))
	}
	socks := "[]"
	if network {
		b.WriteString("net = socket_factory(\"ip\");\n")
		socks = "[net]"
	}
	fmt.Fprintf(&b, "run_cmd(wallet, [%s], wd, out, [], %s);\n", strings.Join(parts, ", "), socks)
	return b.String()
}

func baseNameOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RunEmacsShill runs the full package-management script (the "Emacs"
// column's SHILL version): download, unpack, configure, build, install,
// uninstall, each under its own fine-grained contract.
func (s *System) RunEmacsShill() error {
	s.LoadCaseScripts()
	return s.RunAmbient("pkg_emacs.ambient", ScriptPkgEmacsAmbient)
}

// ===========================================================================
// Apache case study (§4.1)
// ===========================================================================

// ApacheWorkload sizes the served file and the benchmark run. The paper
// used a 50 MB file, 5,000 requests, and up to 100 concurrent
// connections.
type ApacheWorkload struct {
	FileMB      int
	Requests    int
	Concurrency int
}

// DefaultApache is the scaled-down benchmark.
var DefaultApache = ApacheWorkload{FileMB: 4, Requests: 40, Concurrency: 8}

// BuildWWW stages the document root, configuration, and log directory.
func (s *System) BuildWWW(w ApacheWorkload) {
	data := make([]byte, w.FileMB<<20)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	s.mustWrite("/usr/local/www/big.bin", data, 0o644, 0)
	s.mustWrite("/usr/local/www/index.html", []byte("<html>it works</html>\n"), 0o644, 0)
	conf := "Listen 8080\nDocumentRoot /usr/local/www\nAccessLog /var/log/httpd-access.log\n"
	s.mustWrite("/usr/local/etc/apache22/httpd.conf", []byte(conf), 0o644, 0)
	// The log directory must be writable by the (unprivileged) server.
	if _, err := s.K.FS.MkdirAll("/var/log", 0o777, 0, 0); err != nil {
		panic("core: " + err.Error())
	}
}

// RunApache starts the server in the given mode, drives the ab workload
// against it, shuts it down, and reports ab's exit status.
func (s *System) RunApache(mode Mode, w ApacheWorkload) error {
	s.LoadCaseScripts()
	serverDone := make(chan error, 1)
	switch mode {
	case ModeAmbient:
		vn, err := s.K.FS.Resolve("/usr/local/sbin/httpd")
		if err != nil {
			return err
		}
		console := kernel.NewVnodeFD(s.K.FS.MustResolve("/dev/console"), true, true, false)
		child, err := s.Runtime.Spawn(vn, []string{"-f", "/usr/local/etc/apache22/httpd.conf"},
			kernel.SpawnAttr{Stdin: console, Stdout: console, Stderr: console})
		console.Release()
		if err != nil {
			return err
		}
		go func() {
			_, werr := s.Runtime.Wait(child.PID())
			serverDone <- werr
		}()
	case ModeSandboxed, ModeShill:
		// Both SHILL configurations run the server through the apache
		// script; the case study has one script (its contract IS the
		// fine-grained version).
		go func() {
			serverDone <- s.RunAmbient("apache.ambient", ScriptApacheAmbient)
		}()
	}
	if err := s.waitForListener("8080", 5*time.Second); err != nil {
		return err
	}
	// Drive the load ambiently with ab, as the paper does.
	code, err := s.SpawnWaitAmbient("/usr/bin/ab",
		[]string{"-n", fmt.Sprint(w.Requests), "-c", fmt.Sprint(w.Concurrency), "http://localhost:8080/big.bin"})
	s.shutdownListener("8080")
	if serr := <-serverDone; serr != nil {
		return fmt.Errorf("httpd: %w", serr)
	}
	if err != nil {
		return err
	}
	if code != 0 {
		return fmt.Errorf("ab exited with status %d", code)
	}
	return nil
}

// waitForListener polls until a connection to the port succeeds.
func (s *System) waitForListener(port string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		sock := s.K.Net.NewSocket(netstack.DomainIP)
		if err := s.K.Net.Connect(sock, port); err == nil {
			s.K.Net.Send(sock, []byte("GET /index.html\n"))
			buf := make([]byte, 256)
			for {
				n, _ := s.K.Net.Recv(sock, buf)
				if n == 0 {
					break
				}
			}
			s.K.Net.Close(sock)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("no listener on port %s after %v", port, timeout)
}

// shutdownListener sends the shutdown request.
func (s *System) shutdownListener(port string) {
	sock := s.K.Net.NewSocket(netstack.DomainIP)
	if err := s.K.Net.Connect(sock, port); err == nil {
		s.K.Net.Send(sock, []byte("GET /__shutdown\n"))
		buf := make([]byte, 64)
		s.K.Net.Recv(sock, buf)
		s.K.Net.Close(sock)
	}
}

// ===========================================================================
// Find case study (§4.1)
// ===========================================================================

// FindWorkload sizes the source tree. The paper's tree had 57,817 files
// of which 15,376 were .c files containing candidates for "mac_".
type FindWorkload struct {
	Dirs        int
	FilesPerDir int
	// CEvery makes every CEvery-th file a .c file.
	CEvery int
	// MatchEvery puts "mac_" into every MatchEvery-th .c file.
	MatchEvery int
}

// DefaultFind is the scaled-down tree.
var DefaultFind = FindWorkload{Dirs: 12, FilesPerDir: 24, CEvery: 4, MatchEvery: 2}

// FullScaleFind approximates the paper's tree: 57,816 files, 15,376 .c.
var FullScaleFind = FindWorkload{Dirs: 803, FilesPerDir: 72, CEvery: 4, MatchEvery: 2}

// BuildSrcTree stages /usr/src and returns (totalFiles, cFiles,
// matchingFiles).
func (s *System) BuildSrcTree(w FindWorkload) (total, cFiles, matches int) {
	fs := s.K.FS
	cIdx := 0
	for d := 0; d < w.Dirs; d++ {
		dir := fmt.Sprintf("/usr/src/sys%03d", d)
		if _, err := fs.MkdirAll(dir, 0o755, 0, 0); err != nil {
			panic("core: " + err.Error())
		}
		for f := 0; f < w.FilesPerDir; f++ {
			total++
			name := fmt.Sprintf("file%03d.h", f)
			content := "#include <sys/types.h>\nstatic int x;\n"
			if f%w.CEvery == 0 {
				cIdx++
				cFiles++
				name = fmt.Sprintf("file%03d.c", f)
				if cIdx%w.MatchEvery == 0 {
					matches++
					content = "#include <sys/mac.h>\nint mac_policy_register(void);\n"
				} else {
					content = "int main(void) { return 0; }\n"
				}
			}
			s.mustWrite(dir+"/"+name, []byte(content), 0o644, 0)
		}
	}
	return total, cFiles, matches
}

// RunFind runs the find-and-grep task. ModeAmbient runs the command
// directly; ModeSandboxed uses the single-sandbox script; ModeShill uses
// the fine-grained per-file-sandbox version.
func (s *System) RunFind(mode Mode) error {
	s.LoadCaseScripts()
	s.mustWrite("/home/user/matches.txt", nil, 0o644, UserUID)
	switch mode {
	case ModeAmbient:
		code, err := s.SpawnWaitAmbient("/bin/sh",
			[]string{"-c", "find /usr/src -name *.c -exec grep -H mac_ {} ';' > /home/user/matches.txt"})
		if err != nil {
			return err
		}
		if code != 0 {
			return fmt.Errorf("find exited with status %d", code)
		}
		return nil
	case ModeSandboxed:
		return s.RunAmbient("findgrep.ambient", ScriptFindGrepAmbientSandbox)
	case ModeShill:
		return s.RunAmbient("findgrep_fine.ambient", ScriptFindGrepAmbientFine)
	}
	return fmt.Errorf("unknown mode %v", mode)
}

// Matches returns the find output.
func (s *System) Matches() string {
	vn, err := s.K.FS.Resolve("/home/user/matches.txt")
	if err != nil {
		return ""
	}
	return string(vn.Bytes())
}
