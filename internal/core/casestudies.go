package core

import (
	"fmt"
	"strings"

	"repro/internal/binaries"
)

// This file stages the paper's case-study workloads (§4.1): the grading
// course, the emacs source tarball on the origin server, the Apache
// document root, and the find source tree. The drivers that run these
// workloads (ambient, sandboxed, and SHILL configurations) live in
// repro/shill.

// ===========================================================================
// Grading case study (§4.1)
// ===========================================================================

// GradingWorkload parameterises the course. The paper's full-scale run
// created 5,371 sandboxes; with the SHILL version costing
// students×(tests+2) command sandboxes plus 3 for pkg_native, 122
// students × 42 tests reproduces that count exactly.
type GradingWorkload struct {
	Students int
	Tests    int
	// Malicious adds a cheater (reads another student's submission) and
	// a vandal (corrupts the test suite) to the class.
	Malicious bool
}

// DefaultGrading is the scaled-down default workload.
var DefaultGrading = GradingWorkload{Students: 8, Tests: 4, Malicious: true}

// FullScaleGrading reproduces the paper's sandbox count.
var FullScaleGrading = GradingWorkload{Students: 122, Tests: 42, Malicious: true}

// BuildGradingCourse stages /course: submissions, tests, empty work and
// grades directories, and grade.sh.
func (s *System) BuildGradingCourse(w GradingWorkload) {
	s.BuildGradingCourseAt("/course", w)
}

// BuildGradingCourseAt stages a full course tree under an arbitrary
// root, so concurrent sessions can each grade a private course.
func (s *System) BuildGradingCourseAt(root string, w GradingWorkload) {
	fs := s.K.FS
	for _, d := range []string{"", "/submissions", "/tests", "/work", "/grades"} {
		if _, err := fs.MkdirAll(root+d, 0o755, UserUID, UserUID); err != nil {
			panic("core: " + err.Error())
		}
	}
	s.mustWrite(root+"/grade.sh", []byte(GradeSh), 0o644, UserUID)
	for i := 0; i < w.Tests; i++ {
		s.mustWrite(fmt.Sprintf("%s/tests/t%03d", root, i),
			[]byte(fmt.Sprintf("answer%03d", i)), 0o644, UserUID)
	}
	// Correct students print every expected answer.
	var correct strings.Builder
	for i := 0; i < w.Tests; i++ {
		fmt.Fprintf(&correct, "print answer%03d\n", i)
	}
	for i := 0; i < w.Students; i++ {
		name := fmt.Sprintf("student%03d", i)
		src := correct.String()
		switch {
		case i%7 == 3: // wrong output
			src = "print answer999\n"
		case i%7 == 5: // does not compile
			src = "let rec oops = syntax error\n"
		}
		s.mustWrite(root+"/submissions/"+name+"/main.ml", []byte(src), 0o644, UserUID)
	}
	if w.Malicious {
		// The cheater copies student000's answers by reading their
		// submission at grading time.
		s.mustWrite(root+"/submissions/zz_cheater/main.ml",
			[]byte("readfile "+root+"/submissions/student000/main.ml\n"), 0o644, UserUID)
		// The vandal corrupts the test suite, then answers correctly.
		s.mustWrite(root+"/submissions/zz_vandal/main.ml",
			[]byte("writefile "+root+"/tests/t000 pwned\n"+correct.String()), 0o644, UserUID)
	}
	s.stagedMu.Lock()
	if s.stagedGrading == nil {
		s.stagedGrading = make(map[string]GradingWorkload)
	}
	s.stagedGrading[root] = w
	s.stagedMu.Unlock()
}

// EnsureGradingCourseAt stages the course tree under root for workload w
// if it is missing or was last staged for a different workload, then
// resets its work and grades outputs — the idempotent staging step
// behind repeated (benchmark) grading runs.
func (s *System) EnsureGradingCourseAt(root string, w GradingWorkload) {
	s.stagedMu.Lock()
	staged, ok := s.stagedGrading[root]
	s.stagedMu.Unlock()
	_, rerr := s.K.FS.Resolve(root)
	if rerr != nil || !ok || staged != w {
		if rerr == nil {
			s.ClearDir(root) // workload changed: drop the stale tree
		}
		s.BuildGradingCourseAt(root, w)
	}
	s.ResetGradingOutputsAt(root)
}

// ResetGradingOutputs clears work and grades between runs.
func (s *System) ResetGradingOutputs() { s.ResetGradingOutputsAt("/course") }

// ResetGradingOutputsAt clears a course's work and grades directories.
func (s *System) ResetGradingOutputsAt(root string) {
	s.ClearDir(root + "/work")
	s.ClearDir(root + "/grades")
}

// ClearDir removes a directory's contents (not the directory itself),
// ignoring errors — the staging-reset primitive.
func (s *System) ClearDir(path string) {
	fs := s.K.FS
	dir, err := fs.Resolve(path)
	if err != nil {
		return
	}
	names, _ := fs.ReadDir(dir)
	for _, name := range names {
		child, err := fs.Lookup(dir, name)
		if err != nil {
			continue
		}
		if child.IsDir() {
			sub, _ := fs.PathOf(child)
			s.ClearDir(sub)
			fs.Unlink(dir, name, true)
		} else {
			fs.Unlink(dir, name, false)
		}
	}
}

// ===========================================================================
// Emacs package management (§4.1)
// ===========================================================================

// EmacsWorkload sizes the source tarball.
type EmacsWorkload struct {
	// SrcKB is the approximate size of each of the three C sources.
	SrcKB int
}

// DefaultEmacs is the scaled-down tarball.
var DefaultEmacs = EmacsWorkload{SrcKB: 64}

// BuildEmacsOrigin stages the source tarball on the origin server and
// prepares the user's build area and install prefix.
func (s *System) BuildEmacsOrigin(w EmacsWorkload) {
	src := make([]byte, w.SrcKB*1024)
	for i := range src {
		src[i] = "int emacs(){}\n"[i%14]
	}
	tar := binaries.BuildArchive([]binaries.ArchiveEntry{
		{Path: "emacs-24.3", Dir: true},
		{Path: "emacs-24.3/configure", Data: []byte("#!bin:configure\n")},
		{Path: "emacs-24.3/src", Dir: true},
		{Path: "emacs-24.3/src/emacs.c", Data: src},
		{Path: "emacs-24.3/src/lisp.c", Data: src},
		{Path: "emacs-24.3/src/buffer.c", Data: src},
		{Path: "emacs-24.3/etc", Dir: true},
		{Path: "emacs-24.3/etc/DOC", Data: []byte("Emacs documentation\n")},
	})
	s.mustWrite("/srv/origin/emacs-24.3.tar", tar, 0o644, 0)
	for _, d := range []string{"/home/user/build", "/home/user/.local"} {
		if _, err := s.K.FS.MkdirAll(d, 0o755, UserUID, UserUID); err != nil {
			panic("core: " + err.Error())
		}
	}
}

// ResetEmacsOutputs clears the build area, downloads, and prefix.
func (s *System) ResetEmacsOutputs() {
	s.ClearDir("/home/user/build")
	s.ClearDir("/home/user/.local")
	s.ClearDir("/home/user/Downloads")
}

// ===========================================================================
// Apache case study (§4.1)
// ===========================================================================

// ApacheWorkload sizes the served file and the benchmark run. The paper
// used a 50 MB file, 5,000 requests, and up to 100 concurrent
// connections.
type ApacheWorkload struct {
	FileMB      int
	Requests    int
	Concurrency int
}

// DefaultApache is the scaled-down benchmark.
var DefaultApache = ApacheWorkload{FileMB: 4, Requests: 40, Concurrency: 8}

// BuildWWW stages the document root, configuration, and log directory.
func (s *System) BuildWWW(w ApacheWorkload) {
	data := make([]byte, w.FileMB<<20)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	s.mustWrite("/usr/local/www/big.bin", data, 0o644, 0)
	s.mustWrite("/usr/local/www/index.html", []byte("<html>it works</html>\n"), 0o644, 0)
	conf := "Listen 8080\nDocumentRoot /usr/local/www\nAccessLog /var/log/httpd-access.log\n"
	s.mustWrite("/usr/local/etc/apache22/httpd.conf", []byte(conf), 0o644, 0)
	// The log directory must be writable by the (unprivileged) server.
	if _, err := s.K.FS.MkdirAll("/var/log", 0o777, 0, 0); err != nil {
		panic("core: " + err.Error())
	}
}

// ===========================================================================
// Find case study (§4.1)
// ===========================================================================

// FindWorkload sizes the source tree. The paper's tree had 57,817 files
// of which 15,376 were .c files containing candidates for "mac_".
type FindWorkload struct {
	Dirs        int
	FilesPerDir int
	// CEvery makes every CEvery-th file a .c file.
	CEvery int
	// MatchEvery puts "mac_" into every MatchEvery-th .c file.
	MatchEvery int
}

// DefaultFind is the scaled-down tree.
var DefaultFind = FindWorkload{Dirs: 12, FilesPerDir: 24, CEvery: 4, MatchEvery: 2}

// FullScaleFind approximates the paper's tree: 57,816 files, 15,376 .c.
var FullScaleFind = FindWorkload{Dirs: 803, FilesPerDir: 72, CEvery: 4, MatchEvery: 2}

// BuildSrcTree stages /usr/src and returns (totalFiles, cFiles,
// matchingFiles).
func (s *System) BuildSrcTree(w FindWorkload) (total, cFiles, matches int) {
	fs := s.K.FS
	cIdx := 0
	for d := 0; d < w.Dirs; d++ {
		dir := fmt.Sprintf("/usr/src/sys%03d", d)
		if _, err := fs.MkdirAll(dir, 0o755, 0, 0); err != nil {
			panic("core: " + err.Error())
		}
		for f := 0; f < w.FilesPerDir; f++ {
			total++
			name := fmt.Sprintf("file%03d.h", f)
			content := "#include <sys/types.h>\nstatic int x;\n"
			if f%w.CEvery == 0 {
				cIdx++
				cFiles++
				name = fmt.Sprintf("file%03d.c", f)
				if cIdx%w.MatchEvery == 0 {
					matches++
					content = "#include <sys/mac.h>\nint mac_policy_register(void);\n"
				} else {
					content = "int main(void) { return 0; }\n"
				}
			}
			s.mustWrite(dir+"/"+name, []byte(content), 0o644, 0)
		}
	}
	return total, cFiles, matches
}
