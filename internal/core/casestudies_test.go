package core

import (
	"strings"
	"testing"
	"time"
)

// --- Grading ---

func gradingSystem(t *testing.T, install bool) *System {
	t.Helper()
	s := NewSystem(Config{InstallModule: install})
	t.Cleanup(s.Close)
	s.BuildGradingCourse(DefaultGrading)
	return s
}

func checkHonestGrades(t *testing.T, s *System, mode Mode) {
	t.Helper()
	// student000 is correct: all tests pass.
	g := s.GradeFor("student000")
	if !strings.Contains(g, "compiled") || strings.Contains(g, "fail") {
		t.Errorf("[%v] student000 grade = %q, want all passes", mode, g)
	}
	if got := strings.Count(g, "pass "); got != DefaultGrading.Tests {
		t.Errorf("[%v] student000 passes = %d, want %d", mode, got, DefaultGrading.Tests)
	}
	// student003 (i%7==3) prints the wrong answer: compiled, all fails.
	g = s.GradeFor("student003")
	if !strings.Contains(g, "compiled") || strings.Contains(g, "pass ") {
		t.Errorf("[%v] student003 grade = %q, want all fails", mode, g)
	}
	// student005 (i%7==5) does not compile.
	g = s.GradeFor("student005")
	if !strings.Contains(g, "compile-failed") {
		t.Errorf("[%v] student005 grade = %q, want compile-failed", mode, g)
	}
}

func TestGradingBaseline(t *testing.T) {
	s := gradingSystem(t, false)
	if err := s.RunGrading(ModeAmbient); err != nil {
		t.Fatalf("baseline grading: %v\nconsole: %s", err, s.ConsoleText())
	}
	checkHonestGrades(t, s, ModeAmbient)
	// With ambient authority the cheater reads student000's submission
	// and passes; the vandal corrupts the test suite.
	if g := s.GradeFor("zz_cheater"); !strings.Contains(g, "pass t000") {
		t.Errorf("baseline cheater unexpectedly failed: %q", g)
	}
	vn, err := s.K.FS.Resolve("/course/tests/t000")
	if err != nil || string(vn.Bytes()) != "pwned" {
		t.Errorf("baseline vandal did not corrupt the test suite: %v %q", err, vn.Bytes())
	}
}

func TestGradingSandboxed(t *testing.T) {
	s := gradingSystem(t, true)
	if err := s.RunGrading(ModeSandboxed); err != nil {
		t.Fatalf("sandboxed grading: %v\nconsole: %s", err, s.ConsoleText())
	}
	checkHonestGrades(t, s, ModeSandboxed)
	// The coarse sandbox protects the test suite...
	vn, err := s.K.FS.Resolve("/course/tests/t000")
	if err != nil || string(vn.Bytes()) == "pwned" {
		t.Error("sandboxed vandal corrupted the test suite")
	}
	// ...but cannot isolate students from each other: the cheater's
	// program runs with read access to all submissions (§4.1 motivates
	// the SHILL version with exactly this gap).
	if g := s.GradeFor("zz_cheater"); !strings.Contains(g, "pass t000") {
		t.Errorf("sandboxed cheater was blocked, which the coarse sandbox cannot do: %q", g)
	}
}

func TestGradingShillVersion(t *testing.T) {
	s := gradingSystem(t, true)
	if err := s.RunGrading(ModeShill); err != nil {
		t.Fatalf("SHILL grading: %v\nconsole: %s", err, s.ConsoleText())
	}
	checkHonestGrades(t, s, ModeShill)
	// Fine-grained isolation: the cheater's read of another submission
	// fails inside its sandbox, so it passes no tests.
	if g := s.GradeFor("zz_cheater"); strings.Contains(g, "pass ") {
		t.Errorf("SHILL version let the cheater read another submission: %q", g)
	}
	// And the vandal cannot touch the test suite.
	vn, err := s.K.FS.Resolve("/course/tests/t000")
	if err != nil || string(vn.Bytes()) == "pwned" {
		t.Error("SHILL version let the vandal corrupt the test suite")
	}
}

// --- Emacs package management ---

func TestEmacsStepsSandboxed(t *testing.T) {
	s := NewSystem(Config{InstallModule: true})
	t.Cleanup(s.Close)
	s.BuildEmacsOrigin(DefaultEmacs)
	stop, err := s.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	for _, step := range AllEmacsSteps {
		if err := s.RunEmacsStep(step, ModeSandboxed); err != nil {
			t.Fatalf("step %s: %v\nconsole: %s", step, err, s.ConsoleText())
		}
	}
	if _, err := s.K.FS.Resolve("/home/user/.local/bin/emacs"); err == nil {
		t.Fatal("uninstall left /home/user/.local/bin/emacs behind")
	}
}

func TestEmacsStepsBaseline(t *testing.T) {
	s := NewSystem(Config{InstallModule: false})
	t.Cleanup(s.Close)
	s.BuildEmacsOrigin(DefaultEmacs)
	stop, err := s.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	for _, step := range AllEmacsSteps[:5] { // through install
		if err := s.RunEmacsStep(step, ModeAmbient); err != nil {
			t.Fatalf("step %s: %v\nconsole: %s", step, err, s.ConsoleText())
		}
	}
	vn, err := s.K.FS.Resolve("/home/user/.local/bin/emacs")
	if err != nil {
		t.Fatalf("install did not produce emacs: %v\nconsole: %s", err, s.ConsoleText())
	}
	if !strings.HasPrefix(string(vn.Bytes()), "#!bin:") {
		t.Fatal("installed emacs is not an executable image")
	}
}

func TestEmacsShillVersion(t *testing.T) {
	s := NewSystem(Config{InstallModule: true})
	t.Cleanup(s.Close)
	s.BuildEmacsOrigin(DefaultEmacs)
	stop, err := s.StartOrigin()
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer stop()
	if err := s.RunEmacsShill(); err != nil {
		t.Fatalf("pkg_emacs: %v\nconsole: %s", err, s.ConsoleText())
	}
	// The script installs and then uninstalls; the DOC and binary must
	// be gone, but the share directory (not in the manifest) remains.
	if _, err := s.K.FS.Resolve("/home/user/.local/bin/emacs"); err == nil {
		t.Fatal("uninstall left the emacs binary behind")
	}
	if _, err := s.K.FS.Resolve("/home/user/.local/share/emacs"); err != nil {
		t.Fatal("uninstall removed more than its manifest")
	}
}

// --- Apache ---

func TestApacheSandboxed(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	w := ApacheWorkload{FileMB: 1, Requests: 8, Concurrency: 4}
	s.BuildWWW(w)
	if err := s.RunApache(ModeSandboxed, w); err != nil {
		t.Fatalf("apache: %v\nconsole: %s", err, s.ConsoleText())
	}
	out := s.ConsoleText()
	if !strings.Contains(out, "Failed requests: 0") {
		t.Fatalf("ab reported failures: %s", out)
	}
	// The access log was written through the write-only log capability.
	vn, err := s.K.FS.Resolve("/var/log/httpd-access.log")
	if err != nil {
		t.Fatal("no access log written")
	}
	if got := strings.Count(string(vn.Bytes()), "GET /big.bin 200"); got != w.Requests {
		t.Fatalf("access log has %d entries, want %d", got, w.Requests)
	}
}

// TestApacheNotIsolatedFromSystem reproduces the §5 claim that SHILL
// sandboxes, unlike container-style isolation, leave the rest of the
// system live: while the sandboxed server runs, an ambient process adds
// new web content and reads the growing log.
func TestApacheNotIsolatedFromSystem(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	w := ApacheWorkload{FileMB: 1, Requests: 2, Concurrency: 1}
	s.BuildWWW(w)
	s.LoadCaseScripts()

	serverDone := make(chan error, 1)
	go func() { serverDone <- s.RunAmbient("apache.ambient", ScriptApacheAmbient) }()
	if err := s.waitForListener("8080", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Concurrently add new content with ambient authority...
	if _, err := s.K.FS.WriteFile("/usr/local/www/new.html", []byte("<p>fresh</p>"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	// ...and fetch it through the running sandboxed server.
	code, err := s.SpawnWaitAmbient("/usr/bin/curl", []string{"http://localhost:8080/new.html"})
	if err != nil || code != 0 {
		t.Fatalf("curl new content = %d, %v", code, err)
	}
	if out := s.ConsoleText(); !strings.Contains(out, "fresh") {
		t.Fatalf("new content not served: %q", out)
	}
	// The log is readable ambiently while the server holds its
	// write-only capability.
	vn, err := s.K.FS.Resolve("/var/log/httpd-access.log")
	if err != nil || !strings.Contains(string(vn.Bytes()), "GET /new.html 200") {
		t.Fatal("log not visible to concurrent readers")
	}
	s.shutdownListener("8080")
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestApacheBaseline(t *testing.T) {
	s := NewSystem(Config{InstallModule: false, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	w := ApacheWorkload{FileMB: 1, Requests: 4, Concurrency: 2}
	s.BuildWWW(w)
	if err := s.RunApache(ModeAmbient, w); err != nil {
		t.Fatalf("apache: %v\nconsole: %s", err, s.ConsoleText())
	}
	if out := s.ConsoleText(); !strings.Contains(out, "Failed requests: 0") {
		t.Fatalf("ab reported failures: %s", out)
	}
}

// --- Find ---

func TestFindAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeAmbient, ModeSandboxed, ModeShill} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := NewSystem(Config{InstallModule: mode != ModeAmbient, ConsoleLimit: 1 << 20})
			t.Cleanup(s.Close)
			_, _, matches := s.BuildSrcTree(DefaultFind)
			if err := s.RunFind(mode); err != nil {
				t.Fatalf("find: %v\nconsole: %s", err, s.ConsoleText())
			}
			got := s.Matches()
			lines := 0
			for _, l := range strings.Split(got, "\n") {
				if strings.Contains(l, "mac_") && strings.Contains(l, ".c:") {
					lines++
				}
			}
			if lines != matches {
				t.Fatalf("matched %d lines, want %d\noutput: %s\nconsole: %s",
					lines, matches, got, s.ConsoleText())
			}
		})
	}
}

// TestFindShillSandboxCount verifies the fine-grained version creates a
// sandbox per .c file (plus the pkg_native ldd sandbox), the behaviour
// behind the paper's 15,292-sandbox figure.
func TestFindShillSandboxCount(t *testing.T) {
	s := NewSystem(Config{InstallModule: true, ConsoleLimit: 1 << 20})
	t.Cleanup(s.Close)
	_, cFiles, _ := s.BuildSrcTree(DefaultFind)
	s.Prof.Reset()
	if err := s.RunFind(ModeShill); err != nil {
		t.Fatalf("find: %v", err)
	}
	got := s.Prof.Count(1) // prof.SandboxSetup
	want := int64(cFiles + 1)
	if got != want {
		t.Fatalf("sandboxes = %d, want %d (one per .c file + ldd)", got, want)
	}
}
